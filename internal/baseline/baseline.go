// Package baseline implements the classic APSP algorithms the paper
// positions itself against — Floyd-Warshall, repeated binary-heap
// Dijkstra, repeated Bellman-Ford, and repeated SPFA — used both as
// correctness oracles in the test suite and as comparison points in the
// benchmark harness (Sections 2 and 6 of the paper).
package baseline

import (
	"container/heap"

	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// FloydWarshall computes APSP by the classic O(n^3) dynamic program
// (Floyd 1962). It is the simplest correct algorithm and serves as the
// oracle for every other implementation in the repository.
func FloydWarshall(g *graph.Graph) *matrix.Matrix {
	n := g.N()
	D := matrix.New(n)
	D.InitAPSP()
	for u := 0; u < n; u++ {
		row := D.Row(u)
		adj, w := g.NeighborsW(int32(u))
		for i, v := range adj {
			wt := matrix.Dist(1)
			if w != nil {
				wt = w[i]
			}
			if wt < row[v] {
				row[v] = wt
			}
		}
	}
	for k := 0; k < n; k++ {
		rowK := D.Row(k)
		for i := 0; i < n; i++ {
			rowI := D.Row(i)
			dik := rowI[k]
			if dik == matrix.Inf {
				continue
			}
			for j := 0; j < n; j++ {
				if nd := matrix.AddSat(dik, rowK[j]); nd < rowI[j] {
					rowI[j] = nd
				}
			}
		}
	}
	return D
}

// distHeap is a binary min-heap of (vertex, dist) pairs for Dijkstra.
type distHeap struct {
	vs []int32
	ds []matrix.Dist
}

func (h *distHeap) Len() int           { return len(h.vs) }
func (h *distHeap) Less(i, j int) bool { return h.ds[i] < h.ds[j] }
func (h *distHeap) Swap(i, j int) {
	h.vs[i], h.vs[j] = h.vs[j], h.vs[i]
	h.ds[i], h.ds[j] = h.ds[j], h.ds[i]
}
func (h *distHeap) Push(x any) {
	p := x.([2]uint64)
	h.vs = append(h.vs, int32(p[0]))
	h.ds = append(h.ds, matrix.Dist(p[1]))
}
func (h *distHeap) Pop() any {
	n := len(h.vs) - 1
	p := [2]uint64{uint64(h.vs[n]), uint64(h.ds[n])}
	h.vs, h.ds = h.vs[:n], h.ds[:n]
	return p
}

// DijkstraSSSP computes single-source shortest paths from s into dist,
// using a binary heap with lazy deletion (Dijkstra 1959). dist must have
// length g.N(); it is overwritten.
func DijkstraSSSP(g *graph.Graph, s int32, dist []matrix.Dist) {
	for i := range dist {
		dist[i] = matrix.Inf
	}
	dist[s] = 0
	h := &distHeap{}
	heap.Push(h, [2]uint64{uint64(s), 0})
	for h.Len() > 0 {
		p := heap.Pop(h).([2]uint64)
		t, dt := int32(p[0]), matrix.Dist(p[1])
		if dt > dist[t] {
			continue // stale entry
		}
		adj, w := g.NeighborsW(t)
		for i, v := range adj {
			wt := matrix.Dist(1)
			if w != nil {
				wt = w[i]
			}
			if nd := matrix.AddSat(dt, wt); nd < dist[v] {
				dist[v] = nd
				heap.Push(h, [2]uint64{uint64(v), uint64(nd)})
			}
		}
	}
}

// DijkstraAPSP computes APSP by running heap Dijkstra from every vertex —
// the "naive approach" of Section 2.1, and the strongest conventional
// baseline for sparse graphs.
func DijkstraAPSP(g *graph.Graph) *matrix.Matrix {
	n := g.N()
	D := matrix.New(n)
	for s := 0; s < n; s++ {
		DijkstraSSSP(g, int32(s), D.Row(s))
	}
	return D
}

// BellmanFordSSSP computes single-source shortest paths by |V|-1 rounds of
// full edge relaxation (Bellman 1958). O(nm); kept simple because it is an
// oracle, not a contender.
func BellmanFordSSSP(g *graph.Graph, s int32, dist []matrix.Dist) {
	n := g.N()
	for i := range dist {
		dist[i] = matrix.Inf
	}
	dist[s] = 0
	for round := 1; round < n; round++ {
		changed := false
		for u := 0; u < n; u++ {
			du := dist[u]
			if du == matrix.Inf {
				continue
			}
			adj, w := g.NeighborsW(int32(u))
			for i, v := range adj {
				wt := matrix.Dist(1)
				if w != nil {
					wt = w[i]
				}
				if nd := matrix.AddSat(du, wt); nd < dist[v] {
					dist[v] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
}

// BellmanFordAPSP computes APSP by repeated Bellman-Ford.
func BellmanFordAPSP(g *graph.Graph) *matrix.Matrix {
	n := g.N()
	D := matrix.New(n)
	for s := 0; s < n; s++ {
		BellmanFordSSSP(g, int32(s), D.Row(s))
	}
	return D
}

// SPFASSSP is the queue-based Bellman-Ford refinement (Shortest Path
// Faster Algorithm): exactly the modified Dijkstra of the paper with row
// reuse disabled. It exists as an independent implementation so the
// core package's ablation mode can be cross-checked against it.
func SPFASSSP(g *graph.Graph, s int32, dist []matrix.Dist) {
	n := g.N()
	for i := range dist {
		dist[i] = matrix.Inf
	}
	dist[s] = 0
	inQ := make([]bool, n)
	q := make([]int32, 0, 64)
	q = append(q, s)
	inQ[s] = true
	for head := 0; head < len(q); head++ {
		t := q[head]
		inQ[t] = false
		dt := dist[t]
		adj, w := g.NeighborsW(t)
		for i, v := range adj {
			wt := matrix.Dist(1)
			if w != nil {
				wt = w[i]
			}
			if nd := matrix.AddSat(dt, wt); nd < dist[v] {
				dist[v] = nd
				if !inQ[v] {
					inQ[v] = true
					q = append(q, v)
				}
			}
		}
	}
}

// SPFAAPSP computes APSP by repeated SPFA.
func SPFAAPSP(g *graph.Graph) *matrix.Matrix {
	n := g.N()
	D := matrix.New(n)
	for s := 0; s < n; s++ {
		SPFASSSP(g, int32(s), D.Row(s))
	}
	return D
}

// BFSSSSP computes hop-count distances from s by breadth-first search.
// Valid only for unweighted graphs; it is the fastest possible oracle for
// the paper's (unweighted) experimental datasets.
func BFSSSSP(g *graph.Graph, s int32, dist []matrix.Dist) {
	for i := range dist {
		dist[i] = matrix.Inf
	}
	dist[s] = 0
	q := make([]int32, 0, 64)
	q = append(q, s)
	for head := 0; head < len(q); head++ {
		t := q[head]
		nd := dist[t] + 1
		for _, v := range g.Neighbors(t) {
			if dist[v] == matrix.Inf {
				dist[v] = nd
				q = append(q, v)
			}
		}
	}
}

// BFSAPSP computes hop-count APSP by repeated BFS. It panics if the graph
// is weighted, because hop counts would be wrong answers there.
func BFSAPSP(g *graph.Graph) *matrix.Matrix {
	if g.Weighted() {
		panic("baseline: BFSAPSP requires an unweighted graph")
	}
	n := g.N()
	D := matrix.New(n)
	for s := 0; s < n; s++ {
		BFSSSSP(g, int32(s), D.Row(s))
	}
	return D
}
