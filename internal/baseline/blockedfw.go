package baseline

import (
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
	"parapsp/internal/sched"
)

// BlockSize is the tile edge used by BlockedFloydWarshall. 64 entries of
// 4 bytes = a 16 KiB tile, three of which fit comfortably in an L1/L2
// working set.
const BlockSize = 64

// BlockedFloydWarshall computes APSP with the cache-blocked (tiled)
// Floyd-Warshall algorithm that Katz & Kider's GPU APSP (reference [11] of
// the paper, discussed in Section 6) builds on, optionally parallelized
// across tiles within each phase.
//
// The k loop is processed in tiles of BlockSize: for each diagonal tile
// (phase 1) the tile is closed on itself; phase 2 closes the tiles sharing
// its row and column; phase 3 updates all remaining tiles from their
// phase-2 row/column tiles. Phases 2 and 3 have no intra-phase
// dependencies, so their tiles run in parallel across workers. The result
// is exactly the Floyd-Warshall solution; the related-work benchmark uses
// it to show that even a tuned O(n^3) algorithm loses to the modified
// Dijkstra family on sparse complex networks.
func BlockedFloydWarshall(g *graph.Graph, workers int) *matrix.Matrix {
	n := g.N()
	D := matrix.New(n)
	D.InitAPSP()
	for u := 0; u < n; u++ {
		row := D.Row(u)
		adj, w := g.NeighborsW(int32(u))
		for i, v := range adj {
			wt := matrix.Dist(1)
			if w != nil {
				wt = w[i]
			}
			if wt < row[v] {
				row[v] = wt
			}
		}
	}

	nb := (n + BlockSize - 1) / BlockSize
	// updateTile relaxes tile (bi,bj) using the k range of tile bk:
	// D[i][j] = min(D[i][j], D[i][k] + D[k][j]) for the tile's index ranges.
	updateTile := func(bi, bj, bk int) {
		iLo, iHi := bi*BlockSize, min(n, (bi+1)*BlockSize)
		jLo, jHi := bj*BlockSize, min(n, (bj+1)*BlockSize)
		kLo, kHi := bk*BlockSize, min(n, (bk+1)*BlockSize)
		for k := kLo; k < kHi; k++ {
			rowK := D.Row(k)
			for i := iLo; i < iHi; i++ {
				rowI := D.Row(i)
				dik := rowI[k]
				if dik == matrix.Inf {
					continue
				}
				for j := jLo; j < jHi; j++ {
					if nd := matrix.AddSat(dik, rowK[j]); nd < rowI[j] {
						rowI[j] = nd
					}
				}
			}
		}
	}

	for bk := 0; bk < nb; bk++ {
		// Phase 1: the diagonal tile closes itself.
		updateTile(bk, bk, bk)
		// Phase 2: the pivot row and column tiles (independent of each
		// other given the closed diagonal tile).
		sched.ParallelFor(2*nb, workers, sched.Block, func(x int) {
			b := x / 2
			if b == bk {
				return
			}
			if x%2 == 0 {
				updateTile(bk, b, bk) // pivot row
			} else {
				updateTile(b, bk, bk) // pivot column
			}
		})
		// Phase 3: all remaining tiles, fully independent.
		sched.ParallelFor(nb*nb, workers, sched.Block, func(x int) {
			bi, bj := x/nb, x%nb
			if bi == bk || bj == bk {
				return
			}
			updateTile(bi, bj, bk)
		})
	}
	return D
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
