package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parapsp/internal/gen"
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// pathGraph returns the directed path 0 -> 1 -> ... -> n-1 with weight w.
func pathGraph(t *testing.T, n int, w matrix.Dist) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n, false)
	for i := 0; i < n-1; i++ {
		if err := b.AddWeighted(int32(i), int32(i+1), w); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFloydWarshallPath(t *testing.T) {
	g := pathGraph(t, 5, 2)
	D := FloydWarshall(g)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := matrix.Inf
			if j >= i {
				want = matrix.Dist(2 * (j - i))
			}
			if got := D.At(i, j); got != want {
				t.Errorf("D[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestFloydWarshallCycle(t *testing.T) {
	// Undirected 4-cycle, unit weights: opposite corners at distance 2.
	g, err := graph.FromPairs(4, true, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	D := FloydWarshall(g)
	want := [][]matrix.Dist{
		{0, 1, 2, 1},
		{1, 0, 1, 2},
		{2, 1, 0, 1},
		{1, 2, 1, 0},
	}
	for i := range want {
		for j := range want[i] {
			if D.At(i, j) != want[i][j] {
				t.Errorf("D[%d][%d] = %d, want %d", i, j, D.At(i, j), want[i][j])
			}
		}
	}
}

func TestFloydWarshallPicksShorterOfParallelRoutes(t *testing.T) {
	// 0->1 weight 10, 0->2->1 weight 3+3=6.
	g, err := graph.FromEdges(3, false, []graph.Edge{{From: 0, To: 1, W: 10}, {From: 0, To: 2, W: 3}, {From: 2, To: 1, W: 3}})
	if err != nil {
		t.Fatal(err)
	}
	D := FloydWarshall(g)
	if D.At(0, 1) != 6 {
		t.Errorf("D[0][1] = %d, want 6", D.At(0, 1))
	}
}

func TestDisconnectedComponents(t *testing.T) {
	g, err := graph.FromPairs(4, true, [][2]int32{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for name, D := range map[string]*matrix.Matrix{
		"fw":       FloydWarshall(g),
		"dijkstra": DijkstraAPSP(g),
		"bellman":  BellmanFordAPSP(g),
		"spfa":     SPFAAPSP(g),
		"bfs":      BFSAPSP(g),
	} {
		if D.At(0, 2) != matrix.Inf || D.At(3, 1) != matrix.Inf {
			t.Errorf("%s: cross-component distance finite", name)
		}
		if D.At(0, 1) != 1 || D.At(2, 3) != 1 {
			t.Errorf("%s: in-component distance wrong", name)
		}
	}
}

func TestSingleVertexAndEmpty(t *testing.T) {
	for _, n := range []int{0, 1} {
		g, err := graph.FromPairs(n, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		D := FloydWarshall(g)
		if D.N() != n {
			t.Errorf("n=%d: matrix size %d", n, D.N())
		}
		if n == 1 && D.At(0, 0) != 0 {
			t.Errorf("self distance = %d", D.At(0, 0))
		}
	}
}

func TestAllAgreeRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		m := rng.Intn(3 * n)
		undirected := rng.Intn(2) == 0
		var w gen.Weighting
		weighted := rng.Intn(2) == 0
		if weighted {
			w = gen.Weighting{Min: 1, Max: 10}
		}
		g, err := gen.ErdosRenyiGNM(n, m, undirected, seed, w)
		if err != nil {
			return false
		}
		ref := FloydWarshall(g)
		if !DijkstraAPSP(g).Equal(ref) {
			t.Logf("dijkstra disagrees on seed %d", seed)
			return false
		}
		if !BellmanFordAPSP(g).Equal(ref) {
			t.Logf("bellman disagrees on seed %d", seed)
			return false
		}
		if !SPFAAPSP(g).Equal(ref) {
			t.Logf("spfa disagrees on seed %d", seed)
			return false
		}
		if !weighted && !BFSAPSP(g).Equal(ref) {
			t.Logf("bfs disagrees on seed %d", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSAPSPPanicsOnWeighted(t *testing.T) {
	g, err := graph.FromEdges(2, false, []graph.Edge{{From: 0, To: 1, W: 5}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("BFSAPSP accepted weighted graph")
		}
	}()
	BFSAPSP(g)
}

func TestDijkstraSSSPInPlace(t *testing.T) {
	g := pathGraph(t, 4, 3)
	dist := make([]matrix.Dist, 4)
	DijkstraSSSP(g, 1, dist)
	want := []matrix.Dist{matrix.Inf, 0, 3, 6}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want[i])
		}
	}
}

func TestBellmanFordEarlyTermination(t *testing.T) {
	// A star graph settles in one round; just verify correctness.
	g, err := graph.FromPairs(5, true, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if err != nil {
		t.Fatal(err)
	}
	dist := make([]matrix.Dist, 5)
	BellmanFordSSSP(g, 0, dist)
	for i := 1; i < 5; i++ {
		if dist[i] != 1 {
			t.Errorf("dist[%d] = %d, want 1", i, dist[i])
		}
	}
	BellmanFordSSSP(g, 1, dist)
	if dist[2] != 2 {
		t.Errorf("leaf-to-leaf = %d, want 2", dist[2])
	}
}

func TestStarGraphAllAlgorithms(t *testing.T) {
	// Hub 0 with 9 leaves: leaf-leaf distance 2, hub-leaf 1.
	var pairs [][2]int32
	for i := int32(1); i < 10; i++ {
		pairs = append(pairs, [2]int32{0, i})
	}
	g, err := graph.FromPairs(10, true, pairs)
	if err != nil {
		t.Fatal(err)
	}
	ref := FloydWarshall(g)
	if ref.At(1, 2) != 2 || ref.At(0, 5) != 1 {
		t.Fatalf("star distances wrong: %d %d", ref.At(1, 2), ref.At(0, 5))
	}
	for name, D := range map[string]*matrix.Matrix{
		"dijkstra": DijkstraAPSP(g),
		"bellman":  BellmanFordAPSP(g),
		"spfa":     SPFAAPSP(g),
		"bfs":      BFSAPSP(g),
	} {
		if !D.Equal(ref) {
			t.Errorf("%s disagrees with Floyd-Warshall on star", name)
		}
	}
}

func TestLargeWeightsSaturate(t *testing.T) {
	// Chain of near-max weights: distances saturate at Inf rather than wrap.
	b := graph.NewBuilder(4, false)
	w := matrix.Dist(matrix.MaxFinite / 2)
	for i := 0; i < 3; i++ {
		if err := b.AddWeighted(int32(i), int32(i+1), w); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for name, D := range map[string]*matrix.Matrix{
		"fw":       FloydWarshall(g),
		"dijkstra": DijkstraAPSP(g),
	} {
		if D.At(0, 1) != w {
			t.Errorf("%s: one hop = %d", name, D.At(0, 1))
		}
		if D.At(0, 2) != 2*w {
			t.Errorf("%s: two hops = %d, want %d", name, D.At(0, 2), 2*w)
		}
		// Three hops exceeds MaxFinite: must saturate to Inf, never wrap.
		if got := D.At(0, 3); got != matrix.Inf {
			t.Errorf("%s: three hops = %d, want Inf", name, got)
		}
	}
}

func TestBlockedFloydWarshallMatchesPlain(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200) // spans sub-tile and multi-tile sizes
		m := rng.Intn(4 * n)
		var w gen.Weighting
		if rng.Intn(2) == 0 {
			w = gen.Weighting{Min: 1, Max: 12}
		}
		g, err := gen.ErdosRenyiGNM(n, m, rng.Intn(2) == 0, seed, w)
		if err != nil {
			return false
		}
		ref := FloydWarshall(g)
		for _, workers := range []int{1, 4} {
			if !BlockedFloydWarshall(g, workers).Equal(ref) {
				t.Logf("seed %d n=%d workers=%d", seed, n, workers)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockedFloydWarshallExactTileBoundary(t *testing.T) {
	// n exactly a multiple of the block size, and n = BlockSize +/- 1.
	for _, n := range []int{BlockSize, 2 * BlockSize, BlockSize - 1, BlockSize + 1} {
		g, err := gen.BarabasiAlbert(n, 2, int64(n), gen.Weighting{})
		if err != nil {
			t.Fatal(err)
		}
		if !BlockedFloydWarshall(g, 3).Equal(FloydWarshall(g)) {
			t.Errorf("n=%d: blocked FW differs", n)
		}
	}
}

func TestBlockedFloydWarshallEmpty(t *testing.T) {
	g, _ := graph.FromPairs(0, false, nil)
	if D := BlockedFloydWarshall(g, 2); D.N() != 0 {
		t.Error("empty graph mishandled")
	}
}
