// Package dyn makes the repository's graphs dynamic: versioned
// copy-on-write snapshots with zero-downtime serving semantics, plus the
// incremental-repair rules that keep cached distance rows exact across
// edge mutations.
//
// The design splits responsibility three ways:
//
//   - Store owns the version chain. Readers pin the current Snapshot with
//     one atomic pointer load — no lock, no allocation, never blocked by a
//     writer. Writers (serialized internally) derive the next CSR with a
//     copy-on-write splice (graph.WithArc / graph.WithoutArc) and publish
//     it atomically; a pinned older snapshot stays fully usable until its
//     last reader drops it.
//
//   - Change classifies what a mutation can do to shortest-path distances:
//     an inserted or lightened arc can only *improve* them, a deleted or
//     heavier arc can only *worsen* them. That sign drives everything
//     downstream.
//
//   - Classify + RepairImprove implement the row-repair rules. For an
//     exact distance row of the old graph, an improving arc (u,v,w)
//     matters iff row[u] + w < row[v]; such rows are repaired in place by
//     a decrease-only SSSP seeded at the arc head — the same frontier
//     machinery as the Δ-stepping kernels, touching only vertices whose
//     label actually drops. A worsening arc matters iff it was tight
//     (row[u] + oldW == row[v], i.e. it could lie on a recorded shortest
//     path); such rows cannot be repaired monotonically and are declared
//     stale for a full re-solve. Every other row is exact as-is and is
//     merely re-tagged to the new version.
package dyn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"parapsp/internal/graph"
	"parapsp/internal/matrix"
	"parapsp/internal/oracle"
)

// Errors surfaced by mutation validation. The HTTP layer maps ErrNoEdge
// and ErrEdgeExists to 409 (the op is well-formed but conflicts with the
// current edge set) and ErrOp to 400.
var (
	ErrOp         = errors.New("dyn: invalid edge op")
	ErrNoEdge     = errors.New("dyn: edge does not exist")
	ErrEdgeExists = errors.New("dyn: edge already exists")
)

// Op is the mutation verb of an EdgeOp.
type Op uint8

const (
	// OpInsert adds an edge that must not already exist.
	OpInsert Op = iota + 1
	// OpDelete removes an edge that must exist.
	OpDelete
	// OpReweight changes the weight of an existing edge.
	OpReweight
)

var opNames = map[Op]string{OpInsert: "insert", OpDelete: "delete", OpReweight: "reweight"}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// ParseOp parses the wire spelling of an Op ("insert", "delete",
// "reweight").
func ParseOp(s string) (Op, error) {
	for o, name := range opNames {
		if s == name {
			return o, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown op %q", ErrOp, s)
}

// EdgeOp is one edge mutation. U/V are the endpoints (an undirected
// graph's edge is mutated in both stored directions); W is the weight for
// OpInsert and OpReweight and ignored for OpDelete.
type EdgeOp struct {
	Op Op
	U  int32
	V  int32
	W  matrix.Dist
}

func (e EdgeOp) String() string {
	if e.Op == OpDelete {
		return fmt.Sprintf("%s(%d,%d)", e.Op, e.U, e.V)
	}
	return fmt.Sprintf("%s(%d,%d,w=%d)", e.Op, e.U, e.V, e.W)
}

// ChangeKind is the monotone direction of a committed mutation's effect
// on shortest-path distances.
type ChangeKind uint8

const (
	// KindNone means distances cannot have changed (reweight to the same
	// weight).
	KindNone ChangeKind = iota
	// KindImprove means distances can only shrink (insert, or reweight
	// down).
	KindImprove
	// KindWorsen means distances can only grow (delete, or reweight up).
	KindWorsen
)

func (k ChangeKind) String() string {
	switch k {
	case KindImprove:
		return "improve"
	case KindWorsen:
		return "worsen"
	default:
		return "none"
	}
}

// Change describes one committed mutation.
type Change struct {
	Op   EdgeOp
	OldW matrix.Dist // weight before the op (0 for an insert)
	Kind ChangeKind
}

// Arc is one directed arc with the weight relevant to a repair decision.
type Arc struct {
	U, V int32
	W    matrix.Dist
}

// Arcs returns the directed arcs a row-repair decision must consider,
// carrying the *new* weight for an improving change and the *old* weight
// for a worsening one (the tightness test asks whether the arc was on a
// shortest path before it got worse). Undirected graphs contribute both
// stored directions; a KindNone change contributes nothing.
func (c Change) Arcs(undirected bool) []Arc {
	var w matrix.Dist
	switch c.Kind {
	case KindImprove:
		w = c.Op.W
	case KindWorsen:
		w = c.OldW
	default:
		return nil
	}
	arcs := []Arc{{U: c.Op.U, V: c.Op.V, W: w}}
	if undirected {
		arcs = append(arcs, Arc{U: c.Op.V, V: c.Op.U, W: w})
	}
	return arcs
}

// Snapshot is one immutable graph version. G is the CSR graph, TR its
// transpose (aliasing G for undirected graphs) for predecessor walks, and
// Oracle the landmark oracle valid for exactly this version — nil when
// the version was produced by a mutation, because landmark distances go
// stale the moment an edge changes.
type Snapshot struct {
	Version uint64
	G       *graph.Graph
	TR      *graph.Graph
	Oracle  *oracle.Oracle
}

// Store is the versioned graph holder: an atomic pointer to the current
// Snapshot plus a writer lock serializing mutations. The reader fast path
// (Current) is one atomic load — the zero-blocking property the dynamic
// serving layer is built on, pinned by a testing.AllocsPerRun test.
type Store struct {
	cur atomic.Pointer[Snapshot]
	mu  sync.Mutex
}

// NewStore builds a store whose initial snapshot is version 1. orc may be
// nil; when present it must have been built over g.
func NewStore(g *graph.Graph, orc *oracle.Oracle) *Store {
	tr := g
	if !g.Undirected() {
		tr = g.Transpose()
	}
	s := &Store{}
	s.cur.Store(&Snapshot{Version: 1, G: g, TR: tr, Oracle: orc})
	return s
}

// Current returns the current snapshot. Readers that need a consistent
// view across several operations call Current once and use the pinned
// snapshot throughout; the store never invalidates a published snapshot.
func (s *Store) Current() *Snapshot { return s.cur.Load() }

// Version returns the current version.
func (s *Store) Version() uint64 { return s.cur.Load().Version }

// Mutate validates and applies one edge mutation, returning the newly
// published snapshot and the change classification. reconcile, when
// non-nil, runs after the successor snapshot is fully built but *before*
// it becomes visible to readers — the serving layer uses that window to
// retag/repair its version-tagged cache so the new version is never
// observable with a stale cache. Mutations are serialized; readers are
// never blocked (they keep resolving Current against the old snapshot
// until the atomic publish).
func (s *Store) Mutate(op EdgeOp, reconcile func(old, next *Snapshot, ch Change)) (*Snapshot, Change, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.cur.Load()
	g := old.G

	var (
		ng  *graph.Graph
		ch  = Change{Op: op}
		err error
	)
	switch op.Op {
	case OpInsert:
		if _, exists := g.ArcWeight(op.U, op.V); exists {
			return nil, Change{}, fmt.Errorf("%w: %d-%d", ErrEdgeExists, op.U, op.V)
		}
		ng, _, _, err = g.WithArc(op.U, op.V, op.W)
		ch.Kind = KindImprove
	case OpDelete:
		ng, ch.OldW, err = g.WithoutArc(op.U, op.V)
		if errors.Is(err, graph.ErrNoArc) {
			err = fmt.Errorf("%w: %d-%d", ErrNoEdge, op.U, op.V)
		}
		ch.Kind = KindWorsen
	case OpReweight:
		// Range and self-loop mistakes get the splice's precise error;
		// only a well-formed pair without an arc is an ErrNoEdge conflict.
		if inRange := op.U >= 0 && int(op.U) < g.N() && op.V >= 0 && int(op.V) < g.N(); inRange && op.U != op.V {
			if _, exists := g.ArcWeight(op.U, op.V); !exists {
				return nil, Change{}, fmt.Errorf("%w: %d-%d", ErrNoEdge, op.U, op.V)
			}
		}
		ng, ch.OldW, _, err = g.WithArc(op.U, op.V, op.W)
		switch {
		case err != nil:
		case op.W < ch.OldW:
			ch.Kind = KindImprove
		case op.W > ch.OldW:
			ch.Kind = KindWorsen
		default:
			ch.Kind = KindNone
		}
	default:
		return nil, Change{}, fmt.Errorf("%w: %v", ErrOp, op.Op)
	}
	if err != nil {
		return nil, Change{}, err
	}

	next := &Snapshot{Version: old.Version + 1, G: ng}
	if ng.Undirected() {
		next.TR = ng
	} else {
		next.TR = ng.Transpose()
	}
	if reconcile != nil {
		reconcile(old, next, ch)
	}
	s.cur.Store(next)
	return next, ch, nil
}

// RowVerdict is the outcome of classifying one cached distance row
// against a change.
type RowVerdict uint8

const (
	// RowUnaffected: the row is exact in the new graph as-is; re-tag it.
	RowUnaffected RowVerdict = iota
	// RowRepairable: an improving arc lowers at least one entry; repair
	// in place with RepairImprove.
	RowRepairable
	// RowStale: a worsening arc was tight for this row; the row needs a
	// full re-solve.
	RowStale
)

func (v RowVerdict) String() string {
	switch v {
	case RowRepairable:
		return "repairable"
	case RowStale:
		return "stale"
	default:
		return "unaffected"
	}
}

// Classify decides what a change does to one exact distance row of the
// *old* graph (row[x] = d_old(src, x)).
//
// Improving arc (u,v,w): the row can only change if the new arc opens a
// shorter path to v, i.e. row[u] + w < row[v]; otherwise, for any target
// t, a simple path using the arc costs at least row[u] + w + d(v,t) >=
// row[v] + d(v,t) >= row[t] by the triangle inequality — no improvement.
//
// Worsening arc (u,v,oldW): the row can only change if the arc could lie
// on a recorded shortest path, i.e. it was tight: row[u] + oldW ==
// row[v]. A slack arc (row[u] + oldW > row[v]) makes every path through
// it strictly longer than the recorded optimum, so removing or
// lengthening it changes nothing.
func Classify(row []matrix.Dist, ch Change, undirected bool) RowVerdict {
	for _, a := range ch.Arcs(undirected) {
		switch ch.Kind {
		case KindImprove:
			if matrix.AddSat(row[a.U], a.W) < row[a.V] {
				return RowRepairable
			}
		case KindWorsen:
			if row[a.U] != matrix.Inf && matrix.AddSat(row[a.U], a.W) == row[a.V] {
				return RowStale
			}
		}
	}
	return RowUnaffected
}
