package dyn

import (
	"math/rand"
	"testing"

	"parapsp/internal/baseline"
	"parapsp/internal/gen"
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// TestRepairDifferential drives random mutations through the
// Classify/RepairImprove rules one row at a time and checks every
// resulting row against Floyd-Warshall on the mutated graph: unaffected
// rows must already be exact, repairable rows must be exact after the
// decrease-only repair, and stale verdicts must only ever be issued when
// the row actually needs a re-solve is *allowed* (a stale verdict is
// conservative, but an unaffected/repaired verdict must never leave a
// wrong row behind).
func TestRepairDifferential(t *testing.T) {
	for _, tc := range []struct {
		name       string
		undirected bool
		w          gen.Weighting
	}{
		{"directed-unweighted", false, gen.Weighting{}},
		{"directed-weighted", false, gen.Weighting{Min: 1, Max: 9}},
		{"undirected-unweighted", true, gen.Weighting{}},
		{"undirected-weighted", true, gen.Weighting{Min: 1, Max: 9}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 48
			g := testGraph(t, n, tc.undirected, 11, tc.w)
			st := NewStore(g, nil)
			rng := rand.New(rand.NewSource(13))
			for step := 0; step < 60; step++ {
				old := st.Current()
				op := randomOp(rng, old.G, tc.w)
				oldTruth := baseline.FloydWarshall(old.G)
				next, ch, err := st.Mutate(op, nil)
				if err != nil {
					t.Fatalf("step %d %v: %v", step, op, err)
				}
				newTruth := baseline.FloydWarshall(next.G)
				arcs := ch.Arcs(next.G.Undirected())
				for src := 0; src < n; src++ {
					row := make([]matrix.Dist, n)
					copy(row, oldTruth.Row(src))
					verdict := Classify(row, ch, next.G.Undirected())
					switch verdict {
					case RowUnaffected:
						// Must already be exact for the new graph.
						for x := 0; x < n; x++ {
							if row[x] != newTruth.At(src, x) {
								t.Fatalf("step %d %v: unaffected row %d wrong at %d: %d != %d",
									step, op, src, x, row[x], newTruth.At(src, x))
							}
						}
					case RowRepairable:
						improved := RepairImprove(next.G, row, arcs...)
						if improved == 0 {
							t.Fatalf("step %d %v: repairable row %d repaired nothing", step, op, src)
						}
						for x := 0; x < n; x++ {
							if row[x] != newTruth.At(src, x) {
								t.Fatalf("step %d %v: repaired row %d wrong at %d: %d != %d",
									step, op, src, x, row[x], newTruth.At(src, x))
							}
						}
					case RowStale:
						if ch.Kind != KindWorsen {
							t.Fatalf("step %d %v: stale verdict on %v change", step, op, ch.Kind)
						}
					}
				}
			}
		})
	}
}

// randomOp draws a valid mutation against g's current edge set: inserts
// pick absent pairs, deletes and reweights pick existing arcs.
func randomOp(rng *rand.Rand, g *graph.Graph, w gen.Weighting) EdgeOp {
	n := int32(g.N())
	weight := func() matrix.Dist {
		if w.Min == 0 && w.Max == 0 {
			return 1
		}
		return w.Min + matrix.Dist(rng.Int63n(int64(w.Max-w.Min+1)))
	}
	for {
		u := rng.Int31n(n)
		v := rng.Int31n(n - 1)
		if v >= u {
			v++
		}
		_, exists := g.ArcWeight(u, v)
		switch rng.Intn(3) {
		case 0: // insert
			if !exists {
				return EdgeOp{Op: OpInsert, U: u, V: v, W: weight()}
			}
		case 1: // delete
			if exists {
				return EdgeOp{Op: OpDelete, U: u, V: v}
			}
		default: // reweight (skipped on unweighted workloads: weight is pinned to 1)
			if exists && !(w.Min == 0 && w.Max == 0) {
				return EdgeOp{Op: OpReweight, U: u, V: v, W: weight()}
			}
		}
	}
}
