package dyn

import (
	"fmt"
	"math/rand"
	"testing"

	"parapsp/internal/baseline"
	"parapsp/internal/core"
	"parapsp/internal/gen"
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// TestMetamorphicRepairEqualsScratch is the metamorphic property behind
// the whole dynamic subsystem: maintaining every distance row through a
// random mutation sequence with the incremental rules (retag unaffected
// rows, RepairImprove repairable ones, full re-solve stale ones) must be
// checksum-identical to solving the final graph from scratch — across
// directed/undirected × weighted/unweighted × power-law/grid topologies
// and 1/2/8-worker from-scratch solves, race-clean.
func TestMetamorphicRepairEqualsScratch(t *testing.T) {
	topologies := []struct {
		name string
		make func(t *testing.T, undirected bool, w gen.Weighting) *graph.Graph
	}{
		{"powerlaw", func(t *testing.T, undirected bool, w gen.Weighting) *graph.Graph {
			g, err := gen.PowerLawConfiguration(60, 2.5, 2, undirected, 17, w)
			if err != nil {
				t.Fatalf("gen: %v", err)
			}
			return g
		}},
		{"grid", func(t *testing.T, undirected bool, w gen.Weighting) *graph.Graph {
			g, err := gen.Grid2D(8, 8, undirected, 19, w)
			if err != nil {
				t.Fatalf("gen: %v", err)
			}
			return g
		}},
	}
	for _, topo := range topologies {
		for _, undirected := range []bool{false, true} {
			for _, w := range []gen.Weighting{{}, {Min: 1, Max: 9}} {
				weighted := w.Min != 0
				name := fmt.Sprintf("%s/undirected=%v/weighted=%v", topo.name, undirected, weighted)
				t.Run(name, func(t *testing.T) {
					g := topo.make(t, undirected, w)
					runMetamorphic(t, g, w)
				})
			}
		}
	}
}

func runMetamorphic(t *testing.T, g *graph.Graph, w gen.Weighting) {
	n := g.N()
	st := NewStore(g, nil)
	rng := rand.New(rand.NewSource(23))

	// Seed all n rows from scratch, then maintain them incrementally.
	rows := make([][]matrix.Dist, n)
	for src := 0; src < n; src++ {
		rows[src] = make([]matrix.Dist, n)
		baseline.DijkstraSSSP(g, int32(src), rows[src])
	}

	var retagged, repaired, resolved int
	const steps = 40
	for step := 0; step < steps; step++ {
		op := randomOp(rng, st.Current().G, w)
		next, ch, err := st.Mutate(op, nil)
		if err != nil {
			t.Fatalf("step %d %v: %v", step, op, err)
		}
		arcs := ch.Arcs(next.G.Undirected())
		for src := 0; src < n; src++ {
			switch Classify(rows[src], ch, next.G.Undirected()) {
			case RowUnaffected:
				retagged++
			case RowRepairable:
				RepairImprove(next.G, rows[src], arcs...)
				repaired++
			case RowStale:
				baseline.DijkstraSSSP(next.G, int32(src), rows[src])
				resolved++
			}
		}
	}
	t.Logf("rows maintained over %d mutations: retagged=%d repaired=%d resolved=%d",
		steps, retagged, repaired, resolved)
	if repaired == 0 {
		t.Fatal("mutation sequence never exercised the repair path")
	}

	// From-scratch solves of the final graph at 1/2/8 workers must be
	// checksum-identical to the incrementally maintained rows.
	final := st.Current().G
	sources := make([]int32, n)
	for i := range sources {
		sources[i] = int32(i)
	}
	for _, workers := range []int{1, 2, 8} {
		sub, err := core.SolveSubset(final, sources, core.Options{Workers: workers})
		if err != nil {
			t.Fatalf("SolveSubset(workers=%d): %v", workers, err)
		}
		concat := make([]matrix.Dist, 0, n*n)
		for _, src := range sub.Sources {
			concat = append(concat, rows[src]...)
		}
		if got, want := matrix.ChecksumDists(concat), sub.Checksum(); got != want {
			t.Fatalf("workers=%d: incremental checksum %x != from-scratch %x", workers, got, want)
		}
	}
}
