package dyn

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"parapsp/internal/gen"
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

func testGraph(t testing.TB, n int, undirected bool, seed int64, w gen.Weighting) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLawConfiguration(n, 2.5, 2, undirected, seed, w)
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	return g
}

func TestStoreVersionChain(t *testing.T) {
	g := testGraph(t, 32, true, 3, gen.Weighting{Min: 1, Max: 9})
	st := NewStore(g, nil)
	if v := st.Version(); v != 1 {
		t.Fatalf("initial version %d, want 1", v)
	}
	s1 := st.Current()

	// Find an absent pair to insert.
	var u, v int32 = -1, -1
findPair:
	for a := int32(0); int(a) < g.N(); a++ {
		for b := a + 1; int(b) < g.N(); b++ {
			if _, ok := g.ArcWeight(a, b); !ok {
				u, v = a, b
				break findPair
			}
		}
	}
	if u < 0 {
		t.Fatal("no absent pair in test graph")
	}

	next, ch, err := st.Mutate(EdgeOp{Op: OpInsert, U: u, V: v, W: 2}, nil)
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	if next.Version != 2 || ch.Kind != KindImprove {
		t.Fatalf("insert published version=%d kind=%v", next.Version, ch.Kind)
	}
	if w, ok := next.G.ArcWeight(u, v); !ok || w != 2 {
		t.Fatalf("new snapshot missing inserted arc: w=%d ok=%v", w, ok)
	}
	if _, ok := s1.G.ArcWeight(u, v); ok {
		t.Fatal("pinned old snapshot observed the new arc")
	}
	if next.Oracle != nil {
		t.Fatal("post-mutation snapshot kept a stale oracle")
	}

	// Duplicate insert conflicts; reweight and delete succeed in turn.
	if _, _, err := st.Mutate(EdgeOp{Op: OpInsert, U: u, V: v, W: 5}, nil); !errors.Is(err, ErrEdgeExists) {
		t.Fatalf("duplicate insert: %v", err)
	}
	next, ch, err = st.Mutate(EdgeOp{Op: OpReweight, U: u, V: v, W: 7}, nil)
	if err != nil || ch.Kind != KindWorsen || ch.OldW != 2 {
		t.Fatalf("reweight up: next=%v ch=%+v err=%v", next, ch, err)
	}
	next, ch, err = st.Mutate(EdgeOp{Op: OpReweight, U: u, V: v, W: 7}, nil)
	if err != nil || ch.Kind != KindNone {
		t.Fatalf("no-op reweight: ch=%+v err=%v", ch, err)
	}
	next, ch, err = st.Mutate(EdgeOp{Op: OpDelete, U: u, V: v}, nil)
	if err != nil || ch.Kind != KindWorsen || ch.OldW != 7 {
		t.Fatalf("delete: ch=%+v err=%v", ch, err)
	}
	if _, _, err := st.Mutate(EdgeOp{Op: OpDelete, U: u, V: v}, nil); !errors.Is(err, ErrNoEdge) {
		t.Fatalf("double delete: %v", err)
	}
	if _, _, err := st.Mutate(EdgeOp{Op: OpReweight, U: u, V: v, W: 3}, nil); !errors.Is(err, ErrNoEdge) {
		t.Fatalf("reweight of deleted edge: %v", err)
	}
	if _, _, err := st.Mutate(EdgeOp{Op: Op(99), U: u, V: v}, nil); !errors.Is(err, ErrOp) {
		t.Fatalf("unknown op: %v", err)
	}
	if next.Version != 5 {
		t.Fatalf("version after 4 committed mutations = %d, want 5", next.Version)
	}
	// The old pinned snapshot is still version 1 and structurally intact.
	if s1.Version != 1 || s1.G.Validate() != nil {
		t.Fatalf("pinned snapshot degraded: %+v", s1)
	}
}

// TestSnapshotSwapNeverBlocksReaders pins the zero-downtime property the
// acceptance criteria name: readers pinning and using snapshots make
// continuous progress while a writer publishes a stream of versions, and
// a reconcile callback that is still running (the writer's pre-publish
// window) cannot stop Current() from answering.
func TestSnapshotSwapNeverBlocksReaders(t *testing.T) {
	g := testGraph(t, 64, true, 5, gen.Weighting{})
	st := NewStore(g, nil)

	stop := make(chan struct{})
	var reads atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := st.Current()
				// Touch the pinned graph: a swapped-out version must stay
				// fully readable.
				_ = snap.G.OutDegree(0)
				reads.Add(1)
				runtime.Gosched()
			}
		}()
	}

	// Writer: publish many versions; inside each reconcile window, assert
	// readers still observe the *old* version and keep making progress.
	u, v := int32(0), int32(1)
	if _, ok := g.ArcWeight(u, v); !ok {
		if _, _, err := st.Mutate(EdgeOp{Op: OpInsert, U: u, V: v, W: 1}, nil); err != nil {
			t.Fatalf("seed insert: %v", err)
		}
	}
	for i := 0; i < 50; i++ {
		w := matrix.Dist(1 + i%9)
		_, _, err := st.Mutate(EdgeOp{Op: OpReweight, U: u, V: v, W: w}, func(old, next *Snapshot, ch Change) {
			if got := st.Current().Version; got != old.Version {
				t.Errorf("reader-visible version %d inside reconcile window, want %d", got, old.Version)
			}
			// Wait until some reader completes a read while this mutation
			// is mid-flight: progress without blocking.
			before := reads.Load()
			for reads.Load() == before {
				runtime.Gosched()
			}
		})
		if err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if reads.Load() == 0 {
		t.Fatal("readers made no progress")
	}
}

// TestSnapshotPinAllocs pins the snapshot-pin fast path at zero
// allocations: pinning a version is one atomic pointer load.
func TestSnapshotPinAllocs(t *testing.T) {
	g := testGraph(t, 32, true, 7, gen.Weighting{})
	st := NewStore(g, nil)
	var sink *Snapshot
	if avg := testing.AllocsPerRun(1000, func() {
		sink = st.Current()
	}); avg != 0 {
		t.Fatalf("Store.Current allocates %.1f per pin, want 0", avg)
	}
	_ = sink
}

func TestOpParsing(t *testing.T) {
	for _, op := range []Op{OpInsert, OpDelete, OpReweight} {
		got, err := ParseOp(op.String())
		if err != nil || got != op {
			t.Fatalf("ParseOp(%q) = %v, %v", op.String(), got, err)
		}
	}
	if _, err := ParseOp("upsert"); !errors.Is(err, ErrOp) {
		t.Fatalf("ParseOp of unknown verb: %v", err)
	}
}
