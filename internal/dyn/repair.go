package dyn

import (
	"container/heap"

	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// RepairImprove repairs row in place after the improving arcs appeared in
// g (the *new* graph): a decrease-only Dijkstra seeded at each arc head
// with the distance the arc now offers. Because labels only ever drop and
// weights are positive, the search settles each vertex at its exact new
// distance while touching only vertices whose label actually improves —
// the pruned-repair property that makes an edge insert orders of
// magnitude cheaper than re-solving the row. Returns the number of
// distinct vertices whose label dropped.
//
// row must be the exact distance row of the graph *before* the change,
// and g the graph *after* it (the relaxation must see the new arc, or
// cascaded improvements through it would be missed).
func RepairImprove(g *graph.Graph, row []matrix.Dist, arcs ...Arc) int {
	var h repairHeap
	improved := 0
	touched := make(map[int32]bool)
	lower := func(v int32, d matrix.Dist) {
		row[v] = d
		if !touched[v] {
			touched[v] = true
			improved++
		}
		heap.Push(&h, repairItem{v: v, d: d})
	}
	for _, a := range arcs {
		if nd := matrix.AddSat(row[a.U], a.W); nd < row[a.V] {
			lower(a.V, nd)
		}
	}
	for h.Len() > 0 {
		it := heap.Pop(&h).(repairItem)
		if it.d > row[it.v] {
			continue // stale: a shorter label was found after the push
		}
		adj, wts := g.NeighborsW(it.v)
		for i, t := range adj {
			w := matrix.Dist(1)
			if wts != nil {
				w = wts[i]
			}
			if nd := matrix.AddSat(it.d, w); nd < row[t] {
				lower(t, nd)
			}
		}
	}
	return improved
}

// repairItem is one (vertex, tentative distance) heap entry.
type repairItem struct {
	v int32
	d matrix.Dist
}

// repairHeap is a binary min-heap by distance with lazy deletion, sized
// for the handful of vertices a typical repair touches.
type repairHeap []repairItem

func (h repairHeap) Len() int           { return len(h) }
func (h repairHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h repairHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *repairHeap) Push(x any)        { *h = append(*h, x.(repairItem)) }
func (h *repairHeap) Pop() any {
	old := *h
	n := len(old) - 1
	it := old[n]
	*h = old[:n]
	return it
}
