package graph

import (
	"fmt"
	"sort"

	"parapsp/internal/matrix"
)

// Builder accumulates edges and produces an immutable CSR Graph.
// The zero value is not ready to use; call NewBuilder.
//
// Policy knobs mirror how the paper's experiments preprocess the SNAP and
// KONECT datasets: self-loops are dropped (they never participate in a
// shortest path with positive weights) and parallel edges are merged,
// keeping the minimum weight.
type Builder struct {
	n          int
	undirected bool
	weighted   bool
	keepLoops  bool
	keepMulti  bool
	edges      []Edge
}

// NewBuilder returns a builder for a graph over n vertices.
// If undirected is true every added edge is materialized in both directions.
func NewBuilder(n int, undirected bool) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n, undirected: undirected}
}

// KeepSelfLoops makes Build retain self-loop edges instead of dropping them.
func (b *Builder) KeepSelfLoops() *Builder { b.keepLoops = true; return b }

// KeepParallelEdges makes Build retain parallel edges instead of merging
// them to the minimum weight.
func (b *Builder) KeepParallelEdges() *Builder { b.keepMulti = true; return b }

// ForceWeighted makes Build store explicit weights even when every edge
// weighs 1. Loaders use it so a weighted input file round-trips through
// WriteEdgeList with its weight column intact.
func (b *Builder) ForceWeighted() *Builder { b.weighted = true; return b }

// AddEdge records an unweighted (weight-1) edge.
func (b *Builder) AddEdge(from, to int32) error { return b.AddWeighted(from, to, 1) }

// AddWeighted records an edge with an explicit positive finite weight.
// Adding any weight other than 1 switches the built graph to weighted mode.
func (b *Builder) AddWeighted(from, to int32, w matrix.Dist) error {
	if from < 0 || int(from) >= b.n || to < 0 || int(to) >= b.n {
		return fmt.Errorf("%w: edge (%d,%d) in graph of %d vertices", ErrVertexRange, from, to, b.n)
	}
	if w == 0 || w == matrix.Inf {
		return fmt.Errorf("%w: got %d", ErrZeroWeight, w)
	}
	if w != 1 {
		b.weighted = true
	}
	b.edges = append(b.edges, Edge{From: from, To: to, W: w})
	return nil
}

// NumPending returns the number of edges recorded so far.
func (b *Builder) NumPending() int { return len(b.edges) }

// Build assembles the CSR graph. The builder can be reused afterwards;
// Build does not consume the recorded edges.
func (b *Builder) Build() (*Graph, error) {
	edges := b.edges
	if b.undirected {
		// Materialize the reverse arcs. Self-loops are added once here and
		// then deduplicated (or dropped) below like any other arc.
		rev := make([]Edge, 0, len(edges))
		for _, e := range edges {
			if e.From != e.To {
				rev = append(rev, Edge{From: e.To, To: e.From, W: e.W})
			}
		}
		edges = append(append(make([]Edge, 0, len(edges)+len(rev)), edges...), rev...)
	} else {
		edges = append(make([]Edge, 0, len(edges)), edges...)
	}

	if !b.keepLoops {
		kept := edges[:0]
		for _, e := range edges {
			if e.From != e.To {
				kept = append(kept, e)
			}
		}
		edges = kept
	}

	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		if edges[i].To != edges[j].To {
			return edges[i].To < edges[j].To
		}
		return edges[i].W < edges[j].W
	})

	if !b.keepMulti {
		kept := edges[:0]
		for i, e := range edges {
			if i > 0 && e.From == edges[i-1].From && e.To == edges[i-1].To {
				continue // keep the first occurrence, which has minimum weight
			}
			kept = append(kept, e)
		}
		edges = kept
	}

	offsets := make([]int64, b.n+1)
	for _, e := range edges {
		offsets[e.From+1]++
	}
	for v := 0; v < b.n; v++ {
		offsets[v+1] += offsets[v]
	}
	targets := make([]int32, len(edges))
	var weights []matrix.Dist
	if b.weighted {
		weights = make([]matrix.Dist, len(edges))
	}
	for i, e := range edges {
		targets[i] = e.To
		if weights != nil {
			weights[i] = e.W
		}
	}
	g := &Graph{offsets: offsets, targets: targets, weights: weights, undirected: b.undirected}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// FromEdges is a convenience constructor building a graph in one call.
func FromEdges(n int, undirected bool, edges []Edge) (*Graph, error) {
	b := NewBuilder(n, undirected)
	for _, e := range edges {
		if err := b.AddWeighted(e.From, e.To, e.W); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// FromPairs builds an unweighted graph from (from, to) pairs.
func FromPairs(n int, undirected bool, pairs [][2]int32) (*Graph, error) {
	b := NewBuilder(n, undirected)
	for _, p := range pairs {
		if err := b.AddEdge(p[0], p[1]); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
