package graph

import (
	"errors"
	"fmt"
	"sort"

	"parapsp/internal/matrix"
)

// Copy-on-write mutation. A Graph is immutable; the dynamic-graph layer
// (internal/dyn) evolves one by deriving successor graphs with single-arc
// splices. Each splice allocates fresh offsets/targets/weights arrays —
// O(n + m) memcpy — and never touches the receiver, so readers holding
// the old Graph keep an exact snapshot for as long as they need it.

// Errors returned by the copy-on-write mutators.
var (
	ErrNoArc    = errors.New("graph: arc does not exist")
	ErrSelfLoop = errors.New("graph: self-loop arcs are not supported")
)

// ArcWeight returns the weight of the arc from→to and whether it exists.
// For parallel arcs (KeepParallelEdges inputs) the minimum weight is
// reported, which is the only one a shortest path can use.
func (g *Graph) ArcWeight(from, to int32) (matrix.Dist, bool) {
	if from < 0 || int(from) >= g.N() || to < 0 || int(to) >= g.N() {
		return 0, false
	}
	adj, wts := g.NeighborsW(from)
	var best matrix.Dist
	ok := false
	for i, t := range adj {
		if t != to {
			continue
		}
		w := matrix.Dist(1)
		if wts != nil {
			w = wts[i]
		}
		if !ok || w < best {
			best, ok = w, true
		}
	}
	return best, ok
}

// WithArc returns a copy of g in which the arc from→to exists with weight
// w, plus the prior weight of the pair (0 if absent). Any parallel arcs
// between the pair are canonicalized to the single new arc. On an
// undirected graph both materialized directions are spliced together, so
// the result stays symmetric. Inserting a non-unit weight into an
// unweighted graph materializes explicit weights (all prior arcs keep
// weight 1).
func (g *Graph) WithArc(from, to int32, w matrix.Dist) (ng *Graph, oldW matrix.Dist, existed bool, err error) {
	if err := g.checkPair(from, to); err != nil {
		return nil, 0, false, err
	}
	if w == 0 || w == matrix.Inf {
		return nil, 0, false, fmt.Errorf("%w: got %d", ErrZeroWeight, w)
	}
	oldW, existed = g.ArcWeight(from, to)
	edits := []arcEdit{{from: from, to: to, w: w}}
	if g.undirected {
		edits = append(edits, arcEdit{from: to, to: from, w: w})
	}
	return g.editArcs(edits), oldW, existed, nil
}

// WithoutArc returns a copy of g with the arc from→to removed (all
// parallel arcs of the pair, and both directions on an undirected graph),
// plus the removed weight. It fails with ErrNoArc when the pair has no
// arc.
func (g *Graph) WithoutArc(from, to int32) (ng *Graph, oldW matrix.Dist, err error) {
	if err := g.checkPair(from, to); err != nil {
		return nil, 0, err
	}
	oldW, existed := g.ArcWeight(from, to)
	if !existed {
		return nil, 0, fmt.Errorf("%w: %d->%d", ErrNoArc, from, to)
	}
	edits := []arcEdit{{from: from, to: to, del: true}}
	if g.undirected {
		edits = append(edits, arcEdit{from: to, to: from, del: true})
	}
	return g.editArcs(edits), oldW, nil
}

func (g *Graph) checkPair(from, to int32) error {
	if from < 0 || int(from) >= g.N() || to < 0 || int(to) >= g.N() {
		return fmt.Errorf("%w: arc (%d,%d) in graph of %d vertices", ErrVertexRange, from, to, g.N())
	}
	if from == to {
		return fmt.Errorf("%w: (%d,%d)", ErrSelfLoop, from, to)
	}
	return nil
}

// arcEdit is one directed-arc change: set (insert-or-replace at weight w)
// or delete (all parallel arcs of the pair).
type arcEdit struct {
	from, to int32
	w        matrix.Dist
	del      bool
}

// editArcs rebuilds the CSR arrays with the given edits applied. Untouched
// adjacency lists are block-copied; only the (at most two) edited sources
// are merged arc by arc, preserving per-source target order.
func (g *Graph) editArcs(edits []arcEdit) *Graph {
	n := g.N()
	weighted := g.weights != nil
	for _, e := range edits {
		if !e.del && e.w != 1 {
			weighted = true
		}
	}
	bySrc := make(map[int32][]arcEdit, len(edits))
	for _, e := range edits {
		bySrc[e.from] = append(bySrc[e.from], e)
	}
	mergedT := make(map[int32][]int32, len(bySrc))
	mergedW := make(map[int32][]matrix.Dist, len(bySrc))
	m := int(g.NumArcs())
	for v, ve := range bySrc {
		ts, ws := g.mergeAdj(v, ve)
		mergedT[v], mergedW[v] = ts, ws
		m += len(ts) - g.OutDegree(v)
	}

	offsets := make([]int64, n+1)
	targets := make([]int32, 0, m)
	var wout []matrix.Dist
	if weighted {
		wout = make([]matrix.Dist, 0, m)
	}
	for v := 0; v < n; v++ {
		offsets[v] = int64(len(targets))
		if ts, ok := mergedT[int32(v)]; ok {
			targets = append(targets, ts...)
			if weighted {
				wout = append(wout, mergedW[int32(v)]...)
			}
			continue
		}
		adj, wts := g.NeighborsW(int32(v))
		targets = append(targets, adj...)
		if weighted {
			if wts != nil {
				wout = append(wout, wts...)
			} else {
				for range adj {
					wout = append(wout, 1)
				}
			}
		}
	}
	offsets[n] = int64(len(targets))
	return &Graph{offsets: offsets, targets: targets, weights: wout, undirected: g.undirected}
}

// mergeAdj applies a source's edits to its adjacency list, returning the
// new (targets, weights) pair with weights materialized.
func (g *Graph) mergeAdj(v int32, edits []arcEdit) ([]int32, []matrix.Dist) {
	adj, wts := g.NeighborsW(v)
	ts := make([]int32, 0, len(adj)+len(edits))
	ws := make([]matrix.Dist, 0, len(adj)+len(edits))
	for i, t := range adj {
		w := matrix.Dist(1)
		if wts != nil {
			w = wts[i]
		}
		ts, ws = append(ts, t), append(ws, w)
	}
	for _, e := range edits {
		k := 0
		for i, t := range ts {
			if t != e.to {
				ts[k], ws[k] = ts[i], ws[i]
				k++
			}
		}
		ts, ws = ts[:k], ws[:k]
		if !e.del {
			p := sort.Search(len(ts), func(i int) bool { return ts[i] >= e.to })
			ts = append(ts, 0)
			copy(ts[p+1:], ts[p:])
			ts[p] = e.to
			ws = append(ws, 0)
			copy(ws[p+1:], ws[p:])
			ws[p] = e.w
		}
	}
	return ts, ws
}
