package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"parapsp/internal/matrix"
)

func mustBuild(t *testing.T, n int, undirected bool, pairs [][2]int32) *Graph {
	t.Helper()
	g, err := FromPairs(n, undirected, pairs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := mustBuild(t, 0, false, nil)
	if g.N() != 0 || g.NumArcs() != 0 {
		t.Fatalf("empty graph N=%d arcs=%d", g.N(), g.NumArcs())
	}
	if min, max := g.MinMaxDegree(); min != 0 || max != 0 {
		t.Errorf("MinMaxDegree = %d,%d", min, max)
	}
	if h := g.DegreeHistogram(); h != nil {
		t.Errorf("DegreeHistogram = %v", h)
	}
}

func TestIsolatedVertices(t *testing.T) {
	g := mustBuild(t, 5, false, [][2]int32{{0, 1}})
	if g.N() != 5 || g.NumArcs() != 1 {
		t.Fatalf("N=%d arcs=%d", g.N(), g.NumArcs())
	}
	for v := int32(1); v < 5; v++ {
		if g.OutDegree(v) != 0 {
			t.Errorf("vertex %d degree %d, want 0", v, g.OutDegree(v))
		}
	}
}

func TestUndirectedSymmetry(t *testing.T) {
	g := mustBuild(t, 4, true, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	if g.NumArcs() != 6 {
		t.Fatalf("arcs = %d, want 6", g.NumArcs())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", g.NumEdges())
	}
	// each (u,v) arc must have a (v,u) arc
	for v := int32(0); v < 4; v++ {
		for _, w := range g.Neighbors(v) {
			found := false
			for _, x := range g.Neighbors(w) {
				if x == v {
					found = true
				}
			}
			if !found {
				t.Errorf("arc (%d,%d) has no reverse", v, w)
			}
		}
	}
}

func TestSelfLoopsDroppedByDefault(t *testing.T) {
	g := mustBuild(t, 3, false, [][2]int32{{0, 0}, {0, 1}, {2, 2}})
	if g.NumArcs() != 1 {
		t.Fatalf("arcs = %d, want 1", g.NumArcs())
	}
}

func TestSelfLoopsKept(t *testing.T) {
	b := NewBuilder(3, false).KeepSelfLoops()
	if err := b.AddEdge(0, 0); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumArcs() != 1 || g.Neighbors(0)[0] != 0 {
		t.Fatalf("self loop missing: %v", g.Neighbors(0))
	}
}

func TestParallelEdgesMergedMinWeight(t *testing.T) {
	b := NewBuilder(2, false)
	for _, w := range []matrix.Dist{5, 2, 9} {
		if err := b.AddWeighted(0, 1, w); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumArcs() != 1 {
		t.Fatalf("arcs = %d, want 1", g.NumArcs())
	}
	_, w := g.NeighborsW(0)
	if w[0] != 2 {
		t.Errorf("merged weight = %d, want 2", w[0])
	}
}

func TestParallelEdgesKept(t *testing.T) {
	b := NewBuilder(2, false).KeepParallelEdges()
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumArcs() != 2 {
		t.Fatalf("arcs = %d, want 2", g.NumArcs())
	}
}

func TestUndirectedDuplicateBothDirections(t *testing.T) {
	// Adding both (0,1) and (1,0) to an undirected builder must still
	// produce exactly one edge (two arcs).
	g := mustBuild(t, 2, true, [][2]int32{{0, 1}, {1, 0}})
	if g.NumArcs() != 2 {
		t.Fatalf("arcs = %d, want 2", g.NumArcs())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	b := NewBuilder(2, false)
	if err := b.AddEdge(-1, 0); !errors.Is(err, ErrVertexRange) {
		t.Errorf("negative from: %v", err)
	}
	if err := b.AddEdge(0, 2); !errors.Is(err, ErrVertexRange) {
		t.Errorf("out of range to: %v", err)
	}
	if err := b.AddWeighted(0, 1, 0); !errors.Is(err, ErrZeroWeight) {
		t.Errorf("zero weight: %v", err)
	}
	if err := b.AddWeighted(0, 1, matrix.Inf); !errors.Is(err, ErrZeroWeight) {
		t.Errorf("inf weight: %v", err)
	}
}

func TestWeightedFlag(t *testing.T) {
	b := NewBuilder(2, false)
	b.AddEdge(0, 1)
	g, _ := b.Build()
	if g.Weighted() {
		t.Error("weight-1 graph reported weighted")
	}
	b2 := NewBuilder(2, false)
	b2.AddWeighted(0, 1, 3)
	g2, _ := b2.Build()
	if !g2.Weighted() {
		t.Error("weighted graph reported unweighted")
	}
	adj, w := g2.NeighborsW(0)
	if len(adj) != 1 || w[0] != 3 {
		t.Errorf("NeighborsW = %v %v", adj, w)
	}
}

func TestDegrees(t *testing.T) {
	g := mustBuild(t, 4, false, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}})
	want := []int{3, 1, 0, 0}
	got := g.Degrees()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("degree[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	min, max := g.MinMaxDegree()
	if min != 0 || max != 3 {
		t.Errorf("MinMax = %d,%d", min, max)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := mustBuild(t, 4, false, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}})
	h := g.DegreeHistogram()
	want := []int64{2, 1, 0, 1}
	if len(h) != len(want) {
		t.Fatalf("hist len = %d, want %d", len(h), len(want))
	}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("hist[%d] = %d, want %d", i, h[i], want[i])
		}
	}
}

func TestTranspose(t *testing.T) {
	b := NewBuilder(3, false)
	b.AddWeighted(0, 1, 2)
	b.AddWeighted(1, 2, 3)
	b.AddWeighted(0, 2, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Transpose()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.OutDegree(2) != 2 || tr.OutDegree(0) != 0 {
		t.Errorf("transpose degrees wrong: %d %d", tr.OutDegree(2), tr.OutDegree(0))
	}
	adj, w := tr.NeighborsW(1)
	if len(adj) != 1 || adj[0] != 0 || w[0] != 2 {
		t.Errorf("transpose adjacency of 1 = %v %v", adj, w)
	}
	// transposing twice must restore arc multiset
	back := tr.Transpose()
	if back.NumArcs() != g.NumArcs() {
		t.Errorf("double transpose arcs = %d, want %d", back.NumArcs(), g.NumArcs())
	}
}

func TestTransposeUndirectedDegreesStable(t *testing.T) {
	g := mustBuild(t, 5, true, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	tr := g.Transpose()
	for v := int32(0); v < 5; v++ {
		if g.OutDegree(v) != tr.OutDegree(v) {
			t.Errorf("vertex %d degree changed %d -> %d", v, g.OutDegree(v), tr.OutDegree(v))
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := mustBuild(t, 3, false, [][2]int32{{0, 1}, {1, 2}})
	g.targets[0] = 99
	if err := g.Validate(); !errors.Is(err, ErrVertexRange) {
		t.Errorf("Validate on corrupt targets = %v", err)
	}
	g2 := mustBuild(t, 3, false, [][2]int32{{0, 1}})
	g2.offsets[1] = 5
	if err := g2.Validate(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Validate on corrupt offsets = %v", err)
	}
}

func TestString(t *testing.T) {
	g := mustBuild(t, 3, true, [][2]int32{{0, 1}})
	if s := g.String(); s != "graph.Graph(undirected, n=3, m=1)" {
		t.Errorf("String = %q", s)
	}
}

func TestBuilderReusable(t *testing.T) {
	b := NewBuilder(3, false)
	b.AddEdge(0, 1)
	g1, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	b.AddEdge(1, 2)
	g2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumArcs() != 1 || g2.NumArcs() != 2 {
		t.Errorf("arcs = %d and %d, want 1 and 2", g1.NumArcs(), g2.NumArcs())
	}
}

// Property: for random undirected simple graphs, sum of degrees == 2*edges
// and adjacency is symmetric; CSR always validates.
func TestRandomUndirectedProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := NewBuilder(n, true)
		for i := 0; i < n*2; i++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if err := b.AddEdge(u, v); err != nil {
				return false
			}
		}
		g, err := b.Build()
		if err != nil || g.Validate() != nil {
			return false
		}
		sum := int64(0)
		for _, d := range g.Degrees() {
			sum += int64(d)
		}
		return sum == g.NumArcs() && g.NumArcs() == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: building from the same edges in any order yields identical CSR.
func TestBuildOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		var pairs [][2]int32
		for i := 0; i < n; i++ {
			pairs = append(pairs, [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))})
		}
		g1, err := FromPairs(n, false, pairs)
		if err != nil {
			return false
		}
		rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
		g2, err := FromPairs(n, false, pairs)
		if err != nil {
			return false
		}
		if g1.NumArcs() != g2.NumArcs() {
			return false
		}
		for v := int32(0); v < int32(n); v++ {
			a1, a2 := g1.Neighbors(v), g2.Neighbors(v)
			if len(a1) != len(a2) {
				return false
			}
			for i := range a1 {
				if a1[i] != a2[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesWeighted(t *testing.T) {
	g, err := FromEdges(3, false, []Edge{{0, 1, 7}, {1, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() || g.NumArcs() != 2 {
		t.Fatalf("FromEdges: weighted=%v arcs=%d", g.Weighted(), g.NumArcs())
	}
	if _, err := FromEdges(1, false, []Edge{{0, 5, 1}}); err == nil {
		t.Error("FromEdges accepted out-of-range edge")
	}
}

func TestForceWeighted(t *testing.T) {
	b := NewBuilder(2, false).ForceWeighted()
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Error("ForceWeighted graph reported unweighted")
	}
	_, w := g.NeighborsW(0)
	if len(w) != 1 || w[0] != 1 {
		t.Errorf("weights = %v", w)
	}
}

func TestInducedSubgraph(t *testing.T) {
	// Path 0-1-2-3-4; select {1,2,3} -> path of length 2.
	g := mustBuild(t, 5, true, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	sub, names, err := g.InducedSubgraph([]int32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("sub = %v", sub)
	}
	if names[0] != 1 || names[2] != 3 {
		t.Errorf("names = %v", names)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// Edges crossing the selection are dropped.
	if sub.OutDegree(0) != 1 {
		t.Errorf("deg(new 0) = %d, want 1", sub.OutDegree(0))
	}
}

func TestInducedSubgraphWeightedDirected(t *testing.T) {
	b := NewBuilder(4, false)
	b.AddWeighted(0, 1, 5)
	b.AddWeighted(1, 2, 7)
	b.AddWeighted(2, 3, 9)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := g.InducedSubgraph([]int32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Weighted() || sub.NumArcs() != 1 {
		t.Fatalf("weighted=%v arcs=%d", sub.Weighted(), sub.NumArcs())
	}
	_, w := sub.NeighborsW(0)
	if w[0] != 7 {
		t.Errorf("weight = %d, want 7", w[0])
	}
}

func TestInducedSubgraphErrors(t *testing.T) {
	g := mustBuild(t, 3, true, [][2]int32{{0, 1}})
	if _, _, err := g.InducedSubgraph([]int32{5}); err == nil {
		t.Error("out-of-range accepted")
	}
	if _, _, err := g.InducedSubgraph([]int32{1, 1}); err == nil {
		t.Error("duplicate accepted")
	}
	sub, _, err := g.InducedSubgraph(nil)
	if err != nil || sub.N() != 0 {
		t.Errorf("empty selection: %v, %v", sub, err)
	}
}
