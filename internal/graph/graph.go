// Package graph provides the compressed-sparse-row (CSR) graph
// representation shared by every algorithm in this repository, together
// with construction, validation, and degree statistics.
//
// The paper's algorithms iterate outgoing adjacency lists of one vertex at
// a time (the edge-relaxation loop of the modified Dijkstra procedure) and
// read per-vertex degrees (the ordering procedures), so the representation
// is optimized for exactly those two accesses: a flat offsets array and a
// flat targets array, with an optional parallel weights array.
package graph

import (
	"errors"
	"fmt"

	"parapsp/internal/matrix"
)

// Graph is an immutable CSR directed multigraph. Undirected input graphs
// are stored with both edge directions materialized, which is how the
// paper's C/OpenMP implementation treats the SNAP/KONECT undirected
// datasets; Undirected records the input interpretation for reporting.
//
// Vertices are dense integers in [0, N()). Weights are optional: a nil
// weights array means every edge has weight 1 (hop-count metric), which is
// the configuration used for all of the paper's experiments.
type Graph struct {
	offsets    []int64 // len n+1; edge range of vertex v is [offsets[v], offsets[v+1])
	targets    []int32 // len m (directed edge count after symmetrization)
	weights    []matrix.Dist
	undirected bool
}

// Errors returned by graph construction and validation.
var (
	ErrVertexRange = errors.New("graph: vertex id out of range")
	ErrZeroWeight  = errors.New("graph: edge weight must be positive and finite")
	ErrCorrupt     = errors.New("graph: corrupt CSR structure")
)

// Edge is a weighted directed edge used during construction.
// For unweighted graphs use W == 1.
type Edge struct {
	From, To int32
	W        matrix.Dist
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// NumArcs returns the number of stored directed arcs. For an undirected
// graph this is twice the number of input edges (minus merged duplicates).
func (g *Graph) NumArcs() int64 { return g.offsets[g.N()] }

// NumEdges returns the edge count in the input's interpretation:
// arcs for directed graphs, arcs/2 for undirected graphs.
func (g *Graph) NumEdges() int64 {
	if g.undirected {
		return g.NumArcs() / 2
	}
	return g.NumArcs()
}

// Undirected reports whether the graph was built as undirected.
func (g *Graph) Undirected() bool { return g.undirected }

// Weighted reports whether the graph carries explicit edge weights.
func (g *Graph) Weighted() bool { return g.weights != nil }

// Neighbors returns the adjacency list of v as a slice aliasing internal
// storage; callers must not modify it.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.targets[g.offsets[v]:g.offsets[v+1]]
}

// NeighborsW returns the adjacency list of v and the parallel weight slice.
// The weight slice is nil for unweighted graphs (every edge weighs 1).
func (g *Graph) NeighborsW(v int32) ([]int32, []matrix.Dist) {
	lo, hi := g.offsets[v], g.offsets[v+1]
	if g.weights == nil {
		return g.targets[lo:hi], nil
	}
	return g.targets[lo:hi], g.weights[lo:hi]
}

// OutDegree returns the number of outgoing arcs of v. For undirected
// graphs this equals the vertex degree, which is the quantity the paper's
// ordering procedures sort by.
func (g *Graph) OutDegree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Degrees returns a freshly allocated out-degree array.
func (g *Graph) Degrees() []int {
	d := make([]int, g.N())
	for v := range d {
		d[v] = g.OutDegree(int32(v))
	}
	return d
}

// MinMaxDegree returns the minimum and maximum out-degree.
// Both are zero for an empty graph.
func (g *Graph) MinMaxDegree() (min, max int) {
	n := g.N()
	if n == 0 {
		return 0, 0
	}
	min, max = g.OutDegree(0), g.OutDegree(0)
	for v := 1; v < n; v++ {
		d := g.OutDegree(int32(v))
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	return min, max
}

// DegreeHistogram returns hist where hist[d] is the number of vertices of
// out-degree d; len(hist) is MaxDegree+1 (empty for an empty graph).
// This regenerates the data behind the paper's Figure 3.
func (g *Graph) DegreeHistogram() []int64 {
	_, max := g.MinMaxDegree()
	if g.N() == 0 {
		return nil
	}
	hist := make([]int64, max+1)
	for v := 0; v < g.N(); v++ {
		hist[g.OutDegree(int32(v))]++
	}
	return hist
}

// Validate checks CSR structural invariants; it returns nil on a healthy
// graph. It exists so that loaders and generators can assert their output
// and so tests can fuzz construction.
func (g *Graph) Validate() error {
	n := g.N()
	if n < 0 {
		return fmt.Errorf("%w: negative vertex count", ErrCorrupt)
	}
	if g.offsets[0] != 0 {
		return fmt.Errorf("%w: offsets[0] != 0", ErrCorrupt)
	}
	for v := 0; v < n; v++ {
		if g.offsets[v+1] < g.offsets[v] {
			return fmt.Errorf("%w: offsets not monotone at %d", ErrCorrupt, v)
		}
	}
	if g.offsets[n] != int64(len(g.targets)) {
		return fmt.Errorf("%w: offsets[n]=%d != len(targets)=%d", ErrCorrupt, g.offsets[n], len(g.targets))
	}
	if g.weights != nil && len(g.weights) != len(g.targets) {
		return fmt.Errorf("%w: weights length %d != targets length %d", ErrCorrupt, len(g.weights), len(g.targets))
	}
	for i, t := range g.targets {
		if t < 0 || int(t) >= n {
			return fmt.Errorf("%w: target %d at arc %d", ErrVertexRange, t, i)
		}
	}
	if g.weights != nil {
		for i, w := range g.weights {
			if w == 0 || w == matrix.Inf {
				return fmt.Errorf("%w: arc %d has weight %d", ErrZeroWeight, i, w)
			}
		}
	}
	return nil
}

// Transpose returns the graph with every arc reversed. Weights follow
// their arcs. The undirected flag is preserved (transposing an undirected
// graph is a no-op up to adjacency ordering).
func (g *Graph) Transpose() *Graph {
	n := g.N()
	counts := make([]int64, n+1)
	for _, t := range g.targets {
		counts[t+1]++
	}
	for v := 0; v < n; v++ {
		counts[v+1] += counts[v]
	}
	targets := make([]int32, len(g.targets))
	var weights []matrix.Dist
	if g.weights != nil {
		weights = make([]matrix.Dist, len(g.weights))
	}
	next := make([]int64, n)
	copy(next, counts[:n])
	for v := 0; v < n; v++ {
		adj, w := g.NeighborsW(int32(v))
		for i, t := range adj {
			p := next[t]
			next[t]++
			targets[p] = int32(v)
			if weights != nil {
				weights[p] = w[i]
			}
		}
	}
	return &Graph{offsets: counts, targets: targets, weights: weights, undirected: g.undirected}
}

// String summarizes the graph.
func (g *Graph) String() string {
	kind := "directed"
	if g.undirected {
		kind = "undirected"
	}
	return fmt.Sprintf("graph.Graph(%s, n=%d, m=%d)", kind, g.N(), g.NumEdges())
}

// InducedSubgraph returns the subgraph induced by the given vertices,
// which must be distinct and in range; arcs are kept iff both endpoints
// are selected. The second return value maps new ids to old ids
// (newToOld[i] is the original id of new vertex i). The common use is
// restricting APSP to the largest connected component, where most of the
// full matrix would otherwise be Inf.
func (g *Graph) InducedSubgraph(vertices []int32) (*Graph, []int32, error) {
	oldToNew := make(map[int32]int32, len(vertices))
	newToOld := make([]int32, len(vertices))
	for i, v := range vertices {
		if v < 0 || int(v) >= g.N() {
			return nil, nil, fmt.Errorf("%w: vertex %d", ErrVertexRange, v)
		}
		if _, dup := oldToNew[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in subgraph selection", v)
		}
		oldToNew[v] = int32(i)
		newToOld[i] = v
	}
	b := NewBuilder(len(vertices), g.undirected)
	for newU, oldU := range newToOld {
		adj, wts := g.NeighborsW(oldU)
		for i, oldV := range adj {
			newV, ok := oldToNew[oldV]
			if !ok {
				continue
			}
			if g.undirected && newV < int32(newU) {
				continue // emit each undirected edge once
			}
			w := matrix.Dist(1)
			if wts != nil {
				w = wts[i]
			}
			if err := b.AddWeighted(int32(newU), newV, w); err != nil {
				return nil, nil, err
			}
		}
	}
	if g.weights != nil {
		b.ForceWeighted()
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, newToOld, nil
}
