package graph

// Fingerprint returns a structural hash of the graph: vertex count,
// directedness, and every arc with its weight, folded through FNV-1a/64.
// Two graphs share a fingerprint exactly when their CSR contents match,
// which is what pins on-disk artifacts (the cold-tier spill arena, saved
// landmark oracles) to the graph they were computed for.
func (g *Graph) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= uint64(byte(v >> s))
			h *= prime64
		}
	}
	mix(uint64(g.N()))
	if g.undirected {
		mix(1)
	} else {
		mix(0)
	}
	for _, o := range g.offsets {
		mix(uint64(o))
	}
	for i, t := range g.targets {
		mix(uint64(uint32(t)))
		if g.weights != nil {
			mix(uint64(g.weights[i]))
		}
	}
	return h
}
