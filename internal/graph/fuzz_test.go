package graph

import "testing"

// FuzzBuilder feeds arbitrary edge bytes to the builder and asserts that
// whatever builds successfully is a structurally valid CSR graph whose
// degree accounting is internally consistent.
func FuzzBuilder(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2}, uint8(4), true, false, false)
	f.Add([]byte{0, 0}, uint8(1), false, true, false)
	f.Add([]byte{3, 2, 2, 3, 3, 2}, uint8(5), true, false, true)
	f.Add([]byte{}, uint8(0), false, false, false)
	f.Fuzz(func(t *testing.T, data []byte, nRaw uint8, undirected, keepLoops, keepMulti bool) {
		n := int(nRaw % 32)
		b := NewBuilder(n, undirected)
		if keepLoops {
			b.KeepSelfLoops()
		}
		if keepMulti {
			b.KeepParallelEdges()
		}
		added := 0
		for i := 0; i+1 < len(data); i += 2 {
			u, v := int32(data[i]), int32(data[i+1])
			err := b.AddEdge(u, v)
			inRange := int(u) < n && int(v) < n
			if inRange && err != nil {
				t.Fatalf("in-range edge (%d,%d) rejected: %v", u, v, err)
			}
			if !inRange && err == nil {
				t.Fatalf("out-of-range edge (%d,%d) accepted", u, v)
			}
			if err == nil {
				added++
			}
		}
		if b.NumPending() != added {
			t.Fatalf("pending %d != added %d", b.NumPending(), added)
		}
		g, err := b.Build()
		if err != nil {
			t.Fatalf("build failed on accepted edges: %v", err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("built graph invalid: %v", err)
		}
		// Degree sum equals arc count.
		sum := int64(0)
		for _, d := range g.Degrees() {
			sum += int64(d)
		}
		if sum != g.NumArcs() {
			t.Fatalf("degree sum %d != arcs %d", sum, g.NumArcs())
		}
		// Arc count cannot exceed what was added (after symmetrization).
		limit := int64(added)
		if undirected {
			limit *= 2
		}
		if g.NumArcs() > limit {
			t.Fatalf("arcs %d exceed input bound %d", g.NumArcs(), limit)
		}
		// Without loop/multi keeping, the graph is simple.
		if !keepLoops {
			for v := int32(0); v < int32(n); v++ {
				for _, u := range g.Neighbors(v) {
					if u == v {
						t.Fatalf("self loop survived at %d", v)
					}
				}
			}
		}
		if !keepMulti {
			for v := int32(0); v < int32(n); v++ {
				adj := g.Neighbors(v)
				for i := 1; i < len(adj); i++ {
					if adj[i] == adj[i-1] {
						t.Fatalf("parallel arc survived at %d->%d", v, adj[i])
					}
				}
			}
		}
	})
}
