package graph

import (
	"errors"
	"math/rand"
	"testing"

	"parapsp/internal/matrix"
)

// rebuildWith applies the same logical edge set through a fresh Builder,
// the oracle for the copy-on-write splice: after any WithArc/WithoutArc
// sequence the result must equal a graph built from scratch from the
// surviving edge map.
func rebuildWith(t *testing.T, n int, undirected, weighted bool, edges map[[2]int32]matrix.Dist) *Graph {
	t.Helper()
	b := NewBuilder(n, undirected)
	if weighted {
		b.ForceWeighted()
	}
	for p, w := range edges {
		if err := b.AddWeighted(p[0], p[1], w); err != nil {
			t.Fatalf("AddWeighted(%v, %d): %v", p, w, err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func sameGraph(t *testing.T, got, want *Graph) {
	t.Helper()
	if err := got.Validate(); err != nil {
		t.Fatalf("mutated graph invalid: %v", err)
	}
	if got.N() != want.N() || got.NumArcs() != want.NumArcs() {
		t.Fatalf("shape mismatch: got n=%d m=%d, want n=%d m=%d",
			got.N(), got.NumArcs(), want.N(), want.NumArcs())
	}
	for v := int32(0); int(v) < want.N(); v++ {
		ga, gw := got.NeighborsW(v)
		wa, ww := want.NeighborsW(v)
		if len(ga) != len(wa) {
			t.Fatalf("vertex %d: degree %d != %d", v, len(ga), len(wa))
		}
		for i := range ga {
			if ga[i] != wa[i] {
				t.Fatalf("vertex %d arc %d: target %d != %d", v, i, ga[i], wa[i])
			}
			gwi, wwi := matrix.Dist(1), matrix.Dist(1)
			if gw != nil {
				gwi = gw[i]
			}
			if ww != nil {
				wwi = ww[i]
			}
			if gwi != wwi {
				t.Fatalf("vertex %d arc %d: weight %d != %d", v, i, gwi, wwi)
			}
		}
	}
}

// TestMutateMatchesRebuild drives a random splice sequence against a
// mirror edge map for every directed/undirected × weighted/unweighted
// combination and checks each step against a from-scratch Build.
func TestMutateMatchesRebuild(t *testing.T) {
	for _, tc := range []struct {
		name       string
		undirected bool
		weighted   bool
	}{
		{"directed-unweighted", false, false},
		{"directed-weighted", false, true},
		{"undirected-unweighted", true, false},
		{"undirected-weighted", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 24
			rng := rand.New(rand.NewSource(7))
			edges := map[[2]int32]matrix.Dist{}
			key := func(u, v int32) [2]int32 {
				if tc.undirected && u > v {
					u, v = v, u
				}
				return [2]int32{u, v}
			}
			g := rebuildWith(t, n, tc.undirected, tc.weighted, edges)
			for step := 0; step < 120; step++ {
				u := int32(rng.Intn(n))
				v := int32(rng.Intn(n - 1))
				if v >= u {
					v++
				}
				w := matrix.Dist(1)
				if tc.weighted {
					w = matrix.Dist(1 + rng.Intn(9))
				}
				k := key(u, v)
				_, had := edges[k]
				if had && rng.Intn(2) == 0 {
					ng, _, err := g.WithoutArc(u, v)
					if err != nil {
						t.Fatalf("step %d WithoutArc(%d,%d): %v", step, u, v, err)
					}
					delete(edges, k)
					g = ng
				} else {
					ng, oldW, existed, err := g.WithArc(u, v, w)
					if err != nil {
						t.Fatalf("step %d WithArc(%d,%d,%d): %v", step, u, v, w, err)
					}
					if existed != had {
						t.Fatalf("step %d: existed=%v, mirror says %v", step, existed, had)
					}
					if had && oldW != edges[k] {
						t.Fatalf("step %d: oldW=%d, mirror says %d", step, oldW, edges[k])
					}
					edges[k] = w
					g = ng
				}
				sameGraph(t, g, rebuildWith(t, n, tc.undirected, tc.weighted || g.Weighted(), edges))
			}
		})
	}
}

func TestMutateImmutableReceiver(t *testing.T) {
	g, err := FromPairs(4, false, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	before := g.NumArcs()
	if _, _, _, err := g.WithArc(0, 3, 5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.WithoutArc(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.NumArcs() != before {
		t.Fatalf("receiver mutated: arcs %d -> %d", before, g.NumArcs())
	}
	if w, ok := g.ArcWeight(0, 1); !ok || w != 1 {
		t.Fatalf("receiver lost arc 0->1: w=%d ok=%v", w, ok)
	}
}

func TestMutateWeightMaterialization(t *testing.T) {
	g, err := FromPairs(3, true, [][2]int32{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Weighted() {
		t.Fatal("seed graph unexpectedly weighted")
	}
	// Unit-weight insert keeps the implicit representation.
	g1, _, _, err := g.WithArc(1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Weighted() {
		t.Fatal("unit-weight insert materialized weights")
	}
	// A non-unit weight forces materialization; old arcs keep weight 1.
	g2, _, _, err := g1.WithArc(0, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Weighted() {
		t.Fatal("non-unit insert did not materialize weights")
	}
	if w, ok := g2.ArcWeight(0, 1); !ok || w != 1 {
		t.Fatalf("arc 0->1 weight %d ok=%v, want 1", w, ok)
	}
	if w, ok := g2.ArcWeight(2, 0); !ok || w != 7 {
		t.Fatalf("undirected reverse arc 2->0 weight %d ok=%v, want 7", w, ok)
	}
}

func TestMutateErrors(t *testing.T) {
	g, err := FromPairs(3, false, [][2]int32{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := g.WithArc(0, 0, 1); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("self-loop insert: %v", err)
	}
	if _, _, _, err := g.WithArc(0, 5, 1); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("out-of-range insert: %v", err)
	}
	if _, _, _, err := g.WithArc(0, 1, 0); !errors.Is(err, ErrZeroWeight) {
		t.Fatalf("zero-weight insert: %v", err)
	}
	if _, _, _, err := g.WithArc(0, 1, matrix.Inf); !errors.Is(err, ErrZeroWeight) {
		t.Fatalf("inf-weight insert: %v", err)
	}
	if _, _, err := g.WithoutArc(1, 0); !errors.Is(err, ErrNoArc) {
		t.Fatalf("missing-arc delete: %v", err)
	}
	if _, ok := g.ArcWeight(0, 2); ok {
		t.Fatal("ArcWeight reported a nonexistent arc")
	}
}
