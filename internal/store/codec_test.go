package store

import (
	"bytes"
	"math/rand"
	"testing"

	"parapsp/internal/matrix"
)

// testRefs is a fixed dictionary for codec tests.
type testRefs struct {
	rows map[uint32][]matrix.Dist
	pick map[int32]uint32
}

func (r *testRefs) RefFor(src int32) (uint32, []matrix.Dist) {
	id := r.pick[src]
	return id, r.rows[id]
}

func (r *testRefs) RefRow(id uint32) []matrix.Dist { return r.rows[id] }

// genRow produces distance-row-shaped test data: long Inf runs (the
// unreachable tail of a power-law component), hub-close short distances,
// and grid-like locally incremental stretches.
func genRow(rng *rand.Rand, n int, shape string) []matrix.Dist {
	row := make([]matrix.Dist, n)
	switch shape {
	case "powerlaw":
		for i := range row {
			switch {
			case rng.Float64() < 0.3:
				row[i] = matrix.Inf
			default:
				row[i] = matrix.Dist(rng.Intn(12))
			}
		}
	case "grid":
		d := matrix.Dist(0)
		for i := range row {
			d += matrix.Dist(rng.Intn(3))
			row[i] = d
		}
	case "infrun":
		for i := range row {
			if i%7 < 5 {
				row[i] = matrix.Inf
			} else {
				row[i] = matrix.Dist(rng.Intn(1000))
			}
		}
	case "extremes":
		for i := range row {
			switch rng.Intn(4) {
			case 0:
				row[i] = 0
			case 1:
				row[i] = matrix.Inf
			case 2:
				row[i] = matrix.Inf - 1
			default:
				row[i] = matrix.Dist(rng.Uint32() % uint32(matrix.Inf))
			}
		}
	}
	return row
}

// TestCodecRoundTrip is the differential test of satellite 3: every
// encoded row must decode back bitwise-equal, across row shapes, row
// lengths, and both delta modes.
func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	shapes := []string{"powerlaw", "grid", "infrun", "extremes"}
	for _, n := range []int{0, 1, 2, 17, 256, 4096} {
		refs := &testRefs{rows: map[uint32][]matrix.Dist{}, pick: map[int32]uint32{}}
		refs.rows[1] = genRow(rng, n, "powerlaw")
		refs.rows[2] = genRow(rng, n, "grid")
		for _, shape := range shapes {
			for trial := 0; trial < 20; trial++ {
				row := genRow(rng, n, shape)
				refID := uint32(trial % 3) // 0 = self-delta
				refs.pick[0] = refID
				id, ref := refs.RefFor(0)
				frame := AppendFrame(nil, row, id, ref)
				got, err := DecodeFrame(frame, n, nil, refs)
				if err != nil {
					t.Fatalf("n=%d shape=%s ref=%d: decode: %v", n, shape, refID, err)
				}
				if len(got) != len(row) {
					t.Fatalf("n=%d shape=%s: got %d entries", n, shape, len(got))
				}
				for i := range row {
					if got[i] != row[i] {
						t.Fatalf("n=%d shape=%s ref=%d entry %d: got %d want %d",
							n, shape, refID, i, got[i], row[i])
					}
				}
			}
		}
	}
}

// TestCodecRefCompression checks the design claim that landmark-reference
// deltas beat self-deltas for hub-close rows: a row equal to the
// reference plus tiny offsets must encode near 1 byte/entry.
func TestCodecRefCompression(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 2048
	ref := genRow(rng, n, "powerlaw")
	row := make([]matrix.Dist, n)
	for i, d := range ref {
		if d == matrix.Inf {
			row[i] = matrix.Inf
		} else {
			row[i] = d + matrix.Dist(rng.Intn(3))
		}
	}
	refs := &testRefs{rows: map[uint32][]matrix.Dist{1: ref}, pick: map[int32]uint32{0: 1}}
	frame := AppendFrame(nil, row, 1, ref)
	if len(frame) > n+64 {
		t.Fatalf("ref-delta frame is %d bytes for %d entries; expected ~1 byte/entry", len(frame), n)
	}
	raw := 4 * n
	if len(frame)*2 > raw {
		t.Fatalf("ref-delta frame %d bytes fails to halve raw %d bytes", len(frame), raw)
	}
	got, err := DecodeFrame(frame, n, nil, refs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if got[i] != row[i] {
			t.Fatalf("entry %d: got %d want %d", i, got[i], row[i])
		}
	}
}

// TestCodecSteadyAllocs pins the zero-steady-state-allocation contract:
// with pre-sized scratch, neither encode nor decode allocates.
func TestCodecSteadyAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 1024
	row := genRow(rng, n, "powerlaw")
	ref := genRow(rng, n, "grid")
	refs := &testRefs{rows: map[uint32][]matrix.Dist{1: ref}, pick: map[int32]uint32{0: 1}}
	buf := make([]byte, 0, 16*n)
	dst := make([]matrix.Dist, n)
	frame := AppendFrame(buf[:0], row, 1, ref)
	if allocs := testing.AllocsPerRun(100, func() {
		frame = AppendFrame(buf[:0], row, 1, ref)
	}); allocs != 0 {
		t.Fatalf("AppendFrame allocates %.1f per run with pre-sized scratch", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		out, err := DecodeFrame(frame, n, dst, refs)
		if err != nil {
			t.Fatal(err)
		}
		dst = out
	}); allocs != 0 {
		t.Fatalf("DecodeFrame allocates %.1f per run with pre-sized scratch", allocs)
	}
}

// TestDecodeFrameRejects covers the malformed-frame classes the fuzz
// target explores, deterministically.
func TestDecodeFrameRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 64
	row := genRow(rng, n, "powerlaw")
	ref := genRow(rng, n, "grid")
	refs := &testRefs{rows: map[uint32][]matrix.Dist{1: ref}, pick: map[int32]uint32{0: 1}}
	good := AppendFrame(nil, row, 1, ref)
	selfGood := AppendFrame(nil, row, 0, nil)

	cases := map[string][]byte{
		"empty":        {},
		"short":        {frameMagic},
		"bad magic":    append([]byte{0x00}, good[1:]...),
		"bad format":   append([]byte{frameMagic, 0x7f}, good[2:]...),
		"truncated":    good[:len(good)/2],
		"trailing":     append(append([]byte{}, good...), 0x00),
		"flip payload": flipByte(good, len(good)-8),
		"flip header":  flipByte(good, 3),
	}
	for name, frame := range cases {
		if _, err := DecodeFrame(frame, n, nil, refs); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// Dictionary failures: missing provider, unknown id, checksum drift.
	if _, err := DecodeFrame(good, n, nil, nil); err == nil {
		t.Error("ref frame decoded with nil dictionary")
	}
	wrongRefs := &testRefs{rows: map[uint32][]matrix.Dist{1: genRow(rng, n, "grid")}}
	if _, err := DecodeFrame(good, n, nil, wrongRefs); err == nil {
		t.Error("ref frame decoded against a different dictionary row")
	}
	// Wrong expected length.
	if _, err := DecodeFrame(selfGood, n+1, nil, nil); err == nil {
		t.Error("frame decoded at the wrong expectN")
	}
	// Sanity: the originals still decode.
	if _, err := DecodeFrame(good, n, nil, refs); err != nil {
		t.Fatalf("pristine ref frame: %v", err)
	}
	if _, err := DecodeFrame(selfGood, n, nil, nil); err != nil {
		t.Fatalf("pristine self frame: %v", err)
	}
}

func flipByte(frame []byte, i int) []byte {
	out := append([]byte{}, frame...)
	out[i] ^= 0xff
	return out
}

// FuzzDecodeFrame pins the no-panic/no-over-read contract on arbitrary
// bytes (satellite 3). Valid inputs must round-trip; everything else must
// return an error wrapping ErrFrame.
func FuzzDecodeFrame(f *testing.F) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range []string{"powerlaw", "grid", "extremes"} {
		row := genRow(rng, 32, shape)
		f.Add(AppendFrame(nil, row, 0, nil), 32)
	}
	f.Add([]byte{frameMagic, frameFormat, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x7f}, 8)
	f.Add([]byte{}, 0)
	ref := genRow(rng, 16, "grid")
	refs := &testRefs{rows: map[uint32][]matrix.Dist{1: ref}}
	f.Add(AppendFrame(nil, genRow(rng, 16, "powerlaw"), 1, ref), 16)
	f.Fuzz(func(t *testing.T, frame []byte, n int) {
		if n < -1 || n > 1<<16 {
			n = -1
		}
		row, err := DecodeFrame(frame, n, nil, refs)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode to an equivalent row.
		re := AppendFrame(nil, row, 0, nil)
		row2, err := DecodeFrame(re, len(row), nil, nil)
		if err != nil {
			t.Fatalf("re-encode of decoded row fails: %v", err)
		}
		for i := range row {
			if row[i] != row2[i] {
				t.Fatalf("entry %d drifts across re-encode", i)
			}
		}
	})
}

// TestVarintNeverOverReads hands readUvarint every prefix of a long
// continuation run; it must error, not read past the slice.
func TestVarintNeverOverReads(t *testing.T) {
	cont := bytes.Repeat([]byte{0x80}, 12)
	for i := 0; i <= len(cont); i++ {
		if _, _, err := readUvarint(cont[:i]); err == nil {
			t.Fatalf("prefix of %d continuation bytes decoded", i)
		}
	}
	// 10-byte encodings at the uint64 boundary.
	max := appendUvarint(nil, 1<<64-1)
	v, rest, err := readUvarint(max)
	if err != nil || v != 1<<64-1 || len(rest) != 0 {
		t.Fatalf("max uint64: v=%d rest=%d err=%v", v, len(rest), err)
	}
	over := append([]byte{}, max...)
	over[9] = 0x02 // would need bit 64
	if _, _, err := readUvarint(over); err == nil {
		t.Fatal("65-bit varint decoded")
	}
}
