//go:build !unix

package store

// Non-unix platforms read the arena through pread; the mapped view stays
// nil and readAt falls through to os.File.ReadAt.

func (a *arena) mapInit() { a.mapped = nil }
func (a *arena) remap()   { a.mapped = nil }
func (a *arena) unmap()   { a.mapped = nil }
