package store

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"parapsp/internal/matrix"
	"parapsp/internal/obs"
)

// Key identifies one distance row: a source vertex at a graph version —
// the same keying as the serving layer's hot tier, so the three tiers
// compose under the PR 8 versioned-cache semantics.
type Key struct {
	Src int32
	Ver uint64
}

// Tier names where a Get found (or did not find) a row.
type Tier uint8

const (
	// TierNone: not resident in any compressed tier.
	TierNone Tier = iota
	// TierWarm: decoded from the in-memory compressed tier (T2).
	TierWarm
	// TierCold: decoded from the disk arena (T3).
	TierCold
)

func (t Tier) String() string {
	switch t {
	case TierWarm:
		return "warm"
	case TierCold:
		return "cold"
	default:
		return "none"
	}
}

// Verdict is a reconciliation decision for one frame at the mutating
// version (the store-side mirror of dyn.RowVerdict, kept local so the
// store does not depend on the mutation machinery).
type Verdict uint8

const (
	// Keep: the row is exact in the new graph; retag the frame for free.
	Keep Verdict = iota
	// Repair: the row needs the caller's in-place repair, then re-encode.
	Repair
	// Drop: the row is stale; discard the frame.
	Drop
)

// Config tunes a Store.
type Config struct {
	// N is the row length (the served graph's vertex count). Every Put
	// and Get moves rows of exactly this length.
	N int
	// WarmBytes budgets the in-memory compressed tier; <= 0 disables it
	// (every Put goes straight to spill, or is dropped when spill is off).
	WarmBytes int64
	// SpillBytes budgets the live bytes of the disk arena; <= 0 disables
	// spilling entirely.
	SpillBytes int64
	// SpillPath is the arena file (created or recovered). Required when
	// SpillBytes > 0.
	SpillPath string
	// Fingerprint identifies the served graph inside the arena header;
	// reopening an arena written for a different graph resets it.
	Fingerprint uint64
	// Refs is the optional compression dictionary (nearest-landmark
	// reference rows); nil encodes every frame as self-delta.
	Refs RefProvider
	// Metrics receives the store's internal counters (store.*): spill
	// timing, compactions, decode/roundtrip errors, recovered frames.
	// nil creates a private registry.
	Metrics *obs.Metrics
}

// entryState tracks where a frame's bytes live.
type entryState uint8

const (
	stateWarm     entryState = iota // buf resident, counted in warmBytes
	stateSpilling                   // buf resident, queued for the arena
	stateCold                       // on disk at off/len
)

type entry struct {
	key    Key
	state  entryState
	buf    []byte // compressed frame while warm or spilling
	off    int64  // arena offset once cold
	length int32  // payload length once cold
	// diskKey is the (Src,Ver) in the on-disk record header once cold.
	// Retagging rebinds key without rewriting the record, so the two can
	// differ; arena reads validate the header against diskKey.
	diskKey Key
	elem   *list.Element
	// dropped marks an entry the index abandoned while it sat in the
	// spill queue; the writeback goroutine discards it on arrival.
	dropped bool
}

// Store is the warm+cold compressed row store. All index state is behind
// one mutex; the only long-running work under it is a frame decode
// (O(n) varint scan). Arena file I/O happens in the writeback goroutine
// and in Get's cold reads (the arena has its own lock).
type Store struct {
	cfg Config

	mu      sync.Mutex
	index   map[Key]*entry
	warmLRU *list.List // stateWarm entries, front = most recent
	coldLRU *list.List // stateCold entries, front = most recently written/read
	warm    int64      // warm payload bytes
	cold    int64      // live cold payload bytes
	closed  bool

	arena *arena
	// spillQ is the writeback queue: entries evicted from warm, waiting
	// for the async goroutine to land them in the arena. A list guarded
	// by mu (not a bounded channel) so a CPU-starved consumer can never
	// force drops: past the byte cap, producers spill inline instead —
	// see enqueueSpillLocked.
	spillQ    *list.List
	spillCond *sync.Cond
	queued    int64 // payload bytes sitting in spillQ
	wg        sync.WaitGroup

	encPool sync.Pool // *[]byte frame scratch
	rowPool sync.Pool // *[]matrix.Dist decode scratch (Reconcile)

	spillTime  obs.Timing
	compacts   *obs.Counter
	spillDrops *obs.Counter
	decodeErrs *obs.Counter
	recovered  *obs.Counter
}

// Open builds the store, creating or recovering the spill arena when
// enabled. Recovered arena records whose version is 1 re-seed the cold
// tier (a fresh server always starts at version 1 of the same
// fingerprinted graph, so those rows are exact); records at later
// versions belonged to a dead version chain and are discarded.
func Open(cfg Config) (*Store, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("store: row length %d", cfg.N)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewMetrics()
	}
	s := &Store{
		cfg:        cfg,
		index:      make(map[Key]*entry),
		warmLRU:    list.New(),
		coldLRU:    list.New(),
		spillTime:  cfg.Metrics.Timing("store.spill"),
		compacts:   cfg.Metrics.Counter("store.compactions"),
		spillDrops: cfg.Metrics.Counter("store.spill_dropped"),
		decodeErrs: cfg.Metrics.Counter("store.decode_errors"),
		recovered:  cfg.Metrics.Counter("store.recovered_frames"),
	}
	s.encPool.New = func() any { b := make([]byte, 0, 64+cfg.N); return &b }
	s.rowPool.New = func() any { r := make([]matrix.Dist, cfg.N); return &r }
	if cfg.SpillBytes > 0 {
		if cfg.SpillPath == "" {
			return nil, fmt.Errorf("store: SpillBytes set without SpillPath")
		}
		if err := os.MkdirAll(filepath.Dir(cfg.SpillPath), 0o755); err != nil {
			return nil, fmt.Errorf("store: spill dir: %w", err)
		}
		a, recs, err := openArena(cfg.SpillPath, cfg.Fingerprint)
		if err != nil {
			return nil, err
		}
		s.arena = a
		for _, r := range recs {
			if r.key.Ver != 1 {
				continue // stale version chain from a previous process
			}
			if _, dup := s.index[r.key]; dup {
				continue
			}
			e := &entry{key: r.key, diskKey: r.key, state: stateCold, off: r.off, length: r.len}
			s.index[r.key] = e
			e.elem = s.coldLRU.PushBack(e)
			s.cold += int64(r.len)
			s.recovered.Add(1)
		}
		s.evictColdLocked()
		s.spillQ = list.New()
		s.spillCond = sync.NewCond(&s.mu)
		s.wg.Add(1)
		go s.writeback()
	}
	return s, nil
}

// Put encodes row and admits it to the warm tier (or directly to the
// spill queue when the warm tier is disabled). An existing frame for the
// same key is replaced. Rows are copied by encoding — the caller keeps
// ownership of row.
func (s *Store) Put(key Key, row []matrix.Dist) {
	if len(row) != s.cfg.N {
		return
	}
	var refID uint32
	var ref []matrix.Dist
	if s.cfg.Refs != nil {
		refID, ref = s.cfg.Refs.RefFor(key.Src)
	}
	bufp := s.encPool.Get().(*[]byte)
	frame := AppendFrame((*bufp)[:0], row, refID, ref)
	buf := make([]byte, len(frame))
	copy(buf, frame)
	// The frame was copied out, so the scratch always returns to the
	// pool — keeping the reallocated backing array when the frame outgrew
	// the old one.
	if cap(frame) > cap(*bufp) {
		*bufp = frame[:0]
	}
	s.encPool.Put(bufp)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if old, ok := s.index[key]; ok {
		s.removeLocked(old)
	}
	e := &entry{key: key, buf: buf}
	if s.cfg.WarmBytes > 0 {
		e.state = stateWarm
		s.index[key] = e
		e.elem = s.warmLRU.PushFront(e)
		s.warm += int64(len(buf))
		s.evictWarmLocked()
		return
	}
	// No warm tier: spill directly (or drop when spill is off too).
	if s.arena == nil {
		return
	}
	e.state = stateSpilling
	s.index[key] = e
	s.enqueueSpillLocked(e)
}

// Get removes and decodes the frame for key, returning the row and the
// tier it came from, or (nil, TierNone). The returned row is freshly
// decoded into dst when dst has capacity (else allocated) — promotion is
// exclusive, so the frame leaves the store. A frame that fails to decode
// (corrupt arena record, missing dictionary) counts a decode error and
// reports a miss; the caller re-solves.
func (s *Store) Get(key Key, dst []matrix.Dist) ([]matrix.Dist, Tier) {
	s.mu.Lock()
	e, ok := s.index[key]
	if !ok || s.closed {
		s.mu.Unlock()
		return nil, TierNone
	}
	var (
		buf  []byte
		tier Tier
	)
	switch e.state {
	case stateWarm, stateSpilling:
		buf = e.buf
		tier = TierWarm
		s.removeLocked(e)
		s.mu.Unlock()
	case stateCold:
		tier = TierCold
		// Snapshot offset, on-disk key, and compaction generation under
		// s.mu (compaction also runs under s.mu, so the three are
		// consistent); the read outside the lock rejects the offset if a
		// compact lands in between, and the caller re-solves.
		off, plen, diskKey := e.off, e.length, e.diskKey
		gen := s.arena.generation()
		s.removeLocked(e)
		s.mu.Unlock()
		var err error
		buf, err = s.arena.read(off, plen, diskKey, gen, nil)
		if err != nil {
			s.decodeErrs.Add(1)
			return nil, TierNone
		}
	}
	row, err := DecodeFrame(buf, s.cfg.N, dst, s.cfg.Refs)
	if err != nil {
		s.decodeErrs.Add(1)
		return nil, TierNone
	}
	return row, tier
}

// Contains reports whether key is resident in any tier.
func (s *Store) Contains(key Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// RecStats is one Reconcile's ledger: Scanned == Retagged + Repaired +
// Dropped, with Aged counting frames of versions older than the mutating
// one (no query can reach them once the new version publishes; they are
// discarded without classification).
type RecStats struct {
	Scanned, Retagged, Repaired, Dropped, Aged int
}

// Reconcile carries frames at oldVer over to newVer during a mutation's
// pre-publish window, mirroring the hot tier's retag/repair/drop rules:
// judge classifies each decoded row, repair fixes a Repair-classified row
// in place (the row is then exact at newVer and re-encoded), and frames
// older than oldVer are aged out. Retagging costs no re-encode — the
// frame bytes are content-addressed by the reference dictionary, not the
// version — and cold frames retag without touching the disk.
func (s *Store) Reconcile(oldVer, newVer uint64, judge func(row []matrix.Dist) Verdict, repair func(row []matrix.Dist)) RecStats {
	var st RecStats
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return st
	}
	keys := make([]Key, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	rowp := s.rowPool.Get().(*[]matrix.Dist)
	defer s.rowPool.Put(rowp)
	var colds []byte
	// Compaction runs under s.mu too, so one generation snapshot covers
	// every cold read below.
	var gen uint64
	if s.arena != nil {
		gen = s.arena.generation()
	}
	for _, k := range keys {
		e := s.index[k]
		if e == nil {
			continue
		}
		if k.Ver != oldVer {
			if k.Ver < oldVer {
				s.removeLocked(e)
				st.Aged++
			}
			continue
		}
		st.Scanned++
		buf := e.buf
		if e.state == stateCold {
			var err error
			colds, err = s.arena.read(e.off, e.length, e.diskKey, gen, colds)
			if err != nil {
				s.removeLocked(e)
				s.decodeErrs.Add(1)
				st.Dropped++
				continue
			}
			buf = colds
		}
		row, err := DecodeFrame(buf, s.cfg.N, *rowp, s.cfg.Refs)
		if err != nil {
			s.removeLocked(e)
			s.decodeErrs.Add(1)
			st.Dropped++
			continue
		}
		*rowp = row
		switch judge(row) {
		case Keep:
			s.retagLocked(e, Key{Src: k.Src, Ver: newVer})
			st.Retagged++
		case Repair:
			repair(row)
			s.removeLocked(e)
			s.putWarmLocked(Key{Src: k.Src, Ver: newVer}, row)
			st.Repaired++
		default:
			s.removeLocked(e)
			st.Dropped++
		}
	}
	s.evictWarmLocked()
	return st
}

// putWarmLocked encodes and inserts a row under the store mutex (the
// Reconcile repair path). Falls back to the spill queue when the warm
// tier is disabled.
func (s *Store) putWarmLocked(key Key, row []matrix.Dist) {
	if old, ok := s.index[key]; ok {
		s.removeLocked(old)
	}
	var refID uint32
	var ref []matrix.Dist
	if s.cfg.Refs != nil {
		refID, ref = s.cfg.Refs.RefFor(key.Src)
	}
	buf := AppendFrame(nil, row, refID, ref)
	e := &entry{key: key, buf: buf}
	if s.cfg.WarmBytes > 0 {
		e.state = stateWarm
		s.index[key] = e
		e.elem = s.warmLRU.PushFront(e)
		s.warm += int64(len(buf))
		return
	}
	if s.arena == nil {
		return
	}
	e.state = stateSpilling
	s.index[key] = e
	s.enqueueSpillLocked(e)
}

// retagLocked rebinds an entry to a new key, preserving its tier
// residency and recency.
func (s *Store) retagLocked(e *entry, key Key) {
	if old, ok := s.index[key]; ok && old != e {
		s.removeLocked(old)
	}
	delete(s.index, e.key)
	e.key = key
	s.index[key] = e
}

// removeLocked unlinks an entry from the index, its LRU list, and the
// byte accounting. Spill-queued entries are flagged so the writeback
// goroutine discards them.
func (s *Store) removeLocked(e *entry) {
	delete(s.index, e.key)
	switch e.state {
	case stateWarm:
		if e.elem != nil {
			s.warmLRU.Remove(e.elem)
			e.elem = nil
		}
		s.warm -= int64(len(e.buf))
	case stateSpilling:
		e.dropped = true
	case stateCold:
		if e.elem != nil {
			s.coldLRU.Remove(e.elem)
			e.elem = nil
		}
		s.cold -= int64(e.length)
	}
}

// evictWarmLocked demotes the oldest warm frames past the byte budget:
// into the spill queue when the arena is enabled, else dropped.
func (s *Store) evictWarmLocked() {
	for s.warm > s.cfg.WarmBytes && s.warmLRU.Len() > 0 {
		e := s.warmLRU.Remove(s.warmLRU.Back()).(*entry)
		e.elem = nil
		s.warm -= int64(len(e.buf))
		if s.arena == nil {
			delete(s.index, e.key)
			continue
		}
		e.state = stateSpilling
		s.enqueueSpillLocked(e)
	}
}

// enqueueSpillLocked hands an entry to the writeback goroutine. The
// queue is a mu-guarded list, so no eviction burst can outrun a bounded
// channel; memory stays bounded by the byte cap below — past it the
// producer appends to the arena inline (a ~µs pwrite) instead of
// queueing or dropping, which doubles as backpressure on single-CPU
// hosts where the writeback goroutine may not be scheduled mid-burst.
// spill_dropped now counts only frames abandoned on arena write errors.
func (s *Store) enqueueSpillLocked(e *entry) {
	maxQueued := s.cfg.WarmBytes
	if maxQueued < 1<<20 {
		maxQueued = 1 << 20
	}
	if s.queued > maxQueued {
		off, err := s.arena.append(e.key, e.buf)
		if err != nil {
			delete(s.index, e.key)
			s.spillDrops.Add(1)
			return
		}
		e.state = stateCold
		e.off = off
		e.length = int32(len(e.buf))
		e.diskKey = e.key
		e.buf = nil
		e.elem = s.coldLRU.PushFront(e)
		s.cold += int64(e.length)
		s.evictColdLocked()
		return
	}
	s.spillQ.PushBack(e)
	s.queued += int64(len(e.buf))
	s.spillCond.Signal()
}

// evictColdLocked drops the oldest cold index entries past the live-byte
// budget. The arena bytes become dead; compaction reclaims them when the
// dead fraction grows (see writeback).
func (s *Store) evictColdLocked() {
	for s.cold > s.cfg.SpillBytes && s.coldLRU.Len() > 0 {
		e := s.coldLRU.Remove(s.coldLRU.Back()).(*entry)
		e.elem = nil
		delete(s.index, e.key)
		s.cold -= int64(e.length)
	}
}

// writeback is the async spill goroutine: it appends queued frames to the
// arena, flips them to cold, trims the cold tier, and compacts the arena
// file when dead bytes dominate. On Close it discards whatever is still
// queued (the spill tier is a cache, not a durability log) and exits.
func (s *Store) writeback() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		for s.spillQ.Len() == 0 && !s.closed {
			s.spillCond.Wait()
		}
		if s.spillQ.Len() == 0 {
			s.mu.Unlock()
			return
		}
		e := s.spillQ.Remove(s.spillQ.Front()).(*entry)
		s.queued -= int64(len(e.buf))
		if e.dropped || s.closed {
			if !e.dropped && s.index[e.key] == e {
				delete(s.index, e.key)
			}
			continue
		}
		key, buf := e.key, e.buf
		s.mu.Unlock()

		start := time.Now()
		off, err := s.arena.append(key, buf)
		s.spillTime.Observe(time.Since(start).Nanoseconds())

		s.mu.Lock()
		if err != nil || e.dropped || s.closed || s.index[e.key] != e {
			if !e.dropped && s.index[e.key] == e {
				delete(s.index, e.key)
				if err != nil {
					s.spillDrops.Add(1)
				}
			}
			continue
		}
		e.state = stateCold
		e.off = off
		e.length = int32(len(buf))
		e.diskKey = key
		e.buf = nil
		e.elem = s.coldLRU.PushFront(e)
		s.cold += int64(e.length)
		s.evictColdLocked()
		s.maybeCompactLocked()
	}
}

// maybeCompactLocked rewrites the arena when dead bytes exceed both the
// live budget and a fixed floor, keeping the file bounded near the
// configured spill budget.
func (s *Store) maybeCompactLocked() {
	const compactFloor = 4 << 20
	deadBytes := s.arenaSize() - s.cold - arenaHeaderLen - int64(recordHeaderLen*s.coldLRU.Len())
	if deadBytes < compactFloor || deadBytes < s.cfg.SpillBytes {
		return
	}
	live := make([]recoveredRecord, 0, s.coldLRU.Len())
	for el := s.coldLRU.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		live = append(live, recoveredRecord{key: e.key, off: e.off, len: e.length})
	}
	moved, err := s.arena.compact(live)
	if err != nil {
		return // keep serving from the old file; retry on the next spill
	}
	for el := s.coldLRU.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if noff, ok := moved[e.off]; ok {
			e.off = noff
		}
	}
	s.compacts.Add(1)
}

func (s *Store) arenaSize() int64 {
	s.arena.mu.Lock()
	defer s.arena.mu.Unlock()
	return s.arena.size
}

// Stats is a point-in-time residency snapshot for /healthz and the
// storebench report.
type Stats struct {
	WarmRows  int
	WarmBytes int64
	ColdRows  int
	ColdBytes int64
	ArenaFile int64 // arena file size on disk (0 when spill is off)
}

// Snapshot returns the current residency stats.
func (s *Store) Snapshot() Stats {
	s.mu.Lock()
	st := Stats{
		WarmRows:  s.warmLRU.Len(),
		WarmBytes: s.warm,
		ColdRows:  s.coldLRU.Len(),
		ColdBytes: s.cold,
	}
	s.mu.Unlock()
	if s.arena != nil {
		st.ArenaFile = s.arenaSize()
	}
	return st
}

// Close stops the writeback goroutine and closes the arena. The store
// refuses new work afterwards; Close is idempotent.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.spillCond != nil {
		s.spillCond.Broadcast()
	}
	s.mu.Unlock()
	if s.spillCond != nil {
		s.wg.Wait()
	}
	if s.arena != nil {
		s.arena.close()
	}
}
