package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// The cold-tier arena is one append-only file of checksummed frame
// records behind a 24-byte header. Writes go through pwrite (the async
// writeback goroutine is the only writer); reads go through a shared mmap
// of the file where the platform supports it (arena_mmap.go), falling
// back to pread elsewhere — on Linux the two views are coherent through
// the unified page cache, so a record is readable the moment append
// returns.
//
// The file is a cache, not a log, but it is still reopenable: openArena
// recovers the longest valid prefix of an existing file — the header's
// graph fingerprint must match the served graph, and records are scanned
// until the first one whose magic, length, or CRC fails, where the file
// is truncated (crash-safe truncation: a torn final write from a killed
// process costs exactly the torn record, never the file). Recovered
// records re-seed the cold tier, which is what makes a parapspd restart
// with -spill-dir warm-start instead of cold-solving the whole working
// set again.
//
// File layout:
//
//	[ 8] arena magic "PAPSARN1"
//	[ 8] graph fingerprint (graph.Fingerprint of the served graph)
//	[ 8] reserved (zero)
//	records:
//	  [0:4]   record magic 0xA7E4A001
//	  [4:8]   source vertex (int32 LE)
//	  [8:16]  graph version (uint64 LE)
//	  [16:20] payload length (uint32 LE)
//	  [20:24] CRC-32 (IEEE) of the payload
//	  [24:]   payload (one codec frame)
const (
	arenaMagic      = "PAPSARN1"
	arenaHeaderLen  = 24
	recordMagic     = 0xA7E4A001
	recordHeaderLen = 24
	// maxRecordPayload bounds a declared payload length during recovery,
	// so a corrupt length field cannot drive a giant read.
	maxRecordPayload = 1 << 28
)

type arena struct {
	mu   sync.Mutex // serializes append/read/compact/close
	f    *os.File
	path string
	size int64 // bytes written, header included

	// gen counts successful compactions. An offset is only meaningful at
	// the generation it was snapshotted under — compact moves every
	// record — so read rejects offsets from an older generation instead
	// of decoding whatever record the stale offset lands on.
	gen uint64

	// mapped is the read view maintained by the build-tagged mmap half;
	// nil when mmap is unavailable (reads fall back to pread).
	mapped []byte
}

// recoveredRecord is one valid record found while reopening an arena.
type recoveredRecord struct {
	key Key
	off int64 // record offset (header start)
	len int32 // payload length
}

// openArena opens or creates the arena at path. An existing file with a
// matching fingerprint is recovered (valid record prefix kept, tail
// truncated); a missing, mismatched, or unparseable file is reset to an
// empty arena.
func openArena(path string, fingerprint uint64) (*arena, []recoveredRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open arena: %w", err)
	}
	a := &arena{f: f, path: path}
	recovered, err := a.recover(fingerprint)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	a.mapInit()
	return a, recovered, nil
}

// recover validates the header and scans the record prefix, truncating
// the file at the first invalid record. On any header problem the file is
// reset to a fresh empty arena for the given fingerprint.
func (a *arena) recover(fingerprint uint64) ([]recoveredRecord, error) {
	st, err := a.f.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: stat arena: %w", err)
	}
	hdr := make([]byte, arenaHeaderLen)
	if st.Size() >= arenaHeaderLen {
		if _, err := a.f.ReadAt(hdr, 0); err == nil &&
			string(hdr[:8]) == arenaMagic &&
			binary.LittleEndian.Uint64(hdr[8:16]) == fingerprint {
			return a.scanRecords(st.Size())
		}
	}
	// Fresh or foreign file: reset.
	copy(hdr[:8], arenaMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], fingerprint)
	binary.LittleEndian.PutUint64(hdr[16:24], 0)
	if err := a.f.Truncate(0); err != nil {
		return nil, fmt.Errorf("store: reset arena: %w", err)
	}
	if _, err := a.f.WriteAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("store: write arena header: %w", err)
	}
	a.size = arenaHeaderLen
	return nil, nil
}

// scanRecords walks the record chain from the header to the first torn or
// corrupt record, truncates there, and returns the valid records.
func (a *arena) scanRecords(fileSize int64) ([]recoveredRecord, error) {
	var recs []recoveredRecord
	off := int64(arenaHeaderLen)
	hdr := make([]byte, recordHeaderLen)
	var payload []byte
	for off+recordHeaderLen <= fileSize {
		if _, err := a.f.ReadAt(hdr, off); err != nil {
			break
		}
		if binary.LittleEndian.Uint32(hdr[0:4]) != recordMagic {
			break
		}
		plen := binary.LittleEndian.Uint32(hdr[16:20])
		if plen == 0 || plen > maxRecordPayload || off+recordHeaderLen+int64(plen) > fileSize {
			break
		}
		if int(plen) > cap(payload) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := a.f.ReadAt(payload, off+recordHeaderLen); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[20:24]) {
			break
		}
		recs = append(recs, recoveredRecord{
			key: Key{
				Src: int32(binary.LittleEndian.Uint32(hdr[4:8])),
				Ver: binary.LittleEndian.Uint64(hdr[8:16]),
			},
			off: off,
			len: int32(plen),
		})
		off += recordHeaderLen + int64(plen)
	}
	if err := a.f.Truncate(off); err != nil {
		return nil, fmt.Errorf("store: truncate arena tail: %w", err)
	}
	a.size = off
	return recs, nil
}

// append writes one record and returns its offset.
func (a *arena) append(key Key, payload []byte) (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	off := a.size
	hdr := make([]byte, recordHeaderLen)
	binary.LittleEndian.PutUint32(hdr[0:4], recordMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(key.Src))
	binary.LittleEndian.PutUint64(hdr[8:16], key.Ver)
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[20:24], crc32.ChecksumIEEE(payload))
	if _, err := a.f.WriteAt(hdr, off); err != nil {
		return 0, fmt.Errorf("store: arena append: %w", err)
	}
	if _, err := a.f.WriteAt(payload, off+recordHeaderLen); err != nil {
		return 0, fmt.Errorf("store: arena append payload: %w", err)
	}
	a.size = off + recordHeaderLen + int64(len(payload))
	return off, nil
}

// generation returns the current compaction generation. Callers snapshot
// it together with a record offset and hand both back to read, which
// refuses the offset if a compact slipped in between.
func (a *arena) generation() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gen
}

// read copies the payload of the record at off into dst (reused when it
// has capacity) and validates that the record is still the one the caller
// indexed: gen must match the compaction generation the offset was
// snapshotted under, the header must carry key — the key the frame was
// appended with, which for retagged frames differs from the index key —
// and the CRC must hold. Reads go through the mmap view when available.
func (a *arena) read(off int64, plen int32, key Key, gen uint64, dst []byte) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if gen != a.gen {
		return nil, fmt.Errorf("store: arena read at %d stale: generation %d, now %d", off, gen, a.gen)
	}
	if off < arenaHeaderLen || off+recordHeaderLen+int64(plen) > a.size {
		return nil, fmt.Errorf("store: arena read [%d,+%d) outside file of %d bytes", off, plen, a.size)
	}
	if int(plen) > cap(dst) {
		dst = make([]byte, plen)
	}
	dst = dst[:plen]
	var hdr [recordHeaderLen]byte
	if err := a.readAt(hdr[:], off); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != recordMagic ||
		binary.LittleEndian.Uint32(hdr[16:20]) != uint32(plen) {
		return nil, fmt.Errorf("store: arena record at %d corrupt", off)
	}
	if got := (Key{
		Src: int32(binary.LittleEndian.Uint32(hdr[4:8])),
		Ver: binary.LittleEndian.Uint64(hdr[8:16]),
	}); got != key {
		return nil, fmt.Errorf("store: arena record at %d keyed (%d,v%d), want (%d,v%d)",
			off, got.Src, got.Ver, key.Src, key.Ver)
	}
	if err := a.readAt(dst, off+recordHeaderLen); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(dst) != binary.LittleEndian.Uint32(hdr[20:24]) {
		return nil, fmt.Errorf("store: arena record at %d fails CRC", off)
	}
	return dst, nil
}

// readAt fills p from the mmap view when it covers the range, else pread.
func (a *arena) readAt(p []byte, off int64) error {
	if a.mapped != nil && off+int64(len(p)) <= int64(len(a.mapped)) {
		copy(p, a.mapped[off:])
		return nil
	}
	// The view lags the file (it grew past the mapped length): remap and
	// retry, falling back to pread if mapping is unavailable.
	a.remap()
	if a.mapped != nil && off+int64(len(p)) <= int64(len(a.mapped)) {
		copy(p, a.mapped[off:])
		return nil
	}
	if _, err := a.f.ReadAt(p, off); err != nil {
		return fmt.Errorf("store: arena read: %w", err)
	}
	return nil
}

// compact rewrites the arena keeping only the live records, in LRU order,
// returning their new offsets keyed by old offset. The caller (the store,
// holding its mutex) swaps its index to the returned offsets.
func (a *arena) compact(live []recoveredRecord) (map[int64]int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	tmpPath := a.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: compact: %w", err)
	}
	var hdr [arenaHeaderLen]byte
	if err := a.readAt(hdr[:], 0); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return nil, err
	}
	if _, err := tmp.WriteAt(hdr[:], 0); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return nil, fmt.Errorf("store: compact header: %w", err)
	}
	moved := make(map[int64]int64, len(live))
	out := int64(arenaHeaderLen)
	var rec []byte
	for _, r := range live {
		total := recordHeaderLen + int64(r.len)
		if int64(cap(rec)) < total {
			rec = make([]byte, total)
		}
		rec = rec[:total]
		if err := a.readAt(rec, r.off); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return nil, err
		}
		if _, err := tmp.WriteAt(rec, out); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return nil, fmt.Errorf("store: compact record: %w", err)
		}
		moved[r.off] = out
		out += total
	}
	if err := os.Rename(tmpPath, a.path); err != nil {
		// The old file is untouched and still open: keep serving from it.
		tmp.Close()
		os.Remove(tmpPath)
		return nil, fmt.Errorf("store: compact swap: %w", err)
	}
	a.unmap()
	a.f.Close()
	a.f = tmp
	a.size = out
	a.gen++
	a.mapInit()
	return moved, nil
}

func (a *arena) close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.unmap()
	a.f.Close()
}
