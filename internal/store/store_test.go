package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"parapsp/internal/matrix"
)

func waitCold(t *testing.T, s *Store, rows int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := s.Snapshot(); st.ColdRows >= rows {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("cold tier never reached %d rows: %+v", rows, s.Snapshot())
}

func mustOpen(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestWarmPutGet covers the exclusive-promote contract: a Get removes the
// frame, decodes it bitwise-equal, and a second Get misses.
func TestWarmPutGet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 512
	s := mustOpen(t, Config{N: n, WarmBytes: 1 << 20})
	rows := make([][]matrix.Dist, 8)
	for i := range rows {
		rows[i] = genRow(rng, n, "powerlaw")
		s.Put(Key{Src: int32(i), Ver: 1}, rows[i])
	}
	st := s.Snapshot()
	if st.WarmRows != 8 || st.WarmBytes <= 0 {
		t.Fatalf("warm tier after 8 puts: %+v", st)
	}
	for i := range rows {
		got, tier := s.Get(Key{Src: int32(i), Ver: 1}, nil)
		if tier != TierWarm {
			t.Fatalf("row %d from tier %v", i, tier)
		}
		for j := range got {
			if got[j] != rows[i][j] {
				t.Fatalf("row %d entry %d drifts", i, j)
			}
		}
		if _, tier := s.Get(Key{Src: int32(i), Ver: 1}, nil); tier != TierNone {
			t.Fatalf("row %d still resident after promote", i)
		}
	}
	if st := s.Snapshot(); st.WarmRows != 0 || st.WarmBytes != 0 {
		t.Fatalf("warm tier after draining: %+v", st)
	}
}

// TestWarmEvictsToSpill fills the warm tier past its budget and checks
// the overflow lands in the cold tier and survives a Get round-trip.
func TestWarmEvictsToSpill(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 1024
	dir := t.TempDir()
	// Budget roughly three compressed frames so later puts evict earlier.
	probe := AppendFrame(nil, genRow(rng, n, "extremes"), 0, nil)
	s := mustOpen(t, Config{
		N:         n,
		WarmBytes: int64(3 * len(probe)),
		// extremes rows barely compress, so size the budget off a probe
		SpillBytes:  1 << 22,
		SpillPath:   filepath.Join(dir, "arena"),
		Fingerprint: 42,
	})
	rows := make([][]matrix.Dist, 10)
	for i := range rows {
		rows[i] = genRow(rng, n, "extremes")
		s.Put(Key{Src: int32(i), Ver: 1}, rows[i])
	}
	waitCold(t, s, 5)
	var fromCold int
	for i := range rows {
		got, tier := s.Get(Key{Src: int32(i), Ver: 1}, nil)
		if tier == TierNone {
			t.Fatalf("row %d lost", i)
		}
		if tier == TierCold {
			fromCold++
		}
		for j := range got {
			if got[j] != rows[i][j] {
				t.Fatalf("row %d entry %d drifts (tier %v)", i, j, tier)
			}
		}
	}
	if fromCold == 0 {
		t.Fatal("no row came back from the cold tier")
	}
}

// TestColdBudgetEvicts keeps the spill budget tiny and checks the cold
// tier trims to it instead of growing without bound.
func TestColdBudgetEvicts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 1024
	probe := AppendFrame(nil, genRow(rng, n, "extremes"), 0, nil)
	s := mustOpen(t, Config{
		N:           n,
		WarmBytes:   int64(len(probe)),
		SpillBytes:  int64(2 * len(probe)),
		SpillPath:   filepath.Join(t.TempDir(), "arena"),
		Fingerprint: 42,
	})
	for i := 0; i < 20; i++ {
		s.Put(Key{Src: int32(i), Ver: 1}, genRow(rng, n, "extremes"))
	}
	waitCold(t, s, 1)
	time.Sleep(50 * time.Millisecond) // let the queue drain
	st := s.Snapshot()
	if st.ColdBytes > int64(2*len(probe)) {
		t.Fatalf("cold tier %d bytes over budget %d", st.ColdBytes, 2*len(probe))
	}
}

// TestRecoverySeedsColdTier restarts the store on the same arena file and
// checks version-1 frames come back while later versions are discarded.
func TestRecoverySeedsColdTier(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 512
	dir := t.TempDir()
	path := filepath.Join(dir, "arena")
	cfg := Config{N: n, WarmBytes: 0, SpillBytes: 1 << 22, SpillPath: path, Fingerprint: 7}

	rows := map[int32][]matrix.Dist{}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 6; i++ {
		rows[i] = genRow(rng, n, "powerlaw")
		s.Put(Key{Src: i, Ver: 1}, rows[i])
	}
	s.Put(Key{Src: 100, Ver: 2}, genRow(rng, n, "grid"))
	waitCold(t, s, 7)
	s.Close()

	s2 := mustOpen(t, cfg)
	st := s2.Snapshot()
	if st.ColdRows != 6 {
		t.Fatalf("recovered %d rows, want 6 (the ver-1 frames)", st.ColdRows)
	}
	if s2.Contains(Key{Src: 100, Ver: 2}) {
		t.Fatal("ver-2 frame resurrected at restart")
	}
	for i := int32(0); i < 6; i++ {
		got, tier := s2.Get(Key{Src: i, Ver: 1}, nil)
		if tier != TierCold {
			t.Fatalf("row %d from tier %v after recovery", i, tier)
		}
		for j := range got {
			if got[j] != rows[i][j] {
				t.Fatalf("recovered row %d entry %d drifts", i, j)
			}
		}
	}
}

// TestRecoveryFingerprintMismatch opens the arena under a different graph
// fingerprint; it must reset to empty rather than serve foreign rows.
func TestRecoveryFingerprintMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 256
	path := filepath.Join(t.TempDir(), "arena")
	s, err := Open(Config{N: n, SpillBytes: 1 << 22, SpillPath: path, Fingerprint: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Put(Key{Src: 0, Ver: 1}, genRow(rng, n, "grid"))
	waitCold(t, s, 1)
	s.Close()

	s2 := mustOpen(t, Config{N: n, SpillBytes: 1 << 22, SpillPath: path, Fingerprint: 2})
	if st := s2.Snapshot(); st.ColdRows != 0 {
		t.Fatalf("foreign arena yielded %d rows", st.ColdRows)
	}
}

// TestRecoveryTruncatesTornTail corrupts the arena mid-record; reopening
// must keep the valid prefix and drop the tail.
func TestRecoveryTruncatesTornTail(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 256
	path := filepath.Join(t.TempDir(), "arena")
	cfg := Config{N: n, SpillBytes: 1 << 22, SpillPath: path, Fingerprint: 9}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int32][]matrix.Dist{}
	for i := int32(0); i < 4; i++ {
		want[i] = genRow(rng, n, "powerlaw")
		s.Put(Key{Src: i, Ver: 1}, want[i])
	}
	waitCold(t, s, 4)
	s.Close()

	// Tear the last record: chop half its payload off the file.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-20); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, cfg)
	st := s2.Snapshot()
	if st.ColdRows != 3 {
		t.Fatalf("recovered %d rows after torn tail, want 3", st.ColdRows)
	}
	for i := int32(0); i < 3; i++ {
		got, tier := s2.Get(Key{Src: i, Ver: 1}, nil)
		if tier != TierCold {
			t.Fatalf("row %d from tier %v", i, tier)
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("row %d entry %d drifts after recovery", i, j)
			}
		}
	}
}

// TestReconcile drives the retag/repair/drop/age paths and checks the
// RecStats ledger adds up.
func TestReconcile(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 128
	s := mustOpen(t, Config{N: n, WarmBytes: 1 << 20})
	rows := map[int32][]matrix.Dist{}
	for i := int32(0); i < 9; i++ {
		rows[i] = genRow(rng, n, "grid")
		s.Put(Key{Src: i, Ver: 2}, rows[i])
	}
	s.Put(Key{Src: 50, Ver: 1}, genRow(rng, n, "grid")) // aged out

	st := s.Reconcile(2, 3, func(row []matrix.Dist) Verdict {
		switch int(row[0]) % 3 {
		case 0:
			return Keep
		case 1:
			return Repair
		default:
			return Drop
		}
	}, func(row []matrix.Dist) {
		row[1] = 99
	})
	if st.Scanned != 9 || st.Scanned != st.Retagged+st.Repaired+st.Dropped {
		t.Fatalf("reconcile ledger broken: %+v", st)
	}
	if st.Aged != 1 {
		t.Fatalf("aged %d, want 1", st.Aged)
	}
	for i := int32(0); i < 9; i++ {
		got, tier := s.Get(Key{Src: i, Ver: 3}, nil)
		switch int(rows[i][0]) % 3 {
		case 0: // retagged: identical content at the new version
			if tier == TierNone {
				t.Fatalf("retagged row %d missing", i)
			}
			for j := range got {
				if got[j] != rows[i][j] {
					t.Fatalf("retagged row %d entry %d drifts", i, j)
				}
			}
		case 1: // repaired: repair callback's edit visible
			if tier == TierNone {
				t.Fatalf("repaired row %d missing", i)
			}
			if got[1] != 99 {
				t.Fatalf("repaired row %d entry 1 = %d, want 99", i, got[1])
			}
		default: // dropped
			if tier != TierNone {
				t.Fatalf("dropped row %d still resident", i)
			}
		}
		if s.Contains(Key{Src: i, Ver: 2}) {
			t.Fatalf("row %d still resident at the old version", i)
		}
	}
	if s.Contains(Key{Src: 50, Ver: 1}) {
		t.Fatal("aged frame still resident")
	}
}

// TestCompaction churns a tiny cold tier until dead bytes force a
// rewrite, then checks the surviving rows still decode and the file
// shrank.
func TestCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 4096
	probe := AppendFrame(nil, genRow(rng, n, "extremes"), 0, nil)
	path := filepath.Join(t.TempDir(), "arena")
	s := mustOpen(t, Config{
		N:           n,
		WarmBytes:   int64(len(probe)),
		SpillBytes:  int64(2 * len(probe)),
		SpillPath:   path,
		Fingerprint: 1,
	})
	// Churn enough rows through the cold tier that evictions accumulate
	// dead bytes well past SpillBytes (the compaction threshold floor is
	// 4 MiB; extremes frames are ~4–5 bytes/entry, so ~16 KiB each needs
	// a few hundred).
	keep := map[int32][]matrix.Dist{}
	for i := int32(0); i < 400; i++ {
		row := genRow(rng, n, "extremes")
		keep[i] = row
		s.Put(Key{Src: i, Ver: 1}, row)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s.compacts.Load() > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.compacts.Load() == 0 {
		t.Skip("compaction threshold not reached on this run")
	}
	// Churn keeps appending after the last compaction, so the file may
	// carry dead bytes up to the compaction threshold again — but never
	// unboundedly more.
	st := s.Snapshot()
	const compactFloor = 4 << 20
	bound := int64(compactFloor) + 2*int64(2*len(probe)) + arenaHeaderLen + 512*recordHeaderLen
	if st.ArenaFile > bound {
		t.Fatalf("arena file %d bytes exceeds compaction bound %d (live %d)", st.ArenaFile, bound, st.ColdBytes)
	}
	// Whatever survived must still round-trip.
	var checked int
	for i := int32(0); i < 400 && checked < 2; i++ {
		got, tier := s.Get(Key{Src: i, Ver: 1}, nil)
		if tier == TierNone {
			continue
		}
		checked++
		for j := range got {
			if got[j] != keep[i][j] {
				t.Fatalf("row %d entry %d drifts after compaction", i, j)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no surviving row to check after compaction")
	}
}

// TestArenaReadValidatesKeyAndGeneration pins the defense against stale
// cold offsets: a read presenting the wrong record key, or an offset
// snapshotted before a compact moved every record, must error so the
// store reports a miss — never decode whichever record the offset lands
// on.
func TestArenaReadValidatesKeyAndGeneration(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 64
	a, _, err := openArena(filepath.Join(t.TempDir(), "arena"), 5)
	if err != nil {
		t.Fatal(err)
	}
	defer a.close()
	k0, k1 := Key{Src: 0, Ver: 1}, Key{Src: 1, Ver: 1}
	f0 := AppendFrame(nil, genRow(rng, n, "grid"), 0, nil)
	f1 := AppendFrame(nil, genRow(rng, n, "grid"), 0, nil)
	off0, err := a.append(k0, f0)
	if err != nil {
		t.Fatal(err)
	}
	off1, err := a.append(k1, f1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.read(off0, int32(len(f0)), k1, a.generation(), nil); err == nil {
		t.Fatal("read with the wrong key succeeded")
	}
	if _, err := a.read(off0, int32(len(f0)), k0, a.generation(), nil); err != nil {
		t.Fatalf("read with the right key: %v", err)
	}

	// Compact away k0; its old offset now points at k1's record. A read
	// presenting the pre-compact generation must be rejected.
	gen := a.generation()
	moved, err := a.compact([]recoveredRecord{{key: k1, off: off1, len: int32(len(f1))}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.read(off0, int32(len(f0)), k0, gen, nil); err == nil {
		t.Fatal("stale-generation read succeeded after compact")
	}
	got, err := a.read(moved[off1], int32(len(f1)), k1, a.generation(), nil)
	if err != nil {
		t.Fatalf("post-compact read: %v", err)
	}
	for i := range got {
		if got[i] != f1[i] {
			t.Fatalf("byte %d drifts after compact", i)
		}
	}
}

// TestReconcileRetagsColdFrames retags cold frames to a new version and
// checks they still read back: the on-disk record header keeps the
// original key, which the store must track separately for validation.
func TestReconcileRetagsColdFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 256
	s := mustOpen(t, Config{
		N:           n,
		WarmBytes:   0,
		SpillBytes:  1 << 22,
		SpillPath:   filepath.Join(t.TempDir(), "arena"),
		Fingerprint: 4,
	})
	rows := map[int32][]matrix.Dist{}
	for i := int32(0); i < 4; i++ {
		rows[i] = genRow(rng, n, "powerlaw")
		s.Put(Key{Src: i, Ver: 1}, rows[i])
	}
	waitCold(t, s, 4)
	st := s.Reconcile(1, 2, func([]matrix.Dist) Verdict { return Keep }, nil)
	if st.Retagged != 4 {
		t.Fatalf("retagged %d of 4: %+v", st.Retagged, st)
	}
	for i := int32(0); i < 4; i++ {
		got, tier := s.Get(Key{Src: i, Ver: 2}, nil)
		if tier != TierCold {
			t.Fatalf("retagged row %d from tier %v", i, tier)
		}
		for j := range got {
			if got[j] != rows[i][j] {
				t.Fatalf("retagged row %d entry %d drifts", i, j)
			}
		}
	}
	if s.decodeErrs.Load() != 0 {
		t.Fatalf("%d decode errors on retagged reads", s.decodeErrs.Load())
	}
}

// TestStoreConcurrentChurn hammers Put/Get/Reconcile from several
// goroutines under -race.
func TestStoreConcurrentChurn(t *testing.T) {
	n := 256
	s := mustOpen(t, Config{
		N:           n,
		WarmBytes:   8 << 10,
		SpillBytes:  64 << 10,
		SpillPath:   filepath.Join(t.TempDir(), "arena"),
		Fingerprint: 3,
	})
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < 300; j++ {
				src := int32(rng.Intn(64))
				if rng.Intn(2) == 0 {
					s.Put(Key{Src: src, Ver: 1}, genRow(rng, n, "powerlaw"))
				} else {
					s.Get(Key{Src: src, Ver: 1}, nil)
				}
			}
			done <- struct{}{}
		}(int64(w))
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	s.Close()
	s.Close() // idempotent
}
