// Package store is the tiered distance-row store that breaks the serving
// layer's O(cached_rows × n) memory wall: finished rows too cold for the
// hot uncompressed LRU (tier 1, owned by internal/serve) are kept as
// delta-encoded varint frames in a byte-budgeted warm tier (tier 2) and
// spilled to a disk-backed, mmap-read arena (tier 3) instead of being
// discarded — the blocked/out-of-core row management that lets APSP-style
// serving scale past RAM (Schoeneman & Zola, arXiv:1902.04446), with the
// landmark machinery of internal/oracle doubling as the compression
// dictionary.
//
// Everything in the store is keyed by (source, graph version), so the
// tiers compose with the dynamic-graph serving semantics of PR 8: a frame
// decodes to a row that is exact at exactly its version, and mutations
// reconcile frames across versions (retag / repair / drop) just like the
// hot tier.
package store

import (
	"errors"
	"fmt"

	"parapsp/internal/matrix"
)

// Frame layout (all multi-byte values are varints):
//
//	byte 0   frameMagic
//	byte 1   frameFormat
//	uvarint  refID     0 = self-delta; r > 0 = dictionary row r-1
//	uvarint  refCheck  FNV-1a/32 of the reference row (0 for self-delta)
//	uvarint  count     number of entries
//	count ×  zigzag-varint delta from the reference value
//	uvarint  payload checksum (FNV-1a/32 over the delta bytes)
//
// Self-delta encodes each entry against its predecessor (starting from 0),
// which compresses the long Inf runs and locally-similar finite stretches
// of real distance rows. Reference-delta encodes entry i against ref[i]:
// with ref the row of the landmark L nearest to the source, the triangle
// inequality bounds every finite delta by d(src, L), so hub-close sources
// compress to one or two bytes per entry. refCheck pins the dictionary:
// a frame never decodes against a different reference row than it was
// encoded with, so a rebuilt or mismatched oracle turns into a clean
// decode error instead of silently wrong distances.
const (
	frameMagic  = 0xD5
	frameFormat = 0x01
)

// maxFrameEntries bounds the entry count a frame may declare, so a
// malformed frame cannot drive a huge allocation before validation fails.
const maxFrameEntries = 1 << 27

// ErrFrame is the error class of every frame-decoding failure. Malformed
// frames — truncated, corrupted, wrong dictionary, trailing garbage —
// always produce an error wrapping ErrFrame, never a panic or over-read
// (pinned by FuzzDecodeFrame).
var ErrFrame = errors.New("store: malformed frame")

// RefProvider supplies the compression dictionary: immutable reference
// rows shared between encode and decode. The serving layer backs it with
// the build-time landmark oracle; the rows need not be valid distances of
// the current graph — they are only a dictionary — so graph mutations
// never invalidate them.
type RefProvider interface {
	// RefFor picks the dictionary row for encoding src's row: a refID > 0
	// and the row, or (0, nil) to fall back to self-delta.
	RefFor(src int32) (uint32, []matrix.Dist)
	// RefRow resolves a refID stored in a frame (id > 0), or nil when
	// unknown.
	RefRow(id uint32) []matrix.Dist
}

// AppendFrame encodes row as one frame appended to dst and returns the
// extended slice. refID and ref describe the dictionary row (refID 0 and
// a nil ref select self-delta); ref, when given, must have len(row)
// entries. With a dst of sufficient capacity the encode allocates nothing
// (pinned by TestCodecSteadyAllocs).
func AppendFrame(dst []byte, row []matrix.Dist, refID uint32, ref []matrix.Dist) []byte {
	dst = append(dst, frameMagic, frameFormat)
	var refCheck uint32
	if refID != 0 {
		refCheck = rowCheck(ref)
	}
	dst = appendUvarint(dst, uint64(refID))
	dst = appendUvarint(dst, uint64(refCheck))
	dst = appendUvarint(dst, uint64(len(row)))
	payloadStart := len(dst)
	prev := int64(0)
	for i, d := range row {
		refV := prev
		if refID != 0 {
			refV = int64(ref[i])
		}
		delta := int64(d) - refV
		dst = appendUvarint(dst, zigzag(delta))
		prev = int64(d)
	}
	sum := bytesCheck(dst[payloadStart:])
	return appendUvarint(dst, uint64(sum))
}

// DecodeFrame decodes one frame into a row of expectN entries. dst is
// reused when it has capacity expectN (zero steady-state allocations);
// refs resolves reference-delta frames and may be nil when only
// self-delta frames are expected. Every malformed input returns an error
// wrapping ErrFrame.
func DecodeFrame(frame []byte, expectN int, dst []matrix.Dist, refs RefProvider) ([]matrix.Dist, error) {
	if len(frame) < 2 {
		return nil, fmt.Errorf("%w: %d-byte frame", ErrFrame, len(frame))
	}
	if frame[0] != frameMagic {
		return nil, fmt.Errorf("%w: bad magic 0x%02x", ErrFrame, frame[0])
	}
	if frame[1] != frameFormat {
		return nil, fmt.Errorf("%w: unknown format 0x%02x", ErrFrame, frame[1])
	}
	p := frame[2:]
	refID64, p, err := readUvarint(p)
	if err != nil {
		return nil, fmt.Errorf("%w: refID: %v", ErrFrame, err)
	}
	refCheck, p, err := readUvarint(p)
	if err != nil {
		return nil, fmt.Errorf("%w: refCheck: %v", ErrFrame, err)
	}
	count64, p, err := readUvarint(p)
	if err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrFrame, err)
	}
	if count64 > maxFrameEntries {
		return nil, fmt.Errorf("%w: %d entries exceeds limit", ErrFrame, count64)
	}
	count := int(count64)
	if expectN >= 0 && count != expectN {
		return nil, fmt.Errorf("%w: frame has %d entries, want %d", ErrFrame, count, expectN)
	}
	var ref []matrix.Dist
	if refID64 != 0 {
		if refID64 > 1<<32-1 {
			return nil, fmt.Errorf("%w: refID %d out of range", ErrFrame, refID64)
		}
		if refs == nil {
			return nil, fmt.Errorf("%w: refID %d with no dictionary", ErrFrame, refID64)
		}
		ref = refs.RefRow(uint32(refID64))
		if len(ref) != count {
			return nil, fmt.Errorf("%w: dictionary row %d has %d entries, frame %d", ErrFrame, refID64, len(ref), count)
		}
		if got := rowCheck(ref); uint64(got) != refCheck {
			return nil, fmt.Errorf("%w: dictionary row %d checksum 0x%08x, frame expects 0x%08x", ErrFrame, refID64, got, refCheck)
		}
	} else if refCheck != 0 {
		return nil, fmt.Errorf("%w: self-delta frame with refCheck 0x%08x", ErrFrame, refCheck)
	}
	if cap(dst) >= count {
		dst = dst[:count]
	} else {
		dst = make([]matrix.Dist, count)
	}
	payload := p
	prev := int64(0)
	for i := 0; i < count; i++ {
		var u uint64
		u, p, err = readUvarint(p)
		if err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", ErrFrame, i, err)
		}
		refV := prev
		if refID64 != 0 {
			refV = int64(ref[i])
		}
		v := refV + unzigzag(u)
		if v < 0 || v > int64(matrix.Inf) {
			return nil, fmt.Errorf("%w: entry %d decodes to %d, outside [0, %d]", ErrFrame, i, v, uint32(matrix.Inf))
		}
		dst[i] = matrix.Dist(v)
		prev = v
	}
	want := bytesCheck(payload[:len(payload)-len(p)])
	sum, p, err := readUvarint(p)
	if err != nil {
		return nil, fmt.Errorf("%w: checksum: %v", ErrFrame, err)
	}
	if sum != uint64(want) {
		return nil, fmt.Errorf("%w: payload checksum 0x%08x, want 0x%08x", ErrFrame, sum, want)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(p))
	}
	return dst, nil
}

func zigzag(d int64) uint64   { return uint64((d << 1) ^ (d >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendUvarint is binary.AppendUvarint without the package dependency
// spelled out at every call site.
func appendUvarint(dst []byte, u uint64) []byte {
	for u >= 0x80 {
		dst = append(dst, byte(u)|0x80)
		u >>= 7
	}
	return append(dst, byte(u))
}

// readUvarint decodes one LEB128 varint from p, returning the value and
// the remaining bytes. It never reads past len(p) and rejects encodings
// longer than 10 bytes or with a final-byte overflow.
func readUvarint(p []byte) (uint64, []byte, error) {
	var v uint64
	for i := 0; i < len(p); i++ {
		b := p[i]
		if i == 9 && b > 1 {
			return 0, nil, errors.New("varint overflows uint64")
		}
		if i >= 10 {
			return 0, nil, errors.New("varint longer than 10 bytes")
		}
		v |= uint64(b&0x7f) << (7 * i)
		if b < 0x80 {
			return v, p[i+1:], nil
		}
	}
	return 0, nil, errors.New("truncated varint")
}

// FNV-1a/32, inlined so the encode/decode hot path allocates no
// hash.Hash.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// rowCheck is the dictionary-pinning checksum: FNV-1a/32 over the row's
// values in little-endian byte order.
func rowCheck(row []matrix.Dist) uint32 {
	h := uint32(fnvOffset32)
	for _, d := range row {
		for s := 0; s < 32; s += 8 {
			h ^= uint32(byte(d >> s))
			h *= fnvPrime32
		}
	}
	return h
}

// bytesCheck is FNV-1a/32 over raw bytes.
func bytesCheck(p []byte) uint32 {
	h := uint32(fnvOffset32)
	for _, b := range p {
		h ^= uint32(b)
		h *= fnvPrime32
	}
	return h
}
