//go:build unix

package store

import "syscall"

// mapChunk rounds mmap lengths up so the view survives several appends
// before needing a remap.
const mapChunk = 4 << 20

// mapInit establishes the read-only shared mapping of the current file.
// Failure is non-fatal: reads fall back to pread.
func (a *arena) mapInit() {
	a.mapped = nil
	a.remap()
}

// remap replaces the view with one covering the current size, rounded up
// to the chunk so in-page growth stays visible without another remap (a
// shared mapping observes pwrite through the unified page cache, and the
// store never reads past the record index it maintains).
func (a *arena) remap() {
	a.unmap()
	if a.size == 0 {
		return
	}
	length := int(((a.size + mapChunk - 1) / mapChunk) * mapChunk)
	m, err := syscall.Mmap(int(a.f.Fd()), 0, length, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		a.mapped = nil
		return
	}
	a.mapped = m
}

func (a *arena) unmap() {
	if a.mapped != nil {
		_ = syscall.Munmap(a.mapped)
		a.mapped = nil
	}
}
