package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestLaneRingWrap(t *testing.T) {
	rec := NewWithCapacity(1, 4)
	l := rec.Lane(0)
	for i := 0; i < 10; i++ {
		l.Add(Event{Start: int64(i), End: int64(i) + 1, Index: int64(i)})
	}
	got := l.Events()
	if len(got) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(got))
	}
	for k, e := range got {
		if want := int64(6 + k); e.Index != want {
			t.Errorf("event %d has index %d, want %d (oldest-first after wrap)", k, e.Index, want)
		}
		if e.Worker != 0 {
			t.Errorf("event %d worker = %d, want 0", k, e.Worker)
		}
	}
	if l.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", l.Dropped())
	}
	if rec.Dropped() != 6 {
		t.Errorf("recorder Dropped = %d, want 6", rec.Dropped())
	}
}

func TestLaneNoWrap(t *testing.T) {
	rec := NewWithCapacity(1, 8)
	l := rec.Lane(0)
	for i := 0; i < 8; i++ { // exactly full: nothing dropped
		l.Add(Event{Start: int64(i)})
	}
	if got := l.Events(); len(got) != 8 || got[0].Start != 0 || got[7].Start != 7 {
		t.Fatalf("full-but-unwrapped lane mangled: %v", got)
	}
	if l.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", l.Dropped())
	}
}

func TestMergeSortedAndStable(t *testing.T) {
	a := []Event{{Start: 1, Index: 10}, {Start: 5, Index: 11}, {Start: 5, Index: 12}}
	b := []Event{{Start: 0, Index: 20}, {Start: 5, Index: 21}}
	got := Merge(a, b)
	if len(got) != 5 {
		t.Fatalf("len = %d, want 5", len(got))
	}
	wantIdx := []int64{20, 10, 11, 12, 21} // ties at Start=5 keep lane a before lane b, record order within
	for k, e := range got {
		if e.Index != wantIdx[k] {
			t.Fatalf("merge order %v, want indices %v", got, wantIdx)
		}
	}
}

func TestRecorderShape(t *testing.T) {
	rec := New(4)
	if rec.Workers() != 4 {
		t.Errorf("Workers = %d, want 4", rec.Workers())
	}
	if rec.Coordinator().Worker() != 4 {
		t.Errorf("coordinator lane id = %d, want 4", rec.Coordinator().Worker())
	}
	if rec.Stopped() {
		t.Error("fresh recorder reports stopped")
	}
	rec.Stop()
	first := rec.StopNs()
	if !rec.Stopped() || first == 0 {
		t.Error("Stop did not latch")
	}
	rec.Stop() // idempotent
	if rec.StopNs() != first {
		t.Error("second Stop moved the stop timestamp")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Lane did not panic")
		}
	}()
	rec.Lane(4) // coordinator is not addressable as a worker lane
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := m.Counter("shared")
			for i := 0; i < 1000; i++ {
				c.Add(1)
				m.Counter("other").Add(2) // registry lookup under contention
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("shared").Load(); got != 8000 {
		t.Errorf("shared = %d, want 8000", got)
	}
	if got := m.Counter("other").Load(); got != 16000 {
		t.Errorf("other = %d, want 16000", got)
	}
}

func TestMetricsSnapshotAndJSON(t *testing.T) {
	m := NewMetrics()
	m.Counter("b.two").Set(2)
	m.Counter("a.one").Add(1)
	snap := m.Snapshot()
	if snap["a.one"] != 1 || snap["b.two"] != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
	var sb strings.Builder
	if err := m.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	var back map[string]int64
	if err := json.Unmarshal([]byte(out), &back); err != nil {
		t.Fatalf("WriteJSON output does not parse: %v\n%s", err, out)
	}
	if back["a.one"] != 1 || back["b.two"] != 2 {
		t.Errorf("roundtrip = %v", back)
	}
	if strings.Index(out, "a.one") > strings.Index(out, "b.two") {
		t.Errorf("keys not sorted:\n%s", out)
	}
}

func TestDoRunsFn(t *testing.T) {
	ran := false
	Do(func() { ran = true }, "k", "v")
	if !ran {
		t.Error("Do did not run fn")
	}
}

func TestUsec(t *testing.T) {
	for _, c := range []struct {
		ns   int64
		want string
	}{{0, "0.000"}, {1, "0.001"}, {999, "0.999"}, {1000, "1.000"}, {1234567, "1234.567"}, {-1500, "-1.500"}} {
		if got := usec(c.ns); got != c.want {
			t.Errorf("usec(%d) = %q, want %q", c.ns, got, c.want)
		}
	}
}

func TestCounterVec(t *testing.T) {
	m := NewMetrics()
	v := m.CounterVec("admit", "admitted", []string{"besteffort", "premium"})
	v.At(0).Add(3)
	v.At(1).Add(5)
	snap := m.Snapshot()
	if got := snap["admit.besteffort.admitted"]; got != 3 {
		t.Errorf("besteffort counter = %d, want 3", got)
	}
	if got := snap["admit.premium.admitted"]; got != 5 {
		t.Errorf("premium counter = %d, want 5", got)
	}
	// Asking for the same family again returns the same registry counters,
	// not fresh zeroed ones.
	again := m.CounterVec("admit", "admitted", []string{"besteffort", "premium"})
	again.At(0).Add(1)
	if got := m.Snapshot()["admit.besteffort.admitted"]; got != 4 {
		t.Errorf("re-acquired counter = %d, want 4", got)
	}
}
