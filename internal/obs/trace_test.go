package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRecorder builds a deterministic recorder: hand-placed events with
// fixed timestamps, covering both worker lanes and the coordinator, ties
// on Start, and every phase the exporters name.
func goldenRecorder() *Recorder {
	rec := NewWithCapacity(2, 8)
	co := rec.Coordinator()
	co.Add(Event{Phase: PhaseOrdering, Start: 0, End: 1500})
	co.Add(Event{Phase: PhaseSSSP, Start: 1500, End: 9000})
	w0, w1 := rec.Lane(0), rec.Lane(1)
	w0.Add(Event{Phase: PhaseIter, Start: 1600, End: 2600, Index: 0})
	w1.Add(Event{Phase: PhaseIter, Start: 1600, End: 3100, Index: 1})
	w0.Add(Event{Phase: PhaseFoldDrain, Start: 2000, End: 2400, Index: 0, Arg: 3})
	w0.Add(Event{Phase: PhaseChunk, Start: 1600, End: 2600, Index: 0, Arg: 2})
	w0.Add(Event{Phase: PhaseWorker, Start: 1550, End: 8700, Index: 2, Arg: 2000})
	w1.Add(Event{Phase: PhaseWorker, Start: 1550, End: 8900, Index: 1, Arg: 1500})
	rec.Stop()
	return rec
}

// TestWriteTraceGolden pins the exporter byte for byte: field ordering,
// number formatting and event ordering are all part of the contract
// (regenerate deliberately with `go test ./internal/obs -run Golden -update`).
func TestWriteTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// traceFile mirrors the subset of the Chrome trace_event format the
// exporter must emit for Perfetto/chrome://tracing to load it.
type traceFile struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string          `json:"name"`
		Ph   string          `json:"ph"`
		Pid  int             `json:"pid"`
		Tid  int             `json:"tid"`
		Ts   float64         `json:"ts"`
		Dur  float64         `json:"dur"`
		Args map[string]any  `json:"args"`
	} `json:"traceEvents"`
}

// TestWriteTraceParsesAndMonotonic: the output is valid JSON in trace
// shape, metadata precedes spans, and span timestamps are non-decreasing.
func TestWriteTraceParsesAndMonotonic(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	metaDone := false
	prevTs := -1.0
	spans := 0
	for k, e := range tf.TraceEvents {
		switch e.Ph {
		case "M":
			if metaDone {
				t.Fatalf("metadata event %d after spans began", k)
			}
			if e.Name != "process_name" && e.Name != "thread_name" {
				t.Errorf("unexpected metadata %q", e.Name)
			}
		case "X":
			metaDone = true
			spans++
			if e.Ts < prevTs {
				t.Fatalf("span %d ts %.3f earlier than previous %.3f", k, e.Ts, prevTs)
			}
			prevTs = e.Ts
			if e.Dur < 0 {
				t.Errorf("span %d has negative dur %.3f", k, e.Dur)
			}
			if e.Pid != 1 {
				t.Errorf("span %d pid = %d", k, e.Pid)
			}
		default:
			t.Errorf("unexpected ph %q", e.Ph)
		}
	}
	if spans != 8 {
		t.Errorf("%d spans, want 8", spans)
	}
}
