package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically updated atomic int64 metric. The zero value
// is ready to use; obtain named counters from a Metrics registry.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Set overwrites the counter (gauge-style use: phase durations, sizes).
func (c *Counter) Set(v int64) { c.v.Store(v) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Metrics is a registry of named atomic counters. Registration takes a
// mutex; the counters themselves are lock-free, so the pattern is to look
// a counter up once (outside the hot loop) and Add on the handle. It
// absorbs the solver's ad-hoc work counters (published under "core.*" by
// Result.PublishMetrics) and the scheduler's dispatch/idle accounting
// ("sched.*").
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{counters: map[string]*Counter{}} }

// Counter returns the named counter, creating it at zero on first use.
// Safe for concurrent use.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Timing is a pair of counters recording a duration distribution's mass:
// <name>.count observations and <name>.sum_ns total nanoseconds. It rides
// the plain counter registry, so timings export through Snapshot/WriteJSON
// with no new machinery; consumers derive the mean and rate. The cluster
// router publishes one per shard (cluster.shard.<id>.latency) to back its
// hedging decisions with visible data.
type Timing struct {
	count, sum *Counter
}

// Timing returns the named timing, creating its counter pair on first use.
func (m *Metrics) Timing(name string) Timing {
	return Timing{count: m.Counter(name + ".count"), sum: m.Counter(name + ".sum_ns")}
}

// Observe records one duration in nanoseconds.
func (t Timing) Observe(ns int64) {
	t.count.Add(1)
	t.sum.Add(ns)
}

// ObserveSince records the time elapsed since start.
func (t Timing) ObserveSince(start time.Time) { t.Observe(time.Since(start).Nanoseconds()) }

// Count returns the number of observations.
func (t Timing) Count() int64 { return t.count.Load() }

// MeanNs returns the mean observation in nanoseconds (0 when empty).
func (t Timing) MeanNs() int64 {
	n := t.count.Load()
	if n == 0 {
		return 0
	}
	return t.sum.Load() / n
}

// CounterVec is a small fixed family of counters sharing a name prefix,
// one per label — the per-tier admission counters ("admit.admitted" split
// into "admit.premium.admitted" / "admit.besteffort.admitted") are the
// motivating use. Labels are fixed at construction so the hot path is one
// slice index plus an atomic add, and every member exports through the
// ordinary registry snapshot under "<prefix>.<label>.<name>".
type CounterVec struct {
	counters []*Counter
}

// CounterVec returns the named counter family: one counter per label, in
// label order, registered as "<prefix>.<label>.<name>".
func (m *Metrics) CounterVec(prefix, name string, labels []string) *CounterVec {
	v := &CounterVec{counters: make([]*Counter, len(labels))}
	for i, l := range labels {
		v.counters[i] = m.Counter(prefix + "." + l + "." + name)
	}
	return v
}

// At returns the counter of the i-th label. The index is the caller's
// label enum (e.g. a Tier); out-of-range indices panic, as a mis-sized
// enum is a programming error.
func (v *CounterVec) At(i int) *Counter { return v.counters[i] }

// Snapshot returns a point-in-time copy of every counter.
func (m *Metrics) Snapshot() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.counters))
	for name, c := range m.counters {
		out[name] = c.Load()
	}
	return out
}

// WriteJSON writes the snapshot as an indented flat JSON object with
// lexicographically sorted keys (encoding/json's map ordering), the blob
// apspbench -metrics emits and -benchjson merges into its report.
func (m *Metrics) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(m.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
