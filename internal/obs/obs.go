// Package obs is the zero-dependency observability layer of the
// repository: a lock-free per-worker event recorder plus a registry of
// atomic metrics, with exporters for Chrome trace_event JSON (trace.go),
// a flat JSON metrics blob (metrics.go) and pprof labels (pprof.go).
//
// The paper's central claim is that the *schedule* of the parallel source
// loop is load-bearing (Section 3.2, Figure 1): ParAPSP only beats the
// basic parallel algorithm when dynamic-cyclic issues sources in
// degree-descending order. Validating and extending that claim needs
// per-worker visibility — issue order, span durations, idle gaps, load
// imbalance — that wall-clock totals cannot provide. This package is that
// instrument: internal/sched records dispatch and iteration spans,
// internal/core records solver phase spans and fold drains, and the
// merged timeline loads directly into Perfetto / chrome://tracing.
//
// # Memory model
//
// A Recorder owns one Lane (fixed-size event ring buffer) per worker plus
// one for the coordinating goroutine. A lane is single-writer: only the
// goroutine that owns the worker id may Add to it, so the hot path takes
// no locks and performs no allocation — a full lane overwrites its oldest
// events and counts them as dropped. Publication is by happens-before
// through the pool join: workers stop writing before sync.WaitGroup.Wait
// returns to the coordinator, the coordinator calls Stop, and only then
// may Events / WriteTrace / Dropped be called. There is no concurrent
// read path by design; the Metrics registry, in contrast, is fully
// concurrent (atomic counters) and may be read at any time.
//
// An absent recorder is represented by a nil *Recorder: instrumented call
// sites guard every record with a single predictable nil-check branch, so
// the disabled hot path costs one compare per potential event.
package obs

import (
	"sort"
	"time"
)

// Phase classifies a recorded span.
type Phase uint8

const (
	// PhaseIter is one scheduler iteration: a single body(i) invocation.
	// Index is the iteration index.
	PhaseIter Phase = iota
	// PhaseChunk is one claimed chunk of a chunked schedule (block,
	// dynamic-chunk, guided): Index is the chunk's lo, Arg its hi.
	PhaseChunk
	// PhaseWorker spans a worker's lifetime inside one parallel loop:
	// Index is the number of iterations it ran, Arg its busy nanoseconds.
	PhaseWorker
	// PhaseOrdering spans the solver's source-ordering phase.
	PhaseOrdering
	// PhaseSSSP spans the solver's iterated modified-Dijkstra phase.
	PhaseSSSP
	// PhaseFoldDrain is one batched fold drain inside a search: Index is
	// the loop index of the running source, Arg the batch length.
	PhaseFoldDrain
	// PhaseBatchSweep is one multi-source batch solved by the batch
	// engine (MS-BFS or shared-sweep SSSP): Index is the batch ordinal,
	// Arg the number of level/relaxation sweeps it took.
	PhaseBatchSweep
)

// String returns the trace-event name of the phase.
func (p Phase) String() string {
	switch p {
	case PhaseIter:
		return "iter"
	case PhaseChunk:
		return "chunk"
	case PhaseWorker:
		return "worker"
	case PhaseOrdering:
		return "ordering"
	case PhaseSSSP:
		return "sssp"
	case PhaseFoldDrain:
		return "fold-drain"
	case PhaseBatchSweep:
		return "batch-sweep"
	default:
		return "phase?"
	}
}

// Event is one recorded span. Start and End are nanoseconds since the
// recorder's epoch (Recorder.Now); Index and Arg are phase-specific
// payloads (see the Phase constants). Worker is filled in by Lane.Add.
type Event struct {
	Start, End int64
	Index, Arg int64
	Worker     int32
	Phase      Phase
}

// DefaultLaneCapacity is the per-lane ring size of New: enough for the
// full iteration history of the container-scale benchmarks while keeping
// a 16-worker recorder under ~6 MB.
const DefaultLaneCapacity = 1 << 13

// Lane is one worker's fixed-size event ring buffer. Single-writer: only
// the owning goroutine may Add; see the package memory model.
type Lane struct {
	rec    *Recorder
	buf    []Event
	next   int // total Adds ever; position next%len(buf)
	worker int32
}

// Worker returns the lane's worker id (Recorder.Workers() for the
// coordinator lane).
func (l *Lane) Worker() int { return int(l.worker) }

// Now returns nanoseconds since the owning recorder's epoch.
func (l *Lane) Now() int64 { return l.rec.Now() }

// Add appends an event, overwriting the oldest when the ring is full.
// e.Worker is overwritten with the lane's id.
func (l *Lane) Add(e Event) {
	e.Worker = l.worker
	l.buf[l.next%len(l.buf)] = e
	l.next++
}

// Events returns the surviving events in record order (oldest first).
// The returned slice is a copy.
func (l *Lane) Events() []Event {
	n := len(l.buf)
	if l.next <= n {
		return append([]Event(nil), l.buf[:l.next]...)
	}
	out := make([]Event, 0, n)
	head := l.next % n
	out = append(out, l.buf[head:]...)
	return append(out, l.buf[:head]...)
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (l *Lane) Dropped() int64 {
	if d := l.next - len(l.buf); d > 0 {
		return int64(d)
	}
	return 0
}

// Recorder is the per-solve instrument: worker lanes, a coordinator lane,
// and a metrics registry, all sharing one monotonic epoch.
type Recorder struct {
	epoch   time.Time
	lanes   []*Lane // [0,workers) per-worker, [workers] coordinator
	metrics *Metrics
	stopped bool
	stopNs  int64
}

// New returns a recorder with lanes for the given worker count (plus the
// coordinator lane) at DefaultLaneCapacity.
func New(workers int) *Recorder { return NewWithCapacity(workers, DefaultLaneCapacity) }

// NewWithCapacity is New with an explicit per-lane ring capacity, for
// tests that must not drop events (or want to force drops).
func NewWithCapacity(workers, laneCapacity int) *Recorder {
	if workers < 1 {
		workers = 1
	}
	if laneCapacity < 1 {
		laneCapacity = 1
	}
	r := &Recorder{epoch: time.Now(), metrics: NewMetrics()}
	r.lanes = make([]*Lane, workers+1)
	for i := range r.lanes {
		r.lanes[i] = &Lane{rec: r, worker: int32(i), buf: make([]Event, laneCapacity)}
	}
	return r
}

// Workers returns the number of worker lanes (excluding the coordinator).
func (r *Recorder) Workers() int { return len(r.lanes) - 1 }

// Lane returns worker w's lane; w must be in [0, Workers()).
func (r *Recorder) Lane(w int) *Lane {
	if w < 0 || w >= r.Workers() {
		panic("obs: lane index out of range")
	}
	return r.lanes[w]
}

// Coordinator returns the coordinating goroutine's lane (solver phase
// spans, sequential runs).
func (r *Recorder) Coordinator() *Lane { return r.lanes[len(r.lanes)-1] }

// Metrics returns the recorder's metrics registry (safe for concurrent
// use at any time).
func (r *Recorder) Metrics() *Metrics { return r.metrics }

// Now returns nanoseconds since the recorder's epoch (monotonic).
func (r *Recorder) Now() int64 { return int64(time.Since(r.epoch)) }

// Stop freezes the recorder: it records the stop timestamp on first call
// and is idempotent. Call it after the instrumented work joined (the
// pool's WaitGroup.Wait provides the happens-before edge); only then are
// Events, Dropped and WriteTrace defined.
func (r *Recorder) Stop() {
	if !r.stopped {
		r.stopped = true
		r.stopNs = r.Now()
	}
}

// Stopped reports whether Stop has been called; StopNs returns the stop
// timestamp (0 until stopped).
func (r *Recorder) Stopped() bool { return r.stopped }

// StopNs returns the Stop timestamp in epoch nanoseconds.
func (r *Recorder) StopNs() int64 { return r.stopNs }

// Events merges every lane into one timeline ordered by Start (ties keep
// lane order, and record order within a lane). Call after Stop.
func (r *Recorder) Events() []Event {
	perLane := make([][]Event, len(r.lanes))
	for i, l := range r.lanes {
		perLane[i] = l.Events()
	}
	return Merge(perLane...)
}

// Dropped returns the total events lost to ring wrap-around across lanes.
func (r *Recorder) Dropped() int64 {
	var d int64
	for _, l := range r.lanes {
		d += l.Dropped()
	}
	return d
}

// Merge combines per-lane event slices (each already in record order)
// into one slice sorted by Start; the sort is stable, so events with
// equal Start keep lane order and intra-lane record order. Exported for
// the ring-buffer merge fuzz target.
func Merge(lanes ...[]Event) []Event {
	total := 0
	for _, l := range lanes {
		total += len(l)
	}
	out := make([]Event, 0, total)
	for _, l := range lanes {
		out = append(out, l...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
