package obs

import (
	"context"
	"runtime/pprof"
)

// Do runs fn with the given pprof label key/value pairs attached to the
// current goroutine, so CPU profiles split by algorithm, phase and worker
// ("go tool pprof -tagfocus"). It is runtime/pprof.Do without the context
// plumbing: the solvers and scheduler label whole phases and worker
// lifetimes, never inner loops, so the labeling cost is amortized over
// milliseconds of work.
func Do(fn func(), labels ...string) {
	pprof.Do(context.Background(), pprof.Labels(labels...), func(context.Context) { fn() })
}
