package obs

import (
	"bufio"
	"fmt"
	"io"
)

// WriteTrace writes the merged timeline in Chrome trace_event JSON (the
// "JSON object format" with a traceEvents array of "X" complete events),
// loadable in Perfetto or chrome://tracing. One tid per lane; the
// coordinator lane is the highest tid. Field ordering and number
// formatting are fixed by hand (not encoding/json) so the output is
// byte-stable for golden-file tests; timestamps are microseconds with
// nanosecond precision, non-decreasing because Events sorts by Start.
//
// Call after Stop (see the package memory model).
func (r *Recorder) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n")

	wrote := false
	emit := func(format string, args ...any) {
		if wrote {
			bw.WriteString(",\n")
		}
		wrote = true
		fmt.Fprintf(bw, "    "+format, args...)
	}

	emit(`{"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "parapsp"}}`)
	for tid := 0; tid < len(r.lanes); tid++ {
		name := fmt.Sprintf("worker %d", tid)
		if tid == r.Workers() {
			name = "coordinator"
		}
		emit(`{"name": "thread_name", "ph": "M", "pid": 1, "tid": %d, "args": {"name": %q}}`, tid, name)
	}
	for _, e := range r.Events() {
		emit(`{"name": %q, "ph": "X", "pid": 1, "tid": %d, "ts": %s, "dur": %s, "args": {"i": %d, "a": %d}}`,
			e.Phase.String(), e.Worker, usec(e.Start), usec(e.End-e.Start), e.Index, e.Arg)
	}

	fmt.Fprintf(bw, "\n  ]\n}\n")
	return bw.Flush()
}

// usec renders nanoseconds as microseconds with fixed 3-decimal
// precision, the deterministic timestamp format of WriteTrace.
func usec(ns int64) string {
	neg := ""
	if ns < 0 { // negative durations only from hand-built test events
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}
