package obs

import (
	"sort"
	"testing"
)

// FuzzMerge drives the ring-buffer merge with adversarial lane contents:
// out-of-order spans, negative and duplicate timestamps, and rings forced
// to wrap. Invariants: the merge is sorted by Start, loses nothing the
// rings kept, and preserves each lane's record order among equal starts.
func FuzzMerge(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 5, 3, 200, 1})                    // single lane, wrap
	f.Add([]byte{3, 7, 0, 0, 1, 9, 9, 2, 4, 4, 0, 1, 1}) // three lanes, ties
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			if got := Merge(); len(got) != 0 {
				t.Fatalf("empty merge returned %d events", len(got))
			}
			return
		}
		lanes := 1 + int(data[0]%4)
		capacity := 1 + int(data[0]/4%8)
		rec := NewWithCapacity(lanes, capacity)

		added := make([]int, lanes)
		clock := int64(0)
		for k := 1; k+2 < len(data); k += 3 {
			w := int(data[k]) % lanes
			// Mix monotonic and regressing starts; byte 2's high bit
			// makes the event go backwards in time.
			delta := int64(data[k+1])
			if data[k+2]&0x80 != 0 {
				delta = -delta
			}
			clock += delta
			rec.Lane(w).Add(Event{
				Start: clock,
				End:   clock + int64(data[k+2]&0x7f),
				Index: int64(k),
			})
			added[w]++
		}
		rec.Stop()

		// Nothing the rings kept may be lost, and nothing invented.
		wantTotal := 0
		for w := 0; w < lanes; w++ {
			kept := added[w]
			if kept > capacity {
				kept = capacity
			}
			if got := len(rec.Lane(w).Events()); got != kept {
				t.Fatalf("lane %d kept %d events, want %d", w, got, kept)
			}
			wantDrop := int64(added[w] - kept)
			if got := rec.Lane(w).Dropped(); got != wantDrop {
				t.Fatalf("lane %d dropped %d, want %d", w, got, wantDrop)
			}
			wantTotal += kept
		}
		merged := rec.Events()
		if len(merged) != wantTotal {
			t.Fatalf("merged %d events, want %d", len(merged), wantTotal)
		}
		if !sort.SliceIsSorted(merged, func(i, j int) bool { return merged[i].Start < merged[j].Start }) {
			t.Fatal("merge not sorted by Start")
		}
		// Per-lane multiset preservation: every surviving lane event — and
		// only those — appears in the merge (events are unique by Index).
		// Equal-start record-order stability has a deterministic unit
		// test (TestMergeSortedAndStable).
		for w := 0; w < lanes; w++ {
			want := map[int64]int64{}
			for _, e := range rec.Lane(w).Events() {
				want[e.Index] = e.Start
			}
			got := 0
			for _, e := range merged {
				if int(e.Worker) != w {
					continue
				}
				start, ok := want[e.Index]
				if !ok || start != e.Start {
					t.Fatalf("lane %d: merged event %+v not among the lane's survivors", w, e)
				}
				got++
			}
			if got != len(want) {
				t.Fatalf("lane %d: %d events in merge, want %d", w, got, len(want))
			}
		}
	})
}
