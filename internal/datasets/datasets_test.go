package datasets

import (
	"math"
	"testing"
)

func TestCatalogIntegrity(t *testing.T) {
	if len(All()) != 8 {
		t.Fatalf("catalogue size = %d, want 8", len(All()))
	}
	t2 := Table2()
	if len(t2) != 5 {
		t.Fatalf("Table2 size = %d, want 5", len(t2))
	}
	// Paper order and numbers.
	want := []struct {
		name     string
		directed bool
		v, e     int
	}{
		{"ego-Twitter", true, 81306, 1768149},
		{"Livemocha", false, 104103, 2193083},
		{"Flickr", false, 105938, 2316948},
		{"WordNet", false, 146005, 656999},
		{"sx-superuser", true, 194085, 1443339},
	}
	for i, w := range want {
		in := t2[i]
		if in.Name != w.name || in.Directed != w.directed || in.Vertices != w.v || in.Edges != w.e {
			t.Errorf("Table2[%d] = %+v, want %+v", i, in, w)
		}
	}
}

func TestGet(t *testing.T) {
	in, err := Get("WordNet")
	if err != nil || in.Vertices != 146005 {
		t.Fatalf("Get(WordNet) = %+v, %v", in, err)
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 8 || names[0] != "ego-Twitter" || names[5] != "ca-HepPh" {
		t.Errorf("Names = %v", names)
	}
}

func TestMeanDegree(t *testing.T) {
	in, _ := Get("WordNet") // undirected: 2*656999/146005 ~ 9.0
	got := in.MeanDegree()
	if math.Abs(got-2*656999.0/146005.0) > 1e-9 {
		t.Errorf("WordNet mean degree = %g", got)
	}
	din, _ := Get("ego-Twitter") // directed: 1768149/81306 ~ 21.7
	if math.Abs(din.MeanDegree()-1768149.0/81306.0) > 1e-9 {
		t.Errorf("ego-Twitter mean degree = %g", din.MeanDegree())
	}
	if (Info{}).MeanDegree() != 0 {
		t.Error("zero Info mean degree != 0")
	}
}

func TestSynthesizeUndirected(t *testing.T) {
	g, in, err := Synthesize("WordNet", 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Undirected() != true {
		t.Error("WordNet stand-in not undirected")
	}
	wantN := int(0.01 * float64(in.Vertices))
	if g.N() != wantN {
		t.Errorf("N = %d, want %d", g.N(), wantN)
	}
	// Mean degree within 2x of the original (merges shrink it slightly).
	mean := float64(g.NumArcs()) / float64(g.N())
	if mean < in.MeanDegree()/2 || mean > in.MeanDegree()*2 {
		t.Errorf("mean degree = %g, original %g", mean, in.MeanDegree())
	}
	// Heavy tail.
	_, max := g.MinMaxDegree()
	if max < 10 {
		t.Errorf("max degree = %d; no tail", max)
	}
}

func TestSynthesizeDirected(t *testing.T) {
	g, in, err := Synthesize("ego-Twitter", 0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Undirected() {
		t.Error("ego-Twitter stand-in not directed")
	}
	mean := float64(g.NumArcs()) / float64(g.N())
	if mean < in.MeanDegree()/3 || mean > in.MeanDegree()*1.5 {
		t.Errorf("mean arcs/vertex = %g, original %g", mean, in.MeanDegree())
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a, _, err := Synthesize("Flickr", 0.005, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Synthesize("Flickr", 0.005, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumArcs() != b.NumArcs() {
		t.Error("same seed produced different graphs")
	}
}

func TestSynthesizeErrors(t *testing.T) {
	if _, _, err := Synthesize("nope", 0.1, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	for _, s := range []float64{0, -1, 1.5} {
		if _, _, err := Synthesize("WordNet", s, 1); err == nil {
			t.Errorf("scale %g accepted", s)
		}
	}
}

func TestSynthesizeMinimumSize(t *testing.T) {
	g, _, err := Synthesize("WordNet", 0.00001, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 16 {
		t.Errorf("tiny scale N = %d, want floor 16", g.N())
	}
}

func TestSynthesizeDegrees(t *testing.T) {
	deg, in, err := SynthesizeDegrees("soc-Pokec", 0.001, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(deg) != int(0.001*float64(in.Vertices)) {
		t.Fatalf("len = %d", len(deg))
	}
	var sum, max float64
	for _, d := range deg {
		if d < 1 {
			t.Fatalf("degree %d < 1", d)
		}
		sum += float64(d)
		if float64(d) > max {
			max = float64(d)
		}
	}
	mean := sum / float64(len(deg))
	if mean < in.MeanDegree()/3 || mean > in.MeanDegree()*3 {
		t.Errorf("mean = %g, original %g", mean, in.MeanDegree())
	}
	if max < mean*5 {
		t.Errorf("max = %g, mean = %g; no tail", max, mean)
	}
	if _, _, err := SynthesizeDegrees("nope", 0.1, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, _, err := SynthesizeDegrees("WordNet", 0, 1); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestScaledSize(t *testing.T) {
	n, err := ScaledSize("WordNet", 0.1)
	if err != nil || n != 14600 {
		t.Errorf("ScaledSize = %d, %v", n, err)
	}
	if _, err := ScaledSize("nope", 0.1); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := ScaledSize("WordNet", 2); err == nil {
		t.Error("scale 2 accepted")
	}
}

func TestSortedByVertices(t *testing.T) {
	s := SortedByVertices()
	for i := 1; i < len(s); i++ {
		if s[i-1].Vertices > s[i].Vertices {
			t.Fatalf("not sorted at %d", i)
		}
	}
	if s[0].Name != "ca-HepPh" || s[len(s)-1].Name != "soc-LiveJournal1" {
		t.Errorf("extremes = %s, %s", s[0].Name, s[len(s)-1].Name)
	}
}
