// Package datasets catalogues the real-world graphs the paper evaluates on
// (Table 2, plus the ca-HepPh graph of Section 3.2 and the soc-Pokec /
// soc-LiveJournal1 graphs of Section 4.3) and synthesizes deterministic
// scale-free stand-ins for them at any scale factor.
//
// The originals live in the SNAP and KONECT repositories, which are not
// reachable from this offline environment, and the full-size runs need
// 128-256 GB of RAM for the distance matrix. What the paper's algorithmic
// comparisons depend on is the *shape* of the inputs — a power-law degree
// distribution and the vertex/edge ratio — so the stand-ins are grown by
// preferential attachment matched to each dataset's vertex count and mean
// degree (see DESIGN.md, "Substitutions"). Real edge-list files can be
// loaded with internal/gio and used with the same harness.
package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"parapsp/internal/gen"
	"parapsp/internal/graph"
)

// Info describes one catalogued dataset (numbers from the paper).
type Info struct {
	// Name as used in the paper.
	Name string
	// Directed is the input interpretation (Table 2 "Type").
	Directed bool
	// Vertices and Edges are the full-size counts reported in the paper.
	Vertices int
	// Edges counts arcs for directed graphs, undirected edges otherwise.
	Edges int
	// Source repository, for locating the original.
	Source string
	// InTable2 marks the five headline datasets of the evaluation.
	InTable2 bool
}

// MeanDegree returns the dataset's mean out-degree (arcs per vertex).
func (in Info) MeanDegree() float64 {
	if in.Vertices == 0 {
		return 0
	}
	m := float64(in.Edges)
	if !in.Directed {
		m *= 2 // undirected edges induce two arcs
	}
	return m / float64(in.Vertices)
}

// catalog lists every dataset the paper references, in paper order.
var catalog = []Info{
	{Name: "ego-Twitter", Directed: true, Vertices: 81306, Edges: 1768149, Source: "SNAP", InTable2: true},
	{Name: "Livemocha", Directed: false, Vertices: 104103, Edges: 2193083, Source: "KONECT", InTable2: true},
	{Name: "Flickr", Directed: false, Vertices: 105938, Edges: 2316948, Source: "KONECT", InTable2: true},
	{Name: "WordNet", Directed: false, Vertices: 146005, Edges: 656999, Source: "KONECT", InTable2: true},
	{Name: "sx-superuser", Directed: true, Vertices: 194085, Edges: 1443339, Source: "SNAP", InTable2: true},
	{Name: "ca-HepPh", Directed: false, Vertices: 12008, Edges: 118521, Source: "SNAP"},
	{Name: "soc-Pokec", Directed: true, Vertices: 1632803, Edges: 30622564, Source: "SNAP"},
	{Name: "soc-LiveJournal1", Directed: true, Vertices: 4847571, Edges: 68993773, Source: "SNAP"},
}

// All returns the full catalogue.
func All() []Info {
	out := make([]Info, len(catalog))
	copy(out, catalog)
	return out
}

// Table2 returns the five datasets of the paper's Table 2, in paper order.
func Table2() []Info {
	var out []Info
	for _, in := range catalog {
		if in.InTable2 {
			out = append(out, in)
		}
	}
	return out
}

// Get looks a dataset up by its paper name.
func Get(name string) (Info, error) {
	for _, in := range catalog {
		if in.Name == name {
			return in, nil
		}
	}
	return Info{}, fmt.Errorf("datasets: unknown dataset %q", name)
}

// Names returns the catalogue names in paper order.
func Names() []string {
	out := make([]string, len(catalog))
	for i, in := range catalog {
		out[i] = in.Name
	}
	return out
}

// Synthesize grows a deterministic stand-in for the named dataset at the
// given scale factor: n' = max(16, scale*Vertices) vertices with the
// original mean degree. Undirected datasets become Barabási–Albert graphs;
// directed datasets are grown the same way and then each edge is oriented
// in a uniformly random single direction, which preserves the power-law
// total-degree distribution and the arc count.
func Synthesize(name string, scale float64, seed int64) (*graph.Graph, Info, error) {
	in, err := Get(name)
	if err != nil {
		return nil, Info{}, err
	}
	if scale <= 0 || scale > 1 {
		return nil, Info{}, fmt.Errorf("datasets: scale %g outside (0, 1]", scale)
	}
	n := int(scale * float64(in.Vertices))
	if n < 16 {
		n = 16
	}
	// Attachment count reproducing the mean degree: for undirected BA each
	// vertex adds mAtt edges (mean degree ~2*mAtt, matching 2E/V); for the
	// directed variant each edge becomes one arc, so to match E arcs per V
	// vertices we need mAtt = E/V edges before orientation.
	var mAtt int
	if in.Directed {
		mAtt = int(math.Round(float64(in.Edges) / float64(in.Vertices)))
	} else {
		mAtt = int(math.Round(float64(in.Edges) / float64(in.Vertices)))
	}
	if mAtt < 1 {
		mAtt = 1
	}
	g, err := gen.BarabasiAlbert(n, mAtt, seed, gen.Weighting{})
	if err != nil {
		return nil, Info{}, err
	}
	if in.Directed {
		g, err = orientRandom(g, seed+1)
		if err != nil {
			return nil, Info{}, err
		}
	}
	// Randomize vertex ids: preferential-attachment growth leaves the
	// hubs at the lowest ids, which would make the identity source order
	// accidentally degree-sorted and mask the paper's ordering effect.
	// Real SNAP/KONECT ids carry no such correlation.
	g, err = gen.Relabel(g, seed+2)
	if err != nil {
		return nil, Info{}, err
	}
	return g, in, nil
}

// orientRandom converts an undirected graph into a directed one by giving
// each edge a uniformly random direction.
func orientRandom(g *graph.Graph, seed int64) (*graph.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(g.N(), false)
	for u := int32(0); u < int32(g.N()); u++ {
		for _, v := range g.Neighbors(u) {
			if v < u {
				continue // visit each undirected edge once
			}
			if rng.Intn(2) == 0 {
				if err := b.AddEdge(u, v); err != nil {
					return nil, err
				}
			} else {
				if err := b.AddEdge(v, u); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build()
}

// SynthesizeDegrees draws only a degree array shaped like the named
// dataset at the given scale, without materializing a graph. The ordering
// experiments on the multi-million-vertex graphs (Section 4.3's soc-Pokec
// and soc-LiveJournal1 runs) only consume degrees, so this makes them
// affordable at any size. Degrees follow a bounded discrete power law with
// the dataset's mean degree.
func SynthesizeDegrees(name string, scale float64, seed int64) ([]int, Info, error) {
	in, err := Get(name)
	if err != nil {
		return nil, Info{}, err
	}
	if scale <= 0 || scale > 1 {
		return nil, Info{}, fmt.Errorf("datasets: scale %g outside (0, 1]", scale)
	}
	n := int(scale * float64(in.Vertices))
	if n < 16 {
		n = 16
	}
	rng := rand.New(rand.NewSource(seed))
	mean := in.MeanDegree()
	// Power law with exponent ~2.5: mean = minDeg*(gamma-1)/(gamma-2).
	const gamma = 2.5
	minDeg := mean * (gamma - 2) / (gamma - 1)
	if minDeg < 1 {
		minDeg = 1
	}
	maxDeg := float64(n - 1)
	degrees := make([]int, n)
	for i := range degrees {
		u := rng.Float64()
		d := minDeg * math.Pow(1-u, -1/(gamma-1))
		if d > maxDeg {
			d = maxDeg
		}
		degrees[i] = int(d)
	}
	return degrees, in, nil
}

// ScaledSize reports the vertex count Synthesize would produce, letting
// callers bound memory before building anything.
func ScaledSize(name string, scale float64) (int, error) {
	in, err := Get(name)
	if err != nil {
		return 0, err
	}
	if scale <= 0 || scale > 1 {
		return 0, fmt.Errorf("datasets: scale %g outside (0, 1]", scale)
	}
	n := int(scale * float64(in.Vertices))
	if n < 16 {
		n = 16
	}
	return n, nil
}

// SortedByVertices returns the catalogue ordered by full-size vertex count,
// used by reporting code.
func SortedByVertices() []Info {
	out := All()
	sort.Slice(out, func(i, j int) bool { return out[i].Vertices < out[j].Vertices })
	return out
}
