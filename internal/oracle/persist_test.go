package oracle

import (
	"os"
	"path/filepath"
	"testing"

	"parapsp/internal/gen"
	"parapsp/internal/graph"
)

func persistGraph(t *testing.T, n int, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLawConfiguration(n, 2.5, 2, true, seed, gen.Weighting{})
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	return g
}

func TestPersistRoundTrip(t *testing.T) {
	g := persistGraph(t, 200, 17)
	o, err := Build(g, Options{Landmarks: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	fp := g.Fingerprint()
	path := filepath.Join(t.TempDir(), "oracle.bin")
	if err := o.Save(path, fp); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := Load(path, g, fp)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if lg, lo := got.Landmarks(), o.Landmarks(); len(lg) != len(lo) {
		t.Fatalf("landmark count drifted: %d vs %d", len(lg), len(lo))
	}
	for i, L := range o.Landmarks() {
		if got.Landmarks()[i] != L {
			t.Fatalf("landmark %d drifted: %d vs %d", i, got.Landmarks()[i], L)
		}
	}
	n := int32(g.N())
	for u := int32(0); u < n; u += 13 {
		for v := int32(0); v < n; v += 17 {
			lo1, up1 := o.Bounds(u, v)
			lo2, up2 := got.Bounds(u, v)
			if lo1 != lo2 || up1 != up2 {
				t.Fatalf("Bounds(%d,%d) drifted across persistence: [%d,%d] vs [%d,%d]",
					u, v, lo1, up1, lo2, up2)
			}
		}
	}
}

func TestPersistRejects(t *testing.T) {
	g := persistGraph(t, 80, 3)
	o, err := Build(g, Options{Landmarks: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	fp := g.Fingerprint()
	dir := t.TempDir()
	path := filepath.Join(dir, "oracle.bin")
	if err := o.Save(path, fp); err != nil {
		t.Fatal(err)
	}

	if _, err := Load(path, g, fp+1); err == nil {
		t.Error("loaded under a foreign fingerprint")
	}
	other := persistGraph(t, 81, 4)
	if _, err := Load(path, other, fp); err == nil {
		t.Error("loaded onto a graph of different order")
	}
	if _, err := Load(filepath.Join(dir, "absent.bin"), g, fp); err == nil {
		t.Error("loaded a missing file")
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.bin")
	if err := os.WriteFile(trunc, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(trunc, g, fp); err == nil {
		t.Error("loaded a truncated file")
	}
	garbled := append([]byte{}, data...)
	copy(garbled[:8], "NOTMAGIC")
	bad := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(bad, garbled, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad, g, fp); err == nil {
		t.Error("loaded a file with a foreign magic")
	}
}
