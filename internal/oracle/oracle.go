// Package oracle provides a landmark-based approximate distance oracle:
// the standard answer to "the graph is too big for O(n^2) APSP but I need
// fast distance queries" — the regime just past the memory wall that caps
// the paper's experiments (sx-superuser already needs 160 GB).
//
// The oracle picks k landmarks (highest-degree vertices by default — the
// same hub intuition as the paper's ordering), computes their exact
// shortest-path rows with the subset solver (which reuses rows among the
// landmarks exactly like ParAPSP), and answers queries by the triangle
// inequality:
//
//	upper(u,v) = min over L of d(u,L) + d(L,v)
//	lower(u,v) = max over L of the one-sided triangle differences
//
// For undirected graphs d(u,L) comes from L's row; for directed graphs
// the oracle also computes landmark rows on the transpose so both d(u,L)
// and d(L,v) are exact. Memory is O(k*n) instead of O(n^2).
package oracle

import (
	"fmt"
	"sort"

	"parapsp/internal/core"
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// Oracle answers approximate distance queries from landmark rows.
type Oracle struct {
	landmarks []int32
	// from[i][v] = d(landmark_i, v); to[i][v] = d(v, landmark_i).
	// For undirected graphs they alias the same rows.
	from, to [][]matrix.Dist
	n        int
	directed bool
}

// Options configures Build. The zero value picks 16 highest-degree
// landmarks with a single worker.
type Options struct {
	// Landmarks is the number of landmarks k (default 16, clamped to n).
	Landmarks int
	// Workers parallelizes the landmark SSSP runs.
	Workers int
	// Seed reserved for future randomized strategies (unused by the
	// degree strategy).
	Seed int64
}

// Build selects landmarks and computes their exact rows.
func Build(g *graph.Graph, opts Options) (*Oracle, error) {
	n := g.N()
	k := opts.Landmarks
	if k <= 0 {
		k = 16
	}
	if k > n {
		k = n
	}

	// Highest-degree landmarks: on scale-free graphs the hubs lie on most
	// shortest paths, which keeps the triangle upper bound tight.
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return g.OutDegree(idx[a]) > g.OutDegree(idx[b])
	})
	landmarks := make([]int32, k)
	copy(landmarks, idx[:k])

	sub, err := core.SolveSubset(g, landmarks, core.Options{Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	o := &Oracle{landmarks: landmarks, n: n, directed: !g.Undirected()}
	o.from = make([][]matrix.Dist, k)
	for i, L := range landmarks {
		o.from[i] = sub.Row(L)
	}
	if g.Undirected() {
		o.to = o.from
	} else {
		// d(v, L) = d_transpose(L, v).
		tr := g.Transpose()
		rsub, err := core.SolveSubset(tr, landmarks, core.Options{Workers: opts.Workers})
		if err != nil {
			return nil, err
		}
		o.to = make([][]matrix.Dist, k)
		for i, L := range landmarks {
			o.to[i] = rsub.Row(L)
		}
	}
	return o, nil
}

// Landmarks returns the chosen landmark vertices (descending degree).
func (o *Oracle) Landmarks() []int32 {
	out := make([]int32, len(o.landmarks))
	copy(out, o.landmarks)
	return out
}

// MemBytes reports the oracle's row storage.
func (o *Oracle) MemBytes() uint64 {
	per := uint64(len(o.landmarks)) * uint64(o.n) * 4
	if len(o.to) > 0 && len(o.from) > 0 && &o.to[0][0] != &o.from[0][0] {
		return 2 * per
	}
	return per
}

// Bounds returns lower and upper bounds on d(u, v). Inf/Inf means no
// landmark connects the pair (they may still be connected through
// non-landmark paths, so Inf upper bounds are inconclusive for
// reachability). u == v returns (0, 0).
func (o *Oracle) Bounds(u, v int32) (lower, upper matrix.Dist) {
	if u == v {
		return 0, 0
	}
	lower, upper = 0, matrix.Inf
	for i := range o.landmarks {
		du := o.to[i][u]   // d(u, L)
		dv := o.from[i][v] // d(L, v)
		if du != matrix.Inf && dv != matrix.Inf {
			if s := matrix.AddSat(du, dv); s < upper {
				upper = s
			}
		}
		// Lower bounds from the triangle inequality. With directed
		// distances only the one-sided forms are valid:
		//   d(u,L) <= d(u,v) + d(v,L)  =>  d(u,v) >= d(u,L) - d(v,L)
		//   d(L,v) <= d(L,u) + d(u,v)  =>  d(u,v) >= d(L,v) - d(L,u)
		// Undirected symmetry upgrades both to absolute differences.
		dvl := o.to[i][v] // d(v, L)
		if du != matrix.Inf && dvl != matrix.Inf {
			var diff matrix.Dist
			if du > dvl {
				diff = du - dvl
			} else if !o.directed {
				diff = dvl - du
			}
			if diff > lower {
				lower = diff
			}
		}
		dlu := o.from[i][u] // d(L, u)
		if dlu != matrix.Inf && dv != matrix.Inf {
			var diff matrix.Dist
			if dv > dlu {
				diff = dv - dlu
			} else if !o.directed {
				diff = dlu - dv
			}
			if diff > lower {
				lower = diff
			}
		}
	}
	if lower > upper {
		// Possible only when no landmark connects the pair (upper = Inf
		// stays) — keep bounds consistent for callers.
		lower = upper
	}
	return lower, upper
}

// Estimate returns the upper bound, the conventional landmark estimate.
func (o *Oracle) Estimate(u, v int32) matrix.Dist {
	_, up := o.Bounds(u, v)
	return up
}

// BoundsWithin is the sketch-answer fast path: it tightens bounds
// landmark by landmark and exits as soon as upper <= (1+tol)*lower,
// returning (lower, upper, true) with the certificate bounds, or the
// final bounds and false when no prefix of landmarks certifies the
// tolerance. It never allocates, so a sketch-answered query touches no
// row tier at all. u == v certifies trivially at (0, 0).
func (o *Oracle) BoundsWithin(u, v int32, tol float64) (lower, upper matrix.Dist, ok bool) {
	if u == v {
		return 0, 0, true
	}
	lower, upper = 0, matrix.Inf
	for i := range o.landmarks {
		du := o.to[i][u]   // d(u, L)
		dv := o.from[i][v] // d(L, v)
		if du != matrix.Inf && dv != matrix.Inf {
			if s := matrix.AddSat(du, dv); s < upper {
				upper = s
			}
		}
		dvl := o.to[i][v] // d(v, L)
		if du != matrix.Inf && dvl != matrix.Inf {
			var diff matrix.Dist
			if du > dvl {
				diff = du - dvl
			} else if !o.directed {
				diff = dvl - du
			}
			if diff > lower {
				lower = diff
			}
		}
		dlu := o.from[i][u] // d(L, u)
		if dlu != matrix.Inf && dv != matrix.Inf {
			var diff matrix.Dist
			if dv > dlu {
				diff = dv - dlu
			} else if !o.directed {
				diff = dlu - dv
			}
			if diff > lower {
				lower = diff
			}
		}
		if upper != matrix.Inf && float64(upper) <= (1+tol)*float64(lower) {
			return lower, upper, true
		}
	}
	if lower > upper {
		lower = upper
	}
	return lower, upper, false
}

// NearestLandmark returns the index (0-based, into Landmarks()) of the
// landmark closest to v in the d(v, L) direction, and that distance.
// Index -1 means no landmark reaches v. This is the dictionary-selection
// primitive for the compressed row tiers: encoding v's row against its
// nearest landmark's row bounds every finite delta by d(v, L).
func (o *Oracle) NearestLandmark(v int32) (int, matrix.Dist) {
	best, bestD := -1, matrix.Inf
	for i := range o.landmarks {
		if d := o.to[i][v]; d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// FromRow returns landmark i's outgoing row d(landmark_i, ·), aliasing
// internal storage; callers must not modify it.
func (o *Oracle) FromRow(i int) []matrix.Dist { return o.from[i] }

// String describes the oracle.
func (o *Oracle) String() string {
	return fmt.Sprintf("oracle.Oracle(k=%d, n=%d, %d KiB)", len(o.landmarks), o.n, o.MemBytes()>>10)
}
