package oracle

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"

	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// Oracle persistence: building k landmark rows costs k SSSP runs, which
// dominates parapspd's startup on large graphs. Save writes the finished
// oracle next to the spill arena; Load restores it in one sequential read
// when the stored graph fingerprint matches, so a restart warm-starts
// both the cold tier (arena recovery) and its compression dictionary.
//
// File layout (all integers little-endian):
//
//	[ 8] magic "PAPSORC1"
//	[ 8] graph fingerprint
//	[ 8] n (uint64)
//	[ 8] k (uint64)
//	[ 1] flags: bit0 directed, bit1 separate to-rows
//	[4k] landmark vertex ids (int32)
//	[4kn] from rows
//	[4kn] to rows (only when bit1 set)
const persistMagic = "PAPSORC1"

// Save writes the oracle to path atomically (temp file + rename), keyed
// by the graph's fingerprint.
func (o *Oracle) Save(path string, fingerprint uint64) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("oracle: save: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	sharedTo := len(o.from) > 0 && len(o.to) > 0 && &o.to[0][0] == &o.from[0][0]
	var flags byte
	if o.directed {
		flags |= 1
	}
	if !sharedTo {
		flags |= 2
	}
	hdr := make([]byte, 33)
	copy(hdr[:8], persistMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], fingerprint)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(o.n))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(o.landmarks)))
	hdr[32] = flags
	w.Write(hdr)
	var b4 [4]byte
	for _, L := range o.landmarks {
		binary.LittleEndian.PutUint32(b4[:], uint32(L))
		w.Write(b4[:])
	}
	writeRows := func(rows [][]matrix.Dist) {
		for _, row := range rows {
			for _, d := range row {
				binary.LittleEndian.PutUint32(b4[:], uint32(d))
				w.Write(b4[:])
			}
		}
	}
	writeRows(o.from)
	if !sharedTo {
		writeRows(o.to)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("oracle: save: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("oracle: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("oracle: save: %w", err)
	}
	return nil
}

// Load restores an oracle saved for the given graph. A missing file,
// foreign fingerprint, or malformed content returns an error; the caller
// falls back to Build.
func Load(path string, g *graph.Graph, fingerprint uint64) (*Oracle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("oracle: load: %w", err)
	}
	if len(data) < 33 || string(data[:8]) != persistMagic {
		return nil, fmt.Errorf("oracle: load %s: not an oracle file", path)
	}
	if got := binary.LittleEndian.Uint64(data[8:16]); got != fingerprint {
		return nil, fmt.Errorf("oracle: load %s: fingerprint 0x%016x, graph is 0x%016x", path, got, fingerprint)
	}
	n := int(binary.LittleEndian.Uint64(data[16:24]))
	k := int(binary.LittleEndian.Uint64(data[24:32]))
	flags := data[32]
	if n != g.N() || k <= 0 || k > n {
		return nil, fmt.Errorf("oracle: load %s: n=%d k=%d does not fit graph n=%d", path, n, k, g.N())
	}
	directed := flags&1 != 0
	separateTo := flags&2 != 0
	need := 33 + 4*k + 4*k*n
	if separateTo {
		need += 4 * k * n
	}
	if len(data) != need {
		return nil, fmt.Errorf("oracle: load %s: %d bytes, want %d", path, len(data), need)
	}
	o := &Oracle{n: n, directed: directed}
	p := data[33:]
	o.landmarks = make([]int32, k)
	for i := range o.landmarks {
		v := int32(binary.LittleEndian.Uint32(p))
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("oracle: load %s: landmark %d out of range", path, v)
		}
		o.landmarks[i] = v
		p = p[4:]
	}
	readRows := func() [][]matrix.Dist {
		rows := make([][]matrix.Dist, k)
		flat := make([]matrix.Dist, k*n)
		for i := range rows {
			row := flat[i*n : (i+1)*n]
			for j := range row {
				row[j] = matrix.Dist(binary.LittleEndian.Uint32(p))
				p = p[4:]
			}
			rows[i] = row
		}
		return rows
	}
	o.from = readRows()
	if separateTo {
		o.to = readRows()
	} else {
		o.to = o.from
	}
	return o, nil
}
