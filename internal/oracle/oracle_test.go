package oracle

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parapsp/internal/baseline"
	"parapsp/internal/gen"
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// TestBoundsSandwichTruth is the oracle's soundness property: for every
// pair, lower <= d(u,v) <= upper (with Inf handled as +infinity).
func TestBoundsSandwichTruth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		m := rng.Intn(4 * n)
		directed := rng.Intn(2) == 0
		var w gen.Weighting
		if rng.Intn(2) == 0 {
			w = gen.Weighting{Min: 1, Max: 9}
		}
		g, err := gen.ErdosRenyiGNM(n, m, !directed, seed, w)
		if err != nil {
			return false
		}
		truth := baseline.FloydWarshall(g)
		o, err := Build(g, Options{Landmarks: 1 + rng.Intn(6), Workers: 2})
		if err != nil {
			return false
		}
		for u := int32(0); u < int32(n); u++ {
			for v := int32(0); v < int32(n); v++ {
				lo, hi := o.Bounds(u, v)
				d := truth.At(int(u), int(v))
				if d != matrix.Inf && (lo > d || hi < d) {
					t.Logf("seed %d: d(%d,%d)=%d outside [%d,%d]", seed, u, v, d, lo, hi)
					return false
				}
				if d == matrix.Inf && hi != matrix.Inf {
					t.Logf("seed %d: unreachable pair (%d,%d) got finite upper %d", seed, u, v, hi)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateTightOnScaleFree(t *testing.T) {
	g, err := gen.BarabasiAlbert(800, 3, 5, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	truth := baseline.BFSAPSP(g)
	o, err := Build(g, Options{Landmarks: 16, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Hub landmarks sit on most shortest paths of a BA graph: the upper
	// bound should be within +2 hops of the truth on average.
	var slack, count float64
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		u, v := int32(rng.Intn(800)), int32(rng.Intn(800))
		if u == v {
			continue
		}
		d := truth.At(int(u), int(v))
		est := o.Estimate(u, v)
		if est < d {
			t.Fatalf("estimate %d below truth %d", est, d)
		}
		slack += float64(est - d)
		count++
	}
	if mean := slack / count; mean > 1.0 {
		t.Errorf("mean upper-bound slack = %.2f hops; landmarks not effective", mean)
	}
}

func TestExactWhenEndpointIsLandmark(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 3, 6, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	truth := baseline.BFSAPSP(g)
	o, err := Build(g, Options{Landmarks: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, L := range o.Landmarks() {
		for v := int32(0); v < int32(g.N()); v++ {
			lo, hi := o.Bounds(L, v)
			d := truth.At(int(L), int(v))
			if lo != d || hi != d {
				t.Fatalf("landmark query (%d,%d): bounds [%d,%d] truth %d", L, v, lo, hi, d)
			}
		}
	}
}

func TestLandmarksAreHubs(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 3, 7, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	o, err := Build(g, Options{Landmarks: 5})
	if err != nil {
		t.Fatal(err)
	}
	ls := o.Landmarks()
	if len(ls) != 5 {
		t.Fatalf("landmarks = %v", ls)
	}
	// Every landmark's degree must be >= every non-landmark's degree.
	minL := 1 << 30
	for _, L := range ls {
		if d := g.OutDegree(L); d < minL {
			minL = d
		}
	}
	chosen := map[int32]bool{}
	for _, L := range ls {
		chosen[L] = true
	}
	for v := int32(0); v < int32(g.N()); v++ {
		if !chosen[v] && g.OutDegree(v) > minL {
			t.Fatalf("non-landmark %d has degree %d > weakest landmark %d", v, g.OutDegree(v), minL)
		}
	}
}

func TestDirectedAsymmetry(t *testing.T) {
	// 0 -> 1 -> 2: oracle with landmark coverage must respect direction.
	g, err := graph.FromPairs(3, false, [][2]int32{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	o, err := Build(g, Options{Landmarks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if est := o.Estimate(0, 2); est != 2 {
		t.Errorf("forward estimate = %d, want 2", est)
	}
	if _, hi := o.Bounds(2, 0); hi != matrix.Inf {
		t.Errorf("backward upper bound = %d, want Inf", hi)
	}
}

func TestSelfAndDefaults(t *testing.T) {
	g, err := gen.BarabasiAlbert(100, 2, 8, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	o, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Landmarks()) != 16 {
		t.Errorf("default landmark count = %d", len(o.Landmarks()))
	}
	if lo, hi := o.Bounds(7, 7); lo != 0 || hi != 0 {
		t.Errorf("self bounds = [%d,%d]", lo, hi)
	}
	if o.MemBytes() != 16*100*4 {
		t.Errorf("MemBytes = %d", o.MemBytes())
	}
	if o.String() == "" {
		t.Error("empty String")
	}
}

func TestKClampedToN(t *testing.T) {
	g, err := graph.FromPairs(3, true, [][2]int32{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	o, err := Build(g, Options{Landmarks: 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Landmarks()) != 3 {
		t.Errorf("clamped landmarks = %d", len(o.Landmarks()))
	}
	// With every vertex a landmark, bounds are exact everywhere.
	truth := baseline.FloydWarshall(g)
	for u := int32(0); u < 3; u++ {
		for v := int32(0); v < 3; v++ {
			lo, hi := o.Bounds(u, v)
			if lo != truth.At(int(u), int(v)) || hi != truth.At(int(u), int(v)) {
				t.Errorf("full-landmark bounds not exact at (%d,%d)", u, v)
			}
		}
	}
}

func TestDirectedMemBytesDoubled(t *testing.T) {
	g, err := gen.ErdosRenyiGNM(50, 200, false, 9, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	o, err := Build(g, Options{Landmarks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if o.MemBytes() != 2*4*50*4 {
		t.Errorf("directed MemBytes = %d", o.MemBytes())
	}
}
