package admit

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
)

// Tier is a request's service-level class. The zero value is BestEffort:
// an unlabeled request gets the cheap treatment (sketch-first approximate
// answers, first to be shed under load), and only an explicit label buys
// the expensive one — the safe default when the paper's premise holds and
// per-query cost is highly variable.
type Tier uint8

const (
	// BestEffort requests accept approximate answers (the landmark-sketch
	// tier serves them at a fraction of an exact row solve) and are shed
	// first under load, with a Retry-After that degrades as pressure
	// grows.
	BestEffort Tier = iota
	// Premium requests are always answered exactly — tolerance hints are
	// ignored — and keep a reserved slice of the inflight budget that
	// best-effort traffic can never occupy.
	Premium

	// NumTiers sizes per-tier arrays (counters, gates).
	NumTiers = 2
)

// TierNames lists the wire names in Tier order; TierNames[t] == t.String().
var TierNames = []string{"besteffort", "premium"}

func (t Tier) String() string {
	if int(t) < len(TierNames) {
		return TierNames[t]
	}
	return fmt.Sprintf("tier(%d)", uint8(t))
}

// ErrTier marks a tier header value that is rejected outright (a 4xx)
// rather than defaulted: oversized or non-printable values, which are
// never a typo'd tier name and usually a confused or hostile client.
var ErrTier = errors.New("admit: malformed tier")

// maxTierLen bounds an accepted tier header value. Real values are
// "premium" or "besteffort"; anything longer than this is abuse, not a
// misspelling, and is refused instead of silently defaulted.
const maxTierLen = 64

// ParseTier maps a tier header value to a Tier. The contract the fuzz
// target pins: never panics, and every input either admits at some tier
// or errors (a 4xx upstream). Empty and unknown-but-plausible values
// default to BestEffort — an unrecognized tier name must not turn away
// traffic — while oversized or control-character values error with
// ErrTier. Matching is case-insensitive and tolerates surrounding space.
func ParseTier(s string) (Tier, error) {
	if len(s) > maxTierLen {
		return BestEffort, fmt.Errorf("%w: value of %d bytes exceeds %d", ErrTier, len(s), maxTierLen)
	}
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] == 0x7f {
			return BestEffort, fmt.Errorf("%w: control byte 0x%02x in value", ErrTier, s[i])
		}
	}
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "premium":
		return Premium, nil
	default: // "", "besteffort", and every unknown-but-printable name
		return BestEffort, nil
	}
}

// DefaultTierHeader is the request header carrying the tier label, and
// the response header echoing the tier the request was admitted at.
const DefaultTierHeader = "X-Parapsp-Tier"

// ClientHeader names the requesting client for quota accounting. A
// router resolves identity once at the edge and forwards it here, so the
// shard-side buckets see through-router identity instead of charging
// everything to the router's address.
const ClientHeader = "X-Parapsp-Client"

// RejectHeader reports, on a rejection response, which admission gate
// refused the request: "quota", "inflight", or "draining". A router uses
// it to tell an intentional per-client quota 429 (pass through — every
// replica would refuse the same client) from transient backpressure
// (retry another owner).
const RejectHeader = "X-Parapsp-Reject"

// maxClientLen bounds a client identity; longer header values are
// truncated, never rejected — identity only keys a quota bucket.
const maxClientLen = 128

// ClientID resolves the requesting client's quota identity: the
// ClientHeader value when present (sanitized and truncated), else the
// request's remote IP with the port stripped, else "anon". It never
// fails: identity selects a bucket, it is not authentication.
func ClientID(r *http.Request) string {
	if id := sanitizeClient(r.Header.Get(ClientHeader)); id != "" {
		return id
	}
	host := r.RemoteAddr
	if i := strings.LastIndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	host = strings.Trim(host, "[]")
	if host == "" {
		return "anon"
	}
	return host
}

// sanitizeClient truncates and strips control bytes so a hostile header
// cannot bloat the bucket map key space or corrupt log lines.
func sanitizeClient(s string) string {
	if len(s) > maxClientLen {
		s = s[:maxClientLen]
	}
	if strings.IndexFunc(s, func(r rune) bool { return r < 0x20 || r == 0x7f }) < 0 {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		if r >= 0x20 && r != 0x7f {
			b.WriteRune(r)
		}
	}
	return b.String()
}
