package admit

import (
	"net/http/httptest"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParseTier pins the admission front door's parsing contract: for any
// tier header value and client header value, parsing never panics, and
// the outcome is always either an error (a 4xx upstream) or an admit at a
// valid tier — unknown tier names default to BestEffort, never to a
// refusal. The seeded corpus covers the documented vocabulary, the
// defaulting cases, and the malformed-value rejections.
func FuzzParseTier(f *testing.F) {
	seeds := []struct{ tier, client string }{
		{"", ""},                             // unlabeled: default tier, addr identity
		{"premium", "svc-a"},                 // the paid tier
		{"besteffort", "svc-b"},              // the default tier, spelled out
		{"PREMIUM", ""},                      // case-insensitive
		{"  premium  ", "x"},                 // surrounding space tolerated
		{"gold", "svc-c"},                    // unknown name -> default, not 4xx
		{"premium\x00", "a"},                 // control byte -> ErrTier
		{strings.Repeat("p", 100), "b"},      // oversized -> ErrTier
		{"premium,besteffort", "c"},          // junk list -> default
		{"\x7f", strings.Repeat("c", 1000)},  // DEL byte; oversized client truncates
		{"bestEFFORT", "evil\x01client\x02"}, // client control bytes stripped
	}
	for _, s := range seeds {
		f.Add(s.tier, s.client)
	}
	f.Fuzz(func(t *testing.T, tierVal, clientVal string) {
		tier, err := ParseTier(tierVal)
		if err == nil && int(tier) >= NumTiers {
			t.Fatalf("ParseTier(%q) returned out-of-range tier %d", tierVal, tier)
		}
		if err != nil && tier != BestEffort {
			t.Fatalf("ParseTier(%q) errored with non-default tier %v", tierVal, tier)
		}
		// The full front-door path: header extraction through ParseRequest
		// must never panic and must honor the same contract. Header values
		// must be legal per net/http, so skip inputs Set would reject.
		if !utf8.ValidString(tierVal) || !utf8.ValidString(clientVal) {
			return
		}
		r := httptest.NewRequest("GET", "/dist?u=0&v=1", nil)
		r.RemoteAddr = "192.0.2.1:99"
		r.Header.Set(DefaultTierHeader, sanitizeHeaderValue(tierVal))
		r.Header.Set(ClientHeader, sanitizeHeaderValue(clientVal))
		req, err := ParseRequest(r, "")
		if err != nil {
			return // 4xx upstream: a legal outcome
		}
		if int(req.Tier) >= NumTiers {
			t.Fatalf("ParseRequest admitted out-of-range tier %d", req.Tier)
		}
		if req.Client == "" {
			t.Fatal("ParseRequest resolved an empty client identity")
		}
		if len(req.Client) > maxClientLen {
			t.Fatalf("client identity not truncated: %d bytes", len(req.Client))
		}
	})
}

// sanitizeHeaderValue strips CR/LF so Header.Set (which panics on header
// injection in newer net/http validation paths via the transport) stays
// within the legal value space; the parser still sees every other byte.
func sanitizeHeaderValue(s string) string {
	return strings.Map(func(r rune) rune {
		if r == '\r' || r == '\n' {
			return -1
		}
		return r
	}, s)
}
