package admit

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// Decision is one request's transport-level fate: the status to answer,
// the Retry-After hint (seconds; 0 omits the header), the RejectHeader
// value naming the refusing gate ("" omits it), the tier to echo ("" om-
// its it), and the error message for the JSON body ("" means no body —
// the caller streams its own success payload).
//
// Decision + WriteDecision replace the three hand-rolled status/header
// writers that used to live in internal/serve and internal/cluster; the
// table test pins every status/header pair so the two daemons cannot
// drift apart again.
type Decision struct {
	Status     int
	RetryAfter int
	Reject     string
	Tier       string
	Msg        string
}

// errorBody is the uniform JSON error payload of every parapsp daemon.
type errorBody struct {
	Error string `json:"error"`
}

// WriteDecision writes d: headers first (Retry-After, reject reason,
// tier echo), then the status, then the JSON error body. Success bodies
// are not its business — call it only for terminal decisions.
func WriteDecision(w http.ResponseWriter, d Decision) {
	if d.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(d.RetryAfter))
	}
	if d.Reject != "" {
		w.Header().Set(RejectHeader, d.Reject)
	}
	if d.Tier != "" {
		w.Header().Set(DefaultTierHeader, d.Tier)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(d.Status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(errorBody{Error: d.Msg})
}

// Classify maps the shared admission/lifecycle error vocabulary to its
// Decision: quota and inflight rejections to 429 + Retry-After, draining
// to 503 + Retry-After, deadline expiry and cancellation to 504. The
// boolean reports whether err belongs to this vocabulary; package-
// specific errors (parse failures, mutation conflicts) stay with their
// packages.
func Classify(err error) (Decision, bool) {
	d := Decision{Msg: err.Error()}
	var rej *RejectError
	if errors.As(err, &rej) {
		d.RetryAfter = rej.RetryAfter
		d.Tier = rej.Tier.String()
	}
	switch {
	case errors.Is(err, ErrQuota):
		d.Status = http.StatusTooManyRequests
		d.Reject = "quota"
		if d.RetryAfter == 0 {
			d.RetryAfter = 1
		}
	case errors.Is(err, ErrInflight):
		d.Status = http.StatusTooManyRequests
		d.Reject = "inflight"
		if d.RetryAfter == 0 {
			d.RetryAfter = 1
		}
	case errors.Is(err, ErrDraining):
		d.Status = http.StatusServiceUnavailable
		d.Reject = "draining"
		if d.RetryAfter == 0 {
			d.RetryAfter = 1
		}
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		d.Status = http.StatusGatewayTimeout
	default:
		return Decision{}, false
	}
	return d, true
}

// ParseRequest resolves one HTTP request's admission identity: the client
// id (ClientHeader, else remote IP) and the tier from tierHeader (empty
// tierHeader means DefaultTierHeader). A malformed tier value errors —
// the caller answers 4xx — and never panics; unknown tier names default
// to BestEffort (see ParseTier).
func ParseRequest(r *http.Request, tierHeader string) (Request, error) {
	if tierHeader == "" {
		tierHeader = DefaultTierHeader
	}
	tier, err := ParseTier(r.Header.Get(tierHeader))
	if err != nil {
		return Request{}, err
	}
	return Request{Client: ClientID(r), Tier: tier}, nil
}
