// Package admit owns the request-admission lifecycle shared by every
// parapsp daemon front door: client identity, per-client token-bucket
// quotas, SLO tiers, inflight backpressure with a premium reserve,
// deadline propagation, and drain state. Both internal/serve (the shard
// daemon) and internal/cluster (the router) route every request through
// an Admitter, so admission policy exists exactly once and the two HTTP
// layers cannot drift.
//
// The admission ledger holds by construction: every call to Admit
// increments admit.requests and exactly one of admit.admitted,
// admit.rejected_quota, admit.rejected_inflight, admit.rejected_draining;
// every admitted request's release increments exactly one of
// admit.completed, admit.deadline_expired. So after a drain,
//
//	requests == admitted + rejected_quota + rejected_inflight + rejected_draining
//	admitted == completed + deadline_expired
//
// reconcile exactly — the invariant the race-enabled stress suites scrape
// off /metrics and assert. Each counter also exists per tier
// (admit.premium.*, admit.besteffort.*), and the per-tier columns sum to
// the totals.
//
// Tier policy: premium requests may occupy the whole inflight budget;
// best-effort requests only its BestEffortShare slice, so a saturating
// best-effort client exhausts its own slice (and starts eating degraded
// Retry-After hints) while premium admission — and therefore premium
// latency — is insulated. Quotas are per client identity and tier-blind:
// a client's premium and best-effort traffic drain one bucket.
package admit

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"parapsp/internal/obs"
)

// Rejection sentinels. The HTTP layer maps them through Classify:
// ErrQuota and ErrInflight to 429 + Retry-After, ErrDraining to 503.
var (
	ErrQuota    = errors.New("admit: client quota exhausted")
	ErrInflight = errors.New("admit: too many in-flight requests")
	ErrDraining = errors.New("admit: server is shutting down")
)

// RejectError is a rejection with its transport hints. It wraps one of
// the sentinels above, so errors.Is(err, ErrQuota) etc. keep working.
type RejectError struct {
	Reason     error // ErrQuota | ErrInflight | ErrDraining
	Tier       Tier
	RetryAfter int // seconds the client should wait before retrying
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("%v (tier %s, retry after %ds)", e.Reason, e.Tier, e.RetryAfter)
}

func (e *RejectError) Unwrap() error { return e.Reason }

// Request is one admission question: who is asking, at which tier.
type Request struct {
	Client string
	Tier   Tier
}

// Config tunes an Admitter. The zero value admits 64 concurrent requests
// (three quarters of them available to best-effort traffic), applies no
// quotas, and uses a 30-second default deadline.
type Config struct {
	// MaxInflight bounds concurrently admitted requests across both tiers
	// (default 64). Excess requests fail fast with ErrInflight instead of
	// queueing without bound.
	MaxInflight int
	// BestEffortShare is the fraction of MaxInflight best-effort requests
	// may occupy, in (0,1] (default 0.75). The remainder is the premium
	// reserve: slots best-effort traffic can never take, which is what
	// keeps premium p99 flat while best-effort saturates. At least one
	// best-effort slot always exists.
	BestEffortShare float64
	// QuotaRPS is the per-client token refill rate in requests/second;
	// 0 disables quotas entirely.
	QuotaRPS float64
	// QuotaBurst is the bucket depth — the burst a client may spend after
	// an idle period (default: ceil(QuotaRPS), at least 1).
	QuotaBurst int
	// RequestTimeout is the deadline WithDeadline applies when the caller's
	// context has none (default 30s).
	RequestTimeout time.Duration
	// Metrics receives the admit.* counters; nil creates a private
	// registry.
	Metrics *obs.Metrics

	// now overrides the clock (tests). nil means time.Now.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxInflight < 1 {
		c.MaxInflight = 64
	}
	if c.BestEffortShare <= 0 || c.BestEffortShare > 1 {
		c.BestEffortShare = 0.75
	}
	if c.QuotaBurst < 1 {
		c.QuotaBurst = int(c.QuotaRPS)
		if float64(c.QuotaBurst) < c.QuotaRPS {
			c.QuotaBurst++
		}
		if c.QuotaBurst < 1 {
			c.QuotaBurst = 1
		}
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewMetrics()
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// ledger is one row of admission counters — the totals, or one tier's
// column. Every Admit outcome touches exactly one rejection-or-admitted
// counter, every release exactly one completion counter.
type ledger struct {
	requests, admitted                 *obs.Counter
	rejQuota, rejInflight, rejDraining *obs.Counter
	completed, deadlineExpired         *obs.Counter
}

// metrics is the totals row plus the per-tier columns.
type metrics struct {
	total ledger
	tier  [NumTiers]ledger
}

func newMetrics(reg *obs.Metrics) *metrics {
	mk := func(name string) (*obs.Counter, *obs.CounterVec) {
		return reg.Counter("admit." + name), reg.CounterVec("admit", name, TierNames)
	}
	m := &metrics{}
	fields := []struct {
		name string
		tot  func(*ledger) **obs.Counter
	}{
		{"requests", func(l *ledger) **obs.Counter { return &l.requests }},
		{"admitted", func(l *ledger) **obs.Counter { return &l.admitted }},
		{"rejected_quota", func(l *ledger) **obs.Counter { return &l.rejQuota }},
		{"rejected_inflight", func(l *ledger) **obs.Counter { return &l.rejInflight }},
		{"rejected_draining", func(l *ledger) **obs.Counter { return &l.rejDraining }},
		{"completed", func(l *ledger) **obs.Counter { return &l.completed }},
		{"deadline_expired", func(l *ledger) **obs.Counter { return &l.deadlineExpired }},
	}
	for _, f := range fields {
		tot, vec := mk(f.name)
		*f.tot(&m.total) = tot
		for t := 0; t < NumTiers; t++ {
			*f.tot(&m.tier[t]) = vec.At(t)
		}
	}
	return m
}

// bucket is one client's token bucket. tokens is the spendable balance at
// time last; refills at cfg.QuotaRPS up to cfg.QuotaBurst.
type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds the tracked-client map. Past it, fully idle buckets
// (refilled to burst) are swept; a workload with more than maxBuckets
// *concurrently active* clients keeps them all — correctness over memory.
const maxBuckets = 4096

// Admitter is the shared admission gate. All state is guarded by one
// mutex: admission is a handful of arithmetic ops per request, far off
// the solve path, and a single critical section is what makes the ledger
// exact by construction.
type Admitter struct {
	cfg   Config
	m     *metrics
	beCap int // best-effort inflight ceiling

	mu       sync.Mutex
	draining bool
	inflight [NumTiers]int
	inTotal  int
	buckets  map[string]*bucket
	wg       sync.WaitGroup
}

// New builds an Admitter from cfg.
func New(cfg Config) *Admitter {
	cfg = cfg.withDefaults()
	beCap := int(float64(cfg.MaxInflight) * cfg.BestEffortShare)
	if beCap < 1 {
		beCap = 1
	}
	return &Admitter{
		cfg:     cfg,
		m:       newMetrics(cfg.Metrics),
		beCap:   beCap,
		buckets: make(map[string]*bucket),
	}
}

// Metrics returns the registry the admitter publishes into.
func (a *Admitter) Metrics() *obs.Metrics { return a.cfg.Metrics }

// MaxInflight returns the total inflight budget; BestEffortCap the slice
// of it best-effort traffic may occupy.
func (a *Admitter) MaxInflight() int   { return a.cfg.MaxInflight }
func (a *Admitter) BestEffortCap() int { return a.beCap }

// Admit decides one request. On admission it returns a release function
// the caller must invoke exactly once with the request's terminal error
// (nil or otherwise); a deadline/cancellation error books the request as
// deadline_expired, anything else as completed — client mistakes are
// completed work, not lost work. On rejection it returns a *RejectError
// carrying the reason and the Retry-After hint.
func (a *Admitter) Admit(req Request) (release func(error), err error) {
	tier := req.Tier
	if int(tier) >= NumTiers {
		tier = BestEffort
	}
	a.mu.Lock()
	a.m.total.requests.Add(1)
	a.m.tier[tier].requests.Add(1)
	if a.draining {
		a.m.total.rejDraining.Add(1)
		a.m.tier[tier].rejDraining.Add(1)
		a.mu.Unlock()
		return nil, &RejectError{Reason: ErrDraining, Tier: tier, RetryAfter: 1}
	}
	if a.cfg.QuotaRPS > 0 {
		if wait, ok := a.takeToken(req.Client); !ok {
			a.m.total.rejQuota.Add(1)
			a.m.tier[tier].rejQuota.Add(1)
			a.mu.Unlock()
			return nil, &RejectError{Reason: ErrQuota, Tier: tier, RetryAfter: wait}
		}
	}
	if a.inTotal >= a.cfg.MaxInflight ||
		(tier == BestEffort && a.inflight[BestEffort] >= a.beCap) {
		retry := 1
		if tier == BestEffort {
			// Degraded hint: the fuller the server, the longer best-effort
			// clients are told to stay away (premium always hears 1s).
			retry = 1 + 2*a.inTotal/a.cfg.MaxInflight
		}
		a.m.total.rejInflight.Add(1)
		a.m.tier[tier].rejInflight.Add(1)
		a.mu.Unlock()
		return nil, &RejectError{Reason: ErrInflight, Tier: tier, RetryAfter: retry}
	}
	a.inflight[tier]++
	a.inTotal++
	a.m.total.admitted.Add(1)
	a.m.tier[tier].admitted.Add(1)
	a.wg.Add(1)
	a.mu.Unlock()

	var once sync.Once
	return func(reqErr error) {
		once.Do(func() {
			a.mu.Lock()
			a.inflight[tier]--
			a.inTotal--
			if errors.Is(reqErr, context.DeadlineExceeded) || errors.Is(reqErr, context.Canceled) {
				a.m.total.deadlineExpired.Add(1)
				a.m.tier[tier].deadlineExpired.Add(1)
			} else {
				a.m.total.completed.Add(1)
				a.m.tier[tier].completed.Add(1)
			}
			a.mu.Unlock()
			a.wg.Done()
		})
	}, nil
}

// takeToken spends one token from client's bucket, lazily creating it
// full (a new client gets its burst). Returns (retry-after seconds, ok).
// Caller holds a.mu.
func (a *Admitter) takeToken(client string) (int, bool) {
	now := a.cfg.now()
	b := a.buckets[client]
	if b == nil {
		if len(a.buckets) >= maxBuckets {
			a.sweepIdleBuckets(now)
		}
		b = &bucket{tokens: float64(a.cfg.QuotaBurst), last: now}
		a.buckets[client] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * a.cfg.QuotaRPS
		if burst := float64(a.cfg.QuotaBurst); b.tokens > burst {
			b.tokens = burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	wait := int((1 - b.tokens) / a.cfg.QuotaRPS)
	if float64(wait)*a.cfg.QuotaRPS < 1-b.tokens {
		wait++
	}
	if wait < 1 {
		wait = 1
	}
	return wait, false
}

// sweepIdleBuckets drops buckets that have refilled to their burst — a
// client idle long enough to be indistinguishable from a new one loses
// nothing by being forgotten. Caller holds a.mu.
func (a *Admitter) sweepIdleBuckets(now time.Time) {
	for id, b := range a.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*a.cfg.QuotaRPS >= float64(a.cfg.QuotaBurst) {
			delete(a.buckets, id)
		}
	}
}

// Track registers one unit of auxiliary work (an edge mutation, a
// background task) under the drain group without spending an inflight
// slot or quota: it is refused only when draining. The returned done must
// be called exactly once. Tracked work is invisible to the ledger — it
// was never admitted.
func (a *Admitter) Track() (done func(), err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.draining {
		return nil, &RejectError{Reason: ErrDraining, RetryAfter: 1}
	}
	a.wg.Add(1)
	return func() { a.wg.Done() }, nil
}

// Drain flips the admitter into draining: every subsequent Admit and
// Track is refused with ErrDraining. Idempotent.
func (a *Admitter) Drain() {
	a.mu.Lock()
	a.draining = true
	a.mu.Unlock()
}

// Draining reports whether Drain has been called.
func (a *Admitter) Draining() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.draining
}

// Quiesce waits until every admitted request and tracked unit has
// released, or ctx expires. Call after Drain.
func (a *Admitter) Quiesce(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		a.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Inflight returns the currently admitted request count (both tiers).
func (a *Admitter) Inflight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inTotal
}

// InflightTier returns one tier's currently admitted request count.
func (a *Admitter) InflightTier(t Tier) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if int(t) >= NumTiers {
		return 0
	}
	return a.inflight[t]
}

// Clients returns the number of quota buckets currently tracked.
func (a *Admitter) Clients() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.buckets)
}

// WithDeadline applies the configured request timeout when the caller's
// context has no deadline of its own.
func (a *Admitter) WithDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, a.cfg.RequestTimeout)
}

// reqKey carries a Request through a context from the HTTP front door to
// the admission point inside the query API.
type reqKey struct{}

// WithRequest returns a context carrying req for RequestFrom.
func WithRequest(ctx context.Context, req Request) context.Context {
	return context.WithValue(ctx, reqKey{}, req)
}

// RequestFrom extracts the Request carried by WithRequest; a context
// without one yields the zero Request ("" client, BestEffort) — the
// programmatic-API default.
func RequestFrom(ctx context.Context) Request {
	req, _ := ctx.Value(reqKey{}).(Request)
	return req
}
