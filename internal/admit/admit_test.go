package admit

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"parapsp/internal/obs"
)

// fakeClock is a manually advanced clock for quota tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// checkLedger asserts the by-construction admission invariants on a
// quiesced admitter, both the totals and every per-tier column, and that
// the tier columns sum to the totals.
func checkLedger(t *testing.T, reg *obs.Metrics) {
	t.Helper()
	snap := reg.Snapshot()
	rows := append([]string{""}, TierNames...)
	get := func(row, name string) int64 {
		if row == "" {
			return snap["admit."+name]
		}
		return snap["admit."+row+"."+name]
	}
	for _, row := range rows {
		req := get(row, "requests")
		adm := get(row, "admitted")
		rej := get(row, "rejected_quota") + get(row, "rejected_inflight") + get(row, "rejected_draining")
		if req != adm+rej {
			t.Fatalf("row %q: requests=%d != admitted=%d + rejections=%d\n%v", row, req, adm, rej, snap)
		}
		done := get(row, "completed") + get(row, "deadline_expired")
		if adm != done {
			t.Fatalf("row %q: admitted=%d != completed+deadline_expired=%d\n%v", row, adm, done, snap)
		}
	}
	for _, name := range []string{"requests", "admitted", "rejected_quota",
		"rejected_inflight", "rejected_draining", "completed", "deadline_expired"} {
		var sum int64
		for _, tier := range TierNames {
			sum += get(tier, name)
		}
		if sum != get("", name) {
			t.Fatalf("per-tier %s columns sum to %d, total says %d\n%v", name, sum, get("", name), snap)
		}
	}
}

func TestQuotaTokenBucket(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	reg := obs.NewMetrics()
	a := New(Config{QuotaRPS: 2, QuotaBurst: 3, Metrics: reg, now: clk.now})

	// A fresh client spends its burst, then is refused with a Retry-After
	// long enough to accrue one token (1/2s rounds up to 1).
	for i := 0; i < 3; i++ {
		rel, err := a.Admit(Request{Client: "alice"})
		if err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
		rel(nil)
	}
	_, err := a.Admit(Request{Client: "alice"})
	var rej *RejectError
	if !errors.As(err, &rej) || !errors.Is(err, ErrQuota) {
		t.Fatalf("want quota rejection, got %v", err)
	}
	if rej.RetryAfter < 1 {
		t.Fatalf("quota Retry-After = %d, want >= 1", rej.RetryAfter)
	}

	// Another client has its own bucket.
	if rel, err := a.Admit(Request{Client: "bob"}); err != nil {
		t.Fatalf("bob should have his own bucket: %v", err)
	} else {
		rel(nil)
	}

	// Tokens refill with time: after 1s at 2 rps alice can spend 2 more.
	clk.advance(time.Second)
	for i := 0; i < 2; i++ {
		rel, err := a.Admit(Request{Client: "alice"})
		if err != nil {
			t.Fatalf("refilled admit %d: %v", i, err)
		}
		rel(nil)
	}
	if _, err := a.Admit(Request{Client: "alice"}); !errors.Is(err, ErrQuota) {
		t.Fatalf("want quota rejection after refill spent, got %v", err)
	}
	checkLedger(t, reg)
}

func TestInflightPremiumReserve(t *testing.T) {
	reg := obs.NewMetrics()
	a := New(Config{MaxInflight: 4, BestEffortShare: 0.5, Metrics: reg})
	if a.BestEffortCap() != 2 {
		t.Fatalf("BestEffortCap = %d, want 2", a.BestEffortCap())
	}

	// Best-effort fills only its share...
	var rels []func(error)
	for i := 0; i < 2; i++ {
		rel, err := a.Admit(Request{Tier: BestEffort})
		if err != nil {
			t.Fatalf("besteffort admit %d: %v", i, err)
		}
		rels = append(rels, rel)
	}
	_, err := a.Admit(Request{Tier: BestEffort})
	if !errors.Is(err, ErrInflight) {
		t.Fatalf("want inflight rejection at best-effort cap, got %v", err)
	}
	// ...while premium still fits in the reserve.
	for i := 0; i < 2; i++ {
		rel, err := a.Admit(Request{Tier: Premium})
		if err != nil {
			t.Fatalf("premium admit %d into reserve: %v", i, err)
		}
		rels = append(rels, rel)
	}
	// Now the whole budget is full: premium is refused too, with the flat
	// 1s hint; best-effort hears the degraded one.
	var rejP, rejB *RejectError
	if _, err := a.Admit(Request{Tier: Premium}); !errors.As(err, &rejP) {
		t.Fatalf("want premium inflight rejection, got %v", err)
	}
	if _, err := a.Admit(Request{Tier: BestEffort}); !errors.As(err, &rejB) {
		t.Fatalf("want besteffort inflight rejection, got %v", err)
	}
	if rejP.RetryAfter != 1 {
		t.Fatalf("premium Retry-After = %d, want 1", rejP.RetryAfter)
	}
	if rejB.RetryAfter <= rejP.RetryAfter {
		t.Fatalf("best-effort Retry-After (%d) must degrade past premium's (%d) at saturation",
			rejB.RetryAfter, rejP.RetryAfter)
	}
	if got := a.Inflight(); got != 4 {
		t.Fatalf("Inflight = %d, want 4", got)
	}
	if got := a.InflightTier(Premium); got != 2 {
		t.Fatalf("InflightTier(Premium) = %d, want 2", got)
	}
	for _, rel := range rels {
		rel(nil)
	}
	if got := a.Inflight(); got != 0 {
		t.Fatalf("Inflight after release = %d, want 0", got)
	}
	checkLedger(t, reg)
}

func TestDrainRefusesAndQuiesces(t *testing.T) {
	reg := obs.NewMetrics()
	a := New(Config{MaxInflight: 2, Metrics: reg})
	rel, err := a.Admit(Request{Tier: Premium})
	if err != nil {
		t.Fatal(err)
	}
	done, err := a.Track()
	if err != nil {
		t.Fatal(err)
	}
	a.Drain()
	if !a.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	if _, err := a.Admit(Request{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("want draining rejection, got %v", err)
	}
	if _, err := a.Track(); !errors.Is(err, ErrDraining) {
		t.Fatalf("want draining Track rejection, got %v", err)
	}
	// Quiesce blocks on the outstanding request + tracked unit.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := a.Quiesce(ctx); err == nil {
		t.Fatal("Quiesce returned before outstanding work released")
	}
	rel(nil)
	done()
	if err := a.Quiesce(context.Background()); err != nil {
		t.Fatalf("Quiesce after release: %v", err)
	}
	checkLedger(t, reg)
}

func TestReleaseClassifiesDeadline(t *testing.T) {
	reg := obs.NewMetrics()
	a := New(Config{Metrics: reg})
	rel, err := a.Admit(Request{Tier: Premium})
	if err != nil {
		t.Fatal(err)
	}
	rel(context.DeadlineExceeded)
	rel(nil) // second call must be a no-op
	snap := reg.Snapshot()
	if snap["admit.deadline_expired"] != 1 || snap["admit.completed"] != 0 {
		t.Fatalf("deadline release misclassified: %v", snap)
	}
	if snap["admit.premium.deadline_expired"] != 1 {
		t.Fatalf("per-tier deadline column missing: %v", snap)
	}
	checkLedger(t, reg)
}

// TestLedgerUnderConcurrency hammers one admitter from many goroutines
// mixing tiers, clients, quota pressure, and mid-run drain, then asserts
// the ledger reconciles exactly — the by-construction claim under -race.
func TestLedgerUnderConcurrency(t *testing.T) {
	reg := obs.NewMetrics()
	a := New(Config{MaxInflight: 8, QuotaRPS: 500, QuotaBurst: 50, Metrics: reg})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				req := Request{Client: fmt.Sprintf("c%d", g%5), Tier: Tier(i % NumTiers)}
				rel, err := a.Admit(req)
				if err != nil {
					continue
				}
				if i%7 == 0 {
					rel(context.DeadlineExceeded)
				} else {
					rel(nil)
				}
			}
		}(g)
	}
	wg.Wait()
	a.Drain()
	if err := a.Quiesce(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap["admit.requests"] != 16*200 {
		t.Fatalf("requests = %d, want %d", snap["admit.requests"], 16*200)
	}
	checkLedger(t, reg)
}

func TestBucketSweepBoundsClients(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	a := New(Config{QuotaRPS: 1, QuotaBurst: 2, now: clk.now})
	for i := 0; i < maxBuckets; i++ {
		rel, err := a.Admit(Request{Client: fmt.Sprintf("c%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		rel(nil)
	}
	// Every bucket refills to burst after 2s; the next new client sweeps
	// them all instead of growing the map without bound.
	clk.advance(2 * time.Second)
	rel, err := a.Admit(Request{Client: "fresh"})
	if err != nil {
		t.Fatal(err)
	}
	rel(nil)
	if got := a.Clients(); got > 1 {
		t.Fatalf("tracked clients after sweep = %d, want 1", got)
	}
}

func TestWithDeadline(t *testing.T) {
	a := New(Config{RequestTimeout: 50 * time.Millisecond})
	ctx, cancel := a.WithDeadline(context.Background())
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("no deadline applied")
	}
	parent, pcancel := context.WithTimeout(context.Background(), time.Hour)
	defer pcancel()
	ctx2, cancel2 := a.WithDeadline(parent)
	defer cancel2()
	if d, _ := ctx2.Deadline(); time.Until(d) < 30*time.Minute {
		t.Fatal("caller deadline was overridden")
	}
}

func TestRequestContextRoundTrip(t *testing.T) {
	req := Request{Client: "alice", Tier: Premium}
	ctx := WithRequest(context.Background(), req)
	if got := RequestFrom(ctx); got != req {
		t.Fatalf("RequestFrom = %+v, want %+v", got, req)
	}
	if got := RequestFrom(context.Background()); got != (Request{}) {
		t.Fatalf("zero-request default violated: %+v", got)
	}
}

// TestWriteDecisionTable pins every status/header pair the two daemons
// produce through the shared writer — the contract that used to be
// duplicated (and free to drift) across three hand-rolled writers.
func TestWriteDecisionTable(t *testing.T) {
	cases := []struct {
		name       string
		d          Decision
		status     int
		retryAfter string
		reject     string
		tier       string
	}{
		{"quota", Decision{Status: 429, RetryAfter: 3, Reject: "quota", Tier: "besteffort", Msg: "q"},
			429, "3", "quota", "besteffort"},
		{"inflight", Decision{Status: 429, RetryAfter: 1, Reject: "inflight", Tier: "premium", Msg: "i"},
			429, "1", "inflight", "premium"},
		{"draining", Decision{Status: 503, RetryAfter: 1, Reject: "draining", Msg: "d"},
			503, "1", "draining", ""},
		{"deadline", Decision{Status: 504, Msg: "t"}, 504, "", "", ""},
		{"parse", Decision{Status: 400, Msg: "p"}, 400, "", "", ""},
		{"skew", Decision{Status: 409, RetryAfter: 1, Msg: "s"}, 409, "1", "", ""},
		{"unavailable", Decision{Status: 503, RetryAfter: 1, Msg: "u"}, 503, "1", "", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			WriteDecision(rec, tc.d)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d", rec.Code, tc.status)
			}
			if got := rec.Header().Get("Retry-After"); got != tc.retryAfter {
				t.Fatalf("Retry-After = %q, want %q", got, tc.retryAfter)
			}
			if got := rec.Header().Get(RejectHeader); got != tc.reject {
				t.Fatalf("%s = %q, want %q", RejectHeader, got, tc.reject)
			}
			if got := rec.Header().Get(DefaultTierHeader); got != tc.tier {
				t.Fatalf("%s = %q, want %q", DefaultTierHeader, got, tc.tier)
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type = %q", ct)
			}
			if body := rec.Body.String(); !json.Valid([]byte(body)) {
				t.Fatalf("body not JSON: %q", body)
			}
		})
	}
}

// TestClassify pins the error → Decision mapping for the shared
// vocabulary, including pass-through of the RejectError's hints.
func TestClassify(t *testing.T) {
	cases := []struct {
		err    error
		status int
		reject string
		retry  int
	}{
		{&RejectError{Reason: ErrQuota, Tier: BestEffort, RetryAfter: 4}, 429, "quota", 4},
		{&RejectError{Reason: ErrInflight, Tier: Premium, RetryAfter: 1}, 429, "inflight", 1},
		{&RejectError{Reason: ErrDraining, RetryAfter: 1}, 503, "draining", 1},
		{ErrQuota, 429, "quota", 1},
		{ErrInflight, 429, "inflight", 1},
		{ErrDraining, 503, "draining", 1},
		{context.DeadlineExceeded, 504, "", 0},
		{context.Canceled, 504, "", 0},
		{fmt.Errorf("wrapped: %w", context.DeadlineExceeded), 504, "", 0},
	}
	for _, tc := range cases {
		d, ok := Classify(tc.err)
		if !ok {
			t.Fatalf("Classify(%v) not recognized", tc.err)
		}
		if d.Status != tc.status || d.Reject != tc.reject || d.RetryAfter != tc.retry {
			t.Fatalf("Classify(%v) = %+v, want status %d reject %q retry %d",
				tc.err, d, tc.status, tc.reject, tc.retry)
		}
	}
	if _, ok := Classify(errors.New("something else")); ok {
		t.Fatal("Classify claimed an unrelated error")
	}
}

func TestParseRequestFromHTTP(t *testing.T) {
	mk := func(hdr map[string]string, remote string) *http.Request {
		r := httptest.NewRequest(http.MethodGet, "/dist?u=1&v=2", nil)
		r.RemoteAddr = remote
		for k, v := range hdr {
			r.Header.Set(k, v)
		}
		return r
	}
	// Header identity + explicit tier.
	req, err := ParseRequest(mk(map[string]string{
		ClientHeader: "svc-a", DefaultTierHeader: "Premium",
	}, "10.0.0.9:1234"), "")
	if err != nil || req.Client != "svc-a" || req.Tier != Premium {
		t.Fatalf("got %+v, %v", req, err)
	}
	// Remote-addr fallback, default tier.
	req, err = ParseRequest(mk(nil, "10.0.0.9:1234"), "")
	if err != nil || req.Client != "10.0.0.9" || req.Tier != BestEffort {
		t.Fatalf("got %+v, %v", req, err)
	}
	// Custom tier header name.
	req, err = ParseRequest(mk(map[string]string{"X-SLO": "premium"}, "h:1"), "X-SLO")
	if err != nil || req.Tier != Premium {
		t.Fatalf("custom header: got %+v, %v", req, err)
	}
	// Unknown tier defaults; oversized tier errors.
	if req, err = ParseRequest(mk(map[string]string{DefaultTierHeader: "gold"}, "h:1"), ""); err != nil || req.Tier != BestEffort {
		t.Fatalf("unknown tier: got %+v, %v", req, err)
	}
	long := make([]byte, maxTierLen+1)
	for i := range long {
		long[i] = 'x'
	}
	if _, err = ParseRequest(mk(map[string]string{DefaultTierHeader: string(long)}, "h:1"), ""); !errors.Is(err, ErrTier) {
		t.Fatalf("oversized tier: want ErrTier, got %v", err)
	}
}
