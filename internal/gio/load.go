package gio

import (
	"flag"
	"fmt"
	"os"
)

// Load reads a graph file in any of the supported container formats:
// "edgelist" (SNAP/KONECT, transparently gunzipped), "mm" (Matrix Market)
// or "metis". It is the one entry point the command-line binaries share;
// opts applies to the edge-list parser only (the other formats encode
// direction and weights themselves).
func Load(path, format string, opts Options) (*Result, error) {
	switch format {
	case "edgelist":
		return ReadFile(path, opts)
	case "mm", "metis":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if format == "mm" {
			return ReadMatrixMarket(f)
		}
		return ReadMETIS(f)
	}
	return nil, fmt.Errorf("gio: unknown format %q (want edgelist|mm|metis)", format)
}

// LoadFlags bundles the graph-input flags every binary repeats: the input
// path, the container format, and the edge-list direction/weight options.
// Register it on a FlagSet, then call Load after flag parsing.
type LoadFlags struct {
	// Path is the input file (the flag is named by Register; empty means
	// the user did not provide one — callers decide whether that is fatal).
	Path       string
	Format     string
	Undirected bool
	Weighted   bool
}

// Register declares the flags on fs. inName names the path flag ("in" for
// the analysis tools, "graph" for the daemon); the rest are uniform.
func (lf *LoadFlags) Register(fs *flag.FlagSet, inName string) {
	fs.StringVar(&lf.Path, inName, "", "input graph file (edge lists may be .gz)")
	fs.StringVar(&lf.Format, "format", "edgelist", "edgelist|mm|metis")
	fs.BoolVar(&lf.Undirected, "undirected", false, "edge-list only: treat edges as undirected")
	fs.BoolVar(&lf.Weighted, "weighted", false, "edge-list only: read a third column as edge weight")
}

// Load reads the graph the parsed flags describe.
func (lf *LoadFlags) Load() (*Result, error) {
	return Load(lf.Path, lf.Format, Options{Undirected: lf.Undirected, Weighted: lf.Weighted})
}
