package gio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// ReadMETIS parses a graph in the METIS/Chaco adjacency format used by
// partitioner tool chains: a header "n m [fmt]" followed by one line per
// vertex listing its (1-based) neighbours, optionally interleaved with
// edge weights when fmt has the 1-bit set (001 or 011). Vertex-weight
// flags (01x) are accepted and the weights skipped. '%' lines are
// comments. METIS graphs are undirected; each edge appears in both
// endpoint lines and is emitted once here.
func ReadMETIS(r io.Reader) (*Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	var n, m int64
	ncon := int64(0)     // vertex weights per vertex
	edgeWeights := false // edge weights present
	haveHeader := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 4 {
			return nil, fmt.Errorf("%w: bad METIS header %q", ErrFormat, line)
		}
		var err1, err2 error
		n, err1 = strconv.ParseInt(fields[0], 10, 32)
		m, err2 = strconv.ParseInt(fields[1], 10, 64)
		if err1 != nil || err2 != nil || n < 0 || m < 0 {
			return nil, fmt.Errorf("%w: bad METIS header %q", ErrFormat, line)
		}
		if len(fields) >= 3 {
			f := fields[2]
			if len(f) > 3 {
				return nil, fmt.Errorf("%w: bad METIS fmt %q", ErrFormat, f)
			}
			for len(f) < 3 {
				f = "0" + f
			}
			if f[0] != '0' {
				return nil, fmt.Errorf("%w: METIS fmt %q (vertex sizes) unsupported", ErrFormat, fields[2])
			}
			if f[1] == '1' {
				ncon = 1
			}
			edgeWeights = f[2] == '1'
		}
		if len(fields) == 4 {
			v, err := strconv.ParseInt(fields[3], 10, 32)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("%w: bad ncon %q", ErrFormat, fields[3])
			}
			ncon = v
		}
		haveHeader = true
		break
	}
	if !haveHeader {
		return nil, fmt.Errorf("%w: missing METIS header", ErrFormat)
	}

	b := graph.NewBuilder(int(n), true)
	if edgeWeights {
		b.ForceWeighted()
	}
	v := int32(0)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "%") {
			continue
		}
		if v >= int32(n) {
			if line != "" {
				return nil, fmt.Errorf("%w: more vertex lines than header's n=%d", ErrFormat, n)
			}
			continue
		}
		fields := strings.Fields(line)
		idx := int(ncon) // skip vertex weights
		if len(fields) < idx {
			return nil, fmt.Errorf("%w: vertex %d line too short for %d vertex weights", ErrFormat, v+1, ncon)
		}
		for idx < len(fields) {
			u, err := strconv.ParseInt(fields[idx], 10, 32)
			if err != nil || u < 1 || u > n {
				return nil, fmt.Errorf("%w: vertex %d: bad neighbour %q", ErrFormat, v+1, fields[idx])
			}
			idx++
			w := matrix.Dist(1)
			if edgeWeights {
				if idx >= len(fields) {
					return nil, fmt.Errorf("%w: vertex %d: missing edge weight", ErrFormat, v+1)
				}
				wv, err := strconv.ParseUint(fields[idx], 10, 32)
				if err != nil || wv == 0 || matrix.Dist(wv) == matrix.Inf {
					return nil, fmt.Errorf("%w: vertex %d: bad edge weight %q", ErrFormat, v+1, fields[idx])
				}
				w = matrix.Dist(wv)
				idx++
			}
			// Each undirected edge appears twice; keep the copy from its
			// lower endpoint (self-loops are invalid in METIS but the
			// builder would drop them anyway).
			if int32(u-1) >= v {
				if err := b.AddWeighted(v, int32(u-1), w); err != nil {
					return nil, err
				}
			}
		}
		v++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if v != int32(n) {
		return nil, fmt.Errorf("%w: header promises %d vertices, found %d lines", ErrFormat, n, v)
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	if g.NumEdges() != m {
		return nil, fmt.Errorf("%w: header promises %d edges, graph has %d", ErrFormat, m, g.NumEdges())
	}
	labels := make([]int64, g.N())
	for i := range labels {
		labels[i] = int64(i) + 1 // METIS labels are 1-based
	}
	return &Result{Graph: g, Labels: labels}, nil
}

// WriteMETIS writes an undirected graph in METIS format. Directed graphs
// are rejected (the format cannot represent them).
func WriteMETIS(w io.Writer, g *graph.Graph) error {
	if !g.Undirected() {
		return fmt.Errorf("gio: METIS format requires an undirected graph")
	}
	bw := bufio.NewWriter(w)
	format := "000"
	if g.Weighted() {
		format = "001"
	}
	fmt.Fprintf(bw, "%d %d %s\n", g.N(), g.NumEdges(), format)
	for v := int32(0); v < int32(g.N()); v++ {
		adj, wts := g.NeighborsW(v)
		for i, u := range adj {
			if i > 0 {
				bw.WriteByte(' ')
			}
			fmt.Fprintf(bw, "%d", u+1)
			if g.Weighted() {
				fmt.Fprintf(bw, " %d", wts[i])
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
