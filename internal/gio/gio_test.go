package gio

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"parapsp/internal/gen"
	"parapsp/internal/graph"
)

const snapSample = `# Directed graph (each unordered pair of nodes is saved once)
# FromNodeId	ToNodeId
0	1
0	2
1	2
5	0
`

const konectSample = `% sym unweighted
% 4 3
10 20
20 30
30 10
`

func TestReadSNAP(t *testing.T) {
	res, err := ReadEdgeList(strings.NewReader(snapSample), Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	if g.NumArcs() != 4 {
		t.Fatalf("arcs = %d, want 4", g.NumArcs())
	}
	// Labels in first-seen order: 0,1,2,5.
	want := []int64{0, 1, 2, 5}
	for i, l := range want {
		if res.Labels[i] != l {
			t.Errorf("label[%d] = %d, want %d", i, res.Labels[i], l)
		}
	}
}

func TestReadKONECT(t *testing.T) {
	res, err := ReadEdgeList(strings.NewReader(konectSample), Options{Undirected: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.N() != 3 || res.Graph.NumEdges() != 3 {
		t.Fatalf("N=%d m=%d", res.Graph.N(), res.Graph.NumEdges())
	}
	if !res.Graph.Undirected() {
		t.Error("not undirected")
	}
}

func TestReadWeighted(t *testing.T) {
	src := "1 2 5\n2 3 7\n"
	res, err := ReadEdgeList(strings.NewReader(src), Options{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Graph.Weighted() {
		t.Fatal("graph not weighted")
	}
	_, w := res.Graph.NeighborsW(0)
	if w[0] != 5 {
		t.Errorf("weight = %d, want 5", w[0])
	}
}

func TestReadExtraColumnsIgnoredUnweighted(t *testing.T) {
	// KONECT files may carry weight + timestamp columns.
	src := "1 2 1 1200000000\n2 3 1 1200000001\n"
	res, err := ReadEdgeList(strings.NewReader(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.Weighted() || res.Graph.NumArcs() != 2 {
		t.Fatalf("weighted=%v arcs=%d", res.Graph.Weighted(), res.Graph.NumArcs())
	}
}

func TestReadMalformed(t *testing.T) {
	cases := []struct {
		name, src string
		opts      Options
	}{
		{"one column", "42\n", Options{}},
		{"bad source", "x 2\n", Options{}},
		{"bad target", "1 y\n", Options{}},
		{"missing weight", "1 2\n", Options{Weighted: true}},
		{"zero weight", "1 2 0\n", Options{Weighted: true}},
		{"bad weight", "1 2 -3\n", Options{Weighted: true}},
		{"huge weight", "1 2 4294967295\n", Options{Weighted: true}},
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c.src), c.opts); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: err = %v, want ErrFormat", c.name, err)
		}
	}
}

func TestReadEmpty(t *testing.T) {
	res, err := ReadEdgeList(strings.NewReader("# only comments\n% and more\n"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.N() != 0 {
		t.Errorf("N = %d, want 0", res.Graph.N())
	}
}

func TestSelfLoopPolicy(t *testing.T) {
	src := "1 1\n1 2\n"
	res, err := ReadEdgeList(strings.NewReader(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumArcs() != 1 {
		t.Errorf("default arcs = %d, want 1", res.Graph.NumArcs())
	}
	res, err = ReadEdgeList(strings.NewReader(src), Options{KeepSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumArcs() != 2 {
		t.Errorf("keep-loops arcs = %d, want 2", res.Graph.NumArcs())
	}
}

func roundTrip(t *testing.T, g *graph.Graph, opts Options) *graph.Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	res, err := ReadEdgeList(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res.Graph
}

func TestRoundTripUndirected(t *testing.T) {
	g, err := gen.BarabasiAlbert(80, 3, 3, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	g2 := roundTrip(t, g, Options{Undirected: true})
	if g2.N() != g.N() || g2.NumArcs() != g.NumArcs() {
		t.Fatalf("round trip changed size: %v -> %v", g, g2)
	}
}

func TestRoundTripDirectedWeighted(t *testing.T) {
	g, err := gen.ErdosRenyiGNM(40, 120, false, 5, gen.Weighting{Min: 1, Max: 9})
	if err != nil {
		t.Fatal(err)
	}
	g2 := roundTrip(t, g, Options{Weighted: true})
	if g2.NumArcs() != g.NumArcs() || !g2.Weighted() {
		t.Fatalf("round trip: arcs %d->%d weighted=%v", g.NumArcs(), g2.NumArcs(), g2.Weighted())
	}
	// Compare a few adjacencies with weights. Labels are first-seen, not
	// necessarily identity, so compare via labels mapping.
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	res, err := ReadEdgeList(&buf, Options{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	// For every arc in g, the same labeled arc must exist in res.Graph.
	back := make(map[int64]int32)
	for id, l := range res.Labels {
		back[l] = int32(id)
	}
	for u := int32(0); u < int32(g.N()); u++ {
		adj, w := g.NeighborsW(u)
		ru, ok := back[int64(u)]
		if !ok {
			if len(adj) == 0 {
				continue // isolated vertices are not representable in edge lists
			}
			t.Fatalf("vertex %d lost", u)
		}
		radj, rw := res.Graph.NeighborsW(ru)
		for i, v := range adj {
			found := false
			for j, rv := range radj {
				if res.Labels[rv] == int64(v) && rw[j] == w[i] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("arc %d->%d w=%d lost", u, v, w[i])
			}
		}
	}
}

func TestFileRoundTripGzip(t *testing.T) {
	dir := t.TempDir()
	g, err := gen.BarabasiAlbert(50, 2, 8, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"g.txt", "g.txt.gz"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, g, nil); err != nil {
			t.Fatal(err)
		}
		res, err := ReadFile(path, Options{Undirected: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Graph.NumArcs() != g.NumArcs() {
			t.Errorf("%s: arcs %d -> %d", name, g.NumArcs(), res.Graph.NumArcs())
		}
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile("/nonexistent/file.txt", Options{}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestWriteWithLabels(t *testing.T) {
	g, err := graph.FromPairs(2, false, [][2]int32{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g, []int64{100, 200}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "100\t200") {
		t.Errorf("labels not applied: %q", buf.String())
	}
}
