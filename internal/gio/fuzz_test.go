package gio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList asserts that arbitrary input never panics the parser
// and that whatever parses successfully round-trips through the writer.
func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n"), true, false)
	f.Add([]byte("# comment\n% comment\n10\t20\n"), false, false)
	f.Add([]byte("1 2 7\n2 3 1\n"), false, true)
	f.Add([]byte(""), true, true)
	f.Add([]byte("a b c\n"), false, false)
	f.Add([]byte("9999999999999999999999 1\n"), false, false)
	f.Add([]byte("1 1\n"), true, false)
	f.Add([]byte("-5 3\n"), false, false)
	f.Fuzz(func(t *testing.T, data []byte, undirected, weighted bool) {
		opts := Options{Undirected: undirected, Weighted: weighted}
		res, err := ReadEdgeList(bytes.NewReader(data), opts)
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		if err := res.Graph.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v", err)
		}
		if len(res.Labels) != res.Graph.N() {
			t.Fatalf("labels %d != vertices %d", len(res.Labels), res.Graph.N())
		}
		// Round trip: what we wrote must parse back to the same shape.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, res.Graph, res.Labels); err != nil {
			t.Fatalf("write failed: %v", err)
		}
		back, err := ReadEdgeList(strings.NewReader(buf.String()), opts)
		if err != nil {
			t.Fatalf("round trip parse failed: %v\noutput:\n%s", err, buf.String())
		}
		if back.Graph.NumArcs() != res.Graph.NumArcs() {
			t.Fatalf("round trip arcs %d -> %d", res.Graph.NumArcs(), back.Graph.NumArcs())
		}
	})
}
