// Package gio reads and writes the edge-list formats of the two
// repositories the paper draws its datasets from: SNAP (lines of
// "u<TAB>v", comments starting with '#') and KONECT (comments starting
// with '%', optional weight and timestamp columns). Vertex labels are
// arbitrary non-negative integers and are remapped to the dense ids the
// CSR representation requires; the mapping is returned so results can be
// reported in the original labels.
//
// With these loaders the real SNAP/KONECT files can be dropped into the
// benchmark harness in place of the synthetic stand-ins.
package gio

import (
	"bufio"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// Options controls edge-list parsing.
type Options struct {
	// Undirected builds the graph with both arc directions. SNAP/KONECT
	// undirected files list each edge once.
	Undirected bool
	// Weighted reads a third column as the edge weight. Without it any
	// extra columns (KONECT weight/timestamp) are ignored and every edge
	// weighs 1, matching the paper's use of the datasets.
	Weighted bool
	// KeepSelfLoops retains self-loop edges (default: dropped).
	KeepSelfLoops bool
}

// Result is a parsed edge list.
type Result struct {
	Graph *graph.Graph
	// Labels maps dense vertex id -> original file label.
	Labels []int64
}

// ErrFormat reports a malformed edge-list line.
var ErrFormat = errors.New("gio: malformed edge list")

// ReadEdgeList parses an edge list from r.
func ReadEdgeList(r io.Reader, opts Options) (*Result, error) {
	type rawEdge struct {
		u, v int64
		w    matrix.Dist
	}
	var raw []rawEdge
	ids := make(map[int64]int32)
	var labels []int64
	intern := func(label int64) int32 {
		if id, ok := ids[label]; ok {
			return id
		}
		id := int32(len(labels))
		ids[label] = id
		labels = append(labels, label)
		return id
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("%w: line %d: %q", ErrFormat, lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: bad source %q", ErrFormat, lineNo, fields[0])
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: bad target %q", ErrFormat, lineNo, fields[1])
		}
		w := matrix.Dist(1)
		if opts.Weighted {
			if len(fields) < 3 {
				return nil, fmt.Errorf("%w: line %d: missing weight", ErrFormat, lineNo)
			}
			wv, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil || wv == 0 || matrix.Dist(wv) == matrix.Inf {
				return nil, fmt.Errorf("%w: line %d: bad weight %q", ErrFormat, lineNo, fields[2])
			}
			w = matrix.Dist(wv)
		}
		raw = append(raw, rawEdge{u, v, w})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	// Intern labels in first-seen order so loading is deterministic.
	for _, e := range raw {
		intern(e.u)
		intern(e.v)
	}
	b := graph.NewBuilder(len(labels), opts.Undirected)
	if opts.KeepSelfLoops {
		b.KeepSelfLoops()
	}
	if opts.Weighted {
		// A weighted file stays weighted even if every weight is 1, so
		// WriteEdgeList preserves the weight column on round trips.
		b.ForceWeighted()
	}
	for _, e := range raw {
		if err := b.AddWeighted(ids[e.u], ids[e.v], e.w); err != nil {
			return nil, err
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Result{Graph: g, Labels: labels}, nil
}

// ReadFile parses an edge-list file; names ending in ".gz" are
// transparently decompressed.
func ReadFile(path string, opts Options) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, err
		}
		defer zr.Close()
		r = zr
	}
	return ReadEdgeList(r, opts)
}

// WriteEdgeList writes g to w in SNAP format: a comment header followed by
// one "u<TAB>v[<TAB>weight]" line per arc (per edge for undirected graphs,
// emitting each edge once with u <= v).
func WriteEdgeList(w io.Writer, g *graph.Graph, labels []int64) error {
	bw := bufio.NewWriter(w)
	kind := "Directed"
	if g.Undirected() {
		kind = "Undirected"
	}
	fmt.Fprintf(bw, "# %s graph: %d nodes, %d edges\n", kind, g.N(), g.NumEdges())
	fmt.Fprintf(bw, "# FromNodeId\tToNodeId%s\n", map[bool]string{true: "\tWeight", false: ""}[g.Weighted()])
	label := func(v int32) int64 {
		if labels != nil {
			return labels[v]
		}
		return int64(v)
	}
	for u := int32(0); u < int32(g.N()); u++ {
		adj, wts := g.NeighborsW(u)
		for i, v := range adj {
			if g.Undirected() && v < u {
				continue // each undirected edge once
			}
			if g.Weighted() {
				fmt.Fprintf(bw, "%d\t%d\t%d\n", label(u), label(v), wts[i])
			} else {
				fmt.Fprintf(bw, "%d\t%d\n", label(u), label(v))
			}
		}
	}
	return bw.Flush()
}

// WriteFile writes g to path in SNAP format; ".gz" names are compressed.
func WriteFile(path string, g *graph.Graph, labels []int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gz") {
		zw := gzip.NewWriter(f)
		if err := WriteEdgeList(zw, g, labels); err != nil {
			zw.Close()
			return err
		}
		return zw.Close()
	}
	return WriteEdgeList(f, g, labels)
}
