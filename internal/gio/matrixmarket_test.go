package gio

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"parapsp/internal/gen"
)

const mmPattern = `%%MatrixMarket matrix coordinate pattern symmetric
% a comment
3 3 2
2 1
3 2
`

const mmInteger = `%%MatrixMarket matrix coordinate integer general
2 2 2
1 2 5
2 1 7
`

func TestReadMatrixMarketPatternSymmetric(t *testing.T) {
	res, err := ReadMatrixMarket(strings.NewReader(mmPattern))
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	if g.N() != 3 || !g.Undirected() || g.Weighted() {
		t.Fatalf("graph = %v weighted=%v", g, g.Weighted())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if res.Labels[0] != 1 || res.Labels[2] != 3 {
		t.Errorf("labels = %v", res.Labels)
	}
}

func TestReadMatrixMarketIntegerGeneral(t *testing.T) {
	res, err := ReadMatrixMarket(strings.NewReader(mmInteger))
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	if !g.Weighted() || g.Undirected() {
		t.Fatalf("weighted=%v undirected=%v", g.Weighted(), g.Undirected())
	}
	_, w := g.NeighborsW(0)
	if w[0] != 5 {
		t.Errorf("weight = %d", w[0])
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"bad header", "%%MatrixMarket tensor coordinate pattern general\n1 1 0\n"},
		{"complex field", "%%MatrixMarket matrix coordinate complex general\n1 1 0\n"},
		{"skew symmetry", "%%MatrixMarket matrix coordinate pattern skew-symmetric\n1 1 0\n"},
		{"non-square", "%%MatrixMarket matrix coordinate pattern general\n2 3 0\n"},
		{"bad size", "%%MatrixMarket matrix coordinate pattern general\nx y z\n"},
		{"index zero", "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n"},
		{"index over", "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 3\n"},
		{"missing value", "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 2\n"},
		{"zero value", "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 2 0\n"},
		{"count mismatch", "%%MatrixMarket matrix coordinate pattern general\n2 2 5\n1 2\n"},
		{"one column entry", "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1\n"},
	}
	for _, c := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(c.src)); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: err = %v, want ErrFormat", c.name, err)
		}
	}
}

func TestMatrixMarketRoundTripUndirected(t *testing.T) {
	g, err := gen.BarabasiAlbert(60, 3, 4, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "%%MatrixMarket matrix coordinate pattern symmetric") {
		t.Fatalf("header: %q", buf.String()[:60])
	}
	res, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumArcs() != g.NumArcs() || res.Graph.N() != g.N() {
		t.Errorf("round trip: %v -> %v", g, res.Graph)
	}
}

func TestMatrixMarketRoundTripWeightedDirected(t *testing.T) {
	g, err := gen.ErdosRenyiGNM(30, 100, false, 5, gen.Weighting{Min: 2, Max: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	res, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g2 := res.Graph
	if g2.NumArcs() != g.NumArcs() || !g2.Weighted() {
		t.Fatalf("round trip: arcs %d->%d weighted=%v", g.NumArcs(), g2.NumArcs(), g2.Weighted())
	}
	// Weights preserved exactly (Matrix Market labels are identity here).
	for u := int32(0); u < int32(g.N()); u++ {
		a1, w1 := g.NeighborsW(u)
		a2, w2 := g2.NeighborsW(u)
		if len(a1) != len(a2) {
			t.Fatalf("adjacency of %d: %d vs %d", u, len(a1), len(a2))
		}
		for i := range a1 {
			if a1[i] != a2[i] || w1[i] != w2[i] {
				t.Fatalf("arc %d->%d weight %d vs %d->%d weight %d", u, a1[i], w1[i], u, a2[i], w2[i])
			}
		}
	}
}

func TestMatrixMarketRealField(t *testing.T) {
	src := "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 3.0\n"
	res, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	_, w := res.Graph.NeighborsW(0)
	if w[0] != 3 {
		t.Errorf("real weight = %d, want 3", w[0])
	}
}

func TestMatrixMarketEmptyGraph(t *testing.T) {
	src := "%%MatrixMarket matrix coordinate pattern general\n0 0 0\n"
	res, err := ReadMatrixMarket(strings.NewReader(src))
	if err != nil || res.Graph.N() != 0 {
		t.Errorf("empty: %v, %v", res, err)
	}
}
