package gio

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"parapsp/internal/gen"
)

// The example graph from the METIS manual: 7 vertices, 11 edges.
const metisSample = `% example from the manual
7 11
5 3 2
1 3 4
5 4 2 1
2 3 6 7
1 3 6
5 4 7
6 4
`

func TestReadMETISSample(t *testing.T) {
	res, err := ReadMETIS(strings.NewReader(metisSample))
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	if g.N() != 7 || g.NumEdges() != 11 || !g.Undirected() || g.Weighted() {
		t.Fatalf("graph = %v weighted=%v", g, g.Weighted())
	}
	// Spot-check adjacency of vertex 0 (METIS vertex 1): {5,3,2} -> {4,2,1}.
	adj := g.Neighbors(0)
	want := map[int32]bool{4: true, 2: true, 1: true}
	if len(adj) != 3 {
		t.Fatalf("deg(0) = %d", len(adj))
	}
	for _, u := range adj {
		if !want[u] {
			t.Errorf("unexpected neighbour %d", u)
		}
	}
	if res.Labels[0] != 1 || res.Labels[6] != 7 {
		t.Errorf("labels = %v", res.Labels)
	}
}

func TestReadMETISEdgeWeights(t *testing.T) {
	src := "2 1 001\n2 7\n1 7\n"
	res, err := ReadMETIS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Graph.Weighted() {
		t.Fatal("not weighted")
	}
	_, w := res.Graph.NeighborsW(0)
	if w[0] != 7 {
		t.Errorf("weight = %d", w[0])
	}
}

func TestReadMETISVertexWeightsSkipped(t *testing.T) {
	// fmt 010: one vertex weight per line, skipped.
	src := "3 2 010\n9 2\n5 1 3\n1 2\n"
	res, err := ReadMETIS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumEdges() != 2 || res.Graph.Weighted() {
		t.Fatalf("edges=%d weighted=%v", res.Graph.NumEdges(), res.Graph.Weighted())
	}
}

func TestReadMETISErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"bad header", "x y\n"},
		{"vertex sizes", "2 1 100\n2\n1\n"},
		{"neighbour zero", "2 1\n0\n1\n"},
		{"neighbour over", "2 1\n3\n1\n"},
		{"missing weight", "2 1 001\n2\n1 5\n"},
		{"zero weight", "2 1 001\n2 0\n1 0\n"},
		{"too few lines", "3 1\n2\n1\n"},
		{"too many lines", "1 0\n\n\n5\n"},
		{"edge count mismatch", "2 5\n2\n1\n"},
	}
	for _, c := range cases {
		if _, err := ReadMETIS(strings.NewReader(c.src)); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: err = %v, want ErrFormat", c.name, err)
		}
	}
}

func TestMETISRoundTrip(t *testing.T) {
	g, err := gen.BarabasiAlbert(80, 3, 6, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	res, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumArcs() != g.NumArcs() || res.Graph.N() != g.N() {
		t.Errorf("round trip %v -> %v", g, res.Graph)
	}
}

func TestMETISRoundTripWeighted(t *testing.T) {
	g, err := gen.ErdosRenyiGNM(40, 120, true, 7, gen.Weighting{Min: 2, Max: 30})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	res, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g2 := res.Graph
	if !g2.Weighted() || g2.NumArcs() != g.NumArcs() {
		t.Fatalf("weighted=%v arcs %d->%d", g2.Weighted(), g.NumArcs(), g2.NumArcs())
	}
	for v := int32(0); v < int32(g.N()); v++ {
		a1, w1 := g.NeighborsW(v)
		a2, w2 := g2.NeighborsW(v)
		for i := range a1 {
			if a1[i] != a2[i] || w1[i] != w2[i] {
				t.Fatalf("adjacency differs at %d", v)
			}
		}
	}
}

func TestWriteMETISRejectsDirected(t *testing.T) {
	g, err := gen.ErdosRenyiGNM(10, 20, false, 8, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err == nil {
		t.Error("directed graph accepted")
	}
}
