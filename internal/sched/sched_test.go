package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

var allSchemes = []Scheme{Block, StaticCyclic, DynamicCyclic, DynamicChunk, Guided}

func TestParallelForCoversEachIndexOnce(t *testing.T) {
	for _, scheme := range allSchemes {
		for _, n := range []int{0, 1, 2, 7, 16, 100, 1000} {
			for _, p := range []int{1, 2, 3, 8, 33} {
				counts := make([]int32, n)
				ParallelFor(n, p, scheme, func(i int) {
					atomic.AddInt32(&counts[i], 1)
				})
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("%v n=%d p=%d: index %d visited %d times", scheme, n, p, i, c)
					}
				}
			}
		}
	}
}

func TestParallelForSingleWorkerIsOrdered(t *testing.T) {
	for _, scheme := range allSchemes {
		var got []int
		ParallelFor(50, 1, scheme, func(i int) { got = append(got, i) })
		for i, v := range got {
			if v != i {
				t.Fatalf("%v: p=1 order broken at %d: %v", scheme, i, got[:i+1])
			}
		}
	}
}

func TestParallelForNegativeAndZeroN(t *testing.T) {
	called := false
	ParallelFor(0, 4, Block, func(int) { called = true })
	ParallelFor(-5, 4, DynamicCyclic, func(int) { called = true })
	if called {
		t.Error("body called for non-positive n")
	}
}

func TestParallelWorkersWorkerIDsInRange(t *testing.T) {
	const n, p = 200, 5
	for _, scheme := range allSchemes {
		var mu sync.Mutex
		seen := map[int]bool{}
		ParallelWorkers(n, p, scheme, func(w, i int) {
			if w < 0 || w >= p {
				t.Errorf("worker id %d out of range", w)
			}
			mu.Lock()
			seen[w] = true
			mu.Unlock()
		})
		if len(seen) == 0 {
			t.Fatalf("%v: no workers ran", scheme)
		}
	}
}

func TestStaticCyclicAssignment(t *testing.T) {
	const n, p = 20, 3
	workerOf := make([]int32, n)
	ParallelWorkers(n, p, StaticCyclic, func(w, i int) {
		atomic.StoreInt32(&workerOf[i], int32(w))
	})
	for i := 0; i < n; i++ {
		if int(workerOf[i]) != i%p {
			t.Errorf("index %d ran on worker %d, want %d", i, workerOf[i], i%p)
		}
	}
}

func TestBlockAssignmentContiguous(t *testing.T) {
	const n, p = 22, 4
	workerOf := make([]int32, n)
	ParallelWorkers(n, p, Block, func(w, i int) {
		atomic.StoreInt32(&workerOf[i], int32(w))
	})
	// worker ids must be non-decreasing over the index range
	for i := 1; i < n; i++ {
		if workerOf[i] < workerOf[i-1] {
			t.Fatalf("block assignment not contiguous: %v", workerOf)
		}
	}
	// sizes must differ by at most 1
	sizes := map[int32]int{}
	for _, w := range workerOf {
		sizes[w]++
	}
	min, max := n, 0
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max-min > 1 {
		t.Errorf("block sizes unbalanced: %v", sizes)
	}
}

func TestDynamicCyclicIssueOrder(t *testing.T) {
	// The dynamic-cyclic guarantee the paper relies on: indices are
	// *dispatched* in increasing order. We verify dispatch order by
	// recording the sequence of counter grabs: since the body records the
	// index under a lock immediately on entry, and indices are handed out
	// by a single atomic counter, each worker's first record must respect
	// global monotonic hand-out. We check a weaker but deterministic
	// property: for every worker, its own indices are increasing.
	const n, p = 500, 8
	perWorker := make([][]int, p)
	var mu sync.Mutex
	ParallelWorkers(n, p, DynamicCyclic, func(w, i int) {
		mu.Lock()
		perWorker[w] = append(perWorker[w], i)
		mu.Unlock()
	})
	total := 0
	for w, idxs := range perWorker {
		total += len(idxs)
		for k := 1; k < len(idxs); k++ {
			if idxs[k] <= idxs[k-1] {
				t.Fatalf("worker %d indices not increasing: %v", w, idxs)
			}
		}
	}
	if total != n {
		t.Fatalf("visited %d indices, want %d", total, n)
	}
}

func TestBlockRange(t *testing.T) {
	cases := []struct {
		n, p, w, lo, hi int
	}{
		{10, 2, 0, 0, 5},
		{10, 2, 1, 5, 10},
		{10, 3, 0, 0, 4},
		{10, 3, 1, 4, 7},
		{10, 3, 2, 7, 10},
		{3, 5, 0, 0, 1},
		{3, 5, 3, 3, 3},
		{3, 5, 4, 3, 3},
	}
	for _, c := range cases {
		lo, hi := blockRange(c.n, c.p, c.w)
		if lo != c.lo || hi != c.hi {
			t.Errorf("blockRange(%d,%d,%d) = %d,%d want %d,%d", c.n, c.p, c.w, lo, hi, c.lo, c.hi)
		}
	}
}

func TestBlockRangePartition(t *testing.T) {
	f := func(rn, rp uint16) bool {
		n, p := int(rn%2000), 1+int(rp%40)
		prevHi := 0
		for w := 0; w < p; w++ {
			lo, hi := blockRange(n, p, w)
			if lo != prevHi || hi < lo {
				return false
			}
			prevHi = hi
		}
		return prevHi == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(0) != 1 || Workers(-3) != 1 || Workers(7) != 7 {
		t.Error("Workers normalization wrong")
	}
}

func TestSchemeString(t *testing.T) {
	want := map[Scheme]string{
		Block:         "block",
		StaticCyclic:  "static-cyclic",
		DynamicCyclic: "dynamic-cyclic",
		DynamicChunk:  "dynamic-chunk(16)",
		Guided:        "guided",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
		if !s.Valid() {
			t.Errorf("%v not valid", s)
		}
	}
	if Scheme(99).Valid() {
		t.Error("Scheme(99) reported valid")
	}
	if Scheme(99).String() != "Scheme(99)" {
		t.Errorf("unknown String = %q", Scheme(99).String())
	}
}

func TestParseScheme(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Scheme
	}{
		{"block", Block}, {"static", Block},
		{"static-cyclic", StaticCyclic},
		{"dynamic-cyclic", DynamicCyclic}, {"dynamic", DynamicCyclic},
		{"dynamic-chunk", DynamicChunk},
		{"guided", Guided},
	} {
		got, err := ParseScheme(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseScheme(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("ParseScheme accepted bogus name")
	}
}

func TestParallelForInvalidSchemePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid scheme did not panic")
		}
	}()
	ParallelFor(10, 2, Scheme(42), func(int) {})
}

func TestParallelForMoreWorkersThanWork(t *testing.T) {
	var count atomic.Int32
	ParallelFor(3, 100, DynamicCyclic, func(i int) { count.Add(1) })
	if count.Load() != 3 {
		t.Errorf("count = %d, want 3", count.Load())
	}
}
