// Package sched is the shared-memory loop-scheduling substrate of the
// repository: an OpenMP-style parallel-for over goroutine workers.
//
// The paper's parallel algorithms are all expressed as
// "#pragma omp parallel for schedule(...)" loops over source vertices, and
// Section 3.2 shows that the *choice of schedule* is load-bearing: the
// optimized APSP algorithm only retains its benefit when sources are issued
// in (close to) the degree-descending order produced by the ordering
// procedure. This package reproduces the three schedules the paper measures
// (Figure 1) plus a chunked dynamic schedule used in ablations:
//
//	Block        - schedule(static):     contiguous range per worker
//	StaticCyclic - schedule(static, 1):  worker w takes indices w, w+P, ...
//	DynamicCyclic- schedule(dynamic, 1): shared counter, issue order == index order
//	DynamicChunk - schedule(dynamic, c): shared counter advanced c at a time
//
// Every scheme is expressed as a per-worker claim function feeding one
// shared worker loop, which is where the optional observability hooks
// (internal/obs) and the panic-recovery path live exactly once. With a
// nil recorder the loop takes a single predictable branch per claim, so
// the uninstrumented hot path is unchanged within noise.
package sched

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"parapsp/internal/obs"
)

// Scheme selects the iteration-to-worker mapping of ParallelFor.
type Scheme int

const (
	// Block partitions [0,n) into one contiguous chunk per worker,
	// OpenMP's default schedule(static).
	Block Scheme = iota
	// StaticCyclic deals indices round-robin: worker w runs w, w+P, w+2P, ...
	// (OpenMP schedule(static,1)).
	StaticCyclic
	// DynamicCyclic hands out indices one at a time from a shared atomic
	// counter (OpenMP schedule(dynamic,1)). It is the only scheme that
	// guarantees indices *begin executing* in increasing order — up to the
	// unavoidable ≤ P-1 in-flight window, see TestDynamicCyclicIssueWindow —
	// which is what the paper's ParAlg2/ParAPSP require of the source order.
	DynamicCyclic
	// DynamicChunk hands out fixed-size chunks from a shared counter
	// (OpenMP schedule(dynamic,c) with c = ChunkSize).
	DynamicChunk
	// Guided hands out geometrically shrinking chunks — proportional to
	// the remaining iterations over the worker count — trading dispatch
	// overhead against tail imbalance (OpenMP schedule(guided)).
	Guided
)

// ChunkSize is the chunk width used by DynamicChunk.
const ChunkSize = 16

// String returns the OpenMP-style name of the scheme.
func (s Scheme) String() string {
	switch s {
	case Block:
		return "block"
	case StaticCyclic:
		return "static-cyclic"
	case DynamicCyclic:
		return "dynamic-cyclic"
	case DynamicChunk:
		return fmt.Sprintf("dynamic-chunk(%d)", ChunkSize)
	case Guided:
		return "guided"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Valid reports whether s is a known scheme.
func (s Scheme) Valid() bool { return s >= Block && s <= Guided }

// chunked reports whether the scheme claims multi-index ranges worth
// recording as chunk events (per-index schemes are fully described by
// their iteration events).
func (s Scheme) chunked() bool { return s == Block || s == DynamicChunk || s == Guided }

// ParseScheme converts a scheme name (as printed by String, "dynamic-chunk"
// accepted without the size suffix) back to a Scheme.
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "block", "static":
		return Block, nil
	case "static-cyclic":
		return StaticCyclic, nil
	case "dynamic-cyclic", "dynamic":
		return DynamicCyclic, nil
	case "dynamic-chunk":
		return DynamicChunk, nil
	case "guided":
		return Guided, nil
	}
	return 0, fmt.Errorf("sched: unknown scheme %q", name)
}

// Workers normalizes a requested worker count: values below 1 become 1.
// Unlike OpenMP we do not clamp to the hardware parallelism; the paper's
// thread sweeps (1,2,4,8,16,32) are meaningful as *logical* worker counts
// even when the host has fewer cores.
func Workers(p int) int {
	if p < 1 {
		return 1
	}
	return p
}

// ParallelFor runs body(i) for every i in [0,n) across p workers using the
// given scheme, and returns when all iterations finished. body must be safe
// for concurrent invocation on distinct indices. body(i) is invoked exactly
// once per index. With p == 1 every scheme degenerates to a plain
// sequential loop in increasing index order, with no goroutine overhead —
// this keeps 1-thread measurements comparable to the sequential algorithms,
// as in the paper's speedup baselines.
func ParallelFor(n, p int, scheme Scheme, body func(i int)) {
	if n <= 0 {
		return
	}
	p = Workers(p)
	if p > n {
		p = n
	}
	if p == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	ParallelWorkers(n, p, scheme, func(_ int, i int) { body(i) })
}

// ParallelWorkers is ParallelFor with the worker id exposed to the body.
// The ordering procedures (internal/order) need the id to address
// per-worker bucket lists, mirroring omp_get_thread_num().
// Unlike ParallelFor it always spawns p workers, even when p == 1 or p > n,
// because callers key data structures by worker id.
func ParallelWorkers(n, p int, scheme Scheme, body func(worker, i int)) {
	ParallelWorkersObs(n, p, scheme, nil, body)
}

// claim is one unit of work handed to a worker: the index arithmetic
// sequence lo, lo+stride, ... below hi.
type claim struct{ lo, hi, stride int }

// size returns the number of iterations in the claim.
func (c claim) size() int { return (c.hi - c.lo + c.stride - 1) / c.stride }

// newClaimer builds the per-worker claim functions of a scheme over [0,n)
// with p workers. Chunked/dynamic schemes share claim state through the
// closed-over atomic counter. Panics on an invalid scheme (before any
// worker is spawned, matching the historical contract).
func newClaimer(scheme Scheme, n, p int) func(w int) func() (claim, bool) {
	switch scheme {
	case Block:
		return func(w int) func() (claim, bool) {
			done := false
			return func() (claim, bool) {
				lo, hi := blockRange(n, p, w)
				if done || lo >= hi {
					return claim{}, false
				}
				done = true
				return claim{lo, hi, 1}, true
			}
		}
	case StaticCyclic:
		return func(w int) func() (claim, bool) {
			done := false
			return func() (claim, bool) {
				if done || w >= n {
					return claim{}, false
				}
				done = true
				return claim{w, n, p}, true
			}
		}
	case DynamicCyclic:
		next := new(atomic.Int64)
		return func(int) func() (claim, bool) {
			return func() (claim, bool) {
				i := int(next.Add(1)) - 1
				if i >= n {
					return claim{}, false
				}
				return claim{i, i + 1, 1}, true
			}
		}
	case DynamicChunk:
		next := new(atomic.Int64)
		return func(int) func() (claim, bool) {
			return func() (claim, bool) {
				lo := int(next.Add(ChunkSize)) - ChunkSize
				if lo >= n {
					return claim{}, false
				}
				hi := lo + ChunkSize
				if hi > n {
					hi = n
				}
				return claim{lo, hi, 1}, true
			}
		}
	case Guided:
		next := new(atomic.Int64)
		return func(int) func() (claim, bool) {
			return func() (claim, bool) {
				for {
					cur := next.Load()
					remaining := int64(n) - cur
					if remaining <= 0 {
						return claim{}, false
					}
					chunk := remaining / int64(2*p)
					if chunk < 1 {
						chunk = 1
					}
					if !next.CompareAndSwap(cur, cur+chunk) {
						continue // another worker claimed; recompute
					}
					hi := cur + chunk
					if hi > int64(n) {
						hi = int64(n)
					}
					return claim{int(cur), int(hi), 1}, true
				}
			}
		}
	}
	panic(fmt.Sprintf("sched: invalid scheme %d", int(scheme)))
}

// ParallelWorkersObs is ParallelWorkers with an optional observability
// recorder. With rec == nil it is exactly ParallelWorkers. With a
// recorder (sized for at least p workers, or this panics) every worker
// records iteration spans, chunk claims for the chunked schemes, and a
// worker-lifetime span into its own lane, attaches a pprof "sched-worker"
// label, and accounts dispatches/iterations/busy time under "sched.*"
// metrics; after the join the coordinator adds each worker's tail idle
// time (join minus worker exit — the load-imbalance figure).
//
// A panic in body aborts the dynamic schemes' remaining claims, is
// captured by the panicking worker, and re-raised with the original panic
// value from the calling goroutine after all workers joined — the pool
// never deadlocks, and an attached recorder stays mergeable.
func ParallelWorkersObs(n, p int, scheme Scheme, rec *obs.Recorder, body func(worker, i int)) {
	p = Workers(p)
	if n < 0 {
		n = 0
	}
	if rec != nil && rec.Workers() < p {
		panic(fmt.Sprintf("sched: recorder has %d worker lanes, need %d", rec.Workers(), p))
	}
	claimer := newClaimer(scheme, n, p) // validates scheme before spawning

	var (
		wg       sync.WaitGroup
		aborted  atomic.Bool
		panicked atomic.Pointer[workerPanic]
		exits    []int64
	)
	if rec != nil {
		exits = make([]int64, p)
	}
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					aborted.Store(true)
					panicked.CompareAndSwap(nil, &workerPanic{worker: w, value: e})
				}
			}()
			claimNext := claimer(w)
			if rec == nil {
				for !aborted.Load() {
					c, ok := claimNext()
					if !ok {
						return
					}
					for i := c.lo; i < c.hi; i += c.stride {
						body(w, i)
					}
				}
				return
			}
			runTraced(w, scheme, rec, claimNext, &aborted, body, exits)
		}(w)
	}
	wg.Wait()
	if wp := panicked.Load(); wp != nil {
		// Re-raise from the coordinator with the body's original panic
		// value, so callers' recover logic sees what the body threw.
		panic(wp.value)
	}
	if rec != nil {
		join := rec.Now()
		var tail int64
		for _, exit := range exits {
			tail += join - exit
		}
		m := rec.Metrics()
		m.Counter("sched.pools").Add(1)
		m.Counter("sched.tail_idle_ns").Add(tail)
	}
}

// workerPanic is the first panic captured across the pool's workers.
type workerPanic struct {
	worker int
	value  any
}

// runTraced is the instrumented worker loop: per-iteration spans, chunk
// claims for chunked schemes, a worker-lifetime span, and dispatch/busy
// metrics, all into the worker's own single-writer lane.
func runTraced(w int, scheme Scheme, rec *obs.Recorder, claimNext func() (claim, bool),
	aborted *atomic.Bool, body func(worker, i int), exits []int64) {
	lane := rec.Lane(w)
	start := rec.Now()
	var busy, iters, claims int64
	defer func() {
		// Runs on the panic path too, keeping the lane mergeable and the
		// exit timestamp sane for the tail-idle accounting.
		end := rec.Now()
		lane.Add(obs.Event{Phase: obs.PhaseWorker, Start: start, End: end, Index: iters, Arg: busy})
		exits[w] = end
		m := rec.Metrics()
		m.Counter("sched.dispatches").Add(claims)
		m.Counter("sched.iterations").Add(iters)
		m.Counter("sched.busy_ns").Add(busy)
	}()
	recordChunks := scheme.chunked()
	obs.Do(func() {
		for !aborted.Load() {
			c, ok := claimNext()
			if !ok {
				return
			}
			claims++
			c0 := rec.Now()
			for i := c.lo; i < c.hi; i += c.stride {
				t0 := rec.Now()
				body(w, i)
				t1 := rec.Now()
				busy += t1 - t0
				iters++
				lane.Add(obs.Event{Phase: obs.PhaseIter, Start: t0, End: t1, Index: int64(i)})
			}
			if recordChunks {
				lane.Add(obs.Event{Phase: obs.PhaseChunk, Start: c0, End: rec.Now(),
					Index: int64(c.lo), Arg: int64(c.hi)})
			}
		}
	}, "sched-worker", strconv.Itoa(w))
}

// blockRange returns the half-open index range of worker w under Block
// scheduling, distributing the remainder one extra element to the first
// n%p workers (OpenMP's static partitioning).
func blockRange(n, p, w int) (lo, hi int) {
	base := n / p
	rem := n % p
	if w < rem {
		lo = w * (base + 1)
		hi = lo + base + 1
		return
	}
	lo = rem*(base+1) + (w-rem)*base
	hi = lo + base
	return
}
