// Package sched is the shared-memory loop-scheduling substrate of the
// repository: an OpenMP-style parallel-for over goroutine workers.
//
// The paper's parallel algorithms are all expressed as
// "#pragma omp parallel for schedule(...)" loops over source vertices, and
// Section 3.2 shows that the *choice of schedule* is load-bearing: the
// optimized APSP algorithm only retains its benefit when sources are issued
// in (close to) the degree-descending order produced by the ordering
// procedure. This package reproduces the three schedules the paper measures
// (Figure 1) plus a chunked dynamic schedule used in ablations:
//
//	Block        - schedule(static):     contiguous range per worker
//	StaticCyclic - schedule(static, 1):  worker w takes indices w, w+P, ...
//	DynamicCyclic- schedule(dynamic, 1): shared counter, issue order == index order
//	DynamicChunk - schedule(dynamic, c): shared counter advanced c at a time
package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Scheme selects the iteration-to-worker mapping of ParallelFor.
type Scheme int

const (
	// Block partitions [0,n) into one contiguous chunk per worker,
	// OpenMP's default schedule(static).
	Block Scheme = iota
	// StaticCyclic deals indices round-robin: worker w runs w, w+P, w+2P, ...
	// (OpenMP schedule(static,1)).
	StaticCyclic
	// DynamicCyclic hands out indices one at a time from a shared atomic
	// counter (OpenMP schedule(dynamic,1)). It is the only scheme that
	// guarantees indices *begin executing* in increasing order, which is
	// what the paper's ParAlg2/ParAPSP require of the source order.
	DynamicCyclic
	// DynamicChunk hands out fixed-size chunks from a shared counter
	// (OpenMP schedule(dynamic,c) with c = ChunkSize).
	DynamicChunk
	// Guided hands out geometrically shrinking chunks — proportional to
	// the remaining iterations over the worker count — trading dispatch
	// overhead against tail imbalance (OpenMP schedule(guided)).
	Guided
)

// ChunkSize is the chunk width used by DynamicChunk.
const ChunkSize = 16

// String returns the OpenMP-style name of the scheme.
func (s Scheme) String() string {
	switch s {
	case Block:
		return "block"
	case StaticCyclic:
		return "static-cyclic"
	case DynamicCyclic:
		return "dynamic-cyclic"
	case DynamicChunk:
		return fmt.Sprintf("dynamic-chunk(%d)", ChunkSize)
	case Guided:
		return "guided"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Valid reports whether s is a known scheme.
func (s Scheme) Valid() bool { return s >= Block && s <= Guided }

// ParseScheme converts a scheme name (as printed by String, "dynamic-chunk"
// accepted without the size suffix) back to a Scheme.
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "block", "static":
		return Block, nil
	case "static-cyclic":
		return StaticCyclic, nil
	case "dynamic-cyclic", "dynamic":
		return DynamicCyclic, nil
	case "dynamic-chunk":
		return DynamicChunk, nil
	case "guided":
		return Guided, nil
	}
	return 0, fmt.Errorf("sched: unknown scheme %q", name)
}

// Workers normalizes a requested worker count: values below 1 become 1.
// Unlike OpenMP we do not clamp to the hardware parallelism; the paper's
// thread sweeps (1,2,4,8,16,32) are meaningful as *logical* worker counts
// even when the host has fewer cores.
func Workers(p int) int {
	if p < 1 {
		return 1
	}
	return p
}

// ParallelFor runs body(i) for every i in [0,n) across p workers using the
// given scheme, and returns when all iterations finished. body must be safe
// for concurrent invocation on distinct indices. body(i) is invoked exactly
// once per index. With p == 1 every scheme degenerates to a plain
// sequential loop in increasing index order, with no goroutine overhead —
// this keeps 1-thread measurements comparable to the sequential algorithms,
// as in the paper's speedup baselines.
func ParallelFor(n, p int, scheme Scheme, body func(i int)) {
	if n <= 0 {
		return
	}
	p = Workers(p)
	if p > n {
		p = n
	}
	if p == 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	ParallelWorkers(n, p, scheme, func(_ int, i int) { body(i) })
}

// ParallelWorkers is ParallelFor with the worker id exposed to the body.
// The ordering procedures (internal/order) need the id to address
// per-worker bucket lists, mirroring omp_get_thread_num().
// Unlike ParallelFor it always spawns p workers, even when p == 1 or p > n,
// because callers key data structures by worker id.
func ParallelWorkers(n, p int, scheme Scheme, body func(worker, i int)) {
	p = Workers(p)
	if n < 0 {
		n = 0
	}
	var wg sync.WaitGroup
	wg.Add(p)
	switch scheme {
	case Block:
		for w := 0; w < p; w++ {
			lo, hi := blockRange(n, p, w)
			go func(w, lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					body(w, i)
				}
			}(w, lo, hi)
		}
	case StaticCyclic:
		for w := 0; w < p; w++ {
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += p {
					body(w, i)
				}
			}(w)
		}
	case DynamicCyclic:
		var next atomic.Int64
		for w := 0; w < p; w++ {
			go func(w int) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					body(w, i)
				}
			}(w)
		}
	case DynamicChunk:
		var next atomic.Int64
		for w := 0; w < p; w++ {
			go func(w int) {
				defer wg.Done()
				for {
					lo := int(next.Add(ChunkSize)) - ChunkSize
					if lo >= n {
						return
					}
					hi := lo + ChunkSize
					if hi > n {
						hi = n
					}
					for i := lo; i < hi; i++ {
						body(w, i)
					}
				}
			}(w)
		}
	case Guided:
		var next atomic.Int64
		for w := 0; w < p; w++ {
			go func(w int) {
				defer wg.Done()
				for {
					cur := next.Load()
					remaining := int64(n) - cur
					if remaining <= 0 {
						return
					}
					chunk := remaining / int64(2*p)
					if chunk < 1 {
						chunk = 1
					}
					if !next.CompareAndSwap(cur, cur+chunk) {
						continue // another worker claimed; recompute
					}
					hi := cur + chunk
					if hi > int64(n) {
						hi = int64(n)
					}
					for i := cur; i < hi; i++ {
						body(w, int(i))
					}
				}
			}(w)
		}
	default:
		panic(fmt.Sprintf("sched: invalid scheme %d", int(scheme)))
	}
	wg.Wait()
}

// blockRange returns the half-open index range of worker w under Block
// scheduling, distributing the remainder one extra element to the first
// n%p workers (OpenMP's static partitioning).
func blockRange(n, p, w int) (lo, hi int) {
	base := n / p
	rem := n % p
	if w < rem {
		lo = w * (base + 1)
		hi = lo + base + 1
		return
	}
	lo = rem*(base+1) + (w-rem)*base
	hi = lo + base
	return
}
