package sched

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"parapsp/internal/obs"
)

// Crash-safety suite: a panicking body must cross the pool join — the
// historical implementation would have crashed the whole process from
// the worker goroutine — without deadlocking, and must leave an attached
// recorder mergeable.

var errBoom = errors.New("boom")

// TestPanicPropagatesAllSchemes: the original panic value reaches the
// caller of ParallelWorkers, for every scheme.
func TestPanicPropagatesAllSchemes(t *testing.T) {
	for _, scheme := range allSchemes {
		func() {
			defer func() {
				if got := recover(); got != errBoom {
					t.Errorf("%v: recovered %v, want errBoom", scheme, got)
				}
			}()
			ParallelWorkers(100, 4, scheme, func(_, i int) {
				if i == 37 {
					panic(errBoom)
				}
			})
			t.Errorf("%v: ParallelWorkers returned normally", scheme)
		}()
	}
}

// TestPanicDoesNotDeadlock: the join completes promptly even though one
// worker dies mid-loop — the remaining workers drain or abort their
// claims. Guarded by a watchdog rather than test -timeout so the failure
// is attributable.
func TestPanicDoesNotDeadlock(t *testing.T) {
	for _, scheme := range allSchemes {
		done := make(chan struct{})
		go func() {
			defer func() { recover(); close(done) }()
			ParallelWorkers(10000, 8, scheme, func(_, i int) {
				if i == 0 {
					panic("early")
				}
			})
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("%v: pool did not join within 30s after body panic", scheme)
		}
	}
}

// TestPanicAbortsDynamicClaims: after a panic, dynamic workers stop
// claiming; far fewer than n iterations run.
func TestPanicAbortsDynamicClaims(t *testing.T) {
	const n = 1_000_000
	var ran atomic.Int64
	func() {
		defer func() { recover() }()
		ParallelWorkers(n, 4, DynamicCyclic, func(_, i int) {
			if ran.Add(1) == 100 {
				panic("stop")
			}
		})
	}()
	if got := ran.Load(); got >= n {
		t.Errorf("all %d iterations ran despite panic", got)
	}
}

// TestPanicLeavesRecorderMergeable: after a propagated panic, Stop /
// Events / WriteTrace / metrics all still work, the panicking worker's
// lifetime span is present (its deferred bookkeeping ran), and the
// surviving events are well-formed.
func TestPanicLeavesRecorderMergeable(t *testing.T) {
	const n, p = 512, 4
	rec := obs.NewWithCapacity(p, 1024)
	func() {
		defer func() {
			if got := recover(); got != errBoom {
				t.Fatalf("recovered %v, want errBoom", got)
			}
		}()
		ParallelWorkersObs(n, p, DynamicCyclic, rec, func(_, i int) {
			if i == 40 {
				panic(errBoom)
			}
		})
	}()
	rec.Stop()
	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("no events survived the panic")
	}
	workerSpans := 0
	prev := int64(-1)
	for _, e := range events {
		if e.Start < prev {
			t.Fatal("merged events not sorted by start")
		}
		prev = e.Start
		if e.Phase == obs.PhaseWorker {
			workerSpans++
		}
	}
	if workerSpans != p {
		t.Errorf("%d worker spans after panic, want %d (deferred bookkeeping must run)", workerSpans, p)
	}
	if got := rec.Metrics().Counter("sched.iterations").Load(); got <= 0 || got > n {
		t.Errorf("sched.iterations = %d after panic, want (0,%d]", got, n)
	}
}

// TestSequentialPanicPropagates: the p==1 inline fast path of ParallelFor
// panics synchronously with the original value.
func TestSequentialPanicPropagates(t *testing.T) {
	defer func() {
		if got := recover(); got != errBoom {
			t.Errorf("recovered %v, want errBoom", got)
		}
	}()
	ParallelFor(10, 1, DynamicCyclic, func(i int) {
		if i == 5 {
			panic(errBoom)
		}
	})
	t.Error("ParallelFor returned normally")
}

// TestFirstPanicWins: concurrent panics are all recovered; exactly one
// propagates and it is one of the thrown values.
func TestFirstPanicWins(t *testing.T) {
	defer func() {
		got := recover()
		if _, ok := got.(int); !ok {
			t.Errorf("recovered %v (%T), want a thrown worker index", got, got)
		}
	}()
	ParallelWorkers(64, 8, StaticCyclic, func(w, _ int) {
		panic(w)
	})
	t.Error("ParallelWorkers returned normally")
}
