package sched

import (
	"sync"
	"testing"
	"testing/quick"

	"parapsp/internal/obs"
)

// Scheduler-semantics suite: the exact contracts the solvers build on,
// asserted as properties (run under -race via scripts/check.sh).
//
// The load-bearing one is DynamicCyclic's issue order — ParAlg2/ParAPSP
// only profit from the degree-descending source order because the
// schedule *begins executing* sources in (close to) that order, so
// high-degree rows complete before the searches that want to fold them.

// TestDynamicCyclicIssueWindow asserts the precise form of "begins
// executing in increasing order" that a P-worker dynamic schedule can
// guarantee: indices are claimed from one atomic counter, so at the
// moment body(i) begins, every j < i has already begun or is one of the
// <= P-1 claims in flight on other workers. Equivalently, in begin order,
// the number of smaller indices that have not yet begun never exceeds
// P-1. (Static schemes violate this badly: one worker can finish its
// whole comb before another starts.)
func TestDynamicCyclicIssueWindow(t *testing.T) {
	const n, p, rounds = 400, 8, 10
	for round := 0; round < rounds; round++ {
		var mu sync.Mutex
		began := make([]int, 0, n)
		ParallelWorkers(n, p, DynamicCyclic, func(_, i int) {
			mu.Lock()
			began = append(began, i)
			mu.Unlock()
		})
		if len(began) != n {
			t.Fatalf("round %d: %d begins, want %d", round, len(began), n)
		}
		seen := make([]bool, n)
		for pos, i := range began {
			seen[i] = true
			// i was claimed after every j < i (single counter), so any
			// unbegun j < i is in flight on one of the other p-1 workers.
			missing := 0
			for j := 0; j < i; j++ {
				if !seen[j] {
					missing++
				}
			}
			if missing > p-1 {
				t.Fatalf("round %d: at begin #%d (index %d), %d smaller indices had not begun (window is %d)",
					round, pos, i, missing, p-1)
			}
		}
	}
}

// TestDynamicCyclicPerWorkerIncreasing: each worker's own begin sequence
// is strictly increasing — a worker claims its next index only after
// finishing the previous one.
func TestDynamicCyclicPerWorkerIncreasing(t *testing.T) {
	const n, p = 500, 8
	// One fast worker may claim nearly every index, so size each lane
	// for the full iteration history plus bookkeeping spans.
	rec := obs.NewWithCapacity(p, n+16)
	ParallelWorkersObs(n, p, DynamicCyclic, rec, func(_, _ int) {})
	rec.Stop()
	total := 0
	for w := 0; w < p; w++ {
		prev := -1
		for _, e := range rec.Lane(w).Events() {
			if e.Phase != obs.PhaseIter {
				continue
			}
			total++
			if int(e.Index) <= prev {
				t.Fatalf("worker %d ran %d after %d", w, e.Index, prev)
			}
			prev = int(e.Index)
		}
	}
	if total != n {
		t.Fatalf("recorded %d iteration events, want %d", total, n)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("dropped %d events with sufficient capacity", rec.Dropped())
	}
}

// TestBlockExactMap pins Block to OpenMP's static partitioning: worker w
// runs exactly blockRange(n,p,w), verified index by index.
func TestBlockExactMap(t *testing.T) {
	for _, c := range []struct{ n, p int }{{22, 4}, {100, 7}, {5, 8}, {64, 64}} {
		workerOf := runAndMapWorkers(t, c.n, c.p, Block)
		for w := 0; w < c.p; w++ {
			lo, hi := blockRange(c.n, c.p, w)
			for i := lo; i < hi; i++ {
				if workerOf[i] != w {
					t.Errorf("n=%d p=%d: index %d on worker %d, want %d", c.n, c.p, i, workerOf[i], w)
				}
			}
		}
	}
}

// TestStaticCyclicExactMap pins StaticCyclic to schedule(static,1):
// index i runs on worker i mod p, for every index.
func TestStaticCyclicExactMap(t *testing.T) {
	for _, c := range []struct{ n, p int }{{20, 3}, {97, 8}, {4, 16}} {
		workerOf := runAndMapWorkers(t, c.n, c.p, StaticCyclic)
		for i := 0; i < c.n; i++ {
			if workerOf[i] != i%c.p {
				t.Errorf("n=%d p=%d: index %d on worker %d, want %d", c.n, c.p, i, workerOf[i], i%c.p)
			}
		}
	}
}

// runAndMapWorkers executes the scheme and returns the iteration-to-worker
// map, failing the test on any double or missed visit.
func runAndMapWorkers(t *testing.T, n, p int, scheme Scheme) []int {
	t.Helper()
	workerOf := make([]int, n)
	for i := range workerOf {
		workerOf[i] = -1
	}
	var mu sync.Mutex
	ParallelWorkers(n, p, scheme, func(w, i int) {
		mu.Lock()
		defer mu.Unlock()
		if workerOf[i] != -1 {
			t.Errorf("%v: index %d visited twice", scheme, i)
		}
		workerOf[i] = w
	})
	for i, w := range workerOf {
		if w == -1 {
			t.Fatalf("%v: index %d never visited", scheme, i)
		}
	}
	return workerOf
}

// TestGuidedChunkShapes uses the recorder's chunk events to pin Guided's
// semantics: claimed chunks tile [0,n) exactly once, and — because each
// chunk is remaining/(2p) at a monotonically shrinking remaining — chunk
// sizes are non-increasing in claim order, down to the floor of 1.
func TestGuidedChunkShapes(t *testing.T) {
	for _, c := range []struct{ n, p int }{{1000, 4}, {57, 3}, {10000, 8}} {
		// Lanes sized for the full history: a single eager worker records
		// an iter event per index on top of its chunk events.
		rec := obs.NewWithCapacity(c.p, c.n+256)
		ParallelWorkersObs(c.n, c.p, Guided, rec, func(_, _ int) {})
		rec.Stop()
		chunks := chunkEvents(rec)
		// Claims come from one CAS-serialized counter, so lo order is
		// claim order.
		covered := 0
		prevSize := c.n + 1
		for _, ch := range chunks {
			lo, hi := int(ch.Index), int(ch.Arg)
			if lo != covered {
				t.Fatalf("n=%d p=%d: chunk starts at %d, want %d (chunks must tile [0,n))", c.n, c.p, lo, covered)
			}
			size := hi - lo
			if size < 1 {
				t.Fatalf("n=%d p=%d: empty chunk [%d,%d)", c.n, c.p, lo, hi)
			}
			if size > prevSize {
				t.Fatalf("n=%d p=%d: chunk size grew %d -> %d at lo=%d", c.n, c.p, prevSize, size, lo)
			}
			prevSize = size
			covered = hi
		}
		if covered != c.n {
			t.Fatalf("n=%d p=%d: chunks cover [0,%d), want [0,%d)", c.n, c.p, covered, c.n)
		}
	}
}

// TestDynamicChunkShapes: every claimed chunk is exactly ChunkSize wide
// except the last, and the chunks tile [0,n).
func TestDynamicChunkShapes(t *testing.T) {
	const n, p = 1000, 4 // n+9 below: not a multiple of ChunkSize
	rec := obs.NewWithCapacity(p, 2*n)
	ParallelWorkersObs(n+9, p, DynamicChunk, rec, func(_, _ int) {})
	rec.Stop()
	covered := 0
	for _, ch := range chunkEvents(rec) {
		lo, hi := int(ch.Index), int(ch.Arg)
		if lo != covered {
			t.Fatalf("chunk starts at %d, want %d", lo, covered)
		}
		if hi-lo != ChunkSize && hi != n+9 {
			t.Fatalf("interior chunk [%d,%d) is not %d wide", lo, hi, ChunkSize)
		}
		covered = hi
	}
	if covered != n+9 {
		t.Fatalf("chunks cover [0,%d), want [0,%d)", covered, n+9)
	}
}

// chunkEvents returns the recorder's chunk claims sorted by lo (claim
// order, since the shared counter hands out los monotonically).
func chunkEvents(rec *obs.Recorder) []obs.Event {
	var out []obs.Event
	for _, e := range rec.Events() {
		if e.Phase == obs.PhaseChunk {
			out = append(out, e)
		}
	}
	// Events() sorts by Start; re-sort by lo for claim order (insertion
	// sort: the list is nearly sorted already).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Index > out[j].Index; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// TestTracedCoverageAllSchemes: the instrumented path visits every index
// exactly once under every scheme (the traced worker loop must not
// change dispatch semantics), and the metrics agree.
func TestTracedCoverageAllSchemes(t *testing.T) {
	for _, scheme := range allSchemes {
		for _, c := range []struct{ n, p int }{{0, 3}, {1, 4}, {137, 5}} {
			rec := obs.NewWithCapacity(c.p, 1024)
			counts := make([]int32, c.n)
			var mu sync.Mutex
			ParallelWorkersObs(c.n, c.p, scheme, rec, func(_, i int) {
				mu.Lock()
				counts[i]++
				mu.Unlock()
			})
			rec.Stop()
			for i, cnt := range counts {
				if cnt != 1 {
					t.Fatalf("%v n=%d p=%d: index %d visited %d times", scheme, c.n, c.p, i, cnt)
				}
			}
			m := rec.Metrics().Snapshot()
			if got := m["sched.iterations"]; got != int64(c.n) {
				t.Errorf("%v n=%d p=%d: sched.iterations = %d, want %d", scheme, c.n, c.p, got, c.n)
			}
			if got := m["sched.pools"]; got != 1 {
				t.Errorf("%v: sched.pools = %d, want 1", scheme, got)
			}
			// One worker-lifetime span per worker, all iteration spans
			// inside their worker's span.
			workerSpans := 0
			for _, e := range rec.Events() {
				if e.Phase == obs.PhaseWorker {
					workerSpans++
				}
				if e.End < e.Start {
					t.Fatalf("%v: event with End %d < Start %d", scheme, e.End, e.Start)
				}
			}
			if workerSpans != c.p {
				t.Errorf("%v n=%d p=%d: %d worker spans, want %d", scheme, c.n, c.p, workerSpans, c.p)
			}
		}
	}
}

// TestTracedBusyTimeConsistent: per-worker busy nanoseconds (the Arg of
// the worker span) never exceed the span itself, and the busy metric is
// the sum over workers.
func TestTracedBusyTimeConsistent(t *testing.T) {
	const n, p = 64, 4
	rec := obs.NewWithCapacity(p, 1024)
	ParallelWorkersObs(n, p, DynamicCyclic, rec, func(_, _ int) {
		for i := 0; i < 1000; i++ {
			_ = i * i
		}
	})
	rec.Stop()
	var sum int64
	for _, e := range rec.Events() {
		if e.Phase != obs.PhaseWorker {
			continue
		}
		if e.Arg > e.End-e.Start {
			t.Errorf("worker %d busy %dns exceeds lifetime %dns", e.Worker, e.Arg, e.End-e.Start)
		}
		sum += e.Arg
	}
	if got := rec.Metrics().Counter("sched.busy_ns").Load(); got != sum {
		t.Errorf("sched.busy_ns = %d, want sum of worker spans %d", got, sum)
	}
}

// TestRecorderTooSmallPanics: handing a recorder with fewer lanes than
// workers is a programming error and must fail loudly, not corrupt lanes.
func TestRecorderTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("undersized recorder did not panic")
		}
	}()
	ParallelWorkersObs(10, 4, Block, obs.New(2), func(_, _ int) {})
}

// TestClaimersCoverProperty: quick-check that every scheme's claim
// functions partition [0,n) exactly, for arbitrary n and p.
func TestClaimersCoverProperty(t *testing.T) {
	f := func(rn, rp uint16, rs uint8) bool {
		n, p := int(rn%3000), 1+int(rp%33)
		scheme := allSchemes[int(rs)%len(allSchemes)]
		counts := make([]int32, n)
		claimer := newClaimer(scheme, n, p)
		for w := 0; w < p; w++ { // drive each worker's claims sequentially
			next := claimer(w)
			for {
				c, ok := next()
				if !ok {
					break
				}
				for i := c.lo; i < c.hi; i += c.stride {
					counts[i]++
				}
			}
		}
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
