package analysis

import (
	"math"
	"testing"

	"parapsp/internal/baseline"
	"parapsp/internal/gen"
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// pathD returns the APSP matrix of an undirected path 0-1-...-(n-1).
func pathD(t *testing.T, n int) *matrix.Matrix {
	t.Helper()
	var pairs [][2]int32
	for i := 0; i < n-1; i++ {
		pairs = append(pairs, [2]int32{int32(i), int32(i + 1)})
	}
	g, err := graph.FromPairs(n, true, pairs)
	if err != nil {
		t.Fatal(err)
	}
	return baseline.FloydWarshall(g)
}

func TestEccentricitiesPath(t *testing.T) {
	D := pathD(t, 5) // path 0-1-2-3-4
	want := []matrix.Dist{4, 3, 2, 3, 4}
	got := Eccentricities(D)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ecc[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestDiameterRadiusPath(t *testing.T) {
	D := pathD(t, 5)
	if d := Diameter(D); d != 4 {
		t.Errorf("diameter = %d, want 4", d)
	}
	if r := Radius(D); r != 2 {
		t.Errorf("radius = %d, want 2", r)
	}
}

func TestDiameterCompleteGraph(t *testing.T) {
	g, err := gen.ErdosRenyiGNP(6, 1, true, 1, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	D := baseline.FloydWarshall(g)
	if d := Diameter(D); d != 1 {
		t.Errorf("K6 diameter = %d, want 1", d)
	}
	if r := Radius(D); r != 1 {
		t.Errorf("K6 radius = %d, want 1", r)
	}
}

func TestAveragePathLengthPath3(t *testing.T) {
	// Path 0-1-2: ordered pairs distances 1,1,1,1,2,2 -> mean 8/6.
	D := pathD(t, 3)
	want := 8.0 / 6.0
	if got := AveragePathLength(D); math.Abs(got-want) > 1e-12 {
		t.Errorf("APL = %g, want %g", got, want)
	}
}

func TestAveragePathLengthNoPairs(t *testing.T) {
	g, err := graph.FromPairs(3, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	D := baseline.FloydWarshall(g)
	if got := AveragePathLength(D); !math.IsNaN(got) {
		t.Errorf("APL of edgeless graph = %g, want NaN", got)
	}
}

func TestClosenessStar(t *testing.T) {
	// Star: hub 0, leaves 1..4. Hub closeness 1, leaf = (4/4)*(4/7).
	var pairs [][2]int32
	for i := int32(1); i < 5; i++ {
		pairs = append(pairs, [2]int32{0, i})
	}
	g, err := graph.FromPairs(5, true, pairs)
	if err != nil {
		t.Fatal(err)
	}
	D := baseline.FloydWarshall(g)
	c := Closeness(D)
	if math.Abs(c[0]-1.0) > 1e-12 {
		t.Errorf("hub closeness = %g, want 1", c[0])
	}
	wantLeaf := 4.0 / 7.0
	for i := 1; i < 5; i++ {
		if math.Abs(c[i]-wantLeaf) > 1e-12 {
			t.Errorf("leaf %d closeness = %g, want %g", i, c[i], wantLeaf)
		}
	}
}

func TestClosenessDisconnectedCorrection(t *testing.T) {
	// Two K2 components in a 4-vertex graph: each vertex reaches 1 other
	// at distance 1 -> closeness (1/3)*(1/1) = 1/3 < within-component 1.
	g, err := graph.FromPairs(4, true, [][2]int32{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	c := Closeness(baseline.FloydWarshall(g))
	for i, v := range c {
		if math.Abs(v-1.0/3.0) > 1e-12 {
			t.Errorf("closeness[%d] = %g, want 1/3", i, v)
		}
	}
}

func TestClosenessIsolated(t *testing.T) {
	g, err := graph.FromPairs(2, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := Closeness(baseline.FloydWarshall(g))
	if c[0] != 0 || c[1] != 0 {
		t.Errorf("isolated closeness = %v", c)
	}
	one, err := graph.FromPairs(1, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := Closeness(baseline.FloydWarshall(one)); got[0] != 0 {
		t.Errorf("singleton closeness = %v", got)
	}
}

func TestHarmonicStar(t *testing.T) {
	var pairs [][2]int32
	for i := int32(1); i < 5; i++ {
		pairs = append(pairs, [2]int32{0, i})
	}
	g, err := graph.FromPairs(5, true, pairs)
	if err != nil {
		t.Fatal(err)
	}
	h := Harmonic(baseline.FloydWarshall(g))
	if math.Abs(h[0]-4.0) > 1e-12 {
		t.Errorf("hub harmonic = %g, want 4", h[0])
	}
	wantLeaf := 1.0 + 3.0/2.0
	if math.Abs(h[1]-wantLeaf) > 1e-12 {
		t.Errorf("leaf harmonic = %g, want %g", h[1], wantLeaf)
	}
}

func TestReachableCountsDirected(t *testing.T) {
	g, err := graph.FromPairs(3, false, [][2]int32{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	got := ReachableCounts(baseline.FloydWarshall(g))
	want := []int{2, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("reach[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestTopK(t *testing.T) {
	vals := []float64{0.3, 0.9, 0.1, 0.9, 0.5}
	got := TopK(vals, 3)
	want := []int{1, 3, 4} // stable: index 1 before 3
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
	if len(TopK(vals, 99)) != 5 {
		t.Error("k > len not clamped")
	}
	if len(TopK(vals, -1)) != 0 {
		t.Error("negative k not clamped")
	}
}

func TestComponentsUndirected(t *testing.T) {
	g, err := graph.FromPairs(6, true, [][2]int32{{0, 1}, {1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	comp := Components(g)
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("component split: %v", comp)
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Errorf("components merged: %v", comp)
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Errorf("isolated vertex joined: %v", comp)
	}
	sizes := ComponentSizes(comp)
	if len(sizes) != 3 {
		t.Fatalf("sizes = %v", sizes)
	}
	if sizes[comp[0]] != 3 || sizes[comp[3]] != 2 || sizes[comp[5]] != 1 {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestComponentsDirectedWeak(t *testing.T) {
	// 0 -> 1 <- 2 is weakly connected even though not strongly.
	g, err := graph.FromPairs(3, false, [][2]int32{{0, 1}, {2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	comp := Components(g)
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("weak connectivity broken: %v", comp)
	}
}

func TestLargestComponent(t *testing.T) {
	g, err := graph.FromPairs(6, true, [][2]int32{{0, 1}, {1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	lc := LargestComponent(g)
	if len(lc) != 3 || lc[0] != 0 || lc[1] != 1 || lc[2] != 2 {
		t.Errorf("largest component = %v", lc)
	}
}

func TestDegreeStats(t *testing.T) {
	g, err := graph.FromPairs(4, true, [][2]int32{{0, 1}, {0, 2}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	st := Degrees(g)
	if st.Vertices != 4 || st.Arcs != 6 || st.Min != 1 || st.Max != 3 || st.Mean != 1.5 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEmptyMatrixAnalyses(t *testing.T) {
	D := matrix.New(0)
	if Diameter(D) != 0 || Radius(D) != 0 {
		t.Error("empty diameter/radius non-zero")
	}
	if len(Eccentricities(D)) != 0 || len(Closeness(D)) != 0 || len(Harmonic(D)) != 0 {
		t.Error("empty analyses returned entries")
	}
}

func TestAssortativityStarNegative(t *testing.T) {
	// A star is maximally disassortative: degree-1 leaves link only to
	// the hub. r = -1.
	var pairs [][2]int32
	for i := int32(1); i < 6; i++ {
		pairs = append(pairs, [2]int32{0, i})
	}
	g, err := graph.FromPairs(6, true, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if r := Assortativity(g); math.Abs(r+1) > 1e-9 {
		t.Errorf("star assortativity = %g, want -1", r)
	}
}

func TestAssortativityRegularNaN(t *testing.T) {
	// A cycle is degree-regular: zero variance, undefined correlation.
	var pairs [][2]int32
	for i := 0; i < 6; i++ {
		pairs = append(pairs, [2]int32{int32(i), int32((i + 1) % 6)})
	}
	g, err := graph.FromPairs(6, true, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if r := Assortativity(g); !math.IsNaN(r) {
		t.Errorf("regular graph assortativity = %g, want NaN", r)
	}
}

func TestAssortativityRange(t *testing.T) {
	g, err := gen.BarabasiAlbert(500, 3, 41, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	r := Assortativity(g)
	if math.IsNaN(r) || r < -1 || r > 1 {
		t.Errorf("BA assortativity = %g", r)
	}
	// Preferential attachment is known to be non-assortative to
	// disassortative; it must not come out strongly positive.
	if r > 0.3 {
		t.Errorf("BA assortativity suspiciously positive: %g", r)
	}
}

func TestAssortativityEmpty(t *testing.T) {
	g, _ := graph.FromPairs(3, true, nil)
	if r := Assortativity(g); !math.IsNaN(r) {
		t.Errorf("edgeless assortativity = %g, want NaN", r)
	}
}
