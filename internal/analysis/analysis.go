// Package analysis derives the complex-network statistics that motivate
// the paper's introduction — eccentricity, diameter, radius, average path
// length, closeness and harmonic centrality, reachability — from an APSP
// distance matrix, plus connected-component decomposition computed
// directly on the graph. These are the downstream consumers a user of the
// APSP library actually runs it for.
package analysis

import (
	"math"
	"sort"

	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// Eccentricities returns, per vertex, the maximum finite shortest-path
// distance to any other vertex. A vertex that reaches no other vertex has
// eccentricity 0; unreachable vertices are ignored, the convention used
// for disconnected real-world graphs.
func Eccentricities(D *matrix.Matrix) []matrix.Dist {
	n := D.N()
	ecc := make([]matrix.Dist, n)
	for i := 0; i < n; i++ {
		row := D.Row(i)
		var e matrix.Dist
		for j, d := range row {
			if j != i && d != matrix.Inf && d > e {
				e = d
			}
		}
		ecc[i] = e
	}
	return ecc
}

// Diameter returns the maximum eccentricity: the longest shortest path in
// the graph (over reachable pairs). Zero for an empty or edgeless graph.
func Diameter(D *matrix.Matrix) matrix.Dist {
	var diam matrix.Dist
	for _, e := range Eccentricities(D) {
		if e > diam {
			diam = e
		}
	}
	return diam
}

// Radius returns the minimum non-zero eccentricity — the eccentricity of
// the most central vertex. Vertices that reach nothing are skipped; zero
// is returned if every vertex is isolated.
func Radius(D *matrix.Matrix) matrix.Dist {
	r := matrix.Inf
	for _, e := range Eccentricities(D) {
		if e > 0 && e < r {
			r = e
		}
	}
	if r == matrix.Inf {
		return 0
	}
	return r
}

// AveragePathLength returns the mean shortest-path distance over all
// ordered reachable pairs (i, j), i != j. NaN for graphs with no such pair.
func AveragePathLength(D *matrix.Matrix) float64 {
	n := D.N()
	var sum float64
	var count int64
	for i := 0; i < n; i++ {
		row := D.Row(i)
		for j, d := range row {
			if j != i && d != matrix.Inf {
				sum += float64(d)
				count++
			}
		}
	}
	if count == 0 {
		return math.NaN()
	}
	return sum / float64(count)
}

// Closeness returns the Wasserman–Faust closeness centrality of every
// vertex: ((r-1)/(n-1)) * ((r-1)/S) where r is the number of vertices the
// vertex reaches (including itself) and S the sum of distances to them.
// The correction factor makes scores comparable across components of a
// disconnected graph. Vertices reaching nothing score 0.
func Closeness(D *matrix.Matrix) []float64 {
	n := D.N()
	out := make([]float64, n)
	if n <= 1 {
		return out
	}
	for i := 0; i < n; i++ {
		row := D.Row(i)
		var sum float64
		reach := 0
		for j, d := range row {
			if j != i && d != matrix.Inf {
				sum += float64(d)
				reach++
			}
		}
		if reach == 0 || sum == 0 {
			continue
		}
		r := float64(reach)
		out[i] = (r / float64(n-1)) * (r / sum)
	}
	return out
}

// Harmonic returns the harmonic centrality of every vertex: the sum of
// reciprocal distances to all other vertices, with 1/Inf = 0. Unlike
// closeness it needs no disconnection correction.
func Harmonic(D *matrix.Matrix) []float64 {
	n := D.N()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		row := D.Row(i)
		var sum float64
		for j, d := range row {
			if j != i && d != matrix.Inf && d > 0 {
				sum += 1 / float64(d)
			}
		}
		out[i] = sum
	}
	return out
}

// ReachableCounts returns, per vertex, the number of vertices it reaches
// (excluding itself).
func ReachableCounts(D *matrix.Matrix) []int {
	n := D.N()
	out := make([]int, n)
	for i := 0; i < n; i++ {
		row := D.Row(i)
		c := 0
		for j, d := range row {
			if j != i && d != matrix.Inf {
				c++
			}
		}
		out[i] = c
	}
	return out
}

// TopK returns the indices of the k largest values, ties broken by lower
// index, sorted by decreasing value. k is clamped to len(values).
func TopK(values []float64, k int) []int {
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return values[idx[a]] > values[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	if k < 0 {
		k = 0
	}
	return idx[:k]
}

// Components labels the weakly connected components of g: comp[v] is the
// component id of v (ids are dense, assigned in order of lowest member).
// For undirected graphs weak and strong components coincide.
func Components(g *graph.Graph) []int {
	n := g.N()
	// Weak connectivity needs both edge directions; build the reverse
	// adjacency only if the graph is directed.
	var rev *graph.Graph
	if !g.Undirected() {
		rev = g.Transpose()
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	queue := make([]int32, 0, 64)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := next
		next++
		comp[s] = id
		queue = queue[:0]
		queue = append(queue, int32(s))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.Neighbors(u) {
				if comp[v] < 0 {
					comp[v] = id
					queue = append(queue, v)
				}
			}
			if rev != nil {
				for _, v := range rev.Neighbors(u) {
					if comp[v] < 0 {
						comp[v] = id
						queue = append(queue, v)
					}
				}
			}
		}
	}
	return comp
}

// ComponentSizes returns the size of each component id in comp.
func ComponentSizes(comp []int) []int {
	max := -1
	for _, c := range comp {
		if c > max {
			max = c
		}
	}
	sizes := make([]int, max+1)
	for _, c := range comp {
		sizes[c]++
	}
	return sizes
}

// LargestComponent returns the vertices of the largest weakly connected
// component (ties broken by lowest component id).
func LargestComponent(g *graph.Graph) []int32 {
	comp := Components(g)
	sizes := ComponentSizes(comp)
	best := 0
	for i, s := range sizes {
		if s > sizes[best] {
			best = i
		}
	}
	var out []int32
	for v, c := range comp {
		if c == best {
			out = append(out, int32(v))
		}
	}
	return out
}

// DegreeStats summarizes a degree histogram for reporting: count of
// vertices, arc total, min/max/mean degree.
type DegreeStats struct {
	Vertices int
	Arcs     int64
	Min, Max int
	Mean     float64
}

// Degrees computes DegreeStats for g.
func Degrees(g *graph.Graph) DegreeStats {
	min, max := g.MinMaxDegree()
	st := DegreeStats{Vertices: g.N(), Arcs: g.NumArcs(), Min: min, Max: max}
	if st.Vertices > 0 {
		st.Mean = float64(st.Arcs) / float64(st.Vertices)
	}
	return st
}

// Assortativity returns the degree assortativity coefficient (Newman):
// the Pearson correlation of the degrees at either end of each edge,
// in [-1, 1]. Social networks tend positive (hubs link to hubs);
// technological and biological networks, and preferential-attachment
// models, tend negative. NaN when degenerate (no edges or zero variance).
func Assortativity(g *graph.Graph) float64 {
	var sx, sy, sxy, sxx, syy float64
	var m float64
	for u := int32(0); u < int32(g.N()); u++ {
		du := float64(g.OutDegree(u))
		for _, v := range g.Neighbors(u) {
			dv := float64(g.OutDegree(v))
			sx += du
			sy += dv
			sxy += du * dv
			sxx += du * du
			syy += dv * dv
			m++
		}
	}
	if m == 0 {
		return math.NaN()
	}
	num := sxy/m - (sx/m)*(sy/m)
	den := math.Sqrt(sxx/m-(sx/m)*(sx/m)) * math.Sqrt(syy/m-(sy/m)*(sy/m))
	if den == 0 {
		return math.NaN()
	}
	return num / den
}
