package analysis

import (
	"sort"

	"parapsp/internal/graph"
	"parapsp/internal/sched"
)

// LocalClustering returns each vertex's local clustering coefficient: the
// fraction of its neighbour pairs that are themselves connected. Together
// with a short average path length, a high clustering coefficient is the
// "small-world" signature (Watts & Strogatz, reference [18] of the paper)
// that the paper's background attributes to real complex networks.
//
// The computation treats the graph as undirected (an arc in either
// direction links a neighbour pair) and is parallelized over vertices.
// Vertices of degree < 2 have coefficient 0 by convention.
func LocalClustering(g *graph.Graph, workers int) []float64 {
	n := g.N()
	out := make([]float64, n)
	// Sorted adjacency copies enable O(log d) membership tests; CSR
	// adjacency is already sorted by construction (builder sorts), but we
	// do not rely on that invariant here.
	adjSorted := make([][]int32, n)
	sched.ParallelFor(n, workers, sched.Block, func(v int) {
		src := g.Neighbors(int32(v))
		a := make([]int32, len(src))
		copy(a, src)
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		adjSorted[v] = a
	})
	contains := func(a []int32, x int32) bool {
		i := sort.Search(len(a), func(i int) bool { return a[i] >= x })
		return i < len(a) && a[i] == x
	}
	sched.ParallelFor(n, workers, sched.DynamicChunk, func(v int) {
		a := adjSorted[v]
		if len(a) < 2 {
			return
		}
		links := 0
		pairs := 0
		for i := 0; i < len(a); i++ {
			for j := i + 1; j < len(a); j++ {
				if a[i] == a[j] {
					continue // parallel arcs to the same neighbour
				}
				pairs++
				if contains(adjSorted[a[i]], a[j]) || contains(adjSorted[a[j]], a[i]) {
					links++
				}
			}
		}
		if pairs > 0 {
			out[v] = float64(links) / float64(pairs)
		}
	})
	return out
}

// GlobalClustering returns the mean local clustering coefficient over
// vertices of degree >= 2 (the Watts-Strogatz network average). Zero for
// graphs with no such vertex.
func GlobalClustering(g *graph.Graph, workers int) float64 {
	local := LocalClustering(g, workers)
	var sum float64
	count := 0
	for v, c := range local {
		if g.OutDegree(int32(v)) >= 2 {
			sum += c
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
