package analysis

import (
	"testing"

	"parapsp/internal/graph"
)

// TestFeaturesPath pins the FeatureSet on an undirected path: regular
// degrees (skew ≈ 1 against the interior mean) and a diameter lower bound
// that the double sweep finds exactly (the path IS its own diameter).
func TestFeaturesPath(t *testing.T) {
	var pairs [][2]int32
	for i := 0; i < 9; i++ {
		pairs = append(pairs, [2]int32{int32(i), int32(i + 1)})
	}
	g, err := graph.FromPairs(10, true, pairs)
	if err != nil {
		t.Fatal(err)
	}
	fs := Features(g)
	if fs.Vertices != 10 || fs.Arcs != 18 {
		t.Fatalf("n=%d m=%d, want 10/18", fs.Vertices, fs.Arcs)
	}
	if fs.Weighted || fs.Directed {
		t.Errorf("weighted=%v directed=%v, want false/false", fs.Weighted, fs.Directed)
	}
	if fs.MinDegree != 1 || fs.MaxDegree != 2 {
		t.Errorf("degree range [%d,%d], want [1,2]", fs.MinDegree, fs.MaxDegree)
	}
	if fs.DiameterLB != 9 {
		t.Errorf("DiameterLB = %d, want 9 (the path length)", fs.DiameterLB)
	}
	if fs.DegreeSkew > 1.2 {
		t.Errorf("DegreeSkew = %f, want ≈1 on a path", fs.DegreeSkew)
	}
}

// TestFeaturesStar pins the heavy-tail signal: a star's hub makes the
// skew equal max/mean = (n-1)/mean, far above any regular graph.
func TestFeaturesStar(t *testing.T) {
	var pairs [][2]int32
	for i := 1; i < 33; i++ {
		pairs = append(pairs, [2]int32{0, int32(i)})
	}
	g, err := graph.FromPairs(33, true, pairs)
	if err != nil {
		t.Fatal(err)
	}
	fs := Features(g)
	if fs.MaxDegree != 32 {
		t.Fatalf("MaxDegree = %d, want 32", fs.MaxDegree)
	}
	if fs.DegreeSkew < 10 {
		t.Errorf("DegreeSkew = %f, want ≫ 1 on a star", fs.DegreeSkew)
	}
	if fs.DiameterLB != 2 {
		t.Errorf("DiameterLB = %d, want 2", fs.DiameterLB)
	}
}

// TestFeaturesEmpty covers the degenerate shapes.
func TestFeaturesEmpty(t *testing.T) {
	g, err := graph.FromPairs(0, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fs := Features(g); fs.Vertices != 0 {
		t.Errorf("empty graph: %+v", fs)
	}
	g, err = graph.FromPairs(3, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := Features(g)
	if fs.Arcs != 0 || fs.DiameterLB != 0 || fs.DegreeSkew != 0 {
		t.Errorf("edgeless graph: %+v", fs)
	}
}
