package analysis

import (
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
	"parapsp/internal/sched"
)

// DiameterBounds estimates the diameter of an unweighted graph without a
// full APSP: the classic iterated double-sweep. Starting from the
// highest-degree vertex, BFS finds a farthest vertex u; BFS from u finds
// a farthest vertex w at distance L, a *lower* bound; the eccentricity of
// the middle vertex of the u-w path gives an upper bound (2x the middle
// eccentricity bounds any path through it). The sweep repeats `sweeps`
// times from the last farthest vertex, keeping the best bounds.
//
// On complex networks the bounds usually meet after a few sweeps — this
// is what makes diameter queries affordable on graphs whose O(n^2) matrix
// does not fit, complementing the exact APSP path of the library.
// Disconnected graphs get one sweep series per weak component (the
// diameter — the largest finite distance — may live in any of them); the
// returned bounds cover the worst component. It returns (0, 0) for empty
// or edgeless graphs.
func DiameterBounds(g *graph.Graph, sweeps int) (lower, upper matrix.Dist) {
	n := g.N()
	if n == 0 {
		return 0, 0
	}
	if sweeps < 1 {
		sweeps = 1
	}
	// Directed graphs need forward+backward BFS for eccentricity upper
	// bounds; this estimator targets the paper's undirected analysis
	// datasets and treats arcs as traversable both ways.
	var rev *graph.Graph
	if !g.Undirected() {
		rev = g.Transpose()
	}

	dist := make([]matrix.Dist, n)
	parent := make([]int32, n)
	bfs := func(s int32) (far int32, ecc matrix.Dist) {
		for i := range dist {
			dist[i] = matrix.Inf
			parent[i] = -1
		}
		dist[s] = 0
		q := make([]int32, 0, 64)
		q = append(q, s)
		far, ecc = s, 0
		for head := 0; head < len(q); head++ {
			v := q[head]
			nd := dist[v] + 1
			visit := func(u int32) {
				if dist[u] == matrix.Inf {
					dist[u] = nd
					parent[u] = v
					q = append(q, u)
					if nd > ecc {
						ecc = nd
						far = u
					}
				}
			}
			for _, u := range g.Neighbors(v) {
				visit(u)
			}
			if rev != nil {
				for _, u := range rev.Neighbors(v) {
					visit(u)
				}
			}
		}
		return far, ecc
	}

	// One sweep series per weak component, each started from the
	// component's highest-degree vertex — the heuristic that works best on
	// power-law graphs (it sits near the core). A single component's
	// bounds say nothing about the others, and the diameter may live in
	// any of them.
	comp := Components(g)
	starts := map[int]int32{}
	for v := 0; v < n; v++ {
		c := comp[v]
		if s, ok := starts[c]; !ok || g.OutDegree(int32(v)) > g.OutDegree(s) {
			starts[c] = int32(v)
		}
	}

	sweep := func(start int32) (lo, up matrix.Dist) {
		lo, up = 0, matrix.Inf
		u, _ := bfs(start)
		for s := 0; s < sweeps; s++ {
			w, ecc := bfs(u)
			if ecc > lo {
				lo = ecc
			}
			// Walk to the middle of the u-w path and bound from there:
			// diameter <= 2 * ecc(middle).
			mid := w
			for step := matrix.Dist(0); step < ecc/2; step++ {
				mid = parent[mid]
			}
			_, midEcc := bfs(mid)
			if ub := 2 * midEcc; ub < up {
				up = ub
			}
			if up < lo {
				up = lo // bounds from disjoint sweeps may cross; clamp
			}
			if lo == up {
				break
			}
			u = w
		}
		if up == matrix.Inf {
			up = lo
		}
		return lo, up
	}

	for _, start := range starts {
		lo, up := sweep(start)
		if lo > lower {
			lower = lo
		}
		if up > upper {
			upper = up
		}
	}
	return lower, upper
}

// SSSPDistances runs a plain BFS/SPFA single-source computation into a
// fresh slice — the one-row convenience the library exposes for callers
// who need a handful of rows without SolveSubset's bookkeeping.
func SSSPDistances(g *graph.Graph, source int32) []matrix.Dist {
	n := g.N()
	dist := make([]matrix.Dist, n)
	for i := range dist {
		dist[i] = matrix.Inf
	}
	dist[source] = 0
	inQ := make([]bool, n)
	q := make([]int32, 0, 64)
	q = append(q, source)
	inQ[source] = true
	for head := 0; head < len(q); head++ {
		t := q[head]
		inQ[t] = false
		dt := dist[t]
		adj, w := g.NeighborsW(t)
		for i, v := range adj {
			wt := matrix.Dist(1)
			if w != nil {
				wt = w[i]
			}
			if nd := matrix.AddSat(dt, wt); nd < dist[v] {
				dist[v] = nd
				if !inQ[v] {
					inQ[v] = true
					q = append(q, v)
				}
			}
		}
	}
	return dist
}

// PageRank computes the stationary PageRank vector by parallel power
// iteration with uniform teleportation: damping d, convergence when the
// L1 change drops below tol (or after maxIter rounds). Dangling mass is
// redistributed uniformly. Scores sum to 1.
func PageRank(g *graph.Graph, damping float64, tol float64, maxIter, workers int) []float64 {
	n := g.N()
	if n == 0 {
		return []float64{}
	}
	if damping <= 0 || damping >= 1 {
		damping = 0.85
	}
	if tol <= 0 {
		tol = 1e-9
	}
	if maxIter < 1 {
		maxIter = 100
	}
	workers = sched.Workers(workers)

	// Pull formulation over the transpose: rank[v] = base + d * sum over
	// in-neighbours u of rank[u]/outdeg(u). Pulling lets each output cell
	// be written by one worker — no atomics.
	rev := g.Transpose()
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	outDeg := g.Degrees()

	for iter := 0; iter < maxIter; iter++ {
		var dangling float64
		for v := 0; v < n; v++ {
			if outDeg[v] == 0 {
				dangling += rank[v]
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		sched.ParallelFor(n, workers, sched.Block, func(v int) {
			sum := 0.0
			for _, u := range rev.Neighbors(int32(v)) {
				sum += rank[u] / float64(outDeg[u])
			}
			next[v] = base + damping*sum
		})
		var delta float64
		for v := 0; v < n; v++ {
			d := next[v] - rank[v]
			if d < 0 {
				d = -d
			}
			delta += d
		}
		rank, next = next, rank
		if delta < tol {
			break
		}
	}
	return rank
}
