package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parapsp/internal/gen"
	"parapsp/internal/graph"
)

func TestKCorePath(t *testing.T) {
	g, err := graph.FromPairs(4, true, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range KCore(g) {
		if c != 1 {
			t.Errorf("path core[%d] = %d, want 1", v, c)
		}
	}
}

func TestKCoreTriangleWithTail(t *testing.T) {
	// Triangle 0-1-2 plus tail 2-3: triangle is 2-core, tail 1-core.
	g, err := graph.FromPairs(4, true, [][2]int32{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	core := KCore(g)
	want := []int{2, 2, 2, 1}
	for v := range want {
		if core[v] != want[v] {
			t.Errorf("core[%d] = %d, want %d", v, core[v], want[v])
		}
	}
	if Degeneracy(g) != 2 {
		t.Errorf("degeneracy = %d", Degeneracy(g))
	}
}

func TestKCoreClique(t *testing.T) {
	g, err := gen.ErdosRenyiGNP(6, 1, true, 1, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range KCore(g) {
		if c != 5 {
			t.Errorf("K6 core[%d] = %d, want 5", v, c)
		}
	}
}

func TestKCoreBADegeneracy(t *testing.T) {
	// BA(n, m) has degeneracy exactly m: every non-seed vertex had degree
	// m at insertion, and the seed clique K_{m+1} is m-degenerate.
	for _, m := range []int{2, 3, 5} {
		g, err := gen.BarabasiAlbert(400, m, int64(m), gen.Weighting{})
		if err != nil {
			t.Fatal(err)
		}
		if d := Degeneracy(g); d != m {
			t.Errorf("BA(400,%d) degeneracy = %d, want %d", m, d, m)
		}
	}
}

func TestKCoreDirectedUsesTotalDegree(t *testing.T) {
	// Directed triangle (cycle): total degree 2 everywhere -> core 2.
	g, err := graph.FromPairs(3, false, [][2]int32{{0, 1}, {1, 2}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range KCore(g) {
		if c != 2 {
			t.Errorf("directed cycle core[%d] = %d, want 2", v, c)
		}
	}
}

func TestKCoreEmptyAndIsolated(t *testing.T) {
	g0, _ := graph.FromPairs(0, true, nil)
	if len(KCore(g0)) != 0 {
		t.Error("empty graph mishandled")
	}
	g3, _ := graph.FromPairs(3, true, nil)
	for v, c := range KCore(g3) {
		if c != 0 {
			t.Errorf("isolated core[%d] = %d", v, c)
		}
	}
	if Degeneracy(g3) != 0 {
		t.Error("edgeless degeneracy non-zero")
	}
}

// Property: the k-core definition holds — in the subgraph induced by
// {v : core[v] >= k}, every vertex has at least k neighbours within the
// subgraph, for every k up to the degeneracy.
func TestKCoreDefinitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		g, err := gen.ErdosRenyiGNM(n, rng.Intn(4*n), true, seed, gen.Weighting{})
		if err != nil {
			return false
		}
		core := KCore(g)
		maxK := 0
		for _, c := range core {
			if c > maxK {
				maxK = c
			}
		}
		for k := 1; k <= maxK; k++ {
			for v := 0; v < n; v++ {
				if core[v] < k {
					continue
				}
				inside := 0
				for _, u := range g.Neighbors(int32(v)) {
					if core[u] >= k {
						inside++
					}
				}
				if inside < k {
					t.Logf("seed %d: vertex %d in %d-core has only %d in-core neighbours", seed, v, k, inside)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: core numbers are maximal — for k = core[v]+1 the vertex is
// peeled before its in-subgraph degree reaches k (checked indirectly by
// comparing with a brute-force iterative-deletion computation).
func TestKCoreMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g, err := gen.ErdosRenyiGNM(n, rng.Intn(3*n), true, seed, gen.Weighting{})
		if err != nil {
			return false
		}
		want := bruteForceCore(g)
		got := KCore(g)
		for v := range want {
			if got[v] != want[v] {
				t.Logf("seed %d: core[%d] = %d, want %d", seed, v, got[v], want[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// bruteForceCore computes core numbers by repeated deletion: for each k,
// iteratively remove vertices with degree < k; survivors have core >= k.
func bruteForceCore(g *graph.Graph) []int {
	n := g.N()
	core := make([]int, n)
	for k := 1; ; k++ {
		alive := make([]bool, n)
		for v := range alive {
			alive[v] = true
		}
		for changed := true; changed; {
			changed = false
			for v := 0; v < n; v++ {
				if !alive[v] {
					continue
				}
				d := 0
				for _, u := range g.Neighbors(int32(v)) {
					if alive[u] {
						d++
					}
				}
				if d < k {
					alive[v] = false
					changed = true
				}
			}
		}
		any := false
		for v := 0; v < n; v++ {
			if alive[v] {
				core[v] = k
				any = true
			}
		}
		if !any {
			return core
		}
	}
}
