package analysis

import (
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
	"parapsp/internal/sched"
)

// Betweenness computes exact betweenness centrality for an *unweighted*
// graph with Brandes' algorithm (one BFS + dependency accumulation per
// source), parallelized over sources the same way the paper parallelizes
// its SSSP runs: independent per-source searches with per-worker scratch,
// dynamic-cyclic scheduling. For undirected graphs scores are halved, the
// usual convention. It panics on weighted graphs (a weighted Brandes needs
// a priority queue; out of scope here).
func Betweenness(g *graph.Graph, workers int) []float64 {
	if g.Weighted() {
		panic("analysis: Betweenness requires an unweighted graph")
	}
	n := g.N()
	bc := make([]float64, n)

	type scratch struct {
		dist  []int32
		sigma []float64 // shortest-path counts
		delta []float64 // dependency accumulator
		queue []int32
		local []float64 // per-worker betweenness accumulator
	}
	workers = sched.Workers(workers)
	scratches := make([]*scratch, workers)

	sched.ParallelWorkers(n, workers, sched.DynamicCyclic, func(w, si int) {
		sc := scratches[w]
		if sc == nil {
			sc = &scratch{
				dist:  make([]int32, n),
				sigma: make([]float64, n),
				delta: make([]float64, n),
				queue: make([]int32, 0, n),
				local: make([]float64, n),
			}
			scratches[w] = sc
		}
		s := int32(si)
		for i := 0; i < n; i++ {
			sc.dist[i] = -1
			sc.sigma[i] = 0
			sc.delta[i] = 0
		}
		sc.dist[s] = 0
		sc.sigma[s] = 1
		q := sc.queue[:0]
		q = append(q, s)
		for head := 0; head < len(q); head++ {
			v := q[head]
			dv := sc.dist[v]
			for _, t := range g.Neighbors(v) {
				if sc.dist[t] < 0 {
					sc.dist[t] = dv + 1
					q = append(q, t)
				}
				if sc.dist[t] == dv+1 {
					sc.sigma[t] += sc.sigma[v]
				}
			}
		}
		// Dependency accumulation in reverse BFS order. Scanning v's
		// out-neighbors t with dist[t] == dist[v]+1 enumerates exactly
		// the vertices v is a predecessor of; reverse BFS order
		// guarantees their deltas are already final.
		for i := len(q) - 1; i >= 0; i-- {
			v := q[i]
			dv := sc.dist[v]
			for _, t := range g.Neighbors(v) {
				if sc.dist[t] == dv+1 && sc.sigma[t] > 0 {
					sc.delta[v] += sc.sigma[v] / sc.sigma[t] * (1 + sc.delta[t])
				}
			}
			if v != s {
				sc.local[v] += sc.delta[v]
			}
		}
		sc.queue = q
	})

	// Workers have finished (ParallelWorkers waits), so their private
	// accumulators can be merged without locking.
	for _, sc := range scratches {
		if sc == nil {
			continue
		}
		for v, x := range sc.local {
			bc[v] += x
		}
	}
	if g.Undirected() {
		for v := range bc {
			bc[v] /= 2
		}
	}
	return bc
}

// SCC computes strongly connected components with an iterative Tarjan
// algorithm (explicit stack, so million-vertex graphs cannot overflow the
// goroutine stack). comp[v] is the component id of v; ids are dense and
// assigned in reverse topological order of the condensation (a property of
// Tarjan's algorithm). Undirected graphs simply get their connected
// components.
func SCC(g *graph.Graph) []int {
	n := g.N()
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int32
	next := int32(0)
	nComp := 0

	type frame struct {
		v    int32
		edge int // next adjacency offset to explore
	}
	var call []frame

	for s := 0; s < n; s++ {
		if index[s] != unvisited {
			continue
		}
		call = call[:0]
		call = append(call, frame{v: int32(s)})
		index[s] = next
		low[s] = next
		next++
		stack = append(stack, int32(s))
		onStack[s] = true

		for len(call) > 0 {
			f := &call[len(call)-1]
			adj := g.Neighbors(f.v)
			advanced := false
			for f.edge < len(adj) {
				t := adj[f.edge]
				f.edge++
				if index[t] == unvisited {
					index[t] = next
					low[t] = next
					next++
					stack = append(stack, t)
					onStack[t] = true
					call = append(call, frame{v: t})
					advanced = true
					break
				}
				if onStack[t] && index[t] < low[f.v] {
					low[f.v] = index[t]
				}
			}
			if advanced {
				continue
			}
			// f.v is finished.
			v := f.v
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := &call[len(call)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp
}

// BetweennessWeighted computes exact betweenness centrality for graphs
// with positive edge weights: Brandes' algorithm with a Dijkstra inner
// loop (lazy-deletion binary heap) instead of BFS. It accepts unweighted
// graphs too (every edge weighs 1) and then agrees with Betweenness;
// the BFS variant remains the faster choice there. Parallelized over
// sources like the rest of the repository. Undirected scores are halved.
func BetweennessWeighted(g *graph.Graph, workers int) []float64 {
	n := g.N()
	bc := make([]float64, n)

	type item struct {
		v int32
		d matrix.Dist
	}
	type scratch struct {
		dist    []matrix.Dist
		sigma   []float64
		delta   []float64
		settled []int32 // settle order, for reverse accumulation
		done    []bool
		heap    []item
		local   []float64
	}
	workers = sched.Workers(workers)
	scratches := make([]*scratch, workers)

	push := func(h []item, it item) []item {
		h = append(h, it)
		i := len(h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if h[p].d <= h[i].d {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
		return h
	}
	pop := func(h []item) ([]item, item) {
		top := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			s := i
			if l < last && h[l].d < h[s].d {
				s = l
			}
			if r < last && h[r].d < h[s].d {
				s = r
			}
			if s == i {
				break
			}
			h[s], h[i] = h[i], h[s]
			i = s
		}
		return h, top
	}

	sched.ParallelWorkers(n, workers, sched.DynamicCyclic, func(w, si int) {
		sc := scratches[w]
		if sc == nil {
			sc = &scratch{
				dist:  make([]matrix.Dist, n),
				sigma: make([]float64, n),
				delta: make([]float64, n),
				done:  make([]bool, n),
				local: make([]float64, n),
			}
			scratches[w] = sc
		}
		s := int32(si)
		for i := 0; i < n; i++ {
			sc.dist[i] = matrix.Inf
			sc.sigma[i] = 0
			sc.delta[i] = 0
			sc.done[i] = false
		}
		sc.settled = sc.settled[:0]
		sc.heap = sc.heap[:0]
		sc.dist[s] = 0
		sc.sigma[s] = 1
		sc.heap = push(sc.heap, item{s, 0})
		for len(sc.heap) > 0 {
			var it item
			sc.heap, it = pop(sc.heap)
			if sc.done[it.v] || it.d > sc.dist[it.v] {
				continue
			}
			sc.done[it.v] = true
			sc.settled = append(sc.settled, it.v)
			adj, wts := g.NeighborsW(it.v)
			for j, t := range adj {
				wt := matrix.Dist(1)
				if wts != nil {
					wt = wts[j]
				}
				nd := matrix.AddSat(it.d, wt)
				switch {
				case nd < sc.dist[t]:
					sc.dist[t] = nd
					sc.sigma[t] = sc.sigma[it.v]
					sc.heap = push(sc.heap, item{t, nd})
				case nd == sc.dist[t] && nd != matrix.Inf:
					sc.sigma[t] += sc.sigma[it.v]
				}
			}
		}
		// Reverse settle order: successors finalized before predecessors.
		for i := len(sc.settled) - 1; i >= 0; i-- {
			v := sc.settled[i]
			dv := sc.dist[v]
			adj, wts := g.NeighborsW(v)
			for j, t := range adj {
				wt := matrix.Dist(1)
				if wts != nil {
					wt = wts[j]
				}
				if sc.dist[t] == matrix.AddSat(dv, wt) && sc.sigma[t] > 0 && sc.dist[t] != matrix.Inf {
					sc.delta[v] += sc.sigma[v] / sc.sigma[t] * (1 + sc.delta[t])
				}
			}
			if v != s {
				sc.local[v] += sc.delta[v]
			}
		}
	})

	for _, sc := range scratches {
		if sc == nil {
			continue
		}
		for v, x := range sc.local {
			bc[v] += x
		}
	}
	if g.Undirected() {
		for v := range bc {
			bc[v] /= 2
		}
	}
	return bc
}
