package analysis

import (
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// FeatureSet is the cheap structural summary the adaptive kernel selector
// keys on: everything here is computable in O(n + m) — one degree scan
// plus two BFS sweeps — so computing it before a solve costs a vanishing
// fraction of the solve itself on any graph where kernel choice matters.
type FeatureSet struct {
	Vertices int
	Arcs     int64
	Weighted bool
	Directed bool
	// Degree statistics over out-degrees. DegreeSkew is max/mean — ≈1 on
	// regular meshes, large on heavy-tailed (power-law) graphs, the
	// single cheapest heavy-tail indicator.
	MinDegree  int
	MaxDegree  int
	MeanDegree float64
	DegreeSkew float64
	// DiameterLB is a sampled unweighted-hop diameter lower bound: the
	// eccentricity found by a double BFS sweep from the highest-degree
	// vertex (arcs traversed both ways on directed graphs, as in
	// DiameterBounds). Small values mean frontier-wide searches
	// (small-world graphs); values growing with n mean long-chain meshes.
	DiameterLB matrix.Dist
}

// Features computes the FeatureSet of g. Graphs are immutable once built,
// so callers may cache the result per graph.
func Features(g *graph.Graph) FeatureSet {
	n := g.N()
	fs := FeatureSet{
		Vertices: n,
		Arcs:     g.NumArcs(),
		Weighted: g.Weighted(),
		Directed: !g.Undirected(),
	}
	if n == 0 {
		return fs
	}
	fs.MinDegree, fs.MaxDegree = g.MinMaxDegree()
	fs.MeanDegree = float64(fs.Arcs) / float64(n)
	if fs.MeanDegree > 0 {
		fs.DegreeSkew = float64(fs.MaxDegree) / fs.MeanDegree
	}
	if fs.Arcs == 0 {
		return fs
	}

	// Double sweep from the highest-degree vertex: BFS to the farthest
	// vertex u, then BFS from u; u's eccentricity is the classic diameter
	// lower bound (DiameterBounds runs the iterated version — here one
	// sweep per graph is the whole budget).
	start := int32(0)
	for v := 1; v < n; v++ {
		if g.OutDegree(int32(v)) > g.OutDegree(start) {
			start = int32(v)
		}
	}
	var rev *graph.Graph
	if !g.Undirected() {
		rev = g.Transpose()
	}
	dist := make([]matrix.Dist, n)
	q := make([]int32, 0, 64)
	bfs := func(s int32) (far int32, ecc matrix.Dist) {
		for i := range dist {
			dist[i] = matrix.Inf
		}
		dist[s] = 0
		q = append(q[:0], s)
		far, ecc = s, 0
		for head := 0; head < len(q); head++ {
			v := q[head]
			nd := dist[v] + 1
			visit := func(u int32) {
				if dist[u] == matrix.Inf {
					dist[u] = nd
					q = append(q, u)
					if nd > ecc {
						ecc, far = nd, u
					}
				}
			}
			for _, u := range g.Neighbors(v) {
				visit(u)
			}
			if rev != nil {
				for _, u := range rev.Neighbors(v) {
					visit(u)
				}
			}
		}
		return far, ecc
	}
	u, _ := bfs(start)
	_, fs.DiameterLB = bfs(u)
	return fs
}
