package analysis

import "parapsp/internal/graph"

// KCore computes the core number of every vertex: the largest k such that
// the vertex belongs to a maximal subgraph in which every vertex has
// degree >= k. It uses the classic O(n + m) bucket-peeling algorithm
// (Batagelj & Zaversnik) — the same degrees-are-bounded-by-n insight that
// powers the paper's Section 4 bucket orderings, applied to peeling
// instead of sorting.
//
// Directed graphs are treated as their underlying undirected multigraph
// (in-degree + out-degree), the usual convention for k-core on directed
// complex networks.
func KCore(g *graph.Graph) []int {
	n := g.N()
	if n == 0 {
		return []int{}
	}
	deg := make([]int, n)
	var rev *graph.Graph
	if g.Undirected() {
		for v := 0; v < n; v++ {
			deg[v] = g.OutDegree(int32(v))
		}
	} else {
		rev = g.Transpose()
		for v := 0; v < n; v++ {
			deg[v] = g.OutDegree(int32(v)) + rev.OutDegree(int32(v))
		}
	}
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}

	// Counting-sort vertices by degree: pos[v] is v's index in vert,
	// which is ordered ascending by current degree; binStart[d] is the
	// first index holding degree d.
	binStart := make([]int, maxDeg+2)
	for _, d := range deg {
		binStart[d+1]++
	}
	for d := 1; d <= maxDeg+1; d++ {
		binStart[d] += binStart[d-1]
	}
	vert := make([]int32, n)
	pos := make([]int, n)
	fill := make([]int, maxDeg+1)
	copy(fill, binStart[:maxDeg+1])
	for v := 0; v < n; v++ {
		p := fill[deg[v]]
		fill[deg[v]]++
		vert[p] = int32(v)
		pos[v] = p
	}

	core := make([]int, n)
	// demote moves u one bucket down after a neighbour was peeled.
	demote := func(u int32) {
		du := deg[u]
		pu := pos[u]
		pw := binStart[du]
		w := vert[pw]
		if u != w {
			vert[pu], vert[pw] = w, u
			pos[u], pos[w] = pw, pu
		}
		binStart[du]++
		deg[u]--
	}
	peel := func(v int32) {
		for _, u := range g.Neighbors(v) {
			if deg[u] > deg[v] {
				demote(u)
			}
		}
		if rev != nil {
			for _, u := range rev.Neighbors(v) {
				if deg[u] > deg[v] {
					demote(u)
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = deg[v]
		peel(v)
	}
	return core
}

// Degeneracy returns the graph's degeneracy: the maximum core number,
// a standard sparsity measure of complex networks.
func Degeneracy(g *graph.Graph) int {
	max := 0
	for _, c := range KCore(g) {
		if c > max {
			max = c
		}
	}
	return max
}
