package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parapsp/internal/gen"
	"parapsp/internal/graph"
)

func TestBetweennessPath(t *testing.T) {
	// Path 0-1-2-3-4: interior betweenness (undirected, halved convention)
	// for vertex at position i counts pairs routed through it: 1<->(3,4),
	// 0<->(2,3,4) etc. For a path of 5, bc = [0, 3, 4, 3, 0].
	var pairs [][2]int32
	for i := 0; i < 4; i++ {
		pairs = append(pairs, [2]int32{int32(i), int32(i + 1)})
	}
	g, err := graph.FromPairs(5, true, pairs)
	if err != nil {
		t.Fatal(err)
	}
	bc := Betweenness(g, 2)
	want := []float64{0, 3, 4, 3, 0}
	for i := range want {
		if math.Abs(bc[i]-want[i]) > 1e-9 {
			t.Errorf("bc[%d] = %g, want %g", i, bc[i], want[i])
		}
	}
}

func TestBetweennessStar(t *testing.T) {
	// Star with hub 0 and 4 leaves: hub carries all C(4,2)=6 leaf pairs.
	var pairs [][2]int32
	for i := int32(1); i < 5; i++ {
		pairs = append(pairs, [2]int32{0, i})
	}
	g, err := graph.FromPairs(5, true, pairs)
	if err != nil {
		t.Fatal(err)
	}
	bc := Betweenness(g, 3)
	if math.Abs(bc[0]-6) > 1e-9 {
		t.Errorf("hub bc = %g, want 6", bc[0])
	}
	for i := 1; i < 5; i++ {
		if bc[i] != 0 {
			t.Errorf("leaf bc[%d] = %g", i, bc[i])
		}
	}
}

func TestBetweennessCycleUniform(t *testing.T) {
	// 6-cycle: symmetric, every vertex equal betweenness.
	var pairs [][2]int32
	for i := 0; i < 6; i++ {
		pairs = append(pairs, [2]int32{int32(i), int32((i + 1) % 6)})
	}
	g, err := graph.FromPairs(6, true, pairs)
	if err != nil {
		t.Fatal(err)
	}
	bc := Betweenness(g, 2)
	for i := 1; i < 6; i++ {
		if math.Abs(bc[i]-bc[0]) > 1e-9 {
			t.Errorf("cycle betweenness not uniform: %v", bc)
		}
	}
	if bc[0] <= 0 {
		t.Errorf("cycle betweenness = %v", bc)
	}
}

func TestBetweennessDirectedChain(t *testing.T) {
	// 0 -> 1 -> 2: vertex 1 lies on the single 0->2 path.
	g, err := graph.FromPairs(3, false, [][2]int32{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	bc := Betweenness(g, 1)
	if math.Abs(bc[1]-1) > 1e-9 || bc[0] != 0 || bc[2] != 0 {
		t.Errorf("directed chain bc = %v", bc)
	}
}

func TestBetweennessSplitShortestPaths(t *testing.T) {
	// Diamond 0->1->3, 0->2->3: vertices 1 and 2 each carry half the
	// single 0->3 pair.
	g, err := graph.FromPairs(4, false, [][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	bc := Betweenness(g, 2)
	if math.Abs(bc[1]-0.5) > 1e-9 || math.Abs(bc[2]-0.5) > 1e-9 {
		t.Errorf("diamond bc = %v", bc)
	}
}

func TestBetweennessWorkerInvariance(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 3, 19, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	a := Betweenness(g, 1)
	b := Betweenness(g, 7)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-6*(1+math.Abs(a[i])) {
			t.Fatalf("bc[%d] differs across worker counts: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestBetweennessPanicsOnWeighted(t *testing.T) {
	g, err := graph.FromEdges(2, false, []graph.Edge{{From: 0, To: 1, W: 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("weighted graph accepted")
		}
	}()
	Betweenness(g, 1)
}

func TestSCCBasics(t *testing.T) {
	// Two 2-cycles joined by a one-way bridge: {0,1} -> {2,3}, plus an
	// isolated vertex 4.
	g, err := graph.FromPairs(5, false, [][2]int32{
		{0, 1}, {1, 0},
		{2, 3}, {3, 2},
		{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	comp := SCC(g)
	if comp[0] != comp[1] || comp[2] != comp[3] {
		t.Fatalf("SCC merged incorrectly: %v", comp)
	}
	if comp[0] == comp[2] || comp[4] == comp[0] || comp[4] == comp[2] {
		t.Fatalf("SCC split incorrectly: %v", comp)
	}
	// Tarjan ids are reverse topological: the sink component {2,3} gets a
	// smaller id than the source component {0,1}.
	if comp[2] > comp[0] {
		t.Errorf("condensation order violated: %v", comp)
	}
}

func TestSCCDAGAllSingletons(t *testing.T) {
	g, err := graph.FromPairs(4, false, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	comp := SCC(g)
	seen := map[int]bool{}
	for _, c := range comp {
		if seen[c] {
			t.Fatalf("DAG has a multi-vertex SCC: %v", comp)
		}
		seen[c] = true
	}
}

func TestSCCFullCycle(t *testing.T) {
	var pairs [][2]int32
	for i := 0; i < 10; i++ {
		pairs = append(pairs, [2]int32{int32(i), int32((i + 1) % 10)})
	}
	g, err := graph.FromPairs(10, false, pairs)
	if err != nil {
		t.Fatal(err)
	}
	comp := SCC(g)
	for _, c := range comp {
		if c != comp[0] {
			t.Fatalf("cycle not one SCC: %v", comp)
		}
	}
}

func TestSCCUndirectedEqualsComponents(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g, err := gen.ErdosRenyiGNM(n, rng.Intn(2*n), true, seed, gen.Weighting{})
		if err != nil {
			return false
		}
		scc := SCC(g)
		cc := Components(g)
		// Same partition: scc[u] == scc[v] iff cc[u] == cc[v].
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if (scc[u] == scc[v]) != (cc[u] == cc[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// SCC agreement with a brute-force reachability check on small random
// directed graphs: u,v strongly connected iff mutually reachable.
func TestSCCMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g, err := gen.ErdosRenyiGNM(n, rng.Intn(3*n), false, seed, gen.Weighting{})
		if err != nil {
			return false
		}
		reach := make([][]bool, n)
		for s := 0; s < n; s++ {
			reach[s] = make([]bool, n)
			q := []int32{int32(s)}
			reach[s][s] = true
			for head := 0; head < len(q); head++ {
				for _, t := range g.Neighbors(q[head]) {
					if !reach[s][t] {
						reach[s][t] = true
						q = append(q, t)
					}
				}
			}
		}
		comp := SCC(g)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				mutual := reach[u][v] && reach[v][u]
				if mutual != (comp[u] == comp[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSCCEmptyAndSingleton(t *testing.T) {
	g0, _ := graph.FromPairs(0, false, nil)
	if len(SCC(g0)) != 0 {
		t.Error("empty SCC non-empty")
	}
	g1, _ := graph.FromPairs(1, false, nil)
	if c := SCC(g1); len(c) != 1 || c[0] != 0 {
		t.Errorf("singleton SCC = %v", c)
	}
}

func TestBetweennessWeightedMatchesUnweightedOnUnitGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g, err := gen.ErdosRenyiGNM(n, rng.Intn(3*n), rng.Intn(2) == 0, seed, gen.Weighting{})
		if err != nil {
			return false
		}
		a := Betweenness(g, 2)
		b := BetweennessWeighted(g, 3)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-9*(1+math.Abs(a[i])) {
				t.Logf("seed %d: bc[%d] = %g vs %g", seed, i, a[i], b[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBetweennessWeightedRoutesAroundHeavyEdge(t *testing.T) {
	// 0-3 direct weight 10 vs 0-1-2-3 weight 3: all shortest paths route
	// through 1 and 2, giving them positive betweenness; the direct edge
	// carries nothing.
	g, err := graph.FromEdges(4, true, []graph.Edge{
		{From: 0, To: 3, W: 10},
		{From: 0, To: 1, W: 1},
		{From: 1, To: 2, W: 1},
		{From: 2, To: 3, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	bc := BetweennessWeighted(g, 2)
	if bc[1] <= 0 || bc[2] <= 0 {
		t.Errorf("interior bc = %v", bc)
	}
	if bc[0] != 0 || bc[3] != 0 {
		t.Errorf("endpoint bc = %v", bc)
	}
}

func TestBetweennessWeightedSplitPaths(t *testing.T) {
	// Weighted diamond with equal-cost routes: 0->1->3 (2+2) and
	// 0->2->3 (1+3). Each middle vertex carries half of the 0->3 pair.
	g, err := graph.FromEdges(4, false, []graph.Edge{
		{From: 0, To: 1, W: 2},
		{From: 1, To: 3, W: 2},
		{From: 0, To: 2, W: 1},
		{From: 2, To: 3, W: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	bc := BetweennessWeighted(g, 1)
	if math.Abs(bc[1]-0.5) > 1e-9 || math.Abs(bc[2]-0.5) > 1e-9 {
		t.Errorf("diamond bc = %v", bc)
	}
}

func TestBetweennessWeightedWorkerInvariance(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 3, 43, gen.Weighting{Min: 1, Max: 9})
	if err != nil {
		t.Fatal(err)
	}
	a := BetweennessWeighted(g, 1)
	b := BetweennessWeighted(g, 6)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-6*(1+math.Abs(a[i])) {
			t.Fatalf("bc[%d] differs across workers", i)
		}
	}
}
