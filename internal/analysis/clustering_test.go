package analysis

import (
	"math"
	"testing"

	"parapsp/internal/gen"
	"parapsp/internal/graph"
)

func TestClusteringTriangle(t *testing.T) {
	g, err := graph.FromPairs(3, true, [][2]int32{{0, 1}, {1, 2}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	local := LocalClustering(g, 2)
	for v, c := range local {
		if math.Abs(c-1) > 1e-12 {
			t.Errorf("triangle clustering[%d] = %g, want 1", v, c)
		}
	}
	if gc := GlobalClustering(g, 2); math.Abs(gc-1) > 1e-12 {
		t.Errorf("global = %g", gc)
	}
}

func TestClusteringStarIsZero(t *testing.T) {
	var pairs [][2]int32
	for i := int32(1); i < 6; i++ {
		pairs = append(pairs, [2]int32{0, i})
	}
	g, err := graph.FromPairs(6, true, pairs)
	if err != nil {
		t.Fatal(err)
	}
	local := LocalClustering(g, 1)
	for v, c := range local {
		if c != 0 {
			t.Errorf("star clustering[%d] = %g", v, c)
		}
	}
	if GlobalClustering(g, 1) != 0 {
		t.Error("star global non-zero")
	}
}

func TestClusteringSquareWithDiagonal(t *testing.T) {
	// Square 0-1-2-3 plus diagonal 0-2: triangles (0,1,2) and (0,2,3).
	g, err := graph.FromPairs(4, true, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	local := LocalClustering(g, 3)
	// Vertex 0: neighbours {1,2,3}; connected pairs: (1,2),(2,3) of 3 -> 2/3.
	// Vertex 1: neighbours {0,2}; pair (0,2) connected -> 1.
	want := []float64{2.0 / 3.0, 1, 2.0 / 3.0, 1}
	for v := range want {
		if math.Abs(local[v]-want[v]) > 1e-12 {
			t.Errorf("clustering[%d] = %g, want %g", v, local[v], want[v])
		}
	}
}

func TestClusteringWattsStrogatzRing(t *testing.T) {
	// Ring lattice (beta = 0), k = 4: the classic C = 1/2 case.
	g, err := gen.WattsStrogatz(100, 4, 0, 1, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	gc := GlobalClustering(g, 4)
	if math.Abs(gc-0.5) > 1e-9 {
		t.Errorf("ring lattice C = %g, want 0.5", gc)
	}
}

func TestClusteringSmallWorldSignature(t *testing.T) {
	// Watts-Strogatz with small beta keeps clustering high; an ER graph
	// of the same size/density has far lower clustering.
	ws, err := gen.WattsStrogatz(500, 6, 0.05, 2, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	er, err := gen.ErdosRenyiGNM(500, 1500, true, 2, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	cws := GlobalClustering(ws, 4)
	cer := GlobalClustering(er, 4)
	if cws < 3*cer {
		t.Errorf("small-world signature missing: WS C=%g vs ER C=%g", cws, cer)
	}
}

func TestClusteringWorkerInvariance(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 3, 23, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	a := LocalClustering(g, 1)
	b := LocalClustering(g, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clustering[%d] differs across workers", i)
		}
	}
}

func TestClusteringEmptyAndTiny(t *testing.T) {
	g0, _ := graph.FromPairs(0, true, nil)
	if len(LocalClustering(g0, 2)) != 0 || GlobalClustering(g0, 2) != 0 {
		t.Error("empty graph mishandled")
	}
	g2, _ := graph.FromPairs(2, true, [][2]int32{{0, 1}})
	if GlobalClustering(g2, 2) != 0 {
		t.Error("K2 clustering non-zero")
	}
}
