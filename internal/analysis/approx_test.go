package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parapsp/internal/baseline"
	"parapsp/internal/gen"
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

func TestDiameterBoundsContainTruth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		g, err := gen.ErdosRenyiGNM(n, n+rng.Intn(3*n), true, seed, gen.Weighting{})
		if err != nil {
			return false
		}
		truth := Diameter(baseline.BFSAPSP(g))
		lo, hi := DiameterBounds(g, 4)
		if lo > truth || hi < truth {
			t.Logf("seed %d: bounds [%d,%d] exclude diameter %d", seed, lo, hi, truth)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDiameterBoundsExactOnPath(t *testing.T) {
	var pairs [][2]int32
	for i := 0; i < 19; i++ {
		pairs = append(pairs, [2]int32{int32(i), int32(i + 1)})
	}
	g, err := graph.FromPairs(20, true, pairs)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := DiameterBounds(g, 4)
	if lo != 19 {
		t.Errorf("path lower bound = %d, want 19", lo)
	}
	if hi < 19 || hi > 20 {
		t.Errorf("path upper bound = %d", hi)
	}
}

func TestDiameterBoundsScaleFreeTight(t *testing.T) {
	g, err := gen.BarabasiAlbert(2000, 3, 31, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	truth := Diameter(baseline.BFSAPSP(g))
	lo, hi := DiameterBounds(g, 4)
	if lo > truth || hi < truth {
		t.Fatalf("bounds [%d,%d] exclude diameter %d", lo, hi, truth)
	}
	// On scale-free graphs the double sweep is usually exact.
	if hi-lo > 2 {
		t.Errorf("bounds loose on BA graph: [%d,%d] truth %d", lo, hi, truth)
	}
}

func TestDiameterBoundsEdgeCases(t *testing.T) {
	g0, _ := graph.FromPairs(0, true, nil)
	if lo, hi := DiameterBounds(g0, 2); lo != 0 || hi != 0 {
		t.Errorf("empty bounds = [%d,%d]", lo, hi)
	}
	g1, _ := graph.FromPairs(3, true, nil)
	if lo, hi := DiameterBounds(g1, 2); lo != 0 || hi != 0 {
		t.Errorf("edgeless bounds = [%d,%d]", lo, hi)
	}
	// Disconnected: bounds cover the largest component's diameter.
	g2, _ := graph.FromPairs(6, true, [][2]int32{{0, 1}, {1, 2}, {3, 4}})
	lo, _ := DiameterBounds(g2, 3)
	if lo < 1 {
		t.Errorf("disconnected lower bound = %d", lo)
	}
}

func TestSSSPDistances(t *testing.T) {
	g, err := graph.FromPairs(4, false, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	d := SSSPDistances(g, 0)
	want := []matrix.Dist{0, 1, 2, 3}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
	d2 := SSSPDistances(g, 3)
	if d2[0] != matrix.Inf {
		t.Error("backward distance finite on directed path")
	}
}

func TestPageRankUniformOnCycle(t *testing.T) {
	var pairs [][2]int32
	for i := 0; i < 8; i++ {
		pairs = append(pairs, [2]int32{int32(i), int32((i + 1) % 8)})
	}
	g, err := graph.FromPairs(8, false, pairs)
	if err != nil {
		t.Fatal(err)
	}
	pr := PageRank(g, 0.85, 1e-12, 200, 2)
	for v, r := range pr {
		if math.Abs(r-0.125) > 1e-9 {
			t.Errorf("cycle rank[%d] = %g, want 0.125", v, r)
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		g, err := gen.ErdosRenyiGNM(n, rng.Intn(4*n), false, seed, gen.Weighting{})
		if err != nil {
			return false
		}
		pr := PageRank(g, 0.85, 1e-10, 300, 3)
		sum := 0.0
		for _, r := range pr {
			if r < 0 {
				return false
			}
			sum += r
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPageRankHubRanksHighest(t *testing.T) {
	// Star pointing inward: every leaf links to the hub.
	var pairs [][2]int32
	for i := int32(1); i < 10; i++ {
		pairs = append(pairs, [2]int32{i, 0})
	}
	g, err := graph.FromPairs(10, false, pairs)
	if err != nil {
		t.Fatal(err)
	}
	pr := PageRank(g, 0.85, 1e-12, 200, 2)
	if TopK(pr, 1)[0] != 0 {
		t.Errorf("hub not top ranked: %v", pr)
	}
	if pr[0] < 5*pr[1] {
		t.Errorf("hub rank %g not dominant over leaf %g", pr[0], pr[1])
	}
}

func TestPageRankDanglingMass(t *testing.T) {
	// 0 -> 1, 1 dangles. Ranks must still sum to 1 and converge.
	g, err := graph.FromPairs(2, false, [][2]int32{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	pr := PageRank(g, 0.85, 1e-12, 500, 1)
	if math.Abs(pr[0]+pr[1]-1) > 1e-9 {
		t.Errorf("ranks sum to %g", pr[0]+pr[1])
	}
	if pr[1] <= pr[0] {
		t.Errorf("sink rank %g not above source %g", pr[1], pr[0])
	}
}

func TestPageRankDefaultsAndEmpty(t *testing.T) {
	if len(PageRank(mustEmpty(t), 0.85, 1e-9, 10, 2)) != 0 {
		t.Error("empty PageRank non-empty")
	}
	g, _ := graph.FromPairs(3, true, [][2]int32{{0, 1}, {1, 2}})
	// Out-of-range damping/tol/iter fall back to sane defaults.
	pr := PageRank(g, 7, -1, 0, 0)
	sum := 0.0
	for _, r := range pr {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("defaulted PageRank sums to %g", sum)
	}
}

func mustEmpty(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromPairs(0, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPageRankWorkerInvariance(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 3, 37, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	a := PageRank(g, 0.85, 1e-12, 100, 1)
	b := PageRank(g, 0.85, 1e-12, 100, 8)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("rank[%d] differs across workers: %g vs %g", i, a[i], b[i])
		}
	}
}
