package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"

	"parapsp/internal/admit"
	"parapsp/internal/dyn"
	"parapsp/internal/obs"
)

// maxBodyBytes bounds a /batch request body; MaxBytesReader turns larger
// bodies into a read error, which parses as a 400.
const maxBodyBytes = 1 << 20

// solverHeader reports which machinery answered a query request:
// "batch" (multi-source batch engine), "scalar" (per-source subset
// solver), or "cache" (no solve ran). See the Solver* constants.
const solverHeader = "X-Parapsp-Solver"

// versionHeader carries the graph version a response was computed at: the
// pinned snapshot version for queries, the newly published version for
// mutations, and the current version for /healthz and /metrics. Monotonic
// per shard; a cluster router uses it to refuse merging answers computed
// at different versions.
const versionHeader = "X-Parapsp-Graph-Version"

func setVersion(w http.ResponseWriter, ver uint64) {
	w.Header().Set(versionHeader, strconv.FormatUint(ver, 10))
}

// httpServerRef holds the http.Server behind a Serve call so Shutdown can
// reach it from another goroutine.
type httpServerRef struct {
	mu  sync.Mutex
	srv *http.Server
}

func (r *httpServerRef) set(s *http.Server) {
	r.mu.Lock()
	r.srv = s
	r.mu.Unlock()
}

func (r *httpServerRef) shutdown(ctx context.Context) error {
	r.mu.Lock()
	s := r.srv
	r.mu.Unlock()
	if s == nil {
		return nil
	}
	return s.Shutdown(ctx)
}

// Handler returns the server's HTTP API:
//
//	GET  /dist?u=3&v=17[&tol=0.2]   one distance query
//	GET  /path?u=3&v=17             shortest path (always exact)
//	POST /batch                     {"queries":[{"u":..,"v":..},...],"tol":0.0}
//	POST /edge                      {"op":"insert"|"delete"|"reweight","u":..,"v":..[,"w":..]}
//	GET  /healthz                   liveness + graph shape + version
//	GET  /metrics                   the obs metrics registry as flat JSON
//	GET  /debug/pprof/...           the standard Go profiling endpoints
//
// Every query handler runs under the drain group and the request-timeout
// deadline; errors map to 400 (parse), 409 (edge-mutation conflict),
// 429 + Retry-After (backpressure), 503 (draining), and 504 (deadline).
// Every response carries the X-Parapsp-Graph-Version header.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/dist", s.handleDist)
	mux.HandleFunc("/path", s.handlePath)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/edge", s.handleEdge)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve runs the HTTP API on l until Shutdown. It returns nil after a
// clean Shutdown.
func (s *Server) Serve(l net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	s.httpSrv.set(hs)
	if err := hs.Serve(l); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// writeJSON writes v with the given status; encoding errors at this point
// can only be transport failures, which the client observes directly.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// writeError maps a query-layer error to its HTTP status. Error responses
// carry the current graph version (no pinned snapshot exists for them).
// The shared admission vocabulary (quota/inflight 429s, draining 503,
// deadline 504, each with its Retry-After and reject-reason header) is
// classified and written by internal/admit — one table for every daemon;
// only serve-specific errors (parse, mutation conflicts, validation) are
// mapped here.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	if w.Header().Get(versionHeader) == "" {
		setVersion(w, s.Version())
	}
	if d, ok := admit.Classify(err); ok {
		admit.WriteDecision(w, d)
		return
	}
	switch {
	case errors.Is(err, ErrParse), errors.Is(err, dyn.ErrOp), errors.Is(err, admit.ErrTier):
		s.m.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	case errors.Is(err, dyn.ErrNoEdge), errors.Is(err, dyn.ErrEdgeExists):
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
	default:
		// Validation errors raised by the query API itself (range checks,
		// batch limits) are client mistakes, not server faults.
		s.m.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	}
}

// admitContext resolves the request's admission identity (client header or
// remote address, tier header) and attaches it to the context for
// admitRequest to consume. A malformed tier value is a 400 — written here —
// and the returned ok is false.
func (s *Server) admitContext(w http.ResponseWriter, r *http.Request) (*http.Request, bool) {
	req, err := admit.ParseRequest(r, s.cfg.TierHeader)
	if err != nil {
		s.writeError(w, err)
		return r, false
	}
	// Echo the admitted tier on every response — success or rejection — so
	// clients and the router can observe which SLO actually applied.
	w.Header().Set(admit.DefaultTierHeader, req.Tier.String())
	return r.WithContext(admit.WithRequest(r.Context(), req)), true
}

// labeled runs fn under pprof labels so CPU profiles split by endpoint,
// matching the parapsp-alg/parapsp-phase labels of the solver layer.
func labeled(endpoint string, fn func()) {
	obs.Do(fn, "parapspd-endpoint", endpoint)
}

func (s *Server) handleDist(w http.ResponseWriter, r *http.Request) {
	labeled("dist", func() {
		r, ok := s.admitContext(w, r)
		if !ok {
			return
		}
		u, v, tol, err := ParseDistQuery(r.URL.Query(), s.n)
		if err != nil {
			s.writeError(w, err)
			return
		}
		as, kind, ver, err := s.BatchPinned(r.Context(), []Query{{U: u, V: v}}, tol)
		if err != nil {
			s.writeError(w, err)
			return
		}
		w.Header().Set(solverHeader, kind)
		setVersion(w, ver)
		writeJSON(w, http.StatusOK, as[0])
	})
}

type pathBody struct {
	Answer
	Path []int32 `json:"path"`
	Hops int     `json:"hops"`
}

func (s *Server) handlePath(w http.ResponseWriter, r *http.Request) {
	labeled("path", func() {
		r, ok := s.admitContext(w, r)
		if !ok {
			return
		}
		u, v, _, err := ParseDistQuery(r.URL.Query(), s.n)
		if err != nil {
			s.writeError(w, err)
			return
		}
		path, ans, kind, ver, err := s.PathPinned(r.Context(), u, v)
		if err != nil {
			s.writeError(w, err)
			return
		}
		w.Header().Set(solverHeader, kind)
		setVersion(w, ver)
		body := pathBody{Answer: ans, Path: path, Hops: len(path) - 1}
		if path == nil {
			body.Path = []int32{}
			body.Hops = -1
		}
		writeJSON(w, http.StatusOK, body)
	})
}

type batchBody struct {
	Answers []Answer `json:"answers"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	labeled("batch", func() {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
			return
		}
		r, ok := s.admitContext(w, r)
		if !ok {
			return
		}
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			s.m.badRequests.Add(1)
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "body: " + err.Error()})
			return
		}
		qs, tol, err := ParseBatch(data, s.n, s.cfg.MaxBatch)
		if err != nil {
			s.writeError(w, err)
			return
		}
		as, kind, ver, err := s.BatchPinned(r.Context(), qs, tol)
		if err != nil {
			s.writeError(w, err)
			return
		}
		w.Header().Set(solverHeader, kind)
		setVersion(w, ver)
		writeJSON(w, http.StatusOK, batchBody{Answers: as})
	})
}

func (s *Server) handleEdge(w http.ResponseWriter, r *http.Request) {
	labeled("edge", func() {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
			return
		}
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			s.m.badRequests.Add(1)
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "body: " + err.Error()})
			return
		}
		op, err := ParseEdgeOp(data, s.n)
		if err != nil {
			s.writeError(w, err)
			return
		}
		res, err := s.ApplyEdge(op)
		if err != nil {
			s.writeError(w, err)
			return
		}
		setVersion(w, res.Version)
		writeJSON(w, http.StatusOK, res)
	})
}

// healthBody is the /healthz payload. Beyond liveness and graph shape it
// carries what a cluster router's health prober needs to manage the ring:
// the draining flag (set the moment Shutdown begins, before the final
// 503s), the admission load, and the cache hit rate, plus the shard's
// configured identity.
type healthBody struct {
	Status       string  `json:"status"` // "ok" | "draining"
	ShardID      string  `json:"shard_id,omitempty"`
	Vertices     int     `json:"vertices"`
	Arcs         int64   `json:"arcs"`
	GraphVersion uint64  `json:"graph_version"`
	CachedRows   int     `json:"cached_rows"`
	Landmarks    int     `json:"landmarks"`
	Inflight     int     `json:"inflight"`
	Draining     bool    `json:"draining"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Admission-layer load split by SLO tier, plus the number of
	// per-client quota buckets currently tracked.
	PremiumInflight    int `json:"premium_inflight"`
	BestEffortInflight int `json:"besteffort_inflight"`
	QuotaClients       int `json:"quota_clients"`
	// Tiered-store residency (additive; zero when the tiers are off).
	CachedBytes int64 `json:"cached_bytes"`
	WarmRows    int   `json:"warm_rows"`
	WarmBytes   int64 `json:"warm_bytes"`
	ColdRows    int   `json:"cold_rows"`
	ColdBytes   int64 `json:"cold_bytes"`
	SpillFile   int64 `json:"spill_file_bytes"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Current()
	landmarks := 0
	if snap.Oracle != nil {
		landmarks = len(snap.Oracle.Landmarks())
	}
	status := "ok"
	draining := s.Draining()
	if draining {
		status = "draining"
	}
	hitRate := 0.0
	if lookups := s.m.lookups.Load(); lookups > 0 {
		hitRate = float64(s.m.hits.Load()) / float64(lookups)
	}
	st := s.StoreStats()
	setVersion(w, snap.Version)
	writeJSON(w, http.StatusOK, healthBody{
		Status:             status,
		ShardID:            s.cfg.ShardID,
		Vertices:           s.n,
		Arcs:               snap.G.NumArcs(),
		GraphVersion:       snap.Version,
		CachedRows:         s.CachedRows(),
		Landmarks:          landmarks,
		Inflight:           s.Inflight(),
		Draining:           draining,
		CacheHitRate:       hitRate,
		PremiumInflight:    s.InflightTier(admit.Premium),
		BestEffortInflight: s.InflightTier(admit.BestEffort),
		QuotaClients:       s.QuotaClients(),
		CachedBytes:        s.CachedBytes(),
		WarmRows:           st.WarmRows,
		WarmBytes:          st.WarmBytes,
		ColdRows:           st.ColdRows,
		ColdBytes:          st.ColdBytes,
		SpillFile:          st.ArenaFile,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	setVersion(w, s.Version())
	_ = s.cfg.Metrics.WriteJSON(w)
}
