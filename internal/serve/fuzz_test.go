package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"parapsp/internal/dyn"
	"parapsp/internal/gen"
	"parapsp/internal/matrix"
)

// fuzzSrv lazily builds one tiny shared server for handler-level fuzzing;
// building per-input would drown the fuzzer in oracle solves.
var (
	fuzzOnce sync.Once
	fuzzS    *Server
	fuzzH    http.Handler
)

func fuzzServer(t *testing.T) http.Handler {
	fuzzOnce.Do(func() {
		g, err := gen.BarabasiAlbert(16, 2, 1, gen.Weighting{})
		if err != nil {
			t.Fatalf("gen: %v", err)
		}
		fuzzS, err = New(g, Config{Workers: 1, CacheRows: 8, Landmarks: 2})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		fuzzH = fuzzS.Handler()
	})
	return fuzzH
}

// FuzzParseQuery pins the request-decoding contract of the HTTP surface:
// arbitrary /batch bodies and /dist query strings — malformed JSON,
// out-of-range vertex ids, empty or oversized batches, hostile tolerances
// — never panic and never produce a 5xx; a decode failure is always a
// 4xx. The seed corpus under testdata/fuzz/FuzzParseQuery runs as plain
// regression cases in every `go test` pass.
func FuzzParseQuery(f *testing.F) {
	f.Add([]byte(`{"queries":[{"u":0,"v":1}],"tol":0.5}`), "u=0&v=1")
	f.Add([]byte(`{"queries":[{"u":3,"v":2},{"u":1,"v":0}]}`), "u=3&v=2&tol=0.25")
	f.Add([]byte(`{"queries":`), "u=1")
	f.Add([]byte(`{"queries":[{"u":-5,"v":99999999999}]}`), "u=-1&v=2")
	f.Add([]byte(`{"queries":[],"tol":-1}`), "u=0&v=0&tol=NaN")
	f.Add([]byte(`{"queries":[{"u":1.5,"v":2}]}`), "u=1.5&v=2")
	f.Add([]byte(`null`), "%zz")
	f.Fuzz(func(t *testing.T, body []byte, rawQuery string) {
		const n, maxBatch = 16, 8

		// Decoder level: no panics, and a nil error implies validated output.
		qs, tol, err := ParseBatch(body, n, maxBatch)
		if err == nil {
			if len(qs) == 0 || len(qs) > maxBatch {
				t.Fatalf("ParseBatch accepted batch of %d", len(qs))
			}
			for _, q := range qs {
				if q.U < 0 || int(q.U) >= n || q.V < 0 || int(q.V) >= n {
					t.Fatalf("ParseBatch accepted out-of-range query %+v", q)
				}
			}
			if tol < 0 {
				t.Fatalf("ParseBatch accepted tol %g", tol)
			}
		}
		if vals, qerr := url.ParseQuery(rawQuery); qerr == nil {
			u, v, tol, derr := ParseDistQuery(vals, n)
			if derr == nil && (u < 0 || int(u) >= n || v < 0 || int(v) >= n || tol < 0) {
				t.Fatalf("ParseDistQuery accepted invalid (%d,%d,%g)", u, v, tol)
			}
		}

		// Handler level: any input yields 200 or a 4xx, never a 5xx.
		h := fuzzServer(t)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/batch", bytes.NewReader(body)))
		if rec.Code != http.StatusOK && (rec.Code < 400 || rec.Code > 499) {
			t.Fatalf("/batch status %d for body %q", rec.Code, body)
		}
		req := httptest.NewRequest(http.MethodGet, "/dist", nil)
		req.URL.RawQuery = rawQuery
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK && (rec.Code < 400 || rec.Code > 499) {
			t.Fatalf("/dist status %d for query %q", rec.Code, rawQuery)
		}
	})
}

// FuzzParseEdgeOp pins the mutation-decoding contract: arbitrary /edge
// bodies never panic and never 5xx — malformed input is always a 4xx —
// and anything the decoder accepts is a fully validated op (known verb,
// in-range distinct endpoints, weight in [1,Inf) exactly when the verb
// takes one) that survives a JSON round-trip unchanged.
func FuzzParseEdgeOp(f *testing.F) {
	f.Add([]byte(`{"op":"insert","u":0,"v":1,"w":3}`))
	f.Add([]byte(`{"op":"reweight","u":2,"v":5,"w":1}`))
	f.Add([]byte(`{"op":"delete","u":1,"v":0}`))
	f.Add([]byte(`{"op":"delete","u":1,"v":0,"w":2}`))
	f.Add([]byte(`{"op":"insert","u":1,"v":1,"w":1}`))
	f.Add([]byte(`{"op":"insert","u":1,"v":2}`))
	f.Add([]byte(`{"op":"insert","u":-1,"v":99999999999,"w":0}`))
	f.Add([]byte(`{"op":"upsert","u":0,"v":1,"w":1}`))
	f.Add([]byte(`{"op":"insert","u":0,"v":1,"w":4294967295}`))
	f.Add([]byte(`{"op":"insert","u":0,"v":1,"w":1,"weight":9}`))
	f.Add([]byte(`{"op":"insert","u":0,"v":1,"w":1}{"op":"delete","u":0,"v":1}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, body []byte) {
		const n = 16
		op, err := ParseEdgeOp(body, n)
		if err == nil {
			if op.U < 0 || int(op.U) >= n || op.V < 0 || int(op.V) >= n || op.U == op.V {
				t.Fatalf("ParseEdgeOp accepted invalid endpoints %+v", op)
			}
			switch op.Op {
			case dyn.OpDelete:
				if op.W != 0 {
					t.Fatalf("delete carried weight %d", op.W)
				}
			case dyn.OpInsert, dyn.OpReweight:
				if op.W < 1 || op.W >= matrix.Inf {
					t.Fatalf("ParseEdgeOp accepted weight %d", op.W)
				}
			default:
				t.Fatalf("ParseEdgeOp accepted unknown verb %d", op.Op)
			}
			// Valid ops round-trip through the wire format unchanged.
			wire := fmt.Sprintf(`{"op":%q,"u":%d,"v":%d,"w":%d}`, op.Op, op.U, op.V, op.W)
			if op.Op == dyn.OpDelete {
				wire = fmt.Sprintf(`{"op":%q,"u":%d,"v":%d}`, op.Op, op.U, op.V)
			}
			back, rerr := ParseEdgeOp([]byte(wire), n)
			if rerr != nil || back != op {
				t.Fatalf("round-trip of %+v via %s: %+v, %v", op, wire, back, rerr)
			}
		}

		// Handler level: any body yields 200 or a 4xx, never a 5xx. (409s
		// from valid ops that conflict with the shared fuzz graph are fine.)
		h := fuzzServer(t)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/edge", bytes.NewReader(body)))
		if rec.Code != http.StatusOK && (rec.Code < 400 || rec.Code > 499) {
			t.Fatalf("/edge status %d for body %q", rec.Code, body)
		}
	})
}
