package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"parapsp/internal/admit"
	"parapsp/internal/baseline"
	"parapsp/internal/gen"
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// testGraph builds a small connected-ish power-law graph, the workload
// shape the paper (and the serving layer) targets.
func testGraph(t testing.TB, n int, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.PowerLawConfiguration(n, 2.5, 2, true, seed, gen.Weighting{})
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	return g
}

func newTestServer(t testing.TB, g *graph.Graph, cfg Config) *Server {
	t.Helper()
	s, err := New(g, cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

func TestExactMatchesFloydWarshall(t *testing.T) {
	g := testGraph(t, 120, 7)
	truth := baseline.FloydWarshall(g)
	s := newTestServer(t, g, Config{Workers: 2, CacheRows: 16})
	ctx := context.Background()
	for u := int32(0); u < 40; u++ {
		for _, v := range []int32{0, 1, int32(g.N() - 1), u} {
			ans, err := s.Dist(ctx, u, v, 0)
			if err != nil {
				t.Fatalf("Dist(%d,%d): %v", u, v, err)
			}
			if !ans.Exact {
				t.Fatalf("Dist(%d,%d) with tol=0 not exact", u, v)
			}
			want := distToJSON(truth.At(int(u), int(v)))
			if ans.Dist != want {
				t.Fatalf("Dist(%d,%d) = %d, want %d", u, v, ans.Dist, want)
			}
		}
	}
}

func TestSingleFlight(t *testing.T) {
	g := testGraph(t, 150, 3)
	s := newTestServer(t, g, Config{Workers: 2, CacheRows: 64, Landmarks: -1})
	const clients = 16
	src := int32(5)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Dist(context.Background(), src, 9, 0); err != nil {
				t.Errorf("Dist: %v", err)
			}
		}()
	}
	wg.Wait()
	snap := s.Metrics().Snapshot()
	// The oracle is disabled, so source 5 was never pre-warmed: exactly one
	// concurrent caller may own the solve of row 5.
	if got := snap["serve.solve.rows"]; got != 1 {
		t.Fatalf("solved %d rows for %d concurrent queries of one source, want 1", got, clients)
	}
	if snap["serve.cache.misses"] != 1 {
		t.Fatalf("misses = %d, want 1", snap["serve.cache.misses"])
	}
	if snap["serve.cache.lookups"] != snap["serve.cache.hits"]+snap["serve.cache.misses"] {
		t.Fatalf("lookup counters do not reconcile: %v", snap)
	}
}

func TestBatchGroupsSources(t *testing.T) {
	g := testGraph(t, 100, 11)
	truth := baseline.FloydWarshall(g)
	s := newTestServer(t, g, Config{Workers: 2, CacheRows: 32, Landmarks: -1})
	qs := []Query{{U: 1, V: 2}, {U: 3, V: 4}, {U: 1, V: 7}, {U: 9, V: 1}, {U: 3, V: 3}}
	as, err := s.Batch(context.Background(), qs, 0)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	for i, a := range as {
		want := distToJSON(truth.At(int(qs[i].U), int(qs[i].V)))
		if a.Dist != want || !a.Exact {
			t.Fatalf("answer %d = %+v, want exact dist %d", i, a, want)
		}
	}
	snap := s.Metrics().Snapshot()
	// Three distinct cold sources (1, 3, 9), one subset solve.
	if snap["serve.solve.batches"] != 1 || snap["serve.solve.rows"] != 3 {
		t.Fatalf("batch did not group sources into one solve: %v", snap)
	}
}

func TestEvictionBound(t *testing.T) {
	g := testGraph(t, 90, 5)
	truth := baseline.FloydWarshall(g)
	s := newTestServer(t, g, Config{Workers: 1, CacheRows: 4, Landmarks: -1})
	ctx := context.Background()
	for u := int32(0); u < 12; u++ {
		if _, err := s.Dist(ctx, u, u+13, 0); err != nil {
			t.Fatalf("Dist: %v", err)
		}
	}
	if got := s.CachedRows(); got > 4 {
		t.Fatalf("cache holds %d rows, cap 4", got)
	}
	snap := s.Metrics().Snapshot()
	if snap["serve.cache.evictions"] < 8 {
		t.Fatalf("evictions = %d, want >= 8", snap["serve.cache.evictions"])
	}
	// Evicted rows resolve correctly again.
	ans, err := s.Dist(ctx, 0, 33, 0)
	if err != nil {
		t.Fatalf("Dist after eviction: %v", err)
	}
	if want := distToJSON(truth.At(0, 33)); ans.Dist != want {
		t.Fatalf("post-eviction Dist = %d, want %d", ans.Dist, want)
	}
}

func TestApproxFromLandmark(t *testing.T) {
	g := testGraph(t, 120, 9)
	truth := baseline.FloydWarshall(g)
	s := newTestServer(t, g, Config{Workers: 2, CacheRows: 32, Landmarks: 8})
	L := s.Oracle().Landmarks()[0]
	var v int32
	for v = 0; v < int32(g.N()); v++ {
		if v != L && truth.At(int(L), int(v)) != matrix.Inf {
			break
		}
	}
	ans, err := s.Dist(context.Background(), L, v, 0.5)
	if err != nil {
		t.Fatalf("Dist: %v", err)
	}
	// Querying from a landmark, the oracle's bounds pinch (lower == upper ==
	// the true distance), so the cold query must be answered approximately
	// and still be numerically exact.
	if ans.Exact {
		t.Fatalf("cold landmark query with tol>0 answered exactly: %+v", ans)
	}
	want := distToJSON(truth.At(int(L), int(v)))
	if ans.Dist != want || ans.Lower != want || ans.Upper != want {
		t.Fatalf("approx answer %+v, want pinched bounds at %d", ans, want)
	}
}

func TestBackpressure(t *testing.T) {
	g := testGraph(t, 60, 2)
	s := newTestServer(t, g, Config{Workers: 1, CacheRows: 8, MaxInflight: 1, Landmarks: -1})
	// Occupy the only inflight slot through the admission layer, exactly as
	// a stuck in-flight query would.
	release, err := s.adm.Admit(admit.Request{Client: "holder", Tier: admit.Premium})
	if err != nil {
		t.Fatalf("holder admit: %v", err)
	}
	if _, err := s.Dist(context.Background(), 1, 2, 0); !errors.Is(err, ErrBusy) {
		t.Fatalf("Dist under full inflight budget = %v, want ErrBusy", err)
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/dist?u=1&v=2", nil)
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("HTTP status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if got := rec.Header().Get(admit.RejectHeader); got != "inflight" {
		t.Fatalf("reject header = %q, want inflight", got)
	}
	release(nil)
	if _, err := s.Dist(context.Background(), 1, 2, 0); err != nil {
		t.Fatalf("Dist after release: %v", err)
	}
	if got := s.Metrics().Snapshot()["serve.throttled"]; got != 2 {
		t.Fatalf("throttled = %d, want 2", got)
	}
}

func TestClosedServerRefuses(t *testing.T) {
	g := testGraph(t, 60, 4)
	s, err := New(g, Config{Workers: 1, Landmarks: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := s.Dist(context.Background(), 0, 1, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Dist after shutdown = %v, want ErrClosed", err)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/dist?u=0&v=1", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("HTTP status after shutdown = %d, want 503", rec.Code)
	}
}

func TestPathEndpoint(t *testing.T) {
	// Weighted directed graph where the hop-shortest path is not the
	// weight-shortest one: 0->1->2 costs 2+2=4, direct 0->2 costs 9.
	b := graph.NewBuilder(4, false)
	for _, e := range []graph.Edge{{From: 0, To: 1, W: 2}, {From: 1, To: 2, W: 2}, {From: 0, To: 2, W: 9}} {
		if err := b.AddWeighted(e.From, e.To, e.W); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, g, Config{Workers: 1, Landmarks: -1})

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/path?u=0&v=2", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %s", rec.Code, rec.Body)
	}
	var body struct {
		Dist int64   `json:"dist"`
		Path []int32 `json:"path"`
		Hops int     `json:"hops"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Dist != 4 || body.Hops != 2 || len(body.Path) != 3 ||
		body.Path[0] != 0 || body.Path[1] != 1 || body.Path[2] != 2 {
		t.Fatalf("path body = %+v, want 0->1->2 at distance 4", body)
	}

	// Vertex 3 is isolated: unreachable yields dist -1 and an empty path.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/path?u=0&v=3", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Dist != -1 || body.Hops != -1 || len(body.Path) != 0 {
		t.Fatalf("unreachable path body = %+v", body)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	g := testGraph(t, 80, 13)
	truth := baseline.FloydWarshall(g)
	s := newTestServer(t, g, Config{Workers: 1, CacheRows: 16})
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/dist?u=3&v=17", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/dist status = %d body %s", rec.Code, rec.Body)
	}
	var ans Answer
	if err := json.Unmarshal(rec.Body.Bytes(), &ans); err != nil {
		t.Fatal(err)
	}
	if want := distToJSON(truth.At(3, 17)); ans.Dist != want {
		t.Fatalf("/dist = %d, want %d", ans.Dist, want)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/batch",
		strings.NewReader(`{"queries":[{"u":1,"v":2},{"u":5,"v":6}]}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("/batch status = %d body %s", rec.Code, rec.Body)
	}
	var bb batchBody
	if err := json.Unmarshal(rec.Body.Bytes(), &bb); err != nil {
		t.Fatal(err)
	}
	if len(bb.Answers) != 2 || bb.Answers[1].Dist != distToJSON(truth.At(5, 6)) {
		t.Fatalf("/batch answers = %+v", bb.Answers)
	}

	for _, bad := range []string{"/dist?u=-1&v=2", "/dist?u=1", "/dist?u=1&v=2&tol=-3", "/dist?u=1&v=999999"} {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, bad, nil))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s status = %d, want 400", bad, rec.Code)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"vertices": 80`) {
		t.Fatalf("/healthz = %d %s", rec.Code, rec.Body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	var snap map[string]int64
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/metrics not valid JSON: %v", err)
	}
	if snap["serve.cache.lookups"] != snap["serve.cache.hits"]+snap["serve.cache.misses"] {
		t.Fatalf("/metrics counters do not reconcile: %v", snap)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status = %d", rec.Code)
	}
}
