package serve

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"parapsp/internal/baseline"
	"parapsp/internal/obs"
)

// TestWarmTierPromoteExact drives the hot tier far past its byte budget,
// then re-queries the evicted sources: every answer must still be
// Floyd-Warshall exact (the row came back through a decode, not a
// re-solve), the warm tier must actually serve promotions, and the
// store ledger must reconcile.
func TestWarmTierPromoteExact(t *testing.T) {
	g := testGraph(t, 140, 19)
	truth := baseline.FloydWarshall(g)
	n := int64(g.N())
	s := newTestServer(t, g, Config{
		Workers:    2,
		CacheBytes: 4 * n * 4, // four uncompressed rows
		Landmarks:  8,
	})

	// First pass: solve (and mostly evict) 60 source rows.
	for u := int32(0); u < 60; u++ {
		if err := stressExact(s, truth, u, u+1); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.StoreStats(); st.WarmRows == 0 {
		t.Fatal("no rows demoted into the warm tier")
	}
	// Second pass: the hot tier holds at most 4 of the 60, so most hits
	// must come back through warm-tier promotion.
	for u := int32(0); u < 60; u++ {
		if err := stressExact(s, truth, u, (u*7)%int32(n)); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Metrics().Snapshot()
	if snap["serve.store.t2_promotes"] == 0 {
		t.Fatalf("no warm-tier promotions: %+v", snap)
	}
	want := snap["serve.store.sketch_answered"] + snap["serve.store.t1_hits"] +
		snap["serve.store.t2_promotes"] + snap["serve.store.t3_promotes"] + snap["serve.store.misses"]
	if snap["serve.store.lookups"] != want {
		t.Fatalf("store ledger does not reconcile: lookups=%d, sum=%d", snap["serve.store.lookups"], want)
	}
	if s.CachedBytes() > 4*n*4 {
		t.Fatalf("hot tier exceeds its byte budget: %d > %d", s.CachedBytes(), 4*n*4)
	}
}

// TestSpillRoundTripAndRecovery exercises the full T1->T2->T3 demotion
// chain through the server, then restarts the server on the same spill
// directory and checks the cold tier warm-starts from the recovered
// frames — with every promoted answer still exact.
func TestSpillRoundTripAndRecovery(t *testing.T) {
	g := testGraph(t, 160, 23)
	truth := baseline.FloydWarshall(g)
	n := int64(g.N())
	dir := t.TempDir()
	cfg := Config{
		Workers:    2,
		CacheBytes: 2 * n * 4, // two hot rows
		WarmBytes:  1500,      // a handful of compressed frames
		SpillBytes: 1 << 20,
		SpillDir:   dir,
		OraclePath: filepath.Join(dir, "oracle.bin"),
		Landmarks:  8,
	}
	cfg.Metrics = obs.NewMetrics()
	s, err := New(g, cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	for u := int32(0); u < int32(n); u++ {
		if err := stressExact(s, truth, u, (u+3)%int32(n)); err != nil {
			t.Fatal(err)
		}
	}
	// Spill is async: wait for the writeback goroutine to land frames.
	deadline := time.Now().Add(10 * time.Second)
	for s.StoreStats().ColdRows == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no frames reached the cold tier: %+v", s.StoreStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Re-query early sources: they were evicted from hot and warm, so the
	// answers must come back through cold-tier promotion, still exact.
	for u := int32(0); u < 40; u++ {
		if err := stressExact(s, truth, u, (u*11)%int32(n)); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Metrics().Snapshot()
	if snap["serve.store.t3_promotes"] == 0 {
		t.Fatalf("no cold-tier promotions: %+v", snap)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The oracle file must exist and survive the restart unchanged.
	oracleInfo, err := os.Stat(cfg.OraclePath)
	if err != nil {
		t.Fatalf("oracle not persisted: %v", err)
	}

	// Restart on the same directory: the arena recovery seeds the cold
	// tier and the oracle loads instead of rebuilding.
	cfg2 := cfg
	cfg2.Metrics = obs.NewMetrics()
	s2, err := New(g, cfg2)
	if err != nil {
		t.Fatalf("serve.New (restart): %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s2.Shutdown(ctx); err != nil {
			t.Errorf("shutdown (restart): %v", err)
		}
	}()
	snap2 := s2.Metrics().Snapshot()
	if snap2["store.recovered_frames"] == 0 {
		t.Fatal("restart recovered no frames from the arena")
	}
	if st := s2.StoreStats(); st.ColdRows == 0 {
		t.Fatalf("restart did not warm-start the cold tier: %+v", st)
	}
	if info2, err := os.Stat(cfg.OraclePath); err != nil || info2.ModTime() != oracleInfo.ModTime() || info2.Size() != oracleInfo.Size() {
		t.Fatalf("oracle was rebuilt instead of loaded (err=%v)", err)
	}
	// Recovered frames must decode into exact answers without a solve.
	for u := int32(0); u < int32(n); u += 5 {
		if err := stressExact(s2, truth, u, (u+1)%int32(n)); err != nil {
			t.Fatal(err)
		}
	}
	snap2 = s2.Metrics().Snapshot()
	if snap2["serve.store.t3_promotes"] == 0 {
		t.Fatal("restarted server answered nothing from the recovered cold tier")
	}
	if snap2["store.decode_errors"] != 0 {
		t.Fatalf("recovered frames failed to decode %d times", snap2["store.decode_errors"])
	}
}

// TestSketchAnswersSkipTiers pins the sketch-first contract: a tol>0
// query certified by the landmark bounds is answered without touching
// any row tier — no lookups against the hot cache, no solves.
func TestSketchAnswersSkipTiers(t *testing.T) {
	g := testGraph(t, 120, 29)
	s := newTestServer(t, g, Config{Workers: 2, CacheRows: 16, Landmarks: 12})
	ctx := context.Background()

	// A landmark-to-anywhere query has lower == upper, so any tol
	// certifies it; sweep until one sketch answer lands.
sweep:
	for u := int32(0); u < int32(g.N()); u++ {
		for v := int32(0); v < int32(g.N()); v++ {
			if u == v {
				continue
			}
			ans, err := s.Dist(ctx, u, v, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			if !ans.Exact {
				break sweep
			}
		}
	}
	snap := s.Metrics().Snapshot()
	if snap["serve.store.sketch_answered"] == 0 {
		t.Skip("no query certified against this graph; nothing to assert")
	}
	if snap["serve.store.sketch_answered"]+snap["serve.store.t1_hits"]+
		snap["serve.store.t2_promotes"]+snap["serve.store.t3_promotes"]+
		snap["serve.store.misses"] != snap["serve.store.lookups"] {
		t.Fatalf("store ledger broken on sketch path: %+v", snap)
	}
}

// TestCacheBytesAlias pins the deprecated CacheRows alias: the two
// configurations must produce the same hot-tier budget.
func TestCacheBytesAlias(t *testing.T) {
	g := testGraph(t, 100, 31)
	n := int64(g.N())
	byBytes := newTestServer(t, g, Config{Workers: 1, CacheBytes: 8 * n * 4, Landmarks: -1})
	byRows := newTestServer(t, g, Config{Workers: 1, CacheRows: 8, Landmarks: -1})
	ctx := context.Background()
	for u := int32(0); u < 30; u++ {
		if _, err := byBytes.Dist(ctx, u, 0, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := byRows.Dist(ctx, u, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if a, b := byBytes.CachedRows(), byRows.CachedRows(); a != b {
		t.Fatalf("CacheBytes=%d rows resident, CacheRows alias=%d", a, b)
	}
	if byBytes.CachedBytes() > 8*n*4 {
		t.Fatalf("hot tier over budget: %d", byBytes.CachedBytes())
	}
}
