// Package serve is the long-running distance-query layer over the paper's
// APSP machinery: the regime Schoeneman & Zola (arXiv:1902.04446) frame,
// where the graph is too large to precompute and hold all O(n^2) rows, so
// distances are computed on demand and reused.
//
// A Server owns a versioned graph store (internal/dyn), a tiered distance
// store, and a landmark oracle (internal/oracle). Completed rows live in
// three byte-budgeted tiers: a hot LRU of uncompressed rows keyed by
// (source, graph version) (T1), a warm tier of delta-compressed frames
// holding what T1 evicts (T2, internal/store), and an optional cold tier
// spilling frames to a disk-backed arena (T3) — so the serveable working
// set scales far past the O(hot_rows*n) RAM wall. Queries resident in no
// tier run the subset solver (core.SolveSubset) — batched per request, so
// the row-reuse dynamic programming that powers ParAPSP still fires
// between the sources of one batch — and the hot cache deduplicates
// concurrent solves of the same source (single flight). In front of all
// three tiers sits the sketch answer path: a query with tolerance tol > 0
// whose landmark bounds certify upper <= (1+tol)*lower is answered from
// the O(k*n) oracle alone, touching no row tier at all.
//
// The graph is dynamic: ApplyEdge (HTTP: POST /edge) inserts, deletes, or
// reweights an edge, publishing a new copy-on-write snapshot with a
// monotonically increasing version. Queries pin the current snapshot at
// admission and answer entirely against it — a mutation never blocks a
// reader, and an in-flight query keeps its pinned version even if ten
// mutations land while it runs. Before a new version becomes visible, the
// mutation reconciles the row cache: rows the changed edge cannot affect
// are re-tagged to the new version for free, rows an improved edge can
// lower are repaired in place by a bounded SSSP seeded at the edge
// (dyn.RepairImprove), and rows invalidated by a delete/increase are
// simply not carried forward — the next query re-solves them. Every
// response carries the answering version in the X-Parapsp-Graph-Version
// header.
//
// Resource safety and admission live in one shared layer, internal/admit:
// every request passes the Admitter's gates — per-client token-bucket
// quotas, SLO-tiered inflight backpressure (excess requests fail fast
// with ErrBusy, which the HTTP layer maps to 429 + Retry-After), and the
// drain state — and runs under a context deadline. Requests carry an
// admit.Request (client identity + tier) in their context: premium
// requests are always answered exactly and may occupy the whole inflight
// budget, best-effort requests keep the sketch-first approximate path and
// only the best-effort slice of the budget, so a saturating best-effort
// client cannot move premium latency. Shutdown drains — it stops
// admitting work, waits for in-flight requests, and only then returns, so
// no accepted request is ever dropped.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"parapsp/internal/admit"
	"parapsp/internal/core"
	"parapsp/internal/dyn"
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
	"parapsp/internal/obs"
	"parapsp/internal/oracle"
	"parapsp/internal/store"
)

// Errors surfaced by the query API — aliases of the shared admission
// vocabulary, kept under their historical names. The HTTP layer maps
// ErrBusy (and admit.ErrQuota) to 429, ErrClosed to 503, and context
// deadline errors to 504; edge-mutation conflicts (dyn.ErrNoEdge,
// dyn.ErrEdgeExists) map to 409. Rejections arrive as *admit.RejectError
// wrapping these sentinels, so errors.Is keeps working.
var (
	ErrBusy   = admit.ErrInflight
	ErrClosed = admit.ErrDraining
)

// Config tunes a Server. The zero value serves exact queries with one
// solver worker, a 256-row cache, 16 landmarks, and a 30-second request
// timeout.
type Config struct {
	// Workers is the worker count of each subset solve (and the oracle
	// build). Values below 1 mean 1.
	Workers int
	// CacheBytes budgets the hot tier (T1): uncompressed distance rows at
	// 4*n bytes each, byte-accounted LRU. 0 derives the budget from the
	// deprecated CacheRows (below); at least one row is always retained.
	CacheBytes int64
	// WarmBytes budgets the warm tier (T2): delta-compressed frames of
	// evicted rows, decompressed back into T1 on demand. 0 defaults to
	// 4x the T1 budget (compressed rows are several times smaller, so the
	// warm tier holds a multiple of the hot row count in the same memory);
	// negative disables the tier.
	WarmBytes int64
	// SpillBytes budgets the cold tier (T3): compressed frames spilled to
	// a disk-backed arena by an async writeback goroutine. 0 disables
	// spilling; > 0 requires SpillDir.
	SpillBytes int64
	// SpillDir is the directory of the cold tier's arena file. Reopening
	// a directory written by a previous process for the same graph
	// warm-starts the cold tier from the recovered frames.
	SpillDir string
	// OraclePath, when set, persists the landmark oracle: New loads it if
	// the file matches the served graph's fingerprint, else builds and
	// saves it — turning the k-SSSP oracle build into a one-time cost.
	OraclePath string
	// Kernel pins the SSSP kernel of every subset solve to a registered
	// core kernel name (core.Kernels()); empty keeps the static default
	// policy, and core.KernelAuto ("auto") picks per solve from measured
	// graph features. Pinning a concrete kernel bypasses the batch
	// dispatch policy, exactly as core.Options.Kernel does. Either way
	// the X-Parapsp-Solver response header reports the kernel that
	// actually ran. Validated at New time against the served graph, so an
	// unsupported kernel fails at startup, not per query.
	Kernel string
	// CacheRows is the hot-tier capacity in distance rows.
	//
	// Deprecated: use CacheBytes. CacheRows is kept as an alias — when
	// CacheBytes is 0, the budget is CacheRows rows at 4*n bytes each
	// (default 256 rows).
	CacheRows int
	// Landmarks is the oracle's landmark count (default 16); negative
	// disables the oracle entirely, making every query exact. The oracle
	// only answers at the graph version it was built for: the first edge
	// mutation retires it, after which every query is exact.
	Landmarks int
	// MaxInflight bounds concurrently admitted queries (default 64).
	// Excess requests fail with ErrBusy instead of queueing without bound.
	MaxInflight int
	// BestEffortShare is the fraction of MaxInflight best-effort requests
	// may occupy (default 0.75, see admit.Config); the remainder is the
	// premium reserve.
	BestEffortShare float64
	// QuotaRPS is the per-client token-bucket refill rate in
	// requests/second; 0 disables quotas. QuotaBurst is the bucket depth
	// (default ceil(QuotaRPS)). Identity is the X-Parapsp-Client header,
	// else the remote IP.
	QuotaRPS   float64
	QuotaBurst int
	// TierHeader is the request header carrying the SLO tier label
	// (default X-Parapsp-Tier); responses always echo the admitted tier
	// in X-Parapsp-Tier regardless.
	TierHeader string
	// MaxBatch bounds the queries accepted in one /batch request
	// (default 256).
	MaxBatch int
	// RequestTimeout is the per-request context deadline applied when the
	// caller's context has none (default 30s).
	RequestTimeout time.Duration
	// Batch is the core.BatchMode handed to every subset solve. The zero
	// value (BatchAuto) routes cache-cold multi-source requests on large
	// graphs through the multi-source batch engine and everything else
	// through the scalar solver; BatchOff pins the scalar solver.
	Batch core.BatchMode
	// Metrics is the registry the server publishes its counters into
	// (serve.*); nil creates a private registry.
	Metrics *obs.Metrics
	// ShardID is an optional identity label reported in /healthz. A
	// cluster router matches it against its membership table; standalone
	// daemons leave it empty.
	ShardID string
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.CacheRows == 0 {
		c.CacheRows = 256
	}
	if c.CacheRows < 1 {
		c.CacheRows = 1
	}
	if c.Landmarks == 0 {
		c.Landmarks = 16
	}
	if c.MaxInflight < 1 {
		c.MaxInflight = 64
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.TierHeader == "" {
		c.TierHeader = admit.DefaultTierHeader
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewMetrics()
	}
	return c
}

// metrics holds the server's counter handles, looked up once so the hot
// path only does atomic adds. Two ledgers are pinned by the stress tests:
// the cache invariant lookups == hits + misses (coalesced is a subset of
// hits), and the mutation invariant dyn.scanned == dyn.retagged +
// dyn.repaired + dyn.invalidated (every cached row a mutation examines
// lands in exactly one bucket).
type metrics struct {
	lookups, hits, misses, coalesced, evictions *obs.Counter
	solves, solvedRows                          *obs.Counter
	batchSolves, scalarSolves                   *obs.Counter
	requests, throttled, timeouts, badRequests  *obs.Counter
	exact, approx                               *obs.Counter

	mutations, mutationConflicts         *obs.Counter
	dynScanned, dynRetagged, dynRepaired *obs.Counter
	dynRepairedLabels, dynInvalidated    *obs.Counter

	// Tiered-store ledger: every row lookup resolves in exactly one of
	// the five buckets, so storeLookups == storeSketch + storeT1 +
	// storeT2 + storeT3 + storeMiss (asserted by the stress tests).
	storeLookups, storeSketch         *obs.Counter
	storeT1, storeT2, storeT3         *obs.Counter
	storeMiss, storeDemotes           *obs.Counter
	storeDynScanned, storeDynRetagged *obs.Counter
	storeDynRepaired, storeDynDropped *obs.Counter
	storeDynAged                      *obs.Counter
	t2PromoteT, t3PromoteT, demoteT   obs.Timing
}

func newServeMetrics(reg *obs.Metrics) *metrics {
	return &metrics{
		lookups:    reg.Counter("serve.cache.lookups"),
		hits:       reg.Counter("serve.cache.hits"),
		misses:     reg.Counter("serve.cache.misses"),
		coalesced:  reg.Counter("serve.cache.coalesced"),
		evictions:  reg.Counter("serve.cache.evictions"),
		solves:     reg.Counter("serve.solve.batches"),
		solvedRows: reg.Counter("serve.solve.rows"),
		// serve.solve.batch/scalar split serve.solve.batches by the core
		// engine that ran the subset solve, so cache-cold batch wins are
		// visible in the serving metrics without a trace.
		batchSolves:  reg.Counter("serve.solve.batch"),
		scalarSolves: reg.Counter("serve.solve.scalar"),
		requests:     reg.Counter("serve.requests"),
		throttled:    reg.Counter("serve.throttled"),
		timeouts:     reg.Counter("serve.timeouts"),
		badRequests:  reg.Counter("serve.bad_requests"),
		exact:        reg.Counter("serve.answers.exact"),
		approx:       reg.Counter("serve.answers.approx"),
		// The dynamic-graph ledger: every committed mutation scans the
		// current version's ready rows and each scanned row is re-tagged,
		// repaired, or invalidated — never more than one of them.
		mutations:         reg.Counter("serve.dyn.mutations"),
		mutationConflicts: reg.Counter("serve.dyn.conflicts"),
		dynScanned:        reg.Counter("serve.dyn.scanned"),
		dynRetagged:       reg.Counter("serve.dyn.retagged"),
		dynRepaired:       reg.Counter("serve.dyn.repaired"),
		dynRepairedLabels: reg.Counter("serve.dyn.repaired_labels"),
		dynInvalidated:    reg.Counter("serve.dyn.invalidated"),
		// The tiered-store ledger: one bucket per lookup. sketch_answered
		// never touched a row tier (the landmark bounds certified the
		// tolerance), t1_hits came from the hot uncompressed LRU, t2/t3
		// promotes decompressed a warm/cold frame back into T1, and misses
		// fell through to a solve.
		storeLookups: reg.Counter("serve.store.lookups"),
		storeSketch:  reg.Counter("serve.store.sketch_answered"),
		storeT1:      reg.Counter("serve.store.t1_hits"),
		storeT2:      reg.Counter("serve.store.t2_promotes"),
		storeT3:      reg.Counter("serve.store.t3_promotes"),
		storeMiss:    reg.Counter("serve.store.misses"),
		storeDemotes: reg.Counter("serve.store.demotes"),
		// The tier mirror of the serve.dyn.* ledger: frames reconciled
		// across a mutation, scanned == retagged + repaired + dropped.
		storeDynScanned:  reg.Counter("serve.store.dyn.scanned"),
		storeDynRetagged: reg.Counter("serve.store.dyn.retagged"),
		storeDynRepaired: reg.Counter("serve.store.dyn.repaired"),
		storeDynDropped:  reg.Counter("serve.store.dyn.dropped"),
		storeDynAged:     reg.Counter("serve.store.dyn.aged"),
		t2PromoteT:       reg.Timing("serve.store.t2_promote"),
		t3PromoteT:       reg.Timing("serve.store.t3_promote"),
		demoteT:          reg.Timing("serve.store.demote"),
	}
}

// Query is one distance question.
type Query struct {
	U int32 `json:"u"`
	V int32 `json:"v"`
}

// Answer is one resolved query. Dist is -1 when v is unreachable from u
// (and, for approximate answers, when no landmark connects the pair —
// inconclusive, see Exact). Lower/Upper carry the oracle bounds that
// backed an approximate answer; for exact answers they both equal Dist.
type Answer struct {
	U     int32 `json:"u"`
	V     int32 `json:"v"`
	Dist  int64 `json:"dist"`
	Exact bool  `json:"exact"`
	Lower int64 `json:"lower"`
	Upper int64 `json:"upper"`
}

// Server answers distance and path queries over a versioned graph.
type Server struct {
	store *dyn.Store
	n     int // vertex count; mutations never change it
	cfg   Config

	cache *rowCache
	// tiers is the compressed warm+cold store behind the hot cache; nil
	// when both tiers are disabled. dict is the compression dictionary —
	// the build-time landmark oracle, pinned for the server's lifetime
	// even after mutations retire the snapshot's answering oracle (a
	// dictionary need not be semantically current; frame checksums pin
	// every decode to the exact reference row it was encoded against).
	tiers *store.Store
	dict  *oracleRefs
	m     *metrics
	// adm is the shared admission layer: quotas, tiered inflight
	// backpressure, drain state, and the admit.* ledger, publishing into
	// the same registry as the serve.* counters.
	adm *admit.Admitter

	dynMu sync.Mutex // serializes ApplyEdge's reconcile+publish sequence

	httpSrv *httpServerRef
}

// cacheRowsDeprecation emits the one-time warning when the deprecated
// row-count cache knob is still in use; see Config.CacheRows.
var cacheRowsDeprecation sync.Once

// New builds a server: it validates the config, constructs the landmark
// oracle (unless disabled; loaded from OraclePath when it matches the
// graph), opens the tiered distance store, and seeds the version store at
// version 1.
func New(g *graph.Graph, cfg Config) (*Server, error) {
	if g == nil || g.N() == 0 {
		return nil, fmt.Errorf("serve: nil or empty graph")
	}
	if cfg.CacheBytes == 0 && cfg.CacheRows != 0 {
		cacheRowsDeprecation.Do(func() {
			fmt.Fprintln(os.Stderr, "serve: CacheRows (-cache-rows) is deprecated; "+
				"use CacheBytes (-cache-bytes) — the row alias derives CacheBytes as rows*4*n and will be removed")
		})
	}
	cfg = cfg.withDefaults()
	n := g.N()
	// Resolve the tier byte budgets. T1 falls back to the deprecated
	// row-count knob; T2 defaults to 4x T1 (compressed rows are several
	// times smaller than raw, so the same memory holds a multiple of the
	// row count); T3 is opt-in.
	t1Bytes := cfg.CacheBytes
	if t1Bytes <= 0 {
		t1Bytes = int64(cfg.CacheRows) * int64(n) * 4
	}
	warmBytes := cfg.WarmBytes
	if warmBytes == 0 {
		warmBytes = 4 * t1Bytes
	}
	if warmBytes < 0 {
		warmBytes = 0
	}
	if cfg.SpillBytes > 0 && cfg.SpillDir == "" {
		return nil, fmt.Errorf("serve: SpillBytes set without SpillDir")
	}
	s := &Server{
		n:     n,
		cfg:   cfg,
		cache: newRowCache(t1Bytes),
		m:     newServeMetrics(cfg.Metrics),
		adm: admit.New(admit.Config{
			MaxInflight:     cfg.MaxInflight,
			BestEffortShare: cfg.BestEffortShare,
			QuotaRPS:        cfg.QuotaRPS,
			QuotaBurst:      cfg.QuotaBurst,
			RequestTimeout:  cfg.RequestTimeout,
			Metrics:         cfg.Metrics,
		}),
		httpSrv: &httpServerRef{},
	}
	// "auto" is not a registry entry — the resolver replaces it per solve
	// (and its fallback, dijkstra, supports every graph), so only concrete
	// kernel names need the startup validation.
	if cfg.Kernel != "" && cfg.Kernel != core.KernelAuto {
		k, err := core.LookupKernel(cfg.Kernel)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		if err := k.Supports(g, core.Options{Workers: cfg.Workers, Kernel: cfg.Kernel}); err != nil {
			return nil, fmt.Errorf("serve: kernel %q cannot serve this graph: %w", cfg.Kernel, err)
		}
	}
	// The graph fingerprint keys every on-disk artifact (oracle file,
	// spill arena) to this exact graph; computed once, only when needed.
	var fp uint64
	if cfg.OraclePath != "" || cfg.SpillBytes > 0 {
		fp = g.Fingerprint()
	}
	var orc *oracle.Oracle
	if cfg.Landmarks > 0 {
		if cfg.OraclePath != "" {
			if o, err := oracle.Load(cfg.OraclePath, g, fp); err == nil {
				orc = o
			}
		}
		if orc == nil {
			o, err := oracle.Build(g, oracle.Options{Landmarks: cfg.Landmarks, Workers: cfg.Workers})
			if err != nil {
				return nil, fmt.Errorf("serve: oracle build: %w", err)
			}
			orc = o
			if cfg.OraclePath != "" {
				if err := orc.Save(cfg.OraclePath, fp); err != nil {
					return nil, fmt.Errorf("serve: oracle save: %w", err)
				}
			}
		}
	}
	if warmBytes > 0 || cfg.SpillBytes > 0 {
		if orc != nil {
			s.dict = newOracleRefs(orc, n)
		}
		spillPath := ""
		if cfg.SpillBytes > 0 {
			spillPath = filepath.Join(cfg.SpillDir, "parapsp-spill.arena")
		}
		var refs store.RefProvider
		if s.dict != nil {
			refs = s.dict
		}
		tiers, err := store.Open(store.Config{
			N:           n,
			WarmBytes:   warmBytes,
			SpillBytes:  cfg.SpillBytes,
			SpillPath:   spillPath,
			Fingerprint: fp,
			Refs:        refs,
			Metrics:     cfg.Metrics,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: tiered store: %w", err)
		}
		s.tiers = tiers
		s.cache.onEvict = func(src int32, ver uint64, row []matrix.Dist) {
			start := time.Now()
			s.tiers.Put(store.Key{Src: src, Ver: ver}, row)
			s.m.storeDemotes.Add(1)
			s.m.demoteT.ObserveSince(start)
		}
	}
	s.store = dyn.NewStore(g, orc)
	return s, nil
}

// oracleRefs adapts the pinned landmark oracle into the frame codec's
// compression dictionary: row src encodes against the row of the landmark
// nearest to src (refID = landmark index + 1; 0 keeps self-delta for
// vertices no landmark reaches). The nearest-landmark choice is computed
// once per vertex — it makes finite deltas triangle-bounded by d(src, L),
// the property that compresses hub-close rows to ~1 byte/entry.
type oracleRefs struct {
	o     *oracle.Oracle
	k     int
	refOf []uint32 // per-vertex refID (0 = self-delta)
}

func newOracleRefs(o *oracle.Oracle, n int) *oracleRefs {
	r := &oracleRefs{o: o, k: len(o.Landmarks()), refOf: make([]uint32, n)}
	for v := 0; v < n; v++ {
		if i, _ := o.NearestLandmark(int32(v)); i >= 0 {
			r.refOf[v] = uint32(i + 1)
		}
	}
	return r
}

func (r *oracleRefs) RefFor(src int32) (uint32, []matrix.Dist) {
	id := r.refOf[src]
	if id == 0 {
		return 0, nil
	}
	return id, r.o.FromRow(int(id - 1))
}

func (r *oracleRefs) RefRow(id uint32) []matrix.Dist {
	if id == 0 || int(id) > r.k {
		return nil
	}
	return r.o.FromRow(int(id - 1))
}

// Graph returns the currently served graph (the latest published
// version). Queries in flight may still be answering against an earlier
// pinned version.
func (s *Server) Graph() *graph.Graph { return s.store.Current().G }

// Oracle returns the landmark oracle of the current snapshot, or nil when
// disabled or retired by a mutation.
func (s *Server) Oracle() *oracle.Oracle { return s.store.Current().Oracle }

// Version returns the current graph version. It starts at 1 and increases
// by exactly one per committed mutation.
func (s *Server) Version() uint64 { return s.store.Version() }

// Metrics returns the registry the server publishes into.
func (s *Server) Metrics() *obs.Metrics { return s.cfg.Metrics }

// CachedRows returns the number of distance rows currently resident in
// the hot tier (across all versions).
func (s *Server) CachedRows() int { return s.cache.Len() }

// CachedBytes returns the resident bytes of the hot tier's rows.
func (s *Server) CachedBytes() int64 { return s.cache.Bytes() }

// StoreStats returns the compressed tiers' residency snapshot (zero when
// the tiers are disabled).
func (s *Server) StoreStats() store.Stats {
	if s.tiers == nil {
		return store.Stats{}
	}
	return s.tiers.Snapshot()
}

// Inflight returns the number of currently admitted queries (both tiers).
func (s *Server) Inflight() int { return s.adm.Inflight() }

// InflightTier returns one tier's currently admitted query count.
func (s *Server) InflightTier(t admit.Tier) int { return s.adm.InflightTier(t) }

// QuotaClients returns the number of per-client quota buckets tracked.
func (s *Server) QuotaClients() int { return s.adm.Clients() }

// Draining reports whether Shutdown has begun: new work is being refused
// with ErrClosed. A cluster router's health prober consumes this through
// /healthz to take the shard out of the ring before its final 503.
func (s *Server) Draining() bool { return s.adm.Draining() }

// admitRequest routes one query through the shared admission layer: the
// admit.Request is taken from the context (attached by the HTTP layer;
// programmatic callers default to the "local" client at BestEffort), and
// the returned release must be called exactly once with the request's
// terminal error so the admission ledger books it as completed or
// deadline_expired. The serve.requests / serve.throttled counters mirror
// the admission outcome under their historical names.
func (s *Server) admitRequest(ctx context.Context) (func(error), admit.Request, error) {
	req := admit.RequestFrom(ctx)
	if req.Client == "" {
		req.Client = "local"
	}
	release, err := s.adm.Admit(req)
	if err != nil {
		if errors.Is(err, admit.ErrQuota) || errors.Is(err, admit.ErrInflight) {
			s.m.throttled.Add(1)
		}
		return nil, req, err
	}
	s.m.requests.Add(1)
	return release, req, nil
}

func (s *Server) checkVertex(v int32) error {
	if v < 0 || int(v) >= s.n {
		return fmt.Errorf("serve: vertex %d out of range [0,%d)", v, s.n)
	}
	return nil
}

// Solver-kind values reported per request via the X-Parapsp-Solver header
// and the return of the *Kind query variants: which machinery produced the
// answers — the multi-source batch engine, the scalar subset solver, or no
// solver at all (cache hits, oracle bounds, and trivial u==v queries).
// When a solve runs, the reported value is qualified with the SSSP kernel
// that executed it, "<engine>/<kernel>": "batch/msbfs", "batch/sweep",
// "scalar/dijkstra", "scalar/delta", ... SolverCache stays unqualified —
// no kernel ran.
const (
	SolverBatch  = "batch"
	SolverScalar = "scalar"
	SolverCache  = "cache"
)

// solverKind renders the qualified kind of a completed subset solve.
func solverKind(sub *core.SubsetResult) string {
	if sub.Batched() {
		return SolverBatch + "/" + sub.Kernel
	}
	return SolverScalar + "/" + sub.Kernel
}

// Dist answers a single distance query; tol > 0 permits an approximate
// answer from the oracle bounds when the cache is cold (see Batch).
func (s *Server) Dist(ctx context.Context, u, v int32, tol float64) (Answer, error) {
	as, err := s.Batch(ctx, []Query{{U: u, V: v}}, tol)
	if err != nil {
		return Answer{}, err
	}
	return as[0], nil
}

// DistKind is Dist plus the solver kind that produced the answer.
func (s *Server) DistKind(ctx context.Context, u, v int32, tol float64) (Answer, string, error) {
	as, kind, _, err := s.BatchPinned(ctx, []Query{{U: u, V: v}}, tol)
	if err != nil {
		return Answer{}, "", err
	}
	return as[0], kind, nil
}

// Batch answers a group of queries in one admission. The sources of all
// cache-missing queries are handed to the subset solver together, so rows
// computed for one query fold into the searches of the others exactly as
// in ParAPSP.
//
// With tol > 0, a query whose source row is not cached may be answered
// approximately: if the oracle's bounds satisfy upper-lower <= tol*lower
// the upper bound is returned (so Dist <= (1+tol) * true distance), and an
// exact refinement of the source row is scheduled in the background for
// subsequent queries. tol must be finite and >= 0.
func (s *Server) Batch(ctx context.Context, qs []Query, tol float64) ([]Answer, error) {
	as, _, _, err := s.BatchPinned(ctx, qs, tol)
	return as, err
}

// BatchKind is Batch plus the solver kind of the request: a
// kernel-qualified "batch/..." or "scalar/..." value when a subset solve
// ran for the cache-missing sources, SolverCache when every query was
// answered without one.
func (s *Server) BatchKind(ctx context.Context, qs []Query, tol float64) ([]Answer, string, error) {
	as, kind, _, err := s.BatchPinned(ctx, qs, tol)
	return as, kind, err
}

// BatchPinned is BatchKind plus the graph version the request pinned: the
// whole batch — cache lookups, oracle bounds, and subset solves alike —
// is answered against exactly that snapshot, regardless of concurrent
// mutations.
func (s *Server) BatchPinned(ctx context.Context, qs []Query, tol float64) (_ []Answer, _ string, _ uint64, err error) {
	if len(qs) == 0 {
		return nil, "", 0, fmt.Errorf("serve: empty batch")
	}
	if len(qs) > s.cfg.MaxBatch {
		return nil, "", 0, fmt.Errorf("serve: batch of %d exceeds limit %d", len(qs), s.cfg.MaxBatch)
	}
	if math.IsNaN(tol) || math.IsInf(tol, 0) || tol < 0 {
		return nil, "", 0, fmt.Errorf("serve: invalid tolerance %g", tol)
	}
	for _, q := range qs {
		if err := s.checkVertex(q.U); err != nil {
			return nil, "", 0, err
		}
		if err := s.checkVertex(q.V); err != nil {
			return nil, "", 0, err
		}
	}
	release, req, err := s.admitRequest(ctx)
	if err != nil {
		return nil, "", 0, err
	}
	defer func() { release(err) }()
	// Premium means always-exact: the tier contract overrides the caller's
	// tolerance, so a premium answer is bit-identical to the FW truth even
	// when the client (or a proxy default) passed tol > 0.
	if req.Tier == admit.Premium {
		tol = 0
	}
	ctx, cancel := s.adm.WithDeadline(ctx)
	defer cancel()
	pin := s.store.Current()

	out := make([]Answer, len(qs))
	var needSrc []int32
	var pending []int // indices of out waiting on exact rows
	for i, q := range qs {
		if q.U == q.V {
			out[i] = exactAnswer(q, 0)
			s.m.exact.Add(1)
			continue
		}
		// Sketch tier: a tolerant query whose landmark bounds certify
		// upper <= (1+tol)*lower is answered from the O(k*n) oracle alone
		// — in front of all three row tiers, touching none of them. This
		// is what keeps the tolerant working set off the memory budget
		// entirely.
		if tol > 0 && pin.Oracle != nil {
			if lo, up, ok := pin.Oracle.BoundsWithin(q.U, q.V, tol); ok {
				out[i] = approxAnswer(q, lo, up)
				s.m.approx.Add(1)
				s.m.storeLookups.Add(1)
				s.m.storeSketch.Add(1)
				continue
			}
		}
		if row := s.cache.lookup(q.U, pin.Version, s.m); row != nil {
			out[i] = exactAnswer(q, row[q.V])
			s.m.exact.Add(1)
			continue
		}
		needSrc = append(needSrc, q.U)
		pending = append(pending, i)
	}
	kind := SolverCache
	if len(needSrc) > 0 {
		rows, solveKind, rerr := s.rows(ctx, pin, needSrc, req.Tier)
		if rerr != nil {
			err = rerr
			return nil, "", 0, err
		}
		kind = solveKind
		for _, i := range pending {
			q := qs[i]
			out[i] = exactAnswer(q, rows[q.U][q.V])
			s.m.exact.Add(1)
		}
	}
	return out, kind, pin.Version, nil
}

func exactAnswer(q Query, d matrix.Dist) Answer {
	jd := distToJSON(d)
	return Answer{U: q.U, V: q.V, Dist: jd, Exact: true, Lower: jd, Upper: jd}
}

func approxAnswer(q Query, lo, up matrix.Dist) Answer {
	return Answer{U: q.U, V: q.V, Dist: distToJSON(up), Exact: false,
		Lower: distToJSON(lo), Upper: distToJSON(up)}
}

func distToJSON(d matrix.Dist) int64 {
	if d == matrix.Inf {
		return -1
	}
	return int64(d)
}

// rows resolves the distance rows of the given sources through the
// tiered store at the pinned snapshot: sources this caller owns are first
// looked up in the compressed warm/cold tiers (a hit decompresses the
// frame and promotes it back into the hot cache — no solve), the rest are
// solved in one subset batch against pin.G, and sources pending under
// another request are waited on. The returned rows are immutable shared
// snapshots. The kind reports which solver ran: a kernel-qualified
// "batch/..." or "scalar/..." value when this caller solved sources,
// SolverCache when every source came from a tier, was already resident,
// or was pending under another request.
func (s *Server) rows(ctx context.Context, pin *dyn.Snapshot, sources []int32, tier admit.Tier) (map[int32][]matrix.Dist, string, error) {
	kind := SolverCache
	acq := s.cache.acquire(sources, pin.Version, tier, s.m)
	solve := acq.owned
	if len(acq.owned) > 0 && s.tiers != nil {
		var promoted []int32
		solve = solve[:0:0]
		for _, src := range acq.owned {
			start := time.Now()
			row, tier := s.tiers.Get(store.Key{Src: src, Ver: pin.Version}, nil)
			switch tier {
			case store.TierWarm:
				s.m.storeT2.Add(1)
				s.m.t2PromoteT.ObserveSince(start)
			case store.TierCold:
				s.m.storeT3.Add(1)
				s.m.t3PromoteT.ObserveSince(start)
			default:
				s.m.storeMiss.Add(1)
				solve = append(solve, src)
				continue
			}
			acq.rows[src] = row
			promoted = append(promoted, src)
		}
		if len(promoted) > 0 {
			s.cache.fulfill(promoted, pin.Version, tier, func(src int32) []matrix.Dist {
				return acq.rows[src]
			}, nil, s.m)
		}
	} else {
		s.m.storeMiss.Add(int64(len(acq.owned)))
	}
	if len(solve) > 0 {
		sub, err := core.SolveSubset(pin.G, solve, core.Options{
			Workers: s.cfg.Workers,
			Batch:   s.cfg.Batch,
			Kernel:  s.cfg.Kernel,
		})
		if err != nil {
			s.cache.fulfill(solve, pin.Version, tier, nil, err, s.m)
			return nil, "", err
		}
		s.m.solves.Add(1)
		s.m.solvedRows.Add(int64(len(solve)))
		kind = solverKind(sub)
		if sub.Batched() {
			s.m.batchSolves.Add(1)
		} else {
			s.m.scalarSolves.Add(1)
		}
		s.cache.fulfill(solve, pin.Version, tier, func(src int32) []matrix.Dist {
			// Copy out of the SubsetResult so the cache retains only the
			// rows it wants, not the whole k*n block.
			row := make([]matrix.Dist, s.n)
			copy(row, sub.Row(src))
			return row
		}, nil, s.m)
		for _, src := range solve {
			acq.rows[src] = s.cache.peek(src, pin.Version)
			if acq.rows[src] == nil {
				// Evicted between fulfill and here (cache smaller than the
				// batch): fall back to the solver's copy.
				row := make([]matrix.Dist, s.n)
				copy(row, sub.Row(src))
				acq.rows[src] = row
			}
		}
	}
	for _, e := range acq.waits {
		select {
		case <-e.ready:
			if e.err != nil {
				return nil, "", e.err
			}
			acq.rows[e.key.src] = e.row
		case <-ctx.Done():
			s.m.timeouts.Add(1)
			return nil, "", ctx.Err()
		}
	}
	return acq.rows, kind, nil
}

// Path answers an exact shortest-path query: the vertices from u to v
// inclusive, or nil when v is unreachable. Paths are reconstructed from
// u's distance row by walking predecessors over the reverse adjacency, so
// they need no O(n^2) next-hop matrix.
func (s *Server) Path(ctx context.Context, u, v int32) ([]int32, Answer, error) {
	path, ans, _, _, err := s.PathPinned(ctx, u, v)
	return path, ans, err
}

// PathKind is Path plus the solver kind that resolved u's distance row.
func (s *Server) PathKind(ctx context.Context, u, v int32) ([]int32, Answer, string, error) {
	path, ans, kind, _, err := s.PathPinned(ctx, u, v)
	return path, ans, kind, err
}

// PathPinned is PathKind plus the pinned graph version: the distance row
// and the predecessor walk both resolve against that one snapshot.
func (s *Server) PathPinned(ctx context.Context, u, v int32) (_ []int32, _ Answer, _ string, _ uint64, err error) {
	if err := s.checkVertex(u); err != nil {
		return nil, Answer{}, "", 0, err
	}
	if err := s.checkVertex(v); err != nil {
		return nil, Answer{}, "", 0, err
	}
	release, req, err := s.admitRequest(ctx)
	if err != nil {
		return nil, Answer{}, "", 0, err
	}
	defer func() { release(err) }()
	ctx, cancel := s.adm.WithDeadline(ctx)
	defer cancel()
	pin := s.store.Current()
	rows, kind, err := s.rows(ctx, pin, []int32{u}, req.Tier)
	if err != nil {
		return nil, Answer{}, "", 0, err
	}
	row := rows[u]
	ans := exactAnswer(Query{U: u, V: v}, row[v])
	s.m.exact.Add(1)
	path := reconstructPath(pin.TR, row, u, v)
	return path, ans, kind, pin.Version, nil
}

// ApplyResult reports what one committed edge mutation did: the published
// version and the fate of every cached row of the previous version.
type ApplyResult struct {
	// Version is the graph version the mutation published.
	Version uint64 `json:"version"`
	// Kind is the monotone effect class: "improve", "worsen", or "none".
	Kind string `json:"kind"`
	// OldW is the edge weight before the op (0 for an insert).
	OldW int64 `json:"old_w"`
	// Scanned counts the previous version's cached rows the mutation
	// examined; Scanned == Retagged + Repaired + Invalidated always.
	Scanned int `json:"scanned"`
	// Retagged rows were provably unaffected and carried forward for
	// free (shared, not copied).
	Retagged int `json:"retagged"`
	// Repaired rows were affected by an improving edge and fixed in
	// place by the bounded repair SSSP; RepairedLabels sums the distance
	// labels the repairs lowered.
	Repaired       int `json:"repaired"`
	RepairedLabels int `json:"repaired_labels"`
	// Invalidated rows were hit by a worsening edge through a tight arc
	// and dropped; the next query for them re-solves from scratch.
	Invalidated int `json:"invalidated"`
}

// ApplyEdge applies one edge mutation and publishes the next graph
// version. Readers are never blocked: in-flight queries keep answering
// against their pinned snapshots, and the row cache is reconciled —
// unaffected rows re-tagged, improvable rows repaired, stale rows dropped
// — before the new version becomes visible, so the first query at the new
// version already finds a warm, exact cache. Mutations are serialized.
// Conflicts (inserting an existing edge, deleting or reweighting a missing
// one) fail with dyn.ErrEdgeExists / dyn.ErrNoEdge.
func (s *Server) ApplyEdge(op dyn.EdgeOp) (ApplyResult, error) {
	// Mutations are auxiliary work: they respect the drain state (so
	// Shutdown can wait for them) but are not queries — they take no
	// inflight slot, burn no quota, and stay off the admission ledger.
	done, err := s.adm.Track()
	if err != nil {
		return ApplyResult{}, err
	}
	defer done()
	s.dynMu.Lock()
	defer s.dynMu.Unlock()

	var res ApplyResult
	next, ch, err := s.store.Mutate(op, func(old, next *dyn.Snapshot, ch dyn.Change) {
		s.reconcile(old, next, ch, &res)
	})
	if err != nil {
		if errors.Is(err, dyn.ErrNoEdge) || errors.Is(err, dyn.ErrEdgeExists) {
			s.m.mutationConflicts.Add(1)
		}
		return ApplyResult{}, err
	}
	s.m.mutations.Add(1)
	res.Version = next.Version
	res.Kind = ch.Kind.String()
	res.OldW = int64(ch.OldW)
	return res, nil
}

// reconcile carries the previous version's cached rows over to the next
// version, inside the mutation's pre-publish window (no query can run at
// next.Version yet, so installs cannot collide with single-flight owners).
func (s *Server) reconcile(old, next *dyn.Snapshot, ch dyn.Change, res *ApplyResult) {
	srcs, rows := s.cache.readyRows(old.Version)
	arcs := ch.Arcs(next.G.Undirected())
	undirected := next.G.Undirected()
	for i, src := range srcs {
		row := rows[i]
		res.Scanned++
		switch dyn.Classify(row, ch, undirected) {
		case dyn.RowUnaffected:
			s.cache.install(src, next.Version, row, s.m)
			res.Retagged++
		case dyn.RowRepairable:
			repaired := make([]matrix.Dist, len(row))
			copy(repaired, row)
			res.RepairedLabels += dyn.RepairImprove(next.G, repaired, arcs...)
			s.cache.install(src, next.Version, repaired, s.m)
			res.Repaired++
		case dyn.RowStale:
			res.Invalidated++
		}
	}
	s.m.dynScanned.Add(int64(res.Scanned))
	s.m.dynRetagged.Add(int64(res.Retagged))
	s.m.dynRepaired.Add(int64(res.Repaired))
	s.m.dynRepairedLabels.Add(int64(res.RepairedLabels))
	s.m.dynInvalidated.Add(int64(res.Invalidated))

	// The compressed tiers reconcile by the same retag/repair/drop rules,
	// still pre-publish: a frame whose decoded row the change cannot
	// affect is retagged for free (cold frames without touching disk), a
	// repairable one is repaired in place and re-encoded at the new
	// version, a stale one is dropped and re-solved on next demand.
	// Counted in serve.store.dyn.* so the hot-tier ledger above stays
	// exactly the rows the ApplyResult reports.
	if s.tiers != nil {
		st := s.tiers.Reconcile(old.Version, next.Version,
			func(row []matrix.Dist) store.Verdict {
				switch dyn.Classify(row, ch, undirected) {
				case dyn.RowUnaffected:
					return store.Keep
				case dyn.RowRepairable:
					return store.Repair
				default:
					return store.Drop
				}
			},
			func(row []matrix.Dist) {
				dyn.RepairImprove(next.G, row, arcs...)
			})
		s.m.storeDynScanned.Add(int64(st.Scanned))
		s.m.storeDynRetagged.Add(int64(st.Retagged))
		s.m.storeDynRepaired.Add(int64(st.Repaired))
		s.m.storeDynDropped.Add(int64(st.Dropped))
		s.m.storeDynAged.Add(int64(st.Aged))
	}
}

// Shutdown drains the server: new work is refused with ErrClosed, the
// embedded HTTP server (if Serve was called) stops accepting and waits for
// active connections, and background refinements are awaited. It returns
// nil when everything drained before ctx expired. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.adm.Drain()
	err := s.httpSrv.shutdown(ctx)
	if qerr := s.adm.Quiesce(ctx); qerr != nil && err == nil {
		err = qerr
	}
	// With queries drained no demotion or promotion can race the close;
	// the store drains its spill queue and stops the writeback goroutine.
	if s.tiers != nil {
		s.tiers.Close()
	}
	return err
}
