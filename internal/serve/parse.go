package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/url"
	"strconv"

	"parapsp/internal/dyn"
	"parapsp/internal/matrix"
)

// ErrParse marks request-decoding failures; the HTTP layer maps anything
// wrapping it to a 400. Parsing is strict so that malformed input can
// never reach the solver: every id is range-checked against the graph
// order, tolerances must be finite and non-negative, and batch sizes are
// bounded. The FuzzParseQuery target pins the "never panics, always 4xx"
// contract.
var ErrParse = errors.New("bad request")

// ParseDistQuery decodes the u/v/tol parameters of a /dist or /path query
// string against a graph of n vertices. tol is optional (default 0).
func ParseDistQuery(q url.Values, n int) (u, v int32, tol float64, err error) {
	u, err = parseVertex(q.Get("u"), "u", n)
	if err != nil {
		return 0, 0, 0, err
	}
	v, err = parseVertex(q.Get("v"), "v", n)
	if err != nil {
		return 0, 0, 0, err
	}
	tol, err = parseTol(q.Get("tol"))
	if err != nil {
		return 0, 0, 0, err
	}
	return u, v, tol, nil
}

func parseVertex(s, name string, n int) (int32, error) {
	if s == "" {
		return 0, fmt.Errorf("%w: missing parameter %q", ErrParse, name)
	}
	id, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: parameter %q: %v", ErrParse, name, err)
	}
	if id < 0 || id >= int64(n) {
		return 0, fmt.Errorf("%w: vertex %d out of range [0,%d)", ErrParse, id, n)
	}
	return int32(id), nil
}

func parseTol(s string) (float64, error) {
	if s == "" {
		return 0, nil
	}
	tol, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: tol: %v", ErrParse, err)
	}
	if math.IsNaN(tol) || math.IsInf(tol, 0) || tol < 0 {
		return 0, fmt.Errorf("%w: tol must be finite and >= 0, got %g", ErrParse, tol)
	}
	return tol, nil
}

// batchWire is the /batch request body. Pointer fields distinguish a
// missing id from a zero one, and decoding through int64 rejects
// out-of-int32 values cleanly instead of truncating them.
type batchWire struct {
	Queries []struct {
		U *int64 `json:"u"`
		V *int64 `json:"v"`
	} `json:"queries"`
	Tol float64 `json:"tol"`
}

// ParseBatch decodes a /batch body against a graph of n vertices, with the
// batch size capped at maxBatch. Every error wraps ErrParse.
func ParseBatch(data []byte, n, maxBatch int) ([]Query, float64, error) {
	var wire batchWire
	if err := json.Unmarshal(data, &wire); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrParse, err)
	}
	if len(wire.Queries) == 0 {
		return nil, 0, fmt.Errorf("%w: empty batch", ErrParse)
	}
	if len(wire.Queries) > maxBatch {
		return nil, 0, fmt.Errorf("%w: batch of %d exceeds limit %d", ErrParse, len(wire.Queries), maxBatch)
	}
	if math.IsNaN(wire.Tol) || math.IsInf(wire.Tol, 0) || wire.Tol < 0 {
		return nil, 0, fmt.Errorf("%w: tol must be finite and >= 0, got %g", ErrParse, wire.Tol)
	}
	qs := make([]Query, len(wire.Queries))
	for i, q := range wire.Queries {
		if q.U == nil || q.V == nil {
			return nil, 0, fmt.Errorf("%w: query %d missing u or v", ErrParse, i)
		}
		if *q.U < 0 || *q.U >= int64(n) || *q.V < 0 || *q.V >= int64(n) {
			return nil, 0, fmt.Errorf("%w: query %d vertex out of range [0,%d)", ErrParse, i, n)
		}
		qs[i] = Query{U: int32(*q.U), V: int32(*q.V)}
	}
	return qs, wire.Tol, nil
}

// edgeWire is the /edge request body. Pointer fields distinguish missing
// from zero, int64 decoding rejects overflow instead of truncating, and
// DisallowUnknownFields keeps typos (e.g. "weight") from silently parsing
// as a default-weight op.
type edgeWire struct {
	Op string `json:"op"`
	U  *int64 `json:"u"`
	V  *int64 `json:"v"`
	W  *int64 `json:"w"`
}

// ParseEdgeOp decodes a /edge mutation body against a graph of n
// vertices. The op verb must be insert, delete, or reweight; u and v are
// required and range-checked; w is required for insert and reweight
// (positive, below the Inf sentinel) and must be absent for delete.
// Self-loops are rejected here so the mutation layer only ever sees
// well-formed ops. Every error wraps ErrParse — malformed input is always
// a 4xx, never a panic, as FuzzParseEdgeOp pins.
func ParseEdgeOp(data []byte, n int) (dyn.EdgeOp, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var wire edgeWire
	if err := dec.Decode(&wire); err != nil {
		return dyn.EdgeOp{}, fmt.Errorf("%w: %v", ErrParse, err)
	}
	if dec.More() {
		return dyn.EdgeOp{}, fmt.Errorf("%w: trailing data after edge op", ErrParse)
	}
	op, err := dyn.ParseOp(wire.Op)
	if err != nil {
		return dyn.EdgeOp{}, fmt.Errorf("%w: %v", ErrParse, err)
	}
	if wire.U == nil || wire.V == nil {
		return dyn.EdgeOp{}, fmt.Errorf("%w: edge op missing u or v", ErrParse)
	}
	if *wire.U < 0 || *wire.U >= int64(n) || *wire.V < 0 || *wire.V >= int64(n) {
		return dyn.EdgeOp{}, fmt.Errorf("%w: edge vertex out of range [0,%d)", ErrParse, n)
	}
	if *wire.U == *wire.V {
		return dyn.EdgeOp{}, fmt.Errorf("%w: self-loop edges are not supported", ErrParse)
	}
	eop := dyn.EdgeOp{Op: op, U: int32(*wire.U), V: int32(*wire.V)}
	switch op {
	case dyn.OpDelete:
		if wire.W != nil {
			return dyn.EdgeOp{}, fmt.Errorf("%w: delete takes no weight", ErrParse)
		}
	default: // insert, reweight
		if wire.W == nil {
			return dyn.EdgeOp{}, fmt.Errorf("%w: %s requires a weight", ErrParse, op)
		}
		if *wire.W < 1 || *wire.W >= int64(matrix.Inf) {
			return dyn.EdgeOp{}, fmt.Errorf("%w: weight %d out of range [1,%d)", ErrParse, *wire.W, matrix.Inf)
		}
		eop.W = matrix.Dist(*wire.W)
	}
	return eop, nil
}
