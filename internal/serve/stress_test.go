package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parapsp/internal/baseline"
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// TestStressMixedWorkload hammers one server from many goroutines with a
// mix of exact, approximate, batch, and path queries over a power-law
// graph, checking every answer against a precomputed Floyd-Warshall
// oracle. The cache is deliberately undersized so eviction, re-solve, and
// single-flight coalescing all happen under contention; the run must be
// clean under -race and the cache counters must reconcile exactly
// (hits + misses == lookups).
func TestStressMixedWorkload(t *testing.T) {
	const (
		goroutines = 8
		opsPerG    = 150
	)
	g := testGraph(t, 220, 21)
	truth := baseline.FloydWarshall(g)
	s := newTestServer(t, g, Config{
		Workers:        2,
		CacheRows:      24, // << 220 sources: forces eviction + cold paths
		Landmarks:      8,
		SpillBytes:     1 << 20, // engage the cold tier too: T1->T2->T3 churn
		SpillDir:       t.TempDir(),
		MaxInflight:    2 * goroutines,
		RequestTimeout: 30 * time.Second,
	})
	h := s.Handler()
	n := int32(g.N())

	var answered, approxSeen, busy atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < goroutines; c++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(1000 + id))
			for op := 0; op < opsPerG; op++ {
				u, v := int32(rng.Intn(int(n))), int32(rng.Intn(int(n)))
				var err error
				switch op % 4 {
				case 0:
					err = stressExact(s, truth, u, v)
				case 1:
					err = stressApprox(s, truth, u, v, 0.5, &approxSeen)
				case 2:
					err = stressBatch(h, truth, rng, n)
				case 3:
					err = stressPath(h, g, truth, u, v)
				}
				if errors.Is(err, ErrBusy) {
					busy.Add(1)
					continue
				}
				if err != nil {
					t.Errorf("goroutine %d op %d: %v", id, op, err)
					return
				}
				answered.Add(1)
			}
		}(int64(c))
	}
	wg.Wait()

	if answered.Load() == 0 {
		t.Fatal("no operations completed")
	}
	// Quiesce background refinements before reading the counters: the
	// reconciliation below is only exact once no acquire is mid-flight.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	t.Logf("answered=%d approx=%d busy=%d cached=%d",
		answered.Load(), approxSeen.Load(), busy.Load(), s.CachedRows())

	snap := s.Metrics().Snapshot()
	if snap["serve.cache.lookups"] != snap["serve.cache.hits"]+snap["serve.cache.misses"] {
		t.Fatalf("cache counters do not reconcile: lookups=%d hits=%d misses=%d",
			snap["serve.cache.lookups"], snap["serve.cache.hits"], snap["serve.cache.misses"])
	}
	// The tiered-store ledger (satellite 2): every counted lookup is
	// answered by exactly one of the sketch, the three tiers, or a solve.
	wantLookups := snap["serve.store.sketch_answered"] + snap["serve.store.t1_hits"] +
		snap["serve.store.t2_promotes"] + snap["serve.store.t3_promotes"] + snap["serve.store.misses"]
	if snap["serve.store.lookups"] != wantLookups {
		t.Fatalf("store ledger does not reconcile: lookups=%d sketch=%d t1=%d t2=%d t3=%d misses=%d",
			snap["serve.store.lookups"], snap["serve.store.sketch_answered"], snap["serve.store.t1_hits"],
			snap["serve.store.t2_promotes"], snap["serve.store.t3_promotes"], snap["serve.store.misses"])
	}
	if snap["serve.solve.rows"] < snap["serve.store.misses"] {
		t.Fatalf("solved %d rows but store missed %d times (every store miss must be solved)",
			snap["serve.solve.rows"], snap["serve.store.misses"])
	}
	if got := s.CachedRows(); got > 24 {
		t.Fatalf("cache exceeded capacity: %d rows", got)
	}
	if snap["serve.store.t2_promotes"]+snap["serve.store.t3_promotes"] == 0 {
		t.Fatal("undersized hot tier never promoted from the compressed tiers")
	}
	// The admission ledger must reconcile exactly after the mixed stress:
	// every request in a rejection bucket or admitted, every admitted
	// request released into exactly one terminal bucket.
	checkAdmitLedger(t, snap)
}

func stressExact(s *Server, truth *matrix.Matrix, u, v int32) error {
	ans, err := s.Dist(context.Background(), u, v, 0)
	if err != nil {
		return err
	}
	want := distToJSON(truth.At(int(u), int(v)))
	if !ans.Exact || ans.Dist != want {
		return fmt.Errorf("exact Dist(%d,%d) = %+v, want %d", u, v, ans, want)
	}
	return nil
}

// stressApprox checks the approximate contract: the answer brackets the
// true distance (truth <= Dist <= (1+tol)*truth when finite) and the
// reported bounds are themselves valid.
func stressApprox(s *Server, truth *matrix.Matrix, u, v int32, tol float64, seen *atomic.Int64) error {
	ans, err := s.Dist(context.Background(), u, v, tol)
	if err != nil {
		return err
	}
	d := truth.At(int(u), int(v))
	want := distToJSON(d)
	if ans.Exact {
		if ans.Dist != want {
			return fmt.Errorf("exact-path approx Dist(%d,%d) = %d, want %d", u, v, ans.Dist, want)
		}
		return nil
	}
	seen.Add(1)
	if d == matrix.Inf {
		// No landmark connects the pair and the truth is unreachable: the
		// upper bound Inf (-1) is the correct inconclusive answer.
		if ans.Dist != -1 {
			return fmt.Errorf("approx Dist(%d,%d) = %d for unreachable pair", u, v, ans.Dist)
		}
		return nil
	}
	if ans.Lower > want || (ans.Upper != -1 && ans.Upper < want) {
		return fmt.Errorf("approx bounds [%d,%d] exclude truth %d for (%d,%d)", ans.Lower, ans.Upper, want, u, v)
	}
	if ans.Dist < want || float64(ans.Dist) > (1+tol)*float64(want) {
		return fmt.Errorf("approx Dist(%d,%d) = %d outside [%d, %g]", u, v, ans.Dist, want, (1+tol)*float64(want))
	}
	return nil
}

func stressBatch(h http.Handler, truth *matrix.Matrix, rng *rand.Rand, n int32) error {
	qs := make([]Query, 4)
	var sb strings.Builder
	sb.WriteString(`{"queries":[`)
	for i := range qs {
		qs[i] = Query{U: int32(rng.Intn(int(n))), V: int32(rng.Intn(int(n)))}
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"u":%d,"v":%d}`, qs[i].U, qs[i].V)
	}
	sb.WriteString(`]}`)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader(sb.String())))
	if rec.Code == http.StatusTooManyRequests {
		return ErrBusy
	}
	if rec.Code != http.StatusOK {
		return fmt.Errorf("/batch status %d: %s", rec.Code, rec.Body)
	}
	var body batchBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		return err
	}
	if len(body.Answers) != len(qs) {
		return fmt.Errorf("/batch returned %d answers for %d queries", len(body.Answers), len(qs))
	}
	for i, a := range body.Answers {
		want := distToJSON(truth.At(int(qs[i].U), int(qs[i].V)))
		if a.Dist != want {
			return fmt.Errorf("/batch answer %d = %d, want %d", i, a.Dist, want)
		}
	}
	return nil
}

// stressPath validates a /path response structurally: consecutive vertices
// are adjacent, edge weights sum to the reported distance, and the
// distance matches the oracle.
func stressPath(h http.Handler, g *graph.Graph, truth *matrix.Matrix, u, v int32) error {
	rec := httptest.NewRecorder()
	target := fmt.Sprintf("/path?u=%d&v=%d", u, v)
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	if rec.Code == http.StatusTooManyRequests {
		return ErrBusy
	}
	if rec.Code != http.StatusOK {
		return fmt.Errorf("%s status %d: %s", target, rec.Code, rec.Body)
	}
	var body pathBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		return err
	}
	want := distToJSON(truth.At(int(u), int(v)))
	if body.Dist != want {
		return fmt.Errorf("%s dist = %d, want %d", target, body.Dist, want)
	}
	if want == -1 {
		if len(body.Path) != 0 {
			return fmt.Errorf("%s returned a path for an unreachable pair", target)
		}
		return nil
	}
	p := body.Path
	if len(p) == 0 || p[0] != u || p[len(p)-1] != v {
		return fmt.Errorf("%s path endpoints wrong: %v", target, p)
	}
	var total int64
	for i := 0; i+1 < len(p); i++ {
		// Multigraph: a shortest path always uses the lightest parallel arc.
		adj, wts := g.NeighborsW(p[i])
		step := int64(-1)
		for j, w := range adj {
			if w == p[i+1] {
				arcW := int64(1)
				if wts != nil {
					arcW = int64(wts[j])
				}
				if step < 0 || arcW < step {
					step = arcW
				}
			}
		}
		if step < 0 {
			return fmt.Errorf("%s path uses nonexistent arc %d->%d", target, p[i], p[i+1])
		}
		total += step
	}
	if total != want {
		return fmt.Errorf("%s path weighs %d, distance says %d", target, total, want)
	}
	return nil
}
