package serve

import (
	"container/list"
	"sync"

	"parapsp/internal/admit"
	"parapsp/internal/matrix"
)

// rowKey identifies one cached distance row: a source vertex at a graph
// version. Versioning the key is what lets mutations and queries overlap
// without blocking: a query pinned to version p only ever sees rows
// computed for p, while a mutation installs the next version's rows (by
// re-tag, repair, or omission) alongside the old ones. Entries of
// superseded versions age out through the ordinary LRU.
type rowKey struct {
	src int32
	ver uint64
}

// pendingKey identifies one in-flight solve: a row key plus the SLO tier
// of the request that started it. Coalescing is cross-client but
// per-tier — every concurrent request for the same (src, ver, tier)
// rides one solve, while a premium request never queues behind a
// best-effort-initiated solve (whose owner may be sharing the contended
// best-effort slice of the inflight budget). The *completed* row is
// tier-blind: both tiers' solves land in the same (src, ver)-keyed store,
// so a premium solve warms best-effort traffic and vice versa.
type pendingKey struct {
	src  int32
	ver  uint64
	tier admit.Tier
}

// rowCache is an LRU cache of completed distance rows keyed by (source,
// version), with single-flight deduplication keyed by (source, version,
// tier): concurrent requests for the same uncomputed key at the same tier
// produce exactly one subset solve. The first caller to miss becomes the
// *owner* of that pending key and must call fulfill with the solved row
// (or an error); everyone else who arrives while the entry is pending
// blocks on the entry's ready channel.
//
// A pending entry is pinned (it lives outside the LRU), because waiters
// hold a pointer to it and the owner will fulfill it. Eviction removes a
// ready entry from the index but never touches its row slice, so a reader
// that obtained the row before the eviction keeps a valid immutable
// snapshot (rows are written once, before the ready channel closes, and
// never mutated after).
//
// Capacity is a byte budget (4 bytes per distance label), not a row
// count: this is the hot tier (T1) of the tiered store, and byte
// accounting is what lets the three tier budgets compose into one memory
// envelope. At least one ready row is always retained, so a budget below
// one row degrades to a single-row cache instead of thrashing. Evicted
// rows are handed to onEvict (when set) outside the cache mutex — the
// serving layer demotes them into the compressed warm tier instead of
// discarding the compute they embody.
type rowCache struct {
	mu       sync.Mutex
	capBytes int64
	bytes    int64                      // bytes of ready rows resident in the LRU
	entries  map[rowKey]*cacheEntry     // ready rows
	pending  map[pendingKey]*cacheEntry // in-flight solves
	lru      *list.List                 // ready entries, front = most recently used

	// onEvict, when non-nil, receives each evicted ready entry after the
	// cache mutex is released. It must not call back into the cache.
	onEvict func(src int32, ver uint64, row []matrix.Dist)
}

// cacheEntry is one source row at one version. row and err are written by
// the owner before close(ready) and are immutable afterwards; the channel
// close is the publication point.
type cacheEntry struct {
	key   rowKey
	row   []matrix.Dist
	err   error
	ready chan struct{}
	elem  *list.Element // non-nil while resident in the LRU (ready only)
}

func newRowCache(capBytes int64) *rowCache {
	if capBytes < 1 {
		capBytes = 1
	}
	return &rowCache{
		capBytes: capBytes,
		entries:  make(map[rowKey]*cacheEntry),
		pending:  make(map[pendingKey]*cacheEntry),
		lru:      list.New(),
	}
}

// rowBytes is the resident cost of one ready row.
func rowBytes(row []matrix.Dist) int64 { return int64(len(row)) * 4 }

// acquisition is the outcome of one batched cache lookup.
type acquisition struct {
	// rows holds the sources whose rows were ready immediately.
	rows map[int32][]matrix.Dist
	// owned are the sources this caller created pending entries for; it
	// must solve them and call fulfill exactly once, at the same tier.
	owned []int32
	// waits are pending entries owned by other in-flight callers of the
	// same tier.
	waits []*cacheEntry
}

// acquire classifies each (deduplicated) source at version ver as ready,
// pending under this tier elsewhere, or owned by this caller, updating
// the hit/miss counters in one critical section so that hits + misses ==
// lookups always reconciles. A ready row counts as a hit for any tier; a
// same-tier pending entry counts as a hit too (the coalesced counter
// separates it); only a key that triggers a new solve counts as a miss —
// including the rare cross-tier duplicate, where a premium caller starts
// its own solve rather than queueing behind a best-effort one.
func (c *rowCache) acquire(sources []int32, ver uint64, tier admit.Tier, m *metrics) acquisition {
	acq := acquisition{rows: make(map[int32][]matrix.Dist, len(sources))}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range sources {
		if _, dup := acq.rows[s]; dup {
			continue // deduplicate within the batch without recounting
		}
		if containsOwned(acq.owned, s) || containsWait(acq.waits, s) {
			continue
		}
		m.lookups.Add(1)
		m.storeLookups.Add(1)
		if e, ok := c.entries[rowKey{src: s, ver: ver}]; ok {
			m.hits.Add(1)
			m.storeT1.Add(1)
			c.lru.MoveToFront(e.elem)
			acq.rows[s] = e.row
			continue
		}
		if e, ok := c.pending[pendingKey{src: s, ver: ver, tier: tier}]; ok {
			m.hits.Add(1)
			m.storeT1.Add(1)
			m.coalesced.Add(1)
			acq.waits = append(acq.waits, e)
			continue
		}
		// A hot miss is not yet a store miss: the caller consults the
		// compressed tiers before solving, and the outcome lands in exactly
		// one of serve.store.{t2_promotes, t3_promotes, misses}.
		m.misses.Add(1)
		e := &cacheEntry{key: rowKey{src: s, ver: ver}, ready: make(chan struct{})}
		c.pending[pendingKey{src: s, ver: ver, tier: tier}] = e
		acq.owned = append(acq.owned, s)
	}
	return acq
}

func containsOwned(owned []int32, s int32) bool {
	for _, o := range owned {
		if o == s {
			return true
		}
	}
	return false
}

func containsWait(waits []*cacheEntry, s int32) bool {
	for _, w := range waits {
		if w.key.src == s {
			return true
		}
	}
	return false
}

// fulfill publishes the solved rows (or the shared error) for the sources
// previously acquired as owned at version ver and tier, inserts the ready
// entries into the LRU and evicts past capacity. rowOf returns the
// immutable row for a source; on a non-nil err the pending entries are
// removed instead so a later request retries. When a cross-tier duplicate
// solve fulfilled the same (src, ver) first, the existing ready row is
// kept and this tier's waiters are simply released onto this copy — the
// two rows are both exact, and double-accounting the bytes would break
// the budget.
func (c *rowCache) fulfill(owned []int32, ver uint64, tier admit.Tier, rowOf func(int32) []matrix.Dist, err error, m *metrics) {
	c.mu.Lock()
	for _, s := range owned {
		pk := pendingKey{src: s, ver: ver, tier: tier}
		e := c.pending[pk]
		if e == nil {
			continue // impossible unless fulfill is called twice; be safe
		}
		delete(c.pending, pk)
		if err != nil {
			e.err = err
		} else {
			e.row = rowOf(s)
			if _, dup := c.entries[e.key]; !dup {
				c.entries[e.key] = e
				e.elem = c.lru.PushFront(e)
				c.bytes += rowBytes(e.row)
			}
		}
		close(e.ready)
	}
	evicted := c.evictOverCap(m)
	c.mu.Unlock()
	c.demote(evicted)
}

// demote hands evicted entries to the onEvict hook outside the cache
// mutex (the hook encodes into the compressed tiers, which takes the
// store's own lock).
func (c *rowCache) demote(evicted []*cacheEntry) {
	if c.onEvict == nil {
		return
	}
	for _, e := range evicted {
		c.onEvict(e.key.src, e.key.ver, e.row)
	}
}

// install inserts an already-solved row as a ready entry for (src, ver) —
// the mutation path's re-tag/repair primitive, run before the version it
// tags becomes current (so no pending entry for that version can exist).
// The row is shared, not copied; callers hand over an immutable slice. A
// pre-existing ready entry for the key wins; install then reports false.
func (c *rowCache) install(src int32, ver uint64, row []matrix.Dist, m *metrics) bool {
	c.mu.Lock()
	key := rowKey{src: src, ver: ver}
	if _, ok := c.entries[key]; ok {
		c.mu.Unlock()
		return false
	}
	e := &cacheEntry{key: key, row: row, ready: make(chan struct{})}
	close(e.ready)
	c.entries[key] = e
	e.elem = c.lru.PushFront(e)
	c.bytes += rowBytes(row)
	evicted := c.evictOverCap(m)
	c.mu.Unlock()
	c.demote(evicted)
	return true
}

// readyRows snapshots the ready entries of version ver: the row set a
// mutation must reconcile. Rows are immutable shared slices.
func (c *rowCache) readyRows(ver uint64) (srcs []int32, rows [][]matrix.Dist) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, e := range c.entries {
		if key.ver == ver {
			srcs = append(srcs, key.src)
			rows = append(rows, e.row)
		}
	}
	return srcs, rows
}

// evictOverCap trims the LRU to the byte budget, always retaining at
// least one ready row, and returns the evicted entries for demotion.
// Callers hold c.mu and must pass the return to demote after unlocking.
func (c *rowCache) evictOverCap(m *metrics) []*cacheEntry {
	var evicted []*cacheEntry
	for c.bytes > c.capBytes && c.lru.Len() > 1 {
		back := c.lru.Back()
		e := c.lru.Remove(back).(*cacheEntry)
		delete(c.entries, e.key)
		e.elem = nil
		c.bytes -= rowBytes(e.row)
		m.evictions.Add(1)
		evicted = append(evicted, e)
	}
	return evicted
}

// lookup is the counting fast-path variant of peek: a ready row at the
// pinned version counts as one lookup + hit and refreshes its LRU
// recency. Absence counts nothing, because the caller goes on to acquire
// the source, where it is counted as a hit or a miss — so hits + misses
// == lookups stays exact.
func (c *rowCache) lookup(s int32, ver uint64, m *metrics) []matrix.Dist {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[rowKey{src: s, ver: ver}]; ok {
		m.lookups.Add(1)
		m.hits.Add(1)
		m.storeLookups.Add(1)
		m.storeT1.Add(1)
		c.lru.MoveToFront(e.elem)
		return e.row
	}
	return nil
}

// peek returns the ready row for (s, ver) without counting a lookup,
// creating an entry, or touching the LRU order. Internal readers
// (post-fulfill copies) use it so bookkeeping reflects only real queries.
func (c *rowCache) peek(s int32, ver uint64) []matrix.Dist {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[rowKey{src: s, ver: ver}]; ok {
		return e.row
	}
	return nil
}

// Len returns the number of ready rows currently resident (all versions).
func (c *rowCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes returns the resident bytes of ready rows (all versions).
func (c *rowCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
