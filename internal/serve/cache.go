package serve

import (
	"container/list"
	"sync"

	"parapsp/internal/matrix"
)

// rowCache is an LRU cache of completed distance rows keyed by source
// vertex, with single-flight deduplication: concurrent requests for the
// same uncomputed source produce exactly one subset solve. The first
// caller to miss becomes the *owner* of that source and must call fulfill
// with the solved row (or an error); everyone else who arrives while the
// entry is pending blocks on the entry's ready channel.
//
// Only ready entries participate in LRU eviction — a pending entry is
// pinned, because waiters hold a pointer to it and the owner will fulfill
// it. Eviction removes an entry from the index but never touches its row
// slice, so a reader that obtained the row before the eviction keeps a
// valid immutable snapshot (rows are written once, before the ready
// channel closes, and never mutated after).
type rowCache struct {
	mu      sync.Mutex
	cap     int
	entries map[int32]*cacheEntry
	lru     *list.List // ready entries, front = most recently used
}

// cacheEntry is one source row. row and err are written by the owner
// before close(ready) and are immutable afterwards; the channel close is
// the publication point.
type cacheEntry struct {
	src   int32
	row   []matrix.Dist
	err   error
	ready chan struct{}
	elem  *list.Element // non-nil while resident in the LRU (ready only)
}

func newRowCache(capacity int) *rowCache {
	if capacity < 1 {
		capacity = 1
	}
	return &rowCache{
		cap:     capacity,
		entries: make(map[int32]*cacheEntry, capacity),
		lru:     list.New(),
	}
}

// acquisition is the outcome of one batched cache lookup.
type acquisition struct {
	// rows holds the sources whose rows were ready immediately.
	rows map[int32][]matrix.Dist
	// owned are the sources this caller created pending entries for; it
	// must solve them and call fulfill exactly once.
	owned []int32
	// waits are pending entries owned by other in-flight callers.
	waits []*cacheEntry
}

// acquire classifies each (deduplicated) source as ready, pending
// elsewhere, or owned by this caller, updating the hit/miss counters in
// one critical section so that hits + misses == lookups always reconciles.
// A source found in the cache counts as a hit whether its row is already
// ready or still being computed (the coalesced counter separates the
// latter); only a source that triggers a new solve counts as a miss.
func (c *rowCache) acquire(sources []int32, m *metrics) acquisition {
	acq := acquisition{rows: make(map[int32][]matrix.Dist, len(sources))}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range sources {
		if _, dup := acq.rows[s]; dup {
			continue // deduplicate within the batch without recounting
		}
		if containsOwned(acq.owned, s) || containsWait(acq.waits, s) {
			continue
		}
		m.lookups.Add(1)
		if e, ok := c.entries[s]; ok {
			m.hits.Add(1)
			if e.elem != nil {
				c.lru.MoveToFront(e.elem)
				acq.rows[s] = e.row
			} else {
				m.coalesced.Add(1)
				acq.waits = append(acq.waits, e)
			}
			continue
		}
		m.misses.Add(1)
		e := &cacheEntry{src: s, ready: make(chan struct{})}
		c.entries[s] = e
		acq.owned = append(acq.owned, s)
	}
	return acq
}

func containsOwned(owned []int32, s int32) bool {
	for _, o := range owned {
		if o == s {
			return true
		}
	}
	return false
}

func containsWait(waits []*cacheEntry, s int32) bool {
	for _, w := range waits {
		if w.src == s {
			return true
		}
	}
	return false
}

// fulfill publishes the solved rows (or the shared error) for the sources
// previously acquired as owned, inserts the ready entries into the LRU and
// evicts past capacity. rowOf returns the immutable row for a source; on a
// non-nil err the entries are removed instead so a later request retries.
func (c *rowCache) fulfill(owned []int32, rowOf func(int32) []matrix.Dist, err error, m *metrics) {
	c.mu.Lock()
	for _, s := range owned {
		e := c.entries[s]
		if e == nil || e.elem != nil {
			continue // impossible unless fulfill is called twice; be safe
		}
		if err != nil {
			e.err = err
			delete(c.entries, s)
		} else {
			e.row = rowOf(s)
			e.elem = c.lru.PushFront(e)
		}
		close(e.ready)
	}
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		e := c.lru.Remove(back).(*cacheEntry)
		delete(c.entries, e.src)
		e.elem = nil
		m.evictions.Add(1)
	}
	c.mu.Unlock()
}

// lookup is the counting fast-path variant of peek: a ready row counts as
// one lookup + hit and refreshes its LRU recency. Absence counts nothing,
// because the caller goes on to acquire the source, where it is counted as
// a hit or a miss — so hits + misses == lookups stays exact.
func (c *rowCache) lookup(s int32, m *metrics) []matrix.Dist {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[s]; ok && e.elem != nil {
		m.lookups.Add(1)
		m.hits.Add(1)
		c.lru.MoveToFront(e.elem)
		return e.row
	}
	return nil
}

// peek returns the ready row for s without counting a lookup, creating an
// entry, or touching the LRU order. Internal readers (post-fulfill copies,
// refinement dedup) use it so bookkeeping reflects only real queries.
func (c *rowCache) peek(s int32) []matrix.Dist {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[s]; ok && e.elem != nil {
		return e.row
	}
	return nil
}

// contains reports whether s is resident or pending (used to skip
// redundant background refinements).
func (c *rowCache) contains(s int32) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[s]
	return ok
}

// Len returns the number of ready rows currently resident.
func (c *rowCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
