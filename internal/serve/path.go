package serve

import (
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// reconstructPath rebuilds the shortest path u -> v from u's distance row
// alone, walking backwards from v: a vertex w precedes t on some shortest
// path iff there is an arc w->t with row[w] + weight(w,t) == row[t]. The
// incoming arcs of t are the outgoing arcs of t in tr, the reverse graph
// (tr aliases g for undirected graphs). Returns nil when v is unreachable.
// Cost is O(path length * max in-degree), with no next-hop matrix.
func reconstructPath(tr *graph.Graph, row []matrix.Dist, u, v int32) []int32 {
	if row[v] == matrix.Inf {
		return nil
	}
	// Collected in reverse (v first), then flipped.
	path := []int32{v}
	cur := v
	for cur != u {
		adj, wts := tr.NeighborsW(cur)
		prev := int32(-1)
		for i, w := range adj {
			wt := matrix.Dist(1)
			if wts != nil {
				wt = wts[i]
			}
			if row[w] != matrix.Inf && matrix.AddSat(row[w], wt) == row[cur] {
				prev = w
				break
			}
		}
		if prev < 0 || len(path) > len(row) {
			// A finite distance always has a predecessor on a shortest
			// path; this guard only trips on a corrupted row.
			return nil
		}
		path = append(path, prev)
		cur = prev
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
