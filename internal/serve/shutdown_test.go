package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"parapsp/internal/baseline"
)

// TestShutdownDrainsInFlight is the drain-semantics acceptance test: a
// server under concurrent load is shut down while requests are in flight,
// and every request that was admitted must still receive a complete,
// correct response ("no dropped responses"). Afterwards the goroutine
// count must return to its pre-server baseline ("no goroutine leaks").
func TestShutdownDrainsInFlight(t *testing.T) {
	baselineGoroutines := runtime.NumGoroutine()

	g := testGraph(t, 400, 17)
	truth := baseline.FloydWarshall(g)
	s, err := New(g, Config{
		Workers:        1,
		CacheRows:      512, // no eviction noise; every query is a cold solve
		Landmarks:      -1,
		MaxInflight:    64,
		RequestTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	base := "http://" + l.Addr().String()
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

	const clients = 12
	type result struct {
		u, v   int32
		status int
		dist   int64
		err    error
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			u, v := int32(i*7+1), int32(i*11+3) // distinct cold sources
			r := result{u: u, v: v}
			resp, err := client.Get(fmt.Sprintf("%s/dist?u=%d&v=%d", base, u, v))
			if err != nil {
				r.err = err
			} else {
				r.status = resp.StatusCode
				var ans Answer
				err := json.NewDecoder(resp.Body).Decode(&ans)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if err != nil {
					r.err = fmt.Errorf("truncated response: %w", err)
				}
				r.dist = ans.Dist
			}
			results[i] = r
		}(i)
	}

	// Initiate shutdown as soon as the server has admitted every request,
	// so the drain genuinely overlaps in-flight work.
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().Snapshot()["serve.requests"] < clients {
		if time.Now().After(deadline) {
			t.Fatal("requests were not admitted in time")
		}
		time.Sleep(100 * time.Microsecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	wg.Wait()

	// Every admitted request must have completed with a correct answer.
	for _, r := range results {
		if r.err != nil {
			t.Fatalf("request (%d,%d) dropped during drain: %v", r.u, r.v, r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("request (%d,%d) got status %d during drain", r.u, r.v, r.status)
		}
		if want := distToJSON(truth.At(int(r.u), int(r.v))); r.dist != want {
			t.Fatalf("request (%d,%d) = %d, want %d", r.u, r.v, r.dist, want)
		}
	}

	// The listener is closed: new connections must be refused.
	if _, err := client.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after drain")
	}

	// No goroutine leaks: everything the server started has exited. Allow
	// a short settling window for netpoll/runtime goroutines to unwind.
	leakDeadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baselineGoroutines+2 {
			break
		} else if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d now vs %d at baseline\n%s",
				n, baselineGoroutines, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
