package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parapsp/internal/baseline"
	"parapsp/internal/dyn"
	"parapsp/internal/gen"
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// applyReplica mirrors one committed server mutation onto a local graph
// replica, using the same copy-on-write splice the store uses — so the
// replica at version k is structurally identical to the server's snapshot
// at version k.
func applyReplica(t *testing.T, g *graph.Graph, op dyn.EdgeOp) *graph.Graph {
	t.Helper()
	var (
		ng  *graph.Graph
		err error
	)
	switch op.Op {
	case dyn.OpInsert, dyn.OpReweight:
		ng, _, _, err = g.WithArc(op.U, op.V, op.W)
	case dyn.OpDelete:
		ng, _, err = g.WithoutArc(op.U, op.V)
	}
	if err != nil {
		t.Fatalf("replica %v: %v", op, err)
	}
	return ng
}

// pickOp draws a mutation that is valid against the replica's current
// edge set, the same scheme the dyn differential tests use.
func pickOp(rng *rand.Rand, g *graph.Graph) dyn.EdgeOp {
	n := int32(g.N())
	for {
		u := rng.Int31n(n)
		v := rng.Int31n(n - 1)
		if v >= u {
			v++
		}
		w := matrix.Dist(1 + rng.Intn(9))
		_, exists := g.ArcWeight(u, v)
		switch rng.Intn(3) {
		case 0:
			if !exists {
				return dyn.EdgeOp{Op: dyn.OpInsert, U: u, V: v, W: w}
			}
		case 1:
			if exists {
				return dyn.EdgeOp{Op: dyn.OpDelete, U: u, V: v}
			}
		default:
			if exists {
				return dyn.EdgeOp{Op: dyn.OpReweight, U: u, V: v, W: w}
			}
		}
	}
}

// TestDynamicMutateWhileQueryDifferential is the headline chaos harness of
// the dynamic subsystem: query workers and one mutator hammer a single
// server concurrently — well over a thousand interleaved operations — and
// every completed answer is recorded together with the graph version it
// was pinned to. Afterwards the mutation log is replayed sequentially and
// every pinned version's ground truth recomputed with Floyd-Warshall:
// each answer must match the FW distance at exactly its pinned version,
// no matter how many mutations landed while the query was in flight.
// The run must be clean under -race, the cache ledger must reconcile
// (lookups == hits + misses), and so must the mutation ledger
// (scanned == retagged + repaired + invalidated).
func TestDynamicMutateWhileQueryDifferential(t *testing.T) {
	const (
		n          = 64
		queryGs    = 7
		queriesPer = 150 // 7*150 = 1050 query ops + 200 mutations interleaved
		mutations  = 200
	)
	g0, err := gen.PowerLawConfiguration(n, 2.5, 2, true, 29, gen.Weighting{Min: 1, Max: 9})
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	s := newTestServer(t, g0, Config{
		Workers:     2,
		CacheRows:   32, // < n: evictions happen alongside reconciliation
		Landmarks:   -1, // exact answers only: every answer is FW-checkable
		MaxInflight: 4 * queryGs,
	})

	type obsAnswer struct {
		u, v int32
		dist int64
		ver  uint64
	}
	perG := make([][]obsAnswer, queryGs)
	// Two-sided pacing keeps the sides genuinely interleaved regardless of
	// scheduler bursts: a query batch waits for ~1 mutation per 5 batches
	// issued, and a mutation waits for >= 3 batches answered since the
	// previous mutation. The allowances are compatible — when mutation i
	// commits, answered is at most 5i+5 (the worker-side cap at m=i), and
	// incrementing mutDone raises that cap to 5i+10, which covers the
	// next mutation's requirement of at most 5i+8 — so the lockstep can
	// never deadlock, while every published version gets answered queries
	// pinned to it instead of answers clustering on a few snapshots.
	var answered, batchesStarted, mutDone atomic.Int64
	var failed atomic.Bool
	ops := make([]dyn.EdgeOp, 0, mutations)

	var wg sync.WaitGroup
	for c := 0; c < queryGs; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(3000 + int64(id)))
			recs := make([]obsAnswer, 0, queriesPer*2)
			for op := 0; op < queriesPer; op++ {
				need := (batchesStarted.Add(1) - 1) / 5
				if need > mutations {
					need = mutations
				}
				for mutDone.Load() < need {
					if failed.Load() {
						return
					}
					runtime.Gosched()
				}
				k := 1 + rng.Intn(3)
				qs := make([]Query, k)
				for i := range qs {
					qs[i] = Query{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
				}
				as, _, ver, err := s.BatchPinned(context.Background(), qs, 0)
				if err != nil {
					failed.Store(true)
					t.Errorf("worker %d: BatchPinned: %v", id, err)
					return
				}
				for _, a := range as {
					recs = append(recs, obsAnswer{u: a.U, v: a.V, dist: a.Dist, ver: ver})
				}
				answered.Add(1)
			}
			perG[id] = recs
		}(c)
	}

	// Mutator: each committed op is mirrored onto a local replica (the
	// sequential ground truth the verification replays) and its
	// reconciliation ledger is checked per mutation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(77))
		replica := g0
		var last int64
		for i := 0; i < mutations; i++ {
			for answered.Load() < last+3 {
				if failed.Load() {
					return // don't spin forever if the query side died
				}
				runtime.Gosched()
			}
			op := pickOp(rng, replica)
			res, err := s.ApplyEdge(op)
			if err != nil {
				t.Errorf("mutation %d %v: %v", i, op, err)
				return
			}
			if res.Version != uint64(i+2) {
				t.Errorf("mutation %d published version %d, want %d", i, res.Version, i+2)
				return
			}
			if res.Scanned != res.Retagged+res.Repaired+res.Invalidated {
				t.Errorf("mutation %d ledger: scanned=%d != retagged=%d + repaired=%d + invalidated=%d",
					i, res.Scanned, res.Retagged, res.Repaired, res.Invalidated)
				return
			}
			replica = applyReplica(t, replica, op)
			ops = append(ops, op)
			// Read answered before raising the worker allowance: reading
			// after could capture the new allowance's batches and push the
			// next requirement past what workers are permitted to deliver.
			last = answered.Load()
			mutDone.Add(1)
		}
	}()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Drain before reading counters, as the non-mutating stress test does.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Replay the mutation log: version 1 is the seed graph, version k+1 is
	// the replica after the k-th op — bitwise the graphs the server served.
	graphs := make([]*graph.Graph, len(ops)+2)
	graphs[1] = g0
	cur := g0
	for i, op := range ops {
		cur = applyReplica(t, cur, op)
		graphs[i+2] = cur
	}

	// Differential check: FW ground truth per pinned version, computed
	// lazily for the versions that actually answered queries.
	truth := make(map[uint64]*matrix.Matrix)
	versions := make(map[uint64]int)
	total := 0
	for id, recs := range perG {
		for _, r := range recs {
			if r.ver == 0 || int(r.ver) >= len(graphs) || graphs[r.ver] == nil {
				t.Fatalf("worker %d answer pinned to unknown version %d", id, r.ver)
			}
			m := truth[r.ver]
			if m == nil {
				m = baseline.FloydWarshall(graphs[r.ver])
				truth[r.ver] = m
			}
			if want := distToJSON(m.At(int(r.u), int(r.v))); r.dist != want {
				t.Fatalf("answer (%d,%d)=%d at version %d, FW says %d",
					r.u, r.v, r.dist, r.ver, want)
			}
			versions[r.ver]++
			total++
		}
	}
	t.Logf("verified %d answers across %d distinct pinned versions (%d mutations)",
		total, len(versions), len(ops))
	if total == 0 {
		t.Fatal("no answers recorded")
	}
	if len(versions) < 50 {
		t.Fatalf("answers span only %d versions; mutations did not interleave with queries", len(versions))
	}

	// Ledgers (the mutating extension of the stress-test reconciliation):
	// cache counters stay exact under mutation, and the dynamic ledger
	// accounts for every row the reconciler examined.
	snap := s.Metrics().Snapshot()
	if snap["serve.cache.lookups"] != snap["serve.cache.hits"]+snap["serve.cache.misses"] {
		t.Fatalf("cache counters do not reconcile under mutation: lookups=%d hits=%d misses=%d",
			snap["serve.cache.lookups"], snap["serve.cache.hits"], snap["serve.cache.misses"])
	}
	if snap["serve.dyn.scanned"] != snap["serve.dyn.retagged"]+snap["serve.dyn.repaired"]+snap["serve.dyn.invalidated"] {
		t.Fatalf("dyn ledger does not reconcile: scanned=%d retagged=%d repaired=%d invalidated=%d",
			snap["serve.dyn.scanned"], snap["serve.dyn.retagged"],
			snap["serve.dyn.repaired"], snap["serve.dyn.invalidated"])
	}
	if got := snap["serve.dyn.mutations"]; got != mutations {
		t.Fatalf("serve.dyn.mutations = %d, want %d", got, mutations)
	}
	if snap["serve.dyn.retagged"] == 0 || snap["serve.dyn.invalidated"] == 0 {
		t.Fatalf("reconciler never exercised retag (%d) or invalidate (%d)",
			snap["serve.dyn.retagged"], snap["serve.dyn.invalidated"])
	}
	// The tiered store reconciles alongside the hot cache: its ledger
	// must account for every compressed frame a mutation examined.
	if snap["serve.store.dyn.scanned"] != snap["serve.store.dyn.retagged"]+
		snap["serve.store.dyn.repaired"]+snap["serve.store.dyn.dropped"] {
		t.Fatalf("store dyn ledger does not reconcile: scanned=%d retagged=%d repaired=%d dropped=%d",
			snap["serve.store.dyn.scanned"], snap["serve.store.dyn.retagged"],
			snap["serve.store.dyn.repaired"], snap["serve.store.dyn.dropped"])
	}
}

// TestVersionPinnedCacheSemantics pins the cache isolation contract: a
// row cached at version v is never touched by the v+1 reconcile — readers
// pinned to v keep seeing exactly v's distances — while the repaired v+1
// copy answers new queries without a re-solve.
func TestVersionPinnedCacheSemantics(t *testing.T) {
	const n = 32
	g, err := gen.PowerLawConfiguration(n, 2.5, 2, true, 41, gen.Weighting{Min: 2, Max: 9})
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	s := newTestServer(t, g, Config{Workers: 1, CacheRows: n, Landmarks: -1})
	ctx := context.Background()
	truth1 := baseline.FloydWarshall(g)

	src := int32(0)
	as, _, ver, err := s.BatchPinned(ctx, []Query{{U: src, V: int32(n - 1)}}, 0)
	if err != nil || ver != 1 {
		t.Fatalf("seed query: as=%v ver=%d err=%v", as, ver, err)
	}

	// Find an insert that provably improves src's cached row, so the
	// reconcile takes the repair path (not just a retag).
	row1 := truth1.Row(int(src))
	var op dyn.EdgeOp
found:
	for u := int32(0); u < n; u++ {
		for v := int32(0); v < n; v++ {
			if u == v {
				continue
			}
			if _, exists := g.ArcWeight(u, v); exists {
				continue
			}
			if _, exists := g.ArcWeight(v, u); exists {
				continue // undirected: the splice writes both directions
			}
			op = dyn.EdgeOp{Op: dyn.OpInsert, U: u, V: v, W: 1}
			ch := dyn.Change{Op: op, Kind: dyn.KindImprove}
			if dyn.Classify(row1, ch, true) == dyn.RowRepairable {
				break found
			}
			op = dyn.EdgeOp{}
		}
	}
	if op.Op == 0 {
		t.Fatal("no row-improving insert found in test graph")
	}

	missesBefore := s.Metrics().Snapshot()["serve.cache.misses"]
	res, err := s.ApplyEdge(op)
	if err != nil {
		t.Fatalf("ApplyEdge(%v): %v", op, err)
	}
	if res.Version != 2 || res.Repaired == 0 {
		t.Fatalf("mutation result %+v: want version 2 with a repaired row", res)
	}

	g2 := applyReplica(t, g, op)
	truth2 := baseline.FloydWarshall(g2)
	changed := false
	for x := 0; x < n; x++ {
		if truth2.At(int(src), x) != truth1.At(int(src), x) {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("chosen insert did not actually change src's distances")
	}

	// The version-1 entry is untouched: exactly version-1 distances, even
	// where version 2 differs — a reader pinned to v never observes v+1.
	old := s.cache.peek(src, 1)
	if old == nil {
		t.Fatal("version-1 row evicted unexpectedly")
	}
	for x := 0; x < n; x++ {
		if old[x] != truth1.At(int(src), x) {
			t.Fatalf("version-1 cached row mutated at %d: %d != %d", x, old[x], truth1.At(int(src), x))
		}
	}
	// The version-2 entry was repaired pre-publish: exact for the new
	// graph, and answering from it is a hit, not a re-solve.
	repaired := s.cache.peek(src, 2)
	if repaired == nil {
		t.Fatal("reconcile did not carry src's row to version 2")
	}
	for x := 0; x < n; x++ {
		if repaired[x] != truth2.At(int(src), x) {
			t.Fatalf("repaired row wrong at %d: %d != %d", x, repaired[x], truth2.At(int(src), x))
		}
	}
	as, _, ver, err = s.BatchPinned(ctx, []Query{{U: src, V: int32(n - 1)}}, 0)
	if err != nil || ver != 2 {
		t.Fatalf("post-mutation query: ver=%d err=%v", ver, err)
	}
	if want := distToJSON(truth2.At(int(src), n-1)); as[0].Dist != want {
		t.Fatalf("post-mutation answer %d, want %d", as[0].Dist, want)
	}
	if got := s.Metrics().Snapshot()["serve.cache.misses"]; got != missesBefore {
		t.Fatalf("repaired row did not serve as a hit: misses %d -> %d", missesBefore, got)
	}
}

// TestEdgeEndpoint exercises the HTTP surface of mutations: versions in
// headers, conflict and parse-error status codes, and the monotonic
// version on every response.
func TestEdgeEndpoint(t *testing.T) {
	g := testGraph(t, 24, 31)
	s := newTestServer(t, g, Config{Workers: 1, Landmarks: -1})
	h := s.Handler()

	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/edge", strings.NewReader(body)))
		return rec
	}

	// Find an absent pair to insert.
	var u, v int32 = -1, -1
findPair:
	for a := int32(0); int(a) < g.N(); a++ {
		for b := a + 1; int(b) < g.N(); b++ {
			if _, ok := g.ArcWeight(a, b); !ok {
				u, v = a, b
				break findPair
			}
		}
	}
	if u < 0 {
		t.Fatal("no absent pair")
	}

	rec := post(fmt.Sprintf(`{"op":"insert","u":%d,"v":%d,"w":3}`, u, v))
	if rec.Code != http.StatusOK {
		t.Fatalf("insert status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Parapsp-Graph-Version"); got != "2" {
		t.Fatalf("insert version header %q, want 2", got)
	}
	var res ApplyResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil || res.Version != 2 || res.Kind != "improve" {
		t.Fatalf("insert body %+v err=%v", res, err)
	}

	// Conflicts are 409, malformed bodies 400; both carry a version.
	if rec = post(fmt.Sprintf(`{"op":"insert","u":%d,"v":%d,"w":5}`, u, v)); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate insert status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Parapsp-Graph-Version"); got != "2" {
		t.Fatalf("conflict version header %q, want 2", got)
	}
	for _, bad := range []string{
		`{"op":"upsert","u":1,"v":2,"w":1}`,
		`{"op":"insert","u":1}`,
		`{"op":"insert","u":1,"v":1,"w":1}`,
		`{"op":"delete","u":1,"v":2,"w":4}`,
		`{"op":"insert","u":1,"v":2,"w":0}`,
		`{"op":"insert","u":1,"v":999,"w":1}`,
		`not json`,
	} {
		if rec = post(bad); rec.Code != http.StatusBadRequest {
			t.Fatalf("body %q status %d, want 400", bad, rec.Code)
		}
	}

	// A query response reports the pinned (current) version too.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, fmt.Sprintf("/dist?u=%d&v=%d", u, v), nil))
	if rec.Code != http.StatusOK || rec.Header().Get("X-Parapsp-Graph-Version") != "2" {
		t.Fatalf("dist status %d version %q", rec.Code, rec.Header().Get("X-Parapsp-Graph-Version"))
	}

	// Delete bumps to 3 and /healthz agrees.
	if rec = post(fmt.Sprintf(`{"op":"delete","u":%d,"v":%d}`, u, v)); rec.Code != http.StatusOK {
		t.Fatalf("delete status %d: %s", rec.Code, rec.Body)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var hb healthBody
	if err := json.Unmarshal(rec.Body.Bytes(), &hb); err != nil || hb.GraphVersion != 3 {
		t.Fatalf("healthz %+v err=%v, want graph_version 3", hb, err)
	}
}
