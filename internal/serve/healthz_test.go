package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestHealthzClusterPayload pins the /healthz fields a parapsprouter's
// health prober consumes: shard identity, admission load, cache hit rate,
// and — most importantly — the draining flag, which must flip the moment
// Shutdown begins while the handler still answers, so the router can pull
// the shard from its ring before clients see the final 503s.
func TestHealthzClusterPayload(t *testing.T) {
	g := testGraph(t, 64, 11)
	s := newTestServer(t, g, Config{Workers: 1, CacheRows: 16, ShardID: "s7"})
	h := s.Handler()

	// Same row twice: the second lookup is a cache hit, so the reported
	// hit rate must land strictly between 0 and 1.
	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/dist?u=3&v=17", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("warmup query %d: status %d", i, rec.Code)
		}
	}

	getHealth := func() healthBody {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("/healthz status %d", rec.Code)
		}
		var body healthBody
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("/healthz decode: %v", err)
		}
		return body
	}

	live := getHealth()
	if live.Status != "ok" || live.Draining {
		t.Fatalf("live shard reports %+v", live)
	}
	if live.ShardID != "s7" {
		t.Fatalf("shard id %q, want the configured identity", live.ShardID)
	}
	if live.Vertices != 64 {
		t.Fatalf("vertices %d, want 64", live.Vertices)
	}
	if live.Inflight != 0 {
		t.Fatalf("inflight %d with no request running", live.Inflight)
	}
	if live.CacheHitRate <= 0 || live.CacheHitRate >= 1 {
		t.Fatalf("cache hit rate %v after one hit and one miss", live.CacheHitRate)
	}
	if live.CachedRows == 0 {
		t.Fatal("no cached rows after a solved query")
	}

	// The wire names are the prober's contract; renaming a field would
	// silently break ring management.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var raw map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"status", "shard_id", "vertices", "inflight", "draining", "cache_hit_rate"} {
		if _, ok := raw[key]; !ok {
			t.Fatalf("/healthz payload missing %q: %s", key, rec.Body)
		}
	}

	// Drain: the handler keeps answering /healthz with draining=true
	// (queries now refuse), which is what lets the router act first.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	drained := getHealth()
	if drained.Status != "draining" || !drained.Draining {
		t.Fatalf("draining shard reports %+v", drained)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/dist?u=3&v=17", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining shard answered a query with %d, want 503", rec.Code)
	}
}
