package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"parapsp/internal/admit"
	"parapsp/internal/baseline"
	"parapsp/internal/matrix"
)

// TestTierDifferentialUnderLoad is the SLO-tier differential check: while
// a pool of best-effort clients saturates its inflight slice (tol=0.5
// queries, more concurrency than the best-effort cap), a premium client
// runs the same endpoint and every premium answer must be bit-identical
// to the Floyd-Warshall truth — even though the premium requests ask for
// tol=0.9, which the premium SLO must override to exact. Best-effort
// answers are checked against the (1+tol) contract, best-effort must see
// at least one 429 (it is saturating a 3-slot slice with 8 clients), and
// premium must see none (the reserve slot is its by-construction
// guarantee). Afterwards the admission ledger is scraped from /metrics
// and reconciled per tier and in total. Run under -race by check.sh.
func TestTierDifferentialUnderLoad(t *testing.T) {
	const (
		beGoroutines = 8
		premiumOps   = 150
		beTol        = 0.5
	)
	g := testGraph(t, 200, 29)
	truth := baseline.FloydWarshall(g)
	s := newTestServer(t, g, Config{
		Workers:     2,
		CacheRows:   16, // << 200 sources: best-effort work really solves
		Landmarks:   8,
		MaxInflight: 4, // best-effort cap 3, premium reserve 1
	})
	h := s.Handler()
	n := int32(g.N())

	var beRejected, beAnswered atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < beGoroutines; c++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(4200 + id))
			for op := 0; ; op++ {
				select {
				case <-stop:
					return
				default:
				}
				u, v := int32(rng.Intn(int(n))), int32(rng.Intn(int(n)))
				ans, code, hdr := tierDist(h, admit.BestEffort, "be-client", u, v, beTol)
				if code == http.StatusTooManyRequests {
					if got := hdr.Get(admit.RejectHeader); got != "inflight" {
						t.Errorf("best-effort 429 reject header = %q, want inflight", got)
						return
					}
					beRejected.Add(1)
					continue
				}
				if code != http.StatusOK {
					t.Errorf("best-effort dist(%d,%d) status %d", u, v, code)
					return
				}
				if got := hdr.Get(admit.DefaultTierHeader); got != "besteffort" {
					t.Errorf("best-effort response echoed tier %q", got)
					return
				}
				if err := checkApproxContract(ans, truth, u, v, beTol); err != nil {
					t.Error(err)
					return
				}
				beAnswered.Add(1)
			}
		}(int64(c))
	}

	// The premium client runs while best-effort is saturating. It asks for
	// tol=0.9 on purpose: the tier, not the query parameter, must decide
	// exactness.
	rng := rand.New(rand.NewSource(99))
	for op := 0; op < premiumOps; op++ {
		u, v := int32(rng.Intn(int(n))), int32(rng.Intn(int(n)))
		ans, code, hdr := tierDist(h, admit.Premium, "prem-client", u, v, 0.9)
		if code != http.StatusOK {
			t.Fatalf("premium dist(%d,%d) op %d: status %d (premium must never be rejected here)", u, v, op, code)
		}
		if got := hdr.Get(admit.DefaultTierHeader); got != "premium" {
			t.Fatalf("premium response echoed tier %q", got)
		}
		want := distToJSON(truth.At(int(u), int(v)))
		if !ans.Exact || ans.Dist != want {
			t.Fatalf("premium dist(%d,%d) = %+v, want exact %d", u, v, ans, want)
		}
	}
	close(stop)
	wg.Wait()

	if beAnswered.Load() == 0 {
		t.Fatal("no best-effort queries answered")
	}
	if beRejected.Load() == 0 {
		t.Fatal("8 best-effort clients against a 3-slot slice never saw a 429")
	}
	t.Logf("besteffort answered=%d rejected=%d", beAnswered.Load(), beRejected.Load())

	snap := scrapeMetrics(t, h)
	if snap["admit.premium.rejected_inflight"] != 0 || snap["admit.premium.rejected_quota"] != 0 {
		t.Fatalf("premium was rejected: %+v", snap)
	}
	if snap["admit.besteffort.rejected_inflight"] == 0 {
		t.Fatal("best-effort inflight rejections not visible in /metrics")
	}
	checkAdmitLedger(t, snap)
}

// TestQuotaLedgerOverHTTP exhausts one client's token bucket over the
// wire, checks the quota 429 carries Retry-After and the quota reject
// marker, and reconciles the scraped ledger including rejected_quota.
func TestQuotaLedgerOverHTTP(t *testing.T) {
	g := testGraph(t, 80, 5)
	s := newTestServer(t, g, Config{
		Workers:    1,
		CacheRows:  8,
		QuotaRPS:   0.001, // refills are irrelevant within the test
		QuotaBurst: 3,
	})
	h := s.Handler()

	var quota int
	for i := 0; i < 10; i++ {
		_, code, hdr := tierDist(h, admit.BestEffort, "capped", 1, 2, 0)
		switch code {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			if got := hdr.Get(admit.RejectHeader); got != "quota" {
				t.Fatalf("quota 429 reject header = %q", got)
			}
			if hdr.Get("Retry-After") == "" {
				t.Fatal("quota 429 missing Retry-After")
			}
			quota++
		default:
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	if quota != 7 {
		t.Fatalf("burst 3 of 10 requests: %d quota rejections, want 7", quota)
	}
	snap := scrapeMetrics(t, h)
	if snap["admit.besteffort.rejected_quota"] != 7 {
		t.Fatalf("ledger rejected_quota = %d, want 7", snap["admit.besteffort.rejected_quota"])
	}
	checkAdmitLedger(t, snap)
}

// tierDist issues one /dist query through the handler with the given SLO
// tier and client identity, returning the decoded answer (on 200), the
// status code, and the response headers.
func tierDist(h http.Handler, tier admit.Tier, client string, u, v int32, tol float64) (Answer, int, http.Header) {
	target := fmt.Sprintf("/dist?u=%d&v=%d", u, v)
	if tol > 0 {
		target = fmt.Sprintf("%s&tol=%g", target, tol)
	}
	req := httptest.NewRequest(http.MethodGet, target, nil)
	req.Header.Set(admit.DefaultTierHeader, tier.String())
	req.Header.Set(admit.ClientHeader, client)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var ans Answer
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &ans); err != nil {
			return ans, -1, rec.Header()
		}
	}
	return ans, rec.Code, rec.Header()
}

// checkApproxContract asserts the best-effort answer brackets the truth:
// exact answers match it, approximate ones stay within (1+tol).
func checkApproxContract(ans Answer, truth *matrix.Matrix, u, v int32, tol float64) error {
	want := distToJSON(truth.At(int(u), int(v)))
	if ans.Exact {
		if ans.Dist != want {
			return fmt.Errorf("exact dist(%d,%d) = %d, want %d", u, v, ans.Dist, want)
		}
		return nil
	}
	if want == -1 {
		if ans.Dist != -1 {
			return fmt.Errorf("approx dist(%d,%d) = %d for unreachable pair", u, v, ans.Dist)
		}
		return nil
	}
	upper := int64(math.Ceil(float64(want) * (1 + tol)))
	if ans.Dist < want || ans.Dist > upper {
		return fmt.Errorf("approx dist(%d,%d) = %d outside [%d, %d]", u, v, ans.Dist, want, upper)
	}
	return nil
}

// scrapeMetrics GETs /metrics through the handler and decodes the flat
// counter JSON — the same surface an operator's scraper sees.
func scrapeMetrics(t *testing.T, h http.Handler) map[string]int64 {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	var snap map[string]int64
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/metrics decode: %v", err)
	}
	return snap
}

// checkAdmitLedger asserts the admission ledger identities on a scraped
// counter snapshot, for the totals and for each tier column:
//
//	requests == admitted + rejected_quota + rejected_inflight + rejected_draining
//	admitted == completed + deadline_expired
//
// and that the tier columns sum to the totals.
func checkAdmitLedger(t *testing.T, snap map[string]int64) {
	t.Helper()
	rows := []string{"admit", "admit." + admit.BestEffort.String(), "admit." + admit.Premium.String()}
	for _, p := range rows {
		req := snap[p+".requests"]
		adm := snap[p+".admitted"]
		rej := snap[p+".rejected_quota"] + snap[p+".rejected_inflight"] + snap[p+".rejected_draining"]
		if req != adm+rej {
			t.Fatalf("%s ledger: requests=%d != admitted=%d + rejected=%d", p, req, adm, rej)
		}
		done := snap[p+".completed"] + snap[p+".deadline_expired"]
		if adm != done {
			t.Fatalf("%s ledger: admitted=%d != completed+expired=%d", p, adm, done)
		}
	}
	for _, f := range []string{"requests", "admitted", "completed"} {
		tot := snap["admit."+f]
		sum := snap["admit.besteffort."+f] + snap["admit.premium."+f]
		if tot != sum {
			t.Fatalf("admit.%s total %d != tier sum %d", f, tot, sum)
		}
	}
}
