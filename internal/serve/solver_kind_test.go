package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"parapsp/internal/core"
)

// The solver-kind surface: every query reports whether the multi-source
// batch engine, the scalar subset solver, or the cache answered it — and
// which SSSP kernel ran — through the *Kind API variants, the
// X-Parapsp-Solver header, and the serve.solve.batch/scalar counters.

func TestSolverKindAPI(t *testing.T) {
	g := testGraph(t, 150, 21)
	s := newTestServer(t, g, Config{Workers: 2, Landmarks: -1, Batch: core.BatchForce})
	ctx := context.Background()

	_, kind, err := s.DistKind(ctx, 3, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := SolverBatch + "/" + core.KernelMSBFS; kind != want {
		t.Fatalf("cold DistKind under BatchForce: kind %q, want %q", kind, want)
	}
	if _, kind, err = s.DistKind(ctx, 3, 10, 0); err != nil || kind != SolverCache {
		t.Fatalf("warm DistKind: kind %q err %v, want %q", kind, err, SolverCache)
	}
	if _, _, kind, err := s.PathKind(ctx, 3, 10); err != nil || kind != SolverCache {
		t.Fatalf("warm PathKind: kind %q err %v, want %q", kind, err, SolverCache)
	}
	snap := s.Metrics().Snapshot()
	if snap["serve.solve.batch"] != 1 || snap["serve.solve.scalar"] != 0 {
		t.Fatalf("engine counters batch=%d scalar=%d, want 1/0",
			snap["serve.solve.batch"], snap["serve.solve.scalar"])
	}

	// A scalar-pinned server reports the scalar default on the same cold
	// query.
	s2 := newTestServer(t, g, Config{Workers: 2, Landmarks: -1, Batch: core.BatchOff})
	if _, kind, err := s2.DistKind(ctx, 3, 9, 0); err != nil || kind != SolverScalar+"/"+core.KernelDijkstra {
		t.Fatalf("cold DistKind under BatchOff: kind %q err %v, want scalar/dijkstra", kind, err)
	}
	if got := s2.Metrics().Snapshot()["serve.solve.scalar"]; got != 1 {
		t.Fatalf("serve.solve.scalar = %d, want 1", got)
	}
}

// TestSolverKindPinnedKernel pins Config.Kernel end to end: the pinned
// kernel bypasses the batch policy, shows up in the reported kind, and
// still answers exactly (the cached row from a delta solve agrees with a
// dijkstra server's answer).
func TestSolverKindPinnedKernel(t *testing.T) {
	g := testGraph(t, 150, 23)
	ctx := context.Background()
	pinned := newTestServer(t, g, Config{Workers: 2, Landmarks: -1, Kernel: core.KernelDelta})
	plain := newTestServer(t, g, Config{Workers: 2, Landmarks: -1, Batch: core.BatchOff})

	ap, kind, err := pinned.DistKind(ctx, 7, 90, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := SolverScalar + "/" + core.KernelDelta; kind != want {
		t.Fatalf("pinned DistKind: kind %q, want %q", kind, want)
	}
	ad, _, err := plain.DistKind(ctx, 7, 90, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ap.Dist != ad.Dist {
		t.Fatalf("delta answer %d != dijkstra answer %d", ap.Dist, ad.Dist)
	}
}

// TestSolverKindAutoKernel pins Config.Kernel = "auto" end to end: New
// accepts it without registry validation (it is not a registry entry),
// the per-solve resolution picks a concrete kernel, and the reported
// kind — API and X-Parapsp-Solver header alike — names that resolved
// kernel, never the literal "auto".
func TestSolverKindAutoKernel(t *testing.T) {
	g := testGraph(t, 150, 25)
	ctx := context.Background()
	s := newTestServer(t, g, Config{Workers: 2, Landmarks: -1, Kernel: core.KernelAuto})
	plain := newTestServer(t, g, Config{Workers: 2, Landmarks: -1, Batch: core.BatchOff})

	// One cold source on a small unweighted graph is below the batch
	// thresholds, so auto resolves to the scalar dijkstra kernel.
	aa, kind, err := s.DistKind(ctx, 7, 90, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := SolverScalar + "/" + core.KernelDijkstra; kind != want {
		t.Fatalf("auto DistKind: kind %q, want %q", kind, want)
	}
	ad, _, err := plain.DistKind(ctx, 7, 90, 0)
	if err != nil {
		t.Fatal(err)
	}
	if aa.Dist != ad.Dist {
		t.Fatalf("auto answer %d != plain answer %d", aa.Dist, ad.Dist)
	}

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/dist?u=9&v=40", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /dist: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(solverHeader); got != SolverScalar+"/"+core.KernelDijkstra {
		t.Fatalf("auto /dist header %q, want the resolved kernel, not %q", got, core.KernelAuto)
	}
}

// TestServeRejectsBadKernel pins that kernel validation happens at New
// time: unknown names and kernels that cannot serve the graph fail
// startup instead of every query.
func TestServeRejectsBadKernel(t *testing.T) {
	g := testGraph(t, 60, 24) // unweighted
	if _, err := New(g, Config{Kernel: "bogus"}); !errors.Is(err, core.ErrInvalid) {
		t.Fatalf("unknown kernel: err %v, want ErrInvalid", err)
	}
	// sweep is weighted-only; the test graph is unweighted.
	if _, err := New(g, Config{Kernel: core.KernelSweep}); err == nil {
		t.Fatal("sweep kernel accepted on an unweighted graph")
	}
}

func TestSolverKindHeader(t *testing.T) {
	g := testGraph(t, 150, 22)
	s := newTestServer(t, g, Config{Workers: 2, Landmarks: -1, Batch: core.BatchForce})
	h := s.Handler()

	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", url, rec.Code, rec.Body.String())
		}
		return rec
	}

	coldKind := SolverBatch + "/" + core.KernelMSBFS
	if got := get("/dist?u=5&v=9").Header().Get(solverHeader); got != coldKind {
		t.Fatalf("cold /dist header %q, want %q", got, coldKind)
	}
	if got := get("/dist?u=5&v=10").Header().Get(solverHeader); got != SolverCache {
		t.Fatalf("warm /dist header %q, want %q", got, SolverCache)
	}
	if got := get("/path?u=5&v=9").Header().Get(solverHeader); got != SolverCache {
		t.Fatalf("warm /path header %q, want %q", got, SolverCache)
	}

	// A cold /batch over several fresh sources solves them in one batch.
	var body bytes.Buffer
	fmt.Fprintf(&body, `{"queries":[{"u":20,"v":1},{"u":21,"v":1},{"u":22,"v":1}]}`)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/batch", &body))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /batch: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(solverHeader); got != coldKind {
		t.Fatalf("cold /batch header %q, want %q", got, coldKind)
	}
}
