package serve

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"parapsp/internal/baseline"
	"parapsp/internal/gen"
	"parapsp/internal/matrix"
)

// TestQuickOracleExactAgreement pins the serve layer's approximation
// contract with testing/quick over random graphs and query mixes:
//
//	lower <= exact <= upper          (oracle bounds bracket the truth)
//	exact answers equal Floyd-Warshall
//	approximate answers a satisfy truth <= a <= (1+tol) * truth
//
// for every random (graph, pair, tolerance) the generator draws.
func TestQuickOracleExactAgreement(t *testing.T) {
	type scenario struct {
		Seed    int64
		RawN    uint8
		RawTol  uint8
		RawUV   [10]uint16
		Weights bool
	}
	prop := func(sc scenario) bool {
		n := 16 + int(sc.RawN%49) // 16..64: FW truth stays cheap
		w := gen.Weighting{}
		if sc.Weights {
			w = gen.Weighting{Min: 1, Max: 16}
		}
		g, err := gen.BarabasiAlbert(n, 2, sc.Seed, w)
		if err != nil {
			t.Logf("gen(n=%d seed=%d): %v", n, sc.Seed, err)
			return false
		}
		truth := baseline.FloydWarshall(g)
		tol := float64(sc.RawTol%8) / 4 // 0, 0.25, ..., 1.75
		s, err := New(g, Config{Workers: 1, CacheRows: 8, Landmarks: 4})
		if err != nil {
			t.Logf("New: %v", err)
			return false
		}
		defer func() {
			if err := s.Shutdown(context.Background()); err != nil {
				t.Logf("shutdown: %v", err)
			}
		}()
		orc := s.Oracle()
		ctx := context.Background()
		for _, raw := range sc.RawUV {
			u := int32(int(raw) % n)
			v := int32(int(raw>>8) % n)
			d := truth.At(int(u), int(v))
			lo, up := orc.Bounds(u, v)
			if lo > d || (up != matrix.Inf && up < d) || (d == matrix.Inf && up != matrix.Inf) {
				t.Logf("bounds [%d,%d] exclude truth %d for (%d,%d) n=%d seed=%d", lo, up, d, u, v, n, sc.Seed)
				return false
			}
			// Approximate-or-exact query first (the cache may still be
			// cold for u), then a forced-exact query.
			ans, err := s.Dist(ctx, u, v, tol)
			if err != nil {
				t.Logf("Dist approx: %v", err)
				return false
			}
			if ans.Exact {
				if ans.Dist != distToJSON(d) {
					t.Logf("exact(%d,%d) = %d, want %d", u, v, ans.Dist, distToJSON(d))
					return false
				}
			} else {
				if d == matrix.Inf {
					t.Logf("approx finite answer %d for unreachable (%d,%d)", ans.Dist, u, v)
					return false
				}
				if ans.Dist < int64(d) || float64(ans.Dist) > (1+tol)*float64(d) {
					t.Logf("approx(%d,%d) = %d outside [%d, %g] (tol=%g)", u, v, ans.Dist, d, (1+tol)*float64(d), tol)
					return false
				}
			}
			exact, err := s.Dist(ctx, u, v, 0)
			if err != nil {
				t.Logf("Dist exact: %v", err)
				return false
			}
			if !exact.Exact || exact.Dist != distToJSON(d) {
				t.Logf("forced exact(%d,%d) = %+v, want %d", u, v, exact, distToJSON(d))
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 25,
		Rand:     rand.New(rand.NewSource(1)),
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
