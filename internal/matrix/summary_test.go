package matrix

import "testing"

func TestSummarizeRowDense(t *testing.T) {
	m := New(6)
	for j := 0; j < 6; j++ {
		m.Set(1, j, Dist(j))
	}
	if _, ok := m.Summary(1); ok {
		t.Fatal("summary current before SummarizeRow")
	}
	m.SummarizeRow(1)
	sum, ok := m.Summary(1)
	if !ok || sum.Lo != 0 || sum.Hi != 6 || sum.Finite != 6 || sum.Max != 5 {
		t.Fatalf("dense summary = %+v ok=%v", sum, ok)
	}
	if m.FiniteIndex(1) != nil {
		t.Error("dense row got a finite-index list")
	}
}

func TestSummarizeRowSparseBuildsIndex(t *testing.T) {
	// 2 finite entries spread over a span of 64: 2 <= 64/8, so the index
	// list must be built.
	m := New(100)
	m.Set(3, 10, 5)
	m.Set(3, 73, 7)
	m.SummarizeRow(3)
	sum, ok := m.Summary(3)
	if !ok || sum.Lo != 10 || sum.Hi != 74 || sum.Finite != 2 {
		t.Fatalf("sparse summary = %+v ok=%v", sum, ok)
	}
	idx := m.FiniteIndex(3)
	if len(idx) != 2 || idx[0] != 10 || idx[1] != 73 {
		t.Fatalf("finite index = %v", idx)
	}
}

func TestSummarizeRowAllInf(t *testing.T) {
	m := New(5)
	m.SummarizeRow(2)
	sum, ok := m.Summary(2)
	if !ok || sum.Lo != 0 || sum.Hi != 0 || sum.Finite != 0 {
		t.Fatalf("all-Inf summary = %+v ok=%v", sum, ok)
	}
	if m.FiniteIndex(2) != nil {
		t.Error("all-Inf row got a finite-index list")
	}
}

func TestSetInvalidatesSummary(t *testing.T) {
	m := New(8)
	m.Set(0, 3, 9)
	m.SummarizeRow(0)
	if _, ok := m.Summary(0); !ok {
		t.Fatal("summary not current after SummarizeRow")
	}
	m.Set(0, 5, 1)
	if _, ok := m.Summary(0); ok {
		t.Error("summary still current after Set")
	}
	if m.FiniteIndex(0) != nil {
		t.Error("finite index survived invalidation")
	}
	// Other rows keep their summaries.
	m.Set(1, 1, 2)
	m.SummarizeRow(1)
	m.Set(0, 0, 3)
	if _, ok := m.Summary(1); !ok {
		t.Error("unrelated Set invalidated row 1")
	}
}

func TestFillAndInitAPSPInvalidate(t *testing.T) {
	m := New(4)
	m.Set(2, 1, 5)
	m.SummarizeRow(2)
	m.InitAPSP()
	if _, ok := m.Summary(2); ok {
		t.Error("summary survived InitAPSP")
	}
	m.Set(2, 1, 5)
	m.SummarizeRow(2)
	m.Fill(0)
	if _, ok := m.Summary(2); ok {
		t.Error("summary survived Fill")
	}
}

func TestCloneCarriesSummaries(t *testing.T) {
	m := New(100)
	m.Set(0, 20, 4)
	m.Set(0, 90, 6)
	m.SummarizeRow(0)
	c := m.Clone()
	sum, ok := c.Summary(0)
	if !ok || sum.Lo != 20 || sum.Hi != 91 || sum.Finite != 2 {
		t.Fatalf("cloned summary = %+v ok=%v", sum, ok)
	}
	if idx := c.FiniteIndex(0); len(idx) != 2 || idx[0] != 20 || idx[1] != 90 {
		t.Fatalf("cloned finite index = %v", idx)
	}
	// Invalidating the clone leaves the original untouched and vice versa.
	c.Set(0, 21, 9)
	if _, ok := m.Summary(0); !ok {
		t.Error("clone Set invalidated original")
	}
	m.Set(0, 22, 9)
	if _, ok := m.Summary(0); ok {
		t.Error("original Set left original current")
	}
}

func TestSummaryRoundTripThroughRowWrites(t *testing.T) {
	// The solver's pattern: write through the Row slice, then summarize,
	// then read back. The summary must describe the latest contents.
	m := New(50)
	row := m.Row(7)
	row[7] = 0
	for j := 30; j < 40; j++ {
		row[j] = Dist(j)
	}
	m.SummarizeRow(7)
	sum, ok := m.Summary(7)
	if !ok || sum.Lo != 7 || sum.Hi != 40 || sum.Finite != 11 {
		t.Fatalf("summary = %+v ok=%v", sum, ok)
	}
}
