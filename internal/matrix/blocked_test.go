package matrix

import (
	"math/rand"
	"testing"
)

// The blocked helpers must agree with the obvious scalar loops on every
// length straddling the block width, so the width constant can change
// without touching the tests.
var blockSizes = []int{0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 200}

func randDists(rng *rand.Rand, n int, density float64) []Dist {
	s := make([]Dist, n)
	for i := range s {
		if rng.Float64() < density {
			s[i] = Dist(rng.Intn(1 << 20))
		} else {
			s[i] = Inf
		}
	}
	return s
}

func TestEqualDistMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range blockSizes {
		a := randDists(rng, n, 0.5)
		b := append([]Dist(nil), a...)
		if !equalDist(a, b) {
			t.Fatalf("n=%d: equal copies reported unequal", n)
		}
		if n == 0 {
			continue
		}
		// Flip one entry at every position in turn.
		for i := 0; i < n; i++ {
			b[i]++
			if equalDist(a, b) {
				t.Fatalf("n=%d: difference at %d missed", n, i)
			}
			b[i] = a[i]
		}
	}
}

func TestCountFiniteMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range blockSizes {
		for _, density := range []float64{0, 0.3, 1} {
			s := randDists(rng, n, density)
			want := 0
			for _, v := range s {
				if v != Inf {
					want++
				}
			}
			if got := countFinite(s); got != want {
				t.Fatalf("n=%d density=%g: countFinite = %d, want %d", n, density, got, want)
			}
		}
	}
}

func TestChecksumDistMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range blockSizes {
		s := randDists(rng, n, 0.6)
		h := uint64(14695981039346656037)
		want := h
		for _, v := range s {
			want ^= uint64(v)
			want *= 1099511628211
		}
		if got := checksumDist(h, s); got != want {
			t.Fatalf("n=%d: checksumDist = %#x, want %#x", n, got, want)
		}
	}
}

func TestScanFinite(t *testing.T) {
	cases := []struct {
		s              []Dist
		lo, hi, finite int
		max            Dist
	}{
		{nil, 0, 0, 0, 0},
		{[]Dist{Inf, Inf, Inf}, 0, 0, 0, 0},
		{[]Dist{5}, 0, 1, 1, 5},
		{[]Dist{Inf, 5, Inf}, 1, 2, 1, 5},
		{[]Dist{Inf, 5, Inf, 7, Inf, Inf}, 1, 4, 2, 7},
		{[]Dist{0, Inf, Inf, Inf, Inf, Inf, Inf, Inf, Inf, 3}, 0, 10, 2, 3},
		{[]Dist{0, MaxFinite}, 0, 2, 2, MaxFinite},
	}
	for i, c := range cases {
		lo, hi, finite, max := ScanFinite(c.s)
		if lo != c.lo || hi != c.hi || finite != c.finite || max != c.max {
			t.Errorf("case %d: ScanFinite = (%d,%d,%d,%d), want (%d,%d,%d,%d)",
				i, lo, hi, finite, max, c.lo, c.hi, c.finite, c.max)
		}
	}
}

func TestScanFiniteRandomAgainstScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 300; trial++ {
		s := randDists(rng, rng.Intn(120), 0.2)
		lo, hi, finite, max := ScanFinite(s)
		wlo, whi, wfin := len(s), 0, 0
		var wmax Dist
		for i, v := range s {
			if v != Inf {
				if i < wlo {
					wlo = i
				}
				whi = i + 1
				wfin++
				if v > wmax {
					wmax = v
				}
			}
		}
		if wfin == 0 {
			wlo = 0
		}
		if lo != wlo || hi != whi || finite != wfin || max != wmax {
			t.Fatalf("ScanFinite = (%d,%d,%d,%d), scalar (%d,%d,%d,%d) on %v",
				lo, hi, finite, max, wlo, whi, wfin, wmax, s)
		}
	}
}
