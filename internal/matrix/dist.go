// Package matrix provides the dense all-pairs distance matrix used by every
// APSP algorithm in this repository, together with the saturating distance
// arithmetic the algorithms rely on.
//
// Distances are stored as 32-bit unsigned integers. The paper's workloads are
// unweighted (hop counts) or small-integer weighted real-world graphs, for
// which 32 bits are ample: the largest finite distance representable is
// about 4.29e9, while path lengths in the tested graphs stay far below 1e6.
// Using 4 bytes per entry halves the memory footprint relative to float64 and
// is what makes the paper's O(n^2) storage feasible at interesting scales.
package matrix

import "math"

// Dist is the distance type shared by the whole repository.
// The maximum value is reserved as the "unreachable" sentinel Inf.
type Dist uint32

// Inf is the distance between vertices with no connecting path.
// It behaves like +infinity under AddSat and Less.
const Inf Dist = math.MaxUint32

// MaxFinite is the largest distance value that still denotes a real path.
const MaxFinite Dist = Inf - 1

// AddSat returns a+b saturating at Inf. If either operand is Inf the result
// is Inf, matching +infinity semantics; finite sums that would overflow the
// 32-bit range also clamp to Inf rather than wrapping around, which keeps
// relaxation monotone (a wrapped sum could look spuriously short).
func AddSat(a, b Dist) Dist {
	s := uint64(a) + uint64(b)
	if s >= uint64(Inf) {
		return Inf
	}
	return Dist(s)
}

// IsInf reports whether d is the unreachable sentinel.
func IsInf(d Dist) bool { return d == Inf }
