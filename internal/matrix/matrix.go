package matrix

import (
	"errors"
	"fmt"
)

// Matrix is a dense n-by-n distance matrix backed by one contiguous
// allocation. Row i holds the single-source shortest path distances from
// vertex i. The flat layout matters for the paper's algorithms: the modified
// Dijkstra procedure streams whole rows (the "row combine" step), so rows
// must be cache-friendly contiguous slices.
//
// Concurrency contract: distinct rows may be written by distinct goroutines
// concurrently. A row may be read by other goroutines only after its owner
// has published completion (see internal/core's flag array); the Matrix
// itself performs no synchronization.
type Matrix struct {
	n    int
	data []Dist
}

// ErrDimension is returned for operations on matrices of mismatched size.
var ErrDimension = errors.New("matrix: dimension mismatch")

// New returns an n×n matrix with every entry set to Inf.
// It panics if n is negative.
func New(n int) *Matrix {
	if n < 0 {
		panic("matrix: negative dimension")
	}
	m := &Matrix{n: n, data: make([]Dist, n*n)}
	m.Fill(Inf)
	return m
}

// NewZero returns an n×n matrix with every entry zero.
func NewZero(n int) *Matrix {
	if n < 0 {
		panic("matrix: negative dimension")
	}
	return &Matrix{n: n, data: make([]Dist, n*n)}
}

// N returns the matrix dimension.
func (m *Matrix) N() int { return m.n }

// Row returns the i-th row as a mutable slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []Dist {
	return m.data[i*m.n : (i+1)*m.n : (i+1)*m.n]
}

// At returns the entry at row i, column j.
func (m *Matrix) At(i, j int) Dist { return m.data[i*m.n+j] }

// Set stores d at row i, column j.
func (m *Matrix) Set(i, j int, d Dist) { m.data[i*m.n+j] = d }

// Fill sets every entry to d.
func (m *Matrix) Fill(d Dist) {
	// Doubling copy: O(log len) calls into runtime memmove instead of a
	// per-element loop; this is the fastest portable fill for large rows.
	if len(m.data) == 0 {
		return
	}
	m.data[0] = d
	for filled := 1; filled < len(m.data); filled *= 2 {
		copy(m.data[filled:], m.data[:filled])
	}
}

// InitAPSP prepares the matrix for an APSP run: all entries Inf except the
// diagonal, which is zero. This is lines 2-4 of the paper's Algorithm 2.
func (m *Matrix) InitAPSP() {
	m.Fill(Inf)
	for i := 0; i < m.n; i++ {
		m.data[i*m.n+i] = 0
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{n: m.n, data: make([]Dist, len(m.data))}
	copy(c.data, m.data)
	return c
}

// Equal reports whether m and o have identical dimensions and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.n != o.n {
		return false
	}
	for i, v := range m.data {
		if o.data[i] != v {
			return false
		}
	}
	return true
}

// Diff returns up to max differing (row, col) positions between m and o,
// or ErrDimension if the sizes differ. It is a debugging aid used by the
// cross-validation tests to report where two algorithms disagree.
func (m *Matrix) Diff(o *Matrix, max int) ([][2]int, error) {
	if m.n != o.n {
		return nil, ErrDimension
	}
	var out [][2]int
	for i := 0; i < m.n && len(out) < max; i++ {
		ri, ro := m.Row(i), o.Row(i)
		for j := range ri {
			if ri[j] != ro[j] {
				out = append(out, [2]int{i, j})
				if len(out) == max {
					break
				}
			}
		}
	}
	return out, nil
}

// MemBytes returns the size in bytes of the matrix payload. The paper's
// experiments are memory-bound (sx-superuser needs >=160 GB); callers use
// this to refuse runs that would not fit in RAM.
func (m *Matrix) MemBytes() uint64 {
	return uint64(len(m.data)) * 4
}

// EstimateMemBytes returns the payload size of an n×n matrix without
// allocating it.
func EstimateMemBytes(n int) uint64 {
	return uint64(n) * uint64(n) * 4
}

// CountFinite returns the number of finite (reachable) entries, including
// the diagonal. Analysis code uses it for reachability statistics.
func (m *Matrix) CountFinite() int {
	c := 0
	for _, v := range m.data {
		if v != Inf {
			c++
		}
	}
	return c
}

// Checksum returns an order-dependent FNV-1a style hash of the entries.
// Two equal matrices always have equal checksums; the benchmark harness
// logs checksums to demonstrate that every algorithm computed the same
// solution without storing full matrices.
func (m *Matrix) Checksum() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range m.data {
		h ^= uint64(v)
		h *= prime
	}
	return h
}

// String renders small matrices for debugging; large matrices are
// summarized to avoid accidental multi-gigabyte strings.
func (m *Matrix) String() string {
	if m.n > 16 {
		return fmt.Sprintf("matrix.Matrix(n=%d, %d finite)", m.n, m.CountFinite())
	}
	s := ""
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if j > 0 {
				s += " "
			}
			if v := m.At(i, j); v == Inf {
				s += "inf"
			} else {
				s += fmt.Sprint(v)
			}
		}
		s += "\n"
	}
	return s
}
