package matrix

import (
	"errors"
	"fmt"
)

// Matrix is a dense n-by-n distance matrix backed by one contiguous
// allocation. Row i holds the single-source shortest path distances from
// vertex i. The flat layout matters for the paper's algorithms: the modified
// Dijkstra procedure streams whole rows (the "row combine" step), so rows
// must be cache-friendly contiguous slices.
//
// Concurrency contract: distinct rows may be written by distinct goroutines
// concurrently. A row may be read by other goroutines only after its owner
// has published completion (see internal/core's flag array); the Matrix
// itself performs no synchronization.
type Matrix struct {
	n    int
	data []Dist

	// Per-row finite-entry summaries, maintained on demand by
	// SummarizeRow. They let the min-plus fold kernels in internal/core
	// touch only the finite part of mostly-Inf rows. sumOK[i] reports
	// whether sums[i] (and fidx[i]) describe the row's current contents;
	// any direct mutation of a row (Set, Fill, InitAPSP) invalidates it.
	// The summary slices follow the same concurrency contract as the row
	// data: the owner of row i writes them, and other goroutines may read
	// them only after the owner has published completion.
	sums  []RowSummary
	sumOK []bool
	fidx  [][]int32
}

// RowSummary describes the finite entries of one row: every non-Inf entry
// lies in the half-open span [Lo, Hi), Finite is their count, and Max is
// the largest finite value (0 when there is none). Lo == Hi means the row
// is entirely Inf. Max lets a fold prove saturation impossible up front
// (offset + Max below Inf) and drop the per-element clamp.
type RowSummary struct {
	Lo, Hi int32
	Finite int32
	Max    Dist
}

// indexedFoldDivisor gates the finite-index list: SummarizeRow records the
// explicit indices of a row's finite entries only when they populate at
// most 1/indexedFoldDivisor of the finite span, i.e. when a gather over
// the index list is clearly cheaper than a contiguous sweep of the span.
const indexedFoldDivisor = 8

// ErrDimension is returned for operations on matrices of mismatched size.
var ErrDimension = errors.New("matrix: dimension mismatch")

// New returns an n×n matrix with every entry set to Inf.
// It panics if n is negative.
func New(n int) *Matrix {
	if n < 0 {
		panic("matrix: negative dimension")
	}
	m := &Matrix{
		n:     n,
		data:  make([]Dist, n*n),
		sums:  make([]RowSummary, n),
		sumOK: make([]bool, n),
		fidx:  make([][]int32, n),
	}
	m.Fill(Inf)
	return m
}

// NewZero returns an n×n matrix with every entry zero.
func NewZero(n int) *Matrix {
	if n < 0 {
		panic("matrix: negative dimension")
	}
	return &Matrix{
		n:     n,
		data:  make([]Dist, n*n),
		sums:  make([]RowSummary, n),
		sumOK: make([]bool, n),
		fidx:  make([][]int32, n),
	}
}

// N returns the matrix dimension.
func (m *Matrix) N() int { return m.n }

// Row returns the i-th row as a mutable slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []Dist {
	return m.data[i*m.n : (i+1)*m.n : (i+1)*m.n]
}

// At returns the entry at row i, column j.
func (m *Matrix) At(i, j int) Dist { return m.data[i*m.n+j] }

// Set stores d at row i, column j.
func (m *Matrix) Set(i, j int, d Dist) {
	m.data[i*m.n+j] = d
	if m.sumOK[i] {
		m.sumOK[i] = false
		m.fidx[i] = nil
	}
}

// SummarizeRow scans row i and records its finite-entry summary, plus —
// when the row is sparse enough (see indexedFoldDivisor) — the explicit
// index list of its finite entries. The summary stays valid until the row
// is mutated through Set, Fill, or InitAPSP; writes through the Row slice
// are invisible to the matrix, so callers mutating rows directly (the APSP
// solvers) must re-summarize before publishing the row to readers.
func (m *Matrix) SummarizeRow(i int) {
	row := m.Row(i)
	lo, hi, finite, max := ScanFinite(row)
	m.sums[i] = RowSummary{Lo: int32(lo), Hi: int32(hi), Finite: int32(finite), Max: max}
	if finite > 0 && finite <= (hi-lo)/indexedFoldDivisor {
		idx := make([]int32, 0, finite)
		for j := lo; j < hi; j++ {
			if row[j] != Inf {
				idx = append(idx, int32(j))
			}
		}
		m.fidx[i] = idx
	} else {
		m.fidx[i] = nil
	}
	m.sumOK[i] = true
}

// Summary returns row i's finite-entry summary and whether one is current.
// ok == false means the row was never summarized or was mutated since; the
// caller must fall back to treating the whole row as potentially finite.
func (m *Matrix) Summary(i int) (RowSummary, bool) {
	return m.sums[i], m.sumOK[i]
}

// FiniteIndex returns the explicit finite-entry index list of row i, or
// nil when the row has no current summary or is too dense for a list to
// pay off. The returned slice aliases internal storage; callers must not
// modify it.
func (m *Matrix) FiniteIndex(i int) []int32 {
	if !m.sumOK[i] {
		return nil
	}
	return m.fidx[i]
}

// Fill sets every entry to d.
func (m *Matrix) Fill(d Dist) {
	clear(m.sumOK)
	clear(m.fidx)
	// Doubling copy: O(log len) calls into runtime memmove instead of a
	// per-element loop; this is the fastest portable fill for large rows.
	if len(m.data) == 0 {
		return
	}
	m.data[0] = d
	for filled := 1; filled < len(m.data); filled *= 2 {
		copy(m.data[filled:], m.data[:filled])
	}
}

// InitAPSP prepares the matrix for an APSP run: all entries Inf except the
// diagonal, which is zero. This is lines 2-4 of the paper's Algorithm 2.
func (m *Matrix) InitAPSP() {
	m.Fill(Inf)
	for i := 0; i < m.n; i++ {
		m.data[i*m.n+i] = 0
	}
}

// Clone returns a deep copy of m. Row summaries are carried over; the
// finite-index lists are shared (they are replaced wholesale, never
// mutated in place, so sharing is safe).
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{
		n:     m.n,
		data:  make([]Dist, len(m.data)),
		sums:  make([]RowSummary, len(m.sums)),
		sumOK: make([]bool, len(m.sumOK)),
		fidx:  make([][]int32, len(m.fidx)),
	}
	copy(c.data, m.data)
	copy(c.sums, m.sums)
	copy(c.sumOK, m.sumOK)
	copy(c.fidx, m.fidx)
	return c
}

// Equal reports whether m and o have identical dimensions and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.n != o.n {
		return false
	}
	return equalDist(m.data, o.data)
}

// Diff returns up to max differing (row, col) positions between m and o,
// or ErrDimension if the sizes differ. It is a debugging aid used by the
// cross-validation tests to report where two algorithms disagree.
func (m *Matrix) Diff(o *Matrix, max int) ([][2]int, error) {
	if m.n != o.n {
		return nil, ErrDimension
	}
	var out [][2]int
	for i := 0; i < m.n && len(out) < max; i++ {
		ri, ro := m.Row(i), o.Row(i)
		for j := range ri {
			if ri[j] != ro[j] {
				out = append(out, [2]int{i, j})
				if len(out) == max {
					break
				}
			}
		}
	}
	return out, nil
}

// MemBytes returns the size in bytes of the matrix payload. The paper's
// experiments are memory-bound (sx-superuser needs >=160 GB); callers use
// this to refuse runs that would not fit in RAM.
func (m *Matrix) MemBytes() uint64 {
	return uint64(len(m.data)) * 4
}

// EstimateMemBytes returns the payload size of an n×n matrix without
// allocating it.
func EstimateMemBytes(n int) uint64 {
	return uint64(n) * uint64(n) * 4
}

// CountFinite returns the number of finite (reachable) entries, including
// the diagonal. Analysis code uses it for reachability statistics.
func (m *Matrix) CountFinite() int {
	return countFinite(m.data)
}

// Checksum returns an order-dependent FNV-1a style hash of the entries.
// Two equal matrices always have equal checksums; the benchmark harness
// logs checksums to demonstrate that every algorithm computed the same
// solution without storing full matrices.
func (m *Matrix) Checksum() uint64 {
	const offset = 14695981039346656037
	return checksumDist(offset, m.data)
}

// ChecksumDists is Checksum over a bare distance slice, for row sets that
// live outside a Matrix (subset solves): the same FNV-1a chain, so a
// subset row checksums identically to the matching matrix row region.
func ChecksumDists(s []Dist) uint64 {
	const offset = 14695981039346656037
	return checksumDist(offset, s)
}

// String renders small matrices for debugging; large matrices are
// summarized to avoid accidental multi-gigabyte strings.
func (m *Matrix) String() string {
	if m.n > 16 {
		return fmt.Sprintf("matrix.Matrix(n=%d, %d finite)", m.n, m.CountFinite())
	}
	s := ""
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if j > 0 {
				s += " "
			}
			if v := m.At(i, j); v == Inf {
				s += "inf"
			} else {
				s += fmt.Sprint(v)
			}
		}
		s += "\n"
	}
	return s
}
