package matrix

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddSat(t *testing.T) {
	cases := []struct {
		a, b, want Dist
	}{
		{0, 0, 0},
		{1, 2, 3},
		{Inf, 0, Inf},
		{0, Inf, Inf},
		{Inf, Inf, Inf},
		{MaxFinite, 1, Inf},
		{MaxFinite, 0, MaxFinite},
		{math.MaxUint32 / 2, math.MaxUint32 / 2, math.MaxUint32 - 1},
		{math.MaxUint32/2 + 1, math.MaxUint32 / 2, Inf},
	}
	for _, c := range cases {
		if got := AddSat(c.a, c.b); got != c.want {
			t.Errorf("AddSat(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAddSatProperties(t *testing.T) {
	// Commutative, monotone, never less than either finite operand.
	f := func(a, b uint32) bool {
		x, y := Dist(a), Dist(b)
		s := AddSat(x, y)
		if s != AddSat(y, x) {
			return false
		}
		if x != Inf && y != Inf && s != Inf {
			return s >= x && s >= y
		}
		if x == Inf || y == Inf {
			return s == Inf
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsInf(t *testing.T) {
	if !IsInf(Inf) {
		t.Error("IsInf(Inf) = false")
	}
	if IsInf(MaxFinite) || IsInf(0) {
		t.Error("IsInf on finite value = true")
	}
}

func TestNewIsAllInf(t *testing.T) {
	m := New(5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if m.At(i, j) != Inf {
				t.Fatalf("New matrix entry (%d,%d) = %d, want Inf", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewZero(t *testing.T) {
	m := NewZero(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("NewZero entry (%d,%d) = %d", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestInitAPSP(t *testing.T) {
	m := NewZero(6)
	m.InitAPSP()
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := Inf
			if i == j {
				want = 0
			}
			if m.At(i, j) != want {
				t.Fatalf("InitAPSP entry (%d,%d) = %d, want %d", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestRowAliasesStorage(t *testing.T) {
	m := New(3)
	r := m.Row(1)
	r[2] = 42
	if m.At(1, 2) != 42 {
		t.Error("Row does not alias matrix storage")
	}
	if len(r) != 3 || cap(r) != 3 {
		t.Errorf("Row len/cap = %d/%d, want 3/3", len(r), cap(r))
	}
}

func TestSetAt(t *testing.T) {
	m := New(4)
	m.Set(2, 3, 7)
	if m.At(2, 3) != 7 {
		t.Errorf("At(2,3) = %d, want 7", m.At(2, 3))
	}
	if m.At(3, 2) != Inf {
		t.Error("Set wrote the transposed entry")
	}
}

func TestFillZeroSize(t *testing.T) {
	m := New(0)
	m.Fill(3) // must not panic
	if m.N() != 0 {
		t.Error("N of empty matrix != 0")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := New(3)
	m.Set(0, 1, 9)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.Set(0, 1, 10)
	if m.At(0, 1) != 9 {
		t.Error("mutating clone changed original")
	}
}

func TestEqualAndDiff(t *testing.T) {
	a, b := New(3), New(3)
	if !a.Equal(b) {
		t.Fatal("fresh equal matrices reported unequal")
	}
	b.Set(1, 2, 5)
	b.Set(2, 0, 6)
	if a.Equal(b) {
		t.Fatal("different matrices reported equal")
	}
	d, err := a.Diff(b, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 || d[0] != [2]int{1, 2} || d[1] != [2]int{2, 0} {
		t.Errorf("Diff = %v", d)
	}
	d, err = a.Diff(b, 1)
	if err != nil || len(d) != 1 {
		t.Errorf("Diff with max=1 returned %v, %v", d, err)
	}
	if _, err := a.Diff(New(4), 1); err != ErrDimension {
		t.Errorf("Diff dimension mismatch error = %v", err)
	}
}

func TestEqualDifferentSizes(t *testing.T) {
	if New(2).Equal(New(3)) {
		t.Error("matrices of different sizes reported equal")
	}
}

func TestMemBytes(t *testing.T) {
	if got := New(10).MemBytes(); got != 400 {
		t.Errorf("MemBytes = %d, want 400", got)
	}
	if got := EstimateMemBytes(10); got != 400 {
		t.Errorf("EstimateMemBytes = %d, want 400", got)
	}
	if got := EstimateMemBytes(200000); got != 160000000000 {
		t.Errorf("EstimateMemBytes(200000) = %d", got)
	}
}

func TestCountFinite(t *testing.T) {
	m := New(4)
	m.InitAPSP()
	if got := m.CountFinite(); got != 4 {
		t.Errorf("CountFinite after InitAPSP = %d, want 4", got)
	}
	m.Set(0, 1, 3)
	if got := m.CountFinite(); got != 5 {
		t.Errorf("CountFinite = %d, want 5", got)
	}
}

func TestChecksumDistinguishes(t *testing.T) {
	a, b := New(4), New(4)
	a.InitAPSP()
	b.InitAPSP()
	if a.Checksum() != b.Checksum() {
		t.Fatal("equal matrices have different checksums")
	}
	b.Set(1, 1, 1)
	if a.Checksum() == b.Checksum() {
		t.Fatal("different matrices have equal checksums")
	}
}

func TestChecksumOrderDependent(t *testing.T) {
	a, b := New(2), New(2)
	a.Set(0, 0, 1) // [1 inf / inf inf]
	b.Set(0, 1, 1) // [inf 1 / inf inf]
	if a.Checksum() == b.Checksum() {
		t.Error("checksum ignores entry positions")
	}
}

func TestStringSmall(t *testing.T) {
	m := New(2)
	m.InitAPSP()
	m.Set(0, 1, 3)
	want := "0 3\ninf 0\n"
	if got := m.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestStringLargeSummarized(t *testing.T) {
	m := New(100)
	s := m.String()
	if !strings.Contains(s, "n=100") {
		t.Errorf("large String() = %q", s)
	}
	if len(s) > 200 {
		t.Errorf("large String() too long: %d bytes", len(s))
	}
}

func TestFillProperty(t *testing.T) {
	f := func(v uint32, dim uint8) bool {
		n := int(dim % 20)
		m := New(n)
		m.Fill(Dist(v))
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if m.At(i, j) != Dist(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
