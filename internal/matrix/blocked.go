package matrix

// Blocked iteration helpers: every whole-row scan in this package (and the
// min-plus kernels in internal/kernel, which follow the same pattern) walks
// the data in fixed-width blocks through a slice-to-array-pointer
// conversion. The conversion proves the block's length to the compiler, so
// the per-element bounds checks disappear and the inner loop is eligible
// for unrolling and wide loads. On the row sizes the APSP algorithms use
// (thousands of entries) this is the difference between a bounds-checked
// scalar loop and a straight-line register loop.

// blockWidth is the fixed element count of one block. Eight 4-byte Dist
// entries are one 32-byte chunk — half a cache line, and the width the Go
// compiler unrolls cleanly on amd64 and arm64.
const blockWidth = 8

// equalDist reports whether a and b are element-wise identical. Blocks are
// compared as [blockWidth]Dist array values, which the compiler lowers to
// wide memory compares.
func equalDist(a, b []Dist) bool {
	if len(a) != len(b) {
		return false
	}
	i := 0
	for ; i+blockWidth <= len(a); i += blockWidth {
		if *(*[blockWidth]Dist)(a[i:]) != *(*[blockWidth]Dist)(b[i:]) {
			return false
		}
	}
	for ; i < len(a); i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// countFinite returns the number of non-Inf entries of s.
func countFinite(s []Dist) int {
	c := 0
	i := 0
	for ; i+blockWidth <= len(s); i += blockWidth {
		b := (*[blockWidth]Dist)(s[i:])
		for j := 0; j < blockWidth; j++ {
			if b[j] != Inf {
				c++
			}
		}
	}
	for ; i < len(s); i++ {
		if s[i] != Inf {
			c++
		}
	}
	return c
}

// checksumDist folds s into an FNV-1a style hash state h. The hash chain is
// inherently sequential, but the blocked walk still removes the per-element
// bounds checks.
func checksumDist(h uint64, s []Dist) uint64 {
	const prime = 1099511628211
	i := 0
	for ; i+blockWidth <= len(s); i += blockWidth {
		b := (*[blockWidth]Dist)(s[i:])
		for j := 0; j < blockWidth; j++ {
			h ^= uint64(b[j])
			h *= prime
		}
	}
	for ; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// ScanFinite returns the finite span and population of s: every non-Inf
// entry lies in [lo, hi), finite is their count, and max is the largest
// finite value (0 for an all-Inf slice). An all-Inf slice yields
// lo == hi == 0. The row-fold kernels use the result to touch only the
// finite part of mostly-Inf rows, and to prove saturation impossible when
// the fold offset plus max cannot reach Inf.
func ScanFinite(s []Dist) (lo, hi, finite int, max Dist) {
	lo = 0
	for lo < len(s) && s[lo] == Inf {
		lo++
	}
	if lo == len(s) {
		return 0, 0, 0, 0
	}
	hi = len(s)
	for s[hi-1] == Inf {
		hi--
	}
	// Count inside the span only; everything outside is Inf by construction.
	finite, max = countMaxFinite(s[lo:hi])
	return lo, hi, finite, max
}

// countMaxFinite returns the non-Inf population of s and its largest
// non-Inf value (0 when there is none).
func countMaxFinite(s []Dist) (int, Dist) {
	c := 0
	var max Dist
	i := 0
	for ; i+blockWidth <= len(s); i += blockWidth {
		b := (*[blockWidth]Dist)(s[i:])
		for j := 0; j < blockWidth; j++ {
			if b[j] != Inf {
				c++
				if b[j] > max {
					max = b[j]
				}
			}
		}
	}
	for ; i < len(s); i++ {
		if s[i] != Inf {
			c++
			if s[i] > max {
				max = s[i]
			}
		}
	}
	return c, max
}
