// Package order implements the vertex-ordering procedures from the paper:
// the O(n^2) partial selection sort Peng et al.'s optimized algorithm uses
// (Algorithm 3 lines 6-12), and the ladder of bucket-based replacements the
// paper develops in Section 4 — ParBuckets (Algorithm 5), ParMax
// (Algorithm 6), and MultiLists (Algorithm 7) — culminating in the exact,
// lock-free, parallel descending-degree ordering used by ParAPSP.
//
// Every procedure returns a permutation of the vertex ids [0, n) arranged
// in (exactly or approximately, see each function) non-increasing order of
// the supplied keys. For the APSP algorithms the keys are vertex degrees,
// but as the paper notes the procedures are general: the package also
// exposes them as general-purpose counting sorts for bounded integer keys
// (see CountingSortDesc and ParallelCountingSortDesc).
package order

import (
	"fmt"

	"parapsp/internal/sched"
)

// Procedure identifies one of the ordering algorithms.
type Procedure int

const (
	// Identity performs no ordering: sources are issued as 0,1,...,n-1.
	// It is the ordering used by the *basic* algorithm (ParAlg1).
	Identity Procedure = iota
	// Selection is the paper's original O(n^2) partial selection sort.
	Selection
	// SeqBucket is an exact sequential counting sort, the natural
	// single-thread member of the bucket family.
	SeqBucket
	// ParBucketsProc is Algorithm 5: a fixed number of degree-range
	// buckets filled in parallel under per-bucket locks. Approximate.
	ParBucketsProc
	// ParMaxProc is Algorithm 6: one bucket per degree value, high-degree
	// vertices bucketed in parallel under locks, the low-degree mass
	// appended sequentially. Exact.
	ParMaxProc
	// MultiListsProc is Algorithm 7: per-worker bucket lists merged by
	// precomputed offsets. Exact and lock-free. This is the procedure
	// inside ParAPSP.
	MultiListsProc
)

// String returns the paper's name for the procedure.
func (p Procedure) String() string {
	switch p {
	case Identity:
		return "identity"
	case Selection:
		return "selection"
	case SeqBucket:
		return "seq-bucket"
	case ParBucketsProc:
		return "par-buckets"
	case ParMaxProc:
		return "par-max"
	case MultiListsProc:
		return "multi-lists"
	default:
		return fmt.Sprintf("Procedure(%d)", int(p))
	}
}

// Valid reports whether p names a known procedure.
func (p Procedure) Valid() bool { return p >= Identity && p <= MultiListsProc }

// ParseProcedure maps a name (as printed by String) to a Procedure.
func ParseProcedure(name string) (Procedure, error) {
	for p := Identity; p <= MultiListsProc; p++ {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("order: unknown procedure %q", name)
}

// Config carries the tuning constants of the procedures; zero fields take
// the paper's defaults (see Default).
type Config struct {
	// Workers is the parallelism of the parallel procedures.
	Workers int
	// Ratio is Algorithm 3's r: the fraction of leading positions the
	// selection sort settles exactly. The paper runs with r = 1.0.
	Ratio float64
	// BucketRanges is ParBuckets' number of degree ranges (the paper's
	// "100 widths", giving BucketRanges+1 buckets). The paper also
	// ablates 1000.
	BucketRanges int
	// Threshold is ParMax's parallel/sequential split as a fraction of
	// the maximum degree. The paper uses 0.01 (degrees in the top 99% of
	// the range are bucketed in parallel).
	Threshold float64
	// ParRatio is MultiLists' phase-2 split: degree buckets below
	// ParRatio*max are merged in parallel, the rest sequentially.
	// The paper uses 0.1.
	ParRatio float64
}

// Default returns the paper's configuration at the given worker count.
func Default(workers int) Config {
	return Config{Workers: workers, Ratio: 1.0, BucketRanges: 100, Threshold: 0.01, ParRatio: 0.1}
}

// normalized fills zero fields with defaults.
func (c Config) normalized() Config {
	d := Default(c.Workers)
	if c.Ratio == 0 {
		c.Ratio = d.Ratio
	}
	if c.BucketRanges == 0 {
		c.BucketRanges = d.BucketRanges
	}
	if c.Threshold == 0 {
		c.Threshold = d.Threshold
	}
	if c.ParRatio == 0 {
		c.ParRatio = d.ParRatio
	}
	c.Workers = sched.Workers(c.Workers)
	return c
}

// Run executes procedure p over the key array (vertex degrees in the APSP
// setting) and returns the source order. Keys must be non-negative.
func Run(p Procedure, keys []int, cfg Config) ([]int32, error) {
	if err := checkKeys(keys); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	switch p {
	case Identity:
		out := make([]int32, len(keys))
		for i := range out {
			out[i] = int32(i)
		}
		return out, nil
	case Selection:
		return SelectionSort(keys, cfg.Ratio), nil
	case SeqBucket:
		return SequentialBucket(keys), nil
	case ParBucketsProc:
		return ParBuckets(keys, cfg.Workers, cfg.BucketRanges), nil
	case ParMaxProc:
		return ParMax(keys, cfg.Workers, cfg.Threshold), nil
	case MultiListsProc:
		return MultiLists(keys, cfg.Workers, cfg.ParRatio), nil
	default:
		return nil, fmt.Errorf("order: invalid procedure %d", int(p))
	}
}

func checkKeys(keys []int) error {
	for i, k := range keys {
		if k < 0 {
			return fmt.Errorf("order: negative key %d at index %d", k, i)
		}
	}
	return nil
}

func maxKey(keys []int) int {
	max := 0
	for _, k := range keys {
		if k > max {
			max = k
		}
	}
	return max
}

func minMaxKey(keys []int) (min, max int) {
	if len(keys) == 0 {
		return 0, 0
	}
	min, max = keys[0], keys[0]
	for _, k := range keys[1:] {
		if k < min {
			min = k
		}
		if k > max {
			max = k
		}
	}
	return
}

// SelectionSort is the ordering step of the paper's Algorithm 3
// (lines 4-12), kept byte-for-byte faithful to the pseudocode: an O(r*n^2)
// partial selection sort that settles the first ceil(r*n) positions of the
// order array in exactly descending key order. With r = 1.0 the whole
// array is exactly ordered. This is the procedure whose cost dominates the
// parallel overhead of ParAlg2 (Table 1: ~46 s on WordNet regardless of
// thread count, because it is inherently sequential).
func SelectionSort(keys []int, r float64) []int32 {
	n := len(keys)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	if r <= 0 {
		return order
	}
	limit := int(r * float64(n))
	if limit > n {
		limit = n
	}
	for i := 0; i < limit; i++ {
		for j := i + 1; j < n; j++ {
			if keys[order[j]] > keys[order[i]] {
				order[j], order[i] = order[i], order[j]
			}
		}
	}
	return order
}

// SequentialBucket is an exact descending counting sort: one bucket per key
// value, single-threaded. It is the O(n) sequential baseline the parallel
// procedures are compared against, and the procedure's within-key order is
// by increasing vertex id (stable).
func SequentialBucket(keys []int) []int32 {
	n := len(keys)
	order := make([]int32, n)
	if n == 0 {
		return order
	}
	max := maxKey(keys)
	counts := make([]int32, max+2)
	for _, k := range keys {
		counts[k]++
	}
	// Exclusive prefix over descending keys: start position of key k.
	start := make([]int32, max+1)
	pos := int32(0)
	for k := max; k >= 0; k-- {
		start[k] = pos
		pos += counts[k]
	}
	for i, k := range keys {
		order[start[k]] = int32(i)
		start[k]++
	}
	return order
}
