package order

import (
	"errors"

	"parapsp/internal/sched"
)

// errKeyRange reports a key outside the 31-bit range the radix sort
// supports.
var errKeyRange = errors.New("order: radix sort keys must fit in 31 bits")

// radixBits is the digit width of the parallel radix sort: 8-bit digits
// give 256 buckets per pass, four passes for 32-bit keys.
const radixBits = 8

// ParallelRadixSortDesc extends the package's general-sorting machinery
// beyond the "keys in limited ranges" restriction the paper states for
// MultiLists: a parallel LSD radix sort over 32-bit non-negative keys,
// stable, returning the permutation that arranges keys in non-increasing
// order. Each pass is a MultiLists-style two-phase counting step — private
// per-worker histograms, an offset prefix sweep, then a lock-free
// scatter — so the technique is the paper's, applied per digit.
func ParallelRadixSortDesc(keys []int, workers int) ([]int32, error) {
	if err := checkKeys(keys); err != nil {
		return nil, err
	}
	for _, k := range keys {
		if k > 1<<31-1 {
			return nil, errKeyRange
		}
	}
	n := len(keys)
	workers = sched.Workers(workers)
	cur := make([]int32, n)
	for i := range cur {
		cur[i] = int32(i)
	}
	if n == 0 {
		return cur, nil
	}
	max := maxKey(keys)
	nxt := make([]int32, n)

	const radix = 1 << radixBits
	// Per-worker, per-digit histograms; hist[w][d].
	hist := make([][]int32, workers)
	for w := range hist {
		hist[w] = make([]int32, radix)
	}

	for shift := 0; max>>shift > 0 || shift == 0; shift += radixBits {
		for w := range hist {
			clear(hist[w])
		}
		// Phase 1: private histograms over block-partitioned input.
		sched.ParallelWorkers(n, workers, sched.Block, func(w, i int) {
			d := (keys[cur[i]] >> shift) & (radix - 1)
			hist[w][d]++
		})
		// Offsets: descending digit order (for a descending sort every
		// pass must place larger digits first), workers in block order to
		// preserve stability.
		pos := int32(0)
		start := make([][]int32, workers)
		for w := range start {
			start[w] = make([]int32, radix)
		}
		for d := radix - 1; d >= 0; d-- {
			for w := 0; w < workers; w++ {
				start[w][d] = pos
				pos += hist[w][d]
			}
		}
		// Phase 2: stable scatter. Each worker walks its own block in
		// order and writes to disjoint, precomputed regions.
		sched.ParallelWorkers(n, workers, sched.Block, func(w, i int) {
			d := (keys[cur[i]] >> shift) & (radix - 1)
			p := start[w][d]
			start[w][d]++
			nxt[p] = cur[i]
		})
		cur, nxt = nxt, cur
	}
	return cur, nil
}
