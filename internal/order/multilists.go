package order

import "parapsp/internal/sched"

// MultiLists is Algorithm 7, the paper's final ordering procedure and the
// one embedded in ParAPSP: an exact, lock-free, parallel descending
// counting sort.
//
// Phase 1 (lines 3-8): each worker owns a private list of buckets
// (bucketLists[worker][key]) and scatters its statically assigned slice of
// vertices into them — no shared state, hence no locks. The static (block)
// split mirrors the paper's plain "#pragma omp for".
//
// Offsets (line 9): a sequential sweep over (key desc, worker asc)
// computes each local bucket's start position in the global order array —
// an exclusive prefix sum over bucket sizes.
//
// Phase 2 (lines 10-20): local buckets are copied to their precomputed,
// pairwise-disjoint destinations. Buckets of keys below parRatio*max —
// which hold ~99% of the vertices of a power-law graph — are copied by
// their owning workers in parallel; the sparse high-key buckets are copied
// sequentially, which the paper prefers to avoid false sharing on the many
// nearly-empty high-degree ranges.
//
// The output is deterministic for fixed (keys, workers): key descending,
// ties broken by worker id then by vertex id within a worker's block.
func MultiLists(keys []int, workers int, parRatio float64) []int32 {
	n := len(keys)
	if n == 0 {
		return []int32{}
	}
	workers = sched.Workers(workers)
	_, max := minMaxKey(keys)

	// Phase 1: per-worker private bucket lists.
	bucketLists := make([][][]int32, workers)
	sched.ParallelWorkers(n, workers, sched.Block, func(w, i int) {
		if bucketLists[w] == nil {
			bucketLists[w] = make([][]int32, max+1)
		}
		k := keys[i]
		bucketLists[w][k] = append(bucketLists[w][k], int32(i))
	})

	// Offsets: start position of every (worker, key) bucket in the global
	// order, walking keys high to low and workers in id order.
	orderPos := make([][]int32, workers)
	for w := range orderPos {
		orderPos[w] = make([]int32, max+1)
	}
	pos := int32(0)
	for k := max; k >= 0; k-- {
		for w := 0; w < workers; w++ {
			orderPos[w][k] = pos
			if bucketLists[w] != nil {
				pos += int32(len(bucketLists[w][k]))
			}
		}
	}

	order := make([]int32, n)
	lowMax := int(float64(max) * parRatio)

	// Phase 2a: low-key buckets in parallel. Destination ranges are
	// disjoint by construction, so no synchronization is needed.
	sched.ParallelWorkers(workers, workers, sched.Block, func(_, w int) {
		if bucketLists[w] == nil {
			return
		}
		for k := 0; k <= lowMax; k++ {
			copy(order[orderPos[w][k]:], bucketLists[w][k])
		}
	})

	// Phase 2b: high-key buckets sequentially (line 20).
	for k := lowMax + 1; k <= max; k++ {
		for w := 0; w < workers; w++ {
			if bucketLists[w] == nil {
				continue
			}
			copy(order[orderPos[w][k]:], bucketLists[w][k])
		}
	}
	return order
}

// CountingSortDesc returns the permutation of [0, len(keys)) that arranges
// keys in non-increasing order, stably (equal keys keep index order). It is
// the general-purpose sequential form of the package's ordering machinery,
// offered because — as the paper notes — the procedure "can be used in
// general parallel sorting problems when keys are in limited ranges".
// Keys must be non-negative.
func CountingSortDesc(keys []int) ([]int32, error) {
	if err := checkKeys(keys); err != nil {
		return nil, err
	}
	return SequentialBucket(keys), nil
}

// CountingSortAsc is CountingSortDesc with ascending output, equally stable.
func CountingSortAsc(keys []int) ([]int32, error) {
	if err := checkKeys(keys); err != nil {
		return nil, err
	}
	desc := SequentialBucket(keys)
	n := len(desc)
	asc := make([]int32, n)
	// Reverse the key blocks while preserving stability within each block.
	for i := 0; i < n; {
		j := i
		for j < n && keys[desc[j]] == keys[desc[i]] {
			j++
		}
		copy(asc[n-j:], desc[i:j])
		i = j
	}
	return asc, nil
}

// ParallelCountingSortDesc is the general-purpose parallel form: MultiLists
// with the paper's parRatio, validated keys, and a normalized worker count.
func ParallelCountingSortDesc(keys []int, workers int) ([]int32, error) {
	if err := checkKeys(keys); err != nil {
		return nil, err
	}
	return MultiLists(keys, workers, 0.1), nil
}

// SortedByKeysDesc reports whether perm is a permutation of [0, len(keys))
// whose key sequence is non-increasing — the postcondition of every exact
// ordering procedure. Tests and benchmark self-checks use it.
func SortedByKeysDesc(keys []int, perm []int32) bool {
	if len(perm) != len(keys) {
		return false
	}
	seen := make([]bool, len(keys))
	for i, v := range perm {
		if v < 0 || int(v) >= len(keys) || seen[v] {
			return false
		}
		seen[v] = true
		if i > 0 && keys[perm[i-1]] < keys[v] {
			return false
		}
	}
	return true
}

// IsPermutation reports whether perm is a permutation of [0, n).
func IsPermutation(perm []int32, n int) bool {
	if len(perm) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range perm {
		if v < 0 || int(v) >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
