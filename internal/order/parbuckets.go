package order

import (
	"sync"

	"parapsp/internal/sched"
)

// FindBin is equation (1) of the paper: the bucket index of a key under
// ranges fixed-width buckets spanning [min, max]. It returns a value in
// [0, ranges]; with ranges = 100 that is the paper's 101 buckets.
// When max == min every key lands in bucket 0 (the paper's formula would
// divide by zero; a single bucket is the only sensible reading).
func FindBin(key, min, max, ranges int) int {
	if max == min {
		return 0
	}
	return ranges * (key - min) / (max - min)
}

// ParBuckets is Algorithm 5: an *approximate* parallel descending ordering.
// Vertices are scattered into ranges+1 fixed-width degree buckets by a
// parallel loop protected by one mutex per bucket, then the buckets are
// concatenated from the highest range down.
//
// Two properties the paper measures follow directly from this construction
// and are asserted by the tests and reproduced by the benchmarks:
//
//   - The result is only bucket-granular: within a bucket, vertices appear
//     in arrival order, so keys are NOT monotone inside buckets (Figure 5's
//     SSSP-phase slowdown versus an exact order).
//   - On power-law key distributions almost every vertex hashes to the few
//     lowest buckets, so lock contention grows with the worker count and
//     ordering time *increases* with threads (Table 1 row "parBuckets").
func ParBuckets(keys []int, workers, ranges int) []int32 {
	n := len(keys)
	if n == 0 {
		return []int32{}
	}
	if ranges < 1 {
		ranges = 100
	}
	min, max := minMaxKey(keys)
	buckets := make([][]int32, ranges+1)
	locks := make([]sync.Mutex, ranges+1)
	sched.ParallelFor(n, workers, sched.Block, func(i int) {
		bin := FindBin(keys[i], min, max, ranges)
		locks[bin].Lock()
		buckets[bin] = append(buckets[bin], int32(i))
		locks[bin].Unlock()
	})
	order := make([]int32, 0, n)
	for b := ranges; b >= 0; b-- {
		order = append(order, buckets[b]...)
	}
	return order
}

// ParMax is Algorithm 6: an *exact* parallel descending ordering with one
// bucket per degree value (max+1 buckets). The parallel first pass bins
// only the vertices whose key is at least threshold*max — the sparse tail
// of a power-law distribution — under per-bucket locks; the sequential
// second pass bins everything else, using the added bitmap to skip work
// already done. Buckets are concatenated from key max down to 0.
//
// Because a bucket holds a single key value, arrival order inside a bucket
// cannot violate the descending-key invariant: the output is an exact
// descending ordering (Figure 5 shows its SSSP phase matching ParAlg2's).
func ParMax(keys []int, workers int, threshold float64) []int32 {
	n := len(keys)
	if n == 0 {
		return []int32{}
	}
	_, max := minMaxKey(keys)
	cut := int(float64(max) * threshold)
	buckets := make([][]int32, max+1)
	locks := make([]sync.Mutex, max+1)
	added := make([]bool, n)
	sched.ParallelFor(n, workers, sched.Block, func(i int) {
		if keys[i] >= cut {
			k := keys[i]
			locks[k].Lock()
			buckets[k] = append(buckets[k], int32(i))
			locks[k].Unlock()
			added[i] = true
		}
	})
	for i := 0; i < n; i++ {
		if !added[i] {
			buckets[keys[i]] = append(buckets[keys[i]], int32(i))
		}
	}
	order := make([]int32, 0, n)
	for k := max; k >= 0; k-- {
		order = append(order, buckets[k]...)
	}
	return order
}
