package order

import (
	"testing"
)

// FuzzOrderings feeds arbitrary key bytes to every ordering procedure and
// asserts the exactness/permutation postconditions hold (or the input is
// rejected) — never a panic, never a corrupt permutation.
func FuzzOrderings(f *testing.F) {
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{0, 0, 0}, uint8(2))
	f.Add([]byte{255, 0, 127, 3, 3}, uint8(4))
	f.Add([]byte{1}, uint8(16))
	f.Fuzz(func(t *testing.T, data []byte, workers uint8) {
		keys := make([]int, len(data))
		for i, b := range data {
			keys[i] = int(b)
		}
		w := int(workers%16) + 1
		for _, proc := range []Procedure{Identity, Selection, SeqBucket, ParBucketsProc, ParMaxProc, MultiListsProc} {
			got, err := Run(proc, keys, Config{Workers: w})
			if err != nil {
				t.Fatalf("%v rejected non-negative keys: %v", proc, err)
			}
			if !IsPermutation(got, len(keys)) {
				t.Fatalf("%v: not a permutation", proc)
			}
			switch proc {
			case Selection, SeqBucket, ParMaxProc, MultiListsProc:
				if !SortedByKeysDesc(keys, got) {
					t.Fatalf("%v: not exactly descending", proc)
				}
			}
		}
	})
}

// FuzzCountingSorts checks the general-purpose sorts against each other.
func FuzzCountingSorts(f *testing.F) {
	f.Add([]byte{5, 1, 5, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		keys := make([]int, len(data))
		for i, b := range data {
			keys[i] = int(b)
		}
		desc, err := CountingSortDesc(keys)
		if err != nil {
			t.Fatal(err)
		}
		asc, err := CountingSortAsc(keys)
		if err != nil {
			t.Fatal(err)
		}
		if !IsPermutation(desc, len(keys)) || !IsPermutation(asc, len(keys)) {
			t.Fatal("not permutations")
		}
		// asc is desc reversed at the key level.
		for i := range desc {
			if keys[desc[i]] != keys[asc[len(asc)-1-i]] {
				t.Fatalf("asc/desc key sequences inconsistent at %d", i)
			}
		}
	})
}
