package order

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// exactProcs lists the procedures guaranteed to produce an exact
// descending-key permutation.
var exactProcs = []Procedure{Selection, SeqBucket, ParMaxProc, MultiListsProc}

func randKeys(rng *rand.Rand, n, maxKey int) []int {
	keys := make([]int, n)
	for i := range keys {
		keys[i] = rng.Intn(maxKey + 1)
	}
	return keys
}

// powerLawKeys approximates a scale-free degree array: most keys tiny,
// a few large — the distribution that drives the paper's contention story.
func powerLawKeys(rng *rand.Rand, n, maxKey int) []int {
	keys := make([]int, n)
	for i := range keys {
		u := rng.Float64()
		k := int(float64(maxKey) * u * u * u * u)
		keys[i] = k
	}
	return keys
}

func TestExactProceduresSortDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, proc := range exactProcs {
		for _, n := range []int{0, 1, 2, 10, 100, 1000} {
			for _, workers := range []int{1, 2, 4, 7} {
				keys := randKeys(rng, n, 50)
				got, err := Run(proc, keys, Config{Workers: workers})
				if err != nil {
					t.Fatalf("%v: %v", proc, err)
				}
				if !SortedByKeysDesc(keys, got) {
					t.Fatalf("%v n=%d w=%d: output not a descending permutation", proc, n, workers)
				}
			}
		}
	}
}

func TestIdentityOrder(t *testing.T) {
	got, err := Run(Identity, []int{5, 1, 9}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if int(v) != i {
			t.Fatalf("identity order = %v", got)
		}
	}
}

func TestParBucketsIsPermutationAndBucketMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 50, 2000} {
		for _, workers := range []int{1, 3, 8} {
			keys := powerLawKeys(rng, n, 400)
			got := ParBuckets(keys, workers, 100)
			if !IsPermutation(got, n) {
				t.Fatalf("ParBuckets n=%d w=%d: not a permutation", n, workers)
			}
			// Bucket-granular monotonicity: bin indices must be
			// non-increasing along the output even though raw keys need not.
			min, max := minMaxKey(keys)
			for i := 1; i < len(got); i++ {
				b0 := FindBin(keys[got[i-1]], min, max, 100)
				b1 := FindBin(keys[got[i]], min, max, 100)
				if b1 > b0 {
					t.Fatalf("bucket order violated at %d: bins %d then %d", i, b0, b1)
				}
			}
		}
	}
}

func TestParBucketsApproximateOnly(t *testing.T) {
	// With two distinct keys falling in the same bucket, ParBuckets may
	// interleave them; verify the documented *approximation* actually
	// occurs for some input, i.e. we are not accidentally exact.
	keys := make([]int, 1000)
	for i := range keys {
		keys[i] = i % 7 // max 6 < 100 ranges, but FindBin spreads over bins
	}
	// keys 0..6, min=0 max=6; FindBin(k) = 100*k/6: distinct per key, so
	// this case IS exact. Construct a genuinely colliding case instead:
	keys2 := make([]int, 1000)
	for i := range keys2 {
		keys2[i] = i % 607 // many distinct keys > 101 buckets
	}
	got := ParBuckets(keys2, 1, 100)
	exact := SortedByKeysDesc(keys2, got)
	if exact {
		t.Error("ParBuckets with colliding keys produced an exact order; approximation property lost")
	}
	if !IsPermutation(got, len(keys2)) {
		t.Error("ParBuckets output is not a permutation")
	}
}

func TestFindBin(t *testing.T) {
	cases := []struct {
		key, min, max, ranges, want int
	}{
		{0, 0, 100, 100, 0},
		{100, 0, 100, 100, 100},
		{50, 0, 100, 100, 50},
		{5, 5, 5, 100, 0},     // max == min
		{7, 5, 9, 100, 50},    // (7-5)/(9-5) = 0.5
		{9, 5, 9, 100, 100},   // inclusive max
		{333, 0, 1000, 10, 3}, // coarse ranges
	}
	for _, c := range cases {
		if got := FindBin(c.key, c.min, c.max, c.ranges); got != c.want {
			t.Errorf("FindBin(%d,%d,%d,%d) = %d, want %d", c.key, c.min, c.max, c.ranges, got, c.want)
		}
	}
}

func TestFindBinRangeProperty(t *testing.T) {
	f := func(k, mn, mx uint16, r uint8) bool {
		min, max := int(mn), int(mx)
		if min > max {
			min, max = max, min
		}
		key := min + int(k)%(max-min+1)
		ranges := 1 + int(r)
		bin := FindBin(key, min, max, ranges)
		return bin >= 0 && bin <= ranges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectionPartialRatio(t *testing.T) {
	keys := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	// r = 0.3 settles the first 3 positions exactly.
	got := SelectionSort(keys, 0.3)
	if !IsPermutation(got, len(keys)) {
		t.Fatal("not a permutation")
	}
	want := []int{9, 6, 5} // top three keys
	for i := 0; i < 3; i++ {
		if keys[got[i]] != want[i] {
			t.Errorf("position %d key = %d, want %d", i, keys[got[i]], want[i])
		}
	}
	// r <= 0 leaves identity.
	id := SelectionSort(keys, 0)
	for i, v := range id {
		if int(v) != i {
			t.Fatalf("r=0 order = %v", id)
		}
	}
	// r > 1 clamps.
	full := SelectionSort(keys, 2.5)
	if !SortedByKeysDesc(keys, full) {
		t.Error("r=2.5 did not fully sort")
	}
}

func TestSequentialBucketStable(t *testing.T) {
	keys := []int{5, 3, 5, 3, 5}
	got := SequentialBucket(keys)
	want := []int32{0, 2, 4, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SequentialBucket = %v, want %v", got, want)
		}
	}
}

func TestMultiListsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := powerLawKeys(rng, 5000, 300)
	a := MultiLists(keys, 4, 0.1)
	b := MultiLists(keys, 4, 0.1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("MultiLists not deterministic at %d", i)
		}
	}
}

func TestMultiListsTieBreakByWorkerThenIndex(t *testing.T) {
	// All equal keys, 2 workers, block split: output must be 0..n-1.
	keys := make([]int, 10)
	got := MultiLists(keys, 2, 0.1)
	for i, v := range got {
		if int(v) != i {
			t.Fatalf("tie-break order = %v", got)
		}
	}
}

func TestMultiListsParRatioExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	keys := randKeys(rng, 1000, 200)
	for _, ratio := range []float64{0, 0.0001, 0.5, 1.0} {
		got := MultiLists(keys, 3, ratio)
		if !SortedByKeysDesc(keys, got) {
			t.Fatalf("parRatio=%v: not exact", ratio)
		}
	}
}

func TestMultiListsMoreWorkersThanKeys(t *testing.T) {
	keys := []int{2, 1, 3}
	got := MultiLists(keys, 16, 0.1)
	if !SortedByKeysDesc(keys, got) {
		t.Fatalf("got %v", got)
	}
}

func TestParMaxThresholdExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	keys := powerLawKeys(rng, 2000, 500)
	for _, th := range []float64{0, 0.01, 0.5, 1.0} {
		got := ParMax(keys, 4, th)
		if !SortedByKeysDesc(keys, got) {
			t.Fatalf("threshold=%v: not exact", th)
		}
	}
}

func TestAllZeroKeys(t *testing.T) {
	keys := make([]int, 100)
	for _, proc := range exactProcs {
		got, err := Run(proc, keys, Config{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !IsPermutation(got, 100) {
			t.Fatalf("%v: not a permutation on all-zero keys", proc)
		}
	}
	got := ParBuckets(keys, 4, 100)
	if !IsPermutation(got, 100) {
		t.Fatal("ParBuckets: not a permutation on all-zero keys")
	}
}

func TestNegativeKeysRejected(t *testing.T) {
	for _, proc := range []Procedure{Selection, SeqBucket, ParBucketsProc, ParMaxProc, MultiListsProc} {
		if _, err := Run(proc, []int{1, -2, 3}, Config{}); err == nil {
			t.Errorf("%v accepted negative keys", proc)
		}
	}
	if _, err := CountingSortDesc([]int{-1}); err == nil {
		t.Error("CountingSortDesc accepted negative keys")
	}
	if _, err := CountingSortAsc([]int{-1}); err == nil {
		t.Error("CountingSortAsc accepted negative keys")
	}
	if _, err := ParallelCountingSortDesc([]int{-1}, 2); err == nil {
		t.Error("ParallelCountingSortDesc accepted negative keys")
	}
}

func TestRunInvalidProcedure(t *testing.T) {
	if _, err := Run(Procedure(99), []int{1}, Config{}); err == nil {
		t.Error("Run accepted invalid procedure")
	}
}

func TestCountingSortAsc(t *testing.T) {
	keys := []int{5, 3, 5, 3, 0}
	got, err := CountingSortAsc(keys)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{4, 1, 3, 0, 2} // stable ascending
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CountingSortAsc = %v, want %v", got, want)
		}
	}
}

func TestCountingSortsEmpty(t *testing.T) {
	if got, err := CountingSortDesc(nil); err != nil || len(got) != 0 {
		t.Errorf("Desc(nil) = %v, %v", got, err)
	}
	if got, err := CountingSortAsc(nil); err != nil || len(got) != 0 {
		t.Errorf("Asc(nil) = %v, %v", got, err)
	}
}

func TestParallelCountingSortDescMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		keys := randKeys(rng, 1+rng.Intn(500), 64)
		par, err := ParallelCountingSortDesc(keys, 1+rng.Intn(6))
		if err != nil {
			return false
		}
		return SortedByKeysDesc(keys, par)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestProcedureStringsRoundTrip(t *testing.T) {
	for p := Identity; p <= MultiListsProc; p++ {
		got, err := ParseProcedure(p.String())
		if err != nil || got != p {
			t.Errorf("round trip of %v failed: %v, %v", p, got, err)
		}
		if !p.Valid() {
			t.Errorf("%v invalid", p)
		}
	}
	if _, err := ParseProcedure("nope"); err == nil {
		t.Error("ParseProcedure accepted unknown name")
	}
	if Procedure(42).Valid() {
		t.Error("Procedure(42) valid")
	}
	if Procedure(42).String() != "Procedure(42)" {
		t.Errorf("unknown String = %q", Procedure(42).String())
	}
}

func TestSortedByKeysDescValidation(t *testing.T) {
	keys := []int{3, 2, 1}
	if SortedByKeysDesc(keys, []int32{0, 1}) {
		t.Error("accepted short perm")
	}
	if SortedByKeysDesc(keys, []int32{0, 0, 1}) {
		t.Error("accepted duplicate")
	}
	if SortedByKeysDesc(keys, []int32{2, 1, 0}) {
		t.Error("accepted ascending keys")
	}
	if !SortedByKeysDesc(keys, []int32{0, 1, 2}) {
		t.Error("rejected valid descending perm")
	}
	if SortedByKeysDesc(keys, []int32{0, 1, 5}) {
		t.Error("accepted out-of-range entry")
	}
}

func TestIsPermutation(t *testing.T) {
	if !IsPermutation([]int32{2, 0, 1}, 3) {
		t.Error("valid permutation rejected")
	}
	if IsPermutation([]int32{0, 0, 1}, 3) {
		t.Error("duplicate accepted")
	}
	if IsPermutation([]int32{0, 1}, 3) {
		t.Error("short accepted")
	}
	if IsPermutation([]int32{0, 1, 3}, 3) {
		t.Error("out of range accepted")
	}
}

func TestDefaultConfig(t *testing.T) {
	c := Default(8)
	if c.Workers != 8 || c.Ratio != 1.0 || c.BucketRanges != 100 || c.Threshold != 0.01 || c.ParRatio != 0.1 {
		t.Errorf("Default = %+v", c)
	}
}

// Property: all exact procedures agree with each other up to key sequence.
func TestExactProceduresAgreeOnKeySequence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		keys := randKeys(rng, 1+rng.Intn(300), 40)
		ref, err := Run(SeqBucket, keys, Config{})
		if err != nil {
			return false
		}
		for _, proc := range exactProcs {
			got, err := Run(proc, keys, Config{Workers: 3})
			if err != nil {
				return false
			}
			for i := range got {
				if keys[got[i]] != keys[ref[i]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
