package order

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRadixSortSmall(t *testing.T) {
	keys := []int{300, 5, 300, 70000, 0, 5}
	got, err := ParallelRadixSortDesc(keys, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !SortedByKeysDesc(keys, got) {
		t.Fatalf("not descending: %v", got)
	}
	// Stability: equal keys keep index order.
	want := []int32{3, 0, 2, 1, 5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRadixSortEmptyAndSingle(t *testing.T) {
	if got, err := ParallelRadixSortDesc(nil, 4); err != nil || len(got) != 0 {
		t.Errorf("empty: %v, %v", got, err)
	}
	got, err := ParallelRadixSortDesc([]int{42}, 4)
	if err != nil || len(got) != 1 || got[0] != 0 {
		t.Errorf("single: %v, %v", got, err)
	}
}

func TestRadixSortRejectsBadKeys(t *testing.T) {
	if _, err := ParallelRadixSortDesc([]int{-1}, 2); err == nil {
		t.Error("negative key accepted")
	}
	if _, err := ParallelRadixSortDesc([]int{1 << 31}, 2); err == nil {
		t.Error("32-bit key accepted")
	}
}

func TestRadixSortAllEqual(t *testing.T) {
	keys := make([]int, 1000)
	for i := range keys {
		keys[i] = 7
	}
	got, err := ParallelRadixSortDesc(keys, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if int(v) != i {
			t.Fatalf("equal keys broke stability at %d: %v", i, got[i])
		}
	}
}

func TestRadixSortMatchesStdlib(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(2000)
		keys := make([]int, n)
		for i := range keys {
			switch rng.Intn(3) {
			case 0:
				keys[i] = rng.Intn(10) // heavy ties
			case 1:
				keys[i] = rng.Intn(1 << 16)
			default:
				keys[i] = rng.Intn(1 << 31)
			}
		}
		workers := 1 + rng.Intn(8)
		got, err := ParallelRadixSortDesc(keys, workers)
		if err != nil {
			return false
		}
		if !SortedByKeysDesc(keys, got) {
			return false
		}
		// Stability against a stable stdlib reference.
		ref := make([]int, n)
		for i := range ref {
			ref[i] = i
		}
		sort.SliceStable(ref, func(a, b int) bool { return keys[ref[a]] > keys[ref[b]] })
		for i := range ref {
			if int(got[i]) != ref[i] {
				t.Logf("seed %d: stability mismatch at %d", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRadixSortWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	keys := make([]int, 5000)
	for i := range keys {
		keys[i] = rng.Intn(1 << 20)
	}
	a, err := ParallelRadixSortDesc(keys, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParallelRadixSortDesc(keys, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("worker counts disagree at %d", i)
		}
	}
}
