package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept, r2, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 || math.Abs(r2-1) > 1e-12 {
		t.Errorf("fit = %g, %g, %g", slope, intercept, r2)
	}
}

func TestLinearFitHorizontal(t *testing.T) {
	slope, intercept, r2, err := LinearFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if slope != 0 || intercept != 5 || r2 != 1 {
		t.Errorf("horizontal fit = %g, %g, %g", slope, intercept, r2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, _, err := LinearFit([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("vertical data accepted")
	}
	if _, _, _, err := LinearFit([]float64{1, math.NaN()}, []float64{1, 2}); err == nil {
		t.Error("NaN accepted")
	}
	if _, _, _, err := LinearFit([]float64{1, math.Inf(1)}, []float64{1, 2}); err == nil {
		t.Error("Inf accepted")
	}
}

func TestLinearFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 3*x-7+rng.NormFloat64())
	}
	slope, intercept, r2, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-3) > 0.05 || math.Abs(intercept+7) > 3 {
		t.Errorf("noisy fit slope=%g intercept=%g", slope, intercept)
	}
	if r2 < 0.99 {
		t.Errorf("R2 = %g", r2)
	}
}

func TestPowerLawFitExact(t *testing.T) {
	// y = 0.5 * x^2.4, the paper's empirical complexity shape.
	var xs, ys []float64
	for _, x := range []float64{100, 200, 400, 800, 1600} {
		xs = append(xs, x)
		ys = append(ys, 0.5*math.Pow(x, 2.4))
	}
	b, a, r2, err := PowerLawFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-2.4) > 1e-9 || math.Abs(a-0.5) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Errorf("power fit = %g, %g, %g", b, a, r2)
	}
}

func TestPowerLawFitRejectsNonPositive(t *testing.T) {
	if _, _, _, err := PowerLawFit([]float64{1, 0}, []float64{1, 2}); err == nil {
		t.Error("zero x accepted")
	}
	if _, _, _, err := PowerLawFit([]float64{1, 2}, []float64{-1, 2}); err == nil {
		t.Error("negative y accepted")
	}
}

func TestPowerLawFitRecoversRandomExponent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := 0.5 + 3*rng.Float64()
		a := 0.1 + rng.Float64()
		var xs, ys []float64
		for x := 10.0; x <= 10000; x *= 2 {
			xs = append(xs, x)
			ys = append(ys, a*math.Pow(x, b))
		}
		gb, ga, r2, err := PowerLawFit(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(gb-b) < 1e-6 && math.Abs(ga-a) < 1e-6 && r2 > 0.999999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %g", m)
	}
	if s := Stddev(xs); math.Abs(s-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("stddev = %g", s)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Stddev([]float64{1})) {
		t.Error("degenerate inputs not NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4, 16}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean = %g", g)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) || !math.IsNaN(GeoMean(nil)) {
		t.Error("invalid geomean inputs not NaN")
	}
}
