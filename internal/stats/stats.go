// Package stats provides the small statistical toolkit behind the
// empirical-complexity experiment: Peng et al. support their O(n^2.4)
// claim with a linear regression of log runtime against log problem size,
// and the harness's "complexity" experiment repeats that fit on this
// implementation.
package stats

import (
	"errors"
	"math"
)

// ErrFit reports an input unsuitable for regression.
var ErrFit = errors.New("stats: need at least two distinct finite points")

// LinearFit performs ordinary least squares of y on x and returns the
// slope, intercept, and coefficient of determination R^2.
func LinearFit(xs, ys []float64) (slope, intercept, r2 float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, 0, ErrFit
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) || math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
			return 0, 0, 0, ErrFit
		}
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0, ErrFit
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		// All y equal: the fit is exact (horizontal line).
		return slope, intercept, 1, nil
	}
	r2 = sxy * sxy / (sxx * syy)
	return slope, intercept, r2, nil
}

// PowerLawFit fits y = a * x^b by least squares in log-log space and
// returns the exponent b, coefficient a, and the R^2 of the log-log fit.
// All inputs must be strictly positive.
func PowerLawFit(xs, ys []float64) (exponent, coefficient, r2 float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, 0, ErrFit
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, 0, 0, ErrFit
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	slope, intercept, r2, err := LinearFit(lx, ly)
	if err != nil {
		return 0, 0, 0, err
	}
	return slope, math.Exp(intercept), r2, nil
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation (NaN for fewer than two
// points).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// GeoMean returns the geometric mean of strictly positive values
// (NaN otherwise), the right aggregate for speedup ratios.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
