package kernel

import (
	"math/rand"
	"testing"

	"parapsp/internal/matrix"
)

// The fold microbenchmarks measure the steady-state cost of the hot path:
// sweeping completed rows against a destination row that rarely improves
// (after the first few folds of a search almost every min is a no-op, so
// the scan — not the store — dominates). Each iteration folds a different
// source row, exactly as the solver does when it drains a fold batch; a
// single reused row would let the branch predictor memorize its Inf
// pattern and hide the misprediction cost that makes the scalar loop
// slow in practice. Row shapes:
//
//   Dense    — every entry finite: a completed row of a connected graph.
//   PowerLaw — ~30% finite, scattered: a row published mid-run, where the
//              Inf-skip branch of the scalar loop mispredicts hardest.
//   Sparse   — ~2% finite: a small component's row, where the indexed
//              gather kernel touches almost nothing.

const (
	benchRowLen = 4096
	benchRowRot = 16 // distinct source rows cycled per benchmark
)

type benchRow struct {
	src []matrix.Dist
	idx []int32
}

func benchRows(density float64) (dst []matrix.Dist, rows []benchRow) {
	rng := rand.New(rand.NewSource(42))
	dst = make([]matrix.Dist, benchRowLen)
	for i := range dst {
		dst[i] = matrix.Dist(1 + rng.Intn(4)) // already small: folds no-op
	}
	rows = make([]benchRow, benchRowRot)
	for k := range rows {
		src := make([]matrix.Dist, benchRowLen)
		for i := range src {
			if rng.Float64() < density {
				src[i] = matrix.Dist(1 + rng.Intn(1000))
			} else {
				src[i] = matrix.Inf
			}
		}
		rows[k] = benchRow{src: src, idx: finiteIndex(src)}
	}
	return dst, rows
}

func benchFold(b *testing.B, density float64, fold func(dst []matrix.Dist, r benchRow) int64) {
	dst, rows := benchRows(density)
	b.SetBytes(benchRowLen * 4)
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += fold(dst, rows[i%benchRowRot])
	}
	_ = sink
}

func BenchmarkFoldRowDenseRef(b *testing.B) {
	benchFold(b, 1.0, func(d []matrix.Dist, r benchRow) int64 { return FoldRowRef(d, r.src, 7) })
}

func BenchmarkFoldRowDense(b *testing.B) {
	benchFold(b, 1.0, func(d []matrix.Dist, r benchRow) int64 { return FoldRow(d, r.src, 7) })
}

func BenchmarkFoldRowDenseNoSat(b *testing.B) {
	// The solver proves dense rows unsaturated via the summary Max and
	// runs this loop instead; see core.foldRow.
	benchFold(b, 1.0, func(d []matrix.Dist, r benchRow) int64 { return FoldRowNoSat(d, r.src, 7) })
}

func BenchmarkFoldRowPowerLawRef(b *testing.B) {
	benchFold(b, 0.3, func(d []matrix.Dist, r benchRow) int64 { return FoldRowRef(d, r.src, 7) })
}

func BenchmarkFoldRowPowerLaw(b *testing.B) {
	benchFold(b, 0.3, func(d []matrix.Dist, r benchRow) int64 { return FoldRow(d, r.src, 7) })
}

func BenchmarkFoldRowSparseRef(b *testing.B) {
	benchFold(b, 0.02, func(d []matrix.Dist, r benchRow) int64 { return FoldRowRef(d, r.src, 7) })
}

func BenchmarkFoldRowSparseIndexed(b *testing.B) {
	benchFold(b, 0.02, func(d []matrix.Dist, r benchRow) int64 { return FoldRowIndexed(d, r.src, 7, r.idx) })
}

func benchRelaxSetup() (row []matrix.Dist, adj []int32, w []matrix.Dist) {
	rng := rand.New(rand.NewSource(43))
	row = make([]matrix.Dist, benchRowLen)
	for i := range row {
		row[i] = matrix.Dist(1 + rng.Intn(4))
	}
	adj = make([]int32, 256)
	w = make([]matrix.Dist, len(adj))
	for i := range adj {
		adj[i] = int32(rng.Intn(benchRowLen))
		w[i] = 1 + matrix.Dist(rng.Intn(16))
	}
	return row, adj, w
}

func BenchmarkRelaxUnweighted(b *testing.B) {
	row, adj, _ := benchRelaxSetup()
	var imp []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		imp = RelaxUnweighted(row, adj, 2, imp[:0])
	}
	_ = imp
}

func BenchmarkRelaxWeighted(b *testing.B) {
	row, adj, w := benchRelaxSetup()
	var imp []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		imp = RelaxWeighted(row, adj, w, 2, imp[:0])
	}
	_ = imp
}
