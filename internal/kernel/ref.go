package kernel

import "parapsp/internal/matrix"

// Scalar reference implementations: the loops exactly as the seed solver
// wrote them (Inf-skip branch, matrix.AddSat per element). They exist so
// the differential and fuzz tests can assert the blocked kernels are
// observationally identical, and so the microbenchmarks can report the
// kernel speedup against the code they replaced. They must stay
// straightforward — do not optimize them.

// FoldRowRef is the scalar reference for FoldRow.
func FoldRowRef(dst, src []matrix.Dist, base matrix.Dist) int64 {
	dst = dst[:len(src)]
	var upd int64
	for j, v := range src {
		if v == matrix.Inf {
			continue
		}
		if nd := matrix.AddSat(base, v); nd < dst[j] {
			dst[j] = nd
			upd++
		}
	}
	return upd
}

// FoldRowIndexedRef is the scalar reference for FoldRowIndexed.
func FoldRowIndexedRef(dst, src []matrix.Dist, base matrix.Dist, idx []int32) int64 {
	var upd int64
	for _, j := range idx {
		if src[j] == matrix.Inf {
			continue
		}
		if nd := matrix.AddSat(base, src[j]); nd < dst[j] {
			dst[j] = nd
			upd++
		}
	}
	return upd
}

// RelaxUnweightedRef is the scalar reference for RelaxUnweighted.
func RelaxUnweightedRef(row []matrix.Dist, adj []int32, nd matrix.Dist, improved []int32) []int32 {
	for _, v := range adj {
		if nd < row[v] {
			row[v] = nd
			improved = append(improved, v)
		}
	}
	return improved
}

// RelaxWeightedRef is the scalar reference for RelaxWeighted.
func RelaxWeightedRef(row []matrix.Dist, adj []int32, w []matrix.Dist, base matrix.Dist, improved []int32) []int32 {
	for i, v := range adj {
		if nd := matrix.AddSat(base, w[i]); nd < row[v] {
			row[v] = nd
			improved = append(improved, v)
		}
	}
	return improved
}

// OrLanesRef is the scalar reference for OrLanes.
func OrLanesRef(next []uint64, adj []int32, lanes uint64) {
	for _, u := range adj {
		next[u] = next[u] | lanes
	}
}

// AndnNewBitsRef is the scalar reference for AndnNewBits: the per-word
// loop with an early boolean instead of the blocked accumulator.
func AndnNewBitsRef(next, seen []uint64) bool {
	any := false
	for i := range next {
		nw := next[i] &^ seen[i]
		next[i] = nw
		seen[i] |= nw
		if nw != 0 {
			any = true
		}
	}
	return any
}

// ScatterLevelRef is the scalar reference for ScatterLevel: a plain
// bit-test loop over all 64 lanes of every word.
func ScatterLevelRef(newBits []uint64, rows [][]matrix.Dist, level matrix.Dist) int64 {
	var wrote int64
	for v, w := range newBits {
		for b := 0; b < 64; b++ {
			if w&(1<<b) != 0 {
				rows[b][v] = level
				wrote++
			}
		}
	}
	return wrote
}

// RelaxLanesRef is the scalar reference for RelaxLanes: the bit-test loop
// with matrix.AddSat per lane.
func RelaxLanesRef(du, dv []matrix.Dist, w matrix.Dist, lanes uint64) uint64 {
	var out uint64
	for b := 0; b < 64; b++ {
		if lanes&(1<<b) == 0 {
			continue
		}
		if nd := matrix.AddSat(dv[b], w); nd < du[b] {
			du[b] = nd
			out |= 1 << b
		}
	}
	return out
}
