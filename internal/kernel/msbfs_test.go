package kernel

import (
	"math/rand"
	"testing"

	"parapsp/internal/matrix"
)

// randWords fills n lane words, density controlling the per-bit set
// probability so tests cover empty, sparse and saturated words.
func randWords(rng *rand.Rand, n int, density float64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		var w uint64
		for b := 0; b < 64; b++ {
			if rng.Float64() < density {
				w |= 1 << b
			}
		}
		out[i] = w
	}
	return out
}

func TestOrLanesMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		adjLen := rng.Intn(100)
		adj := make([]int32, adjLen)
		for i := range adj {
			adj[i] = int32(rng.Intn(n)) // duplicates on purpose: OR is idempotent
		}
		lanes := rng.Uint64()
		next := randWords(rng, n, 0.1)
		want := append([]uint64(nil), next...)
		OrLanesRef(want, adj, lanes)
		OrLanes(next, adj, lanes)
		for i := range want {
			if next[i] != want[i] {
				t.Fatalf("trial %d: next[%d] = %x, ref %x", trial, i, next[i], want[i])
			}
		}
	}
}

func TestAndnNewBitsMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		// Lengths around the block width exercise the tail loop.
		n := rng.Intn(40)
		for _, density := range []float64{0, 0.02, 0.5, 1} {
			next := randWords(rng, n, density)
			seen := randWords(rng, n, density)
			wantNext := append([]uint64(nil), next...)
			wantSeen := append([]uint64(nil), seen...)
			wantAny := AndnNewBitsRef(wantNext, wantSeen)
			gotAny := AndnNewBits(next, seen)
			if gotAny != wantAny {
				t.Fatalf("n=%d density=%g: any = %v, ref %v", n, density, gotAny, wantAny)
			}
			for i := 0; i < n; i++ {
				if next[i] != wantNext[i] || seen[i] != wantSeen[i] {
					t.Fatalf("n=%d: word %d diverged (next %x/%x seen %x/%x)",
						n, i, next[i], wantNext[i], seen[i], wantSeen[i])
				}
			}
		}
	}
}

func TestAndnNewBitsInvariants(t *testing.T) {
	// After the call: next ∩ old-seen == ∅ and next ⊆ new-seen.
	rng := rand.New(rand.NewSource(3))
	next := randWords(rng, 64, 0.3)
	seen := randWords(rng, 64, 0.3)
	oldSeen := append([]uint64(nil), seen...)
	AndnNewBits(next, seen)
	for i := range next {
		if next[i]&oldSeen[i] != 0 {
			t.Fatalf("word %d: new bits %x overlap old seen %x", i, next[i], oldSeen[i])
		}
		if next[i]&^seen[i] != 0 {
			t.Fatalf("word %d: new bits %x not marked seen %x", i, next[i], seen[i])
		}
		if oldSeen[i]&^seen[i] != 0 {
			t.Fatalf("word %d: seen lost bits", i)
		}
	}
}

func newLaneRows(n int) [][]matrix.Dist {
	rows := make([][]matrix.Dist, 64)
	for b := range rows {
		rows[b] = make([]matrix.Dist, n)
		for v := range rows[b] {
			rows[b][v] = matrix.Inf
		}
	}
	return rows
}

func TestScatterLevelMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(50)
		newBits := randWords(rng, n, 0.2)
		level := matrix.Dist(1 + rng.Intn(1000))
		want := newLaneRows(n)
		got := newLaneRows(n)
		wantWrote := ScatterLevelRef(newBits, want, level)
		gotWrote := ScatterLevel(newBits, got, level)
		if gotWrote != wantWrote {
			t.Fatalf("trial %d: wrote %d, ref %d", trial, gotWrote, wantWrote)
		}
		for b := range want {
			for v := range want[b] {
				if got[b][v] != want[b][v] {
					t.Fatalf("trial %d: rows[%d][%d] = %d, ref %d", trial, b, v, got[b][v], want[b][v])
				}
			}
		}
	}
}

func TestRelaxLanesMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	hazard := []matrix.Dist{0, 1, 7, matrix.MaxFinite - 1, matrix.MaxFinite, matrix.Inf}
	draw := func() matrix.Dist {
		if rng.Intn(3) == 0 {
			return hazard[rng.Intn(len(hazard))]
		}
		return matrix.Dist(rng.Intn(1 << 20))
	}
	for trial := 0; trial < 200; trial++ {
		du := make([]matrix.Dist, 64)
		dv := make([]matrix.Dist, 64)
		for i := range du {
			du[i], dv[i] = draw(), draw()
		}
		w := matrix.Dist(1 + rng.Intn(1<<16))
		if rng.Intn(8) == 0 {
			w = matrix.MaxFinite // saturation boundary
		}
		lanes := rng.Uint64()
		wantDu := append([]matrix.Dist(nil), du...)
		wantOut := RelaxLanesRef(wantDu, dv, w, lanes)
		gotOut := RelaxLanes(du, dv, w, lanes)
		if gotOut != wantOut {
			t.Fatalf("trial %d: out = %x, ref %x (w=%d lanes=%x)", trial, gotOut, wantOut, w, lanes)
		}
		for i := range du {
			if du[i] != wantDu[i] {
				t.Fatalf("trial %d: du[%d] = %d, ref %d", trial, i, du[i], wantDu[i])
			}
		}
	}
}

func TestRelaxLanesUntouchedLanes(t *testing.T) {
	du := make([]matrix.Dist, 64)
	dv := make([]matrix.Dist, 64)
	for i := range du {
		du[i] = matrix.Inf
		dv[i] = 1
	}
	out := RelaxLanes(du, dv, 1, 0b101)
	if out != 0b101 {
		t.Fatalf("out = %b, want 101", out)
	}
	for i := range du {
		switch i {
		case 0, 2:
			if du[i] != 2 {
				t.Fatalf("du[%d] = %d, want 2", i, du[i])
			}
		default:
			if du[i] != matrix.Inf {
				t.Fatalf("du[%d] = %d, want Inf (lane not selected)", i, du[i])
			}
		}
	}
}
