package kernel

import (
	"encoding/binary"
	"testing"

	"parapsp/internal/matrix"
)

// FuzzFoldRow asserts FoldRow == FoldRowRef on arbitrary rows decoded
// from the fuzzer's byte stream. The decoder biases entries toward the
// values where the branchless saturating add could diverge from
// matrix.AddSat: Inf, MaxFinite, and sums that land exactly on or just
// past Inf.
func FuzzFoldRow(f *testing.F) {
	// Seeds: all-Inf, all-finite, saturation-boundary mixes.
	f.Add([]byte{}, uint32(0))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, uint32(1))
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0}, uint32(1<<31))
	f.Add([]byte{0xFE, 0xFF, 0xFF, 0xFF, 0x00, 0x00, 0x00, 0x00}, uint32(0xFFFFFFFE))
	f.Fuzz(func(t *testing.T, data []byte, base32 uint32) {
		base := matrix.Dist(base32)
		n := len(data) / 8
		src := make([]matrix.Dist, n)
		dst := make([]matrix.Dist, n)
		for i := 0; i < n; i++ {
			src[i] = decodeDist(binary.LittleEndian.Uint32(data[i*8:]))
			dst[i] = decodeDist(binary.LittleEndian.Uint32(data[i*8+4:]))
		}

		want := append([]matrix.Dist(nil), dst...)
		wantUpd := FoldRowRef(want, src, base)

		got := append([]matrix.Dist(nil), dst...)
		if upd := FoldRow(got, src, base); upd != wantUpd {
			t.Fatalf("FoldRow updates = %d, ref = %d (base=%d src=%v)", upd, wantUpd, base, src)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("FoldRow dst[%d] = %d, ref = %d (base=%d src=%d)", i, got[i], want[i], base, src[i])
			}
		}

		// The indexed kernel over the finite positions must agree too.
		idx := finiteIndex(src)
		got = append(got[:0], dst...)
		if upd := FoldRowIndexed(got, src, base, idx); upd != wantUpd {
			t.Fatalf("FoldRowIndexed updates = %d, ref = %d", upd, wantUpd)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("FoldRowIndexed dst[%d] = %d, ref = %d", i, got[i], want[i])
			}
		}
	})
}

// decodeDist maps a raw fuzz word onto the distance domain with the
// hazardous values over-represented: one in four words becomes Inf, one
// in eight a near-MaxFinite saturation-boundary value.
func decodeDist(raw uint32) matrix.Dist {
	switch raw % 8 {
	case 0, 4:
		return matrix.Inf
	case 1:
		return matrix.MaxFinite - matrix.Dist(raw%16)
	default:
		return matrix.Dist(raw / 8)
	}
}
