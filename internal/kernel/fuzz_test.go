package kernel

import (
	"encoding/binary"
	"testing"

	"parapsp/internal/matrix"
)

// FuzzFoldRow asserts FoldRow == FoldRowRef on arbitrary rows decoded
// from the fuzzer's byte stream. The decoder biases entries toward the
// values where the branchless saturating add could diverge from
// matrix.AddSat: Inf, MaxFinite, and sums that land exactly on or just
// past Inf.
func FuzzFoldRow(f *testing.F) {
	// Seeds: all-Inf, all-finite, saturation-boundary mixes.
	f.Add([]byte{}, uint32(0))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, uint32(1))
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0}, uint32(1<<31))
	f.Add([]byte{0xFE, 0xFF, 0xFF, 0xFF, 0x00, 0x00, 0x00, 0x00}, uint32(0xFFFFFFFE))
	f.Fuzz(func(t *testing.T, data []byte, base32 uint32) {
		base := matrix.Dist(base32)
		n := len(data) / 8
		src := make([]matrix.Dist, n)
		dst := make([]matrix.Dist, n)
		for i := 0; i < n; i++ {
			src[i] = decodeDist(binary.LittleEndian.Uint32(data[i*8:]))
			dst[i] = decodeDist(binary.LittleEndian.Uint32(data[i*8+4:]))
		}

		want := append([]matrix.Dist(nil), dst...)
		wantUpd := FoldRowRef(want, src, base)

		got := append([]matrix.Dist(nil), dst...)
		if upd := FoldRow(got, src, base); upd != wantUpd {
			t.Fatalf("FoldRow updates = %d, ref = %d (base=%d src=%v)", upd, wantUpd, base, src)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("FoldRow dst[%d] = %d, ref = %d (base=%d src=%d)", i, got[i], want[i], base, src[i])
			}
		}

		// The indexed kernel over the finite positions must agree too.
		idx := finiteIndex(src)
		got = append(got[:0], dst...)
		if upd := FoldRowIndexed(got, src, base, idx); upd != wantUpd {
			t.Fatalf("FoldRowIndexed updates = %d, ref = %d", upd, wantUpd)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("FoldRowIndexed dst[%d] = %d, ref = %d", i, got[i], want[i])
			}
		}
	})
}

// decodeDist maps a raw fuzz word onto the distance domain with the
// hazardous values over-represented: one in four words becomes Inf, one
// in eight a near-MaxFinite saturation-boundary value.
func decodeDist(raw uint32) matrix.Dist {
	switch raw % 8 {
	case 0, 4:
		return matrix.Inf
	case 1:
		return matrix.MaxFinite - matrix.Dist(raw%16)
	default:
		return matrix.Dist(raw / 8)
	}
}

// FuzzAndnNewBits asserts AndnNewBits == AndnNewBitsRef on arbitrary
// next/seen word pairs decoded from the fuzzer's byte stream, covering
// the blocked body and the tail loop at every length.
func FuzzAndnNewBits(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0, 0, 0, 0, 0, 0, 0})
	f.Add(make([]byte, 16*17)) // 17 word pairs: one past two blocks
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 16
		next := make([]uint64, n)
		seen := make([]uint64, n)
		for i := 0; i < n; i++ {
			next[i] = binary.LittleEndian.Uint64(data[i*16:])
			seen[i] = binary.LittleEndian.Uint64(data[i*16+8:])
		}
		wantNext := append([]uint64(nil), next...)
		wantSeen := append([]uint64(nil), seen...)
		wantAny := AndnNewBitsRef(wantNext, wantSeen)
		if gotAny := AndnNewBits(next, seen); gotAny != wantAny {
			t.Fatalf("any = %v, ref %v", gotAny, wantAny)
		}
		for i := 0; i < n; i++ {
			if next[i] != wantNext[i] || seen[i] != wantSeen[i] {
				t.Fatalf("word %d diverged: next %x/%x seen %x/%x",
					i, next[i], wantNext[i], seen[i], wantSeen[i])
			}
		}
	})
}

// FuzzRelaxLanes asserts RelaxLanes == RelaxLanesRef on arbitrary
// lane-major blocks, with the decoder biasing distances toward the
// saturation boundary where the branchless add could diverge.
func FuzzRelaxLanes(f *testing.F) {
	f.Add([]byte{}, uint32(1), uint64(0))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 0, 0, 0}, uint32(1), ^uint64(0))
	f.Add(make([]byte, 8*64), uint32(0xFFFFFFFE), uint64(0xAAAAAAAAAAAAAAAA))
	f.Fuzz(func(t *testing.T, data []byte, w32 uint32, lanes uint64) {
		du := make([]matrix.Dist, 64)
		dv := make([]matrix.Dist, 64)
		for i := 0; i < 64; i++ {
			if i*8+8 <= len(data) {
				du[i] = decodeDist(binary.LittleEndian.Uint32(data[i*8:]))
				dv[i] = decodeDist(binary.LittleEndian.Uint32(data[i*8+4:]))
			} else {
				du[i] = matrix.Inf
				dv[i] = matrix.Dist(i)
			}
		}
		w := decodeDist(w32)
		if w == 0 {
			w = 1 // graph weights are positive
		}
		wantDu := append([]matrix.Dist(nil), du...)
		wantOut := RelaxLanesRef(wantDu, dv, w, lanes)
		if gotOut := RelaxLanes(du, dv, w, lanes); gotOut != wantOut {
			t.Fatalf("out = %x, ref %x (w=%d lanes=%x)", gotOut, wantOut, w, lanes)
		}
		for i := range du {
			if du[i] != wantDu[i] {
				t.Fatalf("du[%d] = %d, ref %d", i, du[i], wantDu[i])
			}
		}
	})
}
