package kernel

import (
	"math/rand"
	"testing"

	"parapsp/internal/matrix"
)

// randRow builds a length-n row where each entry is finite with
// probability density; finite values are drawn from the interesting
// range, including saturation-boundary values near Inf.
func randRow(rng *rand.Rand, n int, density float64) []matrix.Dist {
	row := make([]matrix.Dist, n)
	for i := range row {
		if rng.Float64() >= density {
			row[i] = matrix.Inf
			continue
		}
		switch rng.Intn(8) {
		case 0:
			row[i] = 0
		case 1:
			row[i] = matrix.MaxFinite
		case 2:
			row[i] = matrix.MaxFinite - matrix.Dist(rng.Intn(16))
		default:
			row[i] = matrix.Dist(rng.Intn(1 << 20))
		}
	}
	return row
}

func randBase(rng *rand.Rand) matrix.Dist {
	switch rng.Intn(6) {
	case 0:
		return 0
	case 1:
		return matrix.Inf
	case 2:
		return matrix.MaxFinite
	case 3:
		return matrix.MaxFinite - matrix.Dist(rng.Intn(16))
	default:
		return matrix.Dist(rng.Intn(1 << 20))
	}
}

func finiteIndex(src []matrix.Dist) []int32 {
	var idx []int32
	for j, v := range src {
		if v != matrix.Inf {
			idx = append(idx, int32(j))
		}
	}
	return idx
}

func distsEqual(t *testing.T, what string, got, want []matrix.Dist) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: entry %d = %d, want %d", what, i, got[i], want[i])
		}
	}
}

// TestFoldRowMatchesRef is the core differential test: FoldRow and
// FoldRowIndexed must produce exactly the dst contents and update count
// of the scalar reference, across sizes straddling the block width,
// densities from all-Inf to all-finite, and saturating bases.
func TestFoldRowMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sizes := []int{0, 1, 7, 8, 9, 15, 16, 17, 64, 100, 257}
	densities := []float64{0, 0.02, 0.3, 0.7, 1}
	for _, n := range sizes {
		for _, density := range densities {
			for trial := 0; trial < 20; trial++ {
				src := randRow(rng, n, density)
				dst := randRow(rng, n, 0.5)
				base := randBase(rng)
				want := append([]matrix.Dist(nil), dst...)
				wantUpd := FoldRowRef(want, src, base)

				got := append([]matrix.Dist(nil), dst...)
				if upd := FoldRow(got, src, base); upd != wantUpd {
					t.Fatalf("n=%d density=%g base=%d: FoldRow updates = %d, ref = %d", n, density, base, upd, wantUpd)
				}
				distsEqual(t, "FoldRow", got, want)

				idx := finiteIndex(src)
				got = append(got[:0], dst...)
				if upd := FoldRowIndexed(got, src, base, idx); upd != wantUpd {
					t.Fatalf("n=%d density=%g base=%d: FoldRowIndexed updates = %d, ref = %d", n, density, base, upd, wantUpd)
				}
				distsEqual(t, "FoldRowIndexed", got, want)
			}
		}
	}
}

// TestFoldRowNoSatMatchesRef checks the dense fast path against the
// scalar reference under its documented precondition: fully finite src
// and base + max(src) <= Inf (a sum landing exactly on Inf included).
func TestFoldRowNoSatMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 7, 8, 9, 16, 17, 100, 257} {
		for trial := 0; trial < 40; trial++ {
			src := make([]matrix.Dist, n)
			var max matrix.Dist
			for i := range src {
				src[i] = matrix.Dist(rng.Intn(1 << 24))
				if src[i] > max {
					max = src[i]
				}
			}
			// Base anywhere up to the no-overflow bound, boundary included.
			base := matrix.Inf - max
			if rng.Intn(2) == 0 {
				base = matrix.Dist(rng.Intn(1 << 24))
			}
			dst := randRow(rng, n, 0.5)
			want := append([]matrix.Dist(nil), dst...)
			wantUpd := FoldRowRef(want, src, base)
			got := append([]matrix.Dist(nil), dst...)
			if upd := FoldRowNoSat(got, src, base); upd != wantUpd {
				t.Fatalf("n=%d base=%d: FoldRowNoSat updates = %d, ref = %d", n, base, upd, wantUpd)
			}
			distsEqual(t, "FoldRowNoSat", got, want)
		}
	}
}

// TestFoldRowSpanEquivalence checks the span-restricted call pattern the
// solver uses: folding only [lo,hi) subslices is identical to a full fold
// when everything outside the span is Inf.
func TestFoldRowSpanEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(120)
		src := make([]matrix.Dist, n)
		for i := range src {
			src[i] = matrix.Inf
		}
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo)
		for i := lo; i < hi; i++ {
			if rng.Intn(3) > 0 {
				src[i] = matrix.Dist(rng.Intn(1000))
			}
		}
		dst := randRow(rng, n, 0.6)
		base := matrix.Dist(rng.Intn(1000))

		want := append([]matrix.Dist(nil), dst...)
		wantUpd := FoldRowRef(want, src, base)
		got := append([]matrix.Dist(nil), dst...)
		if upd := FoldRow(got[lo:hi], src[lo:hi], base); upd != wantUpd {
			t.Fatalf("span fold updates = %d, full ref = %d", upd, wantUpd)
		}
		distsEqual(t, "span fold", got, want)
	}
}

func TestFoldRowSaturation(t *testing.T) {
	// A finite base plus a large finite entry must clamp to Inf, never
	// wrap to a spuriously short distance.
	src := []matrix.Dist{matrix.MaxFinite, matrix.MaxFinite - 1, 5, matrix.Inf}
	dst := []matrix.Dist{matrix.Inf, matrix.Inf, matrix.Inf, matrix.Inf}
	upd := FoldRow(dst, src, 10)
	if dst[0] != matrix.Inf || dst[1] != matrix.Inf {
		t.Errorf("saturating sums = %d, %d, want Inf", dst[0], dst[1])
	}
	if dst[2] != 15 {
		t.Errorf("finite sum = %d, want 15", dst[2])
	}
	if dst[3] != matrix.Inf {
		t.Errorf("Inf entry folded to %d", dst[3])
	}
	if upd != 1 {
		t.Errorf("updates = %d, want 1", upd)
	}
	// Sum landing exactly on Inf clamps too (Inf is a sentinel, not a
	// representable distance).
	dst2 := []matrix.Dist{matrix.Inf - 1}
	if FoldRow(dst2, []matrix.Dist{matrix.MaxFinite}, 1) != 0 || dst2[0] != matrix.Inf-1 {
		t.Errorf("exact-Inf sum improved dst: %d", dst2[0])
	}
}

func TestFoldRowInfBase(t *testing.T) {
	src := []matrix.Dist{0, 1, 2}
	dst := []matrix.Dist{9, 9, 9}
	if upd := FoldRow(dst, src, matrix.Inf); upd != 0 {
		t.Errorf("Inf base made %d updates", upd)
	}
	distsEqual(t, "Inf base", dst, []matrix.Dist{9, 9, 9})
}

func TestFoldRowShorterSrc(t *testing.T) {
	// len(src) < len(dst): only the prefix is folded.
	dst := []matrix.Dist{10, 10, 10}
	if upd := FoldRow(dst, []matrix.Dist{1}, 2); upd != 1 {
		t.Errorf("updates = %d", upd)
	}
	distsEqual(t, "short src", dst, []matrix.Dist{3, 10, 10})
}

func TestRelaxMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(60)
		deg := rng.Intn(2 * n)
		adj := make([]int32, deg)
		for i := range adj {
			adj[i] = int32(rng.Intn(n))
		}
		w := make([]matrix.Dist, deg)
		for i := range w {
			w[i] = 1 + matrix.Dist(rng.Intn(100))
		}
		row := randRow(rng, n, 0.7)
		base := randBase(rng)

		wantRow := append([]matrix.Dist(nil), row...)
		wantImp := RelaxWeightedRef(wantRow, adj, w, base, nil)
		gotRow := append([]matrix.Dist(nil), row...)
		gotImp := RelaxWeighted(gotRow, adj, w, base, nil)
		distsEqual(t, "RelaxWeighted row", gotRow, wantRow)
		if len(gotImp) != len(wantImp) {
			t.Fatalf("RelaxWeighted improved %d, ref %d", len(gotImp), len(wantImp))
		}
		for i := range wantImp {
			if gotImp[i] != wantImp[i] {
				t.Fatalf("RelaxWeighted improved[%d] = %d, ref %d", i, gotImp[i], wantImp[i])
			}
		}

		nd := matrix.AddSat(base, 1)
		wantRow = append(wantRow[:0], row...)
		wantImp = RelaxUnweightedRef(wantRow, adj, nd, wantImp[:0])
		gotRow = append(gotRow[:0], row...)
		gotImp = RelaxUnweighted(gotRow, adj, nd, gotImp[:0])
		distsEqual(t, "RelaxUnweighted row", gotRow, wantRow)
		if len(gotImp) != len(wantImp) {
			t.Fatalf("RelaxUnweighted improved %d, ref %d", len(gotImp), len(wantImp))
		}
	}
}

func TestRelaxParallelEdgeDuplicates(t *testing.T) {
	// Two parallel edges to the same vertex, each improving: the vertex
	// appears once per improvement, exactly like the scalar loop.
	row := []matrix.Dist{0, 100}
	imp := RelaxWeighted(row, []int32{1, 1}, []matrix.Dist{50, 20}, 0, nil)
	if len(imp) != 2 || imp[0] != 1 || imp[1] != 1 {
		t.Errorf("improved = %v, want [1 1]", imp)
	}
	if row[1] != 20 {
		t.Errorf("row[1] = %d, want 20", row[1])
	}
}
