package kernel

import (
	"math/bits"

	"parapsp/internal/matrix"
)

// Word-parallel multi-source traversal primitives: the inner loops of the
// batch solvers in internal/core, which pack up to 64 concurrent searches
// into one uint64 lane word per vertex (bit b of word v = "search b has
// reached v"). One CSR adjacency sweep then advances all packed searches
// at once — the MS-BFS idea of Then et al. (VLDB 2014) — turning the
// per-source edge scan, the memory-bandwidth bound of batched APSP on
// unweighted power-law graphs, into a per-batch edge scan.
//
// Like the min-plus kernels in kernel.go, every primitive here is
// observationally identical to a scalar reference in ref.go, enforced by
// the differential and fuzz tests of this package.

// OrLanes ORs the lane word into next[u] for every u in adj: one vertex
// expansion of the level-synchronous sweep, advancing every packed search
// that is visiting the expanded vertex. Every target must be in range for
// next. lanes == 0 is a no-op (the caller skips those vertices anyway).
func OrLanes(next []uint64, adj []int32, lanes uint64) {
	for _, u := range adj {
		next[u] |= lanes
	}
}

// AndnNewBits finishes one BFS level: for every vertex word it strips the
// lanes that already saw the vertex (next &^= seen), marks the survivors
// as seen (seen |= next), and reports whether any lane discovered any new
// vertex — the level loop's termination test. len(seen) must be at least
// len(next). The blocked form proves the bounds once per 8-word chunk and
// keeps the any-accumulator branchless inside the block.
func AndnNewBits(next, seen []uint64) bool {
	seen = seen[:len(next)]
	var any uint64
	i := 0
	for ; i+blockWidth <= len(next); i += blockWidth {
		nx := (*[blockWidth]uint64)(next[i:])
		sn := (*[blockWidth]uint64)(seen[i:])
		for j := 0; j < blockWidth; j++ {
			nw := nx[j] &^ sn[j]
			nx[j] = nw
			sn[j] |= nw
			any |= nw
		}
	}
	for ; i < len(next); i++ {
		nw := next[i] &^ seen[i]
		next[i] = nw
		seen[i] |= nw
		any |= nw
	}
	return any != 0
}

// ScatterLevel scatters one finished BFS level into the per-source
// distance rows: for every set bit b of newBits[v], rows[b][v] = level.
// rows[b] must be at least len(newBits) long for every bit that can
// appear. It returns the number of entries written (the level's frontier
// size summed over lanes). Iterating set bits with TrailingZeros64 makes
// the cost proportional to discoveries, not to 64*len(newBits).
func ScatterLevel(newBits []uint64, rows [][]matrix.Dist, level matrix.Dist) int64 {
	var wrote int64
	for v, w := range newBits {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			rows[b][v] = level
			wrote++
		}
	}
	return wrote
}

// RelaxLanes relaxes one weighted arc for every search lane set in lanes:
// for each set bit b it computes nd = sat(dv[b] + w) and improves du[b]
// when nd is smaller, returning the lane set that improved (the bits the
// caller must re-activate on the target vertex). dv and du are the
// lane-major distance blocks of the arc's source and target vertex; both
// must be at least 64 wide in the lanes that can appear. The saturating
// add keeps Inf absorbing exactly as matrix.AddSat does.
func RelaxLanes(du, dv []matrix.Dist, w matrix.Dist, lanes uint64) uint64 {
	var out uint64
	for lanes != 0 {
		b := bits.TrailingZeros64(lanes)
		lanes &= lanes - 1
		if nd := addSat(dv[b], w); nd < du[b] {
			du[b] = nd
			out |= 1 << b
		}
	}
	return out
}
