// Package kernel holds the tight min-plus inner loops of the APSP hot
// path: the row fold D[s,v] <- min(D[s,v], D[s,t]+D[t,v]) of Algorithm 1
// and the edge-relaxation sweep. Profiling shows ParAPSP spends most of
// its time in these two loops on power-law graphs, so they are written
// the way the Go compiler optimizes best:
//
//   - fixed-width blocks via slice-to-array-pointer conversions, which
//     prove lengths to the compiler and eliminate per-element bounds
//     checks (the same pattern as internal/matrix's blocked helpers);
//   - a branchless saturating add (wrap-detect + conditional move)
//     instead of the Inf-skip branch, which mispredicts badly on rows
//     with scattered Inf holes;
//   - a sparse gather variant driven by the per-row finite-index summary
//     internal/matrix maintains, so folding a mostly-Inf row touches only
//     its finite entries.
//
// Every kernel is observationally identical to its scalar reference in
// ref.go; the differential and fuzz tests in this package, plus the
// checksum-equality cross-validation of all six algorithms, enforce that
// the paper-fidelity contract is untouched.
package kernel

import "parapsp/internal/matrix"

// blockWidth is the unroll width of the blocked kernels: eight 4-byte
// Dist entries, a 32-byte chunk.
const blockWidth = 8

// addSat is the branchless saturating add: base + v clamped to Inf.
// Correctness of the wrap test: if the 32-bit sum does not wrap it is
// >= v, so nd < v exactly when the true sum exceeded MaxUint32; the only
// unwrapped sum that must clamp is MaxUint32 == Inf itself, which already
// equals Inf. The compiler lowers the conditional to a CMOV, so the loop
// body has no data-dependent branch.
func addSat(base, v matrix.Dist) matrix.Dist {
	nd := base + v
	if nd < v {
		nd = matrix.Inf
	}
	return nd
}

// FoldRow performs dst[j] = min(dst[j], sat(base+src[j])) over all j and
// returns the number of entries it improved. len(dst) must be at least
// len(src); only the first len(src) entries are folded. dst and src must
// not partially overlap (exact aliasing is harmless; the APSP solvers
// always pass distinct rows).
//
// The store into dst stays conditional on purpose: in the hot path most
// folds improve only a few entries, and an unconditional min-store would
// dirty the whole destination row every fold.
func FoldRow(dst, src []matrix.Dist, base matrix.Dist) int64 {
	dst = dst[:len(src)]
	if base == matrix.Inf {
		return 0 // Inf + anything is Inf: nothing can improve
	}
	var upd int64
	i := 0
	for ; i+blockWidth <= len(src); i += blockWidth {
		s := (*[blockWidth]matrix.Dist)(src[i:])
		d := (*[blockWidth]matrix.Dist)(dst[i:])
		for j := 0; j < blockWidth; j++ {
			if nd := addSat(base, s[j]); nd < d[j] {
				d[j] = nd
				upd++
			}
		}
	}
	for ; i < len(src); i++ {
		if nd := addSat(base, src[i]); nd < dst[i] {
			dst[i] = nd
			upd++
		}
	}
	return upd
}

// FoldRowNoSat is FoldRow for the provably-unsaturated dense case: every
// entry of src must be finite and base + max(src) must not exceed Inf, so
// neither the Inf check nor the saturation clamp is needed. (A sum landing
// exactly on Inf is still correct: Inf < dst[j] never holds, so it is
// never stored.) The caller proves the precondition from the row summary —
// a completed row of a connected component is fully finite, and fold
// offsets are small — making this the common case on connected graphs.
// With both per-element conditions gone the loop is a pure add/compare
// sweep, faster than even the perfectly-predicted scalar loop.
func FoldRowNoSat(dst, src []matrix.Dist, base matrix.Dist) int64 {
	dst = dst[:len(src)]
	var upd int64
	i := 0
	for ; i+blockWidth <= len(src); i += blockWidth {
		s := (*[blockWidth]matrix.Dist)(src[i:])
		d := (*[blockWidth]matrix.Dist)(dst[i:])
		for j := 0; j < blockWidth; j++ {
			if nd := base + s[j]; nd < d[j] {
				d[j] = nd
				upd++
			}
		}
	}
	for ; i < len(src); i++ {
		if nd := base + src[i]; nd < dst[i] {
			dst[i] = nd
			upd++
		}
	}
	return upd
}

// FoldRowIndexed is FoldRow restricted to the positions in idx — the
// sparse variant for rows whose finite entries are few and scattered.
// Every index must be in range for both slices; positions outside idx are
// untouched, which is equivalent to FoldRow when src is Inf there.
func FoldRowIndexed(dst, src []matrix.Dist, base matrix.Dist, idx []int32) int64 {
	if base == matrix.Inf {
		return 0
	}
	var upd int64
	for _, j := range idx {
		if nd := addSat(base, src[j]); nd < dst[j] {
			dst[j] = nd
			upd++
		}
	}
	return upd
}

// RelaxUnweighted relaxes the unweighted edges t->adj[i] against row: a
// neighbor whose entry exceeds nd (the candidate distance through t) is
// improved and appended to improved. The queue-membership bookkeeping
// stays with the caller so this loop carries no bitmap traffic.
func RelaxUnweighted(row []matrix.Dist, adj []int32, nd matrix.Dist, improved []int32) []int32 {
	for _, v := range adj {
		if nd < row[v] {
			row[v] = nd
			improved = append(improved, v)
		}
	}
	return improved
}

// RelaxWeighted relaxes the weighted edges t->adj[i] with weights w
// against row, base being the distance to t. Improved neighbors are
// appended to improved; a neighbor improved through two parallel edges in
// the same call appears once per improvement, matching the scalar loop.
func RelaxWeighted(row []matrix.Dist, adj []int32, w []matrix.Dist, base matrix.Dist, improved []int32) []int32 {
	w = w[:len(adj)] // one bounds check up front instead of one per edge
	for i, v := range adj {
		if nd := addSat(base, w[i]); nd < row[v] {
			row[v] = nd
			improved = append(improved, v)
		}
	}
	return improved
}
