// Package gen provides deterministic random-graph generators for the
// families the paper's background and evaluation rely on: Erdős–Rényi
// random graphs and scale-free models (Barabási–Albert preferential
// attachment, the Albert–Barabási local-events model, R-MAT, and a
// power-law configuration model), plus Watts–Strogatz small-world graphs.
//
// The generators are the substitute for the paper's SNAP/KONECT datasets
// (see DESIGN.md): what the algorithms' behaviour depends on — the
// power-law degree distribution and the vertex/edge ratio — is reproduced
// synthetically, at any scale, with a fixed seed for repeatability.
package gen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// Weighting describes optional random edge weights. The zero value means
// an unweighted graph (every edge weight 1), which is the configuration of
// all the paper's experiments. With Min/Max set, each input edge receives
// an independent uniform weight in [Min, Max]; for undirected graphs both
// arc directions share the weight.
type Weighting struct {
	Min, Max matrix.Dist
}

// ErrParams reports invalid generator parameters.
var ErrParams = errors.New("gen: invalid parameters")

func (w Weighting) validate() error {
	if w.Min == 0 && w.Max == 0 {
		return nil
	}
	if w.Min == 0 || w.Max < w.Min || w.Max == matrix.Inf {
		return fmt.Errorf("%w: weighting [%d,%d]", ErrParams, w.Min, w.Max)
	}
	return nil
}

func (w Weighting) draw(rng *rand.Rand) matrix.Dist {
	if w.Min == 0 && w.Max == 0 {
		return 1
	}
	if w.Min == w.Max {
		return w.Min
	}
	return w.Min + matrix.Dist(rng.Int63n(int64(w.Max-w.Min+1)))
}

// buildEdges assembles a graph from raw endpoint pairs, drawing weights.
func buildEdges(n int, undirected bool, pairs [][2]int32, w Weighting, rng *rand.Rand) (*graph.Graph, error) {
	b := graph.NewBuilder(n, undirected)
	for _, p := range pairs {
		if err := b.AddWeighted(p[0], p[1], w.draw(rng)); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// ErdosRenyiGNM returns a uniform random graph with n vertices and m
// edge slots (Erdős–Rényi G(n,m)); duplicate draws and self-loops are
// merged/dropped by construction, so the final edge count can be slightly
// below m on dense parameters.
func ErdosRenyiGNM(n, m int, undirected bool, seed int64, w Weighting) (*graph.Graph, error) {
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("%w: n=%d m=%d", ErrParams, n, m)
	}
	if err := w.validate(); err != nil {
		return nil, err
	}
	if n < 2 {
		return graph.FromPairs(n, undirected, nil)
	}
	rng := rand.New(rand.NewSource(seed))
	pairs := make([][2]int32, 0, m)
	for i := 0; i < m; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n - 1))
		if v >= u {
			v++ // avoid self-loops without rejection sampling
		}
		pairs = append(pairs, [2]int32{u, v})
	}
	return buildEdges(n, undirected, pairs, w, rng)
}

// ErdosRenyiGNP returns a G(n,p) random graph using geometric skipping, so
// generation is O(n + m) rather than O(n^2).
func ErdosRenyiGNP(n int, p float64, undirected bool, seed int64, w Weighting) (*graph.Graph, error) {
	if n < 0 || p < 0 || p > 1 {
		return nil, fmt.Errorf("%w: n=%d p=%g", ErrParams, n, p)
	}
	if err := w.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var pairs [][2]int32
	if p > 0 {
		logq := math.Log(1 - p)
		emit := func(idx int64, decode func(int64) (int32, int32)) {
			u, v := decode(idx)
			pairs = append(pairs, [2]int32{u, v})
		}
		if undirected {
			total := int64(n) * int64(n-1) / 2
			skipScan(rng, total, p, logq, func(idx int64) {
				emit(idx, func(k int64) (int32, int32) {
					// Map k to the (u,v) pair with u < v in row-major order.
					u := int64(0)
					rowLen := int64(n - 1)
					for k >= rowLen {
						k -= rowLen
						u++
						rowLen--
					}
					return int32(u), int32(u + 1 + k)
				})
			})
		} else {
			total := int64(n) * int64(n-1)
			skipScan(rng, total, p, logq, func(idx int64) {
				emit(idx, func(k int64) (int32, int32) {
					u := k / int64(n-1)
					v := k % int64(n-1)
					if v >= u {
						v++
					}
					return int32(u), int32(v)
				})
			})
		}
	}
	return buildEdges(n, undirected, pairs, w, rng)
}

// skipScan visits each index in [0,total) independently with probability p
// by drawing geometric gaps.
func skipScan(rng *rand.Rand, total int64, p float64, logq float64, visit func(int64)) {
	if p >= 1 {
		for i := int64(0); i < total; i++ {
			visit(i)
		}
		return
	}
	idx := int64(-1)
	for {
		u := rng.Float64()
		gap := int64(math.Floor(math.Log(1-u)/logq)) + 1
		idx += gap
		if idx >= total {
			return
		}
		visit(idx)
	}
}

// BarabasiAlbert returns an undirected scale-free graph grown by
// preferential attachment (Barabási–Albert 1999): starting from a clique
// of m+1 vertices, each new vertex attaches m edges to existing vertices
// chosen proportionally to their current degree (repeated-endpoint list
// sampling). The result has ~n*m edges and a power-law degree tail — the
// distribution Figure 3 of the paper shows for WordNet.
func BarabasiAlbert(n, m int, seed int64, w Weighting) (*graph.Graph, error) {
	if n < 0 || m < 1 {
		return nil, fmt.Errorf("%w: n=%d m=%d", ErrParams, n, m)
	}
	if err := w.validate(); err != nil {
		return nil, err
	}
	if n <= m+1 {
		// Too small to grow: return a clique on n vertices.
		return clique(n, seed, w)
	}
	rng := rand.New(rand.NewSource(seed))
	// endpoints holds one entry per half-edge; sampling uniformly from it
	// is sampling vertices proportionally to degree.
	endpoints := make([]int32, 0, 2*n*m)
	var pairs [][2]int32
	for u := 0; u <= m; u++ {
		for v := 0; v < u; v++ {
			pairs = append(pairs, [2]int32{int32(u), int32(v)})
			endpoints = append(endpoints, int32(u), int32(v))
		}
	}
	// chosen is an order-preserving small set: iteration must follow
	// insertion order, not Go's randomized map order, or the endpoints
	// list (and with it every later preferential draw) would differ
	// between runs with the same seed.
	chosen := make([]int32, 0, m)
	for u := m + 1; u < n; u++ {
		chosen = chosen[:0]
		for len(chosen) < m {
			t := endpoints[rng.Intn(len(endpoints))]
			dup := false
			for _, c := range chosen {
				if c == t {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, t)
			}
		}
		for _, t := range chosen {
			pairs = append(pairs, [2]int32{int32(u), t})
			endpoints = append(endpoints, int32(u), t)
		}
	}
	return buildEdges(n, true, pairs, w, rng)
}

func clique(n int, seed int64, w Weighting) (*graph.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	var pairs [][2]int32
	for u := 0; u < n; u++ {
		for v := 0; v < u; v++ {
			pairs = append(pairs, [2]int32{int32(u), int32(v)})
		}
	}
	return buildEdges(n, true, pairs, w, rng)
}

// ABLocalEvents returns a graph grown by the Albert–Barabási local-events
// model (Albert & Barabási 2000, reference [2] of the paper): at each
// step, with probability pAdd m new edges are added between preferentially
// chosen endpoints, with probability qRewire m existing edges are rewired
// to preferential targets, and otherwise a new vertex joins with m
// preferential edges. Vertices are added until n is reached.
// Requires pAdd + qRewire < 1.
func ABLocalEvents(n, m int, pAdd, qRewire float64, seed int64, w Weighting) (*graph.Graph, error) {
	if n < 0 || m < 1 || pAdd < 0 || qRewire < 0 || pAdd+qRewire >= 1 {
		return nil, fmt.Errorf("%w: n=%d m=%d p=%g q=%g", ErrParams, n, m, pAdd, qRewire)
	}
	if err := w.validate(); err != nil {
		return nil, err
	}
	if n <= m+1 {
		return clique(n, seed, w)
	}
	rng := rand.New(rand.NewSource(seed))
	endpoints := make([]int32, 0, 4*n*m)
	var pairs [][2]int32
	addEdge := func(u, v int32) {
		pairs = append(pairs, [2]int32{u, v})
		endpoints = append(endpoints, u, v)
	}
	for u := 0; u <= m; u++ {
		for v := 0; v < u; v++ {
			addEdge(int32(u), int32(v))
		}
	}
	next := int32(m + 1)
	for next < int32(n) {
		r := rng.Float64()
		switch {
		case r < pAdd && len(endpoints) > 0:
			// Add m edges between a random vertex and preferential targets.
			for i := 0; i < m; i++ {
				u := int32(rng.Intn(int(next)))
				v := endpoints[rng.Intn(len(endpoints))]
				if u != v {
					addEdge(u, v)
				}
			}
		case r < pAdd+qRewire && len(pairs) > m:
			// Rewire m random edges to preferential targets.
			for i := 0; i < m; i++ {
				e := rng.Intn(len(pairs))
				v := endpoints[rng.Intn(len(endpoints))]
				if pairs[e][0] != v {
					pairs[e][1] = v
				}
			}
		default:
			// Grow: new vertex with m preferential edges.
			u := next
			next++
			seen := map[int32]bool{}
			for len(seen) < m {
				t := endpoints[rng.Intn(len(endpoints))]
				if t != u && !seen[t] {
					seen[t] = true
					addEdge(u, t)
				}
			}
		}
	}
	return buildEdges(n, true, pairs, w, rng)
}

// WattsStrogatz returns a small-world graph (Watts & Strogatz 1998,
// reference [18] of the paper): a ring lattice where each vertex connects
// to its k nearest neighbours (k even), with each edge rewired to a
// uniform random target with probability beta.
func WattsStrogatz(n, k int, beta float64, seed int64, w Weighting) (*graph.Graph, error) {
	if n < 0 || k < 0 || k%2 != 0 || k >= n && n > 0 || beta < 0 || beta > 1 {
		return nil, fmt.Errorf("%w: n=%d k=%d beta=%g", ErrParams, n, k, beta)
	}
	if err := w.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var pairs [][2]int32
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := int32((u + j) % n)
			if rng.Float64() < beta {
				// Rewire to a uniform non-self target.
				t := int32(rng.Intn(n - 1))
				if t >= int32(u) {
					t++
				}
				v = t
			}
			pairs = append(pairs, [2]int32{int32(u), v})
		}
	}
	return buildEdges(n, true, pairs, w, rng)
}

// RMAT returns a recursive-matrix (R-MAT) graph with 2^scale vertices and
// m directed edge draws, partition probabilities (a, b, c, d) summing to 1.
// R-MAT produces skewed in- and out-degree distributions and is the
// stand-in for the paper's *directed* datasets (ego-Twitter, sx-superuser).
func RMAT(scale uint, m int, a, b, c, d float64, undirected bool, seed int64, w Weighting) (*graph.Graph, error) {
	if scale > 30 || m < 0 || a < 0 || b < 0 || c < 0 || d < 0 {
		return nil, fmt.Errorf("%w: scale=%d m=%d", ErrParams, scale, m)
	}
	if s := a + b + c + d; math.Abs(s-1) > 1e-9 {
		return nil, fmt.Errorf("%w: partition probabilities sum to %g", ErrParams, s)
	}
	if err := w.validate(); err != nil {
		return nil, err
	}
	n := 1 << scale
	rng := rand.New(rand.NewSource(seed))
	pairs := make([][2]int32, 0, m)
	for i := 0; i < m; i++ {
		var u, v int32
		for bit := scale; bit > 0; bit-- {
			r := rng.Float64()
			half := int32(1) << (bit - 1)
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= half
			case r < a+b+c:
				u |= half
			default:
				u |= half
				v |= half
			}
		}
		if u != v {
			pairs = append(pairs, [2]int32{u, v})
		}
	}
	return buildEdges(n, undirected, pairs, w, rng)
}

// PowerLawConfiguration returns a graph whose degree sequence is drawn
// from a discrete power law with the given exponent gamma (> 1) and
// minimum degree, paired by the configuration model (uniform stub
// matching). Self-loops and multi-edges arising from the matching are
// dropped/merged, so realized degrees can dip slightly below the drawn
// sequence. This generator lets the dataset stand-ins match a measured
// degree exponent directly.
func PowerLawConfiguration(n int, gamma float64, minDeg int, undirected bool, seed int64, w Weighting) (*graph.Graph, error) {
	if n < 0 || gamma <= 1 || minDeg < 1 {
		return nil, fmt.Errorf("%w: n=%d gamma=%g minDeg=%d", ErrParams, n, gamma, minDeg)
	}
	if err := w.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	maxDeg := n - 1
	if maxDeg < minDeg {
		maxDeg = minDeg
	}
	stubs := make([]int32, 0, n*minDeg*2)
	for v := 0; v < n; v++ {
		// Inverse-CDF sampling of a bounded discrete power law.
		u := rng.Float64()
		deg := int(float64(minDeg) * math.Pow(1-u, -1/(gamma-1)))
		if deg > maxDeg {
			deg = maxDeg
		}
		for i := 0; i < deg; i++ {
			stubs = append(stubs, int32(v))
		}
	}
	if len(stubs)%2 == 1 {
		stubs = stubs[:len(stubs)-1]
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	pairs := make([][2]int32, 0, len(stubs)/2)
	for i := 0; i+1 < len(stubs); i += 2 {
		pairs = append(pairs, [2]int32{stubs[i], stubs[i+1]})
	}
	return buildEdges(n, undirected, pairs, w, rng)
}

// Grid2D returns a rows×cols lattice with 4-neighbor connectivity: the
// structured antithesis of the power-law generators. Grids have uniform
// degree and Θ(rows+cols) diameter, so BFS frontiers stay narrow for many
// levels — the adversarial regime for batched level-synchronous solvers,
// which is exactly why the batch benchmark measures them alongside
// power-law graphs. Vertex (r,c) is id r*cols+c.
func Grid2D(rows, cols int, undirected bool, seed int64, w Weighting) (*graph.Graph, error) {
	if rows < 0 || cols < 0 || (rows > 0 && cols > math.MaxInt32/rows) {
		return nil, fmt.Errorf("%w: grid %dx%d", ErrParams, rows, cols)
	}
	if err := w.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	pairs := make([][2]int32, 0, 2*rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := int32(r*cols + c)
			if c+1 < cols {
				pairs = append(pairs, [2]int32{v, v + 1})
			}
			if r+1 < rows {
				pairs = append(pairs, [2]int32{v, v + int32(cols)})
			}
		}
	}
	return buildEdges(rows*cols, undirected, pairs, w, rng)
}

// Relabel returns a copy of g with vertex ids renamed by a uniform random
// permutation. Growth models like preferential attachment put the oldest —
// and therefore highest-degree — vertices at the lowest ids, so an
// untreated BA graph is "accidentally presorted": the identity source
// order of the basic APSP algorithm would already approximate the degree
// order, hiding the very effect the paper's optimized ordering exists to
// produce. Real SNAP/KONECT ids carry no such correlation, and neither do
// relabeled stand-ins.
func Relabel(g *graph.Graph, seed int64) (*graph.Graph, error) {
	n := g.N()
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	b := graph.NewBuilder(n, g.Undirected())
	for u := int32(0); u < int32(n); u++ {
		adj, w := g.NeighborsW(u)
		for i, v := range adj {
			if g.Undirected() && v < u {
				continue // emit each undirected edge once
			}
			wt := matrix.Dist(1)
			if w != nil {
				wt = w[i]
			}
			if err := b.AddWeighted(int32(perm[u]), int32(perm[v]), wt); err != nil {
				return nil, err
			}
		}
	}
	return b.Build()
}
