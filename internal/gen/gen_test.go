package gen

import (
	"math"
	"testing"

	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

func checkValid(t *testing.T) func(*graph.Graph, error) *graph.Graph {
	return func(g *graph.Graph, err error) *graph.Graph {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		return g
	}
}

func TestErdosRenyiGNM(t *testing.T) {
	g := checkValid(t)(ErdosRenyiGNM(100, 300, true, 1, Weighting{}))
	if g.N() != 100 {
		t.Fatalf("N = %d", g.N())
	}
	// Some duplicates may merge, but the bulk must survive.
	if g.NumEdges() < 250 || g.NumEdges() > 300 {
		t.Errorf("edges = %d, want ~300", g.NumEdges())
	}
	if g.Weighted() {
		t.Error("unweighted request produced weighted graph")
	}
	// No self loops.
	for v := int32(0); v < int32(g.N()); v++ {
		for _, u := range g.Neighbors(v) {
			if u == v {
				t.Fatalf("self loop at %d", v)
			}
		}
	}
}

func TestErdosRenyiGNMDeterministic(t *testing.T) {
	a := checkValid(t)(ErdosRenyiGNM(50, 100, false, 42, Weighting{}))
	b := checkValid(t)(ErdosRenyiGNM(50, 100, false, 42, Weighting{}))
	if a.NumArcs() != b.NumArcs() {
		t.Fatal("same seed, different graphs")
	}
	for v := int32(0); v < 50; v++ {
		av, bv := a.Neighbors(v), b.Neighbors(v)
		for i := range av {
			if av[i] != bv[i] {
				t.Fatal("same seed, different adjacency")
			}
		}
	}
	c := checkValid(t)(ErdosRenyiGNM(50, 100, false, 43, Weighting{}))
	if a.NumArcs() == c.NumArcs() {
		// Edge counts could coincide; compare adjacency of vertex 0 too.
		same := len(a.Neighbors(0)) == len(c.Neighbors(0))
		if same {
			for i, v := range a.Neighbors(0) {
				if c.Neighbors(0)[i] != v {
					same = false
					break
				}
			}
		}
		if same && a.NumArcs() > 10 {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestErdosRenyiGNMErrors(t *testing.T) {
	if _, err := ErdosRenyiGNM(-1, 5, true, 1, Weighting{}); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := ErdosRenyiGNM(5, -1, true, 1, Weighting{}); err == nil {
		t.Error("negative m accepted")
	}
}

func TestErdosRenyiTinyGraphs(t *testing.T) {
	for _, n := range []int{0, 1} {
		g := checkValid(t)(ErdosRenyiGNM(n, 10, true, 1, Weighting{}))
		if g.N() != n || g.NumArcs() != 0 {
			t.Errorf("n=%d: N=%d arcs=%d", n, g.N(), g.NumArcs())
		}
	}
}

func TestErdosRenyiGNP(t *testing.T) {
	n, p := 200, 0.05
	g := checkValid(t)(ErdosRenyiGNP(n, p, true, 7, Weighting{}))
	expected := p * float64(n) * float64(n-1) / 2
	got := float64(g.NumEdges())
	if got < expected*0.6 || got > expected*1.4 {
		t.Errorf("edges = %g, expected ~%g", got, expected)
	}
	g0 := checkValid(t)(ErdosRenyiGNP(50, 0, false, 7, Weighting{}))
	if g0.NumArcs() != 0 {
		t.Errorf("p=0 arcs = %d", g0.NumArcs())
	}
	g1 := checkValid(t)(ErdosRenyiGNP(20, 1, false, 7, Weighting{}))
	if g1.NumArcs() != 20*19 {
		t.Errorf("p=1 directed arcs = %d, want %d", g1.NumArcs(), 20*19)
	}
	if _, err := ErdosRenyiGNP(10, 1.5, true, 1, Weighting{}); err == nil {
		t.Error("p>1 accepted")
	}
}

func TestErdosRenyiGNPUndirectedComplete(t *testing.T) {
	g := checkValid(t)(ErdosRenyiGNP(10, 1, true, 1, Weighting{}))
	if g.NumEdges() != 45 {
		t.Errorf("complete K10 edges = %d, want 45", g.NumEdges())
	}
}

func TestBarabasiAlbert(t *testing.T) {
	n, m := 500, 3
	g := checkValid(t)(BarabasiAlbert(n, m, 11, Weighting{}))
	if g.N() != n {
		t.Fatalf("N = %d", g.N())
	}
	if !g.Undirected() {
		t.Error("BA graph not undirected")
	}
	// Edge count: m(m+1)/2 seed clique + (n-m-1)*m growth, minus merges.
	want := int64(m*(m+1)/2 + (n-m-1)*m)
	if g.NumEdges() < want*9/10 || g.NumEdges() > want {
		t.Errorf("edges = %d, want ~%d", g.NumEdges(), want)
	}
	// Scale-free signature: max degree far above the minimum.
	min, max := g.MinMaxDegree()
	if min < 1 {
		t.Errorf("min degree = %d, want >= 1", min)
	}
	if max < 10*m {
		t.Errorf("max degree = %d; expected a heavy tail (>= %d)", max, 10*m)
	}
}

func TestBarabasiAlbertSmall(t *testing.T) {
	// n <= m+1 degenerates to a clique.
	g := checkValid(t)(BarabasiAlbert(4, 5, 1, Weighting{}))
	if g.NumEdges() != 6 {
		t.Errorf("K4 edges = %d, want 6", g.NumEdges())
	}
	if _, err := BarabasiAlbert(10, 0, 1, Weighting{}); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestABLocalEvents(t *testing.T) {
	g := checkValid(t)(ABLocalEvents(300, 2, 0.2, 0.2, 5, Weighting{}))
	if g.N() != 300 {
		t.Fatalf("N = %d", g.N())
	}
	if g.NumEdges() < 300 {
		t.Errorf("edges = %d, suspiciously few", g.NumEdges())
	}
	if _, err := ABLocalEvents(10, 2, 0.6, 0.5, 1, Weighting{}); err == nil {
		t.Error("p+q >= 1 accepted")
	}
}

func TestWattsStrogatz(t *testing.T) {
	n, k := 100, 4
	g := checkValid(t)(WattsStrogatz(n, k, 0.1, 3, Weighting{}))
	if g.N() != n {
		t.Fatalf("N = %d", g.N())
	}
	// nk/2 edge draws; rewiring can collide so allow small shrink.
	want := int64(n * k / 2)
	if g.NumEdges() < want*95/100 || g.NumEdges() > want {
		t.Errorf("edges = %d, want ~%d", g.NumEdges(), want)
	}
	// beta = 0: pure ring lattice, every degree exactly k.
	ring := checkValid(t)(WattsStrogatz(50, 4, 0, 3, Weighting{}))
	min, max := ring.MinMaxDegree()
	if min != 4 || max != 4 {
		t.Errorf("ring lattice degrees = [%d,%d], want [4,4]", min, max)
	}
	if _, err := WattsStrogatz(10, 3, 0.1, 1, Weighting{}); err == nil {
		t.Error("odd k accepted")
	}
	if _, err := WattsStrogatz(10, 10, 0.1, 1, Weighting{}); err == nil {
		t.Error("k >= n accepted")
	}
}

func TestRMAT(t *testing.T) {
	g := checkValid(t)(RMAT(8, 2000, 0.57, 0.19, 0.19, 0.05, false, 9, Weighting{}))
	if g.N() != 256 {
		t.Fatalf("N = %d, want 256", g.N())
	}
	if g.NumArcs() < 1000 {
		t.Errorf("arcs = %d, too many merged", g.NumArcs())
	}
	// Skewed out-degrees.
	_, max := g.MinMaxDegree()
	if max < 20 {
		t.Errorf("max out-degree = %d; expected skew", max)
	}
	if _, err := RMAT(4, 10, 0.5, 0.5, 0.5, 0.5, false, 1, Weighting{}); err == nil {
		t.Error("probabilities summing to 2 accepted")
	}
	if _, err := RMAT(31, 10, 0.25, 0.25, 0.25, 0.25, false, 1, Weighting{}); err == nil {
		t.Error("scale 31 accepted")
	}
}

func TestPowerLawConfiguration(t *testing.T) {
	g := checkValid(t)(PowerLawConfiguration(1000, 2.5, 2, true, 13, Weighting{}))
	if g.N() != 1000 {
		t.Fatalf("N = %d", g.N())
	}
	min, max := g.MinMaxDegree()
	if max < 20 {
		t.Errorf("max degree = %d; expected heavy tail", max)
	}
	_ = min
	if _, err := PowerLawConfiguration(10, 1.0, 2, true, 1, Weighting{}); err == nil {
		t.Error("gamma <= 1 accepted")
	}
	if _, err := PowerLawConfiguration(10, 2.5, 0, true, 1, Weighting{}); err == nil {
		t.Error("minDeg = 0 accepted")
	}
}

func TestWeighting(t *testing.T) {
	g, err := ErdosRenyiGNM(50, 200, true, 21, Weighting{Min: 3, Max: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("weighted request produced unweighted graph")
	}
	for v := int32(0); v < int32(g.N()); v++ {
		_, w := g.NeighborsW(v)
		for _, x := range w {
			if x < 3 || x > 9 {
				t.Fatalf("weight %d out of [3,9]", x)
			}
		}
	}
	if _, err := ErdosRenyiGNM(10, 5, true, 1, Weighting{Min: 5, Max: 2}); err == nil {
		t.Error("inverted weight range accepted")
	}
	if _, err := ErdosRenyiGNM(10, 5, true, 1, Weighting{Min: 0, Max: 2}); err == nil {
		t.Error("zero min weight accepted")
	}
	if _, err := ErdosRenyiGNM(10, 5, true, 1, Weighting{Min: 1, Max: matrix.Inf}); err == nil {
		t.Error("Inf max weight accepted")
	}
}

func TestWeightingFixed(t *testing.T) {
	g, err := ErdosRenyiGNM(20, 40, true, 2, Weighting{Min: 7, Max: 7})
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < int32(g.N()); v++ {
		_, w := g.NeighborsW(v)
		for _, x := range w {
			if x != 7 {
				t.Fatalf("weight %d, want 7", x)
			}
		}
	}
}

// The power-law tail is what drives the paper's lock-contention findings;
// sanity-check that BA's degree histogram is heavy-tailed: the top 1% of
// vertices hold a disproportionate share of the arcs.
func TestBarabasiAlbertHeavyTail(t *testing.T) {
	g := checkValid(t)(BarabasiAlbert(2000, 4, 17, Weighting{}))
	degs := g.Degrees()
	// Sum of top-20 degrees vs total.
	top := make([]int, len(degs))
	copy(top, degs)
	// simple selection of 20 largest
	sum20 := 0
	for k := 0; k < 20; k++ {
		bi := 0
		for i, d := range top {
			if d > top[bi] {
				bi = i
			}
		}
		sum20 += top[bi]
		top[bi] = -1
	}
	total := 0
	for _, d := range degs {
		total += d
	}
	share := float64(sum20) / float64(total)
	if share < 0.05 {
		t.Errorf("top-20 degree share = %g; expected heavy tail (>= 0.05)", share)
	}
	if math.IsNaN(share) {
		t.Fatal("empty graph")
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	g := checkValid(t)(BarabasiAlbert(400, 3, 21, Weighting{}))
	r := checkValid(t)(Relabel(g, 5))
	if r.N() != g.N() || r.NumArcs() != g.NumArcs() {
		t.Fatalf("relabel changed size: %v -> %v", g, r)
	}
	// The degree multiset must be preserved.
	gh, rh := g.DegreeHistogram(), r.DegreeHistogram()
	if len(gh) != len(rh) {
		t.Fatalf("degree histograms differ in length: %d vs %d", len(gh), len(rh))
	}
	for d := range gh {
		if gh[d] != rh[d] {
			t.Fatalf("degree histogram differs at %d: %d vs %d", d, gh[d], rh[d])
		}
	}
}

func TestRelabelBreaksIdDegreeCorrelation(t *testing.T) {
	// BA puts hubs at low ids; after relabeling the mean degree of the
	// first 5% of ids should be close to the global mean, not far above.
	g := checkValid(t)(BarabasiAlbert(2000, 3, 22, Weighting{}))
	r := checkValid(t)(Relabel(g, 6))
	head := 100
	meanHead := func(gr *graph.Graph) float64 {
		s := 0
		for v := 0; v < head; v++ {
			s += gr.OutDegree(int32(v))
		}
		return float64(s) / float64(head)
	}
	global := float64(g.NumArcs()) / float64(g.N())
	if meanHead(g) < 3*global {
		t.Skipf("BA head not hub-heavy on this seed (%.1f vs %.1f)", meanHead(g), global)
	}
	if meanHead(r) > 2*global {
		t.Errorf("relabeled head still hub-heavy: %.1f vs global %.1f", meanHead(r), global)
	}
}

func TestRelabelWeightedDirected(t *testing.T) {
	g, err := ErdosRenyiGNM(100, 300, false, 31, Weighting{Min: 2, Max: 8})
	if err != nil {
		t.Fatal(err)
	}
	r := checkValid(t)(Relabel(g, 7))
	if !r.Weighted() || r.Undirected() {
		t.Fatalf("relabel lost flags: weighted=%v undirected=%v", r.Weighted(), r.Undirected())
	}
	if r.NumArcs() != g.NumArcs() {
		t.Errorf("arcs %d -> %d", g.NumArcs(), r.NumArcs())
	}
	// Weight multiset preserved.
	sumW := func(gr *graph.Graph) uint64 {
		var s uint64
		for v := int32(0); v < int32(gr.N()); v++ {
			_, w := gr.NeighborsW(v)
			for _, x := range w {
				s += uint64(x)
			}
		}
		return s
	}
	if sumW(g) != sumW(r) {
		t.Error("weight multiset changed")
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	// Regression: the growth step once iterated a Go map, whose
	// randomized order leaked into the preferential-attachment draws and
	// made "seeded" graphs differ between runs.
	a := checkValid(t)(BarabasiAlbert(500, 3, 77, Weighting{}))
	for trial := 0; trial < 3; trial++ {
		b := checkValid(t)(BarabasiAlbert(500, 3, 77, Weighting{}))
		if a.NumArcs() != b.NumArcs() {
			t.Fatal("same seed, different arc counts")
		}
		for v := int32(0); v < int32(a.N()); v++ {
			av, bv := a.Neighbors(v), b.Neighbors(v)
			if len(av) != len(bv) {
				t.Fatalf("same seed, different degree at %d", v)
			}
			for i := range av {
				if av[i] != bv[i] {
					t.Fatalf("same seed, different adjacency at %d", v)
				}
			}
		}
	}
}

func TestABLocalEventsDeterministic(t *testing.T) {
	a := checkValid(t)(ABLocalEvents(300, 2, 0.2, 0.2, 55, Weighting{}))
	b := checkValid(t)(ABLocalEvents(300, 2, 0.2, 0.2, 55, Weighting{}))
	if a.NumArcs() != b.NumArcs() {
		t.Fatal("same seed, different graphs")
	}
	for v := int32(0); v < int32(a.N()); v++ {
		av, bv := a.Neighbors(v), b.Neighbors(v)
		if len(av) != len(bv) {
			t.Fatalf("degree differs at %d", v)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("adjacency differs at %d", v)
			}
		}
	}
}
