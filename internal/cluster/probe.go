package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// probeHealth is the slice of the shard /healthz payload the prober
// consumes: the draining flag takes a shard out of the ring *before* its
// listener closes (so the router never has to eat the drain 503s), and
// the graph order is adopted for edge validation and cross-checked so a
// misconfigured replica serving a different graph can never contribute
// wrong rows.
type probeHealth struct {
	Draining bool  `json:"draining"`
	Vertices int64 `json:"vertices"`
	// GraphVersion is recorded per shard for /healthz observability.
	// Unlike Vertices it is NOT a health criterion: replicas legitimately
	// diverge for the propagation window of a mutation, and evicting the
	// laggards would turn every update into a partial outage. The /batch
	// merge gate handles skew at answer time instead.
	GraphVersion uint64 `json:"graph_version"`
}

// Start launches the background health prober: every ProbeInterval, all
// shards are probed in parallel, and the ring is rebuilt on any health
// transition. Start is idempotent; call Close to stop the prober and
// release the router's transport.
func (r *Router) Start() {
	r.startOnce.Do(func() {
		r.probeWG.Add(1)
		go func() {
			defer r.probeWG.Done()
			ticker := time.NewTicker(r.cfg.ProbeInterval)
			defer ticker.Stop()
			r.probeOnce()
			for {
				select {
				case <-r.stopProbe:
					return
				case <-ticker.C:
					r.probeOnce()
				}
			}
		}()
	})
}

// Close stops the prober, waits for it to exit, and closes idle
// forwarding connections. The router keeps serving (membership just
// freezes), so Close is safe to call before the HTTP server drains.
func (r *Router) Close() {
	r.closeOnce.Do(func() { close(r.stopProbe) })
	r.probeWG.Wait()
	if t, ok := r.client.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
}

// probeOnce probes every shard in parallel and applies the verdicts. The
// round joins before returning, so probe goroutines never accumulate.
func (r *Router) probeOnce() {
	var wg sync.WaitGroup
	for _, sh := range r.cfg.Shards {
		wg.Add(1)
		go func(sh Shard) {
			defer wg.Done()
			r.setShardHealth(sh.ID, r.probeShard(sh))
		}(sh)
	}
	wg.Wait()
}

// probeShard performs one health check. Healthy means: /healthz answers
// 200 with a decodable body, is not draining, and reports the same graph
// order as the rest of the cluster.
func (r *Router) probeShard(sh Shard) bool {
	r.m.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.URL()+"/healthz", nil)
	if err != nil {
		r.m.probeFailures.Add(1)
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		r.m.probeFailures.Add(1)
		return false
	}
	defer resp.Body.Close()
	var hb probeHealth
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&hb) != nil {
		r.m.probeFailures.Add(1)
		return false
	}
	if hb.Draining {
		r.m.probeFailures.Add(1)
		return false
	}
	if hb.GraphVersion > 0 {
		r.vers[sh.ID].Store(hb.GraphVersion)
	}
	if hb.Vertices > 0 {
		if !r.n.CompareAndSwap(0, hb.Vertices) && r.n.Load() != hb.Vertices {
			// The shard serves a different graph than the one the cluster
			// adopted: answers would be silently wrong, so refuse it.
			r.m.probeMismatch.Add(1)
			return false
		}
	}
	return true
}
