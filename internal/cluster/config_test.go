package cluster

import (
	"errors"
	"testing"
)

func TestParseShardsValid(t *testing.T) {
	cases := []struct {
		in   string
		want []Shard
	}{
		{"s0=127.0.0.1:8081", []Shard{{"s0", "127.0.0.1:8081"}}},
		{"s0=127.0.0.1:8081,s1=127.0.0.1:8082", []Shard{{"s0", "127.0.0.1:8081"}, {"s1", "127.0.0.1:8082"}}},
		// Bare addresses auto-assign ids in list order.
		{"127.0.0.1:1,127.0.0.1:2", []Shard{{"s0", "127.0.0.1:1"}, {"s1", "127.0.0.1:2"}}},
		// Mixed, with whitespace tolerated around entries.
		{" a=host-1:80 , host2:81 ", []Shard{{"a", "host-1:80"}, {"s1", "host2:81"}}},
		// IPv6 literals go through net.SplitHostPort.
		{"v6=[::1]:9000", []Shard{{"v6", "[::1]:9000"}}},
	}
	for _, c := range cases {
		got, err := ParseShards(c.in)
		if err != nil {
			t.Fatalf("ParseShards(%q): %v", c.in, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("ParseShards(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ParseShards(%q)[%d] = %v, want %v", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestParseShardsRejects(t *testing.T) {
	cases := []string{
		"",                                    // empty list
		",",                                   // empty entries
		"s0=127.0.0.1:8081,",                  // trailing empty entry
		"s0=127.0.0.1:8081,s0=127.0.0.1:8082", // duplicate id
		"a=127.0.0.1:80,b=127.0.0.1:80",       // duplicate address
		"=127.0.0.1:80",                       // empty id
		"s 0=127.0.0.1:80",                    // invalid id character
		"s0=127.0.0.1",                        // no port
		"s0=:80",                              // empty host
		"s0=127.0.0.1:0",                      // port out of range
		"s0=127.0.0.1:70000",                  // port out of range
		"s0=127.0.0.1:http",                   // non-numeric port
	}
	for _, in := range cases {
		if _, err := ParseShards(in); !errors.Is(err, ErrConfig) {
			t.Fatalf("ParseShards(%q) = %v, want ErrConfig", in, err)
		}
	}
}

func TestNewRejectsBadMembership(t *testing.T) {
	cases := [][]Shard{
		nil,
		{{ID: "a", Addr: "127.0.0.1:80"}, {ID: "a", Addr: "127.0.0.1:81"}},
		{{ID: "a", Addr: "h:80"}, {ID: "b", Addr: "h:80"}},
		{{ID: "", Addr: "127.0.0.1:80"}},
		{{ID: "a", Addr: "nonsense"}},
	}
	for i, shards := range cases {
		if _, err := New(Config{Shards: shards}); !errors.Is(err, ErrConfig) {
			t.Fatalf("case %d: New = %v, want ErrConfig", i, err)
		}
	}
}
