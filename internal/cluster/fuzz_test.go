package cluster

import (
	"errors"
	"strings"
	"testing"
)

// FuzzParseShardConfig pins the membership-parsing contract, mirroring
// serve's FuzzParseQuery: arbitrary shard lists — malformed entries,
// duplicate ids, bad addresses, hostile lengths — never panic, and either
// parse into a fully validated membership table or fail with an error
// wrapping ErrConfig (a startup/4xx error, never a 5xx class crash). A
// successful parse must also be accepted by New, so nothing the parser
// admits can fail membership validation later. The seed corpus under
// testdata/fuzz/FuzzParseShardConfig runs as plain regression cases in
// every `go test` pass.
func FuzzParseShardConfig(f *testing.F) {
	f.Add("s0=127.0.0.1:8081,s1=127.0.0.1:8082")
	f.Add("127.0.0.1:1,127.0.0.1:2,127.0.0.1:3")
	f.Add("s0=127.0.0.1:8081,s0=127.0.0.1:8082")
	f.Add("a=127.0.0.1:80,b=127.0.0.1:80")
	f.Add("=127.0.0.1:80")
	f.Add("s0=127.0.0.1:0,s1=127.0.0.1:70000")
	f.Add(",,,")
	f.Add("v6=[::1]:9000,v7=[::2]:9001")
	f.Add("x=host:port")
	f.Add(strings.Repeat("s=1:2,", 400))
	f.Fuzz(func(t *testing.T, in string) {
		shards, err := ParseShards(in)
		if err != nil {
			if !errors.Is(err, ErrConfig) {
				t.Fatalf("ParseShards(%q) error %v does not wrap ErrConfig", in, err)
			}
			if shards != nil {
				t.Fatalf("ParseShards(%q) returned shards alongside an error", in)
			}
			return
		}
		// A nil-error parse must be a valid membership: non-empty, bounded,
		// unique ids and addresses, well-formed entries.
		if len(shards) == 0 || len(shards) > maxShards {
			t.Fatalf("ParseShards(%q) accepted %d shards", in, len(shards))
		}
		ids := make(map[string]bool, len(shards))
		addrs := make(map[string]bool, len(shards))
		for _, sh := range shards {
			if err := checkID(sh.ID); err != nil {
				t.Fatalf("ParseShards(%q) accepted invalid id %q: %v", in, sh.ID, err)
			}
			if err := checkAddr(sh.Addr); err != nil {
				t.Fatalf("ParseShards(%q) accepted invalid address %q: %v", in, sh.Addr, err)
			}
			if ids[sh.ID] || addrs[sh.Addr] {
				t.Fatalf("ParseShards(%q) accepted duplicate shard %v", in, sh)
			}
			ids[sh.ID], addrs[sh.Addr] = true, true
		}
		// And the router constructor must agree with the parser.
		r, err := New(Config{Shards: shards})
		if err != nil {
			t.Fatalf("New rejected a parsed membership %v: %v", shards, err)
		}
		if r.Healthy() != len(shards) {
			t.Fatalf("fresh router has %d healthy of %d shards", r.Healthy(), len(shards))
		}
	})
}
