package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"parapsp/internal/graph"
	"parapsp/internal/serve"
)

// bootShards starts real serve shards over the same graph and returns a
// router in front of them plus the shard base URLs for direct mutation.
func bootShards(t *testing.T, g *graph.Graph, count int) (*Router, []string) {
	t.Helper()
	var shards []Shard
	var urls []string
	for i := 0; i < count; i++ {
		s, err := serve.New(g, serve.Config{
			Workers: 1, CacheRows: g.N(), MaxBatch: g.N(), Landmarks: -1,
			ShardID: fmt.Sprintf("s%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		h := httptest.NewServer(s.Handler())
		t.Cleanup(h.Close)
		urls = append(urls, h.URL)
		shards = append(shards, Shard{ID: fmt.Sprintf("s%d", i), Addr: strings.TrimPrefix(h.URL, "http://")})
	}
	r, err := New(Config{Shards: shards, MaxBatch: g.N()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, urls
}

// postEdge applies one mutation directly to a single shard, simulating
// the propagation window where an update has reached some replicas only.
func postEdge(t *testing.T, shardURL, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(shardURL+"/edge", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /edge: %v", err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestRouterRefusesVersionSkewMerge pins the cluster half of the version
// contract: a /batch whose sub-answers come from shards at different
// graph versions is refused with 409 (counted as cluster.version_skew)
// instead of merged, and merges succeed again — stamped with the common
// version — once every contributing replica has converged.
func TestRouterRefusesVersionSkewMerge(t *testing.T) {
	g := testGraph(t, 60, 9)
	r, urls := bootShards(t, g, 2)

	// Two sources whose primary owners are different shards, so a batch
	// containing both genuinely fans out.
	rg := r.mem.current()
	u1 := int32(0)
	u2 := int32(-1)
	for v := int32(1); int(v) < g.N(); v++ {
		if rg.owners(v)[0].ID != rg.owners(u1)[0].ID {
			u2 = v
			break
		}
	}
	if u2 < 0 {
		t.Fatal("ring assigned every source to one shard")
	}

	// An absent pair to insert.
	var a, b int32 = -1, -1
findPair:
	for x := int32(0); int(x) < g.N(); x++ {
		for y := x + 1; int(y) < g.N(); y++ {
			if _, ok := g.ArcWeight(x, y); !ok {
				a, b = x, y
				break findPair
			}
		}
	}
	if a < 0 {
		t.Fatal("no absent pair")
	}
	edge := fmt.Sprintf(`{"op":"insert","u":%d,"v":%d,"w":1}`, a, b)

	batch := fmt.Sprintf(`{"queries":[{"u":%d,"v":%d},{"u":%d,"v":%d}]}`, u1, u2, u2, u1)
	post := func() *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader(batch)))
		return rec
	}

	// Converged at version 1: the merge succeeds and reports it.
	if rec := post(); rec.Code != http.StatusOK {
		t.Fatalf("converged batch status %d: %s", rec.Code, rec.Body)
	} else if got := rec.Header().Get(versionHeader); got != "1" {
		t.Fatalf("converged batch version header %q, want 1", got)
	}

	// Mutate shard 0 only: replicas now diverge (v2 vs v1).
	if resp := postEdge(t, urls[0], edge); resp.StatusCode != http.StatusOK {
		t.Fatalf("shard 0 /edge status %d", resp.StatusCode)
	}
	rec := post()
	if rec.Code != http.StatusConflict {
		t.Fatalf("skewed batch status %d, want 409: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("skew 409 missing Retry-After")
	}
	if got := r.Metrics().Snapshot()["cluster.version_skew"]; got != 1 {
		t.Fatalf("cluster.version_skew = %d, want 1", got)
	}

	// Propagate the same mutation to shard 1: converged again at v2.
	if resp := postEdge(t, urls[1], edge); resp.StatusCode != http.StatusOK {
		t.Fatalf("shard 1 /edge status %d", resp.StatusCode)
	}
	if rec := post(); rec.Code != http.StatusOK {
		t.Fatalf("re-converged batch status %d: %s", rec.Code, rec.Body)
	} else if got := rec.Header().Get(versionHeader); got != "2" {
		t.Fatalf("re-converged batch version header %q, want 2", got)
	}

	// Single-shard routes always pass the shard's version through; skew
	// never blocks them (only merges can mix versions).
	rec = httptest.NewRecorder()
	target := fmt.Sprintf("/dist?u=%d&v=%d", u1, u2)
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	if rec.Code != http.StatusOK || rec.Header().Get(versionHeader) != "2" {
		t.Fatalf("/dist status %d version %q", rec.Code, rec.Header().Get(versionHeader))
	}

	// The prober records per-shard versions for /healthz observability.
	r.probeOnce()
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var ch clusterHealth
	if err := json.Unmarshal(rec.Body.Bytes(), &ch); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	for _, sh := range ch.Shards {
		if sh.GraphVersion != 2 {
			t.Fatalf("healthz shard %s graph_version %d, want 2", sh.ID, sh.GraphVersion)
		}
	}
}
