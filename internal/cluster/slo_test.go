package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"parapsp/internal/admit"
	"parapsp/internal/serve"
)

// tierShard is a fake shard that records the admission headers it
// receives and can be switched into per-client quota rejection, so the
// router's tier/client forwarding and its quota-verdict passthrough can
// be observed from both sides of the hop.
type tierShard struct {
	id          string
	srv         *httptest.Server
	queries     atomic.Int64
	quotaReject atomic.Bool
	lastTier    atomic.Value // string
	lastClient  atomic.Value // string
}

func newTierShard(t *testing.T, id string) *tierShard {
	t.Helper()
	f := &tierShard{id: id}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"status": "ok", "vertices": 1024})
	})
	mux.HandleFunc("/dist", func(w http.ResponseWriter, r *http.Request) {
		f.queries.Add(1)
		f.lastTier.Store(r.Header.Get(admit.DefaultTierHeader))
		f.lastClient.Store(r.Header.Get(admit.ClientHeader))
		if f.quotaReject.Load() {
			w.Header().Set(admit.RejectHeader, "quota")
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		u, v, _, err := serve.ParseDistQuery(r.URL.Query(), 1024)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		w.Header().Set(solverHeader, "fake/"+f.id)
		json.NewEncoder(w).Encode(serve.Answer{U: u, V: v, Dist: int64(u) + int64(v), Exact: true})
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *tierShard) shard() Shard {
	return Shard{ID: f.id, Addr: strings.TrimPrefix(f.srv.URL, "http://")}
}

// TestRouterTierPassthrough checks the router's half of the tier
// contract: a client-supplied tier (via a custom -tier-header) and client
// identity reach the shard on the canonical headers, the response echoes
// the admitted tier, and a shard-side per-client quota verdict passes
// through the router untouched — same status, same reject marker, same
// Retry-After, and no retry against the other replica (a quota verdict is
// deterministic for the client, so hunting a second opinion would defeat
// the shard's policy). The router's admission ledger, scraped from its
// /metrics endpoint, must reconcile afterwards.
func TestRouterTierPassthrough(t *testing.T) {
	a, b := newTierShard(t, "s0"), newTierShard(t, "s1")
	r, err := New(Config{
		Shards:     []Shard{a.shard(), b.shard()},
		TierHeader: "X-My-Tier",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	h := r.Handler()

	get := func(tier, client string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, "/dist?u=3&v=17", nil)
		if tier != "" {
			req.Header.Set("X-My-Tier", tier)
		}
		if client != "" {
			req.Header.Set(admit.ClientHeader, client)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	rec := get("premium", "end-client")
	if rec.Code != http.StatusOK {
		t.Fatalf("premium query status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get(admit.DefaultTierHeader); got != "premium" {
		t.Fatalf("router echoed tier %q, want premium", got)
	}
	owner := a
	if b.queries.Load() > 0 {
		owner = b
	}
	if got, _ := owner.lastTier.Load().(string); got != "premium" {
		t.Fatalf("shard saw tier %q on the canonical header, want premium", got)
	}
	if got, _ := owner.lastClient.Load().(string); got != "end-client" {
		t.Fatalf("shard saw client %q, want end-client", got)
	}

	// Shard-side quota verdict: both replicas reject, but the router must
	// settle on the FIRST answer rather than retrying — the verdict is
	// per-client-deterministic, not a replica fault.
	a.quotaReject.Store(true)
	b.quotaReject.Store(true)
	before := a.queries.Load() + b.queries.Load()
	rec = get("besteffort", "capped")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("quota-rejected query status %d, want 429", rec.Code)
	}
	if got := rec.Header().Get(admit.RejectHeader); got != "quota" {
		t.Fatalf("forwarded reject marker %q, want quota", got)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("forwarded Retry-After %q, want 2", got)
	}
	if delta := a.queries.Load() + b.queries.Load() - before; delta != 1 {
		t.Fatalf("quota 429 hit %d shard attempts, want 1 (no second opinions)", delta)
	}

	checkRouterAdmitLedger(t, h)
}

// TestRouterEdgeQuota gives the router its own per-client token bucket:
// past the burst, requests are rejected at the edge without consuming any
// shard attempt, the 429 carries the quota marker and a Retry-After, and
// the rejections land in rejected_quota on the scraped ledger.
func TestRouterEdgeQuota(t *testing.T) {
	sh := newTierShard(t, "s0")
	r, err := New(Config{
		Shards:     []Shard{sh.shard()},
		QuotaRPS:   0.001,
		QuotaBurst: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	h := r.Handler()

	var quota int64
	for i := 0; i < 6; i++ {
		req := httptest.NewRequest(http.MethodGet, "/dist?u=1&v=2", nil)
		req.Header.Set(admit.ClientHeader, "greedy")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			if got := rec.Header().Get(admit.RejectHeader); got != "quota" {
				t.Fatalf("edge quota reject marker %q", got)
			}
			if rec.Header().Get("Retry-After") == "" {
				t.Fatal("edge quota 429 missing Retry-After")
			}
			quota++
		default:
			t.Fatalf("request %d status %d: %s", i, rec.Code, rec.Body)
		}
	}
	if quota != 4 {
		t.Fatalf("burst 2 of 6 requests: %d quota rejections, want 4", quota)
	}
	if got := sh.queries.Load(); got != 2 {
		t.Fatalf("shard served %d queries, want 2 (rejected requests must not reach shards)", got)
	}
	checkRouterAdmitLedger(t, h)
}

// checkRouterAdmitLedger scrapes the router's /metrics and asserts the
// admission ledger identities per tier and in total.
func checkRouterAdmitLedger(t *testing.T, h http.Handler) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	var snap map[string]int64
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/metrics decode: %v", err)
	}
	for _, p := range []string{"admit", "admit.besteffort", "admit.premium"} {
		req := snap[p+".requests"]
		adm := snap[p+".admitted"]
		rej := snap[p+".rejected_quota"] + snap[p+".rejected_inflight"] + snap[p+".rejected_draining"]
		if req != adm+rej {
			t.Fatalf("%s ledger: requests=%d != admitted=%d + rejected=%d", p, req, adm, rej)
		}
		if done := snap[p+".completed"] + snap[p+".deadline_expired"]; adm != done {
			t.Fatalf("%s ledger: admitted=%d != completed+expired=%d", p, adm, done)
		}
	}
	if snap["admit.requests"] != snap["admit.besteffort.requests"]+snap["admit.premium.requests"] {
		t.Fatalf("admit.requests total %d != tier sum", snap["admit.requests"])
	}
}
