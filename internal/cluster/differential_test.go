package cluster

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"parapsp/internal/baseline"
	"parapsp/internal/dist"
	"parapsp/internal/gen"
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
	"parapsp/internal/serve"
)

// testGraph builds the same graph `parapspd -gen n -seed seed` serves
// (Barabási–Albert, m=4, unweighted), so tests that boot real shards can
// derive the exact oracle independently.
func testGraph(t testing.TB, n int, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(n, 4, seed, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// diffGraph mirrors core's battery families at a size where the
// Floyd–Warshall oracle is instant: the paper's power-law regime, the
// narrow-frontier grid, and a disconnected graph whose matrix is mostly
// Inf (so the -1 wire encoding round-trips through the router too).
func diffGraph(t *testing.T, family string, seed int64) *graph.Graph {
	t.Helper()
	w := gen.Weighting{Min: 1, Max: 9}
	var g *graph.Graph
	var err error
	switch family {
	case "power-law":
		g, err = gen.PowerLawConfiguration(120, 2.5, 2, true, seed, w)
	case "grid":
		g, err = gen.Grid2D(10, 12, true, seed, w)
	case "disconnected":
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(120, true)
		b.ForceWeighted()
		for island := 0; island < 3; island++ {
			base := int32(island * 40)
			for e := 0; e < 90; e++ {
				u := base + int32(rng.Intn(40))
				v := base + int32(rng.Intn(40))
				if u == v {
					continue
				}
				wt := w.Min + matrix.Dist(rng.Int63n(int64(w.Max-w.Min+1)))
				if addErr := b.AddWeighted(u, v, wt); addErr != nil {
					t.Fatal(addErr)
				}
			}
		}
		g, err = b.Build()
	default:
		t.Fatalf("unknown family %q", family)
	}
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// clusterMatrix reassembles the full APSP matrix through a router over 3
// real serve shards (every shard holds the same graph; the ring only
// decides which replica solves which row), one /batch per source row.
func clusterMatrix(t *testing.T, g *graph.Graph) *matrix.Matrix {
	t.Helper()
	n := g.N()
	var shards []Shard
	for i := 0; i < 3; i++ {
		s, err := serve.New(g, serve.Config{
			Workers: 2, CacheRows: n, MaxBatch: n, Landmarks: -1,
			ShardID: fmt.Sprintf("s%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		h := httptest.NewServer(s.Handler())
		t.Cleanup(h.Close)
		shards = append(shards, Shard{ID: fmt.Sprintf("s%d", i), Addr: strings.TrimPrefix(h.URL, "http://")})
	}
	r, err := New(Config{Shards: shards, MaxBatch: n})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	h := r.Handler()

	m := matrix.New(n)
	for u := 0; u < n; u++ {
		wire := batchWire{Queries: make([]serve.Query, n)}
		for v := 0; v < n; v++ {
			wire.Queries[v] = serve.Query{U: int32(u), V: int32(v)}
		}
		body, err := json.Marshal(wire)
		if err != nil {
			t.Fatal(err)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader(string(body))))
		if rec.Code != http.StatusOK {
			t.Fatalf("row %d: status %d: %s", u, rec.Code, rec.Body)
		}
		var out batchAnswers
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("row %d: %v", u, err)
		}
		if len(out.Answers) != n {
			t.Fatalf("row %d: %d answers for %d queries", u, len(out.Answers), n)
		}
		for _, a := range out.Answers {
			if !a.Exact {
				t.Fatalf("row %d: inexact answer %+v with the oracle disabled", u, a)
			}
			d := matrix.Inf
			if a.Dist >= 0 {
				d = matrix.Dist(a.Dist)
			}
			m.Set(int(a.U), int(a.V), d)
		}
	}
	checkLedger(t, r)
	return m
}

// TestDifferentialPartitioning is the cross-implementation oracle check:
// the same APSP instance solved three ways — the internal/dist
// round-robin source partition, the router's consistent-hash partition
// over real HTTP shards, and the Floyd–Warshall baseline — must agree to
// the checksum. Partitioning strategy must never leak into answers.
func TestDifferentialPartitioning(t *testing.T) {
	for _, family := range []string{"power-law", "grid", "disconnected"} {
		family := family
		t.Run(family, func(t *testing.T) {
			g := diffGraph(t, family, 42)
			truth := baseline.FloydWarshall(g)
			want := truth.Checksum()

			rr, _, err := dist.Solve(g, dist.Config{Nodes: 3})
			if err != nil {
				t.Fatal(err)
			}
			if got := rr.Checksum(); got != want {
				diff, _ := rr.Diff(truth, 3)
				t.Fatalf("round-robin partition checksum %x != FW %x; first diffs %v", got, want, diff)
			}

			ch := clusterMatrix(t, g)
			if got := ch.Checksum(); got != want {
				diff, _ := ch.Diff(truth, 3)
				t.Fatalf("consistent-hash partition checksum %x != FW %x; first diffs %v", got, want, diff)
			}
		})
	}
}
