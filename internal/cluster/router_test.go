package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parapsp/internal/serve"
)

// fakeShard is a scriptable stand-in for one parapspd replica: it answers
// /dist and /batch with the deterministic dist = u+v (so merge
// correctness is checkable without a solver) and /healthz with a
// controllable draining flag, and can be slowed down or forced to fail.
type fakeShard struct {
	id       string
	srv      *httptest.Server
	delay    atomic.Int64 // ns added before answering queries
	failWith atomic.Int64 // non-zero: answer queries with this status
	draining atomic.Bool
	vertices int64
	queries  atomic.Int64 // non-healthz requests served
}

func newFakeShard(t *testing.T, id string, vertices int64) *fakeShard {
	t.Helper()
	f := &fakeShard{id: id, vertices: vertices}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"status": "ok", "draining": f.draining.Load(), "vertices": f.vertices,
		})
	})
	wait := func(r *http.Request) bool {
		if d := f.delay.Load(); d > 0 {
			select {
			case <-time.After(time.Duration(d)):
			case <-r.Context().Done():
				return false
			}
		}
		return true
	}
	mux.HandleFunc("/dist", func(w http.ResponseWriter, r *http.Request) {
		f.queries.Add(1)
		if !wait(r) {
			return
		}
		if code := f.failWith.Load(); code != 0 {
			w.WriteHeader(int(code))
			return
		}
		u, v, _, err := serve.ParseDistQuery(r.URL.Query(), int(f.vertices))
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		w.Header().Set(solverHeader, "fake/"+f.id)
		json.NewEncoder(w).Encode(serve.Answer{U: u, V: v, Dist: int64(u) + int64(v), Exact: true})
	})
	mux.HandleFunc("/batch", func(w http.ResponseWriter, r *http.Request) {
		f.queries.Add(1)
		if !wait(r) {
			return
		}
		if code := f.failWith.Load(); code != 0 {
			w.WriteHeader(int(code))
			return
		}
		var wire batchWire
		if err := json.NewDecoder(r.Body).Decode(&wire); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		out := batchAnswers{Answers: make([]serve.Answer, len(wire.Queries))}
		for i, q := range wire.Queries {
			out.Answers[i] = serve.Answer{U: q.U, V: q.V, Dist: int64(q.U) + int64(q.V), Exact: true}
		}
		w.Header().Set(solverHeader, "fake/"+f.id)
		json.NewEncoder(w).Encode(out)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeShard) shard() Shard {
	return Shard{ID: f.id, Addr: strings.TrimPrefix(f.srv.URL, "http://")}
}

// newFakeCluster boots n fake shards and a router over them (probing not
// started; tests opt in with r.Start()).
func newFakeCluster(t *testing.T, n int, cfg Config) (*Router, []*fakeShard) {
	t.Helper()
	shards := make([]*fakeShard, n)
	for i := range shards {
		shards[i] = newFakeShard(t, fmt.Sprintf("s%d", i), 1024)
		cfg.Shards = append(cfg.Shards, shards[i].shard())
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, shards
}

// ownedBy finds a source whose primary owner is the given shard id.
func ownedBy(t *testing.T, r *Router, id string) int32 {
	t.Helper()
	for src := int32(0); src < 4096; src++ {
		if owners := r.mem.current().owners(src); len(owners) > 0 && owners[0].ID == id {
			return src
		}
	}
	t.Fatalf("no source owned by %s in 4096 tries", id)
	return -1
}

// checkLedger asserts the attempt-accounting invariant the chaos test
// also verifies end to end: routed == merged + hedge_cancelled + failed.
func checkLedger(t *testing.T, r *Router) {
	t.Helper()
	snap := r.cfg.Metrics.Snapshot()
	if snap["cluster.routed"] != snap["cluster.merged"]+snap["cluster.hedge_cancelled"]+snap["cluster.failed"] {
		t.Fatalf("attempt ledger does not balance: routed=%d merged=%d hedge_cancelled=%d failed=%d",
			snap["cluster.routed"], snap["cluster.merged"], snap["cluster.hedge_cancelled"], snap["cluster.failed"])
	}
}

func routerGet(h http.Handler, target string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	return rec
}

func TestRouterRoutesToOwner(t *testing.T) {
	r, _ := newFakeCluster(t, 3, Config{})
	h := r.Handler()
	for src := int32(0); src < 32; src++ {
		owner := r.mem.current().owners(src)[0].ID
		rec := routerGet(h, fmt.Sprintf("/dist?u=%d&v=7", src))
		if rec.Code != http.StatusOK {
			t.Fatalf("u=%d status %d: %s", src, rec.Code, rec.Body)
		}
		if got := rec.Header().Get(shardHeader); got != owner {
			t.Fatalf("u=%d answered by %s, ring owner is %s", src, got, owner)
		}
		if got := rec.Header().Get(solverHeader); got != "fake/"+owner {
			t.Fatalf("u=%d solver header %q not passed through", src, got)
		}
		var ans serve.Answer
		if err := json.Unmarshal(rec.Body.Bytes(), &ans); err != nil || ans.Dist != int64(src)+7 {
			t.Fatalf("u=%d answer %+v (err %v), want dist %d", src, ans, err, int64(src)+7)
		}
	}
	checkLedger(t, r)
}

func TestRouterHedgesSlowOwner(t *testing.T) {
	r, shards := newFakeCluster(t, 3, Config{HedgeAfter: 5 * time.Millisecond})
	slow := shards[0]
	slow.delay.Store(int64(2 * time.Second))
	src := ownedBy(t, r, slow.id)
	start := time.Now()
	rec := routerGet(r.Handler(), fmt.Sprintf("/dist?u=%d&v=1", src))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedge did not rescue the request: took %s", elapsed)
	}
	if got := rec.Header().Get(shardHeader); got == slow.id {
		t.Fatalf("slow owner %s still answered", got)
	}
	snap := r.cfg.Metrics.Snapshot()
	if snap["cluster.hedges"] == 0 {
		t.Fatal("no hedge launched against a 2s-slow owner with a 5ms hedge delay")
	}
	if snap["cluster.hedge_cancelled"] == 0 {
		t.Fatal("the losing attempt was not accounted as hedge_cancelled")
	}
	checkLedger(t, r)
}

func TestRouterRetriesFailedOwner(t *testing.T) {
	r, shards := newFakeCluster(t, 3, Config{HedgeAfter: time.Minute}) // hedging out of the picture
	failing := shards[1]
	failing.failWith.Store(http.StatusServiceUnavailable)
	src := ownedBy(t, r, failing.id)
	rec := routerGet(r.Handler(), fmt.Sprintf("/dist?u=%d&v=2", src))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get(shardHeader); got == failing.id {
		t.Fatalf("failing owner %s answered", got)
	}
	snap := r.cfg.Metrics.Snapshot()
	if snap["cluster.retries"] == 0 || snap["cluster.failed"] == 0 {
		t.Fatalf("retry path not exercised: retries=%d failed=%d", snap["cluster.retries"], snap["cluster.failed"])
	}
	checkLedger(t, r)
}

func TestRouterAllOwnersDown503(t *testing.T) {
	r, shards := newFakeCluster(t, 3, Config{HedgeAfter: time.Millisecond})
	for _, f := range shards {
		f.failWith.Store(http.StatusInternalServerError)
	}
	rec := routerGet(r.Handler(), "/dist?u=3&v=4")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	snap := r.cfg.Metrics.Snapshot()
	if snap["cluster.unavailable"] == 0 {
		t.Fatal("unavailable counter not incremented")
	}
	checkLedger(t, r)
}

func TestRouterShardClientErrorPassesThrough(t *testing.T) {
	r, _ := newFakeCluster(t, 2, Config{})
	// v out of the fake shard's range but within the router's (order
	// unknown without probes): the shard's 400 must come back verbatim,
	// not be retried into a 503.
	rec := routerGet(r.Handler(), "/dist?u=1&v=999999")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want shard 400 passed through", rec.Code)
	}
	snap := r.cfg.Metrics.Snapshot()
	if snap["cluster.retries"] != 0 {
		t.Fatalf("a 4xx was retried %d times", snap["cluster.retries"])
	}
	checkLedger(t, r)
}

func TestRouterTransportFailureEvictsShard(t *testing.T) {
	r, shards := newFakeCluster(t, 3, Config{HedgeAfter: time.Minute})
	dead := shards[2]
	src := ownedBy(t, r, dead.id)
	dead.srv.Close() // SIGKILL stand-in: connections now refused
	rec := routerGet(r.Handler(), fmt.Sprintf("/dist?u=%d&v=5", src))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d after owner death: %s", rec.Code, rec.Body)
	}
	if got := r.Healthy(); got != 2 {
		t.Fatalf("%d healthy shards after transport failure, want 2 (immediate eviction)", got)
	}
	// The very next request for the same source routes straight to the
	// failover owner: no additional failed attempt.
	before := r.cfg.Metrics.Snapshot()["cluster.failed"]
	rec = routerGet(r.Handler(), fmt.Sprintf("/dist?u=%d&v=6", src))
	if rec.Code != http.StatusOK {
		t.Fatalf("follow-up status %d", rec.Code)
	}
	if after := r.cfg.Metrics.Snapshot()["cluster.failed"]; after != before {
		t.Fatalf("follow-up request still burned %d attempts on the evicted shard", after-before)
	}
	checkLedger(t, r)
}

func TestRouterBatchMergesAcrossShards(t *testing.T) {
	r, _ := newFakeCluster(t, 3, Config{})
	var qs []string
	for src := int32(0); src < 24; src++ {
		qs = append(qs, fmt.Sprintf(`{"u":%d,"v":%d}`, src, src+1))
	}
	body := `{"queries":[` + strings.Join(qs, ",") + `]}`
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var out batchAnswers
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Answers) != 24 {
		t.Fatalf("%d answers for 24 queries", len(out.Answers))
	}
	for i, a := range out.Answers {
		if a.U != int32(i) || a.Dist != int64(2*i+1) {
			t.Fatalf("answer %d out of order or wrong: %+v", i, a)
		}
	}
	if ids := rec.Header().Get(shardHeader); !strings.Contains(ids, ",") {
		t.Fatalf("24 sources landed on one shard (%q); ring balance should spread them", ids)
	}
	checkLedger(t, r)
}

func TestRouterDeadlineNeverHangs(t *testing.T) {
	r, shards := newFakeCluster(t, 2, Config{HedgeAfter: time.Minute})
	for _, f := range shards {
		f.delay.Store(int64(5 * time.Second))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest(http.MethodGet, "/dist?u=1&v=2", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	start := time.Now()
	r.Handler().ServeHTTP(rec, req)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("request outlived its deadline by %s", elapsed)
	}
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", rec.Code)
	}
	checkLedger(t, r) // abandoned attempts must be accounted as failed
}

// TestRouterDrainingShardLeavesRing pins the drain choreography end to
// end with a real serve.Server shard: the /healthz draining flag (new in
// this PR) takes the shard out of the ring before clients ever see its
// final 503s.
func TestRouterDrainingShardLeavesRing(t *testing.T) {
	g := testGraph(t, 64, 11)
	mkShard := func(id string) (*serve.Server, *httptest.Server) {
		s, err := serve.New(g, serve.Config{Workers: 1, CacheRows: 64, Landmarks: -1, ShardID: id})
		if err != nil {
			t.Fatal(err)
		}
		h := httptest.NewServer(s.Handler())
		t.Cleanup(h.Close)
		return s, h
	}
	sA, hA := mkShard("a")
	sB, hB := mkShard("b")
	defer sA.Shutdown(context.Background())
	r, err := New(Config{
		Shards: []Shard{
			{ID: "a", Addr: strings.TrimPrefix(hA.URL, "http://")},
			{ID: "b", Addr: strings.TrimPrefix(hB.URL, "http://")},
		},
		ProbeInterval: 10 * time.Millisecond,
		HedgeAfter:    time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Start()
	srcB := ownedBy(t, r, "b")

	// Drain B. Its httptest listener keeps serving (we did not call
	// Serve), so the handler still answers: /healthz with draining=true,
	// queries with 503 — exactly a real shard mid-drain.
	if err := sB.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(hB.URL + fmt.Sprintf("/dist?u=%d&v=1", srcB))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining shard answered %d directly, want its honest 503", resp.StatusCode)
	}

	deadline := time.Now().Add(5 * time.Second)
	for r.Healthy() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("prober never removed the draining shard from the ring")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Post-removal, B's sources route to A with zero failed attempts:
	// the ring update beat the 503s.
	before := r.cfg.Metrics.Snapshot()["cluster.failed"]
	for i := 0; i < 20; i++ {
		rec := routerGet(r.Handler(), fmt.Sprintf("/dist?u=%d&v=%d", srcB, i))
		if rec.Code != http.StatusOK {
			t.Fatalf("query %d after drain removal: status %d", i, rec.Code)
		}
		if got := rec.Header().Get(shardHeader); got != "a" {
			t.Fatalf("query %d answered by %q, want the surviving shard", i, got)
		}
	}
	if after := r.cfg.Metrics.Snapshot()["cluster.failed"]; after != before {
		t.Fatalf("%d failed attempts after the draining shard left the ring", after-before)
	}
	checkLedger(t, r)
}

// TestRouterConcurrentMembershipNoLeak is the race/leak acceptance test:
// concurrent membership flips (a shard marked unhealthy while hedged
// requests are in flight) must leave the ring consistent and leak no
// goroutines, re-using the shutdown_test goroutine-baseline pattern.
func TestRouterConcurrentMembershipNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	func() {
		r, shards := newFakeCluster(t, 4, Config{
			HedgeAfter:    2 * time.Millisecond,
			ProbeInterval: 5 * time.Millisecond,
		})
		r.Start()
		h := r.Handler()
		stop := make(chan struct{})
		var chaosWG, wg sync.WaitGroup
		// Chaos goroutine: flip shard health both through the probe path
		// (draining flags) and directly, while traffic is in flight.
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				case <-time.After(3 * time.Millisecond):
				}
				f := shards[i%len(shards)]
				f.draining.Store(i%2 == 0)
				r.setShardHealth(shards[(i+1)%len(shards)].id, i%3 != 0)
				i++
			}
		}()
		// Traffic goroutines: hammer queries; any status is acceptable
		// (membership churn means 503s are honest) but hangs are not.
		for c := 0; c < 6; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for op := 0; op < 60; op++ {
					rec := routerGet(h, fmt.Sprintf("/dist?u=%d&v=%d", (c*61+op)%512, op%512))
					if rec.Code != http.StatusOK && rec.Code != http.StatusServiceUnavailable {
						t.Errorf("unexpected status %d", rec.Code)
						return
					}
				}
			}(c)
		}
		// Wait for traffic to finish, then stop the chaos.
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatal("workload deadlocked under membership churn")
		}
		close(stop)
		chaosWG.Wait()

		// The admission ledger must reconcile exactly even under
		// membership churn — every admitted request released once.
		checkRouterAdmitLedger(t, h)

		// Ring consistency after the dust settles: healthy flags and ring
		// contents agree, owner chains are duplicate-free and complete.
		for _, f := range shards {
			f.draining.Store(false)
			f.failWith.Store(0)
		}
		table, healthy := r.mem.snapshot()
		live := map[string]bool{}
		for i := range table {
			if healthy[i] {
				live[table[i].ID] = true
			}
		}
		rg := r.mem.current()
		if len(rg.shards) != len(live) {
			t.Fatalf("ring holds %d shards, membership says %d healthy", len(rg.shards), len(live))
		}
		for _, sh := range rg.shards {
			if !live[sh.ID] {
				t.Fatalf("ring holds %s but membership marks it unhealthy", sh.ID)
			}
		}
		for src := int32(0); src < 256; src++ {
			owners := rg.owners(src)
			if len(owners) != len(live) {
				t.Fatalf("owners(%d) covers %d of %d healthy shards", src, len(owners), len(live))
			}
			seen := map[string]bool{}
			for _, sh := range owners {
				if seen[sh.ID] || !live[sh.ID] {
					t.Fatalf("owners(%d) inconsistent: %v vs healthy %v", src, owners, live)
				}
				seen[sh.ID] = true
			}
		}
		checkLedger(t, r)
		r.Close()
		for _, f := range shards {
			f.srv.Close()
		}
	}()

	// Goroutine baseline: everything the router and its requests started
	// has exited (the leak check from shutdown_test, verbatim pattern).
	leakDeadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d now vs %d at baseline\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRouterGraphOrderMismatch: a replica serving a different graph is a
// config error the prober must catch — it can never contribute rows.
func TestRouterGraphOrderMismatch(t *testing.T) {
	good := newFakeShard(t, "good", 1024)
	bad := newFakeShard(t, "bad", 999) // different graph order
	r, err := New(Config{
		Shards:        []Shard{good.shard(), bad.shard()},
		ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Start()
	deadline := time.Now().Add(5 * time.Second)
	for r.Healthy() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("mismatched shard never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if r.cfg.Metrics.Snapshot()["cluster.probe_mismatch"] == 0 {
		t.Fatal("probe_mismatch counter not incremented")
	}
	if n := r.n.Load(); n != 1024 && n != 999 {
		t.Fatalf("adopted graph order %d", n)
	}
}
