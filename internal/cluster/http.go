package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"parapsp/internal/admit"
	"parapsp/internal/obs"
	"parapsp/internal/serve"
)

// shardHeader reports which shard(s) answered a routed request; for a
// merged /batch it is the comma-joined sorted set of contributing shards.
const shardHeader = "X-Parapsp-Shard"

// solverHeader mirrors serve's per-request solver report; the router
// passes it through (joined across shards for a merged batch) so clients
// see the same observability with or without the cluster in front.
const solverHeader = "X-Parapsp-Solver"

// versionHeader mirrors serve's per-response graph version. The router
// passes it through on single-shard routes, and on a merged /batch it
// refuses to combine shard responses computed at different versions: a
// mutation that has reached one replica but not another would otherwise
// mix distances from two different graphs into one answer set. Skewed
// merges answer 409 + Retry-After — replicas converge as the mutation
// propagates, so the client simply retries.
const versionHeader = "X-Parapsp-Graph-Version"

// maxBatchBody mirrors serve's /batch body bound.
const maxBatchBody = 1 << 20

// Handler returns the router's HTTP API — the same query surface as one
// parapspd, plus cluster introspection:
//
//	GET  /dist?u=..&v=..[&tol=..]  routed to u's owning shard
//	GET  /path?u=..&v=..           routed to u's owning shard
//	POST /batch                    split by owner, fanned out, merged
//	GET  /healthz                  membership table + ring state
//	GET  /metrics                  the cluster.* registry as flat JSON
//
// Clients cannot tell a router from a shard on the query endpoints;
// errors map identically (400 parse, 503 + Retry-After when no owner is
// reachable, 504 deadline), with shard 4xx/answers passed through.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/dist", func(w http.ResponseWriter, req *http.Request) {
		labeled("dist", func() { r.handleQuery("/dist", w, req) })
	})
	mux.HandleFunc("/path", func(w http.ResponseWriter, req *http.Request) {
		labeled("path", func() { r.handleQuery("/path", w, req) })
	})
	mux.HandleFunc("/batch", func(w http.ResponseWriter, req *http.Request) {
		labeled("batch", func() { r.handleBatch(w, req) })
	})
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.HandleFunc("/metrics", r.handleMetrics)
	return mux
}

// labeled runs fn under pprof labels so router CPU profiles split by
// endpoint, the same convention as the shard's parapspd-endpoint labels.
func labeled(endpoint string, fn func()) {
	obs.Do(fn, "parapsprouter-endpoint", endpoint)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// writeRouteError maps a routing or admission failure to its HTTP status
// through the shared admit vocabulary: the router's own quota/inflight
// rejections answer 429 + Retry-After exactly as a shard's would, 503 +
// Retry-After when no owner is reachable (the promise the chaos test
// holds us to — that is the *only* unavailability 503), 504 on deadline,
// 400 otherwise. All terminal statuses are written by admit.WriteDecision
// so routers and shards cannot drift apart.
func (r *Router) writeRouteError(w http.ResponseWriter, err error) {
	if d, ok := admit.Classify(err); ok {
		switch {
		case errors.Is(err, admit.ErrQuota), errors.Is(err, admit.ErrInflight):
			r.m.throttled.Add(1)
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			r.m.deadlines.Add(1)
		}
		admit.WriteDecision(w, d)
		return
	}
	switch {
	case errors.Is(err, errUnavailable):
		r.m.unavailable.Add(1)
		admit.WriteDecision(w, admit.Decision{
			Status: http.StatusServiceUnavailable, RetryAfter: 1, Msg: err.Error(),
		})
	case errors.Is(err, admit.ErrTier):
		r.m.badRequests.Add(1)
		admit.WriteDecision(w, admit.Decision{Status: http.StatusBadRequest, Msg: err.Error()})
	default:
		r.m.badRequests.Add(1)
		admit.WriteDecision(w, admit.Decision{Status: http.StatusBadRequest, Msg: err.Error()})
	}
}

// writeForwarded relays one shard response verbatim, stamping the shard.
// Beyond the solver/version observability headers it preserves the
// admission headers of a shard-side rejection — Retry-After, the reject
// reason, and the tier echo — so a client behind the router sees exactly
// what it would see talking to the shard.
func writeForwarded(w http.ResponseWriter, res *fwdResult) {
	for _, h := range []string{
		solverHeader, versionHeader, "Content-Type",
		"Retry-After", admit.RejectHeader, admit.DefaultTierHeader,
	} {
		if v := res.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(shardHeader, res.shard.ID)
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// admitEdge resolves the request's admission identity and admits it at
// the router edge: tier parse errors answer 400, quota/inflight/draining
// rejections answer through the shared decision table — all before any
// shard round trip. The admitted tier is echoed immediately so every
// response (including rejections) carries it. Callers must invoke the
// returned release exactly once with the request's terminal error.
func (r *Router) admitEdge(w http.ResponseWriter, req *http.Request) (admit.Request, func(error), bool) {
	areq, err := admit.ParseRequest(req, r.cfg.TierHeader)
	if err != nil {
		r.writeRouteError(w, err)
		return admit.Request{}, nil, false
	}
	w.Header().Set(admit.DefaultTierHeader, areq.Tier.String())
	release, err := r.adm.Admit(areq)
	if err != nil {
		r.writeRouteError(w, err)
		return admit.Request{}, nil, false
	}
	return areq, release, true
}

// handleQuery routes /dist and /path: both are keyed by the source u, so
// ownership is the ring walk from hash(u).
func (r *Router) handleQuery(endpoint string, w http.ResponseWriter, req *http.Request) {
	r.m.requests.Add(1)
	areq, release, ok := r.admitEdge(w, req)
	if !ok {
		return
	}
	var ferr error
	defer func() { release(ferr) }()
	u, _, _, err := serve.ParseDistQuery(req.URL.Query(), r.order())
	if err != nil {
		r.m.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	ctx, cancel := r.withDeadline(req.Context())
	defer cancel()
	owners := r.mem.current().owners(u)
	res, err := r.forward(ctx, http.MethodGet, endpoint+"?"+req.URL.RawQuery, nil, owners, areq)
	if err != nil {
		ferr = err
		r.writeRouteError(w, err)
		return
	}
	writeForwarded(w, res)
}

// shardGroup is the slice of one /batch destined for a single owner.
type shardGroup struct {
	owners  []Shard // hedge/retry chain of the group's sources
	indices []int   // positions in the original query list
	queries []serve.Query
}

type batchWire struct {
	Queries []serve.Query `json:"queries"`
	Tol     float64       `json:"tol,omitempty"`
}

type batchAnswers struct {
	Answers []serve.Answer `json:"answers"`
}

func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	r.m.requests.Add(1)
	if req.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return
	}
	areq, release, ok := r.admitEdge(w, req)
	if !ok {
		return
	}
	var ferr error
	defer func() { release(ferr) }()
	data, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxBatchBody))
	if err != nil {
		r.m.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "body: " + err.Error()})
		return
	}
	qs, tol, err := serve.ParseBatch(data, r.order(), r.cfg.MaxBatch)
	if err != nil {
		r.m.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	ctx, cancel := r.withDeadline(req.Context())
	defer cancel()

	// Split by owning shard against one ring snapshot, so a concurrent
	// membership change cannot split one request across two world views.
	rg := r.mem.current()
	groups := make(map[string]*shardGroup)
	var order []string // deterministic fan-out order
	for i, q := range qs {
		owners := rg.owners(q.U)
		if len(owners) == 0 {
			ferr = errUnavailable
			r.writeRouteError(w, errUnavailable)
			return
		}
		key := owners[0].ID
		grp := groups[key]
		if grp == nil {
			grp = &shardGroup{owners: owners}
			groups[key] = grp
			order = append(order, key)
		}
		grp.indices = append(grp.indices, i)
		grp.queries = append(grp.queries, q)
	}

	// Fan out the groups concurrently; each group runs the full
	// hedge/retry chain independently.
	type groupResult struct {
		grp *shardGroup
		res *fwdResult
		err error
	}
	results := make([]groupResult, len(order))
	var wg sync.WaitGroup
	for gi, key := range order {
		grp := groups[key]
		wg.Add(1)
		go func(gi int, grp *shardGroup) {
			defer wg.Done()
			body, err := json.Marshal(batchWire{Queries: grp.queries, Tol: tol})
			if err != nil {
				results[gi] = groupResult{grp: grp, err: err}
				return
			}
			res, err := r.forward(ctx, http.MethodPost, "/batch", body, grp.owners, areq)
			results[gi] = groupResult{grp: grp, res: res, err: err}
		}(gi, grp)
	}
	wg.Wait()

	// Merge: routing failures dominate (the whole batch fails honestly),
	// then shard-reported client errors pass through, then answers are
	// scattered back into request order.
	for _, gr := range results {
		if gr.err != nil {
			ferr = gr.err
			r.writeRouteError(w, gr.err)
			return
		}
	}
	for _, gr := range results {
		if gr.res.status != http.StatusOK {
			writeForwarded(w, gr.res)
			return
		}
	}
	// Version-skew gate: all contributing shards must have answered at the
	// same graph version, or the merge would mix two different graphs.
	mergedVer := ""
	for _, gr := range results {
		ver := gr.res.header.Get(versionHeader)
		if ver == "" {
			continue
		}
		if mergedVer == "" {
			mergedVer = ver
			continue
		}
		if ver != mergedVer {
			r.m.versionSkew.Add(1)
			admit.WriteDecision(w, admit.Decision{
				Status:     http.StatusConflict,
				RetryAfter: 1,
				Msg:        fmt.Sprintf("cluster: graph version skew across shards (%s vs %s); retry after replicas converge", mergedVer, ver),
			})
			return
		}
	}
	answers := make([]serve.Answer, len(qs))
	shardIDs := make([]string, 0, len(results))
	kinds := make([]string, 0, len(results))
	for _, gr := range results {
		var body batchAnswers
		if err := json.Unmarshal(gr.res.body, &body); err != nil || len(body.Answers) != len(gr.grp.indices) {
			r.m.badUpstream.Add(1)
			writeJSON(w, http.StatusBadGateway, errorBody{
				Error: fmt.Sprintf("cluster: shard %s returned a malformed batch response", gr.res.shard.ID),
			})
			return
		}
		for j, idx := range gr.grp.indices {
			answers[idx] = body.Answers[j]
		}
		shardIDs = appendUnique(shardIDs, gr.res.shard.ID)
		if kind := gr.res.header.Get(solverHeader); kind != "" {
			kinds = appendUnique(kinds, kind)
		}
	}
	sort.Strings(shardIDs)
	sort.Strings(kinds)
	w.Header().Set(shardHeader, strings.Join(shardIDs, ","))
	if len(kinds) > 0 {
		w.Header().Set(solverHeader, strings.Join(kinds, ","))
	}
	if mergedVer != "" {
		w.Header().Set(versionHeader, mergedVer)
	}
	writeJSON(w, http.StatusOK, batchAnswers{Answers: answers})
}

func appendUnique(s []string, v string) []string {
	for _, have := range s {
		if have == v {
			return s
		}
	}
	return append(s, v)
}

type shardHealth struct {
	ID      string `json:"id"`
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
	// GraphVersion is the shard's graph version from its last successful
	// probe (0 before any). Divergent values are expected transiently
	// while a mutation propagates; the /batch merge gate turns them into
	// 409s instead of mixed answers.
	GraphVersion uint64 `json:"graph_version,omitempty"`
}

type clusterHealth struct {
	Status   string        `json:"status"` // ok | degraded | unavailable
	Shards   []shardHealth `json:"shards"`
	Healthy  int           `json:"healthy"`
	Vertices int64         `json:"vertices"` // 0 until a probe reports it
	// Router-edge admission load, split by SLO tier.
	Inflight           int `json:"inflight"`
	PremiumInflight    int `json:"premium_inflight"`
	BestEffortInflight int `json:"besteffort_inflight"`
	QuotaClients       int `json:"quota_clients"`
}

func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	shards, healthy := r.mem.snapshot()
	body := clusterHealth{
		Vertices:           r.n.Load(),
		Inflight:           r.adm.Inflight(),
		PremiumInflight:    r.adm.InflightTier(admit.Premium),
		BestEffortInflight: r.adm.InflightTier(admit.BestEffort),
		QuotaClients:       r.adm.Clients(),
	}
	for i, sh := range shards {
		body.Shards = append(body.Shards, shardHealth{
			ID: sh.ID, Addr: sh.Addr, Healthy: healthy[i],
			GraphVersion: r.vers[sh.ID].Load(),
		})
		if healthy[i] {
			body.Healthy++
		}
	}
	switch {
	case body.Healthy == len(shards):
		body.Status = "ok"
	case body.Healthy > 0:
		body.Status = "degraded"
	default:
		body.Status = "unavailable"
	}
	writeJSON(w, http.StatusOK, body)
}

func (r *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = r.cfg.Metrics.WriteJSON(w)
}
