package cluster

import (
	"sort"
	"sync"
	"time"

	"parapsp/internal/obs"
)

// latencyWindowSize is the per-shard sample window backing the adaptive
// hedge delay. 64 recent successes: enough to make the p90 stable, small
// enough that a recovered shard sheds its bad history within a second of
// normal traffic.
const latencyWindowSize = 64

// latencyWindow tracks one shard's recent successful request latencies.
// observe() is taken on every 200 the router receives from the shard;
// p90() backs the hedging policy. The cumulative timing (count + sum_ns)
// is published through the metrics registry so the hedge policy's inputs
// are externally visible.
type latencyWindow struct {
	mu     sync.Mutex
	buf    [latencyWindowSize]time.Duration
	filled int
	next   int
	timing obs.Timing
}

func newLatencyWindow(t obs.Timing) *latencyWindow {
	return &latencyWindow{timing: t}
}

func (l *latencyWindow) observe(d time.Duration) {
	l.timing.Observe(int64(d))
	l.mu.Lock()
	l.buf[l.next] = d
	l.next = (l.next + 1) % latencyWindowSize
	if l.filled < latencyWindowSize {
		l.filled++
	}
	l.mu.Unlock()
}

// p90 returns the 90th-percentile latency over the window, or false when
// no sample has been recorded yet.
func (l *latencyWindow) p90() (time.Duration, bool) {
	l.mu.Lock()
	n := l.filled
	var tmp [latencyWindowSize]time.Duration
	copy(tmp[:n], l.buf[:n])
	l.mu.Unlock()
	if n == 0 {
		return 0, false
	}
	s := tmp[:n]
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(n*9)/10], true
}
