package cluster

import (
	"sort"
	"sync"
	"sync/atomic"
)

// vnodesPerShard is the number of ring points each shard contributes.
// 64 points over ≤ a few dozen shards keeps the max/mean source-ownership
// imbalance under ~1.3 (TestRingBalance pins it) while a membership
// rebuild stays microseconds.
const vnodesPerShard = 64

// hash64 is FNV-1a with a splitmix64 finalizer. Plain FNV spreads poorly
// over the short, near-identical keys the ring feeds it ("s0#17",
// sequential vertex ids) — enough to skew shard ownership ~2x — so the
// finalizer avalanches the bits before they become circle positions.
// Speed and spread, not cryptographic strength.
func hash64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return fmix64(h)
}

// hashSource places a source vertex on the ring circle.
func hashSource(src int32) uint64 {
	return fmix64(uint64(uint32(src)) ^ 0x9e3779b97f4a7c15)
}

// fmix64 is the splitmix64 output permutation: a cheap full-avalanche
// bijection on uint64.
func fmix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// ring is an immutable consistent-hash ring over the currently healthy
// shards. Membership changes build a new ring and swap it atomically, so
// lookups never lock: a request routed mid-update sees either the old or
// the new ring, both internally consistent.
type ring struct {
	points []ringPoint
	shards []Shard // healthy shards, in stable membership order
}

type ringPoint struct {
	hash  uint64
	shard int32 // index into shards
}

func buildRing(healthy []Shard) *ring {
	r := &ring{shards: healthy}
	if len(healthy) == 0 {
		return r
	}
	r.points = make([]ringPoint, 0, len(healthy)*vnodesPerShard)
	for si, sh := range healthy {
		for v := 0; v < vnodesPerShard; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(sh.ID + "#" + itoa(v)),
				shard: int32(si),
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on shard index so equal hashes order deterministically.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// itoa avoids strconv in the rebuild loop's import footprint creep; vnode
// counts are tiny.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// owners returns every healthy shard in preference order for src: the
// ring walk starting at src's point, first-occurrence-distinct. Index 0
// is the owner; the rest are the hedge/retry chain. Returns nil when the
// ring is empty.
func (r *ring) owners(src int32) []Shard {
	if len(r.points) == 0 {
		return nil
	}
	h := hashSource(src)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	out := make([]Shard, 0, len(r.shards))
	seen := make([]bool, len(r.shards))
	for n := 0; n < len(r.points) && len(out) < len(r.shards); n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, r.shards[p.shard])
		}
	}
	return out
}

// membership is the mutable shard table behind the atomic ring pointer.
// Health transitions rebuild the ring under the mutex; readers only touch
// the pointer.
type membership struct {
	mu      sync.Mutex
	shards  []Shard
	healthy []bool
	ring    atomic.Pointer[ring]
}

func newMembership(shards []Shard) *membership {
	m := &membership{
		shards:  append([]Shard(nil), shards...),
		healthy: make([]bool, len(shards)),
	}
	for i := range m.healthy {
		m.healthy[i] = true
	}
	m.rebuildLocked()
	return m
}

// rebuildLocked swaps in a ring over the currently healthy shards; the
// caller holds mu.
func (m *membership) rebuildLocked() {
	var live []Shard
	for i, ok := range m.healthy {
		if ok {
			live = append(live, m.shards[i])
		}
	}
	m.ring.Store(buildRing(live))
}

// setHealthy transitions one shard's health, rebuilding the ring on
// change. It reports whether the state actually flipped, so callers can
// count up/down transitions exactly once.
func (m *membership) setHealthy(id string, ok bool) (changed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, sh := range m.shards {
		if sh.ID != id {
			continue
		}
		if m.healthy[i] == ok {
			return false
		}
		m.healthy[i] = ok
		m.rebuildLocked()
		return true
	}
	return false
}

// current returns the live ring snapshot.
func (m *membership) current() *ring { return m.ring.Load() }

// healthyCount returns the number of shards currently in the ring.
func (m *membership) healthyCount() int {
	return len(m.current().shards)
}

// snapshot copies the table for /healthz reporting.
func (m *membership) snapshot() ([]Shard, []bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Shard(nil), m.shards...), append([]bool(nil), m.healthy...)
}
