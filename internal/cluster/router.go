package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"parapsp/internal/admit"
	"parapsp/internal/obs"
)

// errUnavailable is the terminal routing failure: every owner in the
// hedge/retry chain was tried (or the ring is empty) and none answered.
// The HTTP layer maps it to 503 + Retry-After — the only path to a 503.
var errUnavailable = errors.New("cluster: no owning shard reachable")

// maxFwdBody bounds one shard response the router will buffer; a /batch
// of 256 answers is a few tens of KB, so 8 MiB flags a broken upstream
// rather than truncating a real one.
const maxFwdBody = 8 << 20

// Config tunes a Router. The zero value (plus a shard list) probes every
// 250ms, hedges adaptively at the owner's p90 latency, allows 3 attempts
// per subrequest, and times requests out after 30s.
type Config struct {
	// Shards is the cluster membership. IDs must be unique; consistent
	// hashing keys on them, so a replica keeps its ring segment across
	// address changes iff its ID is stable.
	Shards []Shard
	// HedgeAfter, when positive, is a fixed delay before a second request
	// is hedged to the next owner. Zero selects the adaptive policy: the
	// primary owner's p90 latency over its last 64 successes, clamped to
	// [HedgeMin, HedgeMax] (25ms before any sample exists).
	HedgeAfter time.Duration
	// HedgeMin/HedgeMax clamp the adaptive hedge delay (defaults 2ms and
	// 250ms).
	HedgeMin, HedgeMax time.Duration
	// MaxAttempts bounds the shards tried per subrequest — the first
	// attempt plus hedges plus retries, each to a distinct owner (default
	// 3, never more than the healthy shard count).
	MaxAttempts int
	// RetryBackoff is the delay before re-routing a failed subrequest to
	// the next surviving owner, doubling per retry (default 5ms).
	RetryBackoff time.Duration
	// RequestTimeout is the per-request deadline applied when the client
	// sends none (default 30s). Requests never hang past it: expiry
	// cancels every in-flight subrequest and answers 504.
	RequestTimeout time.Duration
	// ProbeInterval is the health-probe period (default 250ms);
	// ProbeTimeout bounds one probe round-trip (default 2s).
	ProbeInterval, ProbeTimeout time.Duration
	// MaxBatch bounds the queries accepted in one /batch (default 256).
	MaxBatch int
	// MaxInflight bounds concurrently admitted requests at the router edge
	// (default 256 — a router fans out, so it runs wider than one shard).
	// Excess requests answer 429 + Retry-After instead of queueing.
	MaxInflight int
	// BestEffortShare is the fraction of MaxInflight best-effort requests
	// may occupy (default 0.75, see admit.Config); the rest is the premium
	// reserve.
	BestEffortShare float64
	// QuotaRPS is the per-client token-bucket refill rate at the router
	// edge; 0 disables router-side quotas (shard-side quotas still apply
	// and are passed through faithfully). QuotaBurst is the bucket depth
	// (default ceil(QuotaRPS)).
	QuotaRPS   float64
	QuotaBurst int
	// TierHeader is the request header carrying the SLO tier label
	// (default X-Parapsp-Tier). Whatever header name is accepted here, the
	// router always forwards the canonical X-Parapsp-Tier to shards and
	// echoes it on responses.
	TierHeader string
	// Metrics receives the cluster.* counters; nil creates a private
	// registry.
	Metrics *obs.Metrics
	// Client overrides the forwarding HTTP client (tests); nil builds one
	// with a dedicated transport.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.HedgeMin <= 0 {
		c.HedgeMin = 2 * time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = 250 * time.Millisecond
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 256
	}
	if c.MaxInflight < 1 {
		c.MaxInflight = 256
	}
	if c.TierHeader == "" {
		c.TierHeader = admit.DefaultTierHeader
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewMetrics()
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 32,
		}}
	}
	return c
}

// routerMetrics holds the cluster.* counter handles. The reconciliation
// invariant the chaos test pins: every subrequest attempt lands in exactly
// one terminal bucket, so routed == merged + hedge_cancelled + failed.
type routerMetrics struct {
	requests, badRequests, unavailable, deadlines *obs.Counter
	throttled, badUpstream                        *obs.Counter
	routed, merged, hedgeCancelled, failed        *obs.Counter
	hedges, retries                               *obs.Counter
	probes, probeFailures, probeMismatch          *obs.Counter
	shardUp, shardDown, shardsHealthy             *obs.Counter
	versionSkew                                   *obs.Counter
}

func newRouterMetrics(reg *obs.Metrics) *routerMetrics {
	return &routerMetrics{
		requests:    reg.Counter("cluster.requests"),
		badRequests: reg.Counter("cluster.bad_requests"),
		unavailable: reg.Counter("cluster.unavailable"),
		deadlines:   reg.Counter("cluster.deadlines"),
		// throttled counts the router's own admission rejections (quota or
		// inflight), the edge mirror of serve.throttled.
		throttled:   reg.Counter("cluster.throttled"),
		badUpstream: reg.Counter("cluster.bad_upstream"),
		// The attempt ledger: routed counts every subrequest sent to a
		// shard; merged the one whose response was used, hedge_cancelled
		// the race losers, failed the genuine errors. Always balances.
		routed:         reg.Counter("cluster.routed"),
		merged:         reg.Counter("cluster.merged"),
		hedgeCancelled: reg.Counter("cluster.hedge_cancelled"),
		failed:         reg.Counter("cluster.failed"),
		hedges:         reg.Counter("cluster.hedges"),
		retries:        reg.Counter("cluster.retries"),
		probes:         reg.Counter("cluster.probes"),
		probeFailures:  reg.Counter("cluster.probe_failures"),
		probeMismatch:  reg.Counter("cluster.probe_mismatch"),
		shardUp:        reg.Counter("cluster.shard_up"),
		shardDown:      reg.Counter("cluster.shard_down"),
		shardsHealthy:  reg.Counter("cluster.shards_healthy"),
		// version_skew counts /batch merges refused (409) because the
		// contributing shards answered at different graph versions.
		versionSkew: reg.Counter("cluster.version_skew"),
	}
}

// Router is the stateless cluster front end. It owns membership and the
// consistent-hash ring, nothing else: no rows, no cache, no graph. Any
// instance can be restarted or replicated freely.
type Router struct {
	cfg    Config
	mem    *membership
	m      *routerMetrics
	lat    map[string]*latencyWindow
	client *http.Client
	// adm is the shared admission layer at the router edge: the same
	// quotas/tiers/ledger machinery the shards run, so a request rejected
	// here never costs a shard round trip. See internal/admit.
	adm *admit.Admitter
	// n is the graph order adopted from the first successful probe
	// (0 = unknown); shards reporting a different order are refused as
	// misconfigured. Used to 400 out-of-range queries at the edge.
	n atomic.Int64
	// vers tracks each shard's last-probed graph version (0 = unknown),
	// keyed by shard ID. Purely observational — /healthz exposes it and
	// operators watch it converge after mutations; the authoritative skew
	// gate reads the versions off the actual merged responses instead,
	// because a probe is always a little stale. Fixed key set after New,
	// so reads need no lock.
	vers map[string]*atomic.Uint64

	stopProbe            chan struct{}
	probeWG              sync.WaitGroup
	startOnce, closeOnce sync.Once
}

// New validates the membership table and builds a router with every shard
// initially in the ring. Call Start to begin health probing; without it
// membership only changes on observed transport failures.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("%w: empty shard list", ErrConfig)
	}
	ids := make(map[string]bool, len(cfg.Shards))
	addrs := make(map[string]bool, len(cfg.Shards))
	for _, sh := range cfg.Shards {
		if err := checkID(sh.ID); err != nil {
			return nil, err
		}
		if err := checkAddr(sh.Addr); err != nil {
			return nil, err
		}
		if ids[sh.ID] {
			return nil, fmt.Errorf("%w: duplicate shard id %q", ErrConfig, sh.ID)
		}
		if addrs[sh.Addr] {
			return nil, fmt.Errorf("%w: duplicate shard address %q", ErrConfig, sh.Addr)
		}
		ids[sh.ID], addrs[sh.Addr] = true, true
	}
	cfg = cfg.withDefaults()
	r := &Router{
		cfg:    cfg,
		mem:    newMembership(cfg.Shards),
		m:      newRouterMetrics(cfg.Metrics),
		lat:    make(map[string]*latencyWindow, len(cfg.Shards)),
		vers:   make(map[string]*atomic.Uint64, len(cfg.Shards)),
		client: cfg.Client,
		adm: admit.New(admit.Config{
			MaxInflight:     cfg.MaxInflight,
			BestEffortShare: cfg.BestEffortShare,
			QuotaRPS:        cfg.QuotaRPS,
			QuotaBurst:      cfg.QuotaBurst,
			RequestTimeout:  cfg.RequestTimeout,
			Metrics:         cfg.Metrics,
		}),
		stopProbe: make(chan struct{}),
	}
	for _, sh := range cfg.Shards {
		r.lat[sh.ID] = newLatencyWindow(cfg.Metrics.Timing("cluster.shard." + sh.ID + ".latency"))
		r.vers[sh.ID] = new(atomic.Uint64)
	}
	r.m.shardsHealthy.Set(int64(r.mem.healthyCount()))
	return r, nil
}

// Metrics returns the registry the router publishes into.
func (r *Router) Metrics() *obs.Metrics { return r.cfg.Metrics }

// Healthy returns the number of shards currently in the ring.
func (r *Router) Healthy() int { return r.mem.healthyCount() }

// setShardHealth applies one health observation, counting the transition
// and refreshing the healthy gauge iff the state flipped.
func (r *Router) setShardHealth(id string, ok bool) {
	if !r.mem.setHealthy(id, ok) {
		return
	}
	if ok {
		r.m.shardUp.Add(1)
	} else {
		r.m.shardDown.Add(1)
	}
	r.m.shardsHealthy.Set(int64(r.mem.healthyCount()))
}

// order returns the graph order for edge validation, or MaxInt32 before
// any probe has reported one (the shards then do the range checking).
func (r *Router) order() int {
	if n := r.n.Load(); n > 0 {
		return int(n)
	}
	return math.MaxInt32
}

// withDeadline applies the configured request timeout when the caller's
// context has no deadline of its own — delegated to the shared admission
// layer so routers and shards propagate deadlines identically.
func (r *Router) withDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	return r.adm.WithDeadline(ctx)
}

// fwdResult is one completed subrequest attempt.
type fwdResult struct {
	shard  Shard
	status int
	header http.Header
	body   []byte
	err    error
}

// usable reports whether an attempt's response settles the subrequest:
// a success, or a client error to pass through verbatim. Backpressure
// 429s and every 5xx are retryable — another replica can do better — but
// a quota 429 (X-Parapsp-Reject: quota) passes through: it is the shard
// enforcing the client's own rate limit, deterministic for that client,
// and retrying it elsewhere would just burn another replica's tokens for
// the same verdict.
func usable(res *fwdResult) bool {
	if res.err != nil {
		return false
	}
	if res.status == http.StatusTooManyRequests {
		return res.header.Get(admit.RejectHeader) == "quota"
	}
	return res.status == http.StatusOK ||
		(res.status >= 400 && res.status < 500)
}

// attempt performs one HTTP round trip to one shard, forwarding the
// admitted identity (canonical client and tier headers) so shard-side
// quotas and SLO policy apply to the end client, not to the router. A
// transport failure outside the caller's own cancellation evicts the
// shard from the ring immediately (the prober readmits it when /healthz
// answers again), so the very next request already routes around a
// SIGKILLed replica.
func (r *Router) attempt(ctx context.Context, sh Shard, method, uri string, body []byte, areq admit.Request) *fwdResult {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, sh.URL()+uri, rd)
	if err != nil {
		return &fwdResult{shard: sh, err: err}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if areq.Client != "" {
		req.Header.Set(admit.ClientHeader, areq.Client)
	}
	req.Header.Set(admit.DefaultTierHeader, areq.Tier.String())
	start := time.Now()
	resp, err := r.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			r.setShardHealth(sh.ID, false)
		}
		return &fwdResult{shard: sh, err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxFwdBody+1))
	if err != nil || len(data) > maxFwdBody {
		if err == nil {
			err = fmt.Errorf("cluster: shard %s response exceeds %d bytes", sh.ID, maxFwdBody)
		}
		return &fwdResult{shard: sh, err: err}
	}
	if resp.StatusCode == http.StatusOK {
		r.lat[sh.ID].observe(time.Since(start))
	}
	return &fwdResult{shard: sh, status: resp.StatusCode, header: resp.Header, body: data}
}

// hedgeDelay returns how long to wait on the primary before hedging.
func (r *Router) hedgeDelay(primary Shard) time.Duration {
	if r.cfg.HedgeAfter > 0 {
		return r.cfg.HedgeAfter
	}
	d, ok := r.lat[primary.ID].p90()
	if !ok {
		d = 25 * time.Millisecond
	}
	if d < r.cfg.HedgeMin {
		d = r.cfg.HedgeMin
	}
	if d > r.cfg.HedgeMax {
		d = r.cfg.HedgeMax
	}
	return d
}

// forward resolves one subrequest against an owner chain: attempt the
// primary, hedge to the next owner once the hedge delay expires, retry
// with doubling backoff on failures, first usable response wins. Every
// attempt is accounted terminally — the winner as merged, race losers as
// hedge_cancelled, everything else as failed — so the attempt ledger
// balances by construction. Returns errUnavailable when the chain is
// exhausted and ctx.Err() when the deadline expires first.
func (r *Router) forward(ctx context.Context, method, uri string, body []byte, owners []Shard, areq admit.Request) (*fwdResult, error) {
	if len(owners) == 0 {
		return nil, errUnavailable
	}
	maxAtt := r.cfg.MaxAttempts
	if maxAtt > len(owners) {
		maxAtt = len(owners)
	}
	ctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	results := make(chan *fwdResult, maxAtt)
	var wg sync.WaitGroup
	launched, consumed := 0, 0
	launch := func() {
		sh := owners[launched]
		launched++
		r.m.routed.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- r.attempt(ctx, sh, method, uri, body, areq)
		}()
	}
	launch()

	// settle cancels stragglers, joins every attempt goroutine, and
	// drains their results into the given terminal bucket. No goroutine
	// outlives the request — the leak test holds the router to that.
	settle := func(bucket *obs.Counter) {
		cancelAll()
		wg.Wait()
		for ; consumed < launched; consumed++ {
			<-results
			bucket.Add(1)
		}
	}

	var hedgeC <-chan time.Time
	if maxAtt > 1 {
		t := time.NewTimer(r.hedgeDelay(owners[0]))
		defer t.Stop()
		hedgeC = t.C
	}
	var retryC <-chan time.Time
	var retryTimer *time.Timer
	defer func() {
		if retryTimer != nil {
			retryTimer.Stop()
		}
	}()
	backoff := r.cfg.RetryBackoff
	inflight := 1
	for inflight > 0 || retryC != nil {
		select {
		case res := <-results:
			inflight--
			consumed++
			if usable(res) {
				r.m.merged.Add(1)
				settle(r.m.hedgeCancelled)
				return res, nil
			}
			r.m.failed.Add(1)
			if launched < maxAtt && retryC == nil {
				retryTimer = time.NewTimer(backoff)
				retryC = retryTimer.C
				backoff *= 2
			}
		case <-hedgeC:
			hedgeC = nil
			if launched < maxAtt {
				r.m.hedges.Add(1)
				launch()
				inflight++
			}
		case <-retryC:
			retryC = nil
			if launched < maxAtt {
				r.m.retries.Add(1)
				launch()
				inflight++
			}
		case <-ctx.Done():
			// Deadline or client walked away: there is no winner, so every
			// abandoned attempt is a failure, not a cancelled hedge.
			settle(r.m.failed)
			return nil, ctx.Err()
		}
	}
	return nil, errUnavailable
}
