// Package cluster shards parapspd across machines: a stateless
// router/coordinator owns shard membership (consistent hashing on source
// id over N parapspd replicas), fans /dist, /path and /batch requests out
// to the owning shards, merges rows, and stays correct under failure.
//
// The decomposition is the one internal/dist validates as a single-machine
// simulation and the paper names as future work: partition the *source*
// space. Every shard serves the same graph; ownership only decides which
// replica's row cache warms for a source, so any surviving replica can
// answer any query exactly — failover changes latency, never answers.
// That is what makes the router stateless: it holds no rows, only
// membership, and correctness under a SIGKILLed shard reduces to "retry
// the subrequest on the next owner".
//
// Failure handling, in order of escalation: per-shard health probes
// (consuming the /healthz draining flag, so a draining shard leaves the
// ring before its final 503), hedged requests after a per-shard latency
// percentile, bounded retry with backoff to a surviving replica, and
// 503-with-Retry-After only when no owner is reachable. Every subrequest
// attempt is accounted into exactly one of three cluster.* counters, so
// the books always balance: routed == merged + hedge_cancelled + failed.
package cluster

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
)

// ErrConfig marks shard-membership parse/validation failures. Anything
// wrapping it is a startup error (or a 4xx on a future reconfiguration
// endpoint), never a panic — FuzzParseShardConfig pins that contract.
var ErrConfig = errors.New("cluster: bad shard config")

// Shard is one parapspd replica in the membership table.
type Shard struct {
	// ID is the stable shard name consistent hashing keys on. Moving a
	// replica to a new address keeps its ring segment iff the ID is kept.
	ID string
	// Addr is the replica's host:port.
	Addr string
}

// URL returns the shard's base HTTP URL.
func (s Shard) URL() string { return "http://" + s.Addr }

func (s Shard) String() string { return s.ID + "=" + s.Addr }

// maxShards bounds a parsed membership list; beyond this the config is
// almost certainly malformed input, not a real cluster.
const maxShards = 1024

// ParseShards parses a comma-separated shard list, each entry either
// "id=host:port" or bare "host:port" (ids auto-assigned s0, s1, ... in
// list order). IDs must be non-empty [A-Za-z0-9._-] and unique; addresses
// must split into a non-empty host and a numeric port in [1,65535] and be
// unique. Every error wraps ErrConfig.
func ParseShards(s string) ([]Shard, error) {
	entries := strings.Split(s, ",")
	shards := make([]Shard, 0, len(entries))
	ids := make(map[string]bool)
	addrs := make(map[string]bool)
	for i, e := range entries {
		e = strings.TrimSpace(e)
		if e == "" {
			return nil, fmt.Errorf("%w: empty entry at position %d", ErrConfig, i)
		}
		id, addr := fmt.Sprintf("s%d", len(shards)), e
		if at := strings.IndexByte(e, '='); at >= 0 {
			id, addr = e[:at], e[at+1:]
			if err := checkID(id); err != nil {
				return nil, err
			}
		}
		if err := checkAddr(addr); err != nil {
			return nil, err
		}
		if ids[id] {
			return nil, fmt.Errorf("%w: duplicate shard id %q", ErrConfig, id)
		}
		if addrs[addr] {
			return nil, fmt.Errorf("%w: duplicate shard address %q", ErrConfig, addr)
		}
		ids[id] = true
		addrs[addr] = true
		shards = append(shards, Shard{ID: id, Addr: addr})
		if len(shards) > maxShards {
			return nil, fmt.Errorf("%w: more than %d shards", ErrConfig, maxShards)
		}
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("%w: empty shard list", ErrConfig)
	}
	return shards, nil
}

func checkID(id string) error {
	if id == "" {
		return fmt.Errorf("%w: empty shard id", ErrConfig)
	}
	if len(id) > 64 {
		return fmt.Errorf("%w: shard id longer than 64 bytes", ErrConfig)
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("%w: shard id %q: invalid character %q", ErrConfig, id, r)
		}
	}
	return nil
}

func checkAddr(addr string) error {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("%w: address %q: %v", ErrConfig, addr, err)
	}
	if host == "" {
		return fmt.Errorf("%w: address %q: empty host", ErrConfig, addr)
	}
	p, err := strconv.Atoi(port)
	if err != nil || p < 1 || p > 65535 {
		return fmt.Errorf("%w: address %q: port must be in [1,65535]", ErrConfig, addr)
	}
	return nil
}
