package cluster

import (
	"fmt"
	"testing"
)

func testShards(n int) []Shard {
	shards := make([]Shard, n)
	for i := range shards {
		shards[i] = Shard{ID: fmt.Sprintf("s%d", i), Addr: fmt.Sprintf("127.0.0.1:%d", 8081+i)}
	}
	return shards
}

func TestRingDeterministic(t *testing.T) {
	a := buildRing(testShards(5))
	b := buildRing(testShards(5))
	for src := int32(0); src < 500; src++ {
		oa, ob := a.owners(src), b.owners(src)
		if len(oa) != 5 || len(ob) != 5 {
			t.Fatalf("owners(%d) lengths %d/%d, want 5", src, len(oa), len(ob))
		}
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("owners(%d) differ between identical rings: %v vs %v", src, oa, ob)
			}
		}
	}
}

func TestRingOwnersDistinct(t *testing.T) {
	r := buildRing(testShards(4))
	for src := int32(0); src < 200; src++ {
		seen := map[string]bool{}
		for _, sh := range r.owners(src) {
			if seen[sh.ID] {
				t.Fatalf("owners(%d) repeats shard %s", src, sh.ID)
			}
			seen[sh.ID] = true
		}
		if len(seen) != 4 {
			t.Fatalf("owners(%d) covers %d of 4 shards", src, len(seen))
		}
	}
}

// TestRingBalance pins the vnode count's load guarantee: over a large
// source space, the most-loaded shard owns at most ~1.6x the mean. A
// regression here (e.g. dropping vnodes to 1) would silently turn one
// shard into a hotspot.
func TestRingBalance(t *testing.T) {
	const n, sources = 5, 20000
	r := buildRing(testShards(n))
	counts := map[string]int{}
	for src := int32(0); src < sources; src++ {
		counts[r.owners(src)[0].ID]++
	}
	mean := float64(sources) / n
	for id, c := range counts {
		if f := float64(c) / mean; f > 1.6 || f < 0.4 {
			t.Fatalf("shard %s owns %d sources (%.2fx mean); distribution %v", id, c, f, counts)
		}
	}
}

// TestRingConsistency is the property that names the technique: removing
// one shard only remaps the sources that shard owned. Everything else
// keeps its owner, so a failure invalidates 1/N of the cache warmth, not
// all of it.
func TestRingConsistency(t *testing.T) {
	shards := testShards(5)
	full := buildRing(shards)
	without := buildRing(append(append([]Shard(nil), shards[:2]...), shards[3:]...))
	removed := shards[2].ID
	moved := 0
	for src := int32(0); src < 5000; src++ {
		before := full.owners(src)[0]
		after := without.owners(src)[0]
		if before.ID == removed {
			moved++
			continue // this source had to move
		}
		if after != before {
			t.Fatalf("source %d moved from %s to %s though %s was the shard removed",
				src, before.ID, after.ID, removed)
		}
	}
	if moved == 0 {
		t.Fatal("removed shard owned no sources; balance test should have caught this")
	}
}

// TestRingFailoverChain: when a shard dies, the sources it owned fail
// over to the shard that was next in their owner chain — the same shard
// a hedged or retried request would already have been sent to.
func TestRingFailoverChain(t *testing.T) {
	shards := testShards(4)
	full := buildRing(shards)
	dead := shards[1]
	var live []Shard
	for _, sh := range shards {
		if sh.ID != dead.ID {
			live = append(live, sh)
		}
	}
	degraded := buildRing(live)
	for src := int32(0); src < 2000; src++ {
		chain := full.owners(src)
		if chain[0].ID != dead.ID {
			continue
		}
		if got, want := degraded.owners(src)[0], chain[1]; got != want {
			t.Fatalf("source %d failed over to %s, want next-in-chain %s", src, got.ID, want.ID)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	if owners := buildRing(nil).owners(7); owners != nil {
		t.Fatalf("empty ring returned owners %v", owners)
	}
}

func TestMembershipTransitions(t *testing.T) {
	m := newMembership(testShards(3))
	if got := m.healthyCount(); got != 3 {
		t.Fatalf("fresh membership: %d healthy, want 3", got)
	}
	if !m.setHealthy("s1", false) {
		t.Fatal("marking s1 down reported no change")
	}
	if m.setHealthy("s1", false) {
		t.Fatal("re-marking s1 down reported a change")
	}
	if got := m.healthyCount(); got != 2 {
		t.Fatalf("%d healthy after one down, want 2", got)
	}
	for src := int32(0); src < 500; src++ {
		for _, sh := range m.current().owners(src) {
			if sh.ID == "s1" {
				t.Fatalf("unhealthy shard s1 still owns source %d", src)
			}
		}
	}
	if !m.setHealthy("s1", true) {
		t.Fatal("recovering s1 reported no change")
	}
	if got := m.healthyCount(); got != 3 {
		t.Fatalf("%d healthy after recovery, want 3", got)
	}
	if m.setHealthy("unknown", false) {
		t.Fatal("unknown shard id reported a change")
	}
}
