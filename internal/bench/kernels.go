package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"parapsp/internal/core"
	"parapsp/internal/kernel"
	"parapsp/internal/matrix"
)

// The kernels experiment benchmarks the min-plus fold kernels of
// internal/kernel against the scalar element loop the solver originally
// used, then runs the full ParAPSP solve to show the kernelized hot path
// changes nothing observable (same checksum) while skipping work the
// counters make visible.

func init() {
	register(Experiment{
		ID:     "kernels",
		Paper:  "ours (hot path)",
		Title:  "Fold-kernel microbenchmarks and kernelized ParAPSP end-to-end",
		Expect: "blocked kernel beats the scalar loop on scattered-Inf rows; indexed kernel wins big on sparse rows; end-to-end checksum unchanged",
		Run:    runKernels,
	})
}

// KernelReport is the machine-readable result of the kernels experiment,
// written to BENCH_PR1.json by cmd/apspbench -benchjson.
type KernelReport struct {
	// RowLen is the row length of the microbenchmark rows; Rotation the
	// number of distinct source rows cycled (a single reused row would
	// let the branch predictor memorize its Inf pattern and flatter the
	// scalar loop).
	RowLen   int               `json:"row_len"`
	Rotation int               `json:"rotation"`
	Fold     []FoldBenchResult `json:"fold_kernel"`
	EndToEnd []EndToEndResult  `json:"end_to_end_parapsp"`
	// TraceOverhead compares instrumented against uninstrumented solves
	// (the PR 2 acceptance numbers); Metrics is the counter snapshot of
	// the last instrumented run, merged in for one-stop -benchjson output.
	TraceOverhead []TraceOverheadResult `json:"trace_overhead"`
	Metrics       map[string]int64      `json:"metrics"`
}

// FoldBenchResult compares the kernel against the scalar reference on one
// row shape.
type FoldBenchResult struct {
	Case        string  `json:"case"`
	Density     float64 `json:"density"`
	RefNsPerOp  float64 `json:"ref_ns_per_op"`
	KernNsPerOp float64 `json:"kernel_ns_per_op"`
	Speedup     float64 `json:"speedup"`
}

// EndToEndResult is one full ParAPSP solve with the kernelized hot path.
type EndToEndResult struct {
	Dataset            string `json:"dataset"`
	Vertices           int    `json:"vertices"`
	Workers            int    `json:"workers"`
	ElapsedNs          int64  `json:"elapsed_ns"`
	Checksum           uint64 `json:"checksum"`
	Folds              int64  `json:"folds"`
	FoldBatches        int64  `json:"fold_batches"`
	FoldsSkipped       int64  `json:"folds_skipped"`
	FoldEntriesSkipped int64  `json:"fold_entries_skipped"`
}

const (
	kernelBenchRowLen = 4096
	kernelBenchRot    = 16
	kernelBenchIters  = 5000
)

// foldBenchCase measures ref and kernel ns/op on rotating rows of the
// given finite density; indexed selects the gather kernel instead of the
// blocked sweep. The reference is always the scalar element loop.
func foldBenchCase(name string, density float64, indexed bool) FoldBenchResult {
	rng := rand.New(rand.NewSource(42))
	dst := make([]matrix.Dist, kernelBenchRowLen)
	for i := range dst {
		dst[i] = matrix.Dist(1 + rng.Intn(4)) // already small: folds no-op
	}
	srcs := make([][]matrix.Dist, kernelBenchRot)
	idxs := make([][]int32, kernelBenchRot)
	for k := range srcs {
		src := make([]matrix.Dist, kernelBenchRowLen)
		var idx []int32
		for i := range src {
			if rng.Float64() < density {
				src[i] = matrix.Dist(1 + rng.Intn(1000))
				idx = append(idx, int32(i))
			} else {
				src[i] = matrix.Inf
			}
		}
		srcs[k], idxs[k] = src, idx
	}

	var kern func(k int)
	switch {
	case indexed:
		kern = func(k int) { kernel.FoldRowIndexed(dst, srcs[k], 7, idxs[k]) }
	case density >= 1:
		// Fully finite rows take the proven-unsaturated fast path in the
		// solver (core.foldRow), so that is what the dense case times.
		kern = func(k int) { kernel.FoldRowNoSat(dst, srcs[k], 7) }
	default:
		kern = func(k int) { kernel.FoldRow(dst, srcs[k], 7) }
	}
	ref := func(k int) { kernel.FoldRowRef(dst, srcs[k], 7) }

	// Interleave the two measurements in chunks so clock-frequency drift
	// and scheduler noise land on both sides equally.
	const chunks = 10
	chunk := kernelBenchIters / chunks
	timeChunk := func(f func(k int)) time.Duration {
		start := time.Now()
		for i := 0; i < chunk; i++ {
			f(i % kernelBenchRot)
		}
		return time.Since(start)
	}
	for i := 0; i < chunk; i++ { // warmup both
		ref(i % kernelBenchRot)
		kern(i % kernelBenchRot)
	}
	var refTotal, kernTotal time.Duration
	for c := 0; c < chunks; c++ {
		refTotal += timeChunk(ref)
		kernTotal += timeChunk(kern)
	}

	res := FoldBenchResult{Case: name, Density: density}
	res.RefNsPerOp = float64(refTotal.Nanoseconds()) / float64(chunks*chunk)
	res.KernNsPerOp = float64(kernTotal.Nanoseconds()) / float64(chunks*chunk)
	if res.KernNsPerOp > 0 {
		res.Speedup = res.RefNsPerOp / res.KernNsPerOp
	}
	return res
}

// BuildKernelReport runs the fold microbenchmarks and the end-to-end
// ParAPSP solves and returns the structured report.
func BuildKernelReport(cfg Config) (*KernelReport, error) {
	cfg = cfg.normalized()
	rep := &KernelReport{RowLen: kernelBenchRowLen, Rotation: kernelBenchRot}
	rep.Fold = []FoldBenchResult{
		foldBenchCase("dense", 1.0, false),
		foldBenchCase("power-law", 0.3, false),
		foldBenchCase("sparse-indexed", 0.02, true),
	}

	g, err := synth(cfg, "WordNet", scaleAPSPWordNet, true)
	if err != nil {
		return nil, err
	}
	// Sequential baseline plus the widest configured worker count that the
	// machine can actually run in parallel (oversubscribing a small
	// container would only record scheduler thrash, not the hot path).
	threads := sortedCopy(cfg.Threads)
	widest := threads[0]
	for _, p := range threads {
		if p <= runtime.NumCPU() && p > widest {
			widest = p
		}
	}
	workers := []int{threads[0]}
	if widest != workers[0] {
		workers = append(workers, widest)
	}
	for _, w := range workers {
		var res *core.Result
		elapsed := Measure(cfg.Runs, w, func() {
			r, err2 := core.Solve(g, core.ParAPSP, core.Options{Workers: w})
			if err2 != nil {
				err = err2
				return
			}
			res = r
		})
		if err != nil {
			return nil, err
		}
		rep.EndToEnd = append(rep.EndToEnd, EndToEndResult{
			Dataset:            "WordNet",
			Vertices:           g.N(),
			Workers:            w,
			ElapsedNs:          elapsed.Nanoseconds(),
			Checksum:           res.D.Checksum(),
			Folds:              res.Stats.Folds,
			FoldBatches:        res.Stats.FoldBatches,
			FoldsSkipped:       res.Stats.FoldsSkipped,
			FoldEntriesSkipped: res.Stats.FoldEntriesSkipped,
		})
	}
	rep.TraceOverhead, rep.Metrics, err = buildTraceOverhead(cfg)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

func runKernels(cfg Config, w io.Writer) error {
	rep, err := BuildKernelReport(cfg)
	if err != nil {
		return err
	}
	ft := &Table{
		Title:  fmt.Sprintf("fold kernel vs scalar loop (%d-entry rows, %d-row rotation)", rep.RowLen, rep.Rotation),
		Header: []string{"case", "density", "scalar ns/op", "kernel ns/op", "speedup"},
	}
	for _, r := range rep.Fold {
		ft.AddRow(r.Case, r.Density, fmt.Sprintf("%.0f", r.RefNsPerOp),
			fmt.Sprintf("%.0f", r.KernNsPerOp), fmt.Sprintf("%.2fx", r.Speedup))
	}
	ft.Fprint(w)

	et := &Table{
		Title:  "end-to-end ParAPSP with the kernelized hot path",
		Header: []string{"dataset", "n", "workers", "elapsed", "checksum", "folds", "batches", "skipped", "entries skipped"},
	}
	for _, r := range rep.EndToEnd {
		et.AddRow(r.Dataset, r.Vertices, r.Workers, FormatDuration(time.Duration(r.ElapsedNs)),
			fmt.Sprintf("%016x", r.Checksum), r.Folds, r.FoldBatches, r.FoldsSkipped, r.FoldEntriesSkipped)
	}
	et.Fprint(w)

	ot := &Table{
		Title:  "obs recorder overhead on the same solve",
		Header: []string{"dataset", "workers", "disabled", "enabled", "overhead", "events", "dropped"},
	}
	for _, r := range rep.TraceOverhead {
		ot.AddRow(r.Dataset, r.Workers, FormatDuration(time.Duration(r.DisabledNs)),
			FormatDuration(time.Duration(r.EnabledNs)),
			fmt.Sprintf("%+.1f%%", r.OverheadPct), r.Events, r.DroppedSpans)
	}
	ot.Fprint(w)
	return nil
}

// WriteKernelReport runs the kernels experiment and writes its structured
// report as indented JSON to path (the BENCH_PR1.json artifact).
func WriteKernelReport(path string, cfg Config) error {
	rep, err := BuildKernelReport(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
