package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"parapsp/internal/analysis"
	"parapsp/internal/baseline"
	"parapsp/internal/core"
	"parapsp/internal/datasets"
	"parapsp/internal/dist"
	"parapsp/internal/gen"
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
	"parapsp/internal/oracle"
	"parapsp/internal/order"
	"parapsp/internal/sched"
	"parapsp/internal/stats"
)

// Base dataset scales per experiment, chosen so the default harness run
// fits this container's memory and finishes in minutes. cfg.Scale
// multiplies them; scale 1.0/0.02 ~ the paper's full WordNet would need
// ~85 GB for the matrix alone.
const (
	scaleAPSPWordNet  = 0.02  // n ~ 2.9k: full APSP affordable
	scaleAPSPFlickr   = 0.015 // n ~ 1.6k but dense (mean degree ~44)
	scaleAPSPHepPh    = 0.12  // n ~ 1.4k, the paper's scheduling testbed
	scaleOrderWordNet = 0.20  // n ~ 29k: ordering-only, no matrix
	scaleOrderLarge   = 0.10  // soc-Pokec ~163k / soc-LiveJournal1 ~485k degrees
	scaleFig10        = 0.015 // all five Table 2 datasets
)

// synth builds the stand-in for name at baseScale*cfg.Scale, enforcing the
// memory bound when the experiment will allocate a distance matrix.
func synth(cfg Config, name string, baseScale float64, needsMatrix bool) (*graph.Graph, error) {
	scale := baseScale * cfg.Scale
	if scale > 1 {
		scale = 1
	}
	n, err := datasets.ScaledSize(name, scale)
	if err != nil {
		return nil, err
	}
	if needsMatrix {
		if need := matrix.EstimateMemBytes(n); need > cfg.MaxMemBytes {
			return nil, fmt.Errorf("bench: %s at scale %g needs %d MB for the matrix, bound is %d MB — lower -scale",
				name, scale, need>>20, cfg.MaxMemBytes>>20)
		}
	}
	g, _, err := datasets.Synthesize(name, scale, cfg.Seed)
	return g, err
}

func describe(w io.Writer, name string, g *graph.Graph) {
	st := analysis.Degrees(g)
	fmt.Fprintf(w, "  workload: %s stand-in, n=%d arcs=%d degree[min=%d max=%d mean=%.1f]\n\n",
		name, st.Vertices, st.Arcs, st.Min, st.Max, st.Mean)
}

func init() {
	register(Experiment{
		ID:     "table2",
		Paper:  "Table 2",
		Title:  "Dataset inventory and the synthesized stand-ins",
		Expect: "five datasets with the paper's vertex/edge counts; stand-ins match scaled n and mean degree",
		Run:    runTable2,
	})
	register(Experiment{
		ID:     "fig1",
		Paper:  "Figure 1",
		Title:  "Scheduling-scheme effect in ParAlg2 on ca-HepPh",
		Expect: "static-cyclic and dynamic-cyclic beat default block partitioning; dynamic-cyclic best",
		Run:    runFig1,
	})
	register(Experiment{
		ID:     "table1",
		Paper:  "Table 1",
		Title:  "Ordering time: ParAlg2's selection sort vs ParBuckets on WordNet",
		Expect: "selection is orders of magnitude slower and thread-invariant; ParBuckets worsens as threads grow",
		Run:    runTable1,
	})
	register(Experiment{
		ID:     "fig3",
		Paper:  "Figure 3",
		Title:  "Degree distribution of the WordNet graph",
		Expect: "power law: vertex counts fall by orders of magnitude as degree grows",
		Run:    runFig3,
	})
	register(Experiment{
		ID:     "fig4",
		Paper:  "Figure 4",
		Title:  "Ordering time: ParBuckets vs ParMax",
		Expect: "ParMax faster and improving with threads; ParBuckets degrading with threads",
		Run:    runFig4,
	})
	register(Experiment{
		ID:     "fig5",
		Paper:  "Figure 5",
		Title:  "Dijkstra-phase time under ParAlg2 / ParBuckets / ParMax orders",
		Expect: "approximate ParBuckets order slows the SSSP phase; exact ParMax matches ParAlg2's selection order",
		Run:    runFig5,
	})
	register(Experiment{
		ID:     "fig6",
		Paper:  "Figure 6",
		Title:  "Ordering time: ParMax vs MultiLists (plus large-graph MultiLists scaling)",
		Expect: "MultiLists outperforms ParMax; on larger graphs MultiLists keeps improving with threads",
		Run:    runFig6,
	})
	register(Experiment{
		ID:     "fig7",
		Paper:  "Figure 7",
		Title:  "ParAlg1 vs ParAlg2 elapsed time on Flickr",
		Expect: "both scale with threads; ParAlg2 ~2x (2-4x across datasets) faster at every thread count",
		Run:    runFig7,
	})
	register(Experiment{
		ID:     "fig8",
		Paper:  "Figure 8",
		Title:  "Overall elapsed time: ParAlg1 / ParAlg2 / ParAPSP on WordNet",
		Expect: "ParAPSP <= ParAlg2 < ParAlg1; ParAPSP's edge over ParAlg2 grows with threads",
		Run:    runFig8,
	})
	register(Experiment{
		ID:     "fig9",
		Paper:  "Figure 9",
		Title:  "Parallel speedup: ParAlg1 / ParAlg2 / ParAPSP on WordNet",
		Expect: "ParAlg2 speedup lags ParAlg1 (sequential ordering); ParAPSP reaches (hyper-)linear speedup",
		Run:    runFig9,
	})
	register(Experiment{
		ID:     "fig9-amdahl",
		Paper:  "Figure 9 (projection)",
		Title:  "Amdahl projection of the speedup curves from measured phase costs",
		Expect: "ParAlg2's serial ordering caps its projected speedup; ParAPSP projects linear",
		Run:    runFig9Amdahl,
	})
	register(Experiment{
		ID:     "fig10",
		Paper:  "Figure 10",
		Title:  "ParAPSP elapsed time and speedup on all Table 2 datasets",
		Expect: "near-linear speedup on every dataset",
		Run:    runFig10,
	})
	register(Experiment{
		ID:     "seqgap",
		Paper:  "Section 2/5.2 claim",
		Title:  "Sequential basic vs optimized vs adaptive algorithm",
		Expect: "optimized 2-4x faster than basic; adaptive about on par with optimized",
		Run:    runSeqGap,
	})
	register(Experiment{
		ID:     "baselines",
		Paper:  "Sections 2 and 6",
		Title:  "Peng-style algorithms vs Floyd-Warshall / heap Dijkstra / SPFA",
		Expect: "modified-Dijkstra algorithms beat Floyd-Warshall; row reuse beats plain SPFA",
		Run:    runBaselines,
	})
	register(Experiment{
		ID:     "exactness",
		Paper:  "Section 5 claim",
		Title:  "Every algorithm and configuration produces the identical APSP solution",
		Expect: "one checksum, shared by all algorithms, schedules and orderings",
		Run:    runExactness,
	})
	register(Experiment{
		ID:     "complexity",
		Paper:  "Peng et al. claim (Section 2)",
		Title:  "Empirical time-complexity fit of the modified-Dijkstra APSP",
		Expect: "log-log slope around 2.2-2.6 on scale-free graphs (Peng et al. report O(n^2.4))",
		Run:    runComplexity,
	})
	register(Experiment{
		ID:     "distmem",
		Paper:  "Section 7 (future work)",
		Title:  "Simulated distributed-memory ParAPSP: runtime and communication",
		Expect: "exact at every node count; messages grow as n*(P-1); row exchange buys remote folds",
		Run:    runDistMem,
	})
	register(Experiment{
		ID:     "workstats",
		Paper:  "ours (mechanism)",
		Title:  "Work counters: fold rate and edge scans by ordering",
		Expect: "degree order maximizes fold rate; disabling reuse zeroes folds and multiplies edge scans",
		Run:    runWorkStats,
	})
	register(Experiment{
		ID:     "weighted",
		Paper:  "ours (generality)",
		Title:  "Weighted-graph end-to-end check at benchmark scale",
		Expect: "all algorithms match heap Dijkstra on positive weights",
		Run:    runWeighted,
	})
	register(Experiment{
		ID:     "oracle",
		Paper:  "ours (beyond the memory wall)",
		Title:  "Landmark distance oracle: accuracy and memory vs landmark count",
		Expect: "upper bounds never below truth; accuracy rises with k at O(k*n) memory",
		Run:    runOracle,
	})
	register(Experiment{
		ID:     "ablation-queue",
		Paper:  "ours",
		Title:  "Queue-discipline ablation: dedup FIFO vs paper's literal FIFO vs binary heap",
		Expect: "identical solutions; FIFO variants close, heap pays log-factor overhead on these inputs",
		Run:    runAblationQueue,
	})
	register(Experiment{
		ID:     "ablation-buckets",
		Paper:  "ours (Section 4.2 narrative)",
		Title:  "Bucket-count ablation: 100 vs 1000 vs exact (max+1) buckets",
		Expect: "more buckets -> better order -> faster SSSP phase; exact closes the gap, as Section 4.2 reports",
		Run:    runAblationBuckets,
	})
	register(Experiment{
		ID:     "ablation-threshold",
		Paper:  "ours (Section 4.2 constant)",
		Title:  "ParMax parallel/sequential threshold sweep",
		Expect: "ordering stays exact at every threshold; timing varies mildly around the paper's 1%",
		Run:    runAblationThreshold,
	})
	register(Experiment{
		ID:     "ablation-reuse",
		Paper:  "ours (Section 5.4 conjecture)",
		Title:  "Row-reuse (dynamic programming) ablation",
		Expect: "disabling completed-row reuse slows every algorithm substantially — the paper's hyper-linear-speedup mechanism",
		Run:    runAblationReuse,
	})
}

func runTable2(cfg Config, w io.Writer) error {
	t := &Table{
		Title:  "Paper's Table 2 (full size) and the synthesized stand-ins at harness scale",
		Header: []string{"Name", "Type", "Vertex", "Edge", "synth n", "synth arcs", "synth maxdeg"},
	}
	for _, in := range datasets.Table2() {
		base := scaleFig10
		if in.Name == "WordNet" {
			base = scaleAPSPWordNet
		}
		g, err := synth(cfg, in.Name, base, false)
		if err != nil {
			return err
		}
		kind := "Undirected"
		if in.Directed {
			kind = "Directed"
		}
		_, maxd := g.MinMaxDegree()
		t.AddRow(in.Name, kind, in.Vertices, in.Edges, g.N(), g.NumArcs(), maxd)
	}
	t.Fprint(w)
	return nil
}

// schedSweep measures the SSSP phase under a fixed source order for each
// (scheme, threads) pair.
func schedSweep(cfg Config, g *graph.Graph, src []int32, schemes []sched.Scheme) (map[sched.Scheme][]time.Duration, error) {
	out := make(map[sched.Scheme][]time.Duration)
	for _, scheme := range schemes {
		times := make([]time.Duration, 0, len(cfg.Threads))
		for _, p := range sortedCopy(cfg.Threads) {
			var err error
			d := Measure(cfg.Runs, p, func() {
				_, _, err = core.SSSPPhase(g, src, p, scheme, core.Options{})
			})
			if err != nil {
				return nil, err
			}
			times = append(times, d)
		}
		out[scheme] = times
	}
	return out, nil
}

func threadsHeader(label string, threads []int) []string {
	h := []string{label}
	for _, p := range sortedCopy(threads) {
		h = append(h, fmt.Sprintf("%d thr", p))
	}
	return h
}

func durationRow(name string, times []time.Duration) []any {
	row := []any{name}
	for _, d := range times {
		row = append(row, FormatDuration(d))
	}
	return row
}

func runFig1(cfg Config, w io.Writer) error {
	g, err := synth(cfg, "ca-HepPh", scaleAPSPHepPh, true)
	if err != nil {
		return err
	}
	describe(w, "ca-HepPh", g)
	src := order.SelectionSort(g.Degrees(), 1.0)
	// The paper measures the first three; guided is this repo's addition.
	schemes := []sched.Scheme{sched.Block, sched.StaticCyclic, sched.DynamicCyclic, sched.Guided}
	res, err := schedSweep(cfg, g, src, schemes)
	if err != nil {
		return err
	}
	t := &Table{
		Title:  "ParAlg2 SSSP-phase elapsed time by loop schedule (order fixed to selection sort's)",
		Header: threadsHeader("schedule", cfg.Threads),
	}
	for _, s := range schemes {
		t.AddRow(durationRow(s.String(), res[s])...)
	}
	t.Fprint(w)
	return nil
}

// orderingSweep measures ordering procedures across the thread sweep on a
// degree array.
func orderingSweep(cfg Config, degrees []int, procs []order.Procedure, bucketRanges int) (map[order.Procedure][]time.Duration, error) {
	out := make(map[order.Procedure][]time.Duration)
	for _, proc := range procs {
		times := make([]time.Duration, 0, len(cfg.Threads))
		for _, p := range sortedCopy(cfg.Threads) {
			ocfg := order.Config{Workers: p, BucketRanges: bucketRanges}
			var err error
			d := Measure(cfg.Runs, p, func() {
				_, err = order.Run(proc, degrees, ocfg)
			})
			if err != nil {
				return nil, err
			}
			times = append(times, d)
		}
		out[proc] = times
	}
	return out, nil
}

func runTable1(cfg Config, w io.Writer) error {
	g, err := synth(cfg, "WordNet", scaleOrderWordNet, false)
	if err != nil {
		return err
	}
	describe(w, "WordNet", g)
	degrees := g.Degrees()
	res, err := orderingSweep(cfg, degrees, []order.Procedure{order.Selection, order.ParBucketsProc}, 0)
	if err != nil {
		return err
	}
	t := &Table{
		Title:  "Ordering-procedure elapsed time (paper reports 46,847 ms vs 10-166 ms at full size)",
		Header: threadsHeader("procedure", cfg.Threads),
	}
	t.AddRow(durationRow("ParAlg2 (selection)", res[order.Selection])...)
	t.AddRow(durationRow("parBuckets", res[order.ParBucketsProc])...)
	t.Fprint(w)
	return nil
}

func runFig3(cfg Config, w io.Writer) error {
	g, err := synth(cfg, "WordNet", scaleOrderWordNet, false)
	if err != nil {
		return err
	}
	describe(w, "WordNet", g)
	hist := g.DegreeHistogram()
	t := &Table{
		Title:  "Degree distribution (log-binned; paper's Figure 3 is the per-degree scatter)",
		Header: []string{"degree range", "vertices", "share"},
	}
	n := float64(g.N())
	for lo := 1; lo < len(hist); lo *= 2 {
		hi := lo*2 - 1
		if hi >= len(hist) {
			hi = len(hist) - 1
		}
		var c int64
		for d := lo; d <= hi; d++ {
			c += hist[d]
		}
		if c > 0 {
			t.AddRow(fmt.Sprintf("%d-%d", lo, hi), c, fmt.Sprintf("%.3f%%", 100*float64(c)/n))
		}
	}
	t.Fprint(w)

	// Scale-free check: fit count(d) ~ a * d^gamma over populated degrees;
	// real complex networks land around gamma in [-3, -2].
	var ds, cs []float64
	for d, c := range hist {
		if d > 0 && c > 0 {
			ds = append(ds, float64(d))
			cs = append(cs, float64(c))
		}
	}
	gamma, _, r2, err := stats.PowerLawFit(ds, cs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  power-law fit: count(d) ~ d^%.2f (log-log R^2=%.3f)\n\n", gamma, r2)
	return nil
}

func runFig4(cfg Config, w io.Writer) error {
	g, err := synth(cfg, "WordNet", scaleOrderWordNet, false)
	if err != nil {
		return err
	}
	describe(w, "WordNet", g)
	res, err := orderingSweep(cfg, g.Degrees(), []order.Procedure{order.ParBucketsProc, order.ParMaxProc}, 0)
	if err != nil {
		return err
	}
	t := &Table{
		Title:  "Ordering elapsed time",
		Header: threadsHeader("procedure", cfg.Threads),
	}
	t.AddRow(durationRow("ParBuckets", res[order.ParBucketsProc])...)
	t.AddRow(durationRow("ParMax", res[order.ParMaxProc])...)
	t.Fprint(w)
	return nil
}

func runFig5(cfg Config, w io.Writer) error {
	g, err := synth(cfg, "WordNet", scaleAPSPWordNet, true)
	if err != nil {
		return err
	}
	describe(w, "WordNet", g)
	degrees := g.Degrees()
	orders := []struct {
		name string
		src  []int32
	}{
		{"ParAlg2 (selection)", order.SelectionSort(degrees, 1.0)},
		{"ParBuckets (approx)", order.ParBuckets(degrees, 4, 100)},
		{"ParMax (exact)", order.ParMax(degrees, 4, 0.01)},
	}
	t := &Table{
		Title:  "Dijkstra-phase elapsed time under each precomputed order",
		Header: threadsHeader("order", cfg.Threads),
	}
	for _, o := range orders {
		times := make([]time.Duration, 0, len(cfg.Threads))
		for _, p := range sortedCopy(cfg.Threads) {
			var err error
			d := Measure(cfg.Runs, p, func() {
				_, _, err = core.SSSPPhase(g, o.src, p, sched.DynamicCyclic, core.Options{})
			})
			if err != nil {
				return err
			}
			times = append(times, d)
		}
		t.AddRow(durationRow(o.name, times)...)
	}
	t.Fprint(w)
	return nil
}

func runFig6(cfg Config, w io.Writer) error {
	g, err := synth(cfg, "WordNet", scaleOrderWordNet, false)
	if err != nil {
		return err
	}
	describe(w, "WordNet", g)
	res, err := orderingSweep(cfg, g.Degrees(), []order.Procedure{order.ParMaxProc, order.MultiListsProc}, 0)
	if err != nil {
		return err
	}
	t := &Table{
		Title:  "Ordering elapsed time",
		Header: threadsHeader("procedure", cfg.Threads),
	}
	t.AddRow(durationRow("ParMax", res[order.ParMaxProc])...)
	t.AddRow(durationRow("MultiLists", res[order.MultiListsProc])...)
	t.Fprint(w)

	// Section 4.3's large-graph check: MultiLists ordering alone on
	// soc-Pokec / soc-LiveJournal1 shaped degree arrays.
	for _, name := range []string{"soc-Pokec", "soc-LiveJournal1"} {
		scale := scaleOrderLarge * cfg.Scale
		if scale > 1 {
			scale = 1
		}
		degrees, _, err := datasets.SynthesizeDegrees(name, scale, cfg.Seed)
		if err != nil {
			return err
		}
		lt := &Table{
			Title:  fmt.Sprintf("MultiLists on %s-shaped degrees (n=%d)", name, len(degrees)),
			Header: threadsHeader("procedure", cfg.Threads),
		}
		times := make([]time.Duration, 0, len(cfg.Threads))
		for _, p := range sortedCopy(cfg.Threads) {
			d := Measure(cfg.Runs, p, func() {
				order.MultiLists(degrees, p, 0.1)
			})
			times = append(times, d)
		}
		lt.AddRow(durationRow("MultiLists", times)...)
		lt.Fprint(w)
	}
	return nil
}

// overallSweep measures full Solve runs (ordering + SSSP) for each
// algorithm across the thread sweep. The paper-figure experiments pin
// BatchOff: they reproduce the paper's mechanism (iterated modified
// Dijkstra with row reuse), which the multi-source batch engine would
// silently replace on graphs past the Auto threshold. The batch engine
// has its own experiment (batch) and report (BENCH_PR4.json).
func overallSweep(cfg Config, g *graph.Graph, algs []core.Algorithm) (map[core.Algorithm][]time.Duration, error) {
	out := make(map[core.Algorithm][]time.Duration)
	for _, alg := range algs {
		times := make([]time.Duration, 0, len(cfg.Threads))
		for _, p := range sortedCopy(cfg.Threads) {
			var err error
			d := Measure(cfg.Runs, p, func() {
				_, err = core.Solve(g, alg, core.Options{Workers: p, MaxMemBytes: cfg.MaxMemBytes, Batch: core.BatchOff})
			})
			if err != nil {
				return nil, err
			}
			times = append(times, d)
		}
		out[alg] = times
	}
	return out, nil
}

func runFig7(cfg Config, w io.Writer) error {
	g, err := synth(cfg, "Flickr", scaleAPSPFlickr, true)
	if err != nil {
		return err
	}
	describe(w, "Flickr", g)
	res, err := overallSweep(cfg, g, []core.Algorithm{core.ParAlg1, core.ParAlg2})
	if err != nil {
		return err
	}
	t := &Table{
		Title:  "Overall elapsed time (paper's Figure 7 y-axis is log-scale)",
		Header: threadsHeader("algorithm", cfg.Threads),
	}
	t.AddRow(durationRow("ParAlg1", res[core.ParAlg1])...)
	t.AddRow(durationRow("ParAlg2", res[core.ParAlg2])...)
	t.Fprint(w)
	r := &Table{Title: "ParAlg1 / ParAlg2 time ratio (paper: ~2x, 2-4x across datasets)",
		Header: threadsHeader("ratio", cfg.Threads)}
	row := []any{"ParAlg1/ParAlg2"}
	for i := range res[core.ParAlg1] {
		row = append(row, fmt.Sprintf("%.2fx", float64(res[core.ParAlg1][i])/float64(res[core.ParAlg2][i])))
	}
	r.AddRow(row...)
	r.Fprint(w)
	return nil
}

func fig8Measurements(cfg Config) (*graph.Graph, map[core.Algorithm][]time.Duration, error) {
	g, err := synth(cfg, "WordNet", scaleAPSPWordNet, true)
	if err != nil {
		return nil, nil, err
	}
	res, err := overallSweep(cfg, g, []core.Algorithm{core.ParAlg1, core.ParAlg2, core.ParAPSP})
	return g, res, err
}

func runFig8(cfg Config, w io.Writer) error {
	g, res, err := fig8Measurements(cfg)
	if err != nil {
		return err
	}
	describe(w, "WordNet", g)
	t := &Table{
		Title:  "Overall elapsed time (ordering + Dijkstra phases)",
		Header: threadsHeader("algorithm", cfg.Threads),
	}
	for _, alg := range []core.Algorithm{core.ParAlg1, core.ParAlg2, core.ParAPSP} {
		t.AddRow(durationRow(alg.String(), res[alg])...)
	}
	t.Fprint(w)
	return nil
}

func runFig9(cfg Config, w io.Writer) error {
	g, res, err := fig8Measurements(cfg)
	if err != nil {
		return err
	}
	describe(w, "WordNet", g)
	t := &Table{
		Title:  "Parallel speedup vs 1 thread (same runs as fig8)",
		Header: threadsHeader("algorithm", cfg.Threads),
	}
	for _, alg := range []core.Algorithm{core.ParAlg1, core.ParAlg2, core.ParAPSP} {
		row := []any{alg.String()}
		for _, s := range Speedups(res[alg]) {
			row = append(row, fmt.Sprintf("%.2fx", s))
		}
		t.AddRow(row...)
	}
	t.Fprint(w)
	fmt.Fprintf(w, "  note: wall-clock speedup above 1 requires multiple hardware cores; see EXPERIMENTS.md.\n\n")
	return nil
}

func runFig10(cfg Config, w io.Writer) error {
	timesT := &Table{
		Title:  "(a) ParAPSP overall elapsed time",
		Header: threadsHeader("dataset", cfg.Threads),
	}
	speedT := &Table{
		Title:  "(b) ParAPSP parallel speedup",
		Header: threadsHeader("dataset", cfg.Threads),
	}
	for _, in := range datasets.Table2() {
		g, err := synth(cfg, in.Name, scaleFig10, true)
		if err != nil {
			return err
		}
		times := make([]time.Duration, 0, len(cfg.Threads))
		for _, p := range sortedCopy(cfg.Threads) {
			var err error
			d := Measure(cfg.Runs, p, func() {
				_, err = core.Solve(g, core.ParAPSP, core.Options{Workers: p, MaxMemBytes: cfg.MaxMemBytes, Batch: core.BatchOff})
			})
			if err != nil {
				return err
			}
			times = append(times, d)
		}
		timesT.AddRow(durationRow(fmt.Sprintf("%s (n=%d)", in.Name, g.N()), times)...)
		row := []any{in.Name}
		for _, s := range Speedups(times) {
			row = append(row, fmt.Sprintf("%.2fx", s))
		}
		speedT.AddRow(row...)
	}
	timesT.Fprint(w)
	speedT.Fprint(w)
	return nil
}

func runSeqGap(cfg Config, w io.Writer) error {
	g, err := synth(cfg, "WordNet", scaleAPSPWordNet, true)
	if err != nil {
		return err
	}
	describe(w, "WordNet", g)
	t := &Table{
		Title:  "Single-thread elapsed time (ordering + SSSP)",
		Header: []string{"algorithm", "ordering", "sssp", "total", "vs basic"},
	}
	var basic time.Duration
	for _, alg := range []core.Algorithm{core.SeqBasic, core.SeqOptimized, core.SeqAdaptive} {
		// Average the phase timings reported by Solve itself so the
		// ordering/sssp/total columns are mutually consistent.
		var ordering, sssp time.Duration
		runs := cfg.Runs
		if runs < 1 {
			runs = 1
		}
		Measure(runs, 1, func() {
			res, err2 := core.Solve(g, alg, core.Options{MaxMemBytes: cfg.MaxMemBytes, Batch: core.BatchOff})
			if err2 != nil {
				err = err2
				return
			}
			ordering += res.OrderingTime
			sssp += res.SSSPTime
		})
		if err != nil {
			return err
		}
		ordering /= time.Duration(runs)
		sssp /= time.Duration(runs)
		total := ordering + sssp
		if alg == core.SeqBasic {
			basic = total
		}
		t.AddRow(alg.String(), FormatDuration(ordering), FormatDuration(sssp),
			FormatDuration(total), fmt.Sprintf("%.2fx", float64(basic)/float64(total)))
	}
	t.Fprint(w)
	return nil
}

func runBaselines(cfg Config, w io.Writer) error {
	// Floyd-Warshall is O(n^3): keep this workload small.
	g, err := synth(cfg, "ca-HepPh", 0.08, true)
	if err != nil {
		return err
	}
	describe(w, "ca-HepPh", g)
	t := &Table{
		Title:  "Single-thread APSP elapsed time across algorithm families",
		Header: []string{"algorithm", "time", "vs seq-optimized"},
	}
	type entry struct {
		name string
		f    func() *matrix.Matrix
	}
	var optTime time.Duration
	runs := []entry{
		{"Floyd-Warshall (O(n^3))", func() *matrix.Matrix { return baseline.FloydWarshall(g) }},
		{"blocked Floyd-Warshall (Katz&Kider)", func() *matrix.Matrix { return baseline.BlockedFloydWarshall(g, 1) }},
		{"repeated heap Dijkstra", func() *matrix.Matrix { return baseline.DijkstraAPSP(g) }},
		{"repeated SPFA (no reuse)", func() *matrix.Matrix { return baseline.SPFAAPSP(g) }},
		{"seq-basic (Peng Alg 2)", func() *matrix.Matrix {
			r, _ := core.Solve(g, core.SeqBasic, core.Options{Batch: core.BatchOff})
			return r.D
		}},
		{"seq-optimized (Peng Alg 3)", func() *matrix.Matrix {
			r, _ := core.Solve(g, core.SeqOptimized, core.Options{Batch: core.BatchOff})
			return r.D
		}},
	}
	times := make([]time.Duration, len(runs))
	var ref *matrix.Matrix
	for i, e := range runs {
		var D *matrix.Matrix
		times[i] = Measure(cfg.Runs, 1, func() { D = e.f() })
		if i == 0 {
			ref = D
		} else if !D.Equal(ref) {
			return fmt.Errorf("bench: %s disagrees with Floyd-Warshall", e.name)
		}
		if e.name == "seq-optimized (Peng Alg 3)" {
			optTime = times[i]
		}
	}
	for i, e := range runs {
		t.AddRow(e.name, FormatDuration(times[i]), fmt.Sprintf("%.2fx", float64(times[i])/float64(optTime)))
	}
	t.Fprint(w)
	return nil
}

func runExactness(cfg Config, w io.Writer) error {
	g, err := synth(cfg, "Livemocha", 0.01, true)
	if err != nil {
		return err
	}
	describe(w, "Livemocha", g)
	t := &Table{
		Title:  "Solution checksum per configuration (all rows must match)",
		Header: []string{"configuration", "checksum"},
	}
	var first uint64
	check := func(name string, D *matrix.Matrix) error {
		cs := D.Checksum()
		if first == 0 {
			first = cs
		} else if cs != first {
			return fmt.Errorf("bench: %s produced a different solution (checksum %x != %x)", name, cs, first)
		}
		t.AddRow(name, fmt.Sprintf("%016x", cs))
		return nil
	}
	if err := check("Floyd-Warshall", baseline.FloydWarshall(g)); err != nil {
		return err
	}
	for _, alg := range []core.Algorithm{core.SeqBasic, core.SeqOptimized, core.SeqAdaptive, core.ParAlg1, core.ParAlg2, core.ParAPSP} {
		res, err := core.Solve(g, alg, core.Options{Workers: 4, MaxMemBytes: cfg.MaxMemBytes})
		if err != nil {
			return err
		}
		if err := check(alg.String()+" (4 thr)", res.D); err != nil {
			return err
		}
	}
	for _, scheme := range []sched.Scheme{sched.Block, sched.StaticCyclic, sched.DynamicCyclic, sched.DynamicChunk, sched.Guided} {
		res, err := core.Solve(g, core.ParAPSP, core.Options{Workers: 4, MaxMemBytes: cfg.MaxMemBytes}.WithSchedule(scheme))
		if err != nil {
			return err
		}
		if err := check("ParAPSP "+scheme.String(), res.D); err != nil {
			return err
		}
	}
	for _, proc := range []order.Procedure{order.ParBucketsProc, order.ParMaxProc, order.MultiListsProc} {
		res, err := core.Solve(g, core.ParAPSP, core.Options{Workers: 4, Ordering: proc, MaxMemBytes: cfg.MaxMemBytes})
		if err != nil {
			return err
		}
		if err := check("ParAPSP ordering="+proc.String(), res.D); err != nil {
			return err
		}
	}
	for _, mode := range []core.BatchMode{core.BatchOff, core.BatchForce} {
		res, err := core.Solve(g, core.ParAPSP, core.Options{Workers: 4, Batch: mode, MaxMemBytes: cfg.MaxMemBytes})
		if err != nil {
			return err
		}
		if err := check(fmt.Sprintf("ParAPSP batch=%s (%s)", mode, res.Engine), res.D); err != nil {
			return err
		}
	}
	t.Fprint(w)
	return nil
}

func runAblationQueue(cfg Config, w io.Writer) error {
	g, err := synth(cfg, "Flickr", scaleAPSPFlickr, true)
	if err != nil {
		return err
	}
	describe(w, "Flickr", g)
	t := &Table{
		Title:  "ParAPSP overall time by queue discipline",
		Header: threadsHeader("queue", cfg.Threads),
	}
	for _, variant := range []struct {
		name string
		opts core.Options
	}{
		{"dedup FIFO (SPFA bitmap)", core.Options{Batch: core.BatchOff}},
		{"paper FIFO (duplicates)", core.Options{PaperQueue: true}},
		{"binary heap (Dijkstra)", core.Options{HeapQueue: true}},
	} {
		times := make([]time.Duration, 0, len(cfg.Threads))
		for _, p := range sortedCopy(cfg.Threads) {
			opts := variant.opts
			opts.Workers = p
			opts.MaxMemBytes = cfg.MaxMemBytes
			var err error
			d := Measure(cfg.Runs, p, func() {
				_, err = core.Solve(g, core.ParAPSP, opts)
			})
			if err != nil {
				return err
			}
			times = append(times, d)
		}
		t.AddRow(durationRow(variant.name, times)...)
	}
	t.Fprint(w)
	return nil
}

func runAblationBuckets(cfg Config, w io.Writer) error {
	g, err := synth(cfg, "WordNet", scaleAPSPWordNet, true)
	if err != nil {
		return err
	}
	describe(w, "WordNet", g)
	degrees := g.Degrees()
	t := &Table{
		Title:  "SSSP-phase time (4 threads) and order quality by bucket count",
		Header: []string{"ordering", "exact?", "sssp time"},
	}
	cases := []struct {
		name string
		src  []int32
	}{
		{"ParBuckets 100+1", order.ParBuckets(degrees, 4, 100)},
		{"ParBuckets 1000+1", order.ParBuckets(degrees, 4, 1000)},
		{"ParMax (max+1)", order.ParMax(degrees, 4, 0.01)},
		{"MultiLists", order.MultiLists(degrees, 4, 0.1)},
	}
	for _, c := range cases {
		exact := order.SortedByKeysDesc(degrees, c.src)
		var err error
		d := Measure(cfg.Runs, 4, func() {
			_, _, err = core.SSSPPhase(g, c.src, 4, sched.DynamicCyclic, core.Options{})
		})
		if err != nil {
			return err
		}
		t.AddRow(c.name, fmt.Sprintf("%v", exact), FormatDuration(d))
	}
	t.Fprint(w)
	return nil
}

func runAblationThreshold(cfg Config, w io.Writer) error {
	g, err := synth(cfg, "WordNet", scaleOrderWordNet, false)
	if err != nil {
		return err
	}
	describe(w, "WordNet", g)
	degrees := g.Degrees()
	t := &Table{
		Title:  "ParMax ordering time by parallel/sequential threshold (4 threads)",
		Header: []string{"threshold", "ordering time", "exact?"},
	}
	for _, th := range []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5} {
		var src []int32
		d := Measure(cfg.Runs, 4, func() {
			src = order.ParMax(degrees, 4, th)
		})
		t.AddRow(fmt.Sprintf("%.1f%%", th*100), FormatDuration(d),
			fmt.Sprintf("%v", order.SortedByKeysDesc(degrees, src)))
	}
	t.Fprint(w)
	return nil
}

func runAblationReuse(cfg Config, w io.Writer) error {
	g, err := synth(cfg, "WordNet", scaleAPSPWordNet, true)
	if err != nil {
		return err
	}
	describe(w, "WordNet", g)
	t := &Table{
		Title:  "ParAPSP overall time: completed-row reuse on (default) vs off",
		Header: threadsHeader("row reuse", cfg.Threads),
	}
	for _, disable := range []bool{false, true} {
		times := make([]time.Duration, 0, len(cfg.Threads))
		for _, p := range sortedCopy(cfg.Threads) {
			var err error
			d := Measure(cfg.Runs, p, func() {
				_, err = core.Solve(g, core.ParAPSP, core.Options{Workers: p, DisableRowReuse: disable, MaxMemBytes: cfg.MaxMemBytes, Batch: core.BatchOff})
			})
			if err != nil {
				return err
			}
			times = append(times, d)
		}
		name := "on (modified Dijkstra)"
		if disable {
			name = "off (plain SPFA)"
		}
		t.AddRow(durationRow(name, times)...)
	}
	t.Fprint(w)
	return nil
}

// runComplexity repeats Peng et al.'s empirical-complexity methodology: a
// sweep of scale-free graph sizes, single-thread runs, and a least-squares
// power-law fit of runtime against n.
func runComplexity(cfg Config, w io.Writer) error {
	sizes := []int{400, 800, 1600, 3200}
	if cfg.Scale > 1 {
		for i := range sizes {
			sizes[i] = int(float64(sizes[i]) * cfg.Scale)
		}
	}
	t := &Table{
		Title:  "Single-thread runtime across graph sizes (Barabasi-Albert, m=4)",
		Header: []string{"n", "seq-basic", "seq-optimized"},
	}
	var ns, basicTimes, optTimes []float64
	for _, n := range sizes {
		if need := matrix.EstimateMemBytes(n); need > cfg.MaxMemBytes {
			fmt.Fprintf(w, "  skipping n=%d: matrix needs %d MB (bound %d MB)\n", n, need>>20, cfg.MaxMemBytes>>20)
			continue
		}
		g0, err := gen.BarabasiAlbert(n, 4, cfg.Seed, gen.Weighting{})
		if err != nil {
			return err
		}
		g, err := gen.Relabel(g0, cfg.Seed+1)
		if err != nil {
			return err
		}
		var dBasic, dOpt time.Duration
		dBasic = Measure(cfg.Runs, 1, func() {
			if _, err2 := core.Solve(g, core.SeqBasic, core.Options{Batch: core.BatchOff}); err2 != nil {
				err = err2
			}
		})
		dOpt = Measure(cfg.Runs, 1, func() {
			if _, err2 := core.Solve(g, core.SeqOptimized, core.Options{Batch: core.BatchOff}); err2 != nil {
				err = err2
			}
		})
		if err != nil {
			return err
		}
		t.AddRow(n, FormatDuration(dBasic), FormatDuration(dOpt))
		ns = append(ns, float64(n))
		basicTimes = append(basicTimes, dBasic.Seconds())
		optTimes = append(optTimes, dOpt.Seconds())
	}
	t.Fprint(w)
	ft := &Table{
		Title:  "Power-law fit runtime ~ a * n^b (Peng et al.: b ~ 2.4)",
		Header: []string{"algorithm", "exponent b", "R^2"},
	}
	for _, fit := range []struct {
		name  string
		times []float64
	}{{"seq-basic", basicTimes}, {"seq-optimized", optTimes}} {
		b, _, r2, err := stats.PowerLawFit(ns, fit.times)
		if err != nil {
			return err
		}
		ft.AddRow(fit.name, fmt.Sprintf("%.2f", b), fmt.Sprintf("%.3f", r2))
	}
	ft.Fprint(w)
	return nil
}

// runDistMem exercises the future-work prototype: the simulated
// distributed-memory ParAPSP across node counts, reporting runtime and
// the communication a real MPI port would pay.
func runDistMem(cfg Config, w io.Writer) error {
	g, err := synth(cfg, "WordNet", scaleAPSPWordNet, true)
	if err != nil {
		return err
	}
	describe(w, "WordNet", g)
	ref, err := core.Solve(g, core.ParAPSP, core.Options{Workers: 4, MaxMemBytes: cfg.MaxMemBytes})
	if err != nil {
		return err
	}
	t := &Table{
		Title:  "Simulated distributed ParAPSP by node count (broadcast row exchange)",
		Header: []string{"nodes", "time", "messages", "MB sent", "remote folds", "local folds", "exact?"},
	}
	for _, nodes := range []int{1, 2, 4, 8} {
		var st dist.Stats
		var D *matrix.Matrix
		d := Measure(cfg.Runs, nodes, func() {
			D, st, err = dist.Solve(g, dist.Config{Nodes: nodes})
		})
		if err != nil {
			return err
		}
		t.AddRow(nodes, FormatDuration(d), st.Messages,
			fmt.Sprintf("%.1f", float64(st.Bytes)/(1<<20)),
			st.RemoteFolds, st.LocalFolds,
			fmt.Sprintf("%v", D.Equal(ref.D)))
	}
	t.Fprint(w)
	// Communication ablation: what the row exchange buys.
	at := &Table{
		Title:  "Broadcast ablation at 4 nodes",
		Header: []string{"row exchange", "time", "remote folds"},
	}
	for _, disable := range []bool{false, true} {
		var st dist.Stats
		d := Measure(cfg.Runs, 4, func() {
			_, st, err = dist.Solve(g, dist.Config{Nodes: 4, DisableBroadcast: disable})
		})
		if err != nil {
			return err
		}
		name := "on"
		if disable {
			name = "off (own rows only)"
		}
		at.AddRow(name, FormatDuration(d), st.RemoteFolds)
	}
	at.Fprint(w)
	return nil
}

// runWorkStats prints the work counters that explain the paper's results
// mechanistically: the degree-descending order raises the fold rate
// (completed-row reuse), which slashes edge scans.
func runWorkStats(cfg Config, w io.Writer) error {
	g, err := synth(cfg, "WordNet", scaleAPSPWordNet, true)
	if err != nil {
		return err
	}
	describe(w, "WordNet", g)
	t := &Table{
		Title:  "Work counters per configuration (4 workers)",
		Header: []string{"configuration", "pops", "folds", "fold rate", "edge scans", "enqueues"},
	}
	for _, c := range []struct {
		name string
		alg  core.Algorithm
		opts core.Options
	}{
		{"ParAlg1 (identity order)", core.ParAlg1, core.Options{Batch: core.BatchOff}},
		{"ParAPSP (degree order)", core.ParAPSP, core.Options{Batch: core.BatchOff}},
		{"ParAPSP, reuse disabled", core.ParAPSP, core.Options{DisableRowReuse: true}},
		{"ParAPSP, ParBuckets order", core.ParAPSP, core.Options{Ordering: order.ParBucketsProc, Batch: core.BatchOff}},
	} {
		opts := c.opts
		opts.Workers = 4
		opts.MaxMemBytes = cfg.MaxMemBytes
		res, err := core.Solve(g, c.alg, opts)
		if err != nil {
			return err
		}
		st := res.Stats
		t.AddRow(c.name, st.Pops, st.Folds, fmt.Sprintf("%.3f", st.FoldRate()), st.EdgeScans, st.Enqueues)
	}
	t.Fprint(w)
	fmt.Fprintf(w, "  reading: higher fold rate = more dynamic-programming reuse = less edge work.\n\n")
	return nil
}

// runWeighted verifies the library's weighted-graph path end to end at
// benchmark scale: the paper's datasets are unweighted, but the algorithms
// are defined over positive weights.
func runWeighted(cfg Config, w io.Writer) error {
	scale := scaleAPSPWordNet * cfg.Scale
	if scale > 1 {
		scale = 1
	}
	n, err := datasets.ScaledSize("WordNet", scale)
	if err != nil {
		return err
	}
	if need := matrix.EstimateMemBytes(n); need > cfg.MaxMemBytes {
		return fmt.Errorf("bench: weighted workload needs %d MB", need>>20)
	}
	base, err := gen.BarabasiAlbert(n, 4, cfg.Seed, gen.Weighting{Min: 1, Max: 64})
	if err != nil {
		return err
	}
	g, err := gen.Relabel(base, cfg.Seed+1)
	if err != nil {
		return err
	}
	describe(w, "weighted BA", g)
	ref := baseline.DijkstraAPSP(g)
	t := &Table{
		Title:  "Weighted-graph run (uniform weights in [1,64])",
		Header: []string{"algorithm", "time", "matches heap Dijkstra"},
	}
	for _, alg := range []core.Algorithm{core.SeqBasic, core.ParAlg2, core.ParAPSP} {
		var res *core.Result
		var err error
		d := Measure(cfg.Runs, 4, func() {
			res, err = core.Solve(g, alg, core.Options{Workers: 4, MaxMemBytes: cfg.MaxMemBytes, Batch: core.BatchOff})
		})
		if err != nil {
			return err
		}
		t.AddRow(alg.String(), FormatDuration(d), fmt.Sprintf("%v", res.D.Equal(ref)))
	}
	t.Fprint(w)
	return nil
}

// runFig9Amdahl regenerates Figure 9's *shape* on a single-core host: it
// measures the sequential ordering cost and the (parallelizable) SSSP
// cost at a larger scale, then projects each algorithm's speedup curve by
// Amdahl's law. This is the paper's argument made quantitative: ParAlg2's
// selection sort is a serial fraction that caps its speedup, ParAPSP's
// MultiLists ordering is parallel and negligible, so its projection is
// essentially linear.
func runFig9Amdahl(cfg Config, w io.Writer) error {
	scale := 0.1 * cfg.Scale // n ~ 14.6k: ordering fraction visible
	if scale > 1 {
		scale = 1
	}
	n, err := datasets.ScaledSize("WordNet", scale)
	if err != nil {
		return err
	}
	if need := matrix.EstimateMemBytes(n); need > cfg.MaxMemBytes {
		return fmt.Errorf("bench: fig9-amdahl needs %d MB for n=%d", need>>20, n)
	}
	g, _, err := datasets.Synthesize("WordNet", scale, cfg.Seed)
	if err != nil {
		return err
	}
	describe(w, "WordNet", g)
	degrees := g.Degrees()

	var src []int32
	tSel := Measure(cfg.Runs, 1, func() { src = order.SelectionSort(degrees, 1.0) })
	tML := Measure(cfg.Runs, 1, func() { order.MultiLists(degrees, 1, 0.1) })
	var errSSSP error
	tSSSP := Measure(1, 1, func() {
		_, _, errSSSP = core.SSSPPhase(g, src, 1, sched.DynamicCyclic, core.Options{})
	})
	if errSSSP != nil {
		return errSSSP
	}
	fmt.Fprintf(w, "  measured at n=%d: ordering selection=%s multilists=%s, sssp(1 worker)=%s\n",
		n, FormatDuration(tSel), FormatDuration(tML), FormatDuration(tSSSP))
	fmt.Fprintf(w, "  serial fraction of ParAlg2 = %.2f%%; of ParAPSP ~ 0%% (MultiLists parallelizes)\n\n",
		100*float64(tSel)/float64(tSel+tSSSP))

	t := &Table{
		Title:  "Amdahl-projected speedup (the shape of the paper's Figure 9)",
		Header: []string{"threads", "ParAlg1 (no ordering)", "ParAlg2 (serial selection)", "ParAPSP (parallel MultiLists)"},
	}
	total2 := float64(tSel + tSSSP)
	totalA := float64(tML + tSSSP)
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		pa1 := float64(p) // identity order: fully parallel loop
		pa2 := total2 / (float64(tSel) + float64(tSSSP)/float64(p))
		pap := totalA / (float64(tML)/float64(p) + float64(tSSSP)/float64(p))
		t.AddRow(p, fmt.Sprintf("%.1fx", pa1), fmt.Sprintf("%.1fx", pa2), fmt.Sprintf("%.1fx", pap))
	}
	t.Fprint(w)
	fmt.Fprintf(w, "  at the paper's full n=146k the selection sort is 45 s of a 1300 s run (serial\n")
	fmt.Fprintf(w, "  fraction 3.5%%), capping ParAlg2 near 10.5x at 16 threads while ParAPSP stays\n")
	fmt.Fprintf(w, "  linear — exactly the divergence Figure 9 plots.\n\n")
	return nil
}

// runOracle profiles the landmark distance oracle: accuracy and memory
// against landmark count — the practical regime past the paper's O(n^2)
// memory wall.
func runOracle(cfg Config, w io.Writer) error {
	g, err := synth(cfg, "WordNet", scaleAPSPWordNet, true)
	if err != nil {
		return err
	}
	describe(w, "WordNet", g)
	truth, err := core.Solve(g, core.ParAPSP, core.Options{Workers: 4, MaxMemBytes: cfg.MaxMemBytes})
	if err != nil {
		return err
	}
	t := &Table{
		Title:  "Landmark oracle vs exact APSP (2000 random queries)",
		Header: []string{"landmarks", "build time", "memory", "exact", "mean slack", "max slack"},
	}
	n := g.N()
	for _, k := range []int{4, 8, 16, 32, 64} {
		var o *oracle.Oracle
		d := Measure(cfg.Runs, 4, func() {
			o, err = oracle.Build(g, oracle.Options{Landmarks: k, Workers: 4})
		})
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		var slackSum float64
		var maxSlack matrix.Dist
		exact, count := 0, 0
		for q := 0; q < 2000; q++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u == v {
				continue
			}
			dTrue := truth.D.At(int(u), int(v))
			if dTrue == matrix.Inf {
				continue
			}
			est := o.Estimate(u, v)
			if est < dTrue {
				return fmt.Errorf("bench: oracle estimate %d below truth %d", est, dTrue)
			}
			slack := est - dTrue
			if slack == 0 {
				exact++
			}
			if slack > maxSlack {
				maxSlack = slack
			}
			slackSum += float64(slack)
			count++
		}
		t.AddRow(k, FormatDuration(d), fmt.Sprintf("%d KiB", o.MemBytes()>>10),
			fmt.Sprintf("%.1f%%", 100*float64(exact)/float64(count)),
			fmt.Sprintf("%.3f", slackSum/float64(count)), maxSlack)
	}
	t.Fprint(w)
	fmt.Fprintf(w, "  the full matrix for this n is %d MiB; the oracle answers from KiB-scale rows.\n\n",
		matrix.EstimateMemBytes(n)>>20)
	return nil
}
