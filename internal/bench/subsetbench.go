package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"parapsp/internal/core"
	"parapsp/internal/gen"
	"parapsp/internal/graph"
)

// The batch experiment measures the multi-source batch engine (MS-BFS for
// unweighted graphs, the shared-sweep relaxation for weighted ones)
// against B independent scalar subset solves of the same sources, at
// B = 1, 8 and 64 on a power-law graph and a 2D grid. Checksums are
// asserted equal — a mismatch fails the experiment rather than footnoting
// the table — so every speedup row is also an exactness proof.

func init() {
	register(Experiment{
		ID:     "batch",
		Paper:  "ours (multi-source)",
		Title:  "Multi-source batch engine vs per-source scalar solves",
		Expect: "unweighted B=64 MS-BFS >= 4x over 64 scalar solves on power-law; the high-diameter grid favors scalar (every level sweep scans all lane words); checksums identical",
		Run:    runBatch,
	})
}

// BatchReport is the machine-readable result of the batch experiment,
// written to BENCH_PR4.json by cmd/apspbench -batchjson.
type BatchReport struct {
	Workers int               `json:"workers"`
	Runs    int               `json:"runs"`
	Cases   []BatchCaseResult `json:"cases"`
}

// BatchCaseResult compares one (dataset, weighting, batch-size) cell:
// the same B sources solved scalar (Batch=off) and batched (Batch=force).
type BatchCaseResult struct {
	Dataset        string  `json:"dataset"`
	Weighted       bool    `json:"weighted"`
	Vertices       int     `json:"vertices"`
	Arcs           int64   `json:"arcs"`
	Sources        int     `json:"sources"`
	Engine         string  `json:"engine"`
	ScalarNs       int64   `json:"scalar_ns"`
	BatchNs        int64   `json:"batch_ns"`
	Speedup        float64 `json:"speedup"`
	Checksum       uint64  `json:"checksum"`
	ChecksumsMatch bool    `json:"checksums_match"`
}

// batchBenchSizes are the batch widths measured: a single source (the
// batch engine's overhead floor), a partial lane, and a full 64-lane word.
var batchBenchSizes = []int{1, 8, 64}

// batchBenchGraph builds one benchmark graph. The default scale targets
// n = 12000 (>= the 10k the acceptance bar asks for); tiny harness
// self-test scales floor at 256 so every code path still runs.
func batchBenchGraph(cfg Config, family string, weighted bool) (*graph.Graph, error) {
	n := int(12000 * cfg.Scale)
	if n < 256 {
		n = 256
	}
	var w gen.Weighting
	if weighted {
		w = gen.Weighting{Min: 1, Max: 100}
	}
	switch family {
	case "power-law":
		return gen.PowerLawConfiguration(n, 2.5, 2, true, cfg.Seed, w)
	case "grid":
		side := int(math.Sqrt(float64(n)))
		return gen.Grid2D(side, side, true, cfg.Seed, w)
	default:
		return nil, fmt.Errorf("bench: unknown batch dataset %q", family)
	}
}

// batchBenchSources spreads b distinct sources evenly across the vertex
// range so a batch mixes hubs and periphery instead of b neighbors.
func batchBenchSources(n, b int) []int32 {
	if b > n {
		b = n
	}
	out := make([]int32, b)
	for i := range out {
		out[i] = int32(i * n / b)
	}
	return out
}

// BuildBatchReport runs the scalar-vs-batched subset solves and returns
// the structured report. A checksum divergence between the two engines is
// an error, not a report row.
func BuildBatchReport(cfg Config) (*BatchReport, error) {
	cfg = cfg.normalized()
	// Widest configured worker count the machine can truly parallelize,
	// applied to both sides of every comparison.
	threads := sortedCopy(cfg.Threads)
	workers := threads[0]
	for _, p := range threads {
		if p <= runtime.NumCPU() && p > workers {
			workers = p
		}
	}
	rep := &BatchReport{Workers: workers, Runs: cfg.Runs}
	for _, c := range []struct {
		family   string
		weighted bool
	}{
		{"power-law", false},
		{"power-law", true},
		{"grid", false},
		{"grid", true},
	} {
		g, err := batchBenchGraph(cfg, c.family, c.weighted)
		if err != nil {
			return nil, err
		}
		for _, b := range batchBenchSizes {
			sources := batchBenchSources(g.N(), b)
			var scalarSub, batchSub *core.SubsetResult
			var solveErr error
			run := func(mode core.BatchMode, out **core.SubsetResult) time.Duration {
				return Measure(cfg.Runs, workers, func() {
					sub, err2 := core.SolveSubset(g, sources, core.Options{Workers: workers, Batch: mode})
					if err2 != nil {
						solveErr = err2
						return
					}
					*out = sub
				})
			}
			scalarNs := run(core.BatchOff, &scalarSub)
			batchNs := run(core.BatchForce, &batchSub)
			if solveErr != nil {
				return nil, solveErr
			}
			res := BatchCaseResult{
				Dataset:        c.family,
				Weighted:       c.weighted,
				Vertices:       g.N(),
				Arcs:           g.NumArcs(),
				Sources:        len(sources),
				Engine:         batchSub.Engine,
				ScalarNs:       scalarNs.Nanoseconds(),
				BatchNs:        batchNs.Nanoseconds(),
				Checksum:       batchSub.Checksum(),
				ChecksumsMatch: scalarSub.Checksum() == batchSub.Checksum(),
			}
			if res.BatchNs > 0 {
				res.Speedup = float64(res.ScalarNs) / float64(res.BatchNs)
			}
			if !res.ChecksumsMatch {
				return nil, fmt.Errorf("bench: batch engine %s diverged from scalar on %s (weighted=%v, B=%d): %016x != %016x",
					res.Engine, c.family, c.weighted, b, res.Checksum, scalarSub.Checksum())
			}
			rep.Cases = append(rep.Cases, res)
		}
	}
	return rep, nil
}

func runBatch(cfg Config, w io.Writer) error {
	rep, err := BuildBatchReport(cfg)
	if err != nil {
		return err
	}
	t := &Table{
		Title:  fmt.Sprintf("multi-source batch engine vs scalar subset solves (%d workers)", rep.Workers),
		Header: []string{"dataset", "weighted", "n", "B", "engine", "scalar", "batched", "speedup", "checksum"},
	}
	for _, r := range rep.Cases {
		t.AddRow(r.Dataset, r.Weighted, r.Vertices, r.Sources, r.Engine,
			FormatDuration(time.Duration(r.ScalarNs)),
			FormatDuration(time.Duration(r.BatchNs)),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%016x", r.Checksum))
	}
	t.Fprint(w)
	return nil
}

// WriteBatchReport runs the batch experiment and writes its structured
// report as indented JSON to path (the BENCH_PR4.json artifact).
func WriteBatchReport(path string, cfg Config) error {
	rep, err := BuildBatchReport(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
