package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table, the output format of every
// experiment (the paper's tables map to it directly; its figures map to
// one row per series with one column per x value).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "  %s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		b.WriteString("  ")
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			// Right-align numeric-looking cells, left-align the rest.
			if isNumeric(c) {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			} else {
				b.WriteString(c)
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	digits := 0
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
			digits++
		case r == '.' || r == '-' || r == '+' || r == ' ' || r == 'x' ||
			r == 'm' || r == 's' || r == 'n' || r == 'u' || r == 'µ':
			// duration/multiplier suffixes
		default:
			return false
		}
	}
	return digits > 0
}
