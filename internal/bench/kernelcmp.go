package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"parapsp/internal/core"
	"parapsp/internal/gen"
	"parapsp/internal/graph"
)

// The kernelcmp experiment races the registered scalar SSSP kernels —
// the paper's modified Dijkstra, Δ-stepping, and the heap ablation —
// through the same ParAPSP pipeline on weighted power-law and grid
// graphs. Every kernel must produce the identical distance matrix (the
// checksums are asserted, not just reported); the interesting output is
// the time and work-counter differences, which separate the queue
// discipline from the fold/row-reuse machinery the pipeline shares.

func init() {
	register(Experiment{
		ID:     "kernelcmp",
		Paper:  "ours (kernel registry)",
		Title:  "SSSP source-kernel comparison through the shared pipeline",
		Expect: "identical checksums; dijkstra leads on power-law, delta competitive on grids (long-tail distances), heap pays queue overhead",
		Run:    runKernelCompare,
	})
}

// cmpKernels are the scalar kernels the experiment races. The lane
// kernels (msbfs/sweep) are excluded: they answer a different question
// (multi-source batching, see the batch experiment), not queue
// discipline.
var cmpKernels = []string{core.KernelDijkstra, core.KernelDelta, core.KernelHeap}

// KernelCompareReport is the machine-readable result of the kernelcmp
// experiment, written to BENCH_PR5.json by cmd/apspbench -kerneljson.
type KernelCompareReport struct {
	Kernels  []string               `json:"kernels"`
	Datasets []KernelCompareDataset `json:"datasets"`
}

// KernelCompareDataset is one graph's kernel race.
type KernelCompareDataset struct {
	Dataset  string                `json:"dataset"`
	Vertices int                   `json:"vertices"`
	Arcs     int64                 `json:"arcs"`
	Workers  int                   `json:"workers"`
	Checksum uint64                `json:"checksum"` // shared by construction: divergence is an error
	Rows     []KernelCompareResult `json:"rows"`
}

// KernelCompareResult is one kernel's solve on one dataset.
type KernelCompareResult struct {
	Kernel      string  `json:"kernel"`
	ElapsedNs   int64   `json:"elapsed_ns"`
	VsDijkstra  float64 `json:"vs_dijkstra"` // elapsed relative to the dijkstra row (1.0 = equal)
	Pops        int64   `json:"pops"`
	Enqueues    int64   `json:"enqueues"`
	EdgeScans   int64   `json:"edge_scans"`
	EdgeUpdates int64   `json:"edge_updates"`
	Folds       int64   `json:"folds"`
}

// kernelCmpGraph builds one comparison graph: weighted (the kernels
// differ only in how they order weighted relaxations), sized for a full
// APSP matrix.
func kernelCmpGraph(cfg Config, family string) (*graph.Graph, error) {
	n := int(2000 * cfg.Scale)
	if n < 256 {
		n = 256
	}
	w := gen.Weighting{Min: 1, Max: 100}
	switch family {
	case "power-law":
		return gen.PowerLawConfiguration(n, 2.5, 2, true, cfg.Seed, w)
	case "grid":
		side := int(math.Sqrt(float64(n)))
		return gen.Grid2D(side, side, true, cfg.Seed, w)
	default:
		return nil, fmt.Errorf("bench: unknown kernelcmp dataset %q", family)
	}
}

// BuildKernelCompareReport runs the kernel race and returns the
// structured report. A checksum divergence between kernels is an error,
// not a report row — the registry's contract is exactness.
func BuildKernelCompareReport(cfg Config) (*KernelCompareReport, error) {
	cfg = cfg.normalized()
	threads := sortedCopy(cfg.Threads)
	workers := threads[0]
	for _, p := range threads {
		if p <= runtime.NumCPU() && p > workers {
			workers = p
		}
	}
	rep := &KernelCompareReport{Kernels: cmpKernels}
	for _, family := range []string{"power-law", "grid"} {
		g, err := kernelCmpGraph(cfg, family)
		if err != nil {
			return nil, err
		}
		ds := KernelCompareDataset{
			Dataset:  family,
			Vertices: g.N(),
			Arcs:     g.NumArcs(),
			Workers:  workers,
		}
		for _, kern := range cmpKernels {
			var res *core.Result
			elapsed := Measure(cfg.Runs, workers, func() {
				r, err2 := core.Solve(g, core.ParAPSP, core.Options{Workers: workers, Kernel: kern})
				if err2 != nil {
					err = err2
					return
				}
				res = r
			})
			if err != nil {
				return nil, fmt.Errorf("bench: %s on %s: %w", kern, family, err)
			}
			sum := res.D.Checksum()
			if len(ds.Rows) == 0 {
				ds.Checksum = sum
			} else if sum != ds.Checksum {
				return nil, fmt.Errorf("bench: kernel %s diverged on %s: checksum %016x, want %016x",
					kern, family, sum, ds.Checksum)
			}
			ds.Rows = append(ds.Rows, KernelCompareResult{
				Kernel:      kern,
				ElapsedNs:   elapsed.Nanoseconds(),
				Pops:        res.Stats.Pops,
				Enqueues:    res.Stats.Enqueues,
				EdgeScans:   res.Stats.EdgeScans,
				EdgeUpdates: res.Stats.EdgeUpdates,
				Folds:       res.Stats.Folds,
			})
		}
		base := float64(ds.Rows[0].ElapsedNs)
		for i := range ds.Rows {
			if base > 0 {
				ds.Rows[i].VsDijkstra = float64(ds.Rows[i].ElapsedNs) / base
			}
		}
		rep.Datasets = append(rep.Datasets, ds)
	}
	return rep, nil
}

func runKernelCompare(cfg Config, w io.Writer) error {
	rep, err := BuildKernelCompareReport(cfg)
	if err != nil {
		return err
	}
	for _, ds := range rep.Datasets {
		t := &Table{
			Title: fmt.Sprintf("%s (n=%d arcs=%d, %d workers, checksum %016x)",
				ds.Dataset, ds.Vertices, ds.Arcs, ds.Workers, ds.Checksum),
			Header: []string{"kernel", "elapsed", "vs dijkstra", "pops", "enqueues", "edge scans", "edge updates", "folds"},
		}
		for _, r := range ds.Rows {
			t.AddRow(r.Kernel, FormatDuration(time.Duration(r.ElapsedNs)),
				fmt.Sprintf("%.2fx", r.VsDijkstra),
				r.Pops, r.Enqueues, r.EdgeScans, r.EdgeUpdates, r.Folds)
		}
		t.Fprint(w)
	}
	return nil
}

// WriteKernelCompareReport runs the kernelcmp experiment and writes its
// structured report as indented JSON to path (the BENCH_PR5.json
// artifact).
func WriteKernelCompareReport(path string, cfg Config) error {
	rep, err := BuildKernelCompareReport(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
