package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"parapsp/internal/core"
	"parapsp/internal/gen"
	"parapsp/internal/graph"
)

// The kernelcmp experiment races the registered scalar SSSP kernels —
// the paper's modified Dijkstra, Δ-stepping, and the heap ablation —
// through the same ParAPSP pipeline on weighted power-law and grid
// graphs. Every kernel must produce the identical distance matrix (the
// checksums are asserted, not just reported); the interesting output is
// the time and work-counter differences, which separate the queue
// discipline from the fold/row-reuse machinery the pipeline shares.

func init() {
	register(Experiment{
		ID:     "kernelcmp",
		Paper:  "ours (kernel registry)",
		Title:  "SSSP source-kernel comparison through the shared pipeline",
		Expect: "identical checksums; lazy stepping (deltastar/rho) leads on weighted power-law, dijkstra holds grids, heap pays queue overhead, auto lands within a few percent of the per-dataset best",
		Run:    runKernelCompare,
	})
}

// cmpKernels are the scalar kernels the experiment races. The lane
// kernels (msbfs/sweep) are excluded: they answer a different question
// (multi-source batching, see the batch experiment), not queue
// discipline. The adaptive "auto" selector runs as one extra row after
// the race — its resolved pick and elapsed land in the report so the
// regression gate can hold it to the per-dataset best.
var cmpKernels = []string{
	core.KernelDijkstra,
	core.KernelDelta,
	core.KernelDeltaStar,
	core.KernelRho,
	core.KernelParDij,
	core.KernelHeap,
}

// KernelCompareReport is the machine-readable result of the kernelcmp
// experiment, written to BENCH_PR6.json by cmd/apspbench -kerneljson.
type KernelCompareReport struct {
	Kernels  []string               `json:"kernels"`
	Datasets []KernelCompareDataset `json:"datasets"`
}

// KernelCompareDataset is one graph's kernel race.
type KernelCompareDataset struct {
	Dataset  string                `json:"dataset"`
	Vertices int                   `json:"vertices"`
	Arcs     int64                 `json:"arcs"`
	Workers  int                   `json:"workers"`
	Checksum uint64                `json:"checksum"` // shared by construction: divergence is an error
	Rows     []KernelCompareResult `json:"rows"`
}

// KernelCompareResult is one kernel's solve on one dataset.
type KernelCompareResult struct {
	Kernel     string  `json:"kernel"`
	ElapsedNs  int64   `json:"elapsed_ns"`
	VsDijkstra float64 `json:"vs_dijkstra"` // elapsed relative to the dijkstra row (1.0 = equal)
	// Resolved is the concrete kernel that ran — only set on the "auto"
	// row, where the selector's pick is the datum.
	Resolved string `json:"resolved,omitempty"`
	// AllocsPerSolve is the steady-state mallocs per re-solved source
	// (core.KernelSteadyAllocs): 0 for the pooled scalar kernels, which
	// bench_test.go asserts.
	AllocsPerSolve float64 `json:"allocs_per_solve"`
	Pops           int64   `json:"pops"`
	Enqueues       int64   `json:"enqueues"`
	EdgeScans      int64   `json:"edge_scans"`
	EdgeUpdates    int64   `json:"edge_updates"`
	Folds          int64   `json:"folds"`
}

// medianDuration returns the median of ds (mean of the middle pair for
// even lengths). ds is sorted in place.
func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	mid := len(ds) / 2
	if len(ds)%2 == 1 {
		return ds[mid]
	}
	return (ds[mid-1] + ds[mid]) / 2
}

// kernelCmpGraph builds one comparison graph: weighted (the kernels
// differ only in how they order weighted relaxations), sized for a full
// APSP matrix.
func kernelCmpGraph(cfg Config, family string) (*graph.Graph, error) {
	n := int(2000 * cfg.Scale)
	if n < 256 {
		n = 256
	}
	w := gen.Weighting{Min: 1, Max: 100}
	switch family {
	case "power-law":
		return gen.PowerLawConfiguration(n, 2.5, 2, true, cfg.Seed, w)
	case "grid":
		side := int(math.Sqrt(float64(n)))
		return gen.Grid2D(side, side, true, cfg.Seed, w)
	default:
		return nil, fmt.Errorf("bench: unknown kernelcmp dataset %q", family)
	}
}

// BuildKernelCompareReport runs the kernel race and returns the
// structured report. A checksum divergence between kernels is an error,
// not a report row — the registry's contract is exactness.
func BuildKernelCompareReport(cfg Config) (*KernelCompareReport, error) {
	cfg = cfg.normalized()
	// The race runs at the largest requested thread count even when it
	// oversubscribes the host: the dynamic schedule keeps oversubscription
	// harmless for relative wall clock, and the regression gate needs the
	// kernels' parallel regime, not the CI runner's core count.
	threads := sortedCopy(cfg.Threads)
	workers := threads[len(threads)-1]
	rep := &KernelCompareReport{Kernels: append(append([]string{}, cmpKernels...), core.KernelAuto)}
	for _, family := range []string{"power-law", "grid"} {
		g, err := kernelCmpGraph(cfg, family)
		if err != nil {
			return nil, err
		}
		ds := KernelCompareDataset{
			Dataset:  family,
			Vertices: g.N(),
			Arcs:     g.NumArcs(),
			Workers:  workers,
		}
		// Interleaved rounds, not per-kernel batches: the report's datum
		// is the RATIO against the dijkstra row, and on a shared runner
		// absolute throughput drifts over the minutes a batched sweep
		// takes (the denominator would be measured on a fresh machine,
		// every later row on a throttled one). Round-robin makes every
		// kernel's rounds span the same wall-clock epochs, so drift
		// cancels in the ratio instead of masquerading as a regression.
		// Each row then reports its MEDIAN round: a scheduler spike or GC
		// pause landing on one kernel's turn discards that round for that
		// kernel instead of dragging its mean.
		rounds := make([][]time.Duration, len(rep.Kernels))
		results := make([]*core.Result, len(rep.Kernels))
		if err := func() error {
			prev := runtime.GOMAXPROCS(0)
			if workers > prev {
				runtime.GOMAXPROCS(workers)
				defer runtime.GOMAXPROCS(prev)
			}
			for run := 0; run < cfg.Runs; run++ {
				for ki, kern := range rep.Kernels {
					// Collect the previous solve's garbage outside the
					// timing window — each discarded matrix is large.
					runtime.GC()
					start := time.Now()
					res, err := core.Solve(g, core.ParAPSP, core.Options{Workers: workers, Kernel: kern})
					if err != nil {
						return fmt.Errorf("bench: %s on %s: %w", kern, family, err)
					}
					rounds[ki] = append(rounds[ki], time.Since(start))
					results[ki] = res
				}
			}
			return nil
		}(); err != nil {
			return nil, err
		}
		for ki, kern := range rep.Kernels {
			res := results[ki]
			sum := res.D.Checksum()
			if len(ds.Rows) == 0 {
				ds.Checksum = sum
			} else if sum != ds.Checksum {
				return nil, fmt.Errorf("bench: kernel %s diverged on %s: checksum %016x, want %016x",
					kern, family, sum, ds.Checksum)
			}
			allocs, err := core.KernelSteadyAllocs(g, kern, 10)
			if err != nil {
				return nil, fmt.Errorf("bench: allocs probe for %s on %s: %w", kern, family, err)
			}
			row := KernelCompareResult{
				Kernel:         kern,
				ElapsedNs:      medianDuration(rounds[ki]).Nanoseconds(),
				AllocsPerSolve: allocs,
				Pops:           res.Stats.Pops,
				Enqueues:       res.Stats.Enqueues,
				EdgeScans:      res.Stats.EdgeScans,
				EdgeUpdates:    res.Stats.EdgeUpdates,
				Folds:          res.Stats.Folds,
			}
			if kern == core.KernelAuto {
				row.Resolved = res.Kernel
			}
			ds.Rows = append(ds.Rows, row)
		}
		base := float64(ds.Rows[0].ElapsedNs)
		for i := range ds.Rows {
			if base > 0 {
				ds.Rows[i].VsDijkstra = float64(ds.Rows[i].ElapsedNs) / base
			}
		}
		rep.Datasets = append(rep.Datasets, ds)
	}
	return rep, nil
}

func runKernelCompare(cfg Config, w io.Writer) error {
	rep, err := BuildKernelCompareReport(cfg)
	if err != nil {
		return err
	}
	for _, ds := range rep.Datasets {
		t := &Table{
			Title: fmt.Sprintf("%s (n=%d arcs=%d, %d workers, checksum %016x)",
				ds.Dataset, ds.Vertices, ds.Arcs, ds.Workers, ds.Checksum),
			Header: []string{"kernel", "elapsed", "vs dijkstra", "allocs/solve", "pops", "enqueues", "edge scans", "edge updates", "folds"},
		}
		for _, r := range ds.Rows {
			name := r.Kernel
			if r.Resolved != "" {
				name = fmt.Sprintf("%s→%s", r.Kernel, r.Resolved)
			}
			t.AddRow(name, FormatDuration(time.Duration(r.ElapsedNs)),
				fmt.Sprintf("%.2fx", r.VsDijkstra),
				fmt.Sprintf("%.1f", r.AllocsPerSolve),
				r.Pops, r.Enqueues, r.EdgeScans, r.EdgeUpdates, r.Folds)
		}
		t.Fprint(w)
	}
	return nil
}

// WriteKernelCompareReport runs the kernelcmp experiment and writes its
// structured report as indented JSON to path (the BENCH_PR6.json
// artifact).
func WriteKernelCompareReport(path string, cfg Config) error {
	rep, err := BuildKernelCompareReport(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
