package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"parapsp/internal/core"
)

// tinyConfig keeps harness self-tests fast: minimal scales and sweeps.
func tinyConfig() Config {
	return Config{
		Scale:       0.02, // multiplies the already-small experiment bases
		Threads:     []int{1, 2},
		Runs:        1,
		Seed:        7,
		MaxMemBytes: 1 << 30,
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table2", "fig1", "table1", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig9-amdahl", "fig10", "seqgap", "baselines",
		"exactness", "complexity", "distmem", "workstats", "weighted", "oracle",
		"ablation-queue", "ablation-buckets",
		"ablation-threshold", "ablation-reuse", "kernelcmp", "kernels",
		"load", "obs-overhead", "serve", "store", "batch",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(got), len(want), got)
	}
	for i, id := range want {
		if got[i] != id {
			t.Errorf("registry[%d] = %q, want %q", i, got[i], id)
		}
	}
	for _, e := range Registry() {
		if e.Paper == "" || e.Title == "" || e.Expect == "" || e.Run == nil {
			t.Errorf("experiment %q has missing metadata", e.ID)
		}
	}
}

func TestGet(t *testing.T) {
	e, err := Get("fig8")
	if err != nil || e.ID != "fig8" {
		t.Fatalf("Get(fig8) = %v, %v", e.ID, err)
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestEveryExperimentRunsAtTinyScale executes the full registry end to end
// on miniature workloads: this is the integration test of the harness,
// datasets, ordering, core and baselines together.
func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep skipped in -short mode")
	}
	cfg := tinyConfig()
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := RunOne(e, cfg, &buf); err != nil {
				t.Fatalf("%s failed: %v\noutput:\n%s", e.ID, err, buf.String())
			}
			out := buf.String()
			if !strings.Contains(out, e.ID) {
				t.Errorf("%s output missing banner: %q", e.ID, out[:min(len(out), 200)])
			}
			if !strings.Contains(out, "completed in") {
				t.Errorf("%s output missing completion marker", e.ID)
			}
		})
	}
}

func TestRunAllTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := RunAll(tinyConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range IDs() {
		if !strings.Contains(buf.String(), "=== "+id) {
			t.Errorf("RunAll output missing %s", id)
		}
	}
}

func TestMemoryBoundRefusal(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxMemBytes = 64 // nothing fits
	e, _ := Get("fig8")
	var buf bytes.Buffer
	if err := RunOne(e, cfg, &buf); err == nil {
		t.Error("fig8 ran despite a 64-byte matrix bound")
	}
}

func TestSpeedups(t *testing.T) {
	s := Speedups([]time.Duration{100, 50, 25})
	want := []float64{1, 2, 4}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("Speedups[%d] = %g, want %g", i, s[i], want[i])
		}
	}
	if got := Speedups(nil); len(got) != 0 {
		t.Error("Speedups(nil) non-empty")
	}
	if got := Speedups([]time.Duration{0, 10}); got[0] != 0 || got[1] != 0 {
		t.Errorf("zero-base speedups = %v", got)
	}
}

func TestMeasure(t *testing.T) {
	calls := 0
	d := Measure(3, 1, func() { calls++; time.Sleep(time.Millisecond) })
	if calls != 3 {
		t.Errorf("Measure ran f %d times, want 3", calls)
	}
	if d < time.Millisecond/2 {
		t.Errorf("mean duration %v suspiciously small", d)
	}
	if Measure(0, 1, func() {}) < 0 {
		t.Error("negative duration")
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{1500 * time.Millisecond, "1500 ms"},
		{12 * time.Millisecond, "12.00 ms"},
		{1500 * time.Microsecond, "1.50 ms"},
		{120 * time.Microsecond, "0.1200 ms"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Header: []string{"name", "value"},
	}
	tb.AddRow("alpha", 42)
	tb.AddRow("beta-very-long", 7)
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "alpha") {
		t.Fatalf("table output: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
	// header and separator align
	if len(lines[1]) == 0 || len(lines[2]) == 0 {
		t.Error("missing header or separator")
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := &Table{Header: []string{"x"}}
	tb.AddRow(3.14159)
	var buf bytes.Buffer
	tb.Fprint(&buf)
	if !strings.Contains(buf.String(), "3.14") || strings.Contains(buf.String(), "3.14159") {
		t.Errorf("float formatting: %q", buf.String())
	}
}

func TestIsNumeric(t *testing.T) {
	for _, s := range []string{"42", "3.14", "12.00 ms", "2.50x", "-1"} {
		if !isNumeric(s) {
			t.Errorf("isNumeric(%q) = false", s)
		}
	}
	for _, s := range []string{"", "alpha", "ms", "n/a"} {
		if isNumeric(s) {
			t.Errorf("isNumeric(%q) = true", s)
		}
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{}.normalized()
	d := Default()
	if c.Scale != d.Scale || len(c.Threads) != len(d.Threads) || c.Runs != d.Runs || c.Seed != d.Seed || c.MaxMemBytes != d.MaxMemBytes {
		t.Errorf("normalized zero config = %+v", c)
	}
	c2 := Config{Scale: 0.5, Runs: 9}.normalized()
	if c2.Scale != 0.5 || c2.Runs != 9 {
		t.Error("explicit fields overwritten")
	}
}

// TestKernelCompareAllocs pins the pooled-kernel alloc contract through
// the report schema: every kernel with pooled per-worker scratch reports
// allocs_per_solve == 0 (steady state, core.KernelSteadyAllocs), and the
// auto row names the concrete kernel it resolved to. Skipped under the
// race detector, whose instrumentation allocates.
func TestKernelCompareAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel race skipped in -short mode")
	}
	rep, err := BuildKernelCompareReport(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	pooled := map[string]bool{
		core.KernelDijkstra:  true,
		core.KernelDelta:     true,
		core.KernelDeltaStar: true,
		core.KernelRho:       true,
	}
	for _, ds := range rep.Datasets {
		for _, r := range ds.Rows {
			if r.Kernel == core.KernelAuto {
				if r.Resolved == "" || r.Resolved == core.KernelAuto {
					t.Errorf("%s: auto row resolved to %q, want a concrete kernel", ds.Dataset, r.Resolved)
				}
				continue
			}
			if r.Resolved != "" {
				t.Errorf("%s/%s: concrete row carries resolved=%q", ds.Dataset, r.Kernel, r.Resolved)
			}
			if pooled[r.Kernel] && r.AllocsPerSolve != 0 && !benchRaceEnabled {
				t.Errorf("%s/%s: allocs_per_solve = %.1f, want 0 (pooled scratch)",
					ds.Dataset, r.Kernel, r.AllocsPerSolve)
			}
		}
	}
}

func TestSortedCopyDoesNotMutate(t *testing.T) {
	in := []int{4, 1, 2}
	out := sortedCopy(in)
	if out[0] != 1 || out[2] != 4 {
		t.Errorf("sortedCopy = %v", out)
	}
	if in[0] != 4 {
		t.Error("input mutated")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
