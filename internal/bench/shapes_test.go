package bench

import (
	"testing"
	"time"

	"parapsp/internal/core"
	"parapsp/internal/datasets"
	"parapsp/internal/order"
)

// Shape tests: the paper's qualitative claims, asserted on deterministic
// work counters wherever possible (wall-clock assertions are flaky on
// shared machines; counters are not).

func TestShapeDegreeOrderReducesWork(t *testing.T) {
	// Section 2.2 claim, mechanically: the descending-degree order makes
	// completed hub rows available early, so later searches fold them in
	// and scan far fewer edges than the identity order.
	g, _, err := datasets.Synthesize("WordNet", 0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Pin the scalar engine: these counters measure the fold/reuse
	// mechanism, which the multi-source batch engine replaces wholesale.
	id, err := core.Solve(g, core.ParAlg1, core.Options{Batch: core.BatchOff})
	if err != nil {
		t.Fatal(err)
	}
	deg, err := core.Solve(g, core.ParAPSP, core.Options{Batch: core.BatchOff})
	if err != nil {
		t.Fatal(err)
	}
	if deg.Stats.EdgeScans*12 > id.Stats.EdgeScans*10 {
		t.Errorf("degree order edge scans %d vs identity %d: expected >= 1.2x reduction",
			deg.Stats.EdgeScans, id.Stats.EdgeScans)
	}
	// The mechanism is *early* folding: hub rows complete first, so each
	// later search terminates after far fewer pops — the fold rate per
	// pop stays similar, but the total pop count collapses.
	if deg.Stats.Pops*2 > id.Stats.Pops {
		t.Errorf("degree order pops %d not <= half of identity %d",
			deg.Stats.Pops, id.Stats.Pops)
	}
}

func TestShapeRowReuseIsTheMechanism(t *testing.T) {
	// Section 5.4 conjecture: the dynamic-programming reuse carries the
	// performance. Disabling it multiplies the edge work.
	g, _, err := datasets.Synthesize("WordNet", 0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	on, err := core.Solve(g, core.ParAPSP, core.Options{Batch: core.BatchOff})
	if err != nil {
		t.Fatal(err)
	}
	off, err := core.Solve(g, core.ParAPSP, core.Options{DisableRowReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.Stats.EdgeScans < 2*on.Stats.EdgeScans {
		t.Errorf("reuse-off edge scans %d not at least 2x reuse-on %d",
			off.Stats.EdgeScans, on.Stats.EdgeScans)
	}
}

func TestShapeSelectionOrderingDominatesOrderingTime(t *testing.T) {
	// Table 1's contrast: the O(n^2) selection sort is orders of
	// magnitude slower than the bucket family. Wall-clock, but with a
	// 10x margin over an effect measured at >100x.
	degrees, _, err := datasets.SynthesizeDegrees("WordNet", 0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	selStart := time.Now()
	order.SelectionSort(degrees, 1.0)
	sel := time.Since(selStart)
	mlStart := time.Now()
	order.MultiLists(degrees, 4, 0.1)
	ml := time.Since(mlStart)
	if sel < 10*ml {
		t.Errorf("selection %v not >= 10x MultiLists %v", sel, ml)
	}
}

func TestShapeParBucketsApproximationOnRealDegrees(t *testing.T) {
	// Section 4.2: the fixed-width bucketing is only approximate on a
	// power-law degree array, while ParMax/MultiLists are exact.
	degrees, _, err := datasets.SynthesizeDegrees("WordNet", 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	approx := order.ParBuckets(degrees, 4, 100)
	if order.SortedByKeysDesc(degrees, approx) {
		t.Error("ParBuckets produced an exact order on power-law degrees; the Figure 5 contrast would vanish")
	}
	if !order.SortedByKeysDesc(degrees, order.ParMax(degrees, 4, 0.01)) {
		t.Error("ParMax not exact")
	}
	if !order.SortedByKeysDesc(degrees, order.MultiLists(degrees, 4, 0.1)) {
		t.Error("MultiLists not exact")
	}
}

func TestShapeOptimizedBeatsBasicSequentially(t *testing.T) {
	// Section 5.2: the optimized algorithm is 2-4x faster than basic.
	// Asserted on deterministic work (pops + edge scans), 1 worker.
	g, _, err := datasets.Synthesize("WordNet", 0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	basic, err := core.Solve(g, core.SeqBasic, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.Solve(g, core.SeqOptimized, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Stats.EdgeScans*2 > basic.Stats.EdgeScans {
		t.Errorf("optimized edge scans %d not <= half of basic %d",
			opt.Stats.EdgeScans, basic.Stats.EdgeScans)
	}
}
