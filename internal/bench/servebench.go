package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"parapsp/internal/gen"
	"parapsp/internal/serve"
)

// The serve experiment drives parapspd's serving layer (internal/serve)
// over real HTTP with a mixed hot/cold workload: most queries are drawn
// from a small set of hot sources so the LRU row cache can earn its keep,
// the rest are uniform cold misses that force subset solves. It reports
// client-observed latency percentiles, the cache hit rate, and the serve
// counters — the BENCH_PR3.json artifact.

func init() {
	register(Experiment{
		ID:     "serve",
		Paper:  "ours (serving)",
		Title:  "Distance-query service under a mixed hot/cold HTTP workload",
		Expect: "hot-source locality turns into a high cache hit rate; p50 is a cache hit, p99 is a cold subset solve",
		Run:    runServe,
	})
}

// ServeReport is the machine-readable result of the serve experiment,
// written to BENCH_PR3.json by cmd/apspbench -servejson.
type ServeReport struct {
	Dataset    string  `json:"dataset"`
	Vertices   int     `json:"vertices"`
	Arcs       int64   `json:"arcs"`
	CacheRows  int     `json:"cache_rows"`
	Workers    int     `json:"workers"`
	Clients    int     `json:"clients"`
	HotSources int     `json:"hot_sources"`
	HotShare   float64 `json:"hot_share"`
	Requests   int64   `json:"requests"`
	Queries    int64   `json:"queries"`
	ElapsedNs  int64   `json:"elapsed_ns"`
	// Latencies are client-observed, per HTTP request, over loopback.
	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`
	// HitRate is serve.cache.hits / serve.cache.lookups at the end of the
	// run; ApproxShare the fraction of answers served from oracle bounds.
	HitRate     float64          `json:"hit_rate"`
	ApproxShare float64          `json:"approx_share"`
	Throttled   int64            `json:"throttled"`
	Metrics     map[string]int64 `json:"metrics"`
}

const (
	serveBenchClients  = 4
	serveBenchPerC     = 300
	serveBenchHotSrc   = 32
	serveBenchHotShare = 0.8
)

// BuildServeReport boots a server on a synthetic power-law graph, runs the
// mixed workload, and returns the structured report.
func BuildServeReport(cfg Config) (*ServeReport, error) {
	cfg = cfg.normalized()
	n := int(1500 * cfg.Scale)
	if n < 128 {
		n = 128
	}
	g, err := gen.PowerLawConfiguration(n, 2.5, 2, true, cfg.Seed, gen.Weighting{})
	if err != nil {
		return nil, err
	}
	workers := 1
	for _, p := range cfg.Threads {
		if p > workers && p <= runtime.NumCPU() {
			workers = p
		}
	}
	cacheRows := n / 8
	if cacheRows < 2*serveBenchHotSrc {
		cacheRows = 2 * serveBenchHotSrc // the hot set must be cacheable
	}
	s, err := serve.New(g, serve.Config{
		Workers:     workers,
		CacheBytes:  int64(cacheRows) * int64(n) * 4,
		Landmarks:   16,
		MaxInflight: 4 * serveBenchClients,
	})
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	base := "http://" + l.Addr().String()

	hot := serveBenchHotSrc
	if hot > n/4 {
		hot = n / 4
	}
	hotSet := make([]int32, hot)
	pick := rand.New(rand.NewSource(cfg.Seed))
	for i := range hotSet {
		hotSet[i] = int32(pick.Intn(n))
	}

	latencies := make([][]int64, serveBenchClients)
	errs := make([]error, serveBenchClients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < serveBenchClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			latencies[c], errs[c] = serveClient(base, cfg.Seed+int64(c)+1, hotSet, n)
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if err := s.Shutdown(context.Background()); err != nil {
		return nil, err
	}
	if err := <-serveDone; err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var all []int64
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	snap := s.Metrics().Snapshot()
	rep := &ServeReport{
		Dataset:    "power-law",
		Vertices:   n,
		Arcs:       g.NumArcs(),
		CacheRows:  cacheRows,
		Workers:    workers,
		Clients:    serveBenchClients,
		HotSources: hot,
		HotShare:   serveBenchHotShare,
		Requests:   int64(len(all)),
		Queries:    snap["serve.answers.exact"] + snap["serve.answers.approx"],
		ElapsedNs:  elapsed.Nanoseconds(),
		P50Ns:      percentile(all, 50),
		P99Ns:      percentile(all, 99),
		Throttled:  snap["serve.throttled"],
		Metrics:    snap,
	}
	if lk := snap["serve.cache.lookups"]; lk > 0 {
		rep.HitRate = float64(snap["serve.cache.hits"]) / float64(lk)
	}
	if q := rep.Queries; q > 0 {
		rep.ApproxShare = float64(snap["serve.answers.approx"]) / float64(q)
	}
	return rep, nil
}

// serveClient issues serveBenchPerC requests against base with an 80/20
// hot/cold source mix and a 60/20/20 exact/approx/batch operation mix,
// returning the per-request latencies. A 429 still counts as a request
// (its latency is the backpressure response time) — the report's
// Throttled field says how many there were.
func serveClient(base string, seed int64, hotSet []int32, n int) ([]int64, error) {
	rng := rand.New(rand.NewSource(seed))
	client := &http.Client{}
	src := func() int32 {
		if rng.Float64() < serveBenchHotShare {
			return hotSet[rng.Intn(len(hotSet))]
		}
		return int32(rng.Intn(n))
	}
	lats := make([]int64, 0, serveBenchPerC)
	for i := 0; i < serveBenchPerC; i++ {
		var (
			resp *http.Response
			err  error
		)
		start := time.Now()
		switch op := rng.Float64(); {
		case op < 0.6:
			resp, err = client.Get(fmt.Sprintf("%s/dist?u=%d&v=%d", base, src(), rng.Intn(n)))
		case op < 0.8:
			resp, err = client.Get(fmt.Sprintf("%s/dist?u=%d&v=%d&tol=0.5", base, src(), rng.Intn(n)))
		default:
			var sb strings.Builder
			sb.WriteString(`{"queries":[`)
			for j := 0; j < 4; j++ {
				if j > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, `{"u":%d,"v":%d}`, src(), rng.Intn(n))
			}
			sb.WriteString(`]}`)
			resp, err = client.Post(base+"/batch", "application/json", strings.NewReader(sb.String()))
		}
		if err != nil {
			return nil, err
		}
		_, err = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		lats = append(lats, time.Since(start).Nanoseconds())
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
			return nil, fmt.Errorf("bench: unexpected status %d", resp.StatusCode)
		}
	}
	return lats, nil
}

// percentile returns the p-th percentile of sorted (nearest-rank).
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func runServe(cfg Config, w io.Writer) error {
	rep, err := BuildServeReport(cfg)
	if err != nil {
		return err
	}
	t := &Table{
		Title: fmt.Sprintf("mixed hot/cold workload: %d clients x %d requests, %d%% from %d hot sources",
			rep.Clients, serveBenchPerC, int(rep.HotShare*100), rep.HotSources),
		Header: []string{"dataset", "n", "cache rows", "hit rate", "p50", "p99", "approx share", "throttled"},
	}
	t.AddRow(rep.Dataset, rep.Vertices, rep.CacheRows,
		fmt.Sprintf("%.1f%%", rep.HitRate*100),
		FormatDuration(time.Duration(rep.P50Ns)),
		FormatDuration(time.Duration(rep.P99Ns)),
		fmt.Sprintf("%.1f%%", rep.ApproxShare*100),
		rep.Throttled)
	t.Fprint(w)

	ct := &Table{
		Title:  "serve counters",
		Header: []string{"counter", "value"},
	}
	for _, k := range sortedKeys(rep.Metrics) {
		ct.AddRow(k, rep.Metrics[k])
	}
	ct.Fprint(w)
	return nil
}

// WriteServeReport runs the serve experiment and writes its structured
// report as indented JSON to path (the BENCH_PR3.json artifact).
func WriteServeReport(path string, cfg Config) error {
	rep, err := BuildServeReport(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
