package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"parapsp/internal/admit"
	"parapsp/internal/gen"
	"parapsp/internal/serve"
)

// The load experiment measures the admission layer's saturation behavior:
// a fixed, light premium workload runs against a swept best-effort offered
// load, over real HTTP, and the report pins the two properties the SLO
// tiers promise — the saturation knee is visible in the best-effort
// achieved-vs-offered curve (best-effort degrades first: rising p99 and
// 429s), while premium p99 holds near its unloaded value because the
// premium reserve keeps best-effort from occupying the whole inflight
// budget. The BENCH_PR10.json artifact.

func init() {
	register(Experiment{
		ID:     "load",
		Paper:  "ours (admission)",
		Title:  "Two-tier saturation sweep: offered load to the knee, premium p99 held",
		Expect: "best-effort throughput flattens and sheds 429s past the knee; premium p99 stays within 2x unloaded",
		Run:    runLoad,
	})
}

// TierLoad is one tier's outcome at one offered-load step.
type TierLoad struct {
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	Sent        int64   `json:"sent"`
	OK          int64   `json:"ok"`
	Rejected    int64   `json:"rejected"` // 429/503 fast-fails
	P50Ns       int64   `json:"p50_ns"`   // over OK responses only
	P99Ns       int64   `json:"p99_ns"`
	P999Ns      int64   `json:"p999_ns"`
}

// LoadStep is one point of the sweep: the best-effort offered load at this
// step plus both tiers' outcomes while it ran.
type LoadStep struct {
	BestEffort TierLoad `json:"besteffort"`
	Premium    TierLoad `json:"premium"`
}

// LoadReport is the machine-readable result of the load experiment.
type LoadReport struct {
	Dataset         string  `json:"dataset"`
	Vertices        int     `json:"vertices"`
	Arcs            int64   `json:"arcs"`
	Workers         int     `json:"workers"`
	MaxInflight     int     `json:"max_inflight"`
	BestEffortShare float64 `json:"besteffort_share"`
	StepNs          int64   `json:"step_ns"` // measurement window per step

	// Unloaded is the premium-only warmup step: the baseline premium p99
	// that the loaded steps are held against.
	Unloaded TierLoad   `json:"unloaded_premium"`
	Steps    []LoadStep `json:"steps"`

	// KneeOfferedRPS is the first swept best-effort load whose achieved
	// throughput fell below 85% of offered (the saturation knee); 0 when
	// the sweep never saturated.
	KneeOfferedRPS float64 `json:"knee_offered_rps"`
	// WorstPremiumP99Ns is the worst premium p99 observed across the
	// loaded steps; PremiumHolds is the SLO verdict the acceptance pins:
	// saturating best-effort load must not push premium p99 past 2x (plus
	// a small absolute floor for scheduler jitter on tiny latencies) its
	// unloaded value.
	WorstPremiumP99Ns int64 `json:"worst_premium_p99_ns"`
	PremiumHolds      bool  `json:"premium_holds"`
	// BestEffortDegraded reports that saturation was visible where it
	// should be: past the knee, best-effort shed load (429s) or its p99
	// exceeded premium's.
	BestEffortDegraded bool             `json:"besteffort_degraded"`
	Metrics            map[string]int64 `json:"metrics"`
}

const (
	loadBenchPremiumRPS = 300.0
	loadBenchPremiumWrk = 2
	loadBenchBEWrk      = 16
	loadBenchHotSrc     = 16
	loadBenchStepDur    = time.Second
)

// loadBenchSteps is the swept best-effort offered load (requests/second).
// The top steps deliberately exceed what the solver can answer, so the
// sweep always walks past the knee: achieved flattens below offered and
// the best-effort slice of the inflight budget starts shedding 429s.
var loadBenchSteps = []float64{200, 800, 3200, 12800, 25600, 51200}

// BuildLoadReport boots a quota-free two-tier server on a synthetic
// power-law graph, sweeps the best-effort offered load against a constant
// premium trickle, and returns the structured report.
func BuildLoadReport(cfg Config) (*LoadReport, error) {
	cfg = cfg.normalized()
	n := int(1200 * cfg.Scale)
	if n < 128 {
		n = 128
	}
	g, err := gen.PowerLawConfiguration(n, 2.5, 2, true, cfg.Seed, gen.Weighting{})
	if err != nil {
		return nil, err
	}
	workers := 1
	for _, p := range cfg.Threads {
		if p > workers && p <= runtime.NumCPU() {
			workers = p
		}
	}
	// A deliberately tiny inflight budget makes the knee reachable at
	// loopback request rates and keeps solver goroutines from crowding the
	// benchmark host's cores: best-effort gets one slot, the premium
	// reserve (the other slot) is what the PremiumHolds verdict exercises.
	const maxInflight = 2
	s, err := serve.New(g, serve.Config{
		Workers:     workers,
		CacheBytes:  int64(n/4) * int64(n) * 4, // n/4 hot rows
		Landmarks:   16,
		MaxInflight: maxInflight,
	})
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	base := "http://" + l.Addr().String()

	rep := &LoadReport{
		Dataset:         "power-law",
		Vertices:        n,
		Arcs:            g.NumArcs(),
		Workers:         workers,
		MaxInflight:     maxInflight,
		BestEffortShare: 0.75,
		StepNs:          loadBenchStepDur.Nanoseconds(),
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}

	// The premium population queries a small hot source set — the realistic
	// SLO shape (paid traffic hits warm rows) and, deliberately, a
	// low-variance probe: its latency measures admission interference, not
	// solve-cost noise. Warm those rows once before the baseline.
	hotSet := make([]int32, loadBenchHotSrc)
	pick := rand.New(rand.NewSource(cfg.Seed))
	for i := range hotSet {
		hotSet[i] = int32(pick.Intn(n))
	}
	for _, u := range hotSet {
		resp, err := client.Get(fmt.Sprintf("%s/dist?u=%d&v=%d", base, u, (u+1)%int32(n)))
		if err != nil {
			return nil, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	premiumURI := func(rng *rand.Rand) string {
		return fmt.Sprintf("%s/dist?u=%d&v=%d", base, hotSet[rng.Intn(len(hotSet))], rng.Intn(n))
	}
	// The best-effort population is half tolerant (sketch-answerable) and
	// half exact over cold random sources — the half that actually costs
	// solver time in the server, so offered load translates into held
	// inflight slots and the knee is a solver saturation, not an HTTP one.
	bestEffortURI := func(rng *rand.Rand) string {
		uri := fmt.Sprintf("%s/dist?u=%d&v=%d", base, rng.Intn(n), rng.Intn(n))
		if rng.Intn(2) == 0 {
			uri += "&tol=0.5"
		}
		return uri
	}

	// Discarded warmup: a burst of best-effort traffic brings the row cache
	// to its steady-state residency, so the measured steps aren't dominated
	// by the cold-start transient of the very first solves.
	runTierLoad(client, admit.BestEffort, bestEffortURI, 2000,
		loadBenchBEWrk, loadBenchStepDur, cfg.Seed+7)

	// Unloaded baseline: premium alone, one step, so the held-p99 verdict
	// has a denominator measured on the same wire and cache state.
	rep.Unloaded = runTierLoad(client, admit.Premium, premiumURI, loadBenchPremiumRPS,
		loadBenchPremiumWrk, loadBenchStepDur, cfg.Seed)

	for si, offered := range loadBenchSteps {
		var step LoadStep
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			step.BestEffort = runTierLoad(client, admit.BestEffort, bestEffortURI, offered,
				loadBenchBEWrk, loadBenchStepDur, cfg.Seed+int64(si)*31+1)
		}()
		go func() {
			defer wg.Done()
			step.Premium = runTierLoad(client, admit.Premium, premiumURI, loadBenchPremiumRPS,
				loadBenchPremiumWrk, loadBenchStepDur, cfg.Seed+int64(si)*31+2)
		}()
		wg.Wait()
		rep.Steps = append(rep.Steps, step)
		if rep.KneeOfferedRPS == 0 && step.BestEffort.AchievedRPS < 0.85*offered {
			rep.KneeOfferedRPS = offered
		}
	}

	if err := s.Shutdown(context.Background()); err != nil {
		return nil, err
	}
	if err := <-serveDone; err != nil {
		return nil, err
	}

	// The held-p99 verdict is judged at and past the knee — the claim is
	// that a *saturating* best-effort load cannot move premium latency.
	// (Pre-knee steps still appear in Steps for the full curve.) Without a
	// detected knee, the two heaviest steps stand in for saturation.
	satFrom := len(rep.Steps) - 2
	for i, offered := range loadBenchSteps {
		if offered == rep.KneeOfferedRPS {
			satFrom = i
			break
		}
	}
	if satFrom < 0 {
		satFrom = 0
	}
	for i, step := range rep.Steps {
		if i >= satFrom && step.Premium.P99Ns > rep.WorstPremiumP99Ns {
			rep.WorstPremiumP99Ns = step.Premium.P99Ns
		}
		if step.BestEffort.Rejected > 0 || step.BestEffort.P99Ns > step.Premium.P99Ns {
			rep.BestEffortDegraded = true
		}
	}
	// 2x the unloaded p99, with a 10ms absolute floor — one Go preemption
	// quantum: at sub-millisecond baselines a single timeslice spent behind
	// a solver goroutine is a large multiple of the baseline, and the SLO
	// claim is about admission interference, not host-scheduler granularity.
	bound := 2 * rep.Unloaded.P99Ns
	if floor := (10 * time.Millisecond).Nanoseconds(); bound < floor {
		bound = floor
	}
	rep.PremiumHolds = rep.WorstPremiumP99Ns <= bound
	rep.Metrics = s.Metrics().Snapshot()
	return rep, nil
}

// runTierLoad offers load at the given rate from wrk open-ish loop workers
// for the duration: each worker paces on a ticker at rate/wrk and issues
// one request per tick (makeURI picks the query), falling behind (and
// thus bounding offered load) only when latency exceeds its interval —
// which is exactly the saturation signal the report wants to expose.
func runTierLoad(client *http.Client, tier admit.Tier, makeURI func(*rand.Rand) string, rps float64, wrk int, dur time.Duration, seed int64) TierLoad {
	out := TierLoad{OfferedRPS: rps}
	interval := time.Duration(float64(wrk) / rps * float64(time.Second))
	if interval <= 0 {
		interval = time.Microsecond
	}
	deadline := time.Now().Add(dur)
	var mu sync.Mutex
	var lats []int64
	var wg sync.WaitGroup
	for w := 0; w < wrk; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for time.Now().Before(deadline) {
				<-tick.C
				req, err := http.NewRequest(http.MethodGet, makeURI(rng), nil)
				if err != nil {
					continue
				}
				req.Header.Set(admit.DefaultTierHeader, tier.String())
				req.Header.Set(admit.ClientHeader, fmt.Sprintf("%s-%d", tier, w))
				start := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				el := time.Since(start).Nanoseconds()
				mu.Lock()
				out.Sent++
				switch resp.StatusCode {
				case http.StatusOK:
					out.OK++
					lats = append(lats, el)
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					out.Rejected++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	out.AchievedRPS = float64(out.OK) / dur.Seconds()
	out.P50Ns = percentile(lats, 50)
	out.P99Ns = percentile(lats, 99)
	out.P999Ns = percentile999(lats)
	return out
}

// percentile999 is the nearest-rank p99.9 (percentile only does integer
// percents).
func percentile999(sorted []int64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * 999 / 1000
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func runLoad(cfg Config, w io.Writer) error {
	rep, err := BuildLoadReport(cfg)
	if err != nil {
		return err
	}
	t := &Table{
		Title: fmt.Sprintf("two-tier saturation sweep: premium %.0f rps constant, best-effort swept (inflight budget %d, share %.2f)",
			loadBenchPremiumRPS, rep.MaxInflight, rep.BestEffortShare),
		Header: []string{"be offered", "be achieved", "be rejected", "be p99", "prem p99", "prem rejected"},
	}
	for _, step := range rep.Steps {
		t.AddRow(
			fmt.Sprintf("%.0f", step.BestEffort.OfferedRPS),
			fmt.Sprintf("%.0f", step.BestEffort.AchievedRPS),
			step.BestEffort.Rejected,
			FormatDuration(time.Duration(step.BestEffort.P99Ns)),
			FormatDuration(time.Duration(step.Premium.P99Ns)),
			step.Premium.Rejected)
	}
	t.Fprint(w)
	fmt.Fprintf(w, "unloaded premium p99 %s; worst loaded premium p99 %s; knee at %.0f rps; premium holds: %v; best-effort degraded first: %v\n",
		FormatDuration(time.Duration(rep.Unloaded.P99Ns)),
		FormatDuration(time.Duration(rep.WorstPremiumP99Ns)),
		rep.KneeOfferedRPS, rep.PremiumHolds, rep.BestEffortDegraded)
	return nil
}

// WriteLoadReport runs the load experiment and writes its structured
// report as indented JSON to path (the BENCH_PR10.json artifact).
func WriteLoadReport(path string, cfg Config) error {
	rep, err := BuildLoadReport(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
