package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"parapsp/internal/core"
	"parapsp/internal/graph"
	"parapsp/internal/obs"
)

// The obs-overhead experiment quantifies what the tracing/metrics layer
// costs: the same kernelized ParAPSP solve is timed with the recorder
// absent (nil — the shipping configuration) and attached. The acceptance
// bar is <5% with tracing enabled and noise-level when disabled, since
// the disabled path is a single predictable branch per potential event.

func init() {
	register(Experiment{
		ID:     "obs-overhead",
		Paper:  "ours (observability)",
		Title:  "Tracing/metrics overhead on the ParAPSP hot path",
		Expect: "enabled tracing costs <5% end-to-end; the nil-recorder path is within run-to-run noise",
		Run:    runObsOverhead,
	})
}

// TraceOverheadResult compares one instrumented solve against the
// uninstrumented baseline at a single worker count.
type TraceOverheadResult struct {
	Dataset      string  `json:"dataset"`
	Workers      int     `json:"workers"`
	DisabledNs   int64   `json:"disabled_ns"`
	EnabledNs    int64   `json:"enabled_ns"`
	OverheadPct  float64 `json:"overhead_pct"`
	Events       int     `json:"events"`
	DroppedSpans int64   `json:"dropped_spans"`
}

// overheadWorkers picks the worker counts to compare: the sequential
// baseline plus the widest configured count the machine can actually run
// in parallel (same policy as the kernels end-to-end rows).
func overheadWorkers(cfg Config) []int {
	threads := sortedCopy(cfg.Threads)
	widest := threads[0]
	for _, p := range threads {
		if p <= runtime.NumCPU() && p > widest {
			widest = p
		}
	}
	workers := []int{threads[0]}
	if widest != workers[0] {
		workers = append(workers, widest)
	}
	return workers
}

// buildTraceOverhead times disabled-vs-enabled solves on the WordNet
// stand-in and returns one row per worker count plus the final metrics
// snapshot of the last instrumented run.
func buildTraceOverhead(cfg Config) ([]TraceOverheadResult, map[string]int64, error) {
	cfg = cfg.normalized()
	g, err := synth(cfg, "WordNet", scaleAPSPWordNet, true)
	if err != nil {
		return nil, nil, err
	}
	var out []TraceOverheadResult
	var metrics map[string]int64
	for _, w := range overheadWorkers(cfg) {
		var solveErr error
		disabled := Measure(cfg.Runs, w, func() {
			if _, err2 := core.Solve(g, core.ParAPSP, core.Options{Workers: w}); err2 != nil {
				solveErr = err2
			}
		})
		if solveErr != nil {
			return nil, nil, solveErr
		}
		var rec *obs.Recorder
		enabled := Measure(cfg.Runs, w, func() {
			rec = obs.New(w)
			res, err2 := core.Solve(g, core.ParAPSP, core.Options{Workers: w, Obs: rec})
			if err2 != nil {
				solveErr = err2
				return
			}
			rec.Stop()
			_ = res
		})
		if solveErr != nil {
			return nil, nil, solveErr
		}
		metrics = rec.Metrics().Snapshot()
		r := TraceOverheadResult{
			Dataset:      "WordNet",
			Workers:      w,
			DisabledNs:   disabled.Nanoseconds(),
			EnabledNs:    enabled.Nanoseconds(),
			Events:       len(rec.Events()),
			DroppedSpans: rec.Dropped(),
		}
		if disabled > 0 {
			r.OverheadPct = 100 * (float64(enabled)/float64(disabled) - 1)
		}
		out = append(out, r)
	}
	return out, metrics, nil
}

func runObsOverhead(cfg Config, w io.Writer) error {
	rows, metrics, err := buildTraceOverhead(cfg)
	if err != nil {
		return err
	}
	tbl := &Table{
		Title:  "ParAPSP with and without the obs recorder attached",
		Header: []string{"dataset", "workers", "disabled", "enabled", "overhead", "events", "dropped"},
	}
	for _, r := range rows {
		tbl.AddRow(r.Dataset, r.Workers,
			FormatDuration(time.Duration(r.DisabledNs)),
			FormatDuration(time.Duration(r.EnabledNs)),
			fmt.Sprintf("%+.1f%%", r.OverheadPct), r.Events, r.DroppedSpans)
	}
	tbl.Fprint(w)

	mt := &Table{
		Title:  "metrics snapshot of the last instrumented solve",
		Header: []string{"counter", "value"},
	}
	for _, k := range sortedKeys(metrics) {
		mt.AddRow(k, metrics[k])
	}
	mt.Fprint(w)
	return nil
}

// RunTraced performs one instrumented ParAPSP solve on the WordNet
// stand-in and exports the artifacts: a Chrome trace_event JSON stream to
// traceW (if non-nil) and the metrics snapshot as JSON to metricsW (if
// non-nil). This is what cmd/apspbench -trace / -metrics invoke.
func RunTraced(cfg Config, workers int, traceW, metricsW io.Writer) error {
	cfg = cfg.normalized()
	g, err := synth(cfg, "WordNet", scaleAPSPWordNet, true)
	if err != nil {
		return err
	}
	return RunTracedOn(g, cfg, workers, traceW, metricsW)
}

// RunTracedOn is RunTraced on a caller-provided graph (apspbench -in).
func RunTracedOn(g *graph.Graph, cfg Config, workers int, traceW, metricsW io.Writer) error {
	cfg = cfg.normalized()
	rec := obs.New(workers)
	if _, err := core.Solve(g, core.ParAPSP, core.Options{Workers: workers, Kernel: cfg.Kernel, Obs: rec}); err != nil {
		return err
	}
	rec.Stop()
	if traceW != nil {
		if err := rec.WriteTrace(traceW); err != nil {
			return err
		}
	}
	if metricsW != nil {
		if err := rec.Metrics().WriteJSON(metricsW); err != nil {
			return err
		}
	}
	return nil
}
