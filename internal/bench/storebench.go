package bench

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"parapsp/internal/core"
	"parapsp/internal/gen"
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
	"parapsp/internal/serve"
)

// The store experiment is the memory-wall benchmark behind the tiered
// distance store (internal/store): two servers on the SAME power-law
// graph, one with enough RAM to keep every queried row hot (the O(n^2)
// baseline nothing at scale can afford), one with the tiered store at a
// byte budget an order of magnitude smaller — compressed warm frames in
// RAM, the rest spilled to a disk arena. Both serve the same seeded
// hot/cold/fresh workload; the report holds the tiered p99 against the
// all-hot p99, spot-checks answers against core.SolveSubset, and carries
// the tier ledger — the BENCH_PR9.json artifact and the input to
// scripts/storegate.sh.

func init() {
	register(Experiment{
		ID:     "store",
		Paper:  "ours (tiered store)",
		Title:  "Tiered distance store vs all-hot at a fraction of the byte budget",
		Expect: "the tiered store serves a row set ~16x its RAM budget with p99 within 2x of all-hot (both tails are fresh solves; the tiered p50..p90 adds decode, not disk stalls)",
		Run:    runStore,
	})
}

// StoreReport is the machine-readable result of the store experiment.
type StoreReport struct {
	Dataset  string `json:"dataset"`
	Vertices int    `json:"vertices"`
	Arcs     int64  `json:"arcs"`
	// AllHotBytes is what keeping every row uncompressed in RAM costs
	// (n rows x 4n bytes); BudgetBytes is the tiered configuration's
	// T1+T2 RAM budget. ScaleFactor = AllHotBytes / BudgetBytes is how
	// many times over its RAM budget the tiered store is serving.
	AllHotBytes int64   `json:"all_hot_bytes"`
	BudgetBytes int64   `json:"budget_bytes"`
	ScaleFactor float64 `json:"scale_factor"`
	Queries     int     `json:"queries"`

	// Latencies are per-Dist-call, same seeded workload for both servers.
	BaseP50Ns int64   `json:"base_p50_ns"`
	BaseP99Ns int64   `json:"base_p99_ns"`
	TierP50Ns int64   `json:"tier_p50_ns"`
	TierP99Ns int64   `json:"tier_p99_ns"`
	P99Ratio  float64 `json:"p99_ratio"` // tiered p99 / all-hot p99

	// Memory: Go heap in use after each phase (post-GC), and the
	// process VmRSS at the end of the tiered run (0 when unreadable).
	BaseHeapBytes int64 `json:"base_heap_bytes"`
	TierHeapBytes int64 `json:"tier_heap_bytes"`
	VmRSSBytes    int64 `json:"vm_rss_bytes"`

	// Tier residency at the end of the tiered run.
	WarmRows       int   `json:"warm_rows"`
	WarmBytes      int64 `json:"warm_bytes"`
	ColdRows       int   `json:"cold_rows"`
	ColdBytes      int64 `json:"cold_bytes"`
	SpillFileBytes int64 `json:"spill_file_bytes"`

	// LedgerOK is the satellite-2 identity on the tiered run:
	// serve.store.lookups == sketch_answered + t1_hits + t2_promotes +
	// t3_promotes + misses.
	LedgerOK bool `json:"ledger_ok"`
	// Exactness spot-check of tiered answers against core.SolveSubset.
	ExactChecked  int `json:"exact_checked"`
	ExactMismatch int `json:"exact_mismatch"`

	Metrics map[string]int64 `json:"metrics"`
}

const (
	storeBenchQueries = 4000
	storeBenchHotSrc  = 32
	// storeBenchFactor is AllHotBytes / BudgetBytes: the tiered server
	// runs at 1/16th of the RAM the row set costs uncompressed.
	storeBenchFactor = 16
)

// BuildStoreReport runs the memory-wall experiment and returns the
// structured report.
func BuildStoreReport(cfg Config) (*StoreReport, error) {
	cfg = cfg.normalized()
	n := int(2000 * cfg.Scale)
	if n < 600 {
		n = 600
	}
	// minDeg 6 keeps the stand-in in the paper's complex-graph regime
	// (dense enough that a fresh SSSP solve visibly outweighs a frame
	// decode — the regime the tiered store is for).
	g, err := gen.PowerLawConfiguration(n, 2.5, 6, true, cfg.Seed, gen.Weighting{})
	if err != nil {
		return nil, err
	}
	workers := 1
	for _, p := range cfg.Threads {
		if p > workers && p <= runtime.NumCPU() {
			workers = p
		}
	}
	allHot := int64(n) * int64(n) * 4
	budget := allHot / storeBenchFactor

	// The hot set must be T1-resident in the tiered config (its budget is
	// a quarter of the RAM envelope), or "hot" traffic measures decode
	// latency instead of cache-hit latency.
	t1Rows := int(budget / 4 / (4 * int64(n)))
	hotSrc := t1Rows / 2
	if hotSrc > storeBenchHotSrc {
		hotSrc = storeBenchHotSrc
	}
	if hotSrc < 4 {
		hotSrc = 4
	}

	// fresh sources are withheld from the warmup so the measured tail is
	// a first-touch subset solve in BOTH configurations — the honest p99
	// comparison: the all-hot server pays it too. The pool is sized so
	// first touches outnumber the top-1% latency slots.
	fresh := n / 10
	if fresh < 64 {
		fresh = 64
	}
	warmed := n - fresh

	rep := &StoreReport{
		Dataset:     "power-law",
		Vertices:    n,
		Arcs:        g.NumArcs(),
		AllHotBytes: allHot,
		BudgetBytes: budget,
		ScaleFactor: float64(allHot) / float64(budget),
		Queries:     storeBenchQueries,
	}

	// Phase 1: all-hot baseline — the budget covers every row.
	base, err := serve.New(g, serve.Config{
		Workers:    workers,
		CacheBytes: allHot,
		WarmBytes:  -1,
		Landmarks:  16,
	})
	if err != nil {
		return nil, err
	}
	baseLat, err := storeWorkload(base, n, warmed, hotSrc, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if err := base.Shutdown(context.Background()); err != nil {
		return nil, err
	}
	rep.BaseP50Ns, rep.BaseP99Ns = percentile(baseLat, 50), percentile(baseLat, 99)
	rep.BaseHeapBytes = heapInuse()
	base = nil

	// Phase 2: the tiered store at 1/16th of the RAM.
	dir, err := os.MkdirTemp("", "storebench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	tier, err := serve.New(g, serve.Config{
		Workers:    workers,
		CacheBytes: budget / 4,
		WarmBytes:  budget - budget/4,
		SpillBytes: allHot, // disk is the cheap dimension
		SpillDir:   dir,
		Landmarks:  16,
	})
	if err != nil {
		return nil, err
	}
	tierLat, err := storeWorkload(tier, n, warmed, hotSrc, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rep.TierP50Ns, rep.TierP99Ns = percentile(tierLat, 50), percentile(tierLat, 99)
	if rep.BaseP99Ns > 0 {
		rep.P99Ratio = float64(rep.TierP99Ns) / float64(rep.BaseP99Ns)
	}

	// Exactness spot-check before shutdown: tiered answers (promoted
	// through decode paths) against freshly solved truth.
	if err := storeExactCheck(tier, g, n, cfg, rep); err != nil {
		return nil, err
	}

	st := tier.StoreStats()
	rep.WarmRows, rep.WarmBytes = st.WarmRows, st.WarmBytes
	rep.ColdRows, rep.ColdBytes = st.ColdRows, st.ColdBytes
	rep.SpillFileBytes = st.ArenaFile
	if err := tier.Shutdown(context.Background()); err != nil {
		return nil, err
	}
	snap := tier.Metrics().Snapshot()
	rep.Metrics = snap
	rep.LedgerOK = snap["serve.store.lookups"] ==
		snap["serve.store.sketch_answered"]+snap["serve.store.t1_hits"]+
			snap["serve.store.t2_promotes"]+snap["serve.store.t3_promotes"]+
			snap["serve.store.misses"]
	rep.TierHeapBytes = heapInuse()
	rep.VmRSSBytes = readVmRSS()
	return rep, nil
}

// storeWorkload warms every non-fresh source once, then measures the
// seeded mixed workload: 70% from a hot set sized to fit the tiered T1,
// 27% uniform over the warmed range (tier promotes), 3% from the
// withheld fresh pool (first-touch solves — the tail both servers pay).
func storeWorkload(s *serve.Server, n, warmed, hotSrc int, seed int64) ([]int64, error) {
	ctx := context.Background()
	for u := 0; u < warmed; u++ {
		if _, err := s.Dist(ctx, int32(u), int32((u+7)%n), 0); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(seed + 99))
	hotSet := make([]int32, hotSrc)
	for i := range hotSet {
		hotSet[i] = int32(rng.Intn(warmed))
	}
	lats := make([]int64, 0, storeBenchQueries)
	for i := 0; i < storeBenchQueries; i++ {
		var u int32
		switch r := rng.Float64(); {
		case r < 0.70:
			u = hotSet[rng.Intn(len(hotSet))]
		case r < 0.97:
			u = int32(rng.Intn(warmed))
		default:
			u = int32(warmed + rng.Intn(n-warmed))
		}
		v := int32(rng.Intn(n))
		start := time.Now()
		if _, err := s.Dist(ctx, u, v, 0); err != nil {
			return nil, err
		}
		lats = append(lats, time.Since(start).Nanoseconds())
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats, nil
}

// storeExactCheck solves a handful of sources from scratch and holds the
// tiered server's answers (which flow through frame decode on promote)
// to exact equality.
func storeExactCheck(s *serve.Server, g *graph.Graph, n int, cfg Config, rep *StoreReport) error {
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	srcs := make([]int32, 0, 6)
	for len(srcs) < 6 {
		srcs = append(srcs, int32(rng.Intn(n)))
	}
	truth, err := core.SolveSubset(g, srcs, core.Options{Workers: 1})
	if err != nil {
		return err
	}
	ctx := context.Background()
	for _, u := range srcs {
		for j := 0; j < 16; j++ {
			v := int32(rng.Intn(n))
			ans, err := s.Dist(ctx, u, v, 0)
			if err != nil {
				return err
			}
			want := int64(-1)
			if d := truth.At(u, v); d != matrix.Inf {
				want = int64(d)
			}
			rep.ExactChecked++
			if !ans.Exact || ans.Dist != want {
				rep.ExactMismatch++
			}
		}
	}
	return nil
}

// FormatBytes renders a byte count with a binary-unit suffix.
func FormatBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

// heapInuse reports the post-GC Go heap in use.
func heapInuse() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapInuse)
}

// readVmRSS parses the process resident set size from /proc/self/status;
// 0 when the file is unavailable (non-Linux).
func readVmRSS() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

func runStore(cfg Config, w io.Writer) error {
	rep, err := BuildStoreReport(cfg)
	if err != nil {
		return err
	}
	t := &Table{
		Title: fmt.Sprintf("tiered store at 1/%dth of the all-hot budget: n=%d, %d queries",
			storeBenchFactor, rep.Vertices, rep.Queries),
		Header: []string{"config", "RAM budget", "p50", "p99", "heap"},
	}
	t.AddRow("all-hot", FormatBytes(uint64(rep.AllHotBytes)),
		FormatDuration(time.Duration(rep.BaseP50Ns)),
		FormatDuration(time.Duration(rep.BaseP99Ns)),
		FormatBytes(uint64(rep.BaseHeapBytes)))
	t.AddRow("tiered", FormatBytes(uint64(rep.BudgetBytes)),
		FormatDuration(time.Duration(rep.TierP50Ns)),
		FormatDuration(time.Duration(rep.TierP99Ns)),
		FormatBytes(uint64(rep.TierHeapBytes)))
	t.Fprint(w)

	rt := &Table{
		Title:  "tier outcome",
		Header: []string{"scale factor", "p99 ratio", "warm rows", "cold rows", "spill file", "ledger", "exact"},
	}
	ledger := "ok"
	if !rep.LedgerOK {
		ledger = "BROKEN"
	}
	rt.AddRow(fmt.Sprintf("%.0fx", rep.ScaleFactor),
		fmt.Sprintf("%.2f", rep.P99Ratio),
		rep.WarmRows, rep.ColdRows,
		FormatBytes(uint64(rep.SpillFileBytes)),
		ledger,
		fmt.Sprintf("%d/%d", rep.ExactChecked-rep.ExactMismatch, rep.ExactChecked))
	rt.Fprint(w)
	return nil
}

// WriteStoreReport runs the store experiment and writes its structured
// report as indented JSON to path (the BENCH_PR9.json artifact).
func WriteStoreReport(path string, cfg Config) error {
	rep, err := BuildStoreReport(cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
