//go:build race

package bench

// benchRaceEnabled mirrors core's race-detector guard for tests: the race
// runtime instruments allocations, so steady-state alloc pins only hold
// in uninstrumented builds.
const benchRaceEnabled = true
