// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section 5) plus the Section 3/4
// micro-experiments and this repository's own ablations. Each experiment
// is a named, self-describing unit that prints the same rows/series the
// paper reports; cmd/apspbench is the CLI front end and bench_test.go
// wraps the same runners as testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"
)

// Config tunes an experiment run. Zero fields take defaults (see Default).
type Config struct {
	// Scale multiplies each experiment's default dataset scale. 1.0
	// reproduces the harness defaults (chosen to fit this container);
	// larger values approach the paper's full-size runs at the cost of
	// O(n^2) memory.
	Scale float64
	// Threads is the worker-count sweep. The paper uses 1..16 on
	// Machine-I and 1..32 on Machine-II.
	Threads []int
	// Runs is the number of repetitions per measurement; the mean is
	// reported. The paper averages 10 runs.
	Runs int
	// Seed makes the synthetic datasets deterministic.
	Seed int64
	// MaxMemBytes bounds the distance-matrix allocation; experiments
	// that would exceed it are skipped with a note rather than thrashing.
	MaxMemBytes uint64
	// Kernel pins the SSSP kernel of the traced solve (RunTraced, i.e.
	// apspbench -trace/-metrics) to a registered core kernel name; empty
	// keeps the automatic selection. The comparison experiments ignore it
	// — they sweep kernels themselves.
	Kernel string
}

// Default returns the harness defaults: a thread sweep of 1-16, one run,
// container-sized datasets, and a 4 GB matrix bound.
func Default() Config {
	return Config{
		Scale:       1.0,
		Threads:     []int{1, 2, 4, 8, 16},
		Runs:        1,
		Seed:        42,
		MaxMemBytes: 4 << 30,
	}
}

// normalized fills zero fields with defaults.
func (c Config) normalized() Config {
	d := Default()
	if c.Scale == 0 {
		c.Scale = d.Scale
	}
	if len(c.Threads) == 0 {
		c.Threads = d.Threads
	}
	if c.Runs == 0 {
		c.Runs = d.Runs
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.MaxMemBytes == 0 {
		c.MaxMemBytes = d.MaxMemBytes
	}
	return c
}

// Experiment is one reproducible unit of the evaluation.
type Experiment struct {
	// ID is the harness name (e.g. "fig8", "table1", "ablation-queue").
	ID string
	// Paper locates the experiment in the paper ("Figure 8", "Table 1",
	// or "ours" for ablations).
	Paper string
	// Title is a one-line description.
	Title string
	// Expect states the paper's qualitative claim the output should be
	// checked against.
	Expect string
	// Run executes the experiment, writing its tables to w.
	Run func(cfg Config, w io.Writer) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Registry returns all experiments in registration (paper) order.
func Registry() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// RunAll executes every registered experiment.
func RunAll(cfg Config, w io.Writer) error {
	for _, e := range Registry() {
		if err := RunOne(e, cfg, w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// RunOne executes a single experiment with its standard banner.
func RunOne(e Experiment, cfg Config, w io.Writer) error {
	fmt.Fprintf(w, "=== %s (%s): %s\n", e.ID, e.Paper, e.Title)
	fmt.Fprintf(w, "    expect: %s\n\n", e.Expect)
	start := time.Now()
	if err := e.Run(cfg.normalized(), w); err != nil {
		return err
	}
	fmt.Fprintf(w, "    [%s completed in %s]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	return nil
}

// Measure runs f runs times and returns the mean wall-clock duration.
// GOMAXPROCS is raised to at least workers for the duration of the
// measurement so that logical workers can run in parallel when the host
// has the cores; on fewer cores the measurement is still well-defined
// (workers time-share), which EXPERIMENTS.md discusses.
func Measure(runs, workers int, f func()) time.Duration {
	if runs < 1 {
		runs = 1
	}
	prev := runtime.GOMAXPROCS(0)
	if workers > prev {
		runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(prev)
	}
	var total time.Duration
	for i := 0; i < runs; i++ {
		// Collect garbage from the previous repetition so its pause does
		// not land inside this one's timing window — the distance
		// matrices discarded between runs are hundreds of megabytes.
		runtime.GC()
		start := time.Now()
		f()
		total += time.Since(start)
	}
	return total / time.Duration(runs)
}

// Speedups converts a thread-sweep time series into parallel speedups
// relative to the first (1-thread) entry, the quantity Figures 9 and 10(b)
// plot.
func Speedups(times []time.Duration) []float64 {
	out := make([]float64, len(times))
	if len(times) == 0 || times[0] == 0 {
		return out
	}
	base := float64(times[0])
	for i, t := range times {
		if t > 0 {
			out[i] = base / float64(t)
		}
	}
	return out
}

// FormatDuration renders a duration in the milliseconds the paper's tables
// use, with adaptive precision.
func FormatDuration(d time.Duration) string {
	ms := float64(d) / float64(time.Millisecond)
	switch {
	case ms >= 100:
		return fmt.Sprintf("%.0f ms", ms)
	case ms >= 1:
		return fmt.Sprintf("%.2f ms", ms)
	default:
		return fmt.Sprintf("%.4f ms", ms)
	}
}

// sortedCopy returns a sorted copy of the thread sweep (defensive: the
// speedup baseline must be the smallest worker count).
func sortedCopy(threads []int) []int {
	out := make([]int, len(threads))
	copy(out, threads)
	sort.Ints(out)
	return out
}

// sortedKeys returns m's keys in lexical order for stable table output.
func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
