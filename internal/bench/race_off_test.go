//go:build !race

package bench

const benchRaceEnabled = false
