package e2e

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"parapsp/internal/baseline"
	"parapsp/internal/gen"
	"parapsp/internal/matrix"
)

// daemon is one long-running binary under test: process handle, the
// address it announced, and its collected output.
type daemon struct {
	cmd  *exec.Cmd
	addr string

	mu   sync.Mutex
	tail bytes.Buffer
	eof  chan struct{}
}

// startDaemon launches a binary and waits for its "<prefix>listening on "
// announcement, then keeps collecting output in the background.
func startDaemon(t *testing.T, bin, announce string, args ...string) *daemon {
	t.Helper()
	d := &daemon{cmd: exec.Command(bin, args...), eof: make(chan struct{})}
	stdout, err := d.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	d.cmd.Stderr = d.cmd.Stdout
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.cmd.Process.Kill(); d.cmd.Wait() })

	sc := bufio.NewScanner(stdout)
	deadlineTimer := time.AfterFunc(60*time.Second, func() { d.cmd.Process.Kill() })
	for sc.Scan() {
		line := sc.Text()
		d.mu.Lock()
		d.tail.WriteString(line + "\n")
		d.mu.Unlock()
		if rest, ok := strings.CutPrefix(line, announce); ok {
			d.addr = strings.TrimSpace(rest)
			break
		}
	}
	deadlineTimer.Stop()
	if d.addr == "" {
		t.Fatalf("%s never announced %q:\n%s", d.cmd.Args, announce, d.output())
	}
	go func() {
		defer close(d.eof)
		for sc.Scan() {
			d.mu.Lock()
			d.tail.WriteString(sc.Text() + "\n")
			d.mu.Unlock()
		}
	}()
	return d
}

func (d *daemon) output() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tail.String()
}

// drain sends SIGTERM and asserts a zero exit with the binary's
// drained-cleanly line in the output.
func (d *daemon) drain(t *testing.T, cleanLine string) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-d.eof:
	case <-time.After(30 * time.Second):
		t.Fatalf("%s: timed out collecting output after SIGTERM", d.cmd.Args[0])
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("%s exited non-zero after SIGTERM: %v\n%s", d.cmd.Args[0], err, d.output())
	}
	wantLines(t, d.output(), cleanLine)
}

// TestClusterChaos is the acceptance test of the sharded deployment: a
// router over three real parapspd shards (separate processes, real HTTP)
// runs a mixed workload checked against the Floyd–Warshall oracle while
// one shard is SIGKILLed mid-flight. Every completed query must be
// exactly right — failover may change latency, never answers — with 503
// the only tolerated failure, and the router's attempt ledger must
// reconcile: routed == merged + hedge_cancelled + failed.
func TestClusterChaos(t *testing.T) {
	const (
		n    = 96
		seed = 7
	)
	// Independent oracle for the exact graph `parapspd -gen 96 -seed 7`
	// serves (Barabási–Albert, m=4, unweighted).
	g, err := gen.BarabasiAlbert(n, 4, seed, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	truth := baseline.FloydWarshall(g)
	wantDist := func(u, v int) int64 {
		if d := truth.At(u, v); d != matrix.Inf {
			return int64(d)
		}
		return -1
	}

	shardBin := build(t, "parapspd")
	routerBin := build(t, "parapsprouter")

	var shards []*daemon
	var shardList []string
	for i := 0; i < 3; i++ {
		d := startDaemon(t, shardBin, "parapspd: listening on ",
			"-gen", fmt.Sprint(n), "-seed", fmt.Sprint(seed),
			"-addr", "127.0.0.1:0", "-shard-id", fmt.Sprintf("s%d", i),
			"-landmarks", "-1", "-workers", "2", "-cache-rows", fmt.Sprint(n))
		shards = append(shards, d)
		shardList = append(shardList, fmt.Sprintf("s%d=%s", i, d.addr))
	}
	router := startDaemon(t, routerBin, "parapsprouter: listening on ",
		"-shards", strings.Join(shardList, ","),
		"-addr", "127.0.0.1:0", "-probe-interval", "25ms", "-hedge-after", "25ms")
	base := "http://" + router.addr
	client := &http.Client{Timeout: 15 * time.Second}

	// Wait until the prober has admitted all three shards and adopted the
	// graph order, so the chaos phase starts from a fully healthy ring.
	waitDeadline := time.Now().Add(30 * time.Second)
	for {
		var health struct {
			Healthy  int   `json:"healthy"`
			Vertices int64 `json:"vertices"`
		}
		if resp, err := client.Get(base + "/healthz"); err == nil {
			err = json.NewDecoder(resp.Body).Decode(&health)
			resp.Body.Close()
			if err == nil && health.Healthy == 3 && health.Vertices == n {
				break
			}
		}
		if time.Now().After(waitDeadline) {
			t.Fatalf("router never saw 3 healthy shards:\n%s", router.output())
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Mixed workload: concurrent /dist, /batch and /path clients, every
	// completed answer checked against the oracle; kill() fires
	// mid-workload.
	const (
		workers      = 4
		opsPerWorker = 120
		killAfterOps = 60 // per worker, ~halfway
	)
	var (
		oks, refused atomic.Int64
		killOnce     sync.Once
		wg           sync.WaitGroup
	)
	kill := func() {
		killOnce.Do(func() {
			t.Log("SIGKILLing shard s1 mid-workload")
			if err := shards[1].cmd.Process.Kill(); err != nil {
				t.Errorf("kill shard: %v", err)
			}
		})
	}
	checkAnswer := func(what string, u, v int32, dist int64, exact bool) bool {
		if !exact {
			t.Errorf("%s u=%d v=%d returned an inexact answer with the oracle disabled", what, u, v)
			return false
		}
		if want := wantDist(int(u), int(v)); dist != want {
			t.Errorf("%s u=%d v=%d answered %d, oracle says %d", what, u, v, dist, want)
			return false
		}
		return true
	}
	type answer struct {
		U     int32 `json:"u"`
		V     int32 `json:"v"`
		Dist  int64 `json:"dist"`
		Exact bool  `json:"exact"`
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for op := 0; op < opsPerWorker; op++ {
				if w == 0 && op == killAfterOps {
					kill()
				}
				u, v := rng.Intn(n), rng.Intn(n)
				var (
					resp *http.Response
					err  error
					kind = op % 3
				)
				switch kind {
				case 0:
					resp, err = client.Get(fmt.Sprintf("%s/dist?u=%d&v=%d", base, u, v))
				case 1:
					resp, err = client.Get(fmt.Sprintf("%s/path?u=%d&v=%d", base, u, v))
				default:
					var qs []string
					for i := 0; i < 8; i++ {
						qs = append(qs, fmt.Sprintf(`{"u":%d,"v":%d}`, rng.Intn(n), rng.Intn(n)))
					}
					resp, err = client.Post(base+"/batch", "application/json",
						strings.NewReader(`{"queries":[`+strings.Join(qs, ",")+`]}`))
				}
				if err != nil {
					t.Errorf("worker %d op %d: %v", w, op, err)
					return
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					t.Errorf("worker %d op %d: read: %v", w, op, rerr)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					switch kind {
					case 0, 1:
						var a answer
						if err := json.Unmarshal(body, &a); err != nil {
							t.Errorf("worker %d op %d: decode: %v", w, op, err)
							return
						}
						if checkAnswer("query", a.U, a.V, a.Dist, a.Exact) {
							oks.Add(1)
						}
					default:
						var b struct {
							Answers []answer `json:"answers"`
						}
						if err := json.Unmarshal(body, &b); err != nil || len(b.Answers) != 8 {
							t.Errorf("worker %d op %d: batch decode (%v): %s", w, op, err, body)
							return
						}
						good := true
						for _, a := range b.Answers {
							good = checkAnswer("batch", a.U, a.V, a.Dist, a.Exact) && good
						}
						if good {
							oks.Add(1)
						}
					}
				case http.StatusServiceUnavailable:
					// The only honest failure: no owning shard reachable.
					refused.Add(1)
				default:
					t.Errorf("worker %d op %d: status %d (only 200 or 503 are acceptable): %s",
						w, op, resp.StatusCode, body)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	kill() // even if worker 0 errored out early, the chaos must happen
	if completed := oks.Load(); completed == 0 {
		t.Fatal("no query completed successfully")
	}
	t.Logf("workload done: %d exact answers, %d honest 503s", oks.Load(), refused.Load())

	// The dead shard must be out of the ring...
	evictDeadline := time.Now().Add(10 * time.Second)
	for {
		var health struct {
			Healthy int `json:"healthy"`
		}
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&health)
			resp.Body.Close()
			if err == nil && health.Healthy == 2 {
				break
			}
		}
		if time.Now().After(evictDeadline) {
			t.Fatalf("router never evicted the killed shard:\n%s", router.output())
		}
		time.Sleep(25 * time.Millisecond)
	}
	// ...and queries against the degraded cluster still answer exactly.
	for i := 0; i < 25; i++ {
		u, v := (i*13)%n, (i*29)%n
		resp, err := client.Get(fmt.Sprintf("%s/dist?u=%d&v=%d", base, u, v))
		if err != nil {
			t.Fatalf("degraded query: %v", err)
		}
		var a answer
		err = json.NewDecoder(resp.Body).Decode(&a)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("degraded query %d,%d: status %d err %v", u, v, resp.StatusCode, err)
		}
		checkAnswer("degraded", a.U, a.V, a.Dist, a.Exact)
	}

	// Reconciliation: every routed subrequest attempt is accounted in
	// exactly one terminal bucket, SIGKILL chaos included.
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]int64
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m["cluster.routed"] != m["cluster.merged"]+m["cluster.hedge_cancelled"]+m["cluster.failed"] {
		t.Fatalf("attempt ledger does not balance: routed=%d merged=%d hedge_cancelled=%d failed=%d",
			m["cluster.routed"], m["cluster.merged"], m["cluster.hedge_cancelled"], m["cluster.failed"])
	}
	if m["cluster.shard_down"] == 0 {
		t.Fatal("SIGKILL left no shard_down transition in the metrics")
	}
	// The admission ledger survives the same chaos: per tier and total,
	// requests == admitted + rejections, admitted == completed + expired.
	for _, p := range []string{"admit", "admit.besteffort", "admit.premium"} {
		req := m[p+".requests"]
		adm := m[p+".admitted"]
		rej := m[p+".rejected_quota"] + m[p+".rejected_inflight"] + m[p+".rejected_draining"]
		if req != adm+rej {
			t.Fatalf("%s ledger: requests=%d != admitted=%d + rejected=%d", p, req, adm, rej)
		}
		if done := m[p+".completed"] + m[p+".deadline_expired"]; adm != done {
			t.Fatalf("%s ledger: admitted=%d != completed+expired=%d", p, adm, done)
		}
	}

	// Graceful teardown: router and the surviving shards drain cleanly.
	router.drain(t, "parapsprouter: drained cleanly (requests=")
	shards[0].drain(t, "parapspd: drained cleanly (requests=")
	shards[2].drain(t, "parapspd: drained cleanly (requests=")
}
