// Package e2e smoke-tests the command-line binaries end to end: each one
// is built with the real toolchain, run against a tiny generated graph,
// and checked for exit code and the key lines of its output. These tests
// catch flag-wiring and main-package regressions that unit tests of the
// internal packages cannot see.
package e2e

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

var (
	buildMu   sync.Mutex
	buildDir  string
	buildDone = map[string]string{}
)

// build compiles ./cmd/<name> once per test run and returns the binary path.
func build(t *testing.T, name string) string {
	t.Helper()
	buildMu.Lock()
	defer buildMu.Unlock()
	if p, ok := buildDone[name]; ok {
		return p
	}
	if buildDir == "" {
		dir, err := os.MkdirTemp("", "parapsp-e2e-")
		if err != nil {
			t.Fatal(err)
		}
		buildDir = dir
	}
	bin := filepath.Join(buildDir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/%s: %v\n%s", name, err, out)
	}
	buildDone[name] = bin
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// run executes a built binary and returns combined output, failing the
// test unless it exits with the expected code.
func run(t *testing.T, wantExit int, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
		}
		code = ee.ExitCode()
	}
	if code != wantExit {
		t.Fatalf("%s %v exited %d, want %d\n%s", filepath.Base(bin), args, code, wantExit, out)
	}
	return string(out)
}

func wantLines(t *testing.T, out string, needles ...string) {
	t.Helper()
	for _, needle := range needles {
		if !strings.Contains(out, needle) {
			t.Fatalf("output missing %q:\n%s", needle, out)
		}
	}
}

// tinyGraph generates a small Barabasi-Albert edge list with graphgen and
// returns its path — the shared fixture for the downstream binaries.
func tinyGraph(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ba.txt")
	out := run(t, 0, build(t, "graphgen"),
		"-model", "ba", "-n", "60", "-m", "2", "-seed", "7", "-out", path)
	wantLines(t, out, "wrote", path)
	if st, err := os.Stat(path); err != nil || st.Size() == 0 {
		t.Fatalf("graphgen produced no output file: %v", err)
	}
	return path
}

func TestGraphgenRejectsMissingFlags(t *testing.T) {
	run(t, 2, build(t, "graphgen")) // no -model/-out: usage + exit 2
}

func TestGraphinfoSmoke(t *testing.T) {
	g := tinyGraph(t)
	out := run(t, 0, build(t, "graphinfo"), "-in", g, "-undirected")
	wantLines(t, out,
		"loaded",
		"degrees: min=",
		"weak components:",
		"clustering coefficient:",
		"diameter bounds (double sweep):",
		"top 5 by PageRank:",
	)
}

func TestApspSmoke(t *testing.T) {
	g := tinyGraph(t)
	bin := build(t, "apsp")
	out := run(t, 0, bin,
		"-in", g, "-undirected", "-workers", "2", "-path", "0,9")
	wantLines(t, out,
		"loaded",
		"APSP (ParAPSP, kernel dijkstra, 2 workers):",
		"diameter:",
		"radius:",
		"average path length:",
		"closeness centrality:",
	)
	// A 60-vertex BA graph is connected, so the path query must resolve.
	wantLines(t, out, "shortest path 0 -> 9")

	// A pinned kernel is reported back and computes the same diameter.
	out = run(t, 0, bin, "-in", g, "-undirected", "-workers", "2", "-kernel", "delta")
	wantLines(t, out, "kernel delta", "diameter: 5")
}

func TestApspbenchSmoke(t *testing.T) {
	bin := build(t, "apspbench")
	out := run(t, 0, bin, "-list")
	wantLines(t, out, "fig9", "kernels", "obs-overhead")
	out = run(t, 0, bin, "-exp", "exactness", "-scale", "0.02", "-threads", "2", "-runs", "1")
	wantLines(t, out, "exactness")
}

// TestParapspdSmoke boots the query daemon on a synthetic graph, issues a
// real HTTP query, then sends SIGTERM and asserts a clean drain.
func TestParapspdSmoke(t *testing.T) {
	cmd := exec.Command(build(t, "parapspd"),
		"-gen", "64", "-seed", "7", "-addr", "127.0.0.1:0", "-cache-rows", "16")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints its bound address once the listener is up; collect
	// the rest of the output for the drain assertions.
	sc := bufio.NewScanner(stdout)
	var addr string
	var tail bytes.Buffer
	for sc.Scan() {
		line := sc.Text()
		tail.WriteString(line + "\n")
		if rest, ok := strings.CutPrefix(line, "parapspd: listening on "); ok {
			addr = strings.TrimSpace(rest)
			break
		}
	}
	if addr == "" {
		t.Fatalf("daemon never announced its address:\n%s", tail.String())
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for sc.Scan() {
			tail.WriteString(sc.Text() + "\n")
		}
	}()

	resp, err := http.Get(fmt.Sprintf("http://%s/dist?u=3&v=17", addr))
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	var ans struct {
		U    int32 `json:"u"`
		V    int32 `json:"v"`
		Dist int64 `json:"dist"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/dist status %d", resp.StatusCode)
	}
	if ans.U != 3 || ans.V != 17 || ans.Dist < 1 {
		t.Fatalf("/dist answer %+v (a 64-vertex BA graph is connected)", ans)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Drain the output reader to EOF before Wait: Wait closes the stdout
	// pipe, which would race the scanner out of the final drain lines.
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("timed out collecting daemon output")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited non-zero after SIGTERM: %v\n%s", err, tail.String())
	}
	wantLines(t, tail.String(), "parapspd: draining", "parapspd: drained cleanly (requests=")
}
