package core

import (
	"fmt"
	"sort"

	"parapsp/internal/graph"
	"parapsp/internal/matrix"
	"parapsp/internal/obs"
)

// The pluggable SSSP-kernel registry. The paper's ParAPSP is a staged
// pipeline — Ordering → Schedule → SourceKernel → Fold — and the source
// kernel (the per-source shortest-path procedure that stage three runs for
// every ordered source) is its natural variation point: Kranjčević et
// al.'s shared-memory Δ-stepping and Kainer & Träff's parallel Dijkstra
// differ from the paper's modified Dijkstra only there. This file owns
// that seam: SourceKernel is the stage-three interface, the registry maps
// names to implementations, and resolveKernel is the one place the solver
// entry points (Solve, SolveSubset, SSSPPhase) pick a kernel — explicit
// Options.Kernel first, then the multi-source batch dispatch policy, then
// the scalar default.
//
// Registered kernels:
//
//	dijkstra - the paper's FIFO label-correcting modified Dijkstra
//	           (Algorithm 1), including its PaperQueue and TrackPaths
//	           variants (dijkstra.go, paths.go)
//	heap     - classic Dijkstra with lazy deletion, the queue-discipline
//	           ablation (heap.go)
//	delta     - Δ-stepping with light/heavy edge split and auto-tuned Δ
//	            (kdelta.go)
//	deltastar - lazy-batched Δ*-stepping: bucket maintenance deferred into
//	            append-only pending lists validated at pop (ksteps.go)
//	rho       - lazy-batched ρ-stepping: flat pool, each step expands the ρ
//	            smallest tentative distances (ksteps.go)
//	pardij    - exact Dijkstra with intra-source parallel edge relaxation
//	            over dmin+wmin phases (kpardij.go)
//	msbfs     - bit-parallel multi-source BFS, 64 sources per lane word,
//	            unweighted graphs only (batch.go)
//	sweep     - lane-major shared-sweep label-correcting SSSP, weighted
//	            graphs only (batch.go)
//
// Every kernel computes the exact same distances; the differential battery
// in kernel_test.go pins that across the registry at 1/2/8 workers.

// Kernel name constants. The lane kernels reuse the engine names so
// Result.Engine / SubsetResult.Engine keep their published values.
const (
	KernelDijkstra  = "dijkstra"
	KernelHeap      = "heap"
	KernelDelta     = "delta"
	KernelDeltaStar = "deltastar"
	KernelRho       = "rho"
	KernelParDij    = "pardij"
	KernelMSBFS     = EngineMSBFS
	KernelSweep     = EngineSweep
)

// KernelAuto is the adaptive pseudo-kernel: not a registry entry but a
// request to pick one from the graph's features (kauto.go). resolveKernel
// replaces it with a concrete kernel before Bind, so Result.Kernel and the
// serve layer's X-Parapsp-Solver header always report the resolved name.
const KernelAuto = "auto"

// SourceKernel is one registered SSSP kernel: the pipeline stage that
// turns one ordered source (or one lane-width group of sources) into final
// distance rows.
type SourceKernel interface {
	// Name is the registry key, surfaced by the -kernel flags, the serve
	// layer's X-Parapsp-Solver header, and Result.Kernel.
	Name() string
	// Supports reports whether the kernel can solve this graph/options
	// combination exactly; a non-nil error says why not (e.g. the lane
	// kernels are single-weighting and reject the scalar-only ablations).
	Supports(g *graph.Graph, opts Options) error
	// Grain is the number of consecutive ordered sources one Run call
	// consumes: 1 for the scalar kernels, batchLaneWidth for the
	// lane-parallel ones. The pipeline runner schedules ceil(k/Grain)
	// iterations.
	Grain() int
	// Bind prepares a per-solve instance: shared read-only precomputation
	// (like Δ-stepping's light/heavy edge split) happens once here, and
	// the returned run owns all per-worker scratch.
	Bind(rt *Runtime) KernelRun
}

// KernelRun is a bound kernel executing one solve.
type KernelRun interface {
	// Run solves sources rt.Sources[lo:hi] on worker w (hi-lo ≤ Grain()).
	// Calls with distinct w execute concurrently; the kernel may keep
	// per-worker scratch indexed by w.
	Run(w, lo, hi int)
	// Finish releases pooled scratch and returns the aggregated work
	// counters. It is called exactly once, after all Run calls completed.
	Finish() Counters
}

// Runtime is the per-solve context handed to Bind: everything a kernel
// needs that is shared across its workers.
type Runtime struct {
	G    *graph.Graph
	Opts Options
	// Workers is the effective parallelism of the SSSP stage (1 for the
	// sequential presets regardless of Options.Workers); per-worker
	// scratch must be sized for it.
	Workers int
	// Sources is the resolved source order, never nil.
	Sources []int32
	// Dest is where rows land: the full matrix or a subset row block.
	Dest rowDest
	// Flags is the shared row-completion vector of the fold stage.
	Flags *flags
	// Next is the successor matrix, non-nil only under TrackPaths.
	Next *NextHop
	// Rec instruments the solve when non-nil.
	Rec *obs.Recorder
	// Seq marks the sequential presets: their scalar iterations run on
	// the coordinator goroutine and record into the coordinator lane.
	Seq bool
}

// rowDest is the destination a pipeline writes rows into: the full
// distance matrix of a Solve (with per-row finite summaries) or the row
// block of a SolveSubset (no summaries — folds fall back to the
// full-width kernel). It is the seam that lets every kernel serve both
// entry points through one code path.
type rowDest struct {
	m   *matrix.Matrix
	sub *SubsetResult
}

// row returns the distance row of source t, or nil when t has no row
// (a non-subset vertex). Rows of flagged vertices are final.
func (d rowDest) row(t int32) []matrix.Dist {
	if d.m != nil {
		return d.m.Row(int(t))
	}
	return d.sub.Row(t)
}

// summary returns t's finite-entry summary when the destination keeps one.
func (d rowDest) summary(t int32) (matrix.RowSummary, bool) {
	if d.m != nil {
		return d.m.Summary(int(t))
	}
	return matrix.RowSummary{}, false
}

// finiteIndex returns t's explicit finite-index list, if recorded.
func (d rowDest) finiteIndex(t int32) []int32 {
	if d.m != nil {
		return d.m.FiniteIndex(int(t))
	}
	return nil
}

// publish marks row t final: the summary is recorded first (matrix
// destinations only), then the completion flag is set — the release store
// of the row-reuse protocol, see flags.
func (d rowDest) publish(f *flags, t int32) {
	if d.m != nil {
		d.m.SummarizeRow(int(t))
	}
	f.set(t)
}

// kernelRegistry maps kernel names to implementations. Registration
// happens in init functions, so the map is read-only afterwards and safe
// for concurrent lookup.
var kernelRegistry = map[string]SourceKernel{}

// RegisterKernel adds a kernel to the registry; it panics on a duplicate
// name (two kernels claiming one name is a programming error).
func RegisterKernel(k SourceKernel) {
	name := k.Name()
	if _, dup := kernelRegistry[name]; dup {
		panic(fmt.Sprintf("core: duplicate kernel %q", name))
	}
	kernelRegistry[name] = k
}

// Kernels returns the sorted names of all registered kernels. The
// differential battery iterates this list, and a completeness test pins
// that the battery covers every entry.
func Kernels() []string {
	names := make([]string, 0, len(kernelRegistry))
	for name := range kernelRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LookupKernel resolves a kernel name.
func LookupKernel(name string) (SourceKernel, error) {
	k, ok := kernelRegistry[name]
	if !ok {
		return nil, fmt.Errorf("%w: unknown kernel %q (registered: %v)", ErrInvalid, name, Kernels())
	}
	return k, nil
}

// engineOf maps a kernel to the engine name published in Result.Engine /
// SubsetResult.Engine: the lane kernels are the batch engines, every
// scalar kernel reports EngineScalar (the values the serve counters and
// the batch battery pin).
func engineOf(k SourceKernel) string {
	switch k.Name() {
	case KernelMSBFS, KernelSweep:
		return k.Name()
	default:
		return EngineScalar
	}
}

// resolveKernel picks the SSSP kernel of a k-source solve: an explicit
// Options.Kernel wins (validated through Supports), then the HeapQueue
// ablation maps to the heap kernel, then the batch dispatch policy may
// pick a lane kernel, and everything else runs the default modified
// Dijkstra. This is the only dispatch point — Solve, SolveSubset and
// SSSPPhase all select through it.
func resolveKernel(alg Algorithm, g *graph.Graph, opts Options, k int) (SourceKernel, error) {
	if opts.Kernel != "" {
		if opts.HeapQueue && opts.Kernel != KernelHeap {
			return nil, fmt.Errorf("%w: HeapQueue contradicts Kernel=%q", ErrInvalid, opts.Kernel)
		}
		if alg == SeqAdaptive {
			return nil, fmt.Errorf("%w: SeqAdaptive interleaves ordering with execution and cannot swap kernels", ErrInvalid)
		}
		if opts.Kernel == KernelAuto {
			// Adaptive selection (kauto.go). Forcing the batch engine
			// contradicts handing the engine choice to the selector —
			// callers who know they want lanes should name the kernel.
			if opts.Batch == BatchForce {
				return nil, fmt.Errorf("%w: Batch=force contradicts Kernel=%q (auto owns the engine choice)", ErrInvalid, KernelAuto)
			}
			kern := kernelRegistry[autoSelect(alg, g, opts, k)]
			if err := kern.Supports(g, opts); err != nil {
				return nil, err
			}
			return kern, nil
		}
		kern, err := LookupKernel(opts.Kernel)
		if err != nil {
			return nil, err
		}
		if err := kern.Supports(g, opts); err != nil {
			return nil, err
		}
		return kern, nil
	}
	if opts.HeapQueue {
		return kernelRegistry[KernelHeap], nil
	}
	if batchLegal(alg, opts) && useBatch(opts.Batch, alg, g.N(), k) {
		return kernelRegistry[engineName(g)], nil
	}
	return kernelRegistry[KernelDijkstra], nil
}
