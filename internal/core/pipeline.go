package core

import (
	"fmt"

	"parapsp/internal/graph"
	"parapsp/internal/obs"
	"parapsp/internal/order"
	"parapsp/internal/sched"
)

// The staged pipeline behind every solver entry point. An APSP solve is
//
//	Ordering → Schedule → SourceKernel → Fold
//
// stage one produces the source order, stage two maps ordered sources to
// workers (internal/sched), stage three runs one SSSP kernel per source
// (kernelreg.go), and stage four — completed-row reuse through the atomic
// flag vector — lives inside the kernels, which fold any published row
// they encounter. The paper's Algorithm values are canned presets over
// these stages; runPipeline is the one runner all of Solve, SolveSubset
// and SSSPPhase execute through.

// preset is one canned pipeline configuration: the ordering stage plus
// the execution markers of a paper Algorithm.
type preset struct {
	alg  Algorithm
	name string
	// ordering runs stage one; nil is the identity order.
	ordering func(g *graph.Graph, workers int, opts Options) ([]int32, error)
	// sequential pins the SSSP stage to one worker on the coordinator
	// goroutine (the paper's sequential baselines).
	sequential bool
	// adaptive marks Peng et al.'s adaptive variant, the one fused
	// pipeline: its ordering is interleaved with execution (the next
	// source depends on the reuse counts of the previous ones), so it
	// bypasses the staged runner by definition.
	adaptive bool
}

// presets registers the paper's Algorithm values as pipelines, in enum
// order. Algorithm.String and ParseAlgorithm are driven by this table, so
// a new preset cannot desync the two (the round-trip fuzz test pins it).
var presets = []preset{
	{alg: SeqBasic, name: "seq-basic", sequential: true},
	{alg: SeqOptimized, name: "seq-optimized", ordering: selectionOrdering, sequential: true},
	{alg: SeqAdaptive, name: "seq-adaptive", sequential: true, adaptive: true},
	{alg: ParAlg1, name: "ParAlg1"},
	{alg: ParAlg2, name: "ParAlg2", ordering: selectionOrdering},
	{alg: ParAPSP, name: "ParAPSP", ordering: multiListsOrdering},
}

// presetFor returns the pipeline preset of a, or nil when a is not a
// registered algorithm.
func presetFor(a Algorithm) *preset {
	for i := range presets {
		if presets[i].alg == a {
			return &presets[i]
		}
	}
	return nil
}

// Algorithms returns the registered algorithm presets in enum order.
func Algorithms() []Algorithm {
	out := make([]Algorithm, len(presets))
	for i := range presets {
		out[i] = presets[i].alg
	}
	return out
}

// selectionOrdering is the sequential O(n^2) selection sort of
// Algorithms 3 and 4 (stage one of SeqOptimized/ParAlg2).
func selectionOrdering(g *graph.Graph, workers int, opts Options) ([]int32, error) {
	return order.SelectionSort(g.Degrees(), ratioOrDefault(opts.Ratio)), nil
}

// multiListsOrdering is ParAPSP's stage one: the MultiLists parallel
// ordering by default, overridable through Options.Ordering.
func multiListsOrdering(g *graph.Graph, workers int, opts Options) ([]int32, error) {
	proc := opts.Ordering
	if proc == order.Identity {
		proc = order.MultiListsProc
	}
	cfg := opts.OrderingConfig
	cfg.Workers = workers
	return order.Run(proc, g.Degrees(), cfg)
}

// identitySources materializes the identity order; kernels always see an
// explicit source slice.
func identitySources(n int) []int32 {
	src := make([]int32, n)
	for i := range src {
		src[i] = int32(i)
	}
	return src
}

// runPipeline executes the SourceKernel stage of a solve: it binds the
// kernel to the runtime, maps Grain-sized source groups to workers under
// the schedule, and returns the aggregated counters. Scalar iterations of
// the sequential presets run on the coordinator goroutine (recording
// per-iteration spans, as the sequential baselines always did); everything
// else goes through the scheduler, whose per-worker claim loop records the
// same spans on the worker lanes.
func runPipeline(rt *Runtime, kern SourceKernel, scheme sched.Scheme) Counters {
	kr := kern.Bind(rt)
	k := len(rt.Sources)
	grain := kern.Grain()
	nb := (k + grain - 1) / grain
	if grain > 1 {
		// Lane-width groups always dispatch dynamically: a static map of
		// variable-cost batches would just re-create the load imbalance
		// the dynamic schedule exists to avoid.
		scheme = sched.DynamicCyclic
	}
	if rt.Seq && grain == 1 {
		rec := rt.Rec
		for i := 0; i < nb; i++ {
			var t0 int64
			if rec != nil {
				t0 = rec.Now()
			}
			kr.Run(0, i, i+1)
			if rec != nil {
				rec.Coordinator().Add(obs.Event{Phase: obs.PhaseIter, Start: t0, End: rec.Now(), Index: int64(i)})
			}
		}
		return kr.Finish()
	}
	sched.ParallelWorkersObs(nb, rt.Workers, scheme, rt.Rec, func(w, bi int) {
		lo := bi * grain
		hi := lo + grain
		if hi > k {
			hi = k
		}
		kr.Run(w, lo, hi)
	})
	return kr.Finish()
}

// String returns the paper's name for the algorithm, driven by the preset
// table.
func (a Algorithm) String() string {
	if p := presetFor(a); p != nil {
		return p.name
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Valid reports whether a names a registered algorithm preset.
func (a Algorithm) Valid() bool { return presetFor(a) != nil }

// ParseAlgorithm maps a name (as printed by String) to an Algorithm. It
// scans the same preset table String prints from, so the two cannot
// drift apart.
func ParseAlgorithm(name string) (Algorithm, error) {
	for i := range presets {
		if presets[i].name == name {
			return presets[i].alg, nil
		}
	}
	return 0, fmt.Errorf("core: unknown algorithm %q", name)
}
