package core

import (
	"fmt"
	"math/rand"
	"testing"

	"parapsp/internal/gen"
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
	"parapsp/internal/obs"
)

// The batch differential battery: every graph family × direction ×
// weighting the batch engine dispatches on, solved by both engines at
// several worker counts, asserting byte-identical solutions. It runs
// under -race in scripts/check.sh, so it doubles as the data-race proof
// for the batch engine's disjoint-row writes.

// batteryGraph builds one named test graph. Families:
//   - power-law: heavy-tailed configuration-model graph, the paper's
//     regime and the batch engine's best case (wide frontiers).
//   - grid: 2D lattice, the adversarial narrow-frontier regime.
//   - disconnected: three islands, so most distances stay Inf and the
//     termination logic is exercised with lanes that never meet.
func batteryGraph(t testing.TB, family string, directed, weighted bool, seed int64) *graph.Graph {
	t.Helper()
	var w gen.Weighting
	if weighted {
		w = gen.Weighting{Min: 1, Max: 9}
	}
	var g *graph.Graph
	var err error
	switch family {
	case "power-law":
		g, err = gen.PowerLawConfiguration(300, 2.5, 2, !directed, seed, w)
	case "grid":
		g, err = gen.Grid2D(18, 17, !directed, seed, w)
	case "disconnected":
		// Three islands of 100 vertices, random edges inside each.
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(300, !directed)
		if weighted {
			b.ForceWeighted()
		}
		for island := 0; island < 3; island++ {
			base := int32(island * 100)
			for e := 0; e < 220; e++ {
				u := base + int32(rng.Intn(100))
				v := base + int32(rng.Intn(100))
				if u == v {
					continue
				}
				wt := matrix.Dist(1)
				if weighted {
					wt = w.Min + matrix.Dist(rng.Int63n(int64(w.Max-w.Min+1)))
				}
				if addErr := b.AddWeighted(u, v, wt); addErr != nil {
					t.Fatal(addErr)
				}
			}
		}
		g, err = b.Build()
	default:
		t.Fatalf("unknown family %q", family)
	}
	if err != nil {
		t.Fatal(err)
	}
	return g
}

var batteryFamilies = []string{"power-law", "grid", "disconnected"}

// drawSubset picks k in-range sources with duplicates on purpose, so the
// battery also covers SolveSubset's dedup in front of the batch engine.
func drawSubset(rng *rand.Rand, n, k int) []int32 {
	out := make([]int32, k)
	for i := range out {
		out[i] = int32(rng.Intn(n))
	}
	out[k-1] = out[0] // guaranteed duplicate
	return out
}

func TestBatchMatchesScalarSolve(t *testing.T) {
	seed := int64(41)
	for _, family := range batteryFamilies {
		for _, directed := range []bool{false, true} {
			for _, weighted := range []bool{false, true} {
				seed++
				g := batteryGraph(t, family, directed, weighted, seed)
				name := fmt.Sprintf("%s/directed=%v/weighted=%v", family, directed, weighted)
				t.Run(name, func(t *testing.T) {
					for _, workers := range []int{1, 2, 8} {
						scalar, err := Solve(g, ParAPSP, Options{Workers: workers, Batch: BatchOff})
						if err != nil {
							t.Fatalf("workers=%d scalar: %v", workers, err)
						}
						batched, err := Solve(g, ParAPSP, Options{Workers: workers, Batch: BatchForce})
						if err != nil {
							t.Fatalf("workers=%d batch: %v", workers, err)
						}
						if scalar.Engine != EngineScalar {
							t.Fatalf("scalar run reports engine %q", scalar.Engine)
						}
						if want := engineName(g); batched.Engine != want {
							t.Fatalf("batch run reports engine %q, want %q", batched.Engine, want)
						}
						if !scalar.D.Equal(batched.D) {
							diff, _ := scalar.D.Diff(batched.D, 5)
							t.Fatalf("workers=%d: matrices differ at %v", workers, diff)
						}
						if a, b := scalar.D.Checksum(), batched.D.Checksum(); a != b {
							t.Fatalf("workers=%d: checksum %#x vs %#x", workers, a, b)
						}
						if batched.Stats.Batches == 0 || batched.Stats.BatchSources != int64(g.N()) {
							t.Fatalf("workers=%d: batch counters %+v", workers, batched.Stats)
						}
					}
				})
			}
		}
	}
}

func TestBatchMatchesScalarSubset(t *testing.T) {
	seed := int64(141)
	for _, family := range batteryFamilies {
		for _, directed := range []bool{false, true} {
			for _, weighted := range []bool{false, true} {
				seed++
				g := batteryGraph(t, family, directed, weighted, seed)
				rng := rand.New(rand.NewSource(seed))
				// k > 64 forces at least two lane batches.
				sources := drawSubset(rng, g.N(), 70)
				name := fmt.Sprintf("%s/directed=%v/weighted=%v", family, directed, weighted)
				t.Run(name, func(t *testing.T) {
					for _, workers := range []int{1, 2, 8} {
						scalar, err := SolveSubset(g, sources, Options{Workers: workers, Batch: BatchOff})
						if err != nil {
							t.Fatalf("workers=%d scalar: %v", workers, err)
						}
						batched, err := SolveSubset(g, sources, Options{Workers: workers, Batch: BatchForce})
						if err != nil {
							t.Fatalf("workers=%d batch: %v", workers, err)
						}
						if scalar.Engine != EngineScalar || scalar.Batched() {
							t.Fatalf("scalar run reports engine %q", scalar.Engine)
						}
						if want := engineName(g); batched.Engine != want || !batched.Batched() {
							t.Fatalf("batch run reports engine %q, want %q", batched.Engine, want)
						}
						if a, b := scalar.Checksum(), batched.Checksum(); a != b {
							t.Fatalf("workers=%d: checksum %#x vs %#x", workers, a, b)
						}
						for _, s := range scalar.Sources {
							sr, br := scalar.Row(s), batched.Row(s)
							for v := range sr {
								if sr[v] != br[v] {
									t.Fatalf("workers=%d: row %d differs at %d: %d vs %d",
										workers, s, v, sr[v], br[v])
								}
							}
						}
					}
				})
			}
		}
	}
}

// TestBatchAutoDispatch pins the Auto policy: small graphs and small
// subsets stay scalar, large multi-source solves go batched.
func TestBatchAutoDispatch(t *testing.T) {
	small := batteryGraph(t, "power-law", false, false, 7)
	if res, err := Solve(small, ParAPSP, Options{}); err != nil || res.Engine != EngineScalar {
		t.Fatalf("n=%d auto: engine %q err %v (want scalar)", small.N(), res.Engine, err)
	}

	big, err := gen.Grid2D(33, 34, true, 7, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := Solve(big, ParAPSP, Options{Workers: 2}); err != nil || res.Engine != EngineMSBFS {
		t.Fatalf("n=%d auto solve: engine %q err %v (want msbfs)", big.N(), res.Engine, err)
	}
	sub, err := SolveSubset(big, []int32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, Options{})
	if err != nil || sub.Engine != EngineMSBFS {
		t.Fatalf("k=10 auto subset: engine %q err %v (want msbfs)", sub.Engine, err)
	}
	sub, err = SolveSubset(big, []int32{1, 2, 3}, Options{})
	if err != nil || sub.Engine != EngineScalar {
		t.Fatalf("k=3 auto subset: engine %q err %v (want scalar)", sub.Engine, err)
	}
}

// TestBatchForceRespectsLegality: options whose semantics are scalar by
// definition override even BatchForce, and still solve correctly.
func TestBatchForceRespectsLegality(t *testing.T) {
	g := batteryGraph(t, "power-law", false, true, 9)
	want, err := Solve(g, ParAPSP, Options{Batch: BatchOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{Batch: BatchForce, PaperQueue: true},
		{Batch: BatchForce, HeapQueue: true},
		{Batch: BatchForce, DisableRowReuse: true},
	} {
		res, err := Solve(g, ParAPSP, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if res.Engine != EngineScalar {
			t.Fatalf("%+v: engine %q, want scalar fallback", opts, res.Engine)
		}
		if !res.D.Equal(want.D) {
			t.Fatalf("%+v: wrong solution", opts)
		}
	}
	if res, err := Solve(g, SeqAdaptive, Options{Batch: BatchForce}); err != nil || res.Engine != EngineScalar {
		t.Fatalf("SeqAdaptive: engine %q err %v, want scalar", res.Engine, err)
	}
}

// TestBatchObs checks the instrumented batch solve: batch counters reach
// the metrics registry and batch-sweep spans reach the worker lanes.
func TestBatchObs(t *testing.T) {
	g := batteryGraph(t, "power-law", false, false, 11)
	rec := obs.New(2)
	res, err := Solve(g, ParAPSP, Options{Workers: 2, Batch: BatchForce, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	rec.Stop()
	snap := rec.Metrics().Snapshot()
	if snap["core.batch.batches"] != res.Stats.Batches || res.Stats.Batches == 0 {
		t.Fatalf("core.batch.batches = %d, stats say %d", snap["core.batch.batches"], res.Stats.Batches)
	}
	if snap["core.batch.sources"] != int64(g.N()) {
		t.Fatalf("core.batch.sources = %d, want %d", snap["core.batch.sources"], g.N())
	}
	sweeps := 0
	for _, e := range rec.Events() {
		if e.Phase == obs.PhaseBatchSweep {
			sweeps++
			if e.Arg <= 0 {
				t.Fatalf("batch-sweep span with %d sweeps", e.Arg)
			}
		}
	}
	if int64(sweeps) != res.Stats.Batches {
		t.Fatalf("%d batch-sweep spans, %d batches", sweeps, res.Stats.Batches)
	}
}

// TestBatchSteadyStateAllocs pins the pooled-arena claim: once a scratch
// is warm, running a full 64-source batch allocates nothing, on both the
// unweighted (MS-BFS) and weighted (shared-sweep) engines.
func TestBatchSteadyStateAllocs(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		var w gen.Weighting
		if weighted {
			w = gen.Weighting{Min: 1, Max: 9}
		}
		g, err := gen.PowerLawConfiguration(2000, 2.5, 2, true, 13, w)
		if err != nil {
			t.Fatal(err)
		}
		n := g.N()
		sources := make([]int32, batchLaneWidth)
		for i := range sources {
			sources[i] = int32(i * 7 % n)
		}
		rows := make([][]matrix.Dist, len(sources))
		for i := range rows {
			rows[i] = make([]matrix.Dist, n)
		}
		var st Counters
		sc := getBatchScratch(n)
		run := func() {
			for i := range rows {
				for v := range rows[i] {
					rows[i][v] = matrix.Inf
				}
			}
			if weighted {
				sc.sweepSSSP(g, sources, rows, &st)
			} else {
				sc.msbfs(g, sources, rows, &st)
			}
		}
		run() // warm the arena (sweep's lane-major block grows on first use)
		if allocs := testing.AllocsPerRun(5, run); allocs != 0 {
			t.Errorf("weighted=%v: %v allocs per warm batch, want 0", weighted, allocs)
		}
		putBatchScratch(sc)
	}
}

// TestScratchPoolReuse pins the scalar-side satellite: SolveSubset returns
// its per-worker scratch to the pool, and a pooled scratch comes back with
// clean stats and queue state.
func TestScratchPoolReuse(t *testing.T) {
	g := batteryGraph(t, "power-law", false, true, 15)
	if _, err := SolveSubset(g, []int32{1, 2, 3}, Options{Batch: BatchOff}); err != nil {
		t.Fatal(err)
	}
	sc := getScratch(g.N())
	if sc.stats != (Counters{}) {
		t.Fatalf("pooled scratch has dirty stats: %+v", sc.stats)
	}
	if len(sc.queue) != 0 {
		t.Fatalf("pooled scratch has %d queued entries", len(sc.queue))
	}
	for v, in := range sc.inQueue {
		if in {
			t.Fatalf("pooled scratch has inQueue[%d] set", v)
		}
	}
	putScratch(sc)
}
