package core

import (
	"fmt"
	"sync"

	"parapsp/internal/graph"
	"parapsp/internal/kernel"
	"parapsp/internal/matrix"
)

// The lazy-batched stepping kernels, after Dong, Gu, Sun & Zhang's
// stepping-algorithm framework (arXiv:2105.06145). Classic Δ-stepping
// (kdelta.go) pays for every decrease-key: push maintains an exact inverse
// map (bucketOf) so each vertex sits in at most one bucket and stale
// entries are tombstoned. The lazy variants drop that maintenance
// entirely — every relaxation that improves a vertex appends one entry to
// a pending list and nothing is ever moved or deleted. Validity is
// decided at pop time against lastExp, the tentative distance at which the
// vertex was last expanded in this source's search:
//
//	a popped entry for v is live  ⇔  row[v] < lastExp[v]
//
// The invariant this rests on: whenever row[v] improves, an entry for v is
// appended at (or before, clamped to) the bucket/step where that distance
// is due; so after the final improvement of v there is always a pending
// entry that will pop while row[v] < lastExp[v], and v is then expanded
// (or folded) at its final distance. Duplicate and stale entries fail the
// comparison and cost one array read. Expansion sets lastExp[v] = row[v],
// so re-expansion happens only after a further strict improvement —
// exactly the reprocessing the eager variant does via re-bucketing.
//
// Two variants share the scratch:
//
//	deltastar - Δ*-stepping: bucketed like kdelta.go (light fixpoint then
//	            one heavy pass per bucket, light/heavy CSR split shared
//	            via buildLHSplit), but with lazy append-only buckets.
//	rho       - ρ-stepping: no buckets at all; a flat pool of pending
//	            vertices, and each step expands the pool entries whose
//	            tentative distance is ≤ the ρ-th smallest (quickselect),
//	            carrying the rest. ρ caps the priority inversion per step
//	            while keeping batches large enough to amortize.
//
// Both compose with completed-row reuse exactly like kdelta.go: a live pop
// of a vertex with a published row folds and skips all its edges (the fold
// bounds every continuation, heavy included), and fold-improved vertices
// are not re-enqueued.

// stepRho is the ρ-stepping batch bound: each step expands at most ρ
// pending vertices (the smallest tentative distances). Small ρ approaches
// Dijkstra's strict distance order (few wasted re-relaxations, many
// steps); large ρ approaches plain label correcting. 1<<9 sits at the flat
// bottom of the measured range on the benchmark families.
const stepRho = 1 << 9

// stepScratch is the per-worker state of one lazy stepping run. Every run
// ends with the buckets and pool empty and lastExp all Inf (reset via the
// touched list), so the scratch pools across sources and solves.
type stepScratch struct {
	// buckets are deltastar's lazy pending lists, indexed by absolute
	// bucket number and grown on demand; entries are appended on every
	// improvement, never moved or deleted.
	buckets [][]int32
	// lastExp[v] is the tentative distance at which v was last expanded
	// or folded in the current source's search; Inf = not yet.
	lastExp []matrix.Dist
	touched []int32
	// rvec/inR: deltastar's settled set awaiting heavy relaxation, as in
	// kdelta.go.
	rvec []int32
	inR  []bool
	// pool/next: ρ-stepping's flat pending pool and the next step's.
	pool []int32
	next []int32
	// dists holds the live pool distances for the quickselect.
	dists    []matrix.Dist
	improved []int32
	stats    Counters
	maxB     int
}

var stepPool sync.Pool

func getStepScratch(n int) *stepScratch {
	sc, _ := stepPool.Get().(*stepScratch)
	if sc == nil {
		sc = &stepScratch{}
	}
	if len(sc.lastExp) < n {
		sc.lastExp = make([]matrix.Dist, n)
		for i := range sc.lastExp {
			sc.lastExp[i] = matrix.Inf
		}
		sc.inR = make([]bool, n)
	}
	return sc
}

func putStepScratch(sc *stepScratch) {
	sc.stats = Counters{}
	stepPool.Put(sc)
}

// lazyPush appends v to bucket b — no membership test, no tombstone, no
// inverse map; the pop-side lastExp comparison absorbs duplicates.
func (sc *stepScratch) lazyPush(v int32, b int, st *Counters) {
	for len(sc.buckets) <= b {
		sc.buckets = append(sc.buckets, nil)
	}
	sc.buckets[b] = append(sc.buckets[b], v)
	if b > sc.maxB {
		sc.maxB = b
	}
	st.Enqueues++
}

// stepsSupports is the shared option validation: the stepping kernels are
// distance-only, like delta.
func stepsSupports(name string, opts Options) error {
	if opts.TrackPaths {
		return fmt.Errorf("%w: kernel %q does not track paths", ErrInvalid, name)
	}
	if opts.PaperQueue {
		return fmt.Errorf("%w: kernel %q has no paper-queue variant", ErrInvalid, name)
	}
	return nil
}

type deltaStarKernel struct{}

func init() { RegisterKernel(deltaStarKernel{}) }

func (deltaStarKernel) Name() string { return KernelDeltaStar }
func (deltaStarKernel) Grain() int   { return 1 }

func (deltaStarKernel) Supports(g *graph.Graph, opts Options) error {
	return stepsSupports(KernelDeltaStar, opts)
}

func (deltaStarKernel) Bind(rt *Runtime) KernelRun {
	return &stepRun{rt: rt, lh: buildLHSplit(rt.G), scratches: make([]*stepScratch, rt.Workers)}
}

type rhoKernel struct{}

func init() { RegisterKernel(rhoKernel{}) }

func (rhoKernel) Name() string { return KernelRho }
func (rhoKernel) Grain() int   { return 1 }

func (rhoKernel) Supports(g *graph.Graph, opts Options) error {
	return stepsSupports(KernelRho, opts)
}

// Bind for ρ-stepping skips the light/heavy split: the paper's ρ variant
// batches by pool rank, not by weight class, so the full adjacency is
// relaxed at expansion.
func (rhoKernel) Bind(rt *Runtime) KernelRun {
	return &stepRun{rt: rt, rho: stepRho, scratches: make([]*stepScratch, rt.Workers)}
}

// stepRun executes either lazy variant: rho > 0 selects ρ-stepping,
// otherwise Δ*-stepping over the bound split.
type stepRun struct {
	rt        *Runtime
	lh        lhSplit
	rho       int
	scratches []*stepScratch
}

func (r *stepRun) Run(w, lo, hi int) {
	sc := r.scratches[w]
	if sc == nil {
		sc = getStepScratch(r.rt.G.N())
		r.scratches[w] = sc
	}
	for i := lo; i < hi; i++ {
		if r.rho > 0 {
			r.rhoSource(r.rt.Sources[i], sc)
		} else {
			r.deltaStarSource(r.rt.Sources[i], sc)
		}
	}
}

func (r *stepRun) Finish() Counters {
	var total Counters
	for _, sc := range r.scratches {
		if sc != nil {
			total.Add(sc.stats)
			putStepScratch(sc)
		}
	}
	return total
}

// deltaStarSource runs one lazy Δ*-stepping SSSP from s into dest's row.
// Bucket structure and fold behavior mirror deltaRun.source; only the
// queue discipline differs (append-only buckets, pop-side validation).
func (r *stepRun) deltaStarSource(s int32, sc *stepScratch) {
	rt := r.rt
	g := rt.G
	dest := rt.Dest
	f := rt.Flags
	row := dest.row(s)
	row[s] = 0
	reuse := !rt.Opts.DisableRowReuse
	delta := r.lh.delta
	st := &sc.stats

	sc.maxB = 0
	sc.lazyPush(s, 0, st)
	rvec := sc.rvec[:0]
	for cur := 0; cur <= sc.maxB; cur++ {
		// Light phase: drain bucket cur to a fixpoint. Iterating by index
		// keeps appends made during the drain visible.
		for i := 0; i < len(sc.buckets[cur]); i++ {
			t := sc.buckets[cur][i]
			dt := row[t]
			if dt >= sc.lastExp[t] {
				continue // duplicate or stale: no improvement since last expansion
			}
			if sc.lastExp[t] == matrix.Inf {
				sc.touched = append(sc.touched, t)
			}
			sc.lastExp[t] = dt
			st.Pops++

			if reuse && t != s && f.done(t) {
				st.Folds++
				foldRow(dest, row, t, dt, st)
				continue
			}

			adj, wts := r.lh.light(g, t)
			st.EdgeScans += int64(len(adj))
			imp := sc.improved[:0]
			if wts == nil {
				imp = kernel.RelaxUnweighted(row, adj, matrix.AddSat(dt, 1), imp)
			} else {
				imp = kernel.RelaxWeighted(row, adj, wts, dt, imp)
			}
			st.EdgeUpdates += int64(len(imp))
			for _, v := range imp {
				b := int(row[v] / delta)
				if b < cur {
					b = cur // fold-dragged distance: earliest still-open slot
				}
				sc.lazyPush(v, b, st)
			}
			sc.improved = imp[:0]
			if r.lh.split && !sc.inR[t] {
				sc.inR[t] = true
				rvec = append(rvec, t)
			}
		}
		sc.buckets[cur] = sc.buckets[cur][:0]

		// Heavy phase: one relaxation of the heavy edges of every vertex
		// settled in this bucket, exactly as in kdelta.go.
		for _, t := range rvec {
			sc.inR[t] = false
			dt := row[t]
			adj, wts := r.lh.heavy(t)
			st.EdgeScans += int64(len(adj))
			imp := sc.improved[:0]
			imp = kernel.RelaxWeighted(row, adj, wts, dt, imp)
			st.EdgeUpdates += int64(len(imp))
			for _, v := range imp {
				bk := int(row[v] / delta)
				if bk <= cur {
					bk = cur + 1
				}
				sc.lazyPush(v, bk, st)
			}
			sc.improved = imp[:0]
		}
		rvec = rvec[:0]
	}
	sc.rvec = rvec[:0]
	for _, v := range sc.touched {
		sc.lastExp[v] = matrix.Inf
	}
	sc.touched = sc.touched[:0]
	dest.publish(f, s)
}

// rhoSource runs one ρ-stepping SSSP from s into dest's row. Each step
// first compacts the pool to its live entries (row[v] < lastExp[v]), then
// expands the entries with tentative distance ≤ θ, the ρ-th smallest
// (every entry when the pool is small), carrying the rest to the next
// step together with the newly improved vertices.
//
// Every step makes progress: the minimum-distance live entry always has
// dt ≤ θ, and mid-step improvements only lower row values, so its
// expansion check still passes when its turn comes.
func (r *stepRun) rhoSource(s int32, sc *stepScratch) {
	rt := r.rt
	g := rt.G
	dest := rt.Dest
	f := rt.Flags
	row := dest.row(s)
	row[s] = 0
	reuse := !rt.Opts.DisableRowReuse
	st := &sc.stats

	pool := append(sc.pool[:0], s)
	next := sc.next[:0]
	st.Enqueues++
	for len(pool) > 0 {
		// Compact to live entries, collecting their distances for the
		// threshold selection.
		live := 0
		ds := sc.dists[:0]
		for _, v := range pool {
			if row[v] < sc.lastExp[v] {
				pool[live] = v
				live++
				ds = append(ds, row[v])
			}
		}
		pool = pool[:live]
		sc.dists = ds
		if live == 0 {
			break
		}
		theta := matrix.Inf
		if live > r.rho {
			theta = selectKth(ds, r.rho)
		}
		next = next[:0]
		for _, t := range pool {
			dt := row[t]
			if dt >= sc.lastExp[t] {
				continue // duplicate entry expanded earlier this step
			}
			if dt > theta {
				next = append(next, t) // carried: beyond this step's batch
				continue
			}
			if sc.lastExp[t] == matrix.Inf {
				sc.touched = append(sc.touched, t)
			}
			sc.lastExp[t] = dt
			st.Pops++

			if reuse && t != s && f.done(t) {
				st.Folds++
				foldRow(dest, row, t, dt, st)
				continue
			}

			adj, wts := g.NeighborsW(t)
			st.EdgeScans += int64(len(adj))
			imp := sc.improved[:0]
			if wts == nil {
				imp = kernel.RelaxUnweighted(row, adj, matrix.AddSat(dt, 1), imp)
			} else {
				imp = kernel.RelaxWeighted(row, adj, wts, dt, imp)
			}
			st.EdgeUpdates += int64(len(imp))
			st.Enqueues += int64(len(imp))
			next = append(next, imp...)
			sc.improved = imp[:0]
		}
		pool, next = next, pool
	}
	sc.pool, sc.next = pool[:0], next[:0]
	for _, v := range sc.touched {
		sc.lastExp[v] = matrix.Inf
	}
	sc.touched = sc.touched[:0]
	dest.publish(f, s)
}

// selectKth returns the k-th smallest value of ds (1-based), partially
// reordering ds in place — Hoare partition with median-of-three pivots.
// Callers pass scratch distances, so the reordering is free.
func selectKth(ds []matrix.Dist, k int) matrix.Dist {
	lo, hi := 0, len(ds)-1
	k-- // rank, 0-based
	for lo < hi {
		mid := lo + (hi-lo)/2
		if ds[mid] < ds[lo] {
			ds[mid], ds[lo] = ds[lo], ds[mid]
		}
		if ds[hi] < ds[lo] {
			ds[hi], ds[lo] = ds[lo], ds[hi]
		}
		if ds[hi] < ds[mid] {
			ds[hi], ds[mid] = ds[mid], ds[hi]
		}
		p := ds[mid]
		i, j := lo, hi
		for i <= j {
			for ds[i] < p {
				i++
			}
			for ds[j] > p {
				j--
			}
			if i <= j {
				ds[i], ds[j] = ds[j], ds[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return ds[k]
		}
	}
	return ds[k]
}
