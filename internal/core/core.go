// Package core implements the paper's APSP algorithms: Peng et al.'s
// modified Dijkstra procedure (Algorithm 1) and basic/optimized/adaptive
// sequential solvers (Algorithms 2-3), and the paper's parallel solvers —
// ParAlg1, ParAlg2, and the contributed ParAPSP (Algorithms 4 and 8) —
// with pluggable ordering procedures and loop schedules so every
// configuration measured in the evaluation section can be reproduced.
package core

import (
	"errors"
	"fmt"
	"time"

	"parapsp/internal/graph"
	"parapsp/internal/matrix"
	"parapsp/internal/obs"
	"parapsp/internal/order"
	"parapsp/internal/sched"
)

// Algorithm identifies an APSP solver configuration from the paper.
type Algorithm int

const (
	// SeqBasic is Algorithm 2: the modified Dijkstra procedure applied to
	// sources 0..n-1 in index order, single-threaded.
	// The zero Algorithm value is deliberately invalid so that
	// higher-level option structs can treat it as "default".
	SeqBasic Algorithm = iota + 1
	// SeqOptimized is Algorithm 3: sources in descending degree order
	// found by the O(n^2) selection sort, single-threaded.
	SeqOptimized
	// SeqAdaptive is Peng et al.'s adaptive variant: the source order is
	// re-prioritized between iterations by how often each completed row
	// was actually reused. The paper chose not to parallelize it; it is
	// provided for the sequential comparison it mentions.
	SeqAdaptive
	// ParAlg1 is the parallel basic algorithm (Section 3.1): independent
	// modified-Dijkstra runs over sources in index order.
	ParAlg1
	// ParAlg2 is Algorithm 4: the sequential selection-sort ordering
	// followed by a schedule(dynamic,1) parallel loop over the ordered
	// sources.
	ParAlg2
	// ParAPSP is Algorithm 8, the paper's contribution: the MultiLists
	// parallel ordering followed by the same dynamic-cyclic source loop.
	ParAPSP
)

// Algorithm.String, ParseAlgorithm and Valid live in pipeline.go, driven
// by the preset table that defines what each enum value executes.

// Options tunes a Solve run. The zero value reproduces the paper's
// configuration of the chosen algorithm.
type Options struct {
	// Workers is the thread count of the parallel algorithms
	// (ignored, treated as 1, by the sequential ones).
	Workers int
	// Schedule overrides the loop schedule of the parallel source loop.
	// Default: DynamicCyclic for ParAlg2/ParAPSP (the paper's choice,
	// Figure 1) and for ParAlg1.
	Schedule sched.Scheme
	// scheduleSet distinguishes an explicit Block (0) from the default.
	// Set via WithSchedule.
	scheduleSet bool
	// Ordering overrides the ordering procedure of ParAPSP, which the
	// Section 4 experiments vary between ParBuckets, ParMax and
	// MultiLists. Zero value (Identity) means "the algorithm's own
	// default". It is ignored by algorithms whose ordering is fixed by
	// definition (ParAlg1/ParAlg2 and the sequential solvers).
	Ordering order.Procedure
	// OrderingConfig tunes the ordering procedure; zero fields take the
	// paper's defaults. Workers inside it is overridden by Options.Workers.
	OrderingConfig order.Config
	// Ratio is Algorithm 3's partial ordering ratio r for the
	// selection-sort based algorithms. 0 means the paper's r = 1.0.
	Ratio float64
	// HeapQueue switches the modified Dijkstra from the paper's FIFO
	// label-correcting queue to a binary min-heap (classic Dijkstra with
	// lazy deletion). Solutions are identical; this is the queue-discipline
	// ablation. Incompatible with TrackPaths and PaperQueue. It is the
	// legacy spelling of Kernel: "heap".
	HeapQueue bool
	// Kernel pins the SSSP source kernel by registry name ("dijkstra",
	// "heap", "delta", "deltastar", "rho", "pardij", "msbfs", "sweep" —
	// see Kernels()). Empty means the static default: the paper's
	// modified Dijkstra, or a multi-source lane kernel when the Batch
	// dispatch policy fires. The special value "auto" (KernelAuto) selects
	// adaptively from the graph's measured features (kauto.go);
	// Result.Kernel reports the kernel that actually ran. An explicit
	// kernel bypasses the batch policy entirely; Solve fails with
	// ErrInvalid when the kernel cannot solve the graph/options
	// combination exactly (for example "msbfs" on a weighted graph).
	Kernel string
	// PaperQueue makes the modified Dijkstra enqueue duplicates exactly
	// as written in Algorithm 1 line 16, instead of the default
	// SPFA-style membership test. Semantics are identical; this exists
	// for the queue-dedup ablation.
	PaperQueue bool
	// DisableRowReuse turns off the dynamic-programming reuse of
	// completed rows (the flag mechanism), degrading every solver to a
	// plain repeated label-correcting search. Ablation only: it isolates
	// the benefit the paper credits for its hyper-linear speedup.
	DisableRowReuse bool
	// Batch selects the multi-source batch engine policy (see BatchMode).
	// The zero value, BatchAuto, dispatches large multi-source solves to
	// the bit-parallel MS-BFS / shared-sweep engine and keeps everything
	// else on the scalar solvers; the result is identical either way.
	Batch BatchMode
	// MaxMemBytes, when non-zero, makes Solve fail instead of allocating
	// a distance matrix larger than this bound. The paper's experiments
	// are memory-gated (sx-superuser needs 160 GB); this is the guard.
	MaxMemBytes uint64
	// TrackPaths additionally computes the next-hop successor matrix so
	// shortest paths (not just distances) can be reconstructed. Doubles
	// the memory footprint. Not supported by SeqAdaptive.
	TrackPaths bool
	// Obs, when non-nil, instruments the solve: the ordering and SSSP
	// phases are recorded as coordinator spans and labeled for pprof,
	// the scheduler records per-worker iteration/dispatch/idle events,
	// the searches record fold-drain spans, and the final counters are
	// published into the recorder's metrics registry ("core.*"). The
	// recorder must have been created for at least Workers lanes
	// (obs.New(workers)); Solve fails with ErrInvalid otherwise. A nil
	// recorder leaves the hot path untouched except for one predictable
	// branch per potential event.
	Obs *obs.Recorder
}

// WithSchedule returns o with the loop schedule set explicitly.
func (o Options) WithSchedule(s sched.Scheme) Options {
	o.Schedule = s
	o.scheduleSet = true
	return o
}

// Result is the outcome of a Solve run, with the phase split the paper's
// Section 4 and 5 experiments report (ordering time vs Dijkstra-part time).
type Result struct {
	// D is the distance matrix: D.At(u,v) is the shortest-path distance
	// from u to v, matrix.Inf if v is unreachable from u.
	D *matrix.Matrix
	// Next is the successor matrix for path reconstruction; non-nil only
	// when Options.TrackPaths was set.
	Next *NextHop
	// Order is the source order the run used (nil for SeqBasic/ParAlg1,
	// whose order is the identity).
	Order []int32
	// OrderingTime is the elapsed wall time of the ordering procedure.
	OrderingTime time.Duration
	// SSSPTime is the elapsed wall time of the iterated modified
	// Dijkstra loop (the paper's "Dijkstra algorithm part").
	SSSPTime time.Duration
	// Stats aggregates the work performed (pops, folds, edge scans);
	// collected by the default FIFO distance-only solver, zero for the
	// paths/heap variants and SeqAdaptive.
	Stats Counters
	// Algorithm and Workers echo the configuration for reporting.
	Algorithm Algorithm
	Workers   int
	// Engine names the solver that ran the SSSP phase: EngineScalar for
	// the modified-Dijkstra solvers, EngineMSBFS / EngineSweep when the
	// batch dispatch took the multi-source path.
	Engine string
	// Kernel is the registry name of the SSSP kernel that ran (see
	// Options.Kernel); "dijkstra" unless overridden or batch-dispatched.
	Kernel string
}

// Total returns the overall elapsed time (ordering + SSSP phases).
func (r *Result) Total() time.Duration { return r.OrderingTime + r.SSSPTime }

// Errors returned by Solve.
var (
	ErrMemory  = errors.New("core: distance matrix exceeds memory bound")
	ErrInvalid = errors.New("core: invalid configuration")
)

// Solve runs the selected APSP algorithm on g and returns the distance
// matrix plus phase timings. All algorithms produce the exact APSP
// solution; they differ only in running time.
//
// A Solve is the full staged pipeline (see pipeline.go): the algorithm's
// preset supplies the ordering stage and the sequential/parallel execution
// mode, resolveKernel picks the SSSP source kernel, and runPipeline maps
// ordered sources to workers under the loop schedule.
func Solve(g *graph.Graph, alg Algorithm, opts Options) (*Result, error) {
	p := presetFor(alg)
	if p == nil {
		return nil, fmt.Errorf("%w: algorithm %d", ErrInvalid, int(alg))
	}
	if opts.Ordering != order.Identity && !opts.Ordering.Valid() {
		return nil, fmt.Errorf("%w: ordering %d", ErrInvalid, int(opts.Ordering))
	}
	if alg == SeqAdaptive && opts.TrackPaths {
		return nil, fmt.Errorf("%w: TrackPaths is not supported by SeqAdaptive", ErrInvalid)
	}
	if opts.HeapQueue && (opts.TrackPaths || opts.PaperQueue || alg == SeqAdaptive) {
		return nil, fmt.Errorf("%w: HeapQueue cannot combine with TrackPaths, PaperQueue, or SeqAdaptive", ErrInvalid)
	}
	n := g.N()
	if opts.MaxMemBytes != 0 {
		need := matrix.EstimateMemBytes(n)
		if opts.TrackPaths {
			need *= 2 // next-hop matrix is the same size again
		}
		if need > opts.MaxMemBytes {
			return nil, fmt.Errorf("%w: need %d bytes for n=%d, bound %d", ErrMemory, need, n, opts.MaxMemBytes)
		}
	}
	workers := sched.Workers(opts.Workers)
	if opts.Obs != nil && opts.Obs.Workers() < workers {
		return nil, fmt.Errorf("%w: obs recorder has %d worker lanes, need %d",
			ErrInvalid, opts.Obs.Workers(), workers)
	}
	kern, err := resolveKernel(alg, g, opts, n)
	if err != nil {
		return nil, err
	}
	res := &Result{Algorithm: alg, Workers: workers}
	effWorkers := workers
	if p.sequential {
		effWorkers = 1
	}

	// Stage 1: source ordering.
	start := time.Now()
	var src []int32
	runPhase(opts.Obs, alg, obs.PhaseOrdering, func() {
		if p.ordering != nil {
			src, err = p.ordering(g, workers, opts)
		}
	})
	if err != nil {
		return nil, err
	}
	res.OrderingTime = time.Since(start)
	res.Order = src

	// Stages 2-4: schedule the ordered sources onto the kernel; folds
	// (completed-row reuse) happen inside the kernels via the flag vector.
	D := matrix.New(n)
	D.InitAPSP()
	var nh *NextHop
	if opts.TrackPaths {
		nh = newNextHop(n)
	}
	start = time.Now()
	res.Engine = engineOf(kern)
	res.Kernel = kern.Name()
	runPhase(opts.Obs, alg, obs.PhaseSSSP, func() {
		if p.adaptive {
			// The adaptive variant fuses ordering into execution (the next
			// source depends on previous reuse counts); it bypasses the
			// staged runner by definition.
			res.Order = runAdaptive(g, D, opts)
			return
		}
		sources := src
		if sources == nil {
			sources = identitySources(n)
		}
		rt := &Runtime{
			G: g, Opts: opts, Workers: effWorkers, Sources: sources,
			Dest: rowDest{m: D}, Flags: newFlags(n), Next: nh,
			Rec: opts.Obs, Seq: p.sequential,
		}
		res.Stats = runPipeline(rt, kern, scheduleFor(alg, opts))
	})
	res.SSSPTime = time.Since(start)
	res.D = D
	res.Next = nh
	if opts.Obs != nil {
		res.PublishMetrics(opts.Obs.Metrics())
	}
	return res, nil
}

// runPhase executes one solver phase, and — when the solve is
// instrumented — wraps it in pprof labels (algorithm + phase, so CPU
// profiles split cleanly) and records a coordinator-lane span.
func runPhase(rec *obs.Recorder, alg Algorithm, phase obs.Phase, fn func()) {
	if rec == nil {
		fn()
		return
	}
	t0 := rec.Now()
	obs.Do(fn, "parapsp-alg", alg.String(), "parapsp-phase", phase.String())
	rec.Coordinator().Add(obs.Event{Phase: phase, Start: t0, End: rec.Now()})
}

func ratioOrDefault(r float64) float64 {
	if r == 0 {
		return 1.0
	}
	return r
}

// scheduleFor resolves the loop schedule: an explicit WithSchedule wins,
// otherwise the paper's dynamic-cyclic choice.
func scheduleFor(alg Algorithm, opts Options) sched.Scheme {
	if opts.scheduleSet {
		return opts.Schedule
	}
	if opts.Schedule != sched.Block { // non-zero value set directly
		return opts.Schedule
	}
	_ = alg
	return sched.DynamicCyclic
}

// OrderingOnly runs just the ordering procedure of a configuration and
// returns the order and its elapsed time. The Section 4 experiments
// (Table 1, Figures 4 and 6) time this phase in isolation.
func OrderingOnly(g *graph.Graph, proc order.Procedure, cfg order.Config) ([]int32, time.Duration, error) {
	degrees := g.Degrees()
	start := time.Now()
	src, err := order.Run(proc, degrees, cfg)
	return src, time.Since(start), err
}

// SSSPPhase runs only the iterated-Dijkstra phase over a precomputed source
// order and returns the distance matrix and elapsed time. Figure 5 times
// this phase under orders produced by different procedures. The batch
// dispatch policy never fires here (the phase isolation exists to measure
// the scalar kernels), but Options.Kernel still pins any kernel explicitly.
func SSSPPhase(g *graph.Graph, src []int32, workers int, scheme sched.Scheme, opts Options) (*matrix.Matrix, time.Duration, error) {
	n := g.N()
	if src != nil && !order.IsPermutation(src, n) {
		return nil, 0, fmt.Errorf("%w: source order is not a permutation of [0,%d)", ErrInvalid, n)
	}
	w := sched.Workers(workers)
	if opts.Obs != nil && opts.Obs.Workers() < w {
		return nil, 0, fmt.Errorf("%w: obs recorder has %d worker lanes, need %d",
			ErrInvalid, opts.Obs.Workers(), w)
	}
	noBatch := opts
	noBatch.Batch = BatchOff
	kern, err := resolveKernel(ParAPSP, g, noBatch, n)
	if err != nil {
		return nil, 0, err
	}
	D := matrix.New(n)
	D.InitAPSP()
	start := time.Now()
	sources := src
	if sources == nil {
		sources = identitySources(n)
	}
	rt := &Runtime{
		G: g, Opts: opts, Workers: w, Sources: sources,
		Dest: rowDest{m: D}, Flags: newFlags(n),
		Rec: opts.Obs, Seq: w == 1,
	}
	runPipeline(rt, kern, scheme)
	return D, time.Since(start), nil
}
