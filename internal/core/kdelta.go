package core

import (
	"fmt"
	"sync"

	"parapsp/internal/graph"
	"parapsp/internal/kernel"
	"parapsp/internal/matrix"
)

// The Δ-stepping source kernel (Meyer & Sanders; the shared-memory
// formulation follows Kranjčević et al., arXiv:1604.02113). Vertices with
// tentative distance d wait in bucket ⌊d/Δ⌋; bucket i is drained to a
// fixpoint over the light edges (weight ≤ Δ) — a relaxation can re-fill
// the bucket being drained — and the heavy edges (weight > Δ) of every
// vertex settled in the bucket are then relaxed once, since a heavy edge
// can only reach buckets > i. Δ=1 on an unweighted graph degenerates to
// BFS (all edges light, one pass per bucket); larger Δ trades priority
// precision for fewer, wider bucket phases.
//
// This kernel exists as the registry's proof of extensibility: it plugs
// into the same pipeline seam as the paper's modified Dijkstra and
// composes with the same completed-row reuse. When a popped vertex t has a
// published final row, the row is folded into the current row and t's
// edges — light AND heavy — are skipped: row t is final and the triangle
// inequality D[t][x] ≤ D[t][u] + w(u,x) means the fold already bounds
// every continuation through t, heavy edges included. For the same reason
// fold-improved vertices are not re-bucketed (the argument of
// modifiedDijkstra): relaxing an edge out of a fold-improved vertex v can
// never beat dt + D[t][·], which the fold already wrote. A consequence is
// that a popped vertex's distance may sit below its bucket's nominal
// range; pushes are therefore clamped to never land behind the cursor
// (label correcting makes late processing harmless, never wrong).
type deltaKernel struct{}

func init() { RegisterKernel(deltaKernel{}) }

func (deltaKernel) Name() string { return KernelDelta }
func (deltaKernel) Grain() int   { return 1 }

func (deltaKernel) Supports(g *graph.Graph, opts Options) error {
	if opts.TrackPaths {
		return fmt.Errorf("%w: kernel %q does not track paths", ErrInvalid, KernelDelta)
	}
	if opts.PaperQueue {
		return fmt.Errorf("%w: kernel %q has no paper-queue variant", ErrInvalid, KernelDelta)
	}
	return nil
}

// Bind computes the shared read-only preparation once per solve: the
// bucket width (deltaWidth's heuristic: mean edge weight, narrowed on
// dense graphs, clamped to a positive floor) and the light/heavy CSR
// split every worker then reads — both shared with the lazy stepping
// kernels via buildLHSplit (ksplit.go).
func (deltaKernel) Bind(rt *Runtime) KernelRun {
	return &deltaRun{rt: rt, scratches: make([]*deltaScratch, rt.Workers), lh: buildLHSplit(rt.G)}
}

type deltaRun struct {
	rt        *Runtime
	scratches []*deltaScratch
	lh        lhSplit
}

// deltaScratch is the per-worker state of one Δ-stepping run: the bucket
// array (indexed by absolute bucket number, grown on demand), the inverse
// map bucketOf (-1 = not queued; a pop whose bucketOf disagrees with the
// cursor is a stale entry left by a re-push into an earlier bucket), the
// settled set R of the current bucket awaiting heavy relaxation, and the
// improved-vertex buffer of the relaxation kernels. Every run ends with
// buckets empty, bucketOf all -1 and inR all false, so the scratch pools
// across sources and solves like the FIFO solver's.
type deltaScratch struct {
	buckets  [][]int32
	bucketOf []int32
	rvec     []int32
	inR      []bool
	improved []int32
	stats    Counters
	maxB     int
}

var deltaPool sync.Pool

func getDeltaScratch(n int) *deltaScratch {
	sc, _ := deltaPool.Get().(*deltaScratch)
	if sc == nil {
		sc = &deltaScratch{}
	}
	if len(sc.bucketOf) < n {
		sc.bucketOf = make([]int32, n)
		for i := range sc.bucketOf {
			sc.bucketOf[i] = -1
		}
		sc.inR = make([]bool, n)
	}
	return sc
}

func putDeltaScratch(sc *deltaScratch) {
	sc.stats = Counters{}
	deltaPool.Put(sc)
}

// push queues v in bucket b unless it is already there; a previous entry
// in another bucket is left behind as a stale tombstone (cheaper than
// removal — the pop loop skips it via bucketOf).
func (sc *deltaScratch) push(v int32, b int, st *Counters) {
	if sc.bucketOf[v] == int32(b) {
		return
	}
	sc.bucketOf[v] = int32(b)
	for len(sc.buckets) <= b {
		sc.buckets = append(sc.buckets, nil)
	}
	sc.buckets[b] = append(sc.buckets[b], v)
	if b > sc.maxB {
		sc.maxB = b
	}
	st.Enqueues++
}

func (r *deltaRun) Run(w, lo, hi int) {
	sc := r.scratches[w]
	if sc == nil {
		sc = getDeltaScratch(r.rt.G.N())
		r.scratches[w] = sc
	}
	for i := lo; i < hi; i++ {
		r.source(r.rt.Sources[i], sc)
	}
}

func (r *deltaRun) Finish() Counters {
	var total Counters
	for _, sc := range r.scratches {
		if sc != nil {
			total.Add(sc.stats)
			putDeltaScratch(sc)
		}
	}
	return total
}

// source runs one Δ-stepping SSSP from s into dest's row.
func (r *deltaRun) source(s int32, sc *deltaScratch) {
	rt := r.rt
	g := rt.G
	dest := rt.Dest
	f := rt.Flags
	row := dest.row(s)
	row[s] = 0
	reuse := !rt.Opts.DisableRowReuse
	delta := r.lh.delta
	st := &sc.stats

	sc.maxB = 0
	sc.push(s, 0, st)
	rvec := sc.rvec[:0]
	for cur := 0; cur <= sc.maxB; cur++ {
		// Light phase: drain bucket cur to a fixpoint. Iterating by index
		// keeps appends made during the drain visible.
		for i := 0; i < len(sc.buckets[cur]); i++ {
			t := sc.buckets[cur][i]
			if sc.bucketOf[t] != int32(cur) {
				continue // stale: t moved to an earlier bucket and was done there
			}
			sc.bucketOf[t] = -1
			st.Pops++
			dt := row[t]

			if reuse && t != s && f.done(t) {
				// Fold instead of expanding: the final row covers every
				// continuation through t, heavy edges included, so t skips
				// the settled set R too.
				st.Folds++
				foldRow(dest, row, t, dt, st)
				continue
			}

			adj, wts := r.lh.light(g, t)
			st.EdgeScans += int64(len(adj))
			imp := sc.improved[:0]
			if wts == nil {
				imp = kernel.RelaxUnweighted(row, adj, matrix.AddSat(dt, 1), imp)
			} else {
				imp = kernel.RelaxWeighted(row, adj, wts, dt, imp)
			}
			st.EdgeUpdates += int64(len(imp))
			for _, v := range imp {
				b := int(row[v] / delta)
				if b < cur {
					// The source distance sat below the bucket's nominal
					// range (fold-improved); processing v in the current
					// bucket is the earliest still-open slot.
					b = cur
				}
				sc.push(v, b, st)
			}
			sc.improved = imp[:0]
			if r.lh.split && !sc.inR[t] {
				sc.inR[t] = true
				rvec = append(rvec, t)
			}
		}
		sc.buckets[cur] = sc.buckets[cur][:0]

		// Heavy phase: one relaxation of the heavy edges of every vertex
		// settled in this bucket, with its now-final-for-this-bucket
		// distance. Heavy targets land in buckets > cur (clamped likewise
		// when a fold dragged the source distance back).
		for _, t := range rvec {
			sc.inR[t] = false
			dt := row[t]
			adj, wts := r.lh.heavy(t)
			st.EdgeScans += int64(len(adj))
			imp := sc.improved[:0]
			imp = kernel.RelaxWeighted(row, adj, wts, dt, imp)
			st.EdgeUpdates += int64(len(imp))
			for _, v := range imp {
				bk := int(row[v] / delta)
				if bk <= cur {
					bk = cur + 1
				}
				sc.push(v, bk, st)
			}
			sc.improved = imp[:0]
		}
		rvec = rvec[:0]
	}
	sc.rvec = rvec[:0]
	dest.publish(f, s)
}
