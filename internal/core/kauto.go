package core

import (
	"sync"

	"parapsp/internal/analysis"
	"parapsp/internal/graph"
)

// Adaptive kernel selection: Options.Kernel = KernelAuto asks resolveKernel
// to pick the concrete kernel from cheap graph features instead of the
// static default policy. The decision table below is calibrated against
// the kernelcmp regression gate (scripts/kernelgate.sh): the gate fails CI
// when auto lands more than a few percent off the measured per-dataset
// best, so the table cannot silently rot as kernels evolve.
//
// The features (analysis.Features: weightedness, mean/max degree, degree
// skew, a double-sweep BFS diameter lower bound) cost O(n + m) — two BFS
// sweeps and a degree scan — which is amortized over a k-source solve and
// cached per graph besides (graphs are immutable once built; the serve
// daemon solves thousands of subsets against one graph).

// autoSkewHeavyTail is the degree skew (max/mean) above which a graph is
// treated as heavy-tailed. Regular meshes sit at ≈1–2, the benchmark
// power-law graphs at ≥20; 8 splits the two regimes with a wide margin.
const autoSkewHeavyTail = 8.0

// featureCache memoizes analysis.Features per graph. Keyed by identity:
// graphs are immutable after Build, and the handful of graphs a process
// solves against keeps the cache trivially small.
var featureCache sync.Map // *graph.Graph -> analysis.FeatureSet

func graphFeatures(g *graph.Graph) analysis.FeatureSet {
	if v, ok := featureCache.Load(g); ok {
		return v.(analysis.FeatureSet)
	}
	fs := analysis.Features(g)
	featureCache.Store(g, fs)
	return fs
}

// autoSelect picks the kernel for a k-source solve. It only returns
// kernels whose Supports accepts (g, opts): the option gates mirror
// batchLegal and the per-kernel Supports rules.
//
// The table, in decision order:
//
//  1. Path tracking and the paper-verbatim queue exist only in the FIFO
//     solver: dijkstra.
//  2. Unweighted multi-source regime (parallel algorithm, ≥
//     batchMinSources sources on ≥ batchMinVertices vertices, batching
//     not disabled): msbfs — bit-parallel levels amortize the edge
//     stream 64 ways and BFS levels are the exact distances. The
//     weighted lane kernel (sweep) is deliberately NOT in the table:
//     kernelcmp measures it several times slower than the scalar kernels
//     on full weighted APSP (a lane batch forgoes completed-row reuse,
//     and folds dominate weighted solves); callers who want it for
//     narrow weighted subsets can still name it explicitly.
//  3. Unweighted scalar solves: dijkstra (label-correcting FIFO is BFS
//     with folds; the stepping kernels only add bucket overhead at Δ=1).
//  4. Weighted heavy-tailed graphs (skew ≥ autoSkewHeavyTail): deltastar
//     — measured 0.74× dijkstra on the weighted power-law dataset
//     (distance-ordered popping folds high-degree hub rows early, and
//     the lazy buckets make the ordering nearly free).
//  5. Weighted meshes: dijkstra — kernelcmp shows bucket ordering buys
//     nothing when every frontier is narrow and fold targets are few
//     (every stepping kernel is ≥1.1× there).
func autoSelect(alg Algorithm, g *graph.Graph, opts Options, k int) string {
	if opts.TrackPaths || opts.PaperQueue {
		return KernelDijkstra
	}
	if !g.Weighted() {
		laneOK := !opts.DisableRowReuse && opts.Batch != BatchOff &&
			alg >= ParAlg1 && k >= batchMinSources && g.N() >= batchMinVertices
		if laneOK {
			return KernelMSBFS
		}
		return KernelDijkstra
	}
	if graphFeatures(g).DegreeSkew >= autoSkewHeavyTail {
		return KernelDeltaStar
	}
	return KernelDijkstra
}
