package core

import (
	"fmt"
	"sort"
	"sync"

	"parapsp/internal/graph"
	"parapsp/internal/matrix"
	"parapsp/internal/sched"
)

// SubsetResult holds shortest-path rows for a subset of sources: the
// memory-bounded variant of APSP for graphs whose full n*n matrix would
// not fit (the paper's own experiments were capped by the 256 GB of
// Machine-II; subset solves are how a user works beyond that cap).
type SubsetResult struct {
	// Sources are the solved source vertices, in the order their rows
	// appear.
	Sources []int32
	// Engine names the solver that produced the rows: EngineScalar for
	// the per-source modified Dijkstra, EngineMSBFS / EngineSweep for the
	// multi-source batch engine. The rows are identical either way.
	Engine string
	// Kernel is the registry name of the SSSP kernel that produced the
	// rows (see Options.Kernel).
	Kernel string
	rowIdx map[int32]int
	n      int
	rows   []matrix.Dist // len(Sources) * n, row-major
}

// Row returns the distance row of source s (aliasing internal storage),
// or nil if s was not in the solved subset.
func (r *SubsetResult) Row(s int32) []matrix.Dist {
	i, ok := r.rowIdx[s]
	if !ok {
		return nil
	}
	return r.rows[i*r.n : (i+1)*r.n]
}

// At returns the distance from source s to v; it panics if s was not
// solved (use Row to probe membership).
func (r *SubsetResult) At(s, v int32) matrix.Dist {
	row := r.Row(s)
	if row == nil {
		panic(fmt.Sprintf("core: source %d not in subset", s))
	}
	return row[v]
}

// MemBytes reports the payload size of the subset rows.
func (r *SubsetResult) MemBytes() uint64 { return uint64(len(r.rows)) * 4 }

// Batched reports whether the multi-source batch engine produced the rows.
func (r *SubsetResult) Batched() bool { return r.Engine != EngineScalar }

// Checksum hashes every row in source order — comparable across engines
// (and against matrix.ChecksumDists of the same rows concatenated), so the
// differential tests and the batch benchmark can assert byte-identical
// solutions without keeping both row sets alive.
func (r *SubsetResult) Checksum() uint64 { return matrix.ChecksumDists(r.rows) }

// SolveSubset computes exact single-source rows for the given sources only,
// with the same modified-Dijkstra + row-reuse machinery as the full solver:
// a search may fold in the completed row of any other *subset* source.
// Sources are deduplicated and processed in descending degree order (the
// optimized ordering restricted to the subset). Memory is
// O(len(sources) * n) instead of O(n^2).
func SolveSubset(g *graph.Graph, sources []int32, opts Options) (*SubsetResult, error) {
	n := g.N()
	uniq := make([]int32, 0, len(sources))
	seen := make(map[int32]bool, len(sources))
	for _, s := range sources {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("%w: source %d out of range [0,%d)", ErrInvalid, s, n)
		}
		if !seen[s] {
			seen[s] = true
			uniq = append(uniq, s)
		}
	}
	k := len(uniq)
	if opts.MaxMemBytes != 0 {
		if need := uint64(k) * uint64(n) * 4; need > opts.MaxMemBytes {
			return nil, fmt.Errorf("%w: need %d bytes for %d rows, bound %d", ErrMemory, need, k, opts.MaxMemBytes)
		}
	}

	// Descending degree order within the subset, ties by vertex id —
	// the same heuristic as the full optimized algorithm.
	sort.SliceStable(uniq, func(a, b int) bool {
		da, db := g.OutDegree(uniq[a]), g.OutDegree(uniq[b])
		if da != db {
			return da > db
		}
		return uniq[a] < uniq[b]
	})

	res := &SubsetResult{
		Sources: uniq,
		rowIdx:  make(map[int32]int, k),
		n:       n,
		rows:    make([]matrix.Dist, k*n),
	}
	for i, s := range uniq {
		res.rowIdx[s] = i
	}
	for i := range res.rows {
		res.rows[i] = matrix.Inf
	}

	workers := sched.Workers(opts.Workers)
	if opts.Obs != nil && opts.Obs.Workers() < workers {
		return nil, fmt.Errorf("%w: obs recorder has %d worker lanes, need %d",
			ErrInvalid, opts.Obs.Workers(), workers)
	}
	// Same pipeline as the full Solve, with the subset row block as the
	// destination. resolveKernel applies the batch dispatch policy (the
	// lane kernels solve lane-width groups of subset rows with one shared
	// traversal each; reuse does not cross groups, the rows are identical)
	// or honors an explicit Options.Kernel.
	kern, err := resolveKernel(ParAPSP, g, opts, k)
	if err != nil {
		return nil, err
	}
	res.Engine = engineOf(kern)
	res.Kernel = kern.Name()
	rt := &Runtime{
		G: g, Opts: opts, Workers: workers, Sources: uniq,
		Dest: rowDest{sub: res}, Flags: newFlags(n), Rec: opts.Obs,
	}
	runPipeline(rt, kern, sched.DynamicCyclic)
	return res, nil
}

// scratchPool recycles scalar per-worker scratch across SolveSubset calls,
// so a serving process answering a steady stream of subset queries does
// not reallocate the O(n) queue state per request. The search loop leaves
// queue empty and inQueue all-false on completion, so a pooled scratch
// only needs its stats and obs hooks cleared.
var scratchPool sync.Pool

func getScratch(n int) *scratch {
	sc, _ := scratchPool.Get().(*scratch)
	if sc == nil {
		return newScratch(n)
	}
	if len(sc.inQueue) < n {
		sc.inQueue = make([]bool, n)
	}
	return sc
}

func putScratch(sc *scratch) {
	sc.stats = Counters{}
	sc.obsRec, sc.obsLane = nil, nil
	scratchPool.Put(sc)
}
