package core

import (
	"fmt"
	"sort"
	"sync"

	"parapsp/internal/graph"
	"parapsp/internal/kernel"
	"parapsp/internal/matrix"
	"parapsp/internal/sched"
)

// SubsetResult holds shortest-path rows for a subset of sources: the
// memory-bounded variant of APSP for graphs whose full n*n matrix would
// not fit (the paper's own experiments were capped by the 256 GB of
// Machine-II; subset solves are how a user works beyond that cap).
type SubsetResult struct {
	// Sources are the solved source vertices, in the order their rows
	// appear.
	Sources []int32
	// Engine names the solver that produced the rows: EngineScalar for
	// the per-source modified Dijkstra, EngineMSBFS / EngineSweep for the
	// multi-source batch engine. The rows are identical either way.
	Engine string
	rowIdx map[int32]int
	n      int
	rows   []matrix.Dist // len(Sources) * n, row-major
}

// Row returns the distance row of source s (aliasing internal storage),
// or nil if s was not in the solved subset.
func (r *SubsetResult) Row(s int32) []matrix.Dist {
	i, ok := r.rowIdx[s]
	if !ok {
		return nil
	}
	return r.rows[i*r.n : (i+1)*r.n]
}

// At returns the distance from source s to v; it panics if s was not
// solved (use Row to probe membership).
func (r *SubsetResult) At(s, v int32) matrix.Dist {
	row := r.Row(s)
	if row == nil {
		panic(fmt.Sprintf("core: source %d not in subset", s))
	}
	return row[v]
}

// MemBytes reports the payload size of the subset rows.
func (r *SubsetResult) MemBytes() uint64 { return uint64(len(r.rows)) * 4 }

// Batched reports whether the multi-source batch engine produced the rows.
func (r *SubsetResult) Batched() bool { return r.Engine != EngineScalar }

// Checksum hashes every row in source order — comparable across engines
// (and against matrix.ChecksumDists of the same rows concatenated), so the
// differential tests and the batch benchmark can assert byte-identical
// solutions without keeping both row sets alive.
func (r *SubsetResult) Checksum() uint64 { return matrix.ChecksumDists(r.rows) }

// SolveSubset computes exact single-source rows for the given sources only,
// with the same modified-Dijkstra + row-reuse machinery as the full solver:
// a search may fold in the completed row of any other *subset* source.
// Sources are deduplicated and processed in descending degree order (the
// optimized ordering restricted to the subset). Memory is
// O(len(sources) * n) instead of O(n^2).
func SolveSubset(g *graph.Graph, sources []int32, opts Options) (*SubsetResult, error) {
	n := g.N()
	uniq := make([]int32, 0, len(sources))
	seen := make(map[int32]bool, len(sources))
	for _, s := range sources {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("%w: source %d out of range [0,%d)", ErrInvalid, s, n)
		}
		if !seen[s] {
			seen[s] = true
			uniq = append(uniq, s)
		}
	}
	k := len(uniq)
	if opts.MaxMemBytes != 0 {
		if need := uint64(k) * uint64(n) * 4; need > opts.MaxMemBytes {
			return nil, fmt.Errorf("%w: need %d bytes for %d rows, bound %d", ErrMemory, need, k, opts.MaxMemBytes)
		}
	}

	// Descending degree order within the subset, ties by vertex id —
	// the same heuristic as the full optimized algorithm.
	sort.SliceStable(uniq, func(a, b int) bool {
		da, db := g.OutDegree(uniq[a]), g.OutDegree(uniq[b])
		if da != db {
			return da > db
		}
		return uniq[a] < uniq[b]
	})

	res := &SubsetResult{
		Sources: uniq,
		rowIdx:  make(map[int32]int, k),
		n:       n,
		rows:    make([]matrix.Dist, k*n),
	}
	for i, s := range uniq {
		res.rowIdx[s] = i
	}
	for i := range res.rows {
		res.rows[i] = matrix.Inf
	}

	workers := sched.Workers(opts.Workers)
	if batchLegal(ParAPSP, opts) && useBatch(opts.Batch, ParAPSP, n, k) {
		// Multi-source batch dispatch: lane-width groups of subset rows
		// solved by one shared traversal each. Completed-row reuse does
		// not cross batch groups (see batch.go); the rows are identical.
		res.Engine = engineName(g)
		runBatches(g, uniq,
			func(i int) []matrix.Dist { return res.rows[i*n : (i+1)*n] },
			nil, workers, opts.Obs)
		return res, nil
	}
	res.Engine = EngineScalar
	f := newFlags(n)
	scratches := make([]*scratch, workers)
	sched.ParallelWorkers(k, workers, sched.DynamicCyclic, func(w, i int) {
		sc := scratches[w]
		if sc == nil {
			sc = getScratch(n)
			scratches[w] = sc
		}
		subsetDijkstra(g, uniq[i], res, f, sc, opts)
	})
	for _, sc := range scratches {
		if sc != nil {
			putScratch(sc)
		}
	}
	return res, nil
}

// scratchPool recycles scalar per-worker scratch across SolveSubset calls,
// so a serving process answering a steady stream of subset queries does
// not reallocate the O(n) queue state per request. The search loop leaves
// queue empty and inQueue all-false on completion, so a pooled scratch
// only needs its stats and obs hooks cleared.
var scratchPool sync.Pool

func getScratch(n int) *scratch {
	sc, _ := scratchPool.Get().(*scratch)
	if sc == nil {
		return newScratch(n)
	}
	if len(sc.inQueue) < n {
		sc.inQueue = make([]bool, n)
	}
	return sc
}

func putScratch(sc *scratch) {
	sc.stats = Counters{}
	sc.obsRec, sc.obsLane = nil, nil
	scratchPool.Put(sc)
}

// subsetDijkstra is the modified Dijkstra over a SubsetResult: identical to
// modifiedDijkstra except that completed rows are looked up through the
// subset's row index (flags are only ever set for subset sources, so a
// flagged vertex always has a row).
func subsetDijkstra(g *graph.Graph, s int32, res *SubsetResult, f *flags, sc *scratch, opts Options) {
	row := res.Row(s)
	row[s] = 0
	dedup := !opts.PaperQueue
	reuse := !opts.DisableRowReuse

	q := sc.queue[:0]
	q = append(q, s)
	if dedup {
		sc.inQueue[s] = true
	}
	head := 0
	for head < len(q) {
		t := q[head]
		head++
		if head > queueCompactMin && head*2 >= len(q) {
			q = q[:copy(q, q[head:])]
			head = 0
		}
		if dedup {
			sc.inQueue[t] = false
		}
		dt := row[t]

		if reuse && t != s && f.done(t) {
			// Subset rows live outside the Matrix, so there is no
			// finite-span summary to dispatch on; the blocked kernel
			// sweeps the full row.
			kernel.FoldRow(row, res.Row(t), dt)
			continue
		}

		adj, w := g.NeighborsW(t)
		imp := sc.improved[:0]
		if w == nil {
			imp = kernel.RelaxUnweighted(row, adj, matrix.AddSat(dt, 1), imp)
		} else {
			imp = kernel.RelaxWeighted(row, adj, w, dt, imp)
		}
		for _, v := range imp {
			if !dedup {
				q = append(q, v)
			} else if !sc.inQueue[v] {
				sc.inQueue[v] = true
				q = append(q, v)
			}
		}
		sc.improved = imp[:0]
	}
	sc.queue = q[:0]
	f.set(s)
}
