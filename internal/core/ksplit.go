package core

import (
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// Shared preparation of the stepping kernels (delta, deltastar): the
// bucket-width heuristic and the light/heavy CSR split both operate on the
// same Δ, so they live together and every stepping kernel Binds through
// buildLHSplit.

// denseDeltaDegree is the mean-degree threshold of the dense regime of
// deltaWidth. 16 is well above every sparse family the benchmarks use
// (power-law ≈ 5, grid ≈ 4) and well below genuinely dense graphs, where
// one mean-weight bucket would admit far too many simultaneously-active
// vertices.
const denseDeltaDegree = 16

// deltaWidth picks the stepping bucket width Δ for g. The base heuristic
// is the classic Δ = mean edge weight; two corrections apply:
//
//   - Dense graphs (mean degree ≥ denseDeltaDegree) narrow the width to
//     Δ = mean·(n/m): with d = m/n expected out-edges per vertex, a
//     mean-weight bucket holds Θ(d) times more work per phase than the
//     sparse case, so the width shrinks by the same factor to keep the
//     per-bucket frontier (and its wasted re-relaxations) bounded.
//   - Δ is clamped to a positive floor of 1. Near-zero-weight graphs
//     (integer weights, mean < 1) would otherwise get Δ = 0 — an infinite
//     bucket index — and the dense correction can underflow the same way.
//
// Unweighted graphs get Δ = 1, degenerating Δ-stepping into BFS.
func deltaWidth(g *graph.Graph) matrix.Dist {
	if !g.Weighted() {
		return 1
	}
	n := uint64(g.N())
	var total, m uint64
	for v := 0; v < g.N(); v++ {
		_, w := g.NeighborsW(int32(v))
		for _, wt := range w {
			total += uint64(wt)
		}
		m += uint64(len(w))
	}
	if m == 0 {
		return 1
	}
	delta := total / m
	if m >= denseDeltaDegree*n {
		// Δ = mean·(n/m) = total·n/m², in one integer expression so the
		// sub-1 intermediate mean does not truncate to zero first.
		delta = total * n / (m * m)
	}
	if delta < 1 {
		delta = 1
	}
	return matrix.Dist(delta)
}

// lhSplit is the read-only per-solve preparation shared by the stepping
// kernels: the bucket width and the light/heavy CSR split (light = weight
// ≤ Δ, heavy = weight > Δ). On unweighted graphs split stays false — with
// Δ = 1 every unit edge is light and the original adjacency serves as the
// light set.
type lhSplit struct {
	delta matrix.Dist
	split bool
	// Offsets index the usual adjacency layout: vertex v's light edges
	// are ladj[loff[v]:loff[v+1]] with weights lw[...], heavy likewise.
	loff, hoff []int32
	ladj, hadj []int32
	lw, hw     []matrix.Dist
}

// buildLHSplit computes the width and builds the split, once per solve.
func buildLHSplit(g *graph.Graph) lhSplit {
	s := lhSplit{delta: deltaWidth(g)}
	if !g.Weighted() {
		return s
	}
	s.split = true
	n := g.N()
	loff := make([]int32, n+1)
	hoff := make([]int32, n+1)
	for v := 0; v < n; v++ {
		_, w := g.NeighborsW(int32(v))
		for _, wt := range w {
			if wt <= s.delta {
				loff[v+1]++
			} else {
				hoff[v+1]++
			}
		}
	}
	for v := 0; v < n; v++ {
		loff[v+1] += loff[v]
		hoff[v+1] += hoff[v]
	}
	s.ladj = make([]int32, loff[n])
	s.lw = make([]matrix.Dist, loff[n])
	s.hadj = make([]int32, hoff[n])
	s.hw = make([]matrix.Dist, hoff[n])
	for v := 0; v < n; v++ {
		adj, w := g.NeighborsW(int32(v))
		li, hi := loff[v], hoff[v]
		for j, u := range adj {
			if w[j] <= s.delta {
				s.ladj[li], s.lw[li] = u, w[j]
				li++
			} else {
				s.hadj[hi], s.hw[hi] = u, w[j]
				hi++
			}
		}
	}
	s.loff, s.hoff = loff, hoff
	return s
}

// light returns v's light adjacency: the split slices when built, the full
// adjacency otherwise (unweighted ⇒ every edge is light; wts nil then).
func (s *lhSplit) light(g *graph.Graph, v int32) (adj []int32, wts []matrix.Dist) {
	if s.split {
		a, b := s.loff[v], s.loff[v+1]
		return s.ladj[a:b], s.lw[a:b]
	}
	return g.Neighbors(v), nil
}

// heavy returns v's heavy adjacency (empty unless the split is built).
func (s *lhSplit) heavy(v int32) (adj []int32, wts []matrix.Dist) {
	a, b := s.hoff[v], s.hoff[v+1]
	return s.hadj[a:b], s.hw[a:b]
}
