package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"parapsp/internal/baseline"
	"parapsp/internal/gen"
	"parapsp/internal/graph"
	"parapsp/internal/matrix"
	"parapsp/internal/order"
	"parapsp/internal/sched"
)

var allAlgorithms = []Algorithm{SeqBasic, SeqOptimized, SeqAdaptive, ParAlg1, ParAlg2, ParAPSP}

func randomGraph(t testing.TB, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(30)
	m := rng.Intn(4 * n)
	undirected := rng.Intn(2) == 0
	var w gen.Weighting
	if rng.Intn(2) == 0 {
		w = gen.Weighting{Min: 1, Max: 9}
	}
	g, err := gen.ErdosRenyiGNM(n, m, undirected, seed, w)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAllAlgorithmsMatchFloydWarshall(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(t, seed)
		ref := baseline.FloydWarshall(g)
		for _, alg := range allAlgorithms {
			res, err := Solve(g, alg, Options{Workers: 3})
			if err != nil {
				t.Logf("%v: %v", alg, err)
				return false
			}
			if !res.D.Equal(ref) {
				d, _ := res.D.Diff(ref, 3)
				t.Logf("%v disagrees with Floyd-Warshall on seed %d at %v", alg, seed, d)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestScaleFreeGraphAllAlgorithms(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 3, 7, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	ref := baseline.BFSAPSP(g)
	for _, alg := range allAlgorithms {
		res, err := Solve(g, alg, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !res.D.Equal(ref) {
			t.Errorf("%v disagrees with BFS on BA graph", alg)
		}
	}
}

func TestAllSchedulesProduceSameSolution(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 3, 9, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	ref := baseline.BFSAPSP(g)
	for _, scheme := range []sched.Scheme{sched.Block, sched.StaticCyclic, sched.DynamicCyclic, sched.DynamicChunk, sched.Guided} {
		res, err := Solve(g, ParAPSP, Options{Workers: 4}.WithSchedule(scheme))
		if err != nil {
			t.Fatal(err)
		}
		if !res.D.Equal(ref) {
			t.Errorf("schedule %v produced a wrong solution", scheme)
		}
	}
}

func TestAllOrderingsProduceSameSolution(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 3, 10, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	ref := baseline.BFSAPSP(g)
	for _, proc := range []order.Procedure{order.SeqBucket, order.ParBucketsProc, order.ParMaxProc, order.MultiListsProc} {
		res, err := Solve(g, ParAPSP, Options{Workers: 4, Ordering: proc})
		if err != nil {
			t.Fatal(err)
		}
		if !res.D.Equal(ref) {
			t.Errorf("ordering %v produced a wrong solution", proc)
		}
	}
}

func TestPaperQueueMatchesDedup(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(t, seed)
		a, err := Solve(g, SeqOptimized, Options{})
		if err != nil {
			return false
		}
		b, err := Solve(g, SeqOptimized, Options{PaperQueue: true})
		if err != nil {
			return false
		}
		return a.D.Equal(b.D)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDisableRowReuseStillExact(t *testing.T) {
	g, err := gen.BarabasiAlbert(150, 3, 12, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	ref := baseline.BFSAPSP(g)
	for _, alg := range []Algorithm{SeqBasic, ParAPSP} {
		res, err := Solve(g, alg, Options{Workers: 4, DisableRowReuse: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.D.Equal(ref) {
			t.Errorf("%v without row reuse produced a wrong solution", alg)
		}
	}
}

func TestWorkerSweepExactness(t *testing.T) {
	g, err := gen.BarabasiAlbert(150, 3, 13, gen.Weighting{Min: 1, Max: 5})
	if err != nil {
		t.Fatal(err)
	}
	ref := baseline.DijkstraAPSP(g)
	for _, workers := range []int{1, 2, 3, 8, 16} {
		for _, alg := range []Algorithm{ParAlg1, ParAlg2, ParAPSP} {
			res, err := Solve(g, alg, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !res.D.Equal(ref) {
				t.Errorf("%v with %d workers produced a wrong solution", alg, workers)
			}
		}
	}
}

func TestDirectedAsymmetricDistances(t *testing.T) {
	// 0 -> 1 -> 2, no way back.
	g, err := graph.FromPairs(3, false, [][2]int32{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range allAlgorithms {
		res, err := Solve(g, alg, Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.D.At(0, 2) != 2 {
			t.Errorf("%v: D[0][2] = %d, want 2", alg, res.D.At(0, 2))
		}
		if res.D.At(2, 0) != matrix.Inf {
			t.Errorf("%v: D[2][0] = %d, want Inf", alg, res.D.At(2, 0))
		}
	}
}

func TestEmptyAndSingletonGraphs(t *testing.T) {
	for _, n := range []int{0, 1} {
		g, err := graph.FromPairs(n, true, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range allAlgorithms {
			res, err := Solve(g, alg, Options{Workers: 2})
			if err != nil {
				t.Fatalf("%v on n=%d: %v", alg, n, err)
			}
			if res.D.N() != n {
				t.Errorf("%v: matrix size %d, want %d", alg, res.D.N(), n)
			}
			if n == 1 && res.D.At(0, 0) != 0 {
				t.Errorf("%v: self distance %d", alg, res.D.At(0, 0))
			}
		}
	}
}

func TestResultMetadata(t *testing.T) {
	g, err := gen.BarabasiAlbert(100, 2, 3, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, ParAPSP, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != ParAPSP || res.Workers != 4 {
		t.Errorf("metadata = %v/%d", res.Algorithm, res.Workers)
	}
	if res.Order == nil || !order.IsPermutation(res.Order, g.N()) {
		t.Error("ParAPSP result order missing or invalid")
	}
	if !order.SortedByKeysDesc(g.Degrees(), res.Order) {
		t.Error("ParAPSP order not degree-descending")
	}
	if res.Total() != res.OrderingTime+res.SSSPTime {
		t.Error("Total() mismatch")
	}
	res1, err := Solve(g, SeqBasic, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Order != nil {
		t.Error("SeqBasic reported a non-identity order")
	}
}

func TestSeqAdaptiveOrderIsPermutation(t *testing.T) {
	g, err := gen.BarabasiAlbert(120, 3, 4, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, SeqAdaptive, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !order.IsPermutation(res.Order, g.N()) {
		t.Error("adaptive order is not a permutation")
	}
}

func TestMemoryBound(t *testing.T) {
	g, err := gen.BarabasiAlbert(100, 2, 5, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Solve(g, ParAPSP, Options{MaxMemBytes: 100})
	if !errors.Is(err, ErrMemory) {
		t.Errorf("memory bound not enforced: %v", err)
	}
	if _, err := Solve(g, ParAPSP, Options{MaxMemBytes: 1 << 30}); err != nil {
		t.Errorf("generous bound rejected: %v", err)
	}
}

func TestInvalidConfigurations(t *testing.T) {
	g, _ := graph.FromPairs(2, true, [][2]int32{{0, 1}})
	if _, err := Solve(g, Algorithm(42), Options{}); !errors.Is(err, ErrInvalid) {
		t.Errorf("invalid algorithm: %v", err)
	}
	if _, err := Solve(g, ParAPSP, Options{Ordering: order.Procedure(42)}); !errors.Is(err, ErrInvalid) {
		t.Errorf("invalid ordering: %v", err)
	}
}

func TestPartialRatioStillExact(t *testing.T) {
	// Algorithm 3's r < 1 orders only a prefix; the solution must be
	// unaffected because ordering is a performance hint, not semantics.
	g, err := gen.BarabasiAlbert(150, 3, 6, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	ref := baseline.BFSAPSP(g)
	for _, r := range []float64{0.1, 0.5, 1.0} {
		res, err := Solve(g, SeqOptimized, Options{Ratio: r})
		if err != nil {
			t.Fatal(err)
		}
		if !res.D.Equal(ref) {
			t.Errorf("ratio %v produced a wrong solution", r)
		}
	}
}

func TestOrderingOnly(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 3, 8, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	src, d, err := OrderingOnly(g, order.MultiListsProc, order.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d < 0 {
		t.Error("negative duration")
	}
	if !order.SortedByKeysDesc(g.Degrees(), src) {
		t.Error("OrderingOnly produced a non-descending order")
	}
}

func TestSSSPPhase(t *testing.T) {
	g, err := gen.BarabasiAlbert(150, 3, 9, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	ref := baseline.BFSAPSP(g)
	src := order.SequentialBucket(g.Degrees())
	for _, workers := range []int{1, 4} {
		D, _, err := SSSPPhase(g, src, workers, sched.DynamicCyclic, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !D.Equal(ref) {
			t.Errorf("SSSPPhase with %d workers wrong", workers)
		}
	}
	// nil order = identity.
	D, _, err := SSSPPhase(g, nil, 2, sched.DynamicCyclic, Options{})
	if err != nil || !D.Equal(ref) {
		t.Errorf("SSSPPhase identity order: %v", err)
	}
	// invalid order rejected.
	if _, _, err := SSSPPhase(g, []int32{0, 0}, 2, sched.DynamicCyclic, Options{}); err == nil {
		t.Error("SSSPPhase accepted a non-permutation")
	}
}

func TestAlgorithmStringsRoundTrip(t *testing.T) {
	for a := SeqBasic; a <= ParAPSP; a++ {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("round trip %v: %v %v", a, got, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("ParseAlgorithm accepted unknown")
	}
	if Algorithm(9).Valid() {
		t.Error("Algorithm(9) valid")
	}
	if Algorithm(9).String() != "Algorithm(9)" {
		t.Errorf("unknown String = %q", Algorithm(9).String())
	}
}

// TestRowReuseActuallyTriggers ensures the dynamic-programming path is
// exercised (not just dead code that happens to be correct): on a dense
// enough graph, the optimized order must hit the fold-in branch.
func TestRowReuseActuallyTriggers(t *testing.T) {
	g, err := gen.BarabasiAlbert(100, 4, 14, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	// Count folds via the adaptive runner, which records reuse.
	D := matrix.New(g.N())
	D.InitAPSP()
	ord := runAdaptive(g, D, Options{})
	if len(ord) != g.N() {
		t.Fatal("adaptive order wrong size")
	}
	ref := baseline.BFSAPSP(g)
	if !D.Equal(ref) {
		t.Fatal("adaptive solution wrong")
	}
}

func TestWeightedDirectedStress(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		g, err := gen.RMAT(5, 3*n, 0.45, 0.25, 0.15, 0.15, false, seed, gen.Weighting{Min: 1, Max: 20})
		if err != nil {
			return false
		}
		ref := baseline.DijkstraAPSP(g)
		res, err := Solve(g, ParAPSP, Options{Workers: 3})
		if err != nil {
			return false
		}
		return res.D.Equal(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapQueueMatchesFIFO(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(t, seed)
		a, err := Solve(g, ParAPSP, Options{Workers: 3})
		if err != nil {
			return false
		}
		b, err := Solve(g, ParAPSP, Options{Workers: 3, HeapQueue: true})
		if err != nil {
			return false
		}
		return a.D.Equal(b.D)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapQueueScaleFreeAndSequential(t *testing.T) {
	g, err := gen.BarabasiAlbert(250, 3, 15, gen.Weighting{Min: 1, Max: 8})
	if err != nil {
		t.Fatal(err)
	}
	ref := baseline.DijkstraAPSP(g)
	for _, alg := range []Algorithm{SeqBasic, SeqOptimized, ParAlg1, ParAlg2, ParAPSP} {
		res, err := Solve(g, alg, Options{Workers: 4, HeapQueue: true})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !res.D.Equal(ref) {
			t.Errorf("%v heap variant wrong", alg)
		}
	}
}

func TestHeapQueueInvalidCombos(t *testing.T) {
	g, _ := graph.FromPairs(2, true, [][2]int32{{0, 1}})
	for _, opts := range []Options{
		{HeapQueue: true, TrackPaths: true},
		{HeapQueue: true, PaperQueue: true},
	} {
		if _, err := Solve(g, ParAPSP, opts); !errors.Is(err, ErrInvalid) {
			t.Errorf("combo %+v accepted: %v", opts, err)
		}
	}
	if _, err := Solve(g, SeqAdaptive, Options{HeapQueue: true}); !errors.Is(err, ErrInvalid) {
		t.Errorf("SeqAdaptive heap accepted: %v", err)
	}
}

func TestHeapQueueNoReuse(t *testing.T) {
	g, err := gen.BarabasiAlbert(150, 3, 16, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	ref := baseline.BFSAPSP(g)
	res, err := Solve(g, ParAPSP, Options{Workers: 2, HeapQueue: true, DisableRowReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.D.Equal(ref) {
		t.Error("heap variant without reuse wrong")
	}
}

func TestCountersCollected(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 3, 17, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, ParAPSP, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Pops == 0 || st.EdgeScans == 0 || st.Enqueues == 0 {
		t.Fatalf("counters empty: %+v", st)
	}
	if st.Folds == 0 || st.FoldUpdates == 0 {
		t.Errorf("no folds on scale-free graph: %+v", st)
	}
	if r := st.FoldRate(); r <= 0 || r >= 1 {
		t.Errorf("fold rate = %g", r)
	}
	// Disabling reuse zeroes folds and increases edge work.
	off, err := Solve(g, ParAPSP, Options{Workers: 4, DisableRowReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.Stats.Folds != 0 {
		t.Errorf("reuse-off recorded %d folds", off.Stats.Folds)
	}
	if off.Stats.EdgeScans <= st.EdgeScans {
		t.Errorf("reuse-off edge scans %d not above reuse-on %d", off.Stats.EdgeScans, st.EdgeScans)
	}
}

func TestCountersDegreeOrderBeatsIdentity(t *testing.T) {
	// The mechanism claim: degree-descending order yields a higher fold
	// rate than identity order on a (relabeled) scale-free graph.
	base, err := gen.BarabasiAlbert(400, 3, 18, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.Relabel(base, 99)
	if err != nil {
		t.Fatal(err)
	}
	id, err := Solve(g, ParAlg1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	deg, err := Solve(g, ParAPSP, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if deg.Stats.EdgeScans >= id.Stats.EdgeScans {
		t.Errorf("degree order edge scans %d not below identity %d",
			deg.Stats.EdgeScans, id.Stats.EdgeScans)
	}
}

func TestCountersAddAndZeroRate(t *testing.T) {
	var a Counters
	if a.FoldRate() != 0 {
		t.Error("zero counters fold rate non-zero")
	}
	a.Add(Counters{Pops: 2, Folds: 1, FoldUpdates: 3, FoldBatches: 7, FoldsSkipped: 8,
		FoldEntriesSkipped: 9, EdgeScans: 4, EdgeUpdates: 5, Enqueues: 6})
	a.Add(Counters{Pops: 2, Folds: 1})
	if a.Pops != 4 || a.Folds != 2 || a.FoldUpdates != 3 || a.EdgeScans != 4 || a.EdgeUpdates != 5 || a.Enqueues != 6 {
		t.Errorf("Add = %+v", a)
	}
	if a.FoldBatches != 7 || a.FoldsSkipped != 8 || a.FoldEntriesSkipped != 9 {
		t.Errorf("Add kernel counters = %+v", a)
	}
	if a.FoldRate() != 0.5 {
		t.Errorf("fold rate = %g", a.FoldRate())
	}
}

func TestFoldBatchingParallel(t *testing.T) {
	// The batched solver defers completed rows discovered during a
	// relaxation and drains them back-to-back; on a scale-free graph with
	// several workers racing to publish rows, drains must happen and the
	// solution must still be exact. (Run under -race this also exercises
	// the row+summary publication protocol.)
	g, err := gen.BarabasiAlbert(300, 3, 21, gen.Weighting{Min: 1, Max: 9})
	if err != nil {
		t.Fatal(err)
	}
	ref := baseline.DijkstraAPSP(g)
	res, err := Solve(g, ParAPSP, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.D.Equal(ref) {
		t.Error("batched parallel solve differs from baseline")
	}
	st := res.Stats
	if st.FoldBatches == 0 {
		t.Errorf("no fold batches recorded: %+v", st)
	}
	if st.Folds < st.FoldBatches {
		t.Errorf("folds %d below batches %d", st.Folds, st.FoldBatches)
	}
}

func TestFoldSkipSinkRows(t *testing.T) {
	// Directed star into a sink: vertex 0 has no outgoing edges, so its
	// completed row is finite only at the diagonal. Every later search
	// reaches 0, finds it done, and must skip the fold outright (the
	// summary proves it a no-op) — and still compute exact distances.
	const k = 8
	edges := make([]graph.Edge, 0, k)
	for i := int32(1); i <= k; i++ {
		edges = append(edges, graph.Edge{From: i, To: 0, W: 1})
	}
	g, err := graph.FromEdges(k+1, false, edges)
	if err != nil {
		t.Fatal(err)
	}
	ref := baseline.BFSAPSP(g)
	res, err := Solve(g, SeqBasic, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.D.Equal(ref) {
		t.Error("solve with skipped folds differs from baseline")
	}
	st := res.Stats
	if st.FoldsSkipped < k {
		t.Errorf("FoldsSkipped = %d, want >= %d (one per source reaching the sink)", st.FoldsSkipped, k)
	}
	if st.FoldEntriesSkipped == 0 {
		t.Errorf("FoldEntriesSkipped = 0: %+v", st)
	}
}
