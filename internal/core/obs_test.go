package core

import (
	"errors"
	"testing"

	"parapsp/internal/gen"
	"parapsp/internal/graph"
	"parapsp/internal/obs"
)

// gridGraph builds an rows×cols 4-neighbor lattice with unit weights —
// the mesh-shaped counterpoint to the power-law generators: near-uniform
// degree, large diameter, no hubs for the ordering to exploit.
func gridGraph(t *testing.T, rows, cols int) *graph.Graph {
	t.Helper()
	var edges []graph.Edge
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{From: id(r, c), To: id(r, c+1), W: 1})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{From: id(r, c), To: id(r+1, c), W: 1})
			}
		}
	}
	g, err := graph.FromEdges(rows*cols, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestObsDifferential is the satellite differential test: instrumenting a
// solve must not change its answer. For power-law and grid inputs, every
// algorithm × worker-count combination must produce a Checksum()
// bit-identical to the uninstrumented run, and the metrics registry must
// mirror that run's Stats exactly. Work counters themselves are only
// compared at one worker: row reuse is opportunistic on the completion
// flags, so at w>1 the amount of folding is timing-dependent and
// instrumentation may legitimately shift it (the fixpoint never moves).
func TestObsDifferential(t *testing.T) {
	pl, err := gen.BarabasiAlbert(300, 3, 7, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"powerlaw", pl},
		{"grid", gridGraph(t, 17, 18)},
	}
	for _, tc := range graphs {
		n := tc.g.N()
		for _, alg := range []Algorithm{SeqOptimized, ParAlg1, ParAPSP} {
			for _, workers := range []int{1, 2, 8} {
				if alg == SeqOptimized && workers != 1 {
					continue
				}
				plain, err := Solve(tc.g, alg, Options{Workers: workers})
				if err != nil {
					t.Fatalf("%s/%v/w=%d plain: %v", tc.name, alg, workers, err)
				}
				rec := obs.New(workers)
				traced, err := Solve(tc.g, alg, Options{Workers: workers, Obs: rec})
				if err != nil {
					t.Fatalf("%s/%v/w=%d traced: %v", tc.name, alg, workers, err)
				}
				rec.Stop()
				if p, q := plain.D.Checksum(), traced.D.Checksum(); p != q {
					t.Errorf("%s/%v/w=%d: checksum %x (plain) != %x (traced)", tc.name, alg, workers, p, q)
				}
				if workers == 1 && plain.Stats != traced.Stats {
					t.Errorf("%s/%v/w=1: sequential stats diverged\nplain:  %+v\ntraced: %+v",
						tc.name, alg, plain.Stats, traced.Stats)
				}
				snap := rec.Metrics().Snapshot()
				c := traced.Stats
				for _, chk := range []struct {
					key  string
					want int64
				}{
					{"core.pops", c.Pops},
					{"core.folds", c.Folds},
					{"core.fold_updates", c.FoldUpdates},
					{"core.fold_batches", c.FoldBatches},
					{"core.folds_skipped", c.FoldsSkipped},
					{"core.fold_entries_skipped", c.FoldEntriesSkipped},
					{"core.edge_scans", c.EdgeScans},
					{"core.edge_updates", c.EdgeUpdates},
					{"core.enqueues", c.Enqueues},
					{"core.sources", int64(n)},
				} {
					if snap[chk.key] != chk.want {
						t.Errorf("%s/%v/w=%d: metric %s = %d, want %d",
							tc.name, alg, workers, chk.key, snap[chk.key], chk.want)
					}
				}
				// The scheduler dispatches each source exactly once.
				if workers > 1 {
					if got := snap["sched.iterations"]; got != int64(n) {
						t.Errorf("%s/%v/w=%d: sched.iterations = %d, want %d",
							tc.name, alg, workers, got, n)
					}
				}
			}
		}
	}
}

// TestObsChecksumAcrossWorkers: the instrumented ParAPSP run must reach
// the same fixpoint at 1, 2 and 8 workers — bit-identical Checksum().
// Raw work totals are timing-dependent in parallel (opportunistic row
// reuse), but the structural relations between them are not: every
// enqueue is a successful relaxation, and folds happen only at pops.
func TestObsChecksumAcrossWorkers(t *testing.T) {
	g, err := gen.BarabasiAlbert(250, 4, 11, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	var baseSum uint64
	for k, workers := range []int{1, 2, 8} {
		rec := obs.New(workers)
		res, err := Solve(g, ParAPSP, Options{Workers: workers, Obs: rec})
		if err != nil {
			t.Fatalf("w=%d: %v", workers, err)
		}
		if k == 0 {
			baseSum = res.D.Checksum()
		} else if got := res.D.Checksum(); got != baseSum {
			t.Errorf("w=%d checksum %x, want %x", workers, got, baseSum)
		}
		c := res.Stats
		if c.EdgeUpdates != c.Enqueues {
			t.Errorf("w=%d: EdgeUpdates %d != Enqueues %d", workers, c.EdgeUpdates, c.Enqueues)
		}
		if c.Folds+c.FoldsSkipped > c.Pops {
			t.Errorf("w=%d: folds %d + skipped %d exceed pops %d",
				workers, c.Folds, c.FoldsSkipped, c.Pops)
		}
		if c.Pops < int64(g.N()) {
			t.Errorf("w=%d: only %d pops for %d sources", workers, c.Pops, g.N())
		}
	}
}

// TestObsUndersizedRecorder: handing Solve a recorder with fewer lanes
// than workers must fail fast with ErrInvalid, not index out of range.
func TestObsUndersizedRecorder(t *testing.T) {
	g := gridGraph(t, 4, 4)
	_, err := Solve(g, ParAPSP, Options{Workers: 4, Obs: obs.New(2)})
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid", err)
	}
}

// TestObsRecordsPhases: an instrumented parallel solve leaves ordering
// and SSSP spans on the coordinator lane and per-source iteration events
// on the worker lanes.
func TestObsRecordsPhases(t *testing.T) {
	g, err := gen.BarabasiAlbert(120, 3, 3, gen.Weighting{})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewWithCapacity(4, 1024)
	if _, err := Solve(g, ParAPSP, Options{Workers: 4, Obs: rec}); err != nil {
		t.Fatal(err)
	}
	rec.Stop()
	var ordering, sssp, iters, drains int
	for _, e := range rec.Events() {
		switch e.Phase {
		case obs.PhaseOrdering:
			ordering++
		case obs.PhaseSSSP:
			sssp++
		case obs.PhaseIter:
			iters++
		case obs.PhaseFoldDrain:
			drains++
		}
		if e.End < e.Start {
			t.Errorf("event %+v ends before it starts", e)
		}
	}
	if ordering != 1 || sssp != 1 {
		t.Errorf("coordinator spans: ordering=%d sssp=%d, want 1 and 1", ordering, sssp)
	}
	if iters != g.N() {
		t.Errorf("%d iteration events, want %d", iters, g.N())
	}
	if drains == 0 {
		t.Error("no fold-drain spans recorded on a power-law graph")
	}
}
