package core

import (
	"fmt"
	"sync"

	"parapsp/internal/graph"
	"parapsp/internal/matrix"
)

// The intra-source parallel Dijkstra kernel, in the style of Kainer &
// Träff (arXiv:1903.12085). Every other scalar kernel parallelizes
// *across* sources only; pardij extracts parallelism from a single
// search: with dmin the smallest live heap key and wmin the global
// minimum edge weight, every heap entry with key ≤ dmin + wmin is already
// final (no relaxation chain can undercut it — each hop costs ≥ wmin), so
// the whole phase set settles at once and its out-edges relax in
// parallel.
//
// Phase structure per settle set S:
//
//  1. Pop S = all live entries with key ≤ dmin + wmin (exact distances).
//  2. Sequentially fold members with published rows (fold-at-pop reuse).
//     Folds cannot improve a member of S: a fold writes dt + D[t][v] ≥
//     dmin + wmin, and S's distances are ≤ dmin + wmin with equality only
//     when no improvement results — so S's distances are final before the
//     parallel phase reads them.
//  3. Relax the out-edges of the remaining members. When the set is at
//     least pardijGrain vertices the relaxation fans out across transient
//     helper goroutines: the row and settled vectors are strictly
//     read-only during the fan-out and each helper appends (v, nd)
//     candidates to its own buffer, so there is no write sharing at all;
//     the coordinator then merges the buffers sequentially (re-checking
//     nd < row[v], pushing unsettled improvements). Below the grain the
//     goroutine overhead outweighs the work and relaxation stays scalar.
//
// Fold-improved heap entries need no re-push: their keys go stale and die
// at pop (dt > row[t]), and the fold already bounds every continuation
// through the improved vertex (the modifiedDijkstra triangle argument),
// so distance order over the *remaining expansions* is preserved.

// pardijGrain is the settle-set size above which edge relaxation fans out
// across helper goroutines. It is a variable so tests can force the
// parallel path on small graphs; the default is sized so the fan-out only
// triggers where per-phase work dwarfs goroutine startup.
var pardijGrain = 128

// pardijFanMax caps the helpers one phase spawns.
const pardijFanMax = 8

type pardijKernel struct{}

func init() { RegisterKernel(pardijKernel{}) }

func (pardijKernel) Name() string { return KernelParDij }
func (pardijKernel) Grain() int   { return 1 }

func (pardijKernel) Supports(g *graph.Graph, opts Options) error {
	if opts.TrackPaths {
		return fmt.Errorf("%w: kernel %q does not track paths", ErrInvalid, KernelParDij)
	}
	if opts.PaperQueue {
		return fmt.Errorf("%w: kernel %q has no paper-queue variant", ErrInvalid, KernelParDij)
	}
	return nil
}

// Bind computes wmin, the global minimum edge weight — the phase width of
// the settle criterion (1 on unweighted graphs: phases are BFS levels).
func (pardijKernel) Bind(rt *Runtime) KernelRun {
	r := &pardijRun{
		rt:        rt,
		scratches: make([]*pardijScratch, rt.Workers),
		stats:     make([]Counters, rt.Workers),
		grain:     pardijGrain,
		fan:       rt.Workers,
		wmin:      1,
	}
	if r.fan > pardijFanMax {
		r.fan = pardijFanMax
	}
	g := rt.G
	if g.Weighted() {
		wmin := matrix.Inf
		for v := 0; v < g.N(); v++ {
			_, w := g.NeighborsW(int32(v))
			for _, wt := range w {
				if wt < wmin {
					wmin = wt
				}
			}
		}
		if wmin != matrix.Inf {
			// Zero-weight edges leave wmin = 0: phases degenerate to one
			// key level, which stays exact (the settle proof needs the
			// true minimum — clamping up would settle too eagerly).
			r.wmin = wmin
		}
	}
	return r
}

type pardijRun struct {
	rt        *Runtime
	scratches []*pardijScratch
	stats     []Counters
	grain     int
	fan       int
	wmin      matrix.Dist
}

// pardijCand is one helper's candidate buffer: the (vertex, distance)
// improvements it proposed, plus its edge-scan count folded into the
// shared counters at merge time.
type pardijCand struct {
	v     []int32
	d     []matrix.Dist
	scans int64
}

// pardijScratch is the per-worker state: heap with lazy deletion and a
// settled bitmap with touched-list reset (as in heapScratch), the phase
// buffers, and the per-helper candidate buffers.
type pardijScratch struct {
	heap    distHeap
	settled []bool
	touched []int32
	expand  []int32
	cands   []pardijCand
}

var pardijPool sync.Pool

func getPardijScratch(n, fan int) *pardijScratch {
	sc, _ := pardijPool.Get().(*pardijScratch)
	if sc == nil {
		sc = &pardijScratch{}
	}
	if len(sc.settled) < n {
		sc.settled = make([]bool, n)
	}
	if len(sc.cands) < fan {
		sc.cands = make([]pardijCand, fan)
	}
	return sc
}

func putPardijScratch(sc *pardijScratch) { pardijPool.Put(sc) }

func (r *pardijRun) Run(w, lo, hi int) {
	sc := r.scratches[w]
	if sc == nil {
		sc = getPardijScratch(r.rt.G.N(), r.fan)
		r.scratches[w] = sc
	}
	for i := lo; i < hi; i++ {
		r.source(r.rt.Sources[i], sc, &r.stats[w])
	}
}

func (r *pardijRun) Finish() Counters {
	var total Counters
	for i, sc := range r.scratches {
		if sc != nil {
			total.Add(r.stats[i])
			putPardijScratch(sc)
		}
	}
	return total
}

// source runs one phased exact Dijkstra from s into dest's row.
func (r *pardijRun) source(s int32, sc *pardijScratch, st *Counters) {
	rt := r.rt
	g := rt.G
	dest := rt.Dest
	f := rt.Flags
	row := dest.row(s)
	row[s] = 0
	reuse := !rt.Opts.DisableRowReuse

	h := &sc.heap
	h.reset()
	for _, v := range sc.touched {
		sc.settled[v] = false
	}
	sc.touched = sc.touched[:0]

	h.push(s, 0)
	st.Enqueues++
	for len(h.vs) > 0 {
		t, dt := h.pop()
		if sc.settled[t] || dt > row[t] {
			continue // stale entry
		}
		theta := matrix.AddSat(dt, r.wmin)

		// Collect the phase's settle set: every live key ≤ dmin + wmin is
		// final. Fold members with published rows right away (folds write
		// the row, which must be quiescent before the parallel relax, and
		// cannot improve distances ≤ theta — see the file comment).
		expand := sc.expand[:0]
		v, d := t, dt
		for {
			sc.settled[v] = true
			sc.touched = append(sc.touched, v)
			st.Pops++
			if reuse && v != s && f.done(v) {
				st.Folds++
				foldRow(dest, row, v, d, st)
			} else {
				expand = append(expand, v)
			}
			for len(h.vs) > 0 {
				if sc.settled[h.vs[0]] || h.ds[0] > row[h.vs[0]] {
					h.pop() // drop stale entries without leaving the loop
					continue
				}
				break
			}
			if len(h.vs) == 0 || h.ds[0] > theta {
				break
			}
			v, d = h.pop()
		}
		sc.expand = expand

		if len(expand) >= r.grain && r.fan > 1 {
			r.relaxParallel(g, row, expand, sc, st)
		} else {
			for _, t := range expand {
				r.relaxSeq(g, row, t, sc, st)
			}
		}
	}
	dest.publish(f, s)
}

// relaxSeq relaxes t's out-edges on the coordinator.
func (r *pardijRun) relaxSeq(g *graph.Graph, row []matrix.Dist, t int32, sc *pardijScratch, st *Counters) {
	adj, w := g.NeighborsW(t)
	st.EdgeScans += int64(len(adj))
	dt := row[t]
	for i, v := range adj {
		wt := matrix.Dist(1)
		if w != nil {
			wt = w[i]
		}
		if nd := matrix.AddSat(dt, wt); nd < row[v] {
			row[v] = nd
			st.EdgeUpdates++
			if !sc.settled[v] {
				sc.heap.push(v, nd)
				st.Enqueues++
			}
		}
	}
}

// relaxParallel fans the settle set's out-edges across helper goroutines.
// During the fan-out row and settled are read-only and each helper owns
// its candidate buffer; wg.Wait orders every helper write before the
// sequential merge, so the phase is free of data races by construction
// (the race-enabled battery exercises this path via the test grain).
func (r *pardijRun) relaxParallel(g *graph.Graph, row []matrix.Dist, expand []int32, sc *pardijScratch, st *Counters) {
	fan := r.fan
	chunk := (len(expand) + fan - 1) / fan
	var wg sync.WaitGroup
	for j := 0; j < fan; j++ {
		lo := j * chunk
		hi := lo + chunk
		if hi > len(expand) {
			hi = len(expand)
		}
		c := &sc.cands[j]
		c.v, c.d, c.scans = c.v[:0], c.d[:0], 0
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(c *pardijCand, part []int32) {
			defer wg.Done()
			for _, t := range part {
				adj, w := g.NeighborsW(t)
				c.scans += int64(len(adj))
				dt := row[t]
				for i, v := range adj {
					wt := matrix.Dist(1)
					if w != nil {
						wt = w[i]
					}
					if nd := matrix.AddSat(dt, wt); nd < row[v] && !sc.settled[v] {
						c.v = append(c.v, v)
						c.d = append(c.d, nd)
					}
				}
			}
		}(c, expand[lo:hi])
	}
	wg.Wait()
	for j := 0; j < fan; j++ {
		c := &sc.cands[j]
		st.EdgeScans += c.scans
		for i, v := range c.v {
			if nd := c.d[i]; nd < row[v] {
				row[v] = nd
				st.EdgeUpdates++
				sc.heap.push(v, nd)
				st.Enqueues++
			}
		}
	}
}
